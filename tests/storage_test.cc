// Tests for the columnar storage layer: copy-on-write snapshots/forks,
// instance-owned incremental indexes, and observational equivalence of
// forked vs freshly built instances.

#include <map>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "base/symbol_context.h"
#include "chase/chase_delta.h"
#include "chase/chase_tgd.h"
#include "chase/provenance.h"
#include "data/instance.h"
#include "data/schema.h"
#include "data/value.h"
#include "engine/execution_options.h"
#include "eval/hom.h"
#include "parser/parser.h"

namespace mapinv {
namespace {

class StorageTest : public ::testing::Test {
 protected:
  Schema schema_{{"R", 2}, {"S", 2}};
};

// ---------------------------------------------------------------------------
// Copy-on-write fork semantics

TEST_F(StorageTest, ForkIsolatesWritesInBothDirections) {
  Instance parent(schema_);
  ASSERT_TRUE(parent.AddInts("R", {1, 2}).ok());
  Instance fork = parent.Fork();
  EXPECT_TRUE(fork.EqualTo(parent));

  ASSERT_TRUE(*fork.AddInts("R", {3, 4}));
  EXPECT_EQ(fork.TotalSize(), 2u);
  EXPECT_EQ(parent.TotalSize(), 1u);
  RelationId r = schema_.Find("R");
  EXPECT_FALSE(parent.Contains(r, {Value::Int(3), Value::Int(4)}));

  ASSERT_TRUE(*parent.AddInts("S", {5, 6}));
  RelationId s = schema_.Find("S");
  EXPECT_FALSE(fork.Contains(s, {Value::Int(5), Value::Int(6)}));
}

TEST_F(StorageTest, ReForkOfAForkIsIndependent) {
  Instance a(schema_);
  ASSERT_TRUE(a.AddInts("R", {1, 2}).ok());
  Instance b = a.Fork();
  ASSERT_TRUE(*b.AddInts("R", {3, 4}));
  Instance c = b.Fork();
  ASSERT_TRUE(*c.AddInts("R", {5, 6}));

  EXPECT_EQ(a.TotalSize(), 1u);
  EXPECT_EQ(b.TotalSize(), 2u);
  EXPECT_EQ(c.TotalSize(), 3u);
  EXPECT_TRUE(a.SubsetOf(b));
  EXPECT_TRUE(b.SubsetOf(c));
  EXPECT_FALSE(c.SubsetOf(b));
}

TEST_F(StorageTest, ForkSharesUntouchedRelationArenas) {
  Instance parent(schema_);
  ASSERT_TRUE(parent.AddInts("R", {1, 2}).ok());
  ASSERT_TRUE(parent.AddInts("S", {3, 4}).ok());
  Instance fork = parent.Snapshot();
  RelationId r = schema_.Find("R");
  RelationId s = schema_.Find("S");
  // A snapshot is O(1): both relations alias the parent's segments.
  EXPECT_EQ(fork.Arena(r).row(0), parent.Arena(r).row(0));
  EXPECT_EQ(fork.Arena(s).row(0), parent.Arena(s).row(0));
  // Writing R in the fork unshares only R's tail segment.
  ASSERT_TRUE(*fork.AddInts("R", {5, 6}));
  EXPECT_NE(fork.Arena(r).row(0), parent.Arena(r).row(0));
  EXPECT_EQ(fork.Arena(s).row(0), parent.Arena(s).row(0));
}

TEST_F(StorageTest, DuplicateAddNeverUnshares) {
  Instance parent(schema_);
  ASSERT_TRUE(parent.AddInts("R", {1, 2}).ok());
  Instance fork = parent.Fork();
  RelationId r = schema_.Find("R");
  // Re-adding an existing row is a no-op and must not clone the store.
  EXPECT_FALSE(*fork.AddInts("R", {1, 2}));
  EXPECT_EQ(fork.Arena(r).row(0), parent.Arena(r).row(0));
}

// ---------------------------------------------------------------------------
// Instance-owned incremental indexes

TEST_F(StorageTest, IndexBuiltOnceAcrossSearches) {
  Instance inst(schema_);
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(inst.AddInts("R", {i, i + 1}).ok());
  }
  std::vector<Atom> atoms =
      ParseTgdMapping("R(x,y) -> S(x,y)").ValueOrDie().tgds[0].premise;

  ExecStats stats;
  HomSearch first(inst);
  first.set_stats(&stats);
  ASSERT_TRUE(first.ExistsHom(atoms, HomConstraints{}).ok());
  const uint64_t after_first =
      stats.index_catchup_rows.load(std::memory_order_relaxed);
  EXPECT_EQ(after_first, 10u);

  // A second search over the same instance reuses the instance-owned index:
  // no catch-up work, even though the HomSearch object is brand new. (This
  // is the regression test for HomSearch construction rebuilding buckets.)
  HomSearch second(inst);
  second.set_stats(&stats);
  ASSERT_TRUE(second.ExistsHom(atoms, HomConstraints{}).ok());
  EXPECT_EQ(stats.index_catchup_rows.load(std::memory_order_relaxed),
            after_first);
}

TEST_F(StorageTest, IndexCatchesUpIncrementallyAfterGrowth) {
  Instance inst(schema_);
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(inst.AddInts("R", {i, i}).ok());
  }
  RelationId r = schema_.Find("R");
  size_t catchup = 0;
  inst.IndexFor(r, &catchup);
  EXPECT_EQ(catchup, 8u);
  inst.IndexFor(r, &catchup);
  EXPECT_EQ(catchup, 0u);

  ASSERT_TRUE(inst.AddInts("R", {100, 100}).ok());
  ASSERT_TRUE(inst.AddInts("R", {101, 101}).ok());
  const RelationIndex& index = inst.IndexFor(r, &catchup);
  EXPECT_EQ(catchup, 2u);  // only the new rows are scanned
  auto it = index.positions[0].buckets.find(Value::Int(100));
  ASSERT_NE(it, index.positions[0].buckets.end());
  EXPECT_EQ(it->second.size(), 1u);
}

TEST_F(StorageTest, ForkInheritsIndexAndCatchesUpOnlyItsOwnRows) {
  Instance parent(schema_);
  for (int i = 0; i < 6; ++i) {
    ASSERT_TRUE(parent.AddInts("R", {i, i + 1}).ok());
  }
  RelationId r = schema_.Find("R");
  size_t catchup = 0;
  parent.IndexFor(r, &catchup);
  ASSERT_EQ(catchup, 6u);

  Instance fork = parent.Fork();
  fork.IndexFor(r, &catchup);
  EXPECT_EQ(catchup, 0u);  // the built index came along with the store

  ASSERT_TRUE(*fork.AddInts("R", {42, 43}));
  const RelationIndex& index = fork.IndexFor(r, &catchup);
  EXPECT_EQ(catchup, 1u);
  auto it = index.positions[0].buckets.find(Value::Int(42));
  ASSERT_NE(it, index.positions[0].buckets.end());
  EXPECT_EQ(it->second, std::vector<TupleRef>{6});

  // The parent never sees the fork's rows.
  parent.IndexFor(r, &catchup);
  EXPECT_EQ(catchup, 0u);
  EXPECT_FALSE(parent.Contains(r, {Value::Int(42), Value::Int(43)}));
}

TEST_F(StorageTest, IndexBucketsListRowsInInsertionOrder) {
  Instance inst(schema_);
  ASSERT_TRUE(inst.AddInts("R", {7, 1}).ok());
  ASSERT_TRUE(inst.AddInts("R", {7, 2}).ok());
  ASSERT_TRUE(inst.AddInts("R", {7, 3}).ok());
  RelationId r = schema_.Find("R");
  const RelationIndex& index = inst.IndexFor(r);
  auto it = index.positions[0].buckets.find(Value::Int(7));
  ASSERT_NE(it, index.positions[0].buckets.end());
  EXPECT_EQ(it->second, (std::vector<TupleRef>{0, 1, 2}));
}

// ---------------------------------------------------------------------------
// Observational equivalence: a forked-and-extended instance behaves exactly
// like one built fresh with the same facts.

// Collects the multiset of homomorphisms as sorted (var,value-string) lists.
std::multiset<std::string> HomMultiset(const HomSearch& search,
                                       const std::vector<Atom>& atoms) {
  std::multiset<std::string> out;
  Status status = search.ForEachHomReference(
      atoms, HomConstraints{}, Assignment{}, [&](const Assignment& h) {
        std::map<VarId, std::string> sorted;
        for (const auto& [var, value] : h) sorted[var] = value.ToString();
        std::string row;
        for (const auto& [var, text] : sorted) {
          row += std::to_string(var) + "=" + text + ";";
        }
        out.insert(std::move(row));
        return true;
      });
  EXPECT_TRUE(status.ok()) << status.ToString();
  return out;
}

TEST_F(StorageTest, ForkedInstanceIsObservationallyEqualToFreshOne) {
  Instance base(schema_);
  ASSERT_TRUE(base.AddInts("R", {1, 2}).ok());
  ASSERT_TRUE(base.AddInts("S", {2, 3}).ok());
  // Force the index to exist before forking so the fork starts from a
  // partially indexed store.
  base.IndexFor(schema_.Find("R"));

  Instance forked = base.Fork();
  ASSERT_TRUE(forked.AddInts("R", {4, 5}).ok());
  ASSERT_TRUE(forked.AddInts("S", {5, 1}).ok());

  Instance fresh(schema_);
  ASSERT_TRUE(fresh.AddInts("R", {1, 2}).ok());
  ASSERT_TRUE(fresh.AddInts("S", {2, 3}).ok());
  ASSERT_TRUE(fresh.AddInts("R", {4, 5}).ok());
  ASSERT_TRUE(fresh.AddInts("S", {5, 1}).ok());

  EXPECT_TRUE(forked.EqualTo(fresh));
  EXPECT_EQ(forked.ToString(), fresh.ToString());
  EXPECT_EQ(forked.ActiveDomain(), fresh.ActiveDomain());

  std::vector<Atom> atoms =
      ParseTgdMapping("R(x,y), S(y,z) -> T(x,z)").ValueOrDie().tgds[0].premise;
  HomSearch on_forked(forked);
  HomSearch on_fresh(fresh);
  EXPECT_EQ(HomMultiset(on_forked, atoms), HomMultiset(on_fresh, atoms));
}

TEST_F(StorageTest, ChaseOverForkMatchesChaseOverFresh) {
  TgdMapping mapping =
      ParseTgdMapping("R(x,y) -> EXISTS z . S(x,z), S(z,y)").ValueOrDie();
  Instance fresh(mapping.source);
  ASSERT_TRUE(fresh.AddInts("R", {1, 2}).ok());
  ASSERT_TRUE(fresh.AddInts("R", {2, 3}).ok());

  Instance base(mapping.source);
  ASSERT_TRUE(base.AddInts("R", {1, 2}).ok());
  Instance forked = base.Fork();
  ASSERT_TRUE(forked.AddInts("R", {2, 3}).ok());

  auto chase = [&](const Instance& source) {
    SymbolContext symbols;
    ExecutionOptions options;
    options.symbols = &symbols;
    return ChaseTgds(mapping, source, options).ValueOrDie().ToString();
  };
  EXPECT_EQ(chase(forked), chase(fresh));
}

TEST_F(StorageTest, ForkAppendChaseDeltaMatchesFreshChase) {
  // The COW-storage face of the incremental chase: chase a base source, fork
  // it, append rows to the fork, absorb them with ChaseDelta — the result
  // must be hom-equivalent to a fresh full chase over the fork, and the
  // parent source and its chased target must be untouched.
  TgdMapping mapping =
      ParseTgdMapping("R(x,y) -> EXISTS z . S(x,z), S(z,y)").ValueOrDie();
  Instance base(mapping.source);
  ASSERT_TRUE(base.AddInts("R", {1, 2}).ok());
  ASSERT_TRUE(base.AddInts("R", {2, 3}).ok());

  SymbolContext symbols;
  ExecutionOptions options;
  options.symbols = &symbols;
  Instance base_target = ChaseTgds(mapping, base, options).ValueOrDie();
  const std::string base_rendered = base_target.ToString();

  Instance grown = base.Fork();
  const DeltaWatermark mark = WatermarkOf(grown);
  ASSERT_TRUE(grown.AddInts("R", {3, 4}).ok());
  ASSERT_TRUE(grown.AddInts("R", {9, 9}).ok());
  Instance delta_target = base_target.Fork();
  ChaseProvenance provenance;
  Result<bool> complete =
      ChaseDelta(mapping, grown, mark, &delta_target, &provenance, options);
  ASSERT_TRUE(complete.ok()) << complete.status().ToString();
  EXPECT_TRUE(*complete);

  Instance fresh = ChaseTgds(mapping, grown).ValueOrDie();
  EXPECT_TRUE(InstancesHomEquivalent(delta_target, fresh).ValueOrDie())
      << "incremental: " << delta_target.ToString()
      << "\nfresh: " << fresh.ToString();
  // COW isolation: the parent pair never sees the fork's writes.
  EXPECT_EQ(base.TotalSize(), 2u);
  EXPECT_EQ(base_target.ToString(), base_rendered);
  EXPECT_EQ(provenance.FiredCount(),
            delta_target.TotalSize() - base_target.TotalSize());
}

// ---------------------------------------------------------------------------
// Stats plumbing

TEST_F(StorageTest, ChaseRecordsArenaBytes) {
  TgdMapping mapping = ParseTgdMapping("R(x,y) -> S(x,y)").ValueOrDie();
  Instance source(mapping.source);
  for (int i = 0; i < 16; ++i) {
    ASSERT_TRUE(source.AddInts("R", {i, i + 1}).ok());
  }
  SymbolContext symbols;
  ExecStats stats;
  ExecutionOptions options;
  options.symbols = &symbols;
  options.stats = &stats;
  ASSERT_TRUE(ChaseTgds(mapping, source, options).ok());
  EXPECT_GT(stats.tuples_arena_bytes.load(std::memory_order_relaxed), 0u);
}

}  // namespace
}  // namespace mapinv
