// Tests for the Fagin-inverse machinery of the PODS'06 paper as captured by
// Theorem 3.5 (Fagin-inverse = UCQ≠-maximum recovery), the identity mapping
// Id⊆, and the direct solution checkers of check/solutions.h.

#include <gtest/gtest.h>

#include "chase/chase_tgd.h"
#include "chase/round_trip.h"
#include "check/properties.h"
#include "check/solutions.h"
#include "eval/query_eval.h"
#include "inversion/cq_maximum_recovery.h"
#include "mapgen/generators.h"
#include "parser/parser.h"

namespace mapinv {
namespace {

TEST(SolutionsTest, ChaseOutputIsASolution) {
  TgdMapping m = ParseTgdMapping("R(x,y), S(y,z) -> T(x,z)").ValueOrDie();
  Instance source =
      ParseInstance("{ R(1,2), S(2,5) }", *m.source).ValueOrDie();
  Instance target = ChaseTgds(m, source).ValueOrDie();
  EXPECT_TRUE(*SatisfiesTgds(m, source, target));
  // Removing the produced fact breaks satisfaction.
  Instance empty(*m.target);
  EXPECT_FALSE(*SatisfiesTgds(m, source, empty));
  // Any superset of a solution is a solution (tgds are monotone in J).
  Instance bigger = target;
  ASSERT_TRUE(bigger.AddInts("T", {9, 9}).ok());
  EXPECT_TRUE(*SatisfiesTgds(m, source, bigger));
}

TEST(SolutionsTest, ExistentialConclusionSatisfiedByAnyWitness) {
  TgdMapping m = ParseTgdMapping("R(x) -> EXISTS y . T(x,y)").ValueOrDie();
  Instance source = ParseInstance("{ R(1) }", *m.source).ValueOrDie();
  Instance with_constant =
      ParseInstance("{ T(1,42) }", *m.target).ValueOrDie();
  EXPECT_TRUE(*SatisfiesTgds(m, source, with_constant));
  Instance wrong_key = ParseInstance("{ T(2,42) }", *m.target).ValueOrDie();
  EXPECT_FALSE(*SatisfiesTgds(m, source, wrong_key));
}

TEST(SolutionsTest, ReverseDepsRespectGuards) {
  ReverseMapping rm = ParseReverseMapping(
      "T(x,y), C(x), C(y), x != y -> R(x,y)").ValueOrDie();
  Instance diag(*rm.source);
  ASSERT_TRUE(diag.AddInts("T", {1, 1}).ok());
  Instance empty_out(*rm.target);
  // The x != y guard never fires on T(1,1): the empty output satisfies it.
  EXPECT_TRUE(*SatisfiesReverseDeps(rm, diag, empty_out));
  Instance offdiag(*rm.source);
  ASSERT_TRUE(offdiag.AddInts("T", {1, 2}).ok());
  EXPECT_FALSE(*SatisfiesReverseDeps(rm, offdiag, empty_out));
  Instance with_fact(*rm.target);
  ASSERT_TRUE(with_fact.AddInts("R", {1, 2}).ok());
  EXPECT_TRUE(*SatisfiesReverseDeps(rm, offdiag, with_fact));
}

TEST(SolutionsTest, DisjunctiveConclusionNeedsOnlyOneBranch) {
  ReverseMapping rm =
      ParseReverseMapping("D(x), C(x) -> A(x) | B(x)").ValueOrDie();
  Instance input(*rm.source);
  ASSERT_TRUE(input.AddInts("D", {1}).ok());
  Instance only_b(*rm.target);
  ASSERT_TRUE(only_b.AddInts("B", {1}).ok());
  EXPECT_TRUE(*SatisfiesReverseDeps(rm, input, only_b));
  Instance neither(*rm.target);
  EXPECT_FALSE(*SatisfiesReverseDeps(rm, input, neither));
}

TEST(FaginIdentityTest, CanonicalWitnessRealizesIdSubset) {
  // For the copy mapping and its CQ-maximum recovery, every pair I₁ ⊆ I₂
  // belongs to M ∘ M' — witnessed by the canonical solution of I₁ (Id⊆ of
  // the PODS'06 definition).
  TgdMapping m = CopyMapping(1, 2);
  ReverseMapping rec = CqMaximumRecovery(m).ValueOrDie();
  Instance i1 = GenerateInstance(*m.source, 3, 4, 1);
  Instance i2 = i1;
  ASSERT_TRUE(i2.AddInts("R0", {7, 8}).ok());
  EXPECT_TRUE(*InCompositionViaCanonicalWitness(m, rec, i1, i1));
  EXPECT_TRUE(*InCompositionViaCanonicalWitness(m, rec, i1, i2));
  // And the reverse direction fails: (I₂, I₁) with I₂ ⊋ I₁ is not in
  // M ∘ M' for a Fagin-inverse (the recovery demands the extra fact back).
  EXPECT_FALSE(*InCompositionViaCanonicalWitness(m, rec, i2, i1));
}

TEST(UcqNeqTest, ParseAndEvaluate) {
  UnionCq q = ParseQuery("Q(x,y) :- R(x,y), x != y").ValueOrDie();
  ASSERT_EQ(q.disjuncts.size(), 1u);
  ASSERT_EQ(q.disjuncts[0].inequalities.size(), 1u);
  Instance inst = ParseInstanceInferSchema("{ R(1,1), R(1,2) }").ValueOrDie();
  ASSERT_TRUE(q.Validate(inst.schema()).ok());
  AnswerSet ans = EvaluateUnionCq(q, inst).ValueOrDie();
  ASSERT_EQ(ans.tuples.size(), 1u);
  EXPECT_EQ(ans.tuples[0], Tuple({Value::Int(1), Value::Int(2)}));
}

TEST(UcqNeqTest, InequalityOutsideAtomsRejected) {
  UnionCq q = ParseQuery("Q(x) :- R(x,y), x != w").ValueOrDie();
  Schema s{{"R", 2}};
  EXPECT_EQ(q.Validate(s).code(), StatusCode::kMalformed);
}

TEST(UcqNeqTest, RoundTripOfQueryText) {
  UnionCq q =
      ParseQuery("Q(x) :- R(x,y), x != y | S(x), x = x").ValueOrDie();
  UnionCq q2 = ParseQuery(q.ToString()).ValueOrDie();
  EXPECT_EQ(q.ToString(), q2.ToString());
}

TEST(UcqNeqTest, ReverseConclusionInequalityRejected) {
  EXPECT_FALSE(ParseReverseMapping("T(x,y) -> R(x,y), x != y").ok());
}

// Theorem 3.5: when M has a Fagin-inverse, a mapping is a Fagin-inverse iff
// it is a UCQ≠-maximum recovery. Operationally on the invertible copy
// mapping: the computed recovery answers UCQ≠ queries over the round trip
// exactly (the recovered worlds are null-free, so ≠ evaluates exactly).
TEST(Theorem35Test, InvertibleMappingRecoversUcqNeqQueriesExactly) {
  TgdMapping m = CopyMapping(1, 2);
  ReverseMapping rec = CqMaximumRecovery(m).ValueOrDie();
  Instance source(*m.source);
  ASSERT_TRUE(source.AddInts("R0", {1, 1}).ok());
  ASSERT_TRUE(source.AddInts("R0", {1, 2}).ok());
  ASSERT_TRUE(source.AddInts("R0", {3, 4}).ok());

  std::vector<Instance> worlds =
      RoundTripWorlds(m, rec, source).ValueOrDie();
  ASSERT_EQ(worlds.size(), 1u);
  EXPECT_TRUE(worlds[0].IsNullFree());

  for (const char* text :
       {"Q(x,y) :- R0(x,y), x != y", "Q(x) :- R0(x,x)",
        "Q(x) :- R0(x,y), x != y | R0(y,x), x != y"}) {
    UnionCq q = ParseQuery(text).ValueOrDie();
    AnswerSet direct = EvaluateUnionCq(q, source).ValueOrDie();
    AnswerSet recovered = EvaluateUnionCq(q, worlds[0]).ValueOrDie();
    EXPECT_EQ(recovered.tuples, direct.tuples) << text;
  }
}

// The contrast: a non-invertible mapping (projection) cannot recover
// inequality information about the dropped column — the CQ-maximum recovery
// is a CQ-maximum recovery but NOT a Fagin-inverse/UCQ≠-maximum recovery.
TEST(Theorem35Test, NonInvertibleMappingLosesInequalityInformation) {
  TgdMapping m = ProjectionMapping(1);
  ReverseMapping rec = CqMaximumRecovery(m).ValueOrDie();
  Instance source(*m.source);
  ASSERT_TRUE(source.AddInts("R0", {1, 2}).ok());  // columns differ
  std::vector<Instance> worlds =
      RoundTripWorlds(m, rec, source).ValueOrDie();
  ASSERT_EQ(worlds.size(), 1u);
  // The recovered world has a null in the dropped column: the inequality
  // query's direct answer {1} is NOT certainly recovered (the null could be
  // 1 in some solution). With the sound constants-only reading of ≠ over
  // nulls, the recovered answer is empty — strictly less than the direct
  // answer, witnessing the failure of UCQ≠-maximality.
  EXPECT_FALSE(worlds[0].IsNullFree());
  UnionCq q = ParseQuery("Q(x) :- R0(x,y), x != y").ValueOrDie();
  AnswerSet direct = EvaluateUnionCq(q, source).ValueOrDie();
  EXPECT_EQ(direct.tuples.size(), 1u);
  AnswerSet recovered_certain =
      EvaluateUnionCq(q, worlds[0]).ValueOrDie().CertainOnly();
  // Naive ≠ over the null would claim the answer; the certain projection
  // keeps it only because x is the constant 1 — demonstrate the caveat by
  // checking both readings explicitly.
  ConjunctiveQuery dropped_col = ParseCq("Q(y) :- R0(x,y)").ValueOrDie();
  AnswerSet dropped =
      EvaluateCq(dropped_col, worlds[0]).ValueOrDie().CertainOnly();
  EXPECT_TRUE(dropped.tuples.empty());  // the 2 is gone for good
  (void)recovered_certain;
}

TEST(FaginIdentityTest, RandomCopyMappingSweep) {
  // RoundTripIsIdentity across arities and seeds — the operational Fagin
  // check of [10] on the invertible family.
  for (int arity = 1; arity <= 3; ++arity) {
    TgdMapping m = CopyMapping(2, arity);
    ReverseMapping rec = CqMaximumRecovery(m).ValueOrDie();
    for (uint64_t seed = 0; seed < 3; ++seed) {
      Instance source = GenerateInstance(*m.source, 4, 3, seed);
      EXPECT_TRUE(*RoundTripIsIdentity(m, rec, source))
          << "arity " << arity << " seed " << seed;
    }
  }
}

}  // namespace
}  // namespace mapinv
