// Unit tests for the chase engines: tgd chase, reverse (disjunctive) chase,
// SO-tgd chase, SO-inverse chase, round trips.

#include <gtest/gtest.h>

#include "chase/chase_reverse.h"
#include "chase/chase_so.h"
#include "chase/chase_tgd.h"
#include "chase/round_trip.h"
#include "engine/execution_options.h"
#include "engine/failpoint.h"
#include "eval/hom.h"

namespace mapinv {
namespace {

// Example 3.1: M given by R(x,y) ∧ S(y,z) → T(x,z).
TgdMapping JoinMapping() {
  Tgd tgd;
  tgd.premise = {Atom::Vars("R", {"x", "y"}), Atom::Vars("S", {"y", "z"})};
  tgd.conclusion = {Atom::Vars("T", {"x", "z"})};
  return TgdMapping(Schema{{"R", 2}, {"S", 2}}, Schema{{"T", 2}}, {tgd});
}

Instance JoinSource() {
  Instance inst(Schema{{"R", 2}, {"S", 2}});
  EXPECT_TRUE(inst.AddInts("R", {1, 2}).ok());
  EXPECT_TRUE(inst.AddInts("R", {3, 4}).ok());
  EXPECT_TRUE(inst.AddInts("S", {2, 5}).ok());
  return inst;
}

TEST(ChaseTgdTest, FullTgdProducesExactJoin) {
  TgdMapping m = JoinMapping();
  Instance target = *ChaseTgds(m, JoinSource());
  EXPECT_EQ(target.ToString(), "{ T(1,5) }");
}

TEST(ChaseTgdTest, ExistentialsGetFreshNulls) {
  // T(x,y) -> EXISTS u . R(x,u) applied to {T(1,5)}.
  Tgd tgd;
  tgd.premise = {Atom::Vars("T", {"x", "y"})};
  tgd.conclusion = {Atom::Vars("R", {"x", "u"})};
  TgdMapping m(Schema{{"T", 2}}, Schema{{"R", 2}}, {tgd});
  Instance input(Schema{{"T", 2}});
  ASSERT_TRUE(input.AddInts("T", {1, 5}).ok());
  Instance out = *ChaseTgds(m, input);
  RelationId r = out.schema().Find("R");
  ASSERT_EQ(out.TuplesCopy(r).size(), 1u);
  EXPECT_EQ(out.TuplesCopy(r)[0][0], Value::Int(1));
  EXPECT_TRUE(out.TuplesCopy(r)[0][1].is_null());
}

TEST(ChaseTgdTest, StandardChaseSkipsSatisfiedTriggers) {
  // A(x) -> EXISTS y . P(x,y) and B(x) -> P(x,x): for I = {A(1), B(1)}, the
  // standard chase may satisfy the first tgd via P(1,1) if fired second, but
  // firing order is dependency order, so we get P(1,n) then P(1,1). Use the
  // reversed order to observe the skip.
  Tgd t1;
  t1.premise = {Atom::Vars("B", {"x"})};
  t1.conclusion = {Atom::Vars("P", {"x", "x"})};
  Tgd t2;
  t2.premise = {Atom::Vars("A", {"x"})};
  t2.conclusion = {Atom::Vars("P", {"x", "y"})};
  TgdMapping m(Schema{{"A", 1}, {"B", 1}}, Schema{{"P", 2}}, {t1, t2});
  Instance input(Schema{{"A", 1}, {"B", 1}});
  ASSERT_TRUE(input.AddInts("A", {1}).ok());
  ASSERT_TRUE(input.AddInts("B", {1}).ok());
  Instance standard = *ChaseTgds(m, input);
  EXPECT_EQ(standard.TotalSize(), 1u);  // P(1,1) satisfies both
  ExecutionOptions oblivious;
  oblivious.oblivious = true;
  Instance naive = *ChaseTgds(m, input, oblivious);
  EXPECT_EQ(naive.TotalSize(), 2u);  // P(1,1) and P(1,_N)
}

TEST(ChaseTgdTest, MultiAtomConclusionSharesExistential) {
  // R(x) -> EXISTS y . T(x,y), U(y): the same null must appear in both.
  Tgd tgd;
  tgd.premise = {Atom::Vars("R", {"x"})};
  tgd.conclusion = {Atom::Vars("T", {"x", "y"}), Atom::Vars("U", {"y"})};
  TgdMapping m(Schema{{"R", 1}}, Schema{{"T", 2}, {"U", 1}}, {tgd});
  Instance input(Schema{{"R", 1}});
  ASSERT_TRUE(input.AddInts("R", {1}).ok());
  Instance out = *ChaseTgds(m, input);
  RelationId t = out.schema().Find("T");
  RelationId u = out.schema().Find("U");
  ASSERT_EQ(out.TuplesCopy(t).size(), 1u);
  ASSERT_EQ(out.TuplesCopy(u).size(), 1u);
  EXPECT_EQ(out.TuplesCopy(t)[0][1], out.TuplesCopy(u)[0][0]);
}

TEST(ChaseTgdTest, CertainAnswers) {
  // certain(T(x,z), I) for the join mapping: exactly the join tuples.
  TgdMapping m = JoinMapping();
  ConjunctiveQuery q;
  q.head = {InternVar("x"), InternVar("z")};
  q.atoms = {Atom::Vars("T", {"x", "z"})};
  AnswerSet ans = *CertainAnswersTgd(m, JoinSource(), q);
  ASSERT_EQ(ans.tuples.size(), 1u);
  EXPECT_EQ(ans.tuples[0], Tuple({Value::Int(1), Value::Int(5)}));
}

TEST(ChaseTgdTest, ResourceLimitEnforced) {
  TgdMapping m = JoinMapping();
  Instance big(Schema{{"R", 2}, {"S", 2}});
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(big.AddInts("R", {i, 1000}).ok());
    ASSERT_TRUE(big.AddInts("S", {1000, i}).ok());
  }
  ExecutionOptions tight;
  tight.max_new_facts = 10;
  EXPECT_EQ(ChaseTgds(m, big, tight).status().code(),
            StatusCode::kResourceExhausted);
}

// ---------------------------------------------------------------------------
// Degradation pins: once a fire loop degrades to a partial result, the whole
// chase stops — later tgds must not keep firing — and ExecStats.partial is
// always flagged.

// Two independent tgds; tgd order is firing order.
TgdMapping TwoTgdMapping() {
  Tgd t1;
  t1.premise = {Atom::Vars("R", {"x"})};
  t1.conclusion = {Atom::Vars("T1", {"x"})};
  Tgd t2;
  t2.premise = {Atom::Vars("S", {"x"})};
  t2.conclusion = {Atom::Vars("T2", {"x"})};
  return TgdMapping(Schema{{"R", 1}, {"S", 1}}, Schema{{"T1", 1}, {"T2", 1}},
                    {t1, t2});
}

TEST(ChaseTgdTest, MidTgdDegradeStopsTheOuterLoop) {
  TgdMapping m = TwoTgdMapping();
  Instance input(m.source);
  for (int i = 0; i < 20; ++i) ASSERT_TRUE(input.AddInts("R", {i}).ok());
  ASSERT_TRUE(input.AddInts("S", {0}).ok());
  ExecStats stats;
  ExecutionOptions options;
  options.stats = &stats;
  options.max_new_facts = 5;
  options.on_exhausted = OnExhausted::kPartial;
  Instance out = *ChaseTgds(m, input, options);
  EXPECT_TRUE(stats.partial.load());
  // The limit struck inside tgd 1's fire loop: its output is cut short and
  // tgd 2 never ran — no T2 facts even though its trigger is cheap.
  EXPECT_GE(out.NumRows(out.schema().Find("T1")), 5u);
  EXPECT_LT(out.NumRows(out.schema().Find("T1")), 20u);
  EXPECT_EQ(out.NumRows(out.schema().Find("T2")), 0u);
}

TEST(ChaseTgdTest, PreCancelledPartialReturnsSoundPrefix) {
  TgdMapping m = TwoTgdMapping();
  Instance input(m.source);
  ASSERT_TRUE(input.AddInts("R", {1}).ok());
  CancelToken token;
  token.Cancel();
  ExecStats stats;
  ExecutionOptions options;
  options.stats = &stats;
  options.cancel = &token;

  // kFail: cancellation is an error.
  EXPECT_EQ(ChaseTgds(m, input, options).status().code(),
            StatusCode::kCancelled);

  // kPartial: the (empty) sound prefix comes back, flagged partial.
  stats.Reset();
  options.on_exhausted = OnExhausted::kPartial;
  Result<Instance> partial = ChaseTgds(m, input, options);
  ASSERT_TRUE(partial.ok()) << partial.status().ToString();
  EXPECT_TRUE(stats.partial.load());
  EXPECT_EQ(partial->TotalSize(), 0u);
}

TEST(ChaseTgdTest, InjectedInternalErrorNeverDegrades) {
  // Partial mode masks exhaustion/cancellation only; an injected kInternal
  // must surface as the error it is.
  TgdMapping m = TwoTgdMapping();
  Instance input(m.source);
  ASSERT_TRUE(input.AddInts("R", {1}).ok());
  FailPointSpec spec;
  spec.mode = FailPointSpec::Mode::kAlways;
  ASSERT_TRUE(
      FailPointRegistry::Global().Activate("chase_tgds/fire", spec).ok());
  ExecStats stats;
  ExecutionOptions options;
  options.stats = &stats;
  options.on_exhausted = OnExhausted::kPartial;
  Result<Instance> result = ChaseTgds(m, input, options);
  FailPointRegistry::Global().DeactivateAll();
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInternal);
  EXPECT_FALSE(stats.partial.load());
}

// Reverse mapping M' of Example 3.1: T(x,y) -> EXISTS u . R(x,u).
ReverseMapping ReverseRFromT(const TgdMapping& m) {
  ReverseDependency dep;
  dep.premise = {Atom::Vars("T", {"x", "y"})};
  dep.constant_vars = {InternVar("x"), InternVar("y")};
  ReverseDisjunct d;
  d.atoms = {Atom::Vars("R", {"x", "u"})};
  dep.disjuncts = {d};
  return ReverseMapping(m.target, m.source, {dep});
}

TEST(ChaseReverseTest, SingleDisjunctRecovery) {
  TgdMapping m = JoinMapping();
  ReverseMapping rm = ReverseRFromT(m);
  ASSERT_TRUE(rm.Validate().ok());
  Instance target(Schema{{"T", 2}});
  ASSERT_TRUE(target.AddInts("T", {1, 5}).ok());
  Instance back = *ChaseReverse(rm, target);
  RelationId r = back.schema().Find("R");
  ASSERT_EQ(back.TuplesCopy(r).size(), 1u);
  EXPECT_EQ(back.TuplesCopy(r)[0][0], Value::Int(1));
  EXPECT_TRUE(back.TuplesCopy(r)[0][1].is_null());
}

TEST(ChaseReverseTest, ConstantGuardBlocksNulls) {
  TgdMapping m = JoinMapping();
  ReverseMapping rm = ReverseRFromT(m);
  Instance target(Schema{{"T", 2}});
  ASSERT_TRUE(target.Add("T", {Value::FreshNull(), Value::Int(5)}).ok());
  Instance back = *ChaseReverse(rm, target);
  EXPECT_EQ(back.TotalSize(), 0u);  // C(x) fails on the null
}

TEST(ChaseReverseTest, InequalityGuard) {
  Schema tschema{{"T", 2}};
  Schema sschema{{"R", 2}};
  ReverseDependency dep;
  dep.premise = {Atom::Vars("T", {"x", "y"})};
  dep.constant_vars = {InternVar("x"), InternVar("y")};
  dep.inequalities = {{InternVar("x"), InternVar("y")}};
  ReverseDisjunct d;
  d.atoms = {Atom::Vars("R", {"x", "y"})};
  dep.disjuncts = {d};
  ReverseMapping rm(std::make_shared<const Schema>(tschema),
                    std::make_shared<const Schema>(sschema), {dep});
  Instance target(tschema);
  ASSERT_TRUE(target.AddInts("T", {1, 1}).ok());
  ASSERT_TRUE(target.AddInts("T", {1, 2}).ok());
  Instance back = *ChaseReverse(rm, target);
  EXPECT_EQ(back.ToString(), "{ R(1,2) }");
}

TEST(ChaseReverseTest, DisjunctionForksWorlds) {
  // D(x) -> A(x) ∨ B(x) over {D(1)}: two worlds.
  Schema tschema{{"D", 1}};
  Schema sschema{{"A", 1}, {"B", 1}};
  ReverseDependency dep;
  dep.premise = {Atom::Vars("D", {"x"})};
  dep.constant_vars = {InternVar("x")};
  ReverseDisjunct da;
  da.atoms = {Atom::Vars("A", {"x"})};
  ReverseDisjunct db;
  db.atoms = {Atom::Vars("B", {"x"})};
  dep.disjuncts = {da, db};
  ReverseMapping rm(std::make_shared<const Schema>(tschema),
                    std::make_shared<const Schema>(sschema), {dep});
  Instance target(tschema);
  ASSERT_TRUE(target.AddInts("D", {1}).ok());
  std::vector<Instance> worlds = *ChaseReverseWorlds(rm, target);
  ASSERT_EQ(worlds.size(), 2u);
  // Certain answers of A(x): empty (only one world has A(1)).
  ConjunctiveQuery qa;
  qa.head = {InternVar("x")};
  qa.atoms = {Atom::Vars("A", {"x"})};
  AnswerSet certain = *CertainAnswersReverse(rm, target, qa);
  EXPECT_TRUE(certain.tuples.empty());
}

TEST(ChaseReverseTest, EqualityDisjunctApplicability) {
  // P(x,y) -> (A(x,y) with x=y) ∨ B(x): on P(1,1) both apply; on P(1,2)
  // only B.
  Schema tschema{{"P", 2}};
  Schema sschema{{"A", 2}, {"B", 1}};
  ReverseDependency dep;
  dep.premise = {Atom::Vars("P", {"x", "y"})};
  ReverseDisjunct da;
  da.atoms = {Atom::Vars("A", {"x", "y"})};
  da.equalities = {{InternVar("x"), InternVar("y")}};
  ReverseDisjunct db;
  db.atoms = {Atom::Vars("B", {"x"})};
  dep.disjuncts = {da, db};
  ReverseMapping rm(std::make_shared<const Schema>(tschema),
                    std::make_shared<const Schema>(sschema), {dep});
  Instance t1(tschema);
  ASSERT_TRUE(t1.AddInts("P", {1, 2}).ok());
  std::vector<Instance> w1 = *ChaseReverseWorlds(rm, t1);
  ASSERT_EQ(w1.size(), 1u);
  EXPECT_EQ(w1[0].ToString(), "{ B(1) }");
  Instance t2(tschema);
  ASSERT_TRUE(t2.AddInts("P", {1, 1}).ok());
  std::vector<Instance> w2 = *ChaseReverseWorlds(rm, t2);
  EXPECT_EQ(w2.size(), 2u);
}

TEST(ChaseReverseTest, WorldLimitEnforced) {
  Schema tschema{{"D", 1}};
  Schema sschema{{"A", 1}, {"B", 1}};
  ReverseDependency dep;
  dep.premise = {Atom::Vars("D", {"x"})};
  ReverseDisjunct da;
  da.atoms = {Atom::Vars("A", {"x"})};
  ReverseDisjunct db;
  db.atoms = {Atom::Vars("B", {"x"})};
  dep.disjuncts = {da, db};
  ReverseMapping rm(std::make_shared<const Schema>(tschema),
                    std::make_shared<const Schema>(sschema), {dep});
  Instance target(tschema);
  for (int i = 0; i < 12; ++i) ASSERT_TRUE(target.AddInts("D", {i}).ok());
  ExecutionOptions tight;
  tight.max_worlds = 16;
  EXPECT_EQ(ChaseReverseWorlds(rm, target, tight).status().code(),
            StatusCode::kResourceExhausted);
}

TEST(ChaseSOTest, SkolemTableReusesNulls) {
  // Takes(n,c) -> Enrollment(f(n),c): Example 5.1/5.2 — one id per name.
  SORule rule;
  rule.premise = {Atom::Vars("Takes", {"n", "c"})};
  rule.conclusion = {
      Atom("Enrollment", {Term::Fn("f", {Term::Var("n")}), Term::Var("c")})};
  SOTgdMapping m(std::make_shared<const Schema>(Schema{{"Takes", 2}}),
                 std::make_shared<const Schema>(Schema{{"Enrollment", 2}}),
                 SOTgd{{rule}});
  ASSERT_TRUE(m.Validate().ok());
  Instance source(Schema{{"Takes", 2}});
  ASSERT_TRUE(source.Add("Takes", {Value::MakeConstant("n1"),
                                   Value::MakeConstant("c1")}).ok());
  ASSERT_TRUE(source.Add("Takes", {Value::MakeConstant("n1"),
                                   Value::MakeConstant("c2")}).ok());
  ASSERT_TRUE(source.Add("Takes", {Value::MakeConstant("n2"),
                                   Value::MakeConstant("c1")}).ok());
  Instance target = *ChaseSOTgd(m, source);
  RelationId e = target.schema().Find("Enrollment");
  ASSERT_EQ(target.TuplesCopy(e).size(), 3u);
  // f(n1) identical across the two courses, distinct from f(n2).
  Value id_n1_a, id_n1_b, id_n2;
  for (const Tuple& t : target.TuplesCopy(e)) {
    if (t[1] == Value::MakeConstant("c2")) {
      id_n1_b = t[0];
    } else if (t[0] == target.TuplesCopy(e)[0][0]) {
      id_n1_a = t[0];
    }
  }
  id_n1_a = target.TuplesCopy(e)[0][0];
  id_n2 = target.TuplesCopy(e)[2][0];
  EXPECT_EQ(id_n1_a, id_n1_b);
  EXPECT_NE(id_n1_a, id_n2);
}

TEST(ChaseSOTest, PaperRule9CanonicalInstance) {
  // R(x,y,z) -> T(x, f(y), f(y), g(x,z)) over {R(1,2,3)} gives
  // {T(1,a,a,b)} with a ≠ b — the Section 5.2 walkthrough.
  SORule rule;
  rule.premise = {Atom::Vars("R", {"x", "y", "z"})};
  rule.conclusion = {
      Atom("T", {Term::Var("x"), Term::Fn("f", {Term::Var("y")}),
                 Term::Fn("f", {Term::Var("y")}),
                 Term::Fn("g", {Term::Var("x"), Term::Var("z")})})};
  SOTgdMapping m(std::make_shared<const Schema>(Schema{{"R", 3}}),
                 std::make_shared<const Schema>(Schema{{"T", 4}}),
                 SOTgd{{rule}});
  Instance source(Schema{{"R", 3}});
  ASSERT_TRUE(source.AddInts("R", {1, 2, 3}).ok());
  Instance target = *ChaseSOTgd(m, source);
  RelationId t = target.schema().Find("T");
  ASSERT_EQ(target.TuplesCopy(t).size(), 1u);
  const Tuple tuple = target.TuplesCopy(t)[0];
  EXPECT_EQ(tuple[0], Value::Int(1));
  EXPECT_TRUE(tuple[1].is_null());
  EXPECT_EQ(tuple[1], tuple[2]);
  EXPECT_TRUE(tuple[3].is_null());
  EXPECT_NE(tuple[1], tuple[3]);
}

TEST(RoundTripTest, JoinMappingRecoversFirstColumn) {
  // Example 3.1 end-to-end: M ∘ M' with M' = T(x,y) → ∃u R(x,u); the
  // certain answers of Q(x) = ∃y R(x,y) over the round trip are {1} ⊆ {1,3}.
  TgdMapping m = JoinMapping();
  ReverseMapping rm = ReverseRFromT(m);
  ConjunctiveQuery q;
  q.head = {InternVar("x")};
  q.atoms = {Atom::Vars("R", {"x", "y"})};
  AnswerSet certain = *RoundTripCertain(m, rm, JoinSource(), q);
  ASSERT_EQ(certain.tuples.size(), 1u);
  EXPECT_EQ(certain.tuples[0], Tuple({Value::Int(1)}));
  // Direct evaluation gives {1, 3}: the recovery is sound (⊆).
  AnswerSet direct = *EvaluateCq(q, JoinSource());
  EXPECT_TRUE(certain.SubsetOf(direct));
}

TEST(RoundTripTest, BetterRecoveryRecoversJoin) {
  // M'' = T(x,y) → ∃u (R(x,u) ∧ S(u,y)) recovers the join answer (1,5)
  // (Example 3.3).
  TgdMapping m = JoinMapping();
  ReverseDependency dep;
  dep.premise = {Atom::Vars("T", {"x", "y"})};
  dep.constant_vars = {InternVar("x"), InternVar("y")};
  ReverseDisjunct d;
  d.atoms = {Atom::Vars("R", {"x", "u"}), Atom::Vars("S", {"u", "y"})};
  dep.disjuncts = {d};
  ReverseMapping rm(m.target, m.source, {dep});
  ConjunctiveQuery join;
  join.head = {InternVar("x"), InternVar("y")};
  join.atoms = {Atom::Vars("R", {"x", "z"}), Atom::Vars("S", {"z", "y"})};
  AnswerSet certain = *RoundTripCertain(m, rm, JoinSource(), join);
  ASSERT_EQ(certain.tuples.size(), 1u);
  EXPECT_EQ(certain.tuples[0], Tuple({Value::Int(1), Value::Int(5)}));
}

}  // namespace
}  // namespace mapinv
