// Edge-case and failure-injection tests across modules: oblivious reverse
// chase, premises matching nulls, Boolean queries, error paths.

#include <gtest/gtest.h>

#include "chase/chase_reverse.h"
#include "chase/chase_tgd.h"
#include "chase/round_trip.h"
#include "inversion/maximum_recovery.h"
#include "parser/parser.h"

namespace mapinv {
namespace {

TEST(MiscTest, ReversePremiseExistentialMatchesNulls) {
  // Recovery of R(x) -> ∃y T(x,y) is T(x,y) ∧ C(x) → R(x): the premise
  // variable y is unguarded and must match the null the forward chase
  // invented.
  TgdMapping m = ParseTgdMapping("R(x) -> EXISTS y . T(x,y)").ValueOrDie();
  ReverseMapping rec = MaximumRecovery(m).ValueOrDie();
  ASSERT_EQ(rec.deps.size(), 1u);
  EXPECT_EQ(rec.deps[0].constant_vars.size(), 1u);  // C(x) only

  Instance source = ParseInstance("{ R(1), R(2) }", *m.source).ValueOrDie();
  Instance target = ChaseTgds(m, source).ValueOrDie();
  EXPECT_FALSE(target.IsNullFree());
  Instance back = ChaseReverse(rec, target).ValueOrDie();
  EXPECT_EQ(back.ToString(), "{ R(1), R(2) }");
}

TEST(MiscTest, ObliviousReverseChaseFiresEveryTrigger) {
  ReverseMapping rm =
      ParseReverseMapping("T(x), C(x) -> EXISTS u . R(x,u)").ValueOrDie();
  Instance input(*rm.source);
  ASSERT_TRUE(input.AddInts("T", {1}).ok());
  // Standard chase: one firing. A second standard chase pass would skip; the
  // oblivious chase on an input pre-seeded from a previous run still adds a
  // fresh-null variant.
  Instance once = ChaseReverse(rm, input).ValueOrDie();
  EXPECT_EQ(once.TotalSize(), 1u);
  ExecutionOptions oblivious;
  oblivious.oblivious = true;
  Instance naive = ChaseReverse(rm, input, oblivious).ValueOrDie();
  EXPECT_EQ(naive.TotalSize(), 1u);  // same single trigger
}

TEST(MiscTest, BooleanQueriesEvaluateToEmptyOrUnitTuple) {
  Instance inst = ParseInstanceInferSchema("{ R(1,2) }").ValueOrDie();
  UnionCq yes = ParseQuery("Q() :- R(x,y)").ValueOrDie();
  AnswerSet ans = EvaluateUnionCq(yes, inst).ValueOrDie();
  ASSERT_EQ(ans.tuples.size(), 1u);  // the empty tuple: "true"
  EXPECT_TRUE(ans.tuples[0].empty());
  UnionCq no = ParseQuery("Q() :- R(x,x)").ValueOrDie();
  EXPECT_TRUE(EvaluateUnionCq(no, inst)->tuples.empty());
}

TEST(MiscTest, CertainOverWorldsRejectsEmptyWorldSet) {
  ConjunctiveQuery q = ParseCq("Q(x) :- R(x)").ValueOrDie();
  EXPECT_EQ(CertainOverWorlds({}, q).status().code(), StatusCode::kMalformed);
}

TEST(MiscTest, QuotedConstantsWithSpaces) {
  Instance inst = ParseInstanceInferSchema(
      "{ Course('intro to databases', 'fall term') }").ValueOrDie();
  RelationId c = inst.schema().Find("Course");
  ASSERT_EQ(inst.TuplesCopy(c).size(), 1u);
  EXPECT_EQ(inst.TuplesCopy(c)[0][0].ToString(), "intro to databases");
}

TEST(MiscTest, RecoveryOfUnionMappingNeverInventsFacts) {
  // A(x) -> T(x) and B(x) -> T(x): the CQ information in T is the union;
  // neither A nor B facts can be certain after the round trip, but the
  // (A ∪ B)-style Boolean content is preserved in every world.
  TgdMapping m = ParseTgdMapping("A(x) -> T(x)\nB(x) -> T(x)").ValueOrDie();
  ReverseMapping rec = MaximumRecovery(m).ValueOrDie();
  ASSERT_EQ(rec.deps.size(), 2u);
  // The rewriting of T(x) is A(x) ∨ B(x) for both deps.
  EXPECT_EQ(rec.deps[0].disjuncts.size(), 2u);
  Instance source = ParseInstance("{ A(1) }", *m.source).ValueOrDie();
  ConjunctiveQuery qa = ParseCq("Q(x) :- A(x)").ValueOrDie();
  ExecutionOptions options;
  options.max_worlds = 1024;
  AnswerSet certain = RoundTripCertain(m, rec, source, qa, options).ValueOrDie();
  EXPECT_TRUE(certain.tuples.empty());
  // Every world carries 1 in A or in B.
  std::vector<Instance> worlds =
      RoundTripWorlds(m, rec, source, options).ValueOrDie();
  ASSERT_FALSE(worlds.empty());
  for (const Instance& w : worlds) {
    bool in_a = w.Contains(w.schema().Find("A"), {Value::Int(1)});
    bool in_b = w.Contains(w.schema().Find("B"), {Value::Int(1)});
    EXPECT_TRUE(in_a || in_b);
  }
}

TEST(MiscTest, MaximumRecoveryPremiseKeepsExistentialStructure) {
  // tgd with a two-atom conclusion sharing an existential: the reverse
  // premise is the whole conclusion pattern, so unlinked target facts do
  // not trigger it.
  TgdMapping m =
      ParseTgdMapping("R(x) -> EXISTS y . T(x,y), U(y)").ValueOrDie();
  ReverseMapping rec = MaximumRecovery(m).ValueOrDie();
  ASSERT_EQ(rec.deps.size(), 1u);
  EXPECT_EQ(rec.deps[0].premise.size(), 2u);
  Instance linked(*m.target);
  Value n = Value::FreshNull();
  ASSERT_TRUE(linked.Add("T", {Value::Int(1), n}).ok());
  ASSERT_TRUE(linked.Add("U", {n}).ok());
  Instance back = ChaseReverse(rec, linked).ValueOrDie();
  EXPECT_EQ(back.ToString(), "{ R(1) }");
  // Unlinked facts (different nulls) do not witness the pattern.
  Instance unlinked(*m.target);
  ASSERT_TRUE(unlinked.Add("T", {Value::Int(1), Value::FreshNull()}).ok());
  ASSERT_TRUE(unlinked.Add("U", {Value::FreshNull()}).ok());
  Instance nothing = ChaseReverse(rec, unlinked).ValueOrDie();
  EXPECT_EQ(nothing.TotalSize(), 0u);
}

TEST(MiscTest, EmptySourceInstanceRoundTripsToEmpty) {
  TgdMapping m = ParseTgdMapping("R(x,y), S(y,z) -> T(x,z)").ValueOrDie();
  ReverseMapping rec = MaximumRecovery(m).ValueOrDie();
  Instance empty(*m.source);
  std::vector<Instance> worlds = RoundTripWorlds(m, rec, empty).ValueOrDie();
  ASSERT_EQ(worlds.size(), 1u);
  EXPECT_EQ(worlds[0].TotalSize(), 0u);
}

TEST(MiscTest, SelfJoinPremiseTgd) {
  // E(x,y), E(y,x) -> T(x): symmetric-pair detection round trip.
  TgdMapping m = ParseTgdMapping("E(x,y), E(y,x) -> T(x)").ValueOrDie();
  ReverseMapping rec = MaximumRecovery(m).ValueOrDie();
  Instance source =
      ParseInstance("{ E(1,2), E(2,1), E(3,4) }", *m.source).ValueOrDie();
  ConjunctiveQuery q = ParseCq("Q(x) :- E(x,y), E(y,x)").ValueOrDie();
  AnswerSet certain = RoundTripCertain(m, rec, source, q).ValueOrDie();
  AnswerSet direct = EvaluateCq(q, source).ValueOrDie();
  EXPECT_EQ(certain.tuples, direct.tuples);  // {1, 2}
  ASSERT_EQ(certain.tuples.size(), 2u);
}

TEST(MiscTest, StatusCheckOnOkIsNoop) {
  Status::OK().Check();  // must not abort
  Result<int> r(5);
  EXPECT_EQ(*r, 5);
}

}  // namespace
}  // namespace mapinv
