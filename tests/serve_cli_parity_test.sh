#!/usr/bin/env bash
# End-to-end CLI/server parity over the real binaries.
#
# The contract: `mapinv_cli --response-json <cmd> ...` and the daemon answer
# the same request with byte-identical JSON documents. We build the request
# once with `mapinv_cli --dump-request`, run it through a live mapinv_serve
# via `mapinv_bench_serve --one`, and cmp against the CLI's own output.
#
# Usage: serve_cli_parity_test.sh <mapinv_cli> <mapinv_serve> <mapinv_bench_serve> <data_dir>
set -u

CLI=$1
SERVE=$2
BENCH=$3
DATA=$4

workdir=$(mktemp -d)
sock="$workdir/parity.sock"
fail=0
server_pid=""

cleanup() {
  if [[ -n "$server_pid" ]] && kill -0 "$server_pid" 2>/dev/null; then
    kill "$server_pid" 2>/dev/null
    wait "$server_pid" 2>/dev/null
  fi
  rm -rf "$workdir"
}
trap cleanup EXIT

note() { printf '%s\n' "$*" >&2; }

"$SERVE" --unix "$sock" --threads 2 >"$workdir/serve.log" 2>&1 &
server_pid=$!

# Wait for the socket to appear.
for _ in $(seq 1 100); do
  [[ -S "$sock" ]] && break
  kill -0 "$server_pid" 2>/dev/null || { note "FAIL: server died at startup"; cat "$workdir/serve.log" >&2; exit 1; }
  sleep 0.1
done
[[ -S "$sock" ]] || { note "FAIL: server socket never appeared"; exit 1; }

check_parity() {
  local label=$1; shift
  if ! "$CLI" --dump-request "$@" >"$workdir/request.json" 2>"$workdir/cli.err"; then
    note "FAIL($label): --dump-request errored: $(cat "$workdir/cli.err")"
    fail=1; return
  fi
  if ! "$CLI" --response-json "$@" >"$workdir/local.json" 2>"$workdir/cli.err"; then
    note "FAIL($label): --response-json errored: $(cat "$workdir/cli.err")"
    fail=1; return
  fi
  if ! "$BENCH" --one --unix "$sock" <"$workdir/request.json" >"$workdir/remote.json" 2>"$workdir/bench.err"; then
    note "FAIL($label): bench --one errored: $(cat "$workdir/bench.err")"
    fail=1; return
  fi
  if ! cmp -s "$workdir/local.json" "$workdir/remote.json"; then
    note "FAIL($label): CLI and server responses differ"
    note "  local:  $(cat "$workdir/local.json")"
    note "  remote: $(cat "$workdir/remote.json")"
    fail=1; return
  fi
  note "ok($label)"
}

check_parity invert     invert "$DATA/join.tgd"
check_parity maxrec     maxrec "$DATA/join.tgd"
check_parity exchange   exchange "$DATA/join.tgd" "$DATA/join.inst"
check_parity roundtrip  roundtrip "$DATA/join.tgd" "$DATA/join.inst"
check_parity rewrite    rewrite "$DATA/join.tgd" 'Q(x) :- T(x,z)'
check_parity limits     exchange --max-facts 5 --on-exhausted partial "$DATA/join.tgd" "$DATA/join.inst"

# Clean shutdown: SIGTERM drains and exits 0.
kill "$server_pid"
wait "$server_pid"
rc=$?
server_pid=""
if [[ $rc -ne 0 ]]; then
  note "FAIL: server exited $rc on SIGTERM"
  fail=1
fi

exit $fail
