// End-to-end integration tests: full workflows combining the parser, the
// inversion algorithms, the chase engines and the checkers — the same
// scenarios as the example binaries, with assertions.

#include <gtest/gtest.h>

#include "chase/chase_reverse.h"
#include "chase/chase_so.h"
#include "chase/chase_tgd.h"
#include "chase/round_trip.h"
#include "check/properties.h"
#include "inversion/compose.h"
#include "inversion/cq_maximum_recovery.h"
#include "inversion/polyso.h"
#include "mapgen/generators.h"
#include "parser/parser.h"
#include "rewrite/skolemize.h"

namespace mapinv {
namespace {

TEST(IntegrationTest, QuickstartScenario) {
  TgdMapping mapping =
      ParseTgdMapping("R(x,y), S(y,z) -> T(x,z)").ValueOrDie();
  Instance source =
      ParseInstance("{ R(1,2), R(3,4), S(2,5) }", *mapping.source)
          .ValueOrDie();
  Instance target = ChaseTgds(mapping, source).ValueOrDie();
  EXPECT_EQ(target.ToString(), "{ T(1,5) }");

  ReverseMapping recovery = CqMaximumRecovery(mapping).ValueOrDie();
  // Theorem 4.5 language: single equality-free conclusions.
  EXPECT_TRUE(recovery.IsDisjunctionFree());
  EXPECT_TRUE(recovery.IsEqualityFree());

  ConjunctiveQuery first = ParseCq("Q(x) :- R(x,y)").ValueOrDie();
  AnswerSet certain =
      RoundTripCertain(mapping, recovery, source, first).ValueOrDie();
  EXPECT_EQ(certain.ToString(), "{ (1) }");
  ConjunctiveQuery join = ParseCq("Q(x,y) :- R(x,z), S(z,y)").ValueOrDie();
  AnswerSet join_certain =
      RoundTripCertain(mapping, recovery, source, join).ValueOrDie();
  EXPECT_EQ(join_certain.ToString(), "{ (1,5) }");
}

TEST(IntegrationTest, Corollary54FaginInverseViaPolySO) {
  // Copy mappings are Fagin-invertible; by Corollary 5.4 the PolySOInverse
  // output acts as a Fagin-inverse: the round trip restores the source
  // exactly (certain per-relation answers equal the source facts).
  TgdMapping m = CopyMapping(2, 2);
  SOTgdMapping so = TgdsToPlainSOTgd(m).ValueOrDie();
  SOInverseMapping inv = PolySOInverse(so).ValueOrDie();
  for (uint64_t seed : {3u, 4u, 5u}) {
    Instance source = GenerateInstance(*m.source, 5, 6, seed);
    std::vector<Instance> worlds =
        RoundTripWorldsSO(so, inv, source).ValueOrDie();
    ASSERT_FALSE(worlds.empty());
    for (const ConjunctiveQuery& q : PerRelationQueries(*m.source)) {
      AnswerSet certain = CertainOverWorlds(worlds, q).ValueOrDie();
      AnswerSet direct = EvaluateCq(q, source).ValueOrDie();
      EXPECT_EQ(certain.tuples, direct.tuples) << q.ToString();
    }
  }
}

TEST(IntegrationTest, SchemaEvolutionScenario) {
  TgdMapping m = ParseTgdMapping("Emp(n,c,s) -> Payroll(n,s)").ValueOrDie();
  TgdMapping evolution =
      ParseTgdMapping("Emp(n,c,s) -> EmpCity(n,c), EmpSal(n,s)").ValueOrDie();
  ReverseMapping back = CqMaximumRecovery(evolution).ValueOrDie();

  Instance evolved = ParseInstance(
      "{ EmpCity('ada','london'), EmpSal('ada',90), "
      "EmpCity('erd','budapest'), EmpSal('erd',60) }",
      *back.source).ValueOrDie();
  Instance recovered = ChaseReverse(back, evolved).ValueOrDie();
  Instance payroll = ChaseTgds(m, recovered).ValueOrDie();
  ConjunctiveQuery q = ParseCq("Q(n,s) :- Payroll(n,s)").ValueOrDie();
  AnswerSet answers = EvaluateCq(q, payroll).ValueOrDie();
  AnswerSet certain = answers.CertainOnly();
  ASSERT_EQ(certain.tuples.size(), 2u);
  EXPECT_TRUE(certain.Contains(
      {Value::MakeConstant("ada"), Value::MakeConstant("90")}));
  EXPECT_TRUE(certain.Contains(
      {Value::MakeConstant("erd"), Value::MakeConstant("60")}));
}

TEST(IntegrationTest, PeerReformulationScenario) {
  TgdMapping mapping = ParseTgdMapping(R"(
    Person(n, c)   -> CityIndex(c, n)
    WorksAt(n, co) -> EXISTS d . Employment(n, co, d)
  )").ValueOrDie();
  Instance p1 = ParseInstance(
      "{ Person('ada','london'), WorksAt('ada','firm') }",
      *mapping.source).ValueOrDie();
  Instance p2 = ChaseTgds(mapping, p1).ValueOrDie();
  ReverseMapping inverse = CqMaximumRecovery(mapping).ValueOrDie();
  ConjunctiveQuery q =
      ParseCq("Q(n) :- Person(n,c), WorksAt(n,co)").ValueOrDie();
  AnswerSet from_p2 = CertainAnswersReverse(inverse, p2, q).ValueOrDie();
  AnswerSet truth = EvaluateCq(q, p1).ValueOrDie();
  EXPECT_EQ(from_p2.tuples, truth.tuples);
}

TEST(IntegrationTest, StudentIdsScenario) {
  SOTgdMapping mapping =
      ParseSOTgdMapping("Takes(n,c) -> Enrollment(f(n),c)").ValueOrDie();
  SOInverseMapping inverse = PolySOInverse(mapping).ValueOrDie();
  Instance source = ParseInstance(
      "{ Takes('ann','db'), Takes('ann','os'), Takes('bob','db') }",
      *mapping.source).ValueOrDie();
  ConjunctiveQuery selfjoin =
      ParseCq("Q(c1,c2) :- Takes(n,c1), Takes(n,c2)").ValueOrDie();
  AnswerSet certain =
      RoundTripCertainSO(mapping, inverse, source, selfjoin).ValueOrDie();
  AnswerSet direct = EvaluateCq(selfjoin, source).ValueOrDie();
  EXPECT_EQ(certain.tuples, direct.tuples);
}

TEST(IntegrationTest, EvolutionThenPublishComposition) {
  TgdMapping evolution =
      ParseTgdMapping("Emp(n,c,s) -> EmpCity(n,c), EmpSal(n,s)").ValueOrDie();
  TgdMapping publish =
      ParseTgdMapping("EmpSal(n,s) -> Payroll2(n,s)").ValueOrDie();
  SOTgdMapping composed =
      ComposeTgdMappings(evolution, publish).ValueOrDie();
  ASSERT_EQ(composed.so.rules.size(), 1u);
  Instance source(*composed.source);
  ASSERT_TRUE(source.Add("Emp", {Value::MakeConstant("ada"),
                                 Value::MakeConstant("london"),
                                 Value::Int(90)}).ok());
  Instance out = ChaseSOTgd(composed, source).ValueOrDie();
  EXPECT_EQ(out.ToString(), "{ Payroll2(ada,90) }");
}

class ParserRoundTripSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ParserRoundTripSweep, ToStringParsesBackIdentically) {
  RandomMappingConfig config;
  config.seed = GetParam();
  config.num_tgds = 4;
  config.existential_vars = 2;
  TgdMapping m = GenerateRandomMapping(config);
  Result<TgdMapping> reparsed = ParseTgdMapping(m.ToString());
  ASSERT_TRUE(reparsed.ok()) << reparsed.status().ToString() << "\n"
                             << m.ToString();
  EXPECT_EQ(reparsed->ToString(), m.ToString());
}

TEST_P(ParserRoundTripSweep, RecoveryToStringParsesBack) {
  RandomMappingConfig config;
  config.seed = GetParam();
  config.num_tgds = 2;
  TgdMapping m = GenerateRandomMapping(config);
  ReverseMapping rec = CqMaximumRecovery(m).ValueOrDie();
  Result<ReverseMapping> reparsed = ParseReverseMapping(rec.ToString());
  ASSERT_TRUE(reparsed.ok()) << reparsed.status().ToString() << "\n"
                             << rec.ToString();
  EXPECT_EQ(reparsed->ToString(), rec.ToString());
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParserRoundTripSweep,
                         ::testing::Range<uint64_t>(0, 8));

}  // namespace
}  // namespace mapinv
