// Unit tests for the rewriting engine: REWRITE(Σ, Q) — certain-answer
// rewritings of target CQs as source UCQ= queries.

#include <gtest/gtest.h>

#include "chase/chase_tgd.h"
#include "eval/query_eval.h"
#include "rewrite/rewrite.h"
#include "rewrite/skolemize.h"

namespace mapinv {
namespace {

TgdMapping PaperABMapping() {
  // A(x,y) -> P(x,y) and B(x) -> P(x,x)  (Section 4 rewriting example).
  Tgd t1;
  t1.premise = {Atom::Vars("A", {"x", "y"})};
  t1.conclusion = {Atom::Vars("P", {"x", "y"})};
  Tgd t2;
  t2.premise = {Atom::Vars("B", {"x"})};
  t2.conclusion = {Atom::Vars("P", {"x", "x"})};
  return TgdMapping(Schema{{"A", 2}, {"B", 1}}, Schema{{"P", 2}}, {t1, t2});
}

// Checks the rewriting contract Q'(I) = certain(Q, I) on a given instance.
void ExpectRewritingExact(const TgdMapping& m, const ConjunctiveQuery& q,
                          const Instance& source) {
  Result<UnionCq> rewriting = RewriteOverSource(m, q);
  ASSERT_TRUE(rewriting.ok()) << rewriting.status().ToString();
  Result<AnswerSet> via_rewriting = EvaluateUnionCq(*rewriting, source);
  ASSERT_TRUE(via_rewriting.ok()) << via_rewriting.status().ToString();
  Result<AnswerSet> via_chase = CertainAnswersTgd(m, source, q);
  ASSERT_TRUE(via_chase.ok()) << via_chase.status().ToString();
  EXPECT_EQ(via_rewriting->tuples, via_chase->tuples)
      << "rewriting: " << rewriting->ToString()
      << "\nrewriting answers: " << via_rewriting->ToString()
      << "\nchase answers:     " << via_chase->ToString();
}

TEST(RewriteTest, PaperExampleShape) {
  // Rewriting of P(x,y) is A(x,y) ∨ (B(x) ∧ x = y).
  TgdMapping m = PaperABMapping();
  ConjunctiveQuery q;
  q.head = {InternVar("x"), InternVar("y")};
  q.atoms = {Atom::Vars("P", {"x", "y"})};
  UnionCq rewriting = *RewriteOverSource(m, q);
  ASSERT_EQ(rewriting.disjuncts.size(), 2u);
  int with_equality = 0, without_equality = 0;
  for (const CqDisjunct& d : rewriting.disjuncts) {
    if (d.equalities.empty()) {
      ++without_equality;
      ASSERT_EQ(d.atoms.size(), 1u);
      EXPECT_EQ(RelationText(d.atoms[0].relation), "A");
    } else {
      ++with_equality;
      ASSERT_EQ(d.atoms.size(), 1u);
      EXPECT_EQ(RelationText(d.atoms[0].relation), "B");
      ASSERT_EQ(d.equalities.size(), 1u);
    }
  }
  EXPECT_EQ(with_equality, 1);
  EXPECT_EQ(without_equality, 1);
}

TEST(RewriteTest, PaperExampleSemantics) {
  TgdMapping m = PaperABMapping();
  ConjunctiveQuery q;
  q.head = {InternVar("x"), InternVar("y")};
  q.atoms = {Atom::Vars("P", {"x", "y"})};
  Instance source(*m.source);
  ASSERT_TRUE(source.AddInts("A", {1, 2}).ok());
  ASSERT_TRUE(source.AddInts("B", {7}).ok());
  ExpectRewritingExact(m, q, source);
}

TEST(RewriteTest, JoinMappingConclusionQuery) {
  // M: R(x,y), S(y,z) -> T(x,z); rewriting of T(x,z) is ∃y R(x,y) ∧ S(y,z).
  Tgd tgd;
  tgd.premise = {Atom::Vars("R", {"x", "y"}), Atom::Vars("S", {"y", "z"})};
  tgd.conclusion = {Atom::Vars("T", {"x", "z"})};
  TgdMapping m(Schema{{"R", 2}, {"S", 2}}, Schema{{"T", 2}}, {tgd});
  ConjunctiveQuery q;
  q.head = {InternVar("x"), InternVar("z")};
  q.atoms = {Atom::Vars("T", {"x", "z"})};
  UnionCq rewriting = *RewriteOverSource(m, q);
  ASSERT_EQ(rewriting.disjuncts.size(), 1u);
  EXPECT_EQ(rewriting.disjuncts[0].atoms.size(), 2u);
  Instance source(*m.source);
  ASSERT_TRUE(source.AddInts("R", {1, 2}).ok());
  ASSERT_TRUE(source.AddInts("R", {3, 4}).ok());
  ASSERT_TRUE(source.AddInts("S", {2, 5}).ok());
  ExpectRewritingExact(m, q, source);
}

TEST(RewriteTest, ExistentialTargetPositionIsNeverCertain) {
  // R(x) -> EXISTS y . T(x,y): rewriting of T(x,y) with y free must be
  // empty — y is always an invented null.
  Tgd tgd;
  tgd.premise = {Atom::Vars("R", {"x"})};
  tgd.conclusion = {Atom::Vars("T", {"x", "y"})};
  TgdMapping m(Schema{{"R", 1}}, Schema{{"T", 2}}, {tgd});
  ConjunctiveQuery q;
  q.head = {InternVar("x"), InternVar("y")};
  q.atoms = {Atom::Vars("T", {"x", "y"})};
  UnionCq rewriting = *RewriteOverSource(m, q);
  EXPECT_TRUE(rewriting.disjuncts.empty());
  // But projecting y away rewrites to R(x).
  ConjunctiveQuery proj;
  proj.head = {InternVar("x")};
  proj.atoms = {Atom::Vars("T", {"x", "y"})};
  UnionCq proj_rewriting = *RewriteOverSource(m, proj);
  ASSERT_EQ(proj_rewriting.disjuncts.size(), 1u);
  EXPECT_EQ(RelationText(proj_rewriting.disjuncts[0].atoms[0].relation), "R");
}

TEST(RewriteTest, SkolemJoinAcrossAtomsMergesFirings) {
  // R(a) -> EXISTS y . T(a,y), U(y,a): query ∃z T(x,z) ∧ U(z,x') joins the
  // invented value, forcing both atoms to come from the same firing, hence
  // x = x'.
  Tgd tgd;
  tgd.premise = {Atom::Vars("R", {"a"})};
  tgd.conclusion = {Atom::Vars("T", {"a", "y"}), Atom::Vars("U", {"y", "a"})};
  TgdMapping m(Schema{{"R", 1}}, Schema{{"T", 2}, {"U", 2}}, {tgd});
  ConjunctiveQuery q;
  q.head = {InternVar("x"), InternVar("xp")};
  q.atoms = {Atom::Vars("T", {"x", "z"}), Atom::Vars("U", {"z", "xp"})};
  UnionCq rewriting = *RewriteOverSource(m, q);
  ASSERT_EQ(rewriting.disjuncts.size(), 1u);
  ASSERT_EQ(rewriting.disjuncts[0].equalities.size(), 1u);
  Instance source(*m.source);
  ASSERT_TRUE(source.AddInts("R", {4}).ok());
  ASSERT_TRUE(source.AddInts("R", {9}).ok());
  ExpectRewritingExact(m, q, source);
}

TEST(RewriteTest, SkolemValueJoinedWithSourceConstantPrunes) {
  // A(a) -> T(f(a)) [Skolemised ∃] and B(b,c) -> U(b): the query
  // ∃z T(z) ∧ U(z) requires a source constant to equal an invented value:
  // empty rewriting (Boolean query encoded with a dummy free variable held
  // by an extra atom).
  Tgd t1;
  t1.premise = {Atom::Vars("A", {"a"})};
  t1.conclusion = {Atom::Vars("T", {"w"})};
  Tgd t2;
  t2.premise = {Atom::Vars("B", {"b", "c"})};
  t2.conclusion = {Atom::Vars("U", {"b"})};
  TgdMapping m(Schema{{"A", 1}, {"B", 2}}, Schema{{"T", 1}, {"U", 1}},
               {t1, t2});
  ConjunctiveQuery q;
  q.head = {InternVar("z2")};
  q.atoms = {Atom::Vars("T", {"z"}), Atom::Vars("U", {"z"}),
             Atom::Vars("U", {"z2"})};
  UnionCq rewriting = *RewriteOverSource(m, q);
  EXPECT_TRUE(rewriting.disjuncts.empty());
}

TEST(RewriteTest, UnmatchableAtomGivesEmptyRewriting) {
  TgdMapping m = PaperABMapping();
  // Relation Z never appears in any conclusion.
  ConjunctiveQuery q;
  q.head = {InternVar("x")};
  q.atoms = {Atom::Vars("P", {"x", "y"})};
  // Extend the target schema with an unproducible relation.
  Schema target = *m.target;
  ASSERT_TRUE(target.AddRelation("Z", 1).ok());
  TgdMapping m2(*m.source, target, m.tgds);
  ConjunctiveQuery qz;
  qz.head = {InternVar("x")};
  qz.atoms = {Atom::Vars("Z", {"x"})};
  UnionCq rewriting = *RewriteOverSource(m2, qz);
  EXPECT_TRUE(rewriting.disjuncts.empty());
}

TEST(RewriteTest, MultipleProducersGiveUnion) {
  // A(x) -> D(x) and B(x) -> D(x) ∧ E(x)  (the Section 3 example): the
  // rewriting of D(x) is A(x) ∨ B(x); of E(x) is B(x).
  Tgd t1;
  t1.premise = {Atom::Vars("A", {"x"})};
  t1.conclusion = {Atom::Vars("D", {"x"})};
  Tgd t2;
  t2.premise = {Atom::Vars("B", {"x"})};
  t2.conclusion = {Atom::Vars("D", {"x"}), Atom::Vars("E", {"x"})};
  TgdMapping m(Schema{{"A", 1}, {"B", 1}}, Schema{{"D", 1}, {"E", 1}},
               {t1, t2});
  ConjunctiveQuery qd;
  qd.head = {InternVar("x")};
  qd.atoms = {Atom::Vars("D", {"x"})};
  EXPECT_EQ(RewriteOverSource(m, qd)->disjuncts.size(), 2u);
  ConjunctiveQuery qe;
  qe.head = {InternVar("x")};
  qe.atoms = {Atom::Vars("E", {"x"})};
  UnionCq re = *RewriteOverSource(m, qe);
  ASSERT_EQ(re.disjuncts.size(), 1u);
  EXPECT_EQ(RelationText(re.disjuncts[0].atoms[0].relation), "B");
}

TEST(RewriteTest, MinimizationCollapsesRedundantCombinations) {
  // Two identical tgds produce duplicate disjuncts; minimisation collapses
  // them.
  Tgd t;
  t.premise = {Atom::Vars("A", {"x"})};
  t.conclusion = {Atom::Vars("D", {"x"})};
  TgdMapping m(Schema{{"A", 1}}, Schema{{"D", 1}}, {t, t});
  ConjunctiveQuery q;
  q.head = {InternVar("x")};
  q.atoms = {Atom::Vars("D", {"x"})};
  EXPECT_EQ(RewriteOverSource(m, q)->disjuncts.size(), 1u);
  ExecutionOptions no_min;
  no_min.minimize = false;
  EXPECT_EQ(RewriteOverSource(m, q, no_min)->disjuncts.size(), 2u);
}

TEST(RewriteTest, DisjunctLimitEnforced) {
  // k query atoms with n producers each: n^k combinations.
  std::vector<Tgd> tgds;
  for (int i = 0; i < 4; ++i) {
    Tgd t;
    t.premise = {Atom::Vars("A" + std::to_string(i), {"x"})};
    t.conclusion = {Atom::Vars("D", {"x"})};
    tgds.push_back(t);
  }
  Schema src{{"A0", 1}, {"A1", 1}, {"A2", 1}, {"A3", 1}};
  TgdMapping m(src, Schema{{"D", 1}}, tgds);
  ConjunctiveQuery q;
  q.head = {InternVar("x")};
  q.atoms = {Atom::Vars("D", {"x"}), Atom::Vars("D", {"x"}),
             Atom::Vars("D", {"x"})};
  ExecutionOptions tight;
  tight.max_disjuncts = 10;  // 4^3 = 64 > 10
  EXPECT_EQ(RewriteOverSource(m, q, tight).status().code(),
            StatusCode::kResourceExhausted);
}

TEST(SkolemizeTest, AllPremiseVarsVariant) {
  // Takes(n,c) -> EXISTS y . Enrollment(y,c) becomes
  // Takes(n,c) -> Enrollment(f(n,c), c)  (paper Section 5.1).
  Tgd tgd;
  tgd.premise = {Atom::Vars("Takes", {"n", "c"})};
  tgd.conclusion = {Atom::Vars("Enrollment", {"y", "c"})};
  SOTgd so = SkolemizeTgds({tgd}, SkolemArgs::kAllPremiseVars);
  ASSERT_EQ(so.rules.size(), 1u);
  const Term& skolem = so.rules[0].conclusion[0].terms[0];
  ASSERT_TRUE(skolem.is_function());
  EXPECT_EQ(skolem.args().size(), 2u);
}

TEST(SkolemizeTest, FrontierVariantUsesOnlyFrontier) {
  Tgd tgd;
  tgd.premise = {Atom::Vars("Takes", {"n", "c"})};
  tgd.conclusion = {Atom::Vars("Enrollment", {"y", "c"})};
  SOTgd so = SkolemizeTgds({tgd}, SkolemArgs::kFrontierVars);
  const Term& skolem = so.rules[0].conclusion[0].terms[0];
  ASSERT_TRUE(skolem.is_function());
  ASSERT_EQ(skolem.args().size(), 1u);
  EXPECT_EQ(VarName(skolem.args()[0].var()), "c");
}

TEST(SkolemizeTest, TgdsToPlainSOTgdValidates) {
  Tgd tgd;
  tgd.premise = {Atom::Vars("R", {"x", "y"}), Atom::Vars("S", {"y", "z"})};
  tgd.conclusion = {Atom::Vars("T", {"x", "z", "u"})};
  TgdMapping m(Schema{{"R", 2}, {"S", 2}}, Schema{{"T", 3}}, {tgd});
  Result<SOTgdMapping> so = TgdsToPlainSOTgd(m);
  ASSERT_TRUE(so.ok());
  // u -> sk(x,y,z): all premise variables.
  const Term& skolem = so->so.rules[0].conclusion[0].terms[2];
  ASSERT_TRUE(skolem.is_function());
  EXPECT_EQ(skolem.args().size(), 3u);
}

}  // namespace
}  // namespace mapinv
