// Tests for the text-language guarantees that keep printed output safely
// re-parseable: '?'-prefixed machine-generated variables, the fresh-counter
// bump, and statement separators.

#include <gtest/gtest.h>

#include "base/symbols.h"
#include "parser/parser.h"

namespace mapinv {
namespace {

TEST(LanguageTest, QuestionMarkIdentifiersParse) {
  auto m = ParseTgdMapping("R(?r1, x) -> T(x)");
  ASSERT_TRUE(m.ok()) << m.status().ToString();
  std::vector<VarId> vars = m->tgds[0].PremiseVars();
  ASSERT_EQ(vars.size(), 2u);
  EXPECT_EQ(VarName(vars[0]), "?r1");
}

TEST(LanguageTest, BareQuestionMarkRejected) {
  EXPECT_EQ(ParseTgdMapping("R(?, x) -> T(x)").status().code(),
            StatusCode::kParseError);
}

TEST(LanguageTest, ParsingBumpsFreshCounterPastSuffix) {
  // After parsing ?z123456789, no future generated variable may reuse that
  // number — the numeric suffix of Next() must exceed it.
  auto m = ParseTgdMapping("R(?z123456789, x) -> T(x)");
  ASSERT_TRUE(m.ok());
  FreshVarGen gen("q");
  std::string name = VarName(gen.Next());
  size_t pos = name.size();
  while (pos > 0 && isdigit(static_cast<unsigned char>(name[pos - 1]))) --pos;
  uint64_t suffix = std::stoull(name.substr(pos));
  EXPECT_GT(suffix, 123456789ull);
}

TEST(LanguageTest, ExistsPrefixRoundTrips) {
  const char* text = "R(x) -> EXISTS u,v . T(x,u), U(u,v)";
  auto m1 = ParseTgdMapping(text);
  ASSERT_TRUE(m1.ok());
  auto m2 = ParseTgdMapping(m1->ToString());
  ASSERT_TRUE(m2.ok()) << m2.status().ToString() << "\n" << m1->ToString();
  EXPECT_EQ(m1->ToString(), m2->ToString());
}

TEST(LanguageTest, MixedSeparatorsAndComments) {
  auto m = ParseTgdMapping(
      "# header\nA(x) -> D(x);B(x) -> E(x)\n\n\n# trailing\nF(x) -> G(x)");
  ASSERT_TRUE(m.ok()) << m.status().ToString();
  EXPECT_EQ(m->tgds.size(), 3u);
}

TEST(LanguageTest, SOInverseOutputVariablesReparse) {
  // The PolySOInverse printout uses ?u variables and #-suffixed function
  // names; the ?u parts re-parse as atoms (full SO-inverse re-parsing is
  // out of scope, but premises must round-trip for tooling).
  auto q = ParseQuery("Q(?u0,?u1) :- T(?u0,?u1,?u1,?u2)");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_EQ(q->head.size(), 2u);
}

}  // namespace
}  // namespace mapinv
