// Differential tests for the vectorized batch executor and the bulk fire
// path: over every generator family, random shapes, batch sizes that
// straddle block boundaries, and thread counts, the vectorized engine must
// produce the exact hom enumeration order and bit-identical chase outputs
// of the scalar tuple-at-a-time path it replaced — including fresh-null
// labels, provenance, and delta/reverse/SO surfaces. Plus unit tests for
// the bulk storage primitives (Instance::AddRows / Reserve).

#include <cstddef>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "base/symbol_context.h"
#include "chase/chase_delta.h"
#include "chase/chase_reverse.h"
#include "chase/chase_so.h"
#include "chase/chase_tgd.h"
#include "chase/provenance.h"
#include "engine/execution_options.h"
#include "engine/parallel_chase.h"
#include "eval/hom.h"
#include "eval/vector_plan.h"
#include "inversion/cq_maximum_recovery.h"
#include "mapgen/generators.h"
#include "parser/parser.h"
#include "rewrite/skolemize.h"

namespace mapinv {
namespace {

// The batch sizes every differential below sweeps: degenerate (1), prime and
// smaller than most row counts (7, so blocks straddle every boundary), and
// the production default (1024).
const size_t kBatches[] = {1, 7, 1024};

// The generator families of the bench suite, small enough for tests.
std::vector<TgdMapping> FamilyMappings() {
  std::vector<TgdMapping> out;
  out.push_back(CopyMapping(2, 2));
  out.push_back(ProjectionMapping(3));
  out.push_back(ChainJoinMapping(3));
  out.push_back(ExponentialFamilyMapping(2, 2));
  return out;
}

// Renders an ordered hom enumeration; order matters (the chase's null
// labelling depends on it), so no sorting here.
std::vector<std::string> OrderedHoms(const HomSearch& search,
                                     const std::vector<Atom>& atoms) {
  std::vector<std::string> out;
  Status status = search.ForEachHom(atoms, HomConstraints{}, Assignment{},
                                    [&](const Assignment& h) {
                                      std::vector<std::pair<VarId, std::string>>
                                          items;
                                      for (const auto& [v, val] : h) {
                                        items.emplace_back(v, val.ToString());
                                      }
                                      std::sort(items.begin(), items.end());
                                      std::string s;
                                      for (const auto& [v, val] : items) {
                                        s += std::to_string(v) + "=" + val +
                                             ";";
                                      }
                                      out.push_back(std::move(s));
                                      return true;
                                    });
  EXPECT_TRUE(status.ok()) << status.ToString();
  return out;
}

TEST(VectorPlanDifferentialTest, HomOrderMatchesScalarAcrossFamilies) {
  for (const TgdMapping& mapping : FamilyMappings()) {
    for (uint64_t seed = 1; seed <= 3; ++seed) {
      Instance inst = GenerateInstance(*mapping.source, /*tuples=*/12,
                                       /*domain=*/6, seed);
      HomSearch search(inst);
      for (const Tgd& tgd : mapping.tgds) {
        search.set_vector_batch(0);  // scalar oracle
        const std::vector<std::string> scalar =
            OrderedHoms(search, tgd.premise);
        for (size_t batch : kBatches) {
          search.set_vector_batch(batch);
          EXPECT_EQ(OrderedHoms(search, tgd.premise), scalar)
              << "seed=" << seed << " batch=" << batch;
        }
      }
    }
  }
}

TEST(VectorPlanDifferentialTest, HomOrderMatchesScalarOnRandomShapes) {
  for (uint64_t seed = 1; seed <= 4; ++seed) {
    RandomMappingConfig config;
    config.seed = seed;
    config.num_tgds = 3;
    config.source_relations = 3;
    config.premise_atoms = 3;
    config.premise_vars = 4;
    config.arity = 3;
    TgdMapping mapping = GenerateRandomMapping(config);
    Instance inst = GenerateInstance(*mapping.source, /*tuples=*/30,
                                     /*domain=*/5, seed * 11 + 2);
    HomSearch search(inst);
    for (const Tgd& tgd : mapping.tgds) {
      search.set_vector_batch(0);
      const std::vector<std::string> scalar = OrderedHoms(search, tgd.premise);
      for (size_t batch : kBatches) {
        search.set_vector_batch(batch);
        EXPECT_EQ(OrderedHoms(search, tgd.premise), scalar)
            << "seed=" << seed << " batch=" << batch;
      }
    }
  }
}

// One chase run under a given execution shape; a fresh SymbolContext per run
// makes null labels comparable byte for byte.
std::string ChaseText(const TgdMapping& mapping, const Instance& source,
                      bool vectorized, size_t batch, int threads,
                      bool oblivious) {
  SymbolContext symbols;
  ExecutionOptions options;
  options.symbols = &symbols;
  options.vectorized = vectorized;
  if (batch != 0) options.vector_batch = batch;
  options.threads = threads;
  options.oblivious = oblivious;
  Result<Instance> result = ChaseTgds(mapping, source, options);
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  return result.ok() ? result.ValueOrDie().ToString() : std::string();
}

TEST(VectorPlanDifferentialTest, ChaseBitIdenticalAcrossExecutionShapes) {
  std::vector<TgdMapping> mappings = FamilyMappings();
  // An existential + repeated-variable mapping: the standard chase's bulk
  // path must decline the existential tgd (satisfaction probes) while the
  // oblivious sweep below exercises bulk fresh-null pregeneration.
  mappings.push_back(ParseTgdMapping("S1(x) -> T(x)\n"
                                     "S2(x) -> T(x)\n"
                                     "P(x,y) -> Q(x,x,y)\n"
                                     "E(x) -> F(x,y)\n")
                         .ValueOrDie());
  for (const TgdMapping& mapping : mappings) {
    for (uint64_t seed = 1; seed <= 3; ++seed) {
      Instance source = GenerateInstance(*mapping.source, /*tuples=*/12,
                                         /*domain=*/6, seed);
      for (bool oblivious : {false, true}) {
        const std::string scalar =
            ChaseText(mapping, source, /*vectorized=*/false, 0, 1, oblivious);
        ASSERT_FALSE(scalar.empty());
        for (int threads : {1, 4}) {
          for (size_t batch : kBatches) {
            EXPECT_EQ(ChaseText(mapping, source, true, batch, threads,
                                oblivious),
                      scalar)
                << "seed=" << seed << " threads=" << threads
                << " batch=" << batch << " oblivious=" << oblivious;
          }
        }
      }
    }
  }
}

TEST(VectorPlanDifferentialTest, DeltaChaseAndProvenanceMatchScalar) {
  TgdMapping mapping = ParseTgdMapping("R(x,y), S(y,z) -> T(x,z)\n"
                                       "R(x,y) -> U(x,x)\n")
                           .ValueOrDie();
  for (uint64_t seed = 1; seed <= 3; ++seed) {
    Instance source = GenerateInstance(*mapping.source, /*tuples=*/10,
                                       /*domain=*/5, seed);
    auto run = [&](bool vectorized, size_t batch) {
      SymbolContext symbols;
      ExecutionOptions options;
      options.symbols = &symbols;
      options.vectorized = vectorized;
      if (batch != 0) options.vector_batch = batch;
      Instance target = ChaseTgds(mapping, source, options).ValueOrDie();
      Instance grown = source.Fork();
      const DeltaWatermark mark = WatermarkOf(grown);
      EXPECT_TRUE(grown.AddInts("R", {91, 92}).ok());
      EXPECT_TRUE(grown.AddInts("S", {92, 93}).ok());
      ChaseProvenance provenance;
      Result<bool> complete =
          ChaseDelta(mapping, grown, mark, &target, &provenance, options);
      EXPECT_TRUE(complete.ok()) << complete.status().ToString();
      std::string text = target.ToString() + "\n";
      for (RelationId rel = 0; rel < mapping.target->size(); ++rel) {
        for (size_t ref = 0; ref < target.NumRows(rel); ++ref) {
          text += std::to_string(
                      provenance.TgdFor(rel, static_cast<TupleRef>(ref))) +
                  ",";
        }
        text += "\n";
      }
      return text;
    };
    const std::string scalar = run(false, 0);
    for (size_t batch : kBatches) {
      EXPECT_EQ(run(true, batch), scalar) << "seed=" << seed
                                          << " batch=" << batch;
    }
  }
}

TEST(VectorPlanDifferentialTest, ReverseWorldsMatchScalar) {
  TgdMapping mapping =
      ParseTgdMapping("R(x,y), S(y,z) -> T(x,z)").ValueOrDie();
  ReverseMapping reverse = CqMaximumRecovery(mapping).ValueOrDie();
  Instance target =
      ParseInstance("{ T(1,5), T(3,5), T(2,2) }", *reverse.source)
          .ValueOrDie();
  auto run = [&](bool vectorized, size_t batch, int threads) {
    SymbolContext symbols;
    ExecutionOptions options;
    options.symbols = &symbols;
    options.vectorized = vectorized;
    if (batch != 0) options.vector_batch = batch;
    options.threads = threads;
    std::vector<Instance> worlds =
        ChaseReverseWorlds(reverse, target, options).ValueOrDie();
    std::string text;
    for (const Instance& world : worlds) text += world.ToString() + "\n";
    return text;
  };
  const std::string scalar = run(false, 0, 1);
  for (int threads : {1, 4}) {
    for (size_t batch : kBatches) {
      EXPECT_EQ(run(true, batch, threads), scalar)
          << "threads=" << threads << " batch=" << batch;
    }
  }
}

TEST(VectorPlanDifferentialTest, SOChaseMatchesScalar) {
  TgdMapping tgds = ParseTgdMapping("R(x,y) -> T(x,z)\n"
                                    "R(x,y), S(y,z) -> V(x,z)\n")
                        .ValueOrDie();
  SOTgdMapping mapping = TgdsToPlainSOTgd(tgds).ValueOrDie();
  for (uint64_t seed = 1; seed <= 3; ++seed) {
    Instance source = GenerateInstance(*mapping.source, /*tuples=*/10,
                                       /*domain=*/5, seed);
    auto run = [&](bool vectorized, size_t batch) {
      SymbolContext symbols;
      ExecutionOptions options;
      options.symbols = &symbols;
      options.vectorized = vectorized;
      if (batch != 0) options.vector_batch = batch;
      Result<Instance> result = ChaseSOTgd(mapping, source, options);
      EXPECT_TRUE(result.ok()) << result.status().ToString();
      return result.ok() ? result.ValueOrDie().ToString() : std::string();
    };
    const std::string scalar = run(false, 0);
    ASSERT_FALSE(scalar.empty());
    for (size_t batch : kBatches) {
      EXPECT_EQ(run(true, batch), scalar) << "seed=" << seed
                                          << " batch=" << batch;
    }
  }
}

// ---------------------------------------------------------------------------
// Edge shapes of the block scan

TEST(VectorPlanTest, EmptyRelationYieldsNoHomsAndEmptyChase) {
  TgdMapping mapping =
      ParseTgdMapping("R(x,y), S(y,z) -> T(x,z)").ValueOrDie();
  Instance source{mapping.source};  // every relation empty
  HomSearch search(source);
  for (size_t batch : kBatches) {
    search.set_vector_batch(batch);
    EXPECT_TRUE(OrderedHoms(search, mapping.tgds[0].premise).empty());
  }
  Instance target = ChaseTgds(mapping, source, {}).ValueOrDie();
  EXPECT_EQ(target.ToString(), "{  }");
}

TEST(VectorPlanTest, AllFilteredBlocksProduceNothing) {
  // 2000 rows of R(i, i+1): the repeated-variable premise R(x,x) filters
  // every row of every block, across many full blocks at batch 1024.
  Instance inst(Schema{{"R", 2}});
  for (int i = 0; i < 2000; ++i) {
    ASSERT_TRUE(inst.AddInts("R", {i, i + 1}).ok());
  }
  HomSearch search(inst);
  const std::vector<Atom> premise = {Atom::Vars("R", {"x", "x"})};
  for (size_t batch : kBatches) {
    search.set_vector_batch(batch);
    EXPECT_TRUE(OrderedHoms(search, premise).empty()) << "batch=" << batch;
  }
}

TEST(VectorPlanTest, BatchBoundaryStraddlingMatchesScalar) {
  // 1030 rows: the default block size (1024) splits the scan 1024 + 6, and
  // batch 7 straddles every boundary; the join fans out mid-block.
  Instance inst(Schema{{"R", 2}, {"S", 2}});
  for (int i = 0; i < 1030; ++i) {
    ASSERT_TRUE(inst.AddInts("R", {i % 13, i}).ok());
  }
  for (int i = 0; i < 13; ++i) {
    ASSERT_TRUE(inst.AddInts("S", {i, i + 1}).ok());
  }
  HomSearch search(inst);
  const std::vector<Atom> premise = {Atom::Vars("R", {"x", "y"}),
                                     Atom::Vars("S", {"x", "z"})};
  search.set_vector_batch(0);
  const std::vector<std::string> scalar = OrderedHoms(search, premise);
  ASSERT_EQ(scalar.size(), 1030u);
  for (size_t batch : kBatches) {
    search.set_vector_batch(batch);
    EXPECT_EQ(OrderedHoms(search, premise), scalar) << "batch=" << batch;
  }
}

TEST(VectorPlanTest, VectorCountersFlowAndScalarCountersStayQuiet) {
  TgdMapping mapping =
      ParseTgdMapping("R(x,y), S(y,z) -> T(x,z)").ValueOrDie();
  Instance source = GenerateInstance(*mapping.source, /*tuples=*/50,
                                     /*domain=*/8, 3);
  ExecStats stats;
  ExecutionOptions options;
  options.stats = &stats;
  ASSERT_TRUE(ChaseTgds(mapping, source, options).ok());
  EXPECT_GT(stats.vector_blocks_scanned.load(), 0u);
  EXPECT_GT(stats.vector_rows_scanned.load(), 0u);
  EXPECT_GT(stats.vector_rows_selected.load(), 0u);
  EXPECT_GT(stats.bulk_rows_appended.load(), 0u);
  // The scalar inner-loop counters belong to the scalar path.
  EXPECT_EQ(stats.hom_bucket_candidates.load(), 0u);
  EXPECT_EQ(stats.hom_slot_bindings.load(), 0u);

  ExecStats scalar_stats;
  options.stats = &scalar_stats;
  options.vectorized = false;
  ASSERT_TRUE(ChaseTgds(mapping, source, options).ok());
  EXPECT_EQ(scalar_stats.vector_blocks_scanned.load(), 0u);
  EXPECT_EQ(scalar_stats.bulk_rows_appended.load(), 0u);
  EXPECT_GT(scalar_stats.hom_bucket_candidates.load(), 0u);
}

TEST(VectorPlanTest, WidePlansRouteToTheScalarExecutor) {
  // Plans wider than kVectorMaxPlanSteps (instance-as-query searches like
  // core folding) must run scalar even with vectorized execution on: batch
  // setup is per-step and the first match lands only after cascading through
  // every level, which turns early-stopped existence probes pathological.
  Instance inst(Schema{{"R", 2}});
  ASSERT_TRUE(inst.AddInts("R", {0, 0}).ok());  // self-loop: one hom exists
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(inst.AddInts("R", {i, i + 1}).ok());
  }
  std::vector<Atom> chain;
  for (int i = 0; i <= static_cast<int>(kVectorMaxPlanSteps); ++i) {
    chain.push_back(Atom::Vars(
        "R", {"x" + std::to_string(i), "x" + std::to_string(i + 1)}));
  }
  HomSearch search(inst);
  search.set_vector_batch(0);
  const std::vector<std::string> scalar = OrderedHoms(search, chain);
  ASSERT_FALSE(scalar.empty());
  search.set_vector_batch(1024);
  ExecStats stats;
  search.set_stats(&stats);
  EXPECT_EQ(OrderedHoms(search, chain), scalar);
  EXPECT_EQ(stats.vector_blocks_scanned.load(), 0u) << "wide plan vectorized";
  EXPECT_GT(stats.hom_bucket_candidates.load(), 0u);
}

// ---------------------------------------------------------------------------
// Bulk storage primitives

TEST(BulkAppendTest, AddRowsDedupsWithinAndAcrossBatches) {
  Instance inst(Schema{{"R", 2}});
  ASSERT_TRUE(inst.AddInts("R", {1, 2}).ok());
  const RelationId rel = inst.schema().Require("R").ValueOrDie();

  // Batch with an intra-batch duplicate, a duplicate of an existing row,
  // and two genuinely new rows (one repeated).
  const std::vector<Value> rows = {
      Value::Int(3), Value::Int(4),  // new
      Value::Int(1), Value::Int(2),  // dup of existing
      Value::Int(3), Value::Int(4),  // intra-batch dup
      Value::Int(5), Value::Int(6),  // new
  };
  std::vector<uint8_t> added;
  const size_t inserted =
      inst.AddRows(rel, rows.data(), 4, &added).ValueOrDie();
  EXPECT_EQ(inserted, 2u);
  ASSERT_EQ(added.size(), 4u);
  EXPECT_EQ(added[0], 1);
  EXPECT_EQ(added[1], 0);
  EXPECT_EQ(added[2], 0);
  EXPECT_EQ(added[3], 1);
  EXPECT_EQ(inst.NumRows(rel), 3u);
  EXPECT_EQ(inst.ToString(), "{ R(1,2), R(3,4), R(5,6) }");

  // A second batch still sees everything the first one added.
  const std::vector<Value> again = {Value::Int(5), Value::Int(6)};
  EXPECT_EQ(inst.AddRows(rel, again.data(), 1, &added).ValueOrDie(), 0u);
  EXPECT_EQ(inst.NumRows(rel), 3u);
}

TEST(BulkAppendTest, AddRowsMatchesSequentialAddRow) {
  // Differential: one AddRows batch against row-by-row AddRow over the same
  // mixed (duplicate-heavy) input must leave identical instances.
  const int kRows = 300;
  Instance bulk(Schema{{"R", 2}});
  Instance seq(Schema{{"R", 2}});
  const RelationId rel = bulk.schema().Require("R").ValueOrDie();
  std::vector<Value> rows;
  for (int i = 0; i < kRows; ++i) {
    rows.push_back(Value::Int(i % 17));
    rows.push_back(Value::Int(i % 5));
  }
  ASSERT_TRUE(bulk.AddRows(rel, rows.data(), kRows, nullptr).ok());
  for (int i = 0; i < kRows; ++i) {
    const std::vector<Value> row = {rows[2 * i], rows[2 * i + 1]};
    ASSERT_TRUE(seq.AddRow(rel, row).ok());
  }
  EXPECT_EQ(bulk.ToString(), seq.ToString());
  EXPECT_EQ(bulk.NumRows(rel), seq.NumRows(rel));
}

TEST(BulkAppendTest, ReserveKeepsContentsAndCountsStable) {
  Instance inst(Schema{{"R", 2}});
  ASSERT_TRUE(inst.AddInts("R", {1, 2}).ok());
  const RelationId rel = inst.schema().Require("R").ValueOrDie();
  const std::string before = inst.ToString();
  inst.Reserve(rel, 4096);
  EXPECT_EQ(inst.NumRows(rel), 1u);
  EXPECT_EQ(inst.ToString(), before);
  // Reserved capacity is usable: a bulk append lands without issue.
  const std::vector<Value> rows = {Value::Int(7), Value::Int(8)};
  EXPECT_EQ(inst.AddRows(rel, rows.data(), 1, nullptr).ValueOrDie(), 1u);
  EXPECT_EQ(inst.NumRows(rel), 2u);
}

}  // namespace
}  // namespace mapinv
