// Tests for the incremental chase: ChaseDelta, CollectTriggersDelta,
// ChaseProvenance, MaintainedSolution. The load-bearing oracle throughout is
// differential: an incrementally maintained target must be homomorphically
// equivalent (InstancesHomEquivalent — equality up to null renaming plus
// hom-redundancy) to a fresh ChaseTgds over the grown source.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "chase/chase_delta.h"
#include "chase/chase_tgd.h"
#include "chase/maintained.h"
#include "chase/provenance.h"
#include "engine/failpoint.h"
#include "engine/parallel_chase.h"
#include "eval/hom.h"
#include "mapgen/generators.h"
#include "parser/parser.h"

namespace mapinv {
namespace {

// Splits a generated source into (base, delta): roughly `delta_rows` rows per
// relation land in the delta, the rest in the base. Deterministic.
void SplitInstance(const Instance& whole, Instance* base, Instance* delta,
                   int delta_rows) {
  for (RelationId r = 0; r < whole.schema().relations().size(); ++r) {
    const std::vector<Tuple> rows = whole.TuplesCopy(r);
    const size_t keep =
        rows.size() > static_cast<size_t>(delta_rows)
            ? rows.size() - static_cast<size_t>(delta_rows)
            : 0;
    const std::string& name = whole.schema().relations()[r].name;
    for (size_t i = 0; i < rows.size(); ++i) {
      Instance* dest = i < keep ? base : delta;
      ASSERT_TRUE(dest->Add(name, rows[i]).ok());
    }
  }
}

// Chases `base`, absorbs `delta` via ChaseDelta, and checks the result is
// hom-equivalent to a fresh chase over base ∪ delta.
void ExpectDeltaMatchesFresh(const TgdMapping& mapping, const Instance& base,
                             const Instance& delta) {
  Instance grown = base.Fork();
  ASSERT_TRUE(grown.UnionWith(delta).ok());
  Instance fresh = *ChaseTgds(mapping, grown);

  ExecutionOptions options;
  SymbolContext symbols;
  options.symbols = &symbols;  // one null scope across base chase + delta
  Instance target = *ChaseTgds(mapping, base, options);
  Instance source = base.Fork();
  const DeltaWatermark mark = WatermarkOf(source);
  ASSERT_TRUE(source.UnionWith(delta).ok());
  ChaseProvenance provenance;
  Result<bool> complete =
      ChaseDelta(mapping, source, mark, &target, &provenance, options);
  ASSERT_TRUE(complete.ok()) << complete.status().ToString();
  EXPECT_TRUE(*complete);

  Result<bool> equivalent = InstancesHomEquivalent(target, fresh);
  ASSERT_TRUE(equivalent.ok()) << equivalent.status().ToString();
  EXPECT_TRUE(*equivalent) << "incremental: " << target.ToString()
                           << "\nfresh: " << fresh.ToString();
}

TEST(ChaseDeltaTest, JoinMappingDeltaMatchesFresh) {
  // New rows complete joins across the watermark in both directions:
  // R-delta joining old S, and S-delta joining old R.
  TgdMapping mapping = *ParseTgdMapping("R(x,y), S(y,z) -> T(x,z)");
  Instance base(mapping.source);
  ASSERT_TRUE(base.AddInts("R", {1, 2}).ok());
  ASSERT_TRUE(base.AddInts("S", {2, 5}).ok());
  Instance delta(mapping.source);
  ASSERT_TRUE(delta.AddInts("R", {3, 2}).ok());   // joins old S(2,5)
  ASSERT_TRUE(delta.AddInts("S", {2, 7}).ok());   // joins old R(1,2) + new R
  ASSERT_TRUE(delta.AddInts("R", {8, 9}).ok());   // joins nothing
  ExpectDeltaMatchesFresh(mapping, base, delta);
}

TEST(ChaseDeltaTest, ExistentialMappingDeltaMatchesFresh) {
  TgdMapping mapping = *ParseTgdMapping("R(x,y) -> EXISTS z . S(x,z), S(z,y)");
  Instance base(mapping.source);
  ASSERT_TRUE(base.AddInts("R", {1, 2}).ok());
  Instance delta(mapping.source);
  ASSERT_TRUE(delta.AddInts("R", {2, 3}).ok());
  ASSERT_TRUE(delta.AddInts("R", {1, 2}).ok());  // duplicate of a base row
  ExpectDeltaMatchesFresh(mapping, base, delta);
}

TEST(ChaseDeltaTest, DifferentialOracleOnGeneratedFamilies) {
  struct Family {
    const char* label;
    TgdMapping mapping;
  };
  const Family families[] = {
      {"gen:copy:2,2", CopyMapping(2, 2)},
      {"gen:proj:3", ProjectionMapping(3)},
      {"gen:chain:3", ChainJoinMapping(3)},
      {"gen:exp:2,2", ExponentialFamilyMapping(2, 2)},
  };
  for (const Family& family : families) {
    SCOPED_TRACE(family.label);
    for (uint64_t seed = 1; seed <= 3; ++seed) {
      SCOPED_TRACE("seed=" + std::to_string(seed));
      Instance whole =
          GenerateInstance(*family.mapping.source, /*tuples_per_relation=*/12,
                           /*domain_size=*/6, seed);
      Instance base(family.mapping.source);
      Instance delta(family.mapping.source);
      SplitInstance(whole, &base, &delta, /*delta_rows=*/3);
      ExpectDeltaMatchesFresh(family.mapping, base, delta);
    }
  }
}

TEST(ChaseDeltaTest, EmptyDeltaIsANoOp) {
  TgdMapping mapping = *ParseTgdMapping("R(x,y), S(y,z) -> T(x,z)");
  Instance source(mapping.source);
  ASSERT_TRUE(source.AddInts("R", {1, 2}).ok());
  ASSERT_TRUE(source.AddInts("S", {2, 5}).ok());
  Instance target = *ChaseTgds(mapping, source);
  const std::string before = target.ToString();
  const DeltaWatermark mark = WatermarkOf(source);
  ChaseProvenance provenance;
  Result<bool> complete =
      ChaseDelta(mapping, source, mark, &target, &provenance);
  ASSERT_TRUE(complete.ok()) << complete.status().ToString();
  EXPECT_TRUE(*complete);
  EXPECT_EQ(target.ToString(), before);
  EXPECT_EQ(provenance.FiredCount(), 0u);
}

TEST(ChaseDeltaTest, DeltaWithOnlySatisfiedConclusionsAddsNothing) {
  // S1(1) already produced T(1); the appended S2(1) triggers the second tgd
  // but its conclusion is satisfied, so the standard chase fires nothing.
  TgdMapping mapping = *ParseTgdMapping("S1(x) -> T(x)\nS2(x) -> T(x)");
  Instance source(mapping.source);
  ASSERT_TRUE(source.AddInts("S1", {1}).ok());
  Instance target = *ChaseTgds(mapping, source);
  const std::string before = target.ToString();
  const DeltaWatermark mark = WatermarkOf(source);
  ASSERT_TRUE(source.AddInts("S2", {1}).ok());
  ChaseProvenance provenance;
  Result<bool> complete =
      ChaseDelta(mapping, source, mark, &target, &provenance);
  ASSERT_TRUE(complete.ok()) << complete.status().ToString();
  EXPECT_TRUE(*complete);
  EXPECT_EQ(target.ToString(), before);
  EXPECT_EQ(provenance.FiredCount(), 0u);
}

TEST(ChaseDeltaTest, AllZeroWatermarkEqualsFullChase) {
  TgdMapping mapping = *ParseTgdMapping("R(x,y), S(y,z) -> T(x,z)");
  Instance source(mapping.source);
  ASSERT_TRUE(source.AddInts("R", {1, 2}).ok());
  ASSERT_TRUE(source.AddInts("R", {3, 2}).ok());
  ASSERT_TRUE(source.AddInts("S", {2, 5}).ok());
  Instance fresh = *ChaseTgds(mapping, source);
  Instance target(mapping.target);
  ChaseProvenance provenance;
  // Default-constructed watermark: every row counts as new.
  Result<bool> complete =
      ChaseDelta(mapping, source, DeltaWatermark{}, &target, &provenance);
  ASSERT_TRUE(complete.ok()) << complete.status().ToString();
  EXPECT_TRUE(*complete);
  EXPECT_TRUE(*InstancesHomEquivalent(target, fresh));
  EXPECT_EQ(provenance.FiredCount(), target.TotalSize());
}

TEST(ChaseDeltaTest, ProvenanceRecordsProducingTgd) {
  // Two tgds into distinct target relations: every delta-fired row must name
  // the tgd that produced it; pre-delta rows stay kBaseFact.
  TgdMapping mapping = *ParseTgdMapping("A(x) -> P(x)\nB(x) -> Q(x)");
  Instance source(mapping.source);
  ASSERT_TRUE(source.AddInts("A", {1}).ok());
  Instance target = *ChaseTgds(mapping, source);
  const DeltaWatermark mark = WatermarkOf(source);
  ASSERT_TRUE(source.AddInts("A", {2}).ok());
  ASSERT_TRUE(source.AddInts("B", {3}).ok());
  ChaseProvenance provenance;
  ASSERT_TRUE(*ChaseDelta(mapping, source, mark, &target, &provenance));

  const RelationId p = target.schema().Find("P");
  const RelationId q = target.schema().Find("Q");
  ASSERT_EQ(target.NumRows(p), 2u);
  ASSERT_EQ(target.NumRows(q), 1u);
  EXPECT_EQ(provenance.TgdFor(p, 0), ChaseProvenance::kBaseFact);  // pre-delta
  EXPECT_EQ(provenance.TgdFor(p, 1), 0u);
  EXPECT_EQ(provenance.TgdFor(q, 0), 1u);
  EXPECT_EQ(provenance.FiredCount(), 2u);
}

TEST(ChaseDeltaTest, FreshNullsDoNotCollideWithExistingTargetNulls) {
  // The base target holds nulls minted by a *different* symbol context (as
  // when the target was chased in an earlier request). ChaseDelta must bump
  // its context past them before minting fresh ones.
  TgdMapping mapping = *ParseTgdMapping("R(x) -> EXISTS y . T(x,y)");
  Instance source(mapping.source);
  ASSERT_TRUE(source.AddInts("R", {1}).ok());
  Instance target = *ChaseTgds(mapping, source);  // T(1, _0) with its own ctx
  const DeltaWatermark mark = WatermarkOf(source);
  ASSERT_TRUE(source.AddInts("R", {2}).ok());
  ChaseProvenance provenance;
  ASSERT_TRUE(*ChaseDelta(mapping, source, mark, &target, &provenance));
  const RelationId t = target.schema().Find("T");
  ASSERT_EQ(target.NumRows(t), 2u);
  const std::vector<Tuple> rows = target.TuplesCopy(t);
  ASSERT_TRUE(rows[0][1].is_null());
  ASSERT_TRUE(rows[1][1].is_null());
  EXPECT_NE(rows[0][1], rows[1][1]) << target.ToString();
}

TEST(ChaseDeltaTest, PartialDegradationReturnsFalseAndKeepsSoundPrefix) {
  TgdMapping mapping = *ParseTgdMapping("R(x) -> T(x)");
  Instance source(mapping.source);
  Instance target = *ChaseTgds(mapping, source);
  const DeltaWatermark mark = WatermarkOf(source);
  for (int i = 0; i < 20; ++i) ASSERT_TRUE(source.AddInts("R", {i}).ok());

  ExecStats stats;
  ExecutionOptions options;
  options.stats = &stats;
  options.max_new_facts = 5;
  options.on_exhausted = OnExhausted::kPartial;
  ChaseProvenance provenance;
  Result<bool> complete =
      ChaseDelta(mapping, source, mark, &target, &provenance, options);
  ASSERT_TRUE(complete.ok()) << complete.status().ToString();
  EXPECT_FALSE(*complete);
  EXPECT_TRUE(stats.partial.load());
  // Sound prefix: some but not all of the 20 facts landed.
  EXPECT_GE(target.TotalSize(), 5u);
  EXPECT_LT(target.TotalSize(), 20u);

  // With kFail the same exhaustion is an error, not a partial result.
  ExecutionOptions fail_options;
  fail_options.max_new_facts = 5;
  Instance fail_target = *ChaseTgds(mapping, Instance(mapping.source));
  EXPECT_EQ(ChaseDelta(mapping, source, mark, &fail_target, nullptr,
                       fail_options)
                .status()
                .code(),
            StatusCode::kResourceExhausted);
}

TEST(ChaseDeltaTest, InjectedFailureDoesNotDegradeToPartial) {
  // Failpoints inject kInternal, which partial mode must never mask.
  TgdMapping mapping = *ParseTgdMapping("R(x) -> T(x)");
  Instance source(mapping.source);
  Instance target(mapping.target);
  const DeltaWatermark mark = WatermarkOf(source);
  ASSERT_TRUE(source.AddInts("R", {1}).ok());

  FailPointSpec spec;
  spec.mode = FailPointSpec::Mode::kAlways;
  ASSERT_TRUE(
      FailPointRegistry::Global().Activate("chase_delta/fire", spec).ok());
  ExecStats stats;
  ExecutionOptions options;
  options.stats = &stats;
  options.on_exhausted = OnExhausted::kPartial;
  Result<bool> result =
      ChaseDelta(mapping, source, mark, &target, nullptr, options);
  FailPointRegistry::Global().DeactivateAll();
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInternal);
  EXPECT_FALSE(stats.partial.load());
}

// ---------------------------------------------------------------------------
// MaintainedSolution: the append/refresh lifecycle over ChaseDelta.

TEST(MaintainedSolutionTest, AppendRefreshMatchesFreshChase) {
  auto mapping = std::make_shared<TgdMapping>(
      *ParseTgdMapping("R(x,y), S(y,z) -> EXISTS w . T(x,w), U(w,z)"));
  MaintainedSolution maintained(mapping);

  ASSERT_EQ(*maintained.AppendText("{ R(1,2), S(2,3) }"), 2u);
  Result<std::string> first = maintained.RefreshAndRender({});
  ASSERT_TRUE(first.ok()) << first.status().ToString();

  ASSERT_EQ(*maintained.AppendText("{ R(4,2), S(3,5) }"), 2u);
  ASSERT_EQ(*maintained.AppendText("{ R(1,2) }"), 0u);  // duplicate
  Result<std::string> second = maintained.RefreshAndRender({});
  ASSERT_TRUE(second.ok()) << second.status().ToString();

  Instance fresh = *ChaseTgds(*mapping, maintained.SourceSnapshot());
  EXPECT_TRUE(*InstancesHomEquivalent(maintained.TargetSnapshot(), fresh));
  EXPECT_EQ(*second, maintained.TargetSnapshot().ToString() + "\n");

  MaintainedSolution::Counters counters = maintained.CountersSnapshot();
  EXPECT_EQ(counters.refreshes, 2u);
  EXPECT_EQ(counters.partial_refreshes, 0u);
  EXPECT_EQ(counters.appended_rows, 4u);
  EXPECT_EQ(counters.source_rows, 4u);
  EXPECT_EQ(counters.target_rows, maintained.TargetSnapshot().TotalSize());
}

TEST(MaintainedSolutionTest, RefreshWithNoNewRowsIsStable) {
  auto mapping = std::make_shared<TgdMapping>(*ParseTgdMapping("R(x) -> T(x)"));
  MaintainedSolution maintained(mapping);
  ASSERT_EQ(*maintained.AppendText("{ R(1) }"), 1u);
  const std::string first = *maintained.RefreshAndRender({});
  const std::string second = *maintained.RefreshAndRender({});
  EXPECT_EQ(first, second);
  EXPECT_EQ(maintained.CountersSnapshot().refreshes, 2u);
}

TEST(MaintainedSolutionTest, PartialRefreshCommitsNothingAndRetries) {
  auto mapping = std::make_shared<TgdMapping>(*ParseTgdMapping("R(x) -> T(x)"));
  MaintainedSolution maintained(mapping);
  Instance delta(mapping->source);
  for (int i = 0; i < 20; ++i) ASSERT_TRUE(delta.AddInts("R", {i}).ok());
  ASSERT_EQ(*maintained.AppendInstance(delta), 20u);

  ExecutionOptions tight;
  tight.max_new_facts = 5;
  tight.on_exhausted = OnExhausted::kPartial;
  Result<std::string> degraded = maintained.RefreshAndRender(tight);
  ASSERT_TRUE(degraded.ok()) << degraded.status().ToString();
  // Rendered prefix is non-empty, but the commit did not happen: the
  // maintained target is still empty and the counters say partial.
  EXPECT_NE(*degraded, "{ }\n");
  EXPECT_EQ(maintained.TargetSnapshot().TotalSize(), 0u);
  MaintainedSolution::Counters counters = maintained.CountersSnapshot();
  EXPECT_EQ(counters.refreshes, 0u);
  EXPECT_EQ(counters.partial_refreshes, 1u);

  // A later unconstrained refresh retries the whole delta and commits.
  const std::string complete = *maintained.RefreshAndRender({});
  EXPECT_EQ(maintained.TargetSnapshot().TotalSize(), 20u);
  EXPECT_EQ(complete, maintained.TargetSnapshot().ToString() + "\n");
  EXPECT_EQ(maintained.CountersSnapshot().refreshes, 1u);
}

TEST(MaintainedSolutionTest, AppendTextRejectsRowsOutsideSourceSchema) {
  auto mapping = std::make_shared<TgdMapping>(*ParseTgdMapping("R(x) -> T(x)"));
  MaintainedSolution maintained(mapping);
  EXPECT_FALSE(maintained.AppendText("{ Nope(1) }").ok());
  EXPECT_EQ(maintained.CountersSnapshot().appended_rows, 0u);
}

}  // namespace
}  // namespace mapinv
