// Tests for SO-tgd composition (inversion/compose.h).

#include <gtest/gtest.h>

#include "chase/chase_so.h"
#include "inversion/compose.h"
#include "parser/parser.h"
#include "rewrite/skolemize.h"

namespace mapinv {
namespace {

TEST(ComposeTest, SimpleRelayComposesToDirectRule) {
  // A(x,y) -> M(x,y); M(x,y) -> Z(y,x)  composes to  A(x,y) -> Z(y,x).
  auto m12 = ParseTgdMapping("A(x,y) -> M(x,y)");
  auto m23 = ParseTgdMapping("M(x,y) -> Z(y,x)");
  ASSERT_TRUE(m12.ok() && m23.ok());
  SOTgdMapping composed = *ComposeTgdMappings(*m12, *m23);
  ASSERT_EQ(composed.so.rules.size(), 1u);
  EXPECT_EQ(composed.so.rules[0].premise[0].relation, InternRelation("A"));
  EXPECT_EQ(composed.so.rules[0].conclusion[0].relation, InternRelation("Z"));
  EXPECT_TRUE(composed.Validate().ok());
}

TEST(ComposeTest, JoinInMiddleMapping) {
  // A(x,y) -> M(x,y) and B(x,y) -> N(x,y); M(x,z), N(z,y) -> Z(x,y)
  // composes to A(x,z), B(z,y) -> Z(x,y).
  auto m12 = ParseTgdMapping("A(x,y) -> M(x,y)\nB(x,y) -> N(x,y)");
  auto m23 = ParseTgdMapping("M(x,z), N(z,y) -> Z(x,y)");
  ASSERT_TRUE(m12.ok() && m23.ok());
  SOTgdMapping composed = *ComposeTgdMappings(*m12, *m23);
  ASSERT_EQ(composed.so.rules.size(), 1u);
  EXPECT_EQ(composed.so.rules[0].premise.size(), 2u);

  // Semantics: chase {A(1,2), B(2,3)} through the composition = chasing
  // through both mappings in sequence.
  Instance source(*composed.source);
  ASSERT_TRUE(source.AddInts("A", {1, 2}).ok());
  ASSERT_TRUE(source.AddInts("B", {2, 3}).ok());
  Instance direct = *ChaseSOTgd(composed, source);
  EXPECT_EQ(direct.ToString(), "{ Z(1,3) }");
}

TEST(ComposeTest, SkolemsNestThroughComposition) {
  // A(x) -> EXISTS y . M(x,y); M(x,y) -> EXISTS z . Z(y,z): the composed
  // conclusion nests one invented value inside another's scope.
  auto m12 = ParseTgdMapping("A(x) -> EXISTS y . M(x,y)");
  auto m23 = ParseTgdMapping("M(x,y) -> EXISTS z . Z(y,z)");
  ASSERT_TRUE(m12.ok() && m23.ok());
  SOTgdMapping composed = *ComposeTgdMappings(*m12, *m23);
  ASSERT_EQ(composed.so.rules.size(), 1u);
  const Atom& conclusion = composed.so.rules[0].conclusion[0];
  // Z(sk1(x), sk2(...)) — the first argument is the first mapping's Skolem.
  EXPECT_TRUE(conclusion.terms[0].is_function());
  // Chase behaviour: {A(1)} yields a single Z fact with two nulls.
  Instance source(*composed.source);
  ASSERT_TRUE(source.AddInts("A", {1}).ok());
  Instance target = *ChaseSOTgd(composed, source);
  RelationId z = target.schema().Find("Z");
  ASSERT_EQ(target.TuplesCopy(z).size(), 1u);
  EXPECT_TRUE(target.TuplesCopy(z)[0][0].is_null());
  EXPECT_TRUE(target.TuplesCopy(z)[0][1].is_null());
}

TEST(ComposeTest, UnificationClashPrunesCombination) {
  // First produces only M(x,x); second requires M(x,y) with x,y feeding
  // different target positions — still composes (x=y). But a repeated
  // Skolem pattern that cannot match is pruned: first produces M(f(x),x),
  // second needs M(u,u) ⇒ f(x)=x fails the occurs check.
  auto m12 = ParseSOTgdMapping("A(x) -> M(f(x),x)");
  auto m23 = ParseTgdMapping("M(u,u) -> Z(u)");
  ASSERT_TRUE(m12.ok() && m23.ok());
  auto m23so = ParseSOTgdMapping("M(u,u) -> Z(u)");
  ASSERT_TRUE(m23so.ok());
  SOTgdMapping composed = *ComposeSOTgds(*m12, *m23so);
  EXPECT_TRUE(composed.so.rules.empty());
}

TEST(ComposeTest, MiddleSchemaMismatchRejected) {
  auto m12 = ParseTgdMapping("A(x) -> M(x)");
  auto m23 = ParseTgdMapping("W(x,y) -> Z(x)");
  ASSERT_TRUE(m12.ok() && m23.ok());
  EXPECT_EQ(ComposeTgdMappings(*m12, *m23).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(ComposeTest, SharedFunctionSymbolRejected) {
  auto m12 = ParseSOTgdMapping("A(x) -> M(f(x))");
  auto m23 = ParseSOTgdMapping("M(x) -> Z(f(x))");
  ASSERT_TRUE(m12.ok() && m23.ok());
  EXPECT_EQ(ComposeSOTgds(*m12, *m23).status().code(),
            StatusCode::kUnsupported);
}

TEST(ComposeTest, MultipleProducersMultiplyRules) {
  auto m12 = ParseTgdMapping("A(x) -> M(x)\nB(x) -> M(x)");
  auto m23 = ParseTgdMapping("M(x) -> Z(x)");
  ASSERT_TRUE(m12.ok() && m23.ok());
  SOTgdMapping composed = *ComposeTgdMappings(*m12, *m23);
  EXPECT_EQ(composed.so.rules.size(), 2u);
  ExecutionOptions tight;
  tight.max_rules = 1;
  EXPECT_EQ(ComposeTgdMappings(*m12, *m23, tight).status().code(),
            StatusCode::kResourceExhausted);
}

TEST(ComposeTest, SequentialChaseAgreesWithComposedChase) {
  // Randomish end-to-end agreement check on a two-hop pipeline.
  auto m12 = ParseTgdMapping("A(x,y) -> M(x,y), P(y)\nB(x) -> M(x,x)");
  auto m23 = ParseTgdMapping("M(x,y) -> Z(x,y)\nP(x) -> Q(x)");
  ASSERT_TRUE(m12.ok() && m23.ok());
  SOTgdMapping composed = *ComposeTgdMappings(*m12, *m23);
  auto so12 = TgdsToPlainSOTgd(*m12);
  auto so23 = TgdsToPlainSOTgd(*m23);
  ASSERT_TRUE(so12.ok() && so23.ok());

  Instance source(*m12->source);
  ASSERT_TRUE(source.AddInts("A", {1, 2}).ok());
  ASSERT_TRUE(source.AddInts("A", {4, 4}).ok());
  ASSERT_TRUE(source.AddInts("B", {7}).ok());
  Instance mid = *ChaseSOTgd(*so12, source);
  Instance sequential = *ChaseSOTgd(*so23, mid);
  Instance direct = *ChaseSOTgd(composed, source);
  EXPECT_TRUE(direct.EqualTo(sequential))
      << "direct:     " << direct.ToString()
      << "\nsequential: " << sequential.ToString();
}

}  // namespace
}  // namespace mapinv
