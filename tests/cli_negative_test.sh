#!/usr/bin/env bash
# Negative-path tests for the tool binaries: every malformed invocation must
# exit with the documented status (1 usage, 2 processing) and a one-line
# diagnostic on stderr — never a crash, never silence. Run as
#   cli_negative_test.sh <mapinv_cli> [<mapinv_serve> <mapinv_bench_serve>]
# (the serve binaries are optional so the script still runs standalone).
set -u

CLI=${1:?usage: cli_negative_test.sh <mapinv_cli> [<serve> <bench_serve>]}
SERVE=${2:-}
BENCH=${3:-}
failures=0
checks=0

# expect_bin <binary> <rc> <stderr-substring> -- <args...>
expect_bin() {
  local bin=$1 want_rc=$2 want_msg=$3
  shift 4  # binary, rc, substring, "--"
  local err rc
  err=$("$bin" "$@" 2>&1 >/dev/null)
  rc=$?
  checks=$((checks + 1))
  if [ "$rc" -ne "$want_rc" ]; then
    echo "FAIL: $(basename "$bin") $* : exit $rc, want $want_rc" >&2
    echo "      stderr: $err" >&2
    failures=$((failures + 1))
    return
  fi
  if [ -n "$want_msg" ] && ! grep -qF -- "$want_msg" <<<"$err"; then
    echo "FAIL: $(basename "$bin") $* : stderr lacks '$want_msg'" >&2
    echo "      stderr: $err" >&2
    failures=$((failures + 1))
  fi
}

# expect <rc> <stderr-substring> -- <args...>   (mapinv_cli shorthand)
expect() {
  expect_bin "$CLI" "$@"
}

tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT
printf 'this is not a mapping @@@\n' > "$tmp/garbage.tgd"

# --- flag handling ---------------------------------------------------------
expect 1 "unknown flag '--frobnicate'"      -- --frobnicate invert gen:copy:1,1
expect 1 "expects a value"                  -- invert gen:copy:1,1 --deadline-ms
expect 1 "bad value '-5'"                   -- --deadline-ms=-5 invert gen:copy:1,1
expect 1 "bad value"                        -- --deadline-ms=10x invert gen:copy:1,1
expect 1 "bad value"                        -- --threads=99999999999999999999 invert gen:copy:1,1
expect 1 "bad value"                        -- --max-facts=1e9 invert gen:copy:1,1
expect 1 "bad value"                        -- --on-exhausted=maybe invert gen:copy:1,1
expect 1 "bad value"                        -- --cancel-after-ms=soon invert gen:copy:1,1

# --- command dispatch ------------------------------------------------------
expect 1 ""                                 --
expect 1 "unknown command 'frobnicate'"     -- frobnicate gen:copy:1,1
expect 1 ""                                 -- rewrite gen:copy:1,1

# --- generator specs -------------------------------------------------------
expect 2 "bad generator spec"               -- invert gen:exp:0,4
expect 2 "bad generator spec"               -- invert gen:exp:2,-3
expect 2 "bad generator spec"               -- invert gen:exp:99999999999999999999,2
expect 2 "bad generator spec"               -- invert gen:exp:2,2,2
expect 2 "bad generator spec"               -- invert gen:chain:abc
expect 2 "unknown generator family"         -- invert gen:zipf:3
expect 2 "bad generator spec"               -- invert gen:copy:10000000,2

# --- file and parse errors -------------------------------------------------
expect 2 "cannot open"                      -- invert "$tmp/no_such_file.tgd"
expect 2 ""                                 -- invert "$tmp/garbage.tgd"
expect 2 "cannot open"                      -- exchange gen:copy:1,1 "$tmp/no_such_file.inst"

# --- incremental exchange --------------------------------------------------
printf 'R(x,y) -> T(x,y)\n' > "$tmp/copy.tgd"
printf '{ R(1,2) }\n' > "$tmp/base.inst"
printf '{ R(3,4) }\n' > "$tmp/delta.inst"
expect 1 ""             -- exchange-delta "$tmp/copy.tgd" "$tmp/base.inst"
expect 2 "cannot open"  -- exchange-delta "$tmp/copy.tgd" "$tmp/base.inst" "$tmp/no_such.inst"
expect 2 "cannot open"  -- exchange-delta "$tmp/copy.tgd" "$tmp/no_such.inst" "$tmp/delta.inst"
expect 0 ""             -- exchange-delta "$tmp/copy.tgd" "$tmp/base.inst" "$tmp/delta.inst"

# --- snapshots and the memory budget ---------------------------------------
printf '{ R0(1), R0(2) }\n' > "$tmp/r0.inst"
printf '{ S(1,2,3) }\n' > "$tmp/wrong_schema.inst"
printf 'not a snapshot\n' > "$tmp/garbage.snap"
expect 1 "bad value"               -- --memory-budget-bytes=abc invert gen:copy:1,1
expect 1 "bad value"               -- --memory-budget-bytes=-1 invert gen:copy:1,1
expect 1 "bad value"               -- --vector-max-plan-steps=abc invert gen:copy:1,1
expect 1 "expects a file path"     -- --save-instance= invert gen:copy:1,1
expect 1 "expects a file path"     -- --load-instance= invert gen:copy:1,1
expect 2 "cannot open snapshot"    -- --load-instance="$tmp/no_such.snap" exchange gen:copy:1,1
expect 2 "snapshot:"               -- --load-instance="$tmp/garbage.snap" exchange gen:copy:1,1
expect 2 "instance-producing"      -- --save-instance="$tmp/out.snap" invert gen:copy:1,1
expect 2 "cannot create"           -- --save-instance=/no/such/dir/out.snap exchange gen:copy:1,1 "$tmp/r0.inst"
# spill only engages once a segment seals (1024 rows), so build a big-enough
# instance; an unusable --spill-dir must then fail the run cleanly
{ printf '{ R0(0)'; for i in $(seq 1 1200); do printf ', R0(%d)' "$i"; done; printf ' }\n'; } > "$tmp/wide.inst"
expect 2 "cannot create spill file" -- --memory-budget-bytes=1 --spill-dir=/no/such/dir exchange gen:copy:1,1 "$tmp/wide.inst"
# budget=0 means unlimited, never an error
expect 0 ""                        -- --memory-budget-bytes=0 exchange gen:copy:1,1 "$tmp/r0.inst"
# a snapshot from the wrong schema is rejected before the chase touches it
expect 0 ""                        -- --save-instance="$tmp/wrong.snap" core "$tmp/wrong_schema.inst"
expect 2 "does not match the mapping's source schema" \
  -- --load-instance="$tmp/wrong.snap" exchange gen:copy:1,1
# truncated snapshots fail cleanly, whatever the cut point
expect 0 ""                        -- --save-instance="$tmp/good.snap" core "$tmp/r0.inst"
head -c 20 "$tmp/good.snap" > "$tmp/trunc.snap"
expect 2 "snapshot:"               -- --load-instance="$tmp/trunc.snap" exchange gen:copy:1,1
# and the positive twin: save -> load -> re-save round-trips byte-identically
expect 0 ""                        -- --load-instance="$tmp/good.snap" --save-instance="$tmp/resaved.snap" core
checks=$((checks + 1))
if ! cmp -s "$tmp/good.snap" "$tmp/resaved.snap"; then
  echo "FAIL: save -> load -> re-save is not byte-identical" >&2
  failures=$((failures + 1))
fi

# --- durable-job checkpointing (docs/JOBS.md) ------------------------------
printf 'S1(x) -> T(x)\nS2(x) -> T(x)\n' > "$tmp/disj.tgd"
printf '{ S1(1), S2(2) }\n' > "$tmp/disj.inst"
expect 1 "expects a directory path" -- --checkpoint-dir= roundtrip "$tmp/disj.tgd" "$tmp/disj.inst"
expect 1 "bad value"                -- --checkpoint-every=abc roundtrip "$tmp/disj.tgd" "$tmp/disj.inst"
expect 2 "cannot open"              -- roundtrip "$tmp/disj.tgd" "$tmp/disj.inst" "$tmp/no_such_reverse.txt"
# a checkpointed run commits; re-running without --resume must refuse
mkdir "$tmp/job"
expect 0 ""       -- --checkpoint-dir="$tmp/job" --checkpoint-every=1 roundtrip "$tmp/disj.tgd" "$tmp/disj.inst"
expect 2 "resume" -- --checkpoint-dir="$tmp/job" roundtrip "$tmp/disj.tgd" "$tmp/disj.inst"
# resuming with mismatched inputs is refused; with matching inputs the
# resumed output byte-equals the uncheckpointed run's
printf '{ S1(9) }\n' > "$tmp/other.inst"
expect 2 "different inputs" -- --checkpoint-dir="$tmp/job" --resume roundtrip "$tmp/disj.tgd" "$tmp/other.inst"
"$CLI" roundtrip "$tmp/disj.tgd" "$tmp/disj.inst" > "$tmp/clean.out" 2>/dev/null
"$CLI" --checkpoint-dir="$tmp/job" --resume roundtrip "$tmp/disj.tgd" "$tmp/disj.inst" > "$tmp/resumed.out" 2>/dev/null
checks=$((checks + 1))
if ! cmp -s "$tmp/clean.out" "$tmp/resumed.out"; then
  echo "FAIL: resumed roundtrip output differs from the uncheckpointed run" >&2
  failures=$((failures + 1))
fi
# a torn checkpoint directory is a clean error, never a crash
mkdir "$tmp/torn"
printf 'garbage, not a manifest' > "$tmp/torn/manifest-1"
expect 2 "no loadable checkpoint" -- --checkpoint-dir="$tmp/torn" --resume roundtrip "$tmp/disj.tgd" "$tmp/disj.inst"

# --- the positive control: a good invocation still works -------------------
expect 0 ""                                 -- invert gen:copy:1,1

# --- cancellation and partial-result paths ---------------------------------
expect 2 "cancelled"                        -- --cancel-after-ms=0 invert gen:exp:2,5
err=$("$CLI" --cancel-after-ms=0 --on-exhausted=partial --stats-json invert gen:exp:2,5 2>&1 >/dev/null)
rc=$?
checks=$((checks + 1))
if [ "$rc" -ne 0 ] || ! grep -qF '"partial":true' <<<"$err"; then
  echo "FAIL: cancel + --on-exhausted=partial: exit $rc, stderr: $err" >&2
  failures=$((failures + 1))
fi

# --- serve-flag rejection (same shared strict parser as the CLI) -----------
if [ -n "$SERVE" ]; then
  expect_bin "$SERVE" 1 "unknown flag '--frobnicate'" -- --frobnicate
  expect_bin "$SERVE" 1 "need --unix=PATH and/or --tcp=PORT" --
  expect_bin "$SERVE" 1 "expects a value"      -- --tcp
  expect_bin "$SERVE" 1 "bad value '70000'"    -- --tcp=70000
  expect_bin "$SERVE" 1 "bad value '-1'"       -- --tcp=-1
  expect_bin "$SERVE" 1 "bad value '10x'"      -- --tcp=0 --deadline-ms=10x
  expect_bin "$SERVE" 1 "bad value '1e9'"      -- --tcp=0 --max-facts=1e9
  expect_bin "$SERVE" 1 "bad value '0'"        -- --tcp=0 --max-frame-bytes=0
  expect_bin "$SERVE" 1 "bad value"            -- --tcp=0 --threads=99999999999999999999
  expect_bin "$SERVE" 1 "--on-exhausted"       -- --tcp=0 --on-exhausted=maybe
  expect_bin "$SERVE" 1 "bad value 'soon'"     -- --tcp=0 --session-ttl-ms=soon
  expect_bin "$SERVE" 1 "bad value '-1'"       -- --tcp=0 --max-jobs=-1
fi
if [ -n "$BENCH" ]; then
  expect_bin "$BENCH" 1 "unknown flag"         -- --frobnicate
  expect_bin "$BENCH" 1 ""                     --
  expect_bin "$BENCH" 1 "bad value"            -- --tcp=70000
  expect_bin "$BENCH" 1 "bad value"            -- --tcp=0 --requests=0
  expect_bin "$BENCH" 1 "bad value"            -- --tcp=0 --requests=abc
fi

if [ "$failures" -ne 0 ]; then
  echo "cli_negative_test: $failures of $checks checks failed" >&2
  exit 1
fi
echo "cli_negative_test: all $checks checks passed"
