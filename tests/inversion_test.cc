// Tests for the Section 4 pipeline: MaximumRecovery, EliminateEqualities,
// EliminateDisjunctions, CqMaximumRecovery — including the paper's worked
// examples.

#include <gtest/gtest.h>

#include "chase/round_trip.h"
#include "eval/query_eval.h"
#include "inversion/cq_maximum_recovery.h"
#include "inversion/eliminate_disjunctions.h"
#include "inversion/eliminate_equalities.h"
#include "inversion/maximum_recovery.h"
#include "inversion/partitions.h"
#include "inversion/query_product.h"

namespace mapinv {
namespace {

TgdMapping JoinMapping() {
  Tgd tgd;
  tgd.premise = {Atom::Vars("R", {"x", "y"}), Atom::Vars("S", {"y", "z"})};
  tgd.conclusion = {Atom::Vars("T", {"x", "z"})};
  return TgdMapping(Schema{{"R", 2}, {"S", 2}}, Schema{{"T", 2}}, {tgd});
}

TgdMapping PaperABMapping() {
  // A(x,y) -> P(x,y) and B(x) -> P(x,x).
  Tgd t1;
  t1.premise = {Atom::Vars("A", {"x", "y"})};
  t1.conclusion = {Atom::Vars("P", {"x", "y"})};
  Tgd t2;
  t2.premise = {Atom::Vars("B", {"x"})};
  t2.conclusion = {Atom::Vars("P", {"x", "x"})};
  return TgdMapping(Schema{{"A", 2}, {"B", 1}}, Schema{{"P", 2}}, {t1, t2});
}

TgdMapping PaperDEMapping() {
  // A(x) -> D(x) and B(x) -> D(x) ∧ E(x)  (Section 3).
  Tgd t1;
  t1.premise = {Atom::Vars("A", {"x"})};
  t1.conclusion = {Atom::Vars("D", {"x"})};
  Tgd t2;
  t2.premise = {Atom::Vars("B", {"x"})};
  t2.conclusion = {Atom::Vars("D", {"x"}), Atom::Vars("E", {"x"})};
  return TgdMapping(Schema{{"A", 1}, {"B", 1}}, Schema{{"D", 1}, {"E", 1}},
                    {t1, t2});
}

TEST(PartitionsTest, BellNumbers) {
  EXPECT_EQ(BellNumber(0), 1u);
  EXPECT_EQ(BellNumber(1), 1u);
  EXPECT_EQ(BellNumber(2), 2u);
  EXPECT_EQ(BellNumber(3), 5u);
  EXPECT_EQ(BellNumber(4), 15u);
  EXPECT_EQ(BellNumber(5), 52u);
  EXPECT_EQ(BellNumber(10), 115975u);
}

TEST(PartitionsTest, EnumerationCountsMatchBell) {
  for (size_t n = 0; n <= 7; ++n) {
    size_t count = 0;
    ForEachPartition(n, [&](const SetPartition&) {
      ++count;
      return true;
    });
    EXPECT_EQ(count, BellNumber(n)) << "n=" << n;
  }
}

TEST(PartitionsTest, StringsAreRestrictedGrowth) {
  ForEachPartition(5, [&](const SetPartition& p) {
    uint32_t max_seen = 0;
    EXPECT_EQ(p[0], 0u);
    for (size_t i = 1; i < p.size(); ++i) {
      EXPECT_LE(p[i], max_seen + 1);
      max_seen = std::max(max_seen, p[i]);
    }
    return true;
  });
}

TEST(PartitionsTest, EarlyStopHonored) {
  size_t count = 0;
  ForEachPartition(6, [&](const SetPartition&) { return ++count < 3; });
  EXPECT_EQ(count, 3u);
}

TEST(MaximumRecoveryTest, JoinMappingShape) {
  // T(x,z) ∧ C(x) ∧ C(z) → ∃y (R(x,y) ∧ S(y,z)).
  ReverseMapping rec = *MaximumRecovery(JoinMapping());
  ASSERT_EQ(rec.deps.size(), 1u);
  const ReverseDependency& dep = rec.deps[0];
  EXPECT_EQ(dep.premise.size(), 1u);
  EXPECT_EQ(RelationText(dep.premise[0].relation), "T");
  EXPECT_EQ(dep.constant_vars.size(), 2u);
  ASSERT_EQ(dep.disjuncts.size(), 1u);
  EXPECT_EQ(dep.disjuncts[0].atoms.size(), 2u);
  EXPECT_TRUE(dep.disjuncts[0].equalities.empty());
}

TEST(MaximumRecoveryTest, PaperABMappingHasEqualityDisjunct) {
  // The recovery of A(x,y) -> P(x,y) includes the rewriting
  // A(x,y) ∨ (B(x) ∧ x = y).
  ReverseMapping rec = *MaximumRecovery(PaperABMapping());
  ASSERT_EQ(rec.deps.size(), 2u);
  const ReverseDependency& dep_a = rec.deps[0];
  ASSERT_EQ(dep_a.disjuncts.size(), 2u);
  bool saw_equality = false;
  for (const ReverseDisjunct& d : dep_a.disjuncts) {
    if (!d.equalities.empty()) saw_equality = true;
  }
  EXPECT_TRUE(saw_equality);
}

TEST(MaximumRecoveryTest, IsACqRecoveryOnSamples) {
  // Soundness (Definition 3.2): certain_{M∘M'}(Q, I) ⊆ Q(I).
  TgdMapping m = PaperABMapping();
  ReverseMapping rec = *MaximumRecovery(m);
  Instance source(*m.source);
  ASSERT_TRUE(source.AddInts("A", {1, 2}).ok());
  ASSERT_TRUE(source.AddInts("A", {3, 3}).ok());
  ASSERT_TRUE(source.AddInts("B", {3}).ok());
  ASSERT_TRUE(source.AddInts("B", {5}).ok());
  for (const char* rel : {"A", "B"}) {
    ConjunctiveQuery q;
    uint32_t arity = m.source->arity(m.source->Find(rel));
    for (uint32_t i = 0; i < arity; ++i) {
      q.head.push_back(InternVar("h" + std::to_string(i)));
    }
    q.atoms = {Atom(rel, [&] {
      std::vector<Term> ts;
      for (VarId v : q.head) ts.push_back(Term::Var(v));
      return ts;
    }())};
    AnswerSet certain = *RoundTripCertain(m, rec, source, q);
    AnswerSet direct = *EvaluateCq(q, source);
    EXPECT_TRUE(certain.SubsetOf(direct)) << rel;
  }
}

TEST(EliminateEqualitiesTest, PaperWorkedExample) {
  // Dependency (4) construction: start from
  //   A(x1,x2,x3) ∧ C(x̄) → [P(x1,x2) ∧ R(x1,x1) ∧ x2 = x3]
  //                        ∨ [∃y (P(x1,y) ∧ R(x2,x3))]
  //                        ∨ [P(x1,x2) ∧ R(x2,x3) ∧ x1 = x3]
  VarId x1 = InternVar("x1"), x2 = InternVar("x2"), x3 = InternVar("x3");
  ReverseDependency dep;
  dep.premise = {Atom::Vars("A", {"x1", "x2", "x3"})};
  dep.constant_vars = {x1, x2, x3};
  ReverseDisjunct b1;
  b1.atoms = {Atom::Vars("P", {"x1", "x2"}), Atom::Vars("R", {"x1", "x1"})};
  b1.equalities = {{x2, x3}};
  ReverseDisjunct b2;
  b2.atoms = {Atom::Vars("P", {"x1", "y"}), Atom::Vars("R", {"x2", "x3"})};
  ReverseDisjunct b3;
  b3.atoms = {Atom::Vars("P", {"x1", "x2"}), Atom::Vars("R", {"x2", "x3"})};
  b3.equalities = {{x1, x3}};
  dep.disjuncts = {b1, b2, b3};
  ReverseMapping rec(
      std::make_shared<const Schema>(Schema{{"A", 3}}),
      std::make_shared<const Schema>(Schema{{"P", 2}, {"R", 2}}), {dep});
  ASSERT_TRUE(rec.Validate().ok());

  ReverseMapping out = *EliminateEqualities(rec);
  // One output dependency per partition of {x1,x2,x3} with >= 1 consistent
  // disjunct. Find the partition {{x1},{x2,x3}} (the paper's example): its
  // premise is A(x1,x2,x2) with inequality x1 != x2 and exactly disjuncts
  // [P(x1,x2) ∧ R(x1,x1)] and [∃y P(x1,y) ∧ R(x2,x2)]  — dependency (4).
  const ReverseDependency* found = nullptr;
  for (const ReverseDependency& d : out.deps) {
    if (d.premise[0].terms[1] == d.premise[0].terms[2] &&
        d.premise[0].terms[0] != d.premise[0].terms[1] &&
        d.inequalities.size() == 1) {
      found = &d;
    }
  }
  ASSERT_NE(found, nullptr);
  ASSERT_EQ(found->disjuncts.size(), 2u);
  EXPECT_TRUE(found->disjuncts[0].equalities.empty());
  EXPECT_TRUE(found->disjuncts[1].equalities.empty());
  // First disjunct: P(x1,x2) ∧ R(x1,x1).
  EXPECT_EQ(found->disjuncts[0].atoms[0], Atom::Vars("P", {"x1", "x2"}));
  EXPECT_EQ(found->disjuncts[0].atoms[1], Atom::Vars("R", {"x1", "x1"}));
  // Second disjunct: P(x1,y) ∧ R(x2,x2).
  EXPECT_EQ(found->disjuncts[1].atoms[0], Atom::Vars("P", {"x1", "y"}));
  EXPECT_EQ(found->disjuncts[1].atoms[1], Atom::Vars("R", {"x2", "x2"}));
}

TEST(EliminateEqualitiesTest, PartitionCountForEqualityFreeInput) {
  // With no equalities anywhere, every partition keeps all disjuncts:
  // B(frontier) output dependencies per input dependency.
  ReverseMapping rec = *MaximumRecovery(JoinMapping());
  ReverseMapping out = *EliminateEqualities(rec);
  EXPECT_EQ(out.deps.size(), BellNumber(2));  // = 2
  EXPECT_TRUE(out.IsEqualityFree());
}

TEST(EliminateEqualitiesTest, IdentityPartitionKeepsAllPairwiseInequalities) {
  ReverseMapping rec = *MaximumRecovery(JoinMapping());
  ReverseMapping out = *EliminateEqualities(rec);
  bool found_discrete = false;
  for (const ReverseDependency& d : out.deps) {
    if (d.constant_vars.size() == 2) {
      found_discrete = true;
      EXPECT_EQ(d.inequalities.size(), 1u);
    }
  }
  EXPECT_TRUE(found_discrete);
}

TEST(EliminateEqualitiesTest, FrontierWidthGuard) {
  // 13 frontier variables exceed the default guard.
  std::vector<std::string> vars;
  for (int i = 0; i < 13; ++i) vars.push_back("v" + std::to_string(i));
  Tgd tgd;
  tgd.premise = {Atom::Vars("R", vars)};
  tgd.conclusion = {Atom::Vars("T", vars)};
  TgdMapping m(Schema{{"R", 13}}, Schema{{"T", 13}}, {tgd});
  ReverseMapping rec = *MaximumRecovery(m);
  EXPECT_EQ(EliminateEqualities(rec).status().code(),
            StatusCode::kResourceExhausted);
}

TEST(QueryProductTest, PaperExample) {
  // Q1(x1,x2) = P(x1,x2) ∧ R(x1,x1), Q2(x1,x2) = ∃y (P(x1,y) ∧ R(x2,x2)):
  // Q1 × Q2 = ∃z1 ∃z2 (P(x1,z1) ∧ R(z2,z2)) with free variable x1 only.
  std::vector<VarId> shared = {InternVar("x1"), InternVar("x2")};
  std::vector<Atom> q1 = {Atom::Vars("P", {"x1", "x2"}),
                          Atom::Vars("R", {"x1", "x1"})};
  std::vector<Atom> q2 = {Atom::Vars("P", {"x1", "y"}),
                          Atom::Vars("R", {"x2", "x2"})};
  std::vector<Atom> prod = ProductOfDisjuncts(shared, q1, q2);
  ASSERT_EQ(prod.size(), 2u);
  // P(f(x1,x1), f(x2,y)) = P(x1, z1).
  EXPECT_EQ(RelationText(prod[0].relation), "P");
  EXPECT_EQ(prod[0].terms[0], Term::Var("x1"));
  EXPECT_NE(prod[0].terms[1], Term::Var("x2"));
  // R(f(x1,x2), f(x1,x2)) = R(z2, z2).
  EXPECT_EQ(RelationText(prod[1].relation), "R");
  EXPECT_EQ(prod[1].terms[0], prod[1].terms[1]);
  EXPECT_NE(prod[1].terms[0], Term::Var("x1"));
  // Free variables of the product: only x1 remains.
  std::vector<VarId> vars = CollectDistinctVars(prod);
  EXPECT_TRUE(std::find(vars.begin(), vars.end(), InternVar("x1")) !=
              vars.end());
  EXPECT_TRUE(std::find(vars.begin(), vars.end(), InternVar("x2")) ==
              vars.end());
}

TEST(QueryProductTest, EmptyWhenNoCommonRelation) {
  std::vector<VarId> shared = {InternVar("x")};
  EXPECT_TRUE(ProductOfDisjuncts(shared, {Atom::Vars("A", {"x"})},
                                 {Atom::Vars("B", {"x"})})
                  .empty());
}

TEST(QueryProductTest, ProductWithSelfSharesFreeVars) {
  std::vector<VarId> shared = {InternVar("x")};
  std::vector<Atom> q = {Atom::Vars("A", {"x"})};
  std::vector<Atom> prod = ProductOfDisjuncts(shared, q, q);
  ASSERT_EQ(prod.size(), 1u);
  EXPECT_EQ(prod[0], Atom::Vars("A", {"x"}));
}

TEST(QueryProductTest, ExistentialPairsGetFreshButConsistentVars) {
  // Q1 = E(x,y1),E(y1,x); Q2 = E(x,y2),E(y2,x): the pair (y1,y2) must map
  // to the same fresh variable at both occurrences.
  std::vector<VarId> shared = {InternVar("x")};
  std::vector<Atom> q1 = {Atom::Vars("E", {"x", "y1"}),
                          Atom::Vars("E", {"y1", "x"})};
  std::vector<Atom> q2 = {Atom::Vars("E", {"x", "y2"}),
                          Atom::Vars("E", {"y2", "x"})};
  std::vector<Atom> prod = ProductOfDisjuncts(shared, q1, q2);
  ASSERT_EQ(prod.size(), 4u);
  // Atom E(x,y1) × E(x,y2) = E(x, w) and E(y1,x) × E(y2,x) = E(w, x) with
  // the same w.
  Term w;
  for (const Atom& a : prod) {
    if (a.terms[0] == Term::Var("x") && a.terms[1] != Term::Var("x")) {
      w = a.terms[1];
    }
  }
  bool found_mirror = false;
  for (const Atom& a : prod) {
    if (a.terms[0] == w && a.terms[1] == Term::Var("x")) found_mirror = true;
  }
  EXPECT_TRUE(found_mirror);
}

TEST(EliminateDisjunctionsTest, PaperDependency4To5) {
  // Dependency (4) → dependency (5).
  VarId x1 = InternVar("x1"), x2 = InternVar("x2");
  ReverseDependency dep;
  dep.premise = {Atom::Vars("A", {"x1", "x2", "x2"})};
  dep.constant_vars = {x1, x2};
  dep.inequalities = {{x1, x2}};
  ReverseDisjunct d1;
  d1.atoms = {Atom::Vars("P", {"x1", "x2"}), Atom::Vars("R", {"x1", "x1"})};
  ReverseDisjunct d2;
  d2.atoms = {Atom::Vars("P", {"x1", "y"}), Atom::Vars("R", {"x2", "x2"})};
  dep.disjuncts = {d1, d2};
  ReverseMapping rec(
      std::make_shared<const Schema>(Schema{{"A", 3}}),
      std::make_shared<const Schema>(Schema{{"P", 2}, {"R", 2}}), {dep});
  ReverseMapping out = *EliminateDisjunctions(rec);
  ASSERT_EQ(out.deps.size(), 1u);
  ASSERT_EQ(out.deps[0].disjuncts.size(), 1u);
  const std::vector<Atom>& atoms = out.deps[0].disjuncts[0].atoms;
  ASSERT_EQ(atoms.size(), 2u);
  // ∃z1 ∃z2 (P(x1,z1) ∧ R(z2,z2)).
  EXPECT_EQ(atoms[0].terms[0], Term::Var("x1"));
  EXPECT_TRUE(atoms[0].terms[1] != Term::Var("x2"));
  EXPECT_EQ(atoms[1].terms[0], atoms[1].terms[1]);
}

TEST(EliminateDisjunctionsTest, EmptyProductDropsDependency) {
  // D(x) → A(x) ∨ B(x) has empty product: dependency dropped.
  ReverseDependency dep;
  dep.premise = {Atom::Vars("D", {"x"})};
  dep.constant_vars = {InternVar("x")};
  ReverseDisjunct da;
  da.atoms = {Atom::Vars("A", {"x"})};
  ReverseDisjunct db;
  db.atoms = {Atom::Vars("B", {"x"})};
  dep.disjuncts = {da, db};
  ReverseMapping rec(std::make_shared<const Schema>(Schema{{"D", 1}}),
                     std::make_shared<const Schema>(Schema{{"A", 1}, {"B", 1}}),
                     {dep});
  ReverseMapping out = *EliminateDisjunctions(rec);
  EXPECT_TRUE(out.deps.empty());
}

TEST(EliminateDisjunctionsTest, RejectsEqualityCarryingInput) {
  ReverseDependency dep;
  dep.premise = {Atom::Vars("D", {"x", "y"})};
  dep.constant_vars = {InternVar("x"), InternVar("y")};
  ReverseDisjunct d;
  d.atoms = {Atom::Vars("A", {"x"})};
  d.equalities = {{InternVar("x"), InternVar("y")}};
  dep.disjuncts = {d};
  ReverseMapping rec(std::make_shared<const Schema>(Schema{{"D", 2}}),
                     std::make_shared<const Schema>(Schema{{"A", 1}}), {dep});
  EXPECT_EQ(EliminateDisjunctions(rec).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(CqMaximumRecoveryTest, OutputLanguageIsTheoremFourFive) {
  // Single-disjunct, equality-free conclusions; C(·) and ≠ in premises only.
  for (const TgdMapping& m :
       {JoinMapping(), PaperABMapping(), PaperDEMapping()}) {
    ReverseMapping rec = *CqMaximumRecovery(m);
    EXPECT_TRUE(rec.IsDisjunctionFree());
    EXPECT_TRUE(rec.IsEqualityFree());
    EXPECT_TRUE(rec.Validate().ok());
  }
}

TEST(CqMaximumRecoveryTest, PaperDEMappingRecoversB) {
  // The CQ-maximum recovery of {A(x)→D(x), B(x)→D(x)∧E(x)} must entail
  // B-facts from D∧E (the paper's M'' is E(x)→B(x)).
  TgdMapping m = PaperDEMapping();
  ReverseMapping rec = *CqMaximumRecovery(m);
  Instance source(*m.source);
  ASSERT_TRUE(source.AddInts("A", {1}).ok());
  ASSERT_TRUE(source.AddInts("B", {2}).ok());
  ConjunctiveQuery qb;
  qb.head = {InternVar("x")};
  qb.atoms = {Atom::Vars("B", {"x"})};
  AnswerSet certain = *RoundTripCertain(m, rec, source, qb);
  ASSERT_EQ(certain.tuples.size(), 1u);
  EXPECT_EQ(certain.tuples[0], Tuple({Value::Int(2)}));
  // And it must not invent A-facts for B-sources: soundness on A.
  ConjunctiveQuery qa;
  qa.head = {InternVar("x")};
  qa.atoms = {Atom::Vars("A", {"x"})};
  AnswerSet certain_a = *RoundTripCertain(m, rec, source, qa);
  AnswerSet direct_a = *EvaluateCq(qa, source);
  EXPECT_TRUE(certain_a.SubsetOf(direct_a));
}

TEST(CqMaximumRecoveryTest, JoinMappingRecoversJoinExactly) {
  // For M = R ⋈ S → T, the CQ-maximum recovery recovers the full join
  // query: certain answers equal the direct join (Example 3.3's M'').
  TgdMapping m = JoinMapping();
  ReverseMapping rec = *CqMaximumRecovery(m);
  Instance source(*m.source);
  ASSERT_TRUE(source.AddInts("R", {1, 2}).ok());
  ASSERT_TRUE(source.AddInts("R", {3, 4}).ok());
  ASSERT_TRUE(source.AddInts("S", {2, 5}).ok());
  ConjunctiveQuery join;
  join.head = {InternVar("x"), InternVar("y")};
  join.atoms = {Atom::Vars("R", {"x", "z"}), Atom::Vars("S", {"z", "y"})};
  AnswerSet certain = *RoundTripCertain(m, rec, source, join);
  AnswerSet direct = *EvaluateCq(join, source);
  EXPECT_EQ(certain.tuples, direct.tuples);
}

TEST(CqMaximumRecoveryTest, SoundnessAcrossQueriesAndInstances) {
  // Property sweep: for every mapping, instance and per-relation projection
  // query, certain_{M∘M*}(Q, I) ⊆ Q(I).
  std::vector<TgdMapping> mappings = {JoinMapping(), PaperABMapping(),
                                      PaperDEMapping()};
  for (const TgdMapping& m : mappings) {
    ReverseMapping rec = *CqMaximumRecovery(m);
    Instance source(*m.source);
    // Fill every source relation with a small grid of tuples, including
    // repeated values to exercise the inequality guards.
    for (const RelationSymbol& rel : m.source->relations()) {
      for (int base : {1, 2, 3}) {
        std::vector<int64_t> tuple;
        for (uint32_t i = 0; i < rel.arity; ++i) {
          tuple.push_back(base + (i % 2));
        }
        ASSERT_TRUE(source.AddInts(rel.name, tuple).ok());
        std::vector<int64_t> diag(rel.arity, base);
        ASSERT_TRUE(source.AddInts(rel.name, diag).status().ok());
      }
    }
    for (const RelationSymbol& rel : m.source->relations()) {
      ConjunctiveQuery q;
      std::vector<Term> ts;
      for (uint32_t i = 0; i < rel.arity; ++i) {
        VarId v = InternVar("w" + std::to_string(i));
        q.head.push_back(v);
        ts.push_back(Term::Var(v));
      }
      q.atoms = {Atom(rel.name, ts)};
      AnswerSet certain = *RoundTripCertain(m, rec, source, q);
      AnswerSet direct = *EvaluateCq(q, source);
      EXPECT_TRUE(certain.SubsetOf(direct))
          << "mapping:\n" << m.ToString() << "relation " << rel.name
          << "\ncertain: " << certain.ToString()
          << "\ndirect:  " << direct.ToString();
    }
  }
}

TEST(CqMaximumRecoveryTest, DominatesNaiveRecovery) {
  // The CQ-maximum recovery retrieves at least as much as the hand-written
  // sound recovery M' = T(x,y) → ∃u R(x,u) from Example 3.1.
  TgdMapping m = JoinMapping();
  ReverseMapping maxrec = *CqMaximumRecovery(m);
  ReverseDependency naive_dep;
  naive_dep.premise = {Atom::Vars("T", {"x", "y"})};
  naive_dep.constant_vars = {InternVar("x"), InternVar("y")};
  ReverseDisjunct d;
  d.atoms = {Atom::Vars("R", {"x", "u"})};
  naive_dep.disjuncts = {d};
  ReverseMapping naive(m.target, m.source, {naive_dep});

  Instance source(*m.source);
  ASSERT_TRUE(source.AddInts("R", {1, 2}).ok());
  ASSERT_TRUE(source.AddInts("R", {3, 4}).ok());
  ASSERT_TRUE(source.AddInts("S", {2, 5}).ok());

  ConjunctiveQuery q;
  q.head = {InternVar("x")};
  q.atoms = {Atom::Vars("R", {"x", "y"})};
  AnswerSet via_naive = *RoundTripCertain(m, naive, source, q);
  AnswerSet via_max = *RoundTripCertain(m, maxrec, source, q);
  EXPECT_TRUE(via_naive.SubsetOf(via_max));
}

}  // namespace
}  // namespace mapinv
