// Tests for the synthetic workload generators.

#include <gtest/gtest.h>

#include "chase/chase_tgd.h"
#include "mapgen/generators.h"
#include "rewrite/rewrite.h"

namespace mapinv {
namespace {

TEST(MapGenTest, CopyMappingShape) {
  TgdMapping m = CopyMapping(3, 2);
  EXPECT_TRUE(m.Validate().ok());
  EXPECT_EQ(m.tgds.size(), 3u);
  EXPECT_EQ(m.source->size(), 3u);
  EXPECT_EQ(m.target->size(), 3u);
}

TEST(MapGenTest, ProjectionMappingShape) {
  TgdMapping m = ProjectionMapping(2);
  EXPECT_TRUE(m.Validate().ok());
  EXPECT_EQ(m.target->arity(m.target->Find("T0")), 1u);
}

TEST(MapGenTest, ChainJoinMappingShape) {
  TgdMapping m = ChainJoinMapping(4);
  EXPECT_TRUE(m.Validate().ok());
  ASSERT_EQ(m.tgds.size(), 1u);
  EXPECT_EQ(m.tgds[0].premise.size(), 4u);
  EXPECT_EQ(m.tgds[0].FrontierVars().size(), 2u);
}

TEST(MapGenTest, ExponentialFamilyShape) {
  TgdMapping m = ExponentialFamilyMapping(2, 3);
  EXPECT_TRUE(m.Validate().ok());
  EXPECT_EQ(m.tgds.size(), 2u * 3u + 1u);
  // The big tgd's conclusion covers all k target relations.
  EXPECT_EQ(m.tgds.back().conclusion.size(), 3u);
}

TEST(MapGenTest, ExponentialFamilyRewritingBlowUp) {
  // Rewriting of the B-tgd conclusion has (n+1)^k disjuncts before
  // minimisation (all distinct: no containments across product choices).
  TgdMapping m = ExponentialFamilyMapping(2, 3);
  ConjunctiveQuery q;
  q.head = {InternVar("x")};
  for (int j = 0; j < 3; ++j) {
    q.atoms.push_back(Atom::Vars("T" + std::to_string(j), {"x"}));
  }
  ExecutionOptions no_min;
  no_min.minimize = false;
  UnionCq rewriting = *RewriteOverSource(m, q, no_min);
  EXPECT_EQ(rewriting.disjuncts.size(), 27u);  // (2+1)^3
}

TEST(MapGenTest, RandomMappingValidates) {
  for (uint64_t seed = 0; seed < 20; ++seed) {
    RandomMappingConfig config;
    config.seed = seed;
    config.num_tgds = 5;
    TgdMapping m = GenerateRandomMapping(config);
    EXPECT_TRUE(m.Validate().ok()) << "seed " << seed;
    EXPECT_EQ(m.tgds.size(), 5u);
  }
}

TEST(MapGenTest, RandomMappingIsDeterministicPerSeed) {
  RandomMappingConfig config;
  config.seed = 99;
  TgdMapping a = GenerateRandomMapping(config);
  TgdMapping b = GenerateRandomMapping(config);
  EXPECT_EQ(a.ToString(), b.ToString());
  config.seed = 100;
  TgdMapping c = GenerateRandomMapping(config);
  EXPECT_NE(a.ToString(), c.ToString());
}

TEST(MapGenTest, InstanceGeneration) {
  Schema s{{"R", 2}, {"S", 3}};
  Instance inst = GenerateInstance(s, 10, 5, 42);
  EXPECT_TRUE(inst.IsNullFree());
  // Duplicates possible but bounded above by request.
  EXPECT_LE(inst.TuplesCopy(s.Find("R")).size(), 10u);
  EXPECT_GE(inst.TotalSize(), 2u);
  // Deterministic per seed.
  Instance again = GenerateInstance(s, 10, 5, 42);
  EXPECT_TRUE(inst.EqualTo(again));
}

TEST(MapGenTest, GeneratedWorkloadsChaseCleanly) {
  for (uint64_t seed = 0; seed < 5; ++seed) {
    RandomMappingConfig config;
    config.seed = seed;
    TgdMapping m = GenerateRandomMapping(config);
    Instance source = GenerateInstance(*m.source, 8, 4, seed);
    Result<Instance> target = ChaseTgds(m, source);
    EXPECT_TRUE(target.ok()) << target.status().ToString();
  }
}

}  // namespace
}  // namespace mapinv
