// Tests for the semantic property checkers (check/properties.h) — including
// the operational forms of the Fagin-inverse machinery from [10] (the
// PODS'06 "Inverting schema mappings" notions: identity mapping, subset
// property, unique-solutions property) and Theorem 3.5-style behaviour.

#include <gtest/gtest.h>

#include "check/properties.h"
#include "inversion/cq_maximum_recovery.h"
#include "inversion/maximum_recovery.h"
#include "mapgen/generators.h"

namespace mapinv {
namespace {

TgdMapping JoinMapping() {
  Tgd tgd;
  tgd.premise = {Atom::Vars("R", {"x", "y"}), Atom::Vars("S", {"y", "z"})};
  tgd.conclusion = {Atom::Vars("T", {"x", "z"})};
  return TgdMapping(Schema{{"R", 2}, {"S", 2}}, Schema{{"T", 2}}, {tgd});
}

TEST(CheckTest, PerRelationQueriesCoverSchema) {
  Schema s{{"R", 2}, {"S", 3}};
  std::vector<ConjunctiveQuery> qs = PerRelationQueries(s);
  ASSERT_EQ(qs.size(), 2u);
  EXPECT_EQ(qs[0].head.size(), 2u);
  EXPECT_EQ(qs[1].head.size(), 3u);
  EXPECT_TRUE(qs[0].Validate(s).ok());
}

TEST(CheckTest, CqMaximumRecoveryPassesCRecoveryCheck) {
  TgdMapping m = JoinMapping();
  ReverseMapping rec = *CqMaximumRecovery(m);
  std::vector<Instance> sources;
  for (uint64_t seed : {1u, 2u, 3u}) {
    sources.push_back(GenerateInstance(*m.source, 6, 4, seed));
  }
  auto violation =
      *CheckCRecovery(m, rec, sources, PerRelationQueries(*m.source));
  EXPECT_FALSE(violation.has_value())
      << (violation ? violation->description : "");
}

TEST(CheckTest, UnsoundReverseMappingIsCaught) {
  // T(x,y) → S(x,y) is NOT sound for the join mapping: it claims the pair
  // (x,z) of the join is an S-fact.
  TgdMapping m = JoinMapping();
  ReverseDependency dep;
  dep.premise = {Atom::Vars("T", {"x", "y"})};
  dep.constant_vars = {InternVar("x"), InternVar("y")};
  ReverseDisjunct d;
  d.atoms = {Atom::Vars("S", {"x", "y"})};
  dep.disjuncts = {d};
  ReverseMapping unsound(m.target, m.source, {dep});
  Instance source(*m.source);
  ASSERT_TRUE(source.AddInts("R", {1, 2}).ok());
  ASSERT_TRUE(source.AddInts("S", {2, 5}).ok());
  auto violation =
      *CheckCRecovery(m, unsound, {source}, PerRelationQueries(*m.source));
  ASSERT_TRUE(violation.has_value());
  EXPECT_NE(violation->description.find("C-recovery violated"),
            std::string::npos);
}

TEST(CheckTest, MaximumRecoveryDominatesNaive) {
  TgdMapping m = JoinMapping();
  ReverseMapping maxrec = *CqMaximumRecovery(m);
  ReverseDependency dep;
  dep.premise = {Atom::Vars("T", {"x", "y"})};
  dep.constant_vars = {InternVar("x"), InternVar("y")};
  ReverseDisjunct d;
  d.atoms = {Atom::Vars("R", {"x", "u"})};
  dep.disjuncts = {d};
  ReverseMapping naive(m.target, m.source, {dep});
  std::vector<Instance> sources = {GenerateInstance(*m.source, 5, 4, 7)};
  auto violation = *CheckRecoveryDominance(m, maxrec, naive, sources,
                                           PerRelationQueries(*m.source));
  EXPECT_FALSE(violation.has_value())
      << (violation ? violation->description : "");
}

TEST(FaginTest, CopyMappingRoundTripIsIdentity) {
  // Copy mappings are Fagin-invertible; the CQ-maximum recovery acts as the
  // identity on every source instance.
  TgdMapping m = CopyMapping(2, 2);
  ReverseMapping rec = *CqMaximumRecovery(m);
  for (uint64_t seed : {11u, 12u}) {
    Instance source = GenerateInstance(*m.source, 5, 6, seed);
    EXPECT_TRUE(*RoundTripIsIdentity(m, rec, source));
  }
}

TEST(FaginTest, ProjectionMappingRoundTripIsNotIdentity) {
  // Rᵢ(x,y) → Tᵢ(x) loses the second column: no recovery can restore it.
  TgdMapping m = ProjectionMapping(1);
  ReverseMapping rec = *CqMaximumRecovery(m);
  Instance source(*m.source);
  ASSERT_TRUE(source.AddInts("R0", {1, 2}).ok());
  EXPECT_FALSE(*RoundTripIsIdentity(m, rec, source));
}

TEST(FaginTest, SubsetPropertyHoldsForCopyMapping) {
  // Copy mappings have the subset property on all pairs (they are
  // invertible, [10]).
  TgdMapping m = CopyMapping(1, 2);
  for (uint64_t seed = 0; seed < 6; ++seed) {
    Instance i1 = GenerateInstance(*m.source, 3, 3, seed);
    Instance i2 = GenerateInstance(*m.source, 3, 3, seed + 100);
    EXPECT_TRUE(*SubsetPropertyHolds(m, i1, i2)) << seed;
    EXPECT_TRUE(*UniqueSolutionsPropertyHolds(m, i1, i2)) << seed;
  }
}

TEST(FaginTest, ProjectionMappingViolatesSubsetProperty) {
  // For R(x,y) → T(x): I₁ = {R(1,2)} and I₂ = {R(1,3)} have the same
  // solution space but are incomparable — the subset property fails, so the
  // mapping is not Fagin-invertible.
  TgdMapping m = ProjectionMapping(1);
  Instance i1(*m.source);
  ASSERT_TRUE(i1.AddInts("R0", {1, 2}).ok());
  Instance i2(*m.source);
  ASSERT_TRUE(i2.AddInts("R0", {1, 3}).ok());
  EXPECT_TRUE(*DataExchangeEquivalent(m, i1, i2));
  EXPECT_FALSE(*SubsetPropertyHolds(m, i1, i2));
  EXPECT_FALSE(*UniqueSolutionsPropertyHolds(m, i1, i2));
}

TEST(FaginTest, SolutionsContainedIsMonotoneInSource) {
  // More source facts ⇒ fewer solutions: Sol(I ∪ J) ⊆ Sol(I).
  TgdMapping m = JoinMapping();
  Instance small(*m.source);
  ASSERT_TRUE(small.AddInts("R", {1, 2}).ok());
  ASSERT_TRUE(small.AddInts("S", {2, 5}).ok());
  Instance big = small;
  ASSERT_TRUE(big.AddInts("R", {7, 8}).ok());
  ASSERT_TRUE(big.AddInts("S", {8, 9}).ok());
  EXPECT_TRUE(*SolutionsContained(m, small, big));
  EXPECT_FALSE(*SolutionsContained(m, big, small));
}

TEST(DataExchangeEquivalenceTest, RenamedJoinPartnersAreEquivalent) {
  // Under the join mapping, I₁ = {R(1,2), S(2,5)} and I₂ = {R(1,3), S(3,5)}
  // produce the same target requirement T(1,5): equivalent. But
  // {R(1,2)} alone (no join) differs.
  TgdMapping m = JoinMapping();
  Instance i1(*m.source);
  ASSERT_TRUE(i1.AddInts("R", {1, 2}).ok());
  ASSERT_TRUE(i1.AddInts("S", {2, 5}).ok());
  Instance i2(*m.source);
  ASSERT_TRUE(i2.AddInts("R", {1, 3}).ok());
  ASSERT_TRUE(i2.AddInts("S", {3, 5}).ok());
  EXPECT_TRUE(*DataExchangeEquivalent(m, i1, i2));
  Instance i3(*m.source);
  ASSERT_TRUE(i3.AddInts("R", {1, 2}).ok());
  EXPECT_FALSE(*DataExchangeEquivalent(m, i1, i3));
  // ~_M is the quasi-inverse notion's equivalence: i3 is equivalent to the
  // empty instance (both have every target instance as a solution).
  Instance empty(*m.source);
  EXPECT_TRUE(*DataExchangeEquivalent(m, i3, empty));
}

TEST(CqEquivalenceTest, Lemma43OnPaperDependencies) {
  // Σ'' = dependency (4) vs Σ* = dependency (5): conjunctive-query
  // equivalent (Lemma 4.3) — checked on the paper's probe {A(1,2,2)} plus
  // random inputs.
  VarId x1 = InternVar("x1"), x2 = InternVar("x2");
  auto premise_schema = std::make_shared<const Schema>(Schema{{"A", 3}});
  auto conclusion_schema =
      std::make_shared<const Schema>(Schema{{"P", 2}, {"R", 2}});

  ReverseDependency dep4;
  dep4.premise = {Atom::Vars("A", {"x1", "x2", "x2"})};
  dep4.constant_vars = {x1, x2};
  dep4.inequalities = {{x1, x2}};
  ReverseDisjunct d41;
  d41.atoms = {Atom::Vars("P", {"x1", "x2"}), Atom::Vars("R", {"x1", "x1"})};
  ReverseDisjunct d42;
  d42.atoms = {Atom::Vars("P", {"x1", "y"}), Atom::Vars("R", {"x2", "x2"})};
  dep4.disjuncts = {d41, d42};
  ReverseMapping sigma2(premise_schema, conclusion_schema, {dep4});

  ReverseDependency dep5;
  dep5.premise = {Atom::Vars("A", {"x1", "x2", "x2"})};
  dep5.constant_vars = {x1, x2};
  dep5.inequalities = {{x1, x2}};
  ReverseDisjunct d5;
  d5.atoms = {Atom::Vars("P", {"x1", "z1"}), Atom::Vars("R", {"z2", "z2"})};
  dep5.disjuncts = {d5};
  ReverseMapping sigma_star(premise_schema, conclusion_schema, {dep5});

  std::vector<Instance> inputs;
  Instance probe(*premise_schema);
  ASSERT_TRUE(probe.AddInts("A", {1, 2, 2}).ok());
  inputs.push_back(probe);
  inputs.push_back(GenerateInstance(*premise_schema, 4, 3, 5));

  // Probe queries over the conclusion schema: per-relation projections and
  // a join.
  std::vector<ConjunctiveQuery> queries =
      PerRelationQueries(*conclusion_schema);
  ConjunctiveQuery join;
  join.head = {InternVar("a")};
  join.atoms = {Atom::Vars("P", {"a", "b"}), Atom::Vars("R", {"c", "c"})};
  queries.push_back(join);

  auto violation = *CheckCqEquivalentReverse(sigma2, sigma_star, inputs,
                                             queries);
  EXPECT_FALSE(violation.has_value())
      << (violation ? violation->description : "");
}

TEST(CqEquivalenceTest, DetectsInequivalentMappings) {
  auto premise_schema = std::make_shared<const Schema>(Schema{{"D", 1}});
  auto conclusion_schema = std::make_shared<const Schema>(Schema{{"A", 1}});
  ReverseDependency keep;
  keep.premise = {Atom::Vars("D", {"x"})};
  keep.constant_vars = {InternVar("x")};
  ReverseDisjunct d;
  d.atoms = {Atom::Vars("A", {"x"})};
  keep.disjuncts = {d};
  ReverseMapping m1(premise_schema, conclusion_schema, {keep});
  ReverseDependency drop = keep;
  drop.disjuncts[0].atoms = {Atom::Vars("A", {"y"})};  // ∃y A(y): weaker
  ReverseMapping m2(premise_schema, conclusion_schema, {drop});
  Instance input(*premise_schema);
  ASSERT_TRUE(input.AddInts("D", {1}).ok());
  auto violation = *CheckCqEquivalentReverse(
      m1, m2, {input}, PerRelationQueries(*conclusion_schema));
  EXPECT_TRUE(violation.has_value());
}

}  // namespace
}  // namespace mapinv
