// Unit tests for the data layer: values, schemas, instances.

#include <gtest/gtest.h>

#include <algorithm>

#include "data/instance.h"
#include "data/schema.h"
#include "data/value.h"

namespace mapinv {
namespace {

TEST(ValueTest, ConstantsInternBySpelling) {
  Value a = Value::MakeConstant("alice");
  Value b = Value::MakeConstant("alice");
  Value c = Value::MakeConstant("bob");
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  EXPECT_TRUE(a.is_constant());
  EXPECT_FALSE(a.is_null());
  EXPECT_EQ(a.ToString(), "alice");
}

TEST(ValueTest, IntConstantsShareSpellingSpace) {
  EXPECT_EQ(Value::Int(7), Value::MakeConstant("7"));
  EXPECT_NE(Value::Int(7), Value::Int(8));
}

TEST(ValueTest, FreshNullsAreDistinctFromEverything) {
  Value n1 = Value::FreshNull();
  Value n2 = Value::FreshNull();
  EXPECT_NE(n1, n2);
  EXPECT_TRUE(n1.is_null());
  EXPECT_NE(n1, Value::MakeConstant(n1.ToString()));
  EXPECT_EQ(n1.ToString().substr(0, 2), "_N");
}

TEST(ValueTest, NullWithLabelIsDeterministic) {
  EXPECT_EQ(Value::NullWithLabel(5), Value::NullWithLabel(5));
  EXPECT_NE(Value::NullWithLabel(5), Value::NullWithLabel(6));
}

TEST(ValueTest, ConstantAndNullWithSameIdDiffer) {
  Value c = Value::MakeConstant("x");
  Value n = Value::NullWithLabel(c.id());
  EXPECT_NE(c, n);
}

TEST(SchemaTest, AddAndLookup) {
  Schema s;
  ASSERT_TRUE(s.AddRelation("R", 2).ok());
  ASSERT_TRUE(s.AddRelation("T", 3).ok());
  EXPECT_EQ(s.size(), 2u);
  RelationId r = s.Find("R");
  ASSERT_NE(r, kInvalidRelation);
  EXPECT_EQ(s.arity(r), 2u);
  EXPECT_EQ(s.name(r), "R");
  EXPECT_EQ(s.Find("missing"), kInvalidRelation);
}

TEST(SchemaTest, ReAddSameArityIsIdempotent) {
  Schema s;
  RelationId first = *s.AddRelation("R", 2);
  RelationId second = *s.AddRelation("R", 2);
  EXPECT_EQ(first, second);
  EXPECT_EQ(s.size(), 1u);
}

TEST(SchemaTest, ReAddDifferentArityFails) {
  Schema s;
  ASSERT_TRUE(s.AddRelation("R", 2).ok());
  Result<RelationId> res = s.AddRelation("R", 3);
  EXPECT_FALSE(res.ok());
  EXPECT_EQ(res.status().code(), StatusCode::kInvalidArgument);
}

TEST(SchemaTest, RequireReportsNotFound) {
  Schema s;
  EXPECT_EQ(s.Require("Z").status().code(), StatusCode::kNotFound);
}

TEST(SchemaTest, DisjointnessAndUnion) {
  Schema a{{"R", 2}, {"S", 2}};
  Schema b{{"T", 2}};
  Schema c{{"R", 2}};
  EXPECT_TRUE(a.DisjointFrom(b));
  EXPECT_FALSE(a.DisjointFrom(c));
  Result<Schema> u = Schema::Union(a, b);
  ASSERT_TRUE(u.ok());
  EXPECT_EQ(u->size(), 3u);
  Schema clash{{"R", 3}};
  EXPECT_FALSE(Schema::Union(a, clash).ok());
}

TEST(SchemaTest, InitializerListAndToString) {
  Schema s{{"R", 2}, {"T", 3}};
  EXPECT_EQ(s.ToString(), "{ R/2, T/3 }");
}

class InstanceTest : public ::testing::Test {
 protected:
  Schema schema_{{"R", 2}, {"S", 2}};
};

TEST_F(InstanceTest, AddAndContains) {
  Instance inst(schema_);
  ASSERT_TRUE(*inst.AddInts("R", {1, 2}));
  ASSERT_TRUE(*inst.AddInts("R", {3, 4}));
  ASSERT_TRUE(*inst.AddInts("S", {2, 5}));
  EXPECT_FALSE(*inst.AddInts("R", {1, 2}));  // duplicate
  EXPECT_EQ(inst.TotalSize(), 3u);
  RelationId r = schema_.Find("R");
  EXPECT_TRUE(inst.Contains(r, {Value::Int(1), Value::Int(2)}));
  EXPECT_FALSE(inst.Contains(r, {Value::Int(2), Value::Int(1)}));
}

TEST_F(InstanceTest, ArityMismatchRejected) {
  Instance inst(schema_);
  Result<bool> res = inst.AddInts("R", {1, 2, 3});
  EXPECT_EQ(res.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(InstanceTest, UnknownRelationRejected) {
  Instance inst(schema_);
  EXPECT_EQ(inst.AddInts("Z", {1}).status().code(), StatusCode::kNotFound);
}

TEST_F(InstanceTest, NullTracking) {
  Instance inst(schema_);
  ASSERT_TRUE(inst.AddInts("R", {1, 2}).ok());
  EXPECT_TRUE(inst.IsNullFree());
  ASSERT_TRUE(inst.Add("S", {Value::Int(1), Value::FreshNull()}).ok());
  EXPECT_FALSE(inst.IsNullFree());
}

TEST_F(InstanceTest, ActiveDomainDeduplicates) {
  Instance inst(schema_);
  ASSERT_TRUE(inst.AddInts("R", {1, 2}).ok());
  ASSERT_TRUE(inst.AddInts("S", {2, 3}).ok());
  std::vector<Value> dom = inst.ActiveDomain();
  EXPECT_EQ(dom.size(), 3u);
}

TEST_F(InstanceTest, SubsetAndEquality) {
  Instance a(schema_);
  Instance b(schema_);
  ASSERT_TRUE(a.AddInts("R", {1, 2}).ok());
  ASSERT_TRUE(b.AddInts("R", {1, 2}).ok());
  ASSERT_TRUE(b.AddInts("S", {2, 5}).ok());
  EXPECT_TRUE(a.SubsetOf(b));
  EXPECT_FALSE(b.SubsetOf(a));
  EXPECT_FALSE(a.EqualTo(b));
  ASSERT_TRUE(a.AddInts("S", {2, 5}).ok());
  EXPECT_TRUE(a.EqualTo(b));
}

TEST_F(InstanceTest, UnionWith) {
  Instance a(schema_);
  Instance b(schema_);
  ASSERT_TRUE(a.AddInts("R", {1, 2}).ok());
  ASSERT_TRUE(b.AddInts("S", {2, 5}).ok());
  ASSERT_TRUE(a.UnionWith(b).ok());
  EXPECT_EQ(a.TotalSize(), 2u);
}

TEST_F(InstanceTest, ToStringIsSortedAndStable) {
  Instance inst(schema_);
  ASSERT_TRUE(inst.AddInts("S", {2, 5}).ok());
  ASSERT_TRUE(inst.AddInts("R", {3, 4}).ok());
  ASSERT_TRUE(inst.AddInts("R", {1, 2}).ok());
  EXPECT_EQ(inst.ToString(), "{ R(1,2), R(3,4), S(2,5) }");
}

TEST_F(InstanceTest, AllFactsCoversEverything) {
  Instance inst(schema_);
  ASSERT_TRUE(inst.AddInts("R", {1, 2}).ok());
  ASSERT_TRUE(inst.AddInts("S", {2, 5}).ok());
  std::vector<Fact> facts = inst.AllFacts();
  EXPECT_EQ(facts.size(), 2u);
}

TEST_F(InstanceTest, SubsetAcrossDifferentSchemaObjects) {
  // Subset comparison resolves relations by name, not by id.
  Schema reordered{{"S", 2}, {"R", 2}};
  Instance a(schema_);
  Instance b(reordered);
  ASSERT_TRUE(a.AddInts("R", {1, 2}).ok());
  ASSERT_TRUE(b.AddInts("R", {1, 2}).ok());
  EXPECT_TRUE(a.SubsetOf(b));
  EXPECT_TRUE(b.SubsetOf(a));
}

TEST_F(InstanceTest, ActiveDomainIsSorted) {
  Instance inst(schema_);
  ASSERT_TRUE(inst.AddInts("R", {9, 3}).ok());
  ASSERT_TRUE(inst.AddInts("S", {5, 1}).ok());
  ASSERT_TRUE(inst.Add("R", {Value::FreshNull(), Value::Int(7)}).ok());
  std::vector<Value> dom = inst.ActiveDomain();
  EXPECT_EQ(dom.size(), 6u);
  EXPECT_TRUE(std::is_sorted(dom.begin(), dom.end()));
  // Two runs over the same facts agree regardless of insertion history.
  Instance again(schema_);
  for (const Fact& f : inst.AllFacts()) {
    ASSERT_TRUE(again.AddTuple(f.relation, f.tuple).ok());
  }
  EXPECT_EQ(again.ActiveDomain(), dom);
}

TEST_F(InstanceTest, EqualToAcrossDifferentSchemaObjects) {
  // Equality, like subset, resolves relations by name — relation ids may
  // differ between the two schemas.
  Schema reordered{{"S", 2}, {"R", 2}};
  Instance a(schema_);
  Instance b(reordered);
  ASSERT_TRUE(a.AddInts("R", {1, 2}).ok());
  ASSERT_TRUE(a.AddInts("S", {3, 4}).ok());
  ASSERT_TRUE(b.AddInts("S", {3, 4}).ok());
  ASSERT_TRUE(b.AddInts("R", {1, 2}).ok());
  EXPECT_TRUE(a.EqualTo(b));
  ASSERT_TRUE(b.AddInts("S", {5, 6}).ok());
  EXPECT_FALSE(a.EqualTo(b));
}

TEST_F(InstanceTest, SubsetAgainstMissingRelationFails) {
  Schema smaller{{"R", 2}};
  Instance a(schema_);
  Instance b(smaller);
  ASSERT_TRUE(a.AddInts("S", {1, 2}).ok());
  EXPECT_FALSE(a.SubsetOf(b));  // b's schema has no S
  // ...but an instance whose S is empty is still a subset.
  Instance empty_s(schema_);
  EXPECT_TRUE(empty_s.SubsetOf(b));
}

TEST_F(InstanceTest, UnionWithMissingRelationFails) {
  Schema smaller{{"R", 2}};
  Instance a(smaller);
  Instance b(schema_);
  ASSERT_TRUE(b.AddInts("S", {1, 2}).ok());
  EXPECT_EQ(a.UnionWith(b).code(), StatusCode::kNotFound);
  // Empty relations on the other side are skipped, not resolved: union with
  // an instance that only has R facts succeeds even though a lacks S.
  Instance only_r(schema_);
  ASSERT_TRUE(only_r.AddInts("R", {1, 2}).ok());
  ASSERT_TRUE(a.UnionWith(only_r).ok());
  EXPECT_EQ(a.TotalSize(), 1u);
}

TEST_F(InstanceTest, UnionWithArityMismatchFails) {
  Schema wide{{"R", 3}};
  Instance a(schema_);
  Instance b(wide);
  ASSERT_TRUE(b.AddInts("R", {1, 2, 3}).ok());
  EXPECT_EQ(a.UnionWith(b).code(), StatusCode::kInvalidArgument);
}

TEST_F(InstanceTest, UnionWithSelfAndEmptyAreNoOps) {
  Instance a(schema_);
  ASSERT_TRUE(a.AddInts("R", {1, 2}).ok());
  ASSERT_TRUE(a.UnionWith(a).ok());
  EXPECT_EQ(a.TotalSize(), 1u);
  Instance empty(schema_);
  ASSERT_TRUE(a.UnionWith(empty).ok());
  EXPECT_EQ(a.TotalSize(), 1u);
  ASSERT_TRUE(empty.UnionWith(a).ok());
  EXPECT_TRUE(empty.EqualTo(a));
}

TEST_F(InstanceTest, RelationAppendedToSharedSchemaBecomesUsable) {
  // Instances share the schema by pointer; a relation appended after
  // construction grows the instance's store table lazily.
  auto schema = std::make_shared<Schema>(Schema{{"R", 2}});
  Instance inst(schema);
  ASSERT_TRUE(inst.AddInts("R", {1, 2}).ok());
  ASSERT_TRUE(schema->AddRelation("T", 1).ok());
  ASSERT_TRUE(inst.AddInts("T", {9}).ok());
  EXPECT_EQ(inst.TotalSize(), 2u);
  RelationId t = schema->Find("T");
  EXPECT_TRUE(inst.Contains(t, {Value::Int(9)}));
  EXPECT_EQ(inst.ToString(), "{ R(1,2), T(9) }");
}

}  // namespace
}  // namespace mapinv
