// Tests for the Section 5 algorithm: CreateTuple, EnsureInv, Safe,
// Subsumes, PolySOInverse and SO round trips — including the paper's
// R(x,y,z) → T(x, f(y), f(y), g(x,z)) walkthrough (rules (9)–(13)).

#include <gtest/gtest.h>

#include "chase/round_trip.h"
#include "inversion/polyso.h"
#include "rewrite/skolemize.h"

namespace mapinv {
namespace {

// The paper's rule (9): R(x,y,z) -> T(x, f(y), f(y), g(x,z)).
SOTgdMapping Rule9Mapping() {
  SORule rule;
  rule.premise = {Atom::Vars("R", {"x", "y", "z"})};
  rule.conclusion = {
      Atom("T", {Term::Var("x"), Term::Fn("f", {Term::Var("y")}),
                 Term::Fn("f", {Term::Var("y")}),
                 Term::Fn("g", {Term::Var("x"), Term::Var("z")})})};
  return SOTgdMapping(std::make_shared<const Schema>(Schema{{"R", 3}}),
                      std::make_shared<const Schema>(Schema{{"T", 4}}),
                      SOTgd{{rule}});
}

TEST(CreateTupleTest, MirrorsEqualityPattern) {
  // (x, f(y), f(y), g(x,z)) → (u, v, v, w).
  FreshVarGen gen("u");
  std::vector<Term> terms = {Term::Var("x"), Term::Fn("f", {Term::Var("y")}),
                             Term::Fn("f", {Term::Var("y")}),
                             Term::Fn("g", {Term::Var("x"), Term::Var("z")})};
  std::vector<VarId> u = CreateTuple(terms, &gen);
  ASSERT_EQ(u.size(), 4u);
  EXPECT_NE(u[0], u[1]);
  EXPECT_EQ(u[1], u[2]);
  EXPECT_NE(u[2], u[3]);
  EXPECT_NE(u[0], u[3]);
}

TEST(SubsumesTest, PaperExample) {
  // (x, f(y), f(y), g(x,z)) is subsumed by (u, v, h(u), h(v)).
  std::vector<Term> t = {Term::Var("x"), Term::Fn("f", {Term::Var("y")}),
                         Term::Fn("f", {Term::Var("y")}),
                         Term::Fn("g", {Term::Var("x"), Term::Var("z")})};
  std::vector<Term> s = {Term::Var("u"), Term::Var("v"),
                         Term::Fn("h", {Term::Var("u")}),
                         Term::Fn("h", {Term::Var("v")})};
  EXPECT_TRUE(Subsumes(s, t));
  EXPECT_FALSE(Subsumes(t, s));  // t has a function where s has a variable
  EXPECT_TRUE(Subsumes(t, t));   // reflexive
}

TEST(SubsumesTest, LengthMismatch) {
  EXPECT_FALSE(Subsumes({Term::Var("x")}, {Term::Var("x"), Term::Var("y")}));
}

TEST(InverseFunctionsTest, OneUnaryFunctionPerArgument) {
  SOTgdMapping m = Rule9Mapping();
  InverseFunctions inv = *MakeInverseFunctions(m.so);
  ASSERT_EQ(inv.inverse_of.size(), 2u);  // f and g
  FunctionId f = InternFunction("f");
  FunctionId g = InternFunction("g");
  EXPECT_EQ(inv.inverse_of.at(f).size(), 1u);
  EXPECT_EQ(inv.inverse_of.at(g).size(), 2u);
  EXPECT_EQ(FunctionName(inv.inverse_of.at(g)[1]), "g#2");
}

TEST(EnsureInvTest, PaperFormula11) {
  // For ū = (u,v,v,w), s̄ = (x, f(y), f(y), g(x,z)):
  //   u = x ∧ f#1(v) = y ∧ g#1(w) = x ∧ g#2(w) = z.
  SOTgdMapping m = Rule9Mapping();
  InverseFunctions inv = *MakeInverseFunctions(m.so);
  std::vector<VarId> u = {InternVar("u"), InternVar("v"), InternVar("v"),
                          InternVar("w")};
  std::vector<Term> s = {Term::Var("x"), Term::Fn("f", {Term::Var("y")}),
                         Term::Fn("f", {Term::Var("y")}),
                         Term::Fn("g", {Term::Var("x"), Term::Var("z")})};
  std::vector<TermEq> q_e = *EnsureInv(inv, u, s);
  ASSERT_EQ(q_e.size(), 4u);  // duplicates from the repeated f(y) deduped
  EXPECT_EQ(q_e[0].ToString(), "u = x");
  EXPECT_EQ(q_e[1].ToString(), "f#1(v) = y");
  EXPECT_EQ(q_e[2].ToString(), "g#1(w) = x");
  EXPECT_EQ(q_e[3].ToString(), "g#2(w) = z");
}

TEST(SafeTest, PaperFormula12) {
  // f★(v) = f#1(v), f★(v) ≠ g#1(v), f★(w) = g#1(w), f★(w) ≠ f#1(w).
  SOTgdMapping m = Rule9Mapping();
  InverseFunctions inv = *MakeInverseFunctions(m.so);
  std::vector<VarId> u = {InternVar("u"), InternVar("v"), InternVar("v"),
                          InternVar("w")};
  std::vector<Term> s = {Term::Var("x"), Term::Fn("f", {Term::Var("y")}),
                         Term::Fn("f", {Term::Var("y")}),
                         Term::Fn("g", {Term::Var("x"), Term::Var("z")})};
  SafeFormula q_s = *Safe(inv, u, s);
  ASSERT_EQ(q_s.equalities.size(), 2u);
  ASSERT_EQ(q_s.inequalities.size(), 2u);
  EXPECT_EQ(q_s.equalities[0].ToString(), "fstar#(v) = f#1(v)");
  EXPECT_EQ(q_s.inequalities[0].ToString("!="), "fstar#(v) != g#1(v)");
  EXPECT_EQ(q_s.equalities[1].ToString(), "fstar#(w) = g#1(w)");
  EXPECT_EQ(q_s.inequalities[1].ToString("!="), "fstar#(w) != f#1(w)");
}

TEST(PolySOInverseTest, Rule9OutputShape) {
  // Dependency (13): T(u,v,v,w) ∧ C(u) → ∃x,y,z (R(x,y,z) ∧ Q_e ∧ Q_s).
  SOTgdMapping m = Rule9Mapping();
  SOInverseMapping inv = *PolySOInverse(m);
  ASSERT_EQ(inv.inverse.rules.size(), 1u);
  const SOInverseRule& rule = inv.inverse.rules[0];
  EXPECT_EQ(RelationText(rule.premise.relation), "T");
  ASSERT_EQ(rule.premise.terms.size(), 4u);
  EXPECT_EQ(rule.premise.terms[1], rule.premise.terms[2]);
  EXPECT_NE(rule.premise.terms[0], rule.premise.terms[1]);
  // C only on the first position (the only variable position of t̄).
  ASSERT_EQ(rule.constant_vars.size(), 1u);
  EXPECT_EQ(rule.constant_vars[0], rule.premise.terms[0].var());
  // A single disjunct: only the rule itself subsumes its head.
  ASSERT_EQ(rule.disjuncts.size(), 1u);
  const SOInvDisjunct& d = rule.disjuncts[0];
  ASSERT_EQ(d.atoms.size(), 1u);
  EXPECT_EQ(RelationText(d.atoms[0].relation), "R");
  // Q_e (4 equalities) + Q_s (2 equalities), 2 inequalities.
  EXPECT_EQ(d.equalities.size(), 6u);
  EXPECT_EQ(d.inequalities.size(), 2u);
}

TEST(PolySOInverseTest, Rule9RoundTripRecoversShape) {
  // {R(1,2,3)} → {T(1,a,a,b)} → {R(1,ν1,ν2)}: constant recovered, invented
  // values come back as nulls.
  SOTgdMapping m = Rule9Mapping();
  SOInverseMapping inv = *PolySOInverse(m);
  Instance source(*m.source);
  ASSERT_TRUE(source.AddInts("R", {1, 2, 3}).ok());
  std::vector<Instance> worlds = *RoundTripWorldsSO(m, inv, source);
  ASSERT_EQ(worlds.size(), 1u);
  RelationId r = worlds[0].schema().Find("R");
  ASSERT_EQ(worlds[0].TuplesCopy(r).size(), 1u);
  const Tuple t = worlds[0].TuplesCopy(r)[0];
  EXPECT_EQ(t[0], Value::Int(1));
  EXPECT_TRUE(t[1].is_null());
  EXPECT_TRUE(t[2].is_null());
  EXPECT_NE(t[1], t[2]);
}

TEST(PolySOInverseTest, CopyMappingBranchesAcrossProducers) {
  // R(x) -> T(x) and S(x) -> T(x): the inverse has T(u) ∧ C(u) → R(u) ∨
  // S(u) (two rules, two disjuncts each); certain answers over the round
  // trip are empty for both R and S — the fact could come from either.
  SORule r1;
  r1.premise = {Atom::Vars("R", {"x"})};
  r1.conclusion = {Atom::Vars("T", {"x"})};
  SORule r2;
  r2.premise = {Atom::Vars("S", {"x"})};
  r2.conclusion = {Atom::Vars("T", {"x"})};
  SOTgdMapping m(std::make_shared<const Schema>(Schema{{"R", 1}, {"S", 1}}),
                 std::make_shared<const Schema>(Schema{{"T", 1}}),
                 SOTgd{{r1, r2}});
  SOInverseMapping inv = *PolySOInverse(m);
  // σ1 and σ2 emit the same inverse rule modulo ū renaming; the canonical
  // dedup keeps one copy with both disjuncts.
  ASSERT_EQ(inv.inverse.rules.size(), 1u);
  EXPECT_EQ(inv.inverse.rules[0].disjuncts.size(), 2u);

  Instance source(*m.source);
  ASSERT_TRUE(source.AddInts("R", {1}).ok());
  ConjunctiveQuery qr;
  qr.head = {InternVar("x")};
  qr.atoms = {Atom::Vars("R", {"x"})};
  AnswerSet certain = *RoundTripCertainSO(m, inv, source, qr);
  EXPECT_TRUE(certain.tuples.empty());
  // But the Boolean query "some value is in R or S" — approximated here by
  // asking for membership in the union via both worlds — holds: every world
  // contains the value 1 in R or in S.
  std::vector<Instance> worlds = *RoundTripWorldsSO(m, inv, source);
  EXPECT_GE(worlds.size(), 2u);
  for (const Instance& w : worlds) {
    RelationId r = w.schema().Find("R");
    RelationId s = w.schema().Find("S");
    EXPECT_EQ(w.TuplesCopy(r).size() + w.TuplesCopy(s).size(), 1u);
  }
}

TEST(PolySOInverseTest, TgdPathRecoversJoinMapping) {
  // The full paper pipeline for ordinary tgds: tgds → plain SO-tgd →
  // PolySOInverse; round trip recovers the join pattern.
  Tgd tgd;
  tgd.premise = {Atom::Vars("R", {"x", "y"}), Atom::Vars("S", {"y", "z"})};
  tgd.conclusion = {Atom::Vars("T", {"x", "z"})};
  TgdMapping m(Schema{{"R", 2}, {"S", 2}}, Schema{{"T", 2}}, {tgd});
  SOInverseMapping inv = *PolySOInverseOfTgds(m);
  SOTgdMapping so = *TgdsToPlainSOTgd(m);

  Instance source(*m.source);
  ASSERT_TRUE(source.AddInts("R", {1, 2}).ok());
  ASSERT_TRUE(source.AddInts("R", {3, 4}).ok());
  ASSERT_TRUE(source.AddInts("S", {2, 5}).ok());

  ConjunctiveQuery join;
  join.head = {InternVar("x"), InternVar("y")};
  join.atoms = {Atom::Vars("R", {"x", "z"}), Atom::Vars("S", {"z", "y"})};
  AnswerSet certain = *RoundTripCertainSO(so, inv, source, join);
  ASSERT_EQ(certain.tuples.size(), 1u);
  EXPECT_EQ(certain.tuples[0], Tuple({Value::Int(1), Value::Int(5)}));
}

TEST(PolySOInverseTest, StudentIdExampleRoundTrip) {
  // Example 5.1: Takes(n,c) -> Enrollment(f(n),c). Inverting recovers the
  // full Takes relation up to null ids: certain answers of the projection
  // on courses are exact.
  SORule rule;
  rule.premise = {Atom::Vars("Takes", {"n", "c"})};
  rule.conclusion = {
      Atom("Enrollment", {Term::Fn("f", {Term::Var("n")}), Term::Var("c")})};
  SOTgdMapping m(std::make_shared<const Schema>(Schema{{"Takes", 2}}),
                 std::make_shared<const Schema>(Schema{{"Enrollment", 2}}),
                 SOTgd{{rule}});
  SOInverseMapping inv = *PolySOInverse(m);

  Instance source(*m.source);
  ASSERT_TRUE(source.Add("Takes", {Value::MakeConstant("ann"),
                                   Value::MakeConstant("db")}).ok());
  ASSERT_TRUE(source.Add("Takes", {Value::MakeConstant("ann"),
                                   Value::MakeConstant("os")}).ok());
  ASSERT_TRUE(source.Add("Takes", {Value::MakeConstant("bob"),
                                   Value::MakeConstant("db")}).ok());

  ConjunctiveQuery courses;
  courses.head = {InternVar("c")};
  courses.atoms = {Atom::Vars("Takes", {"n", "c"})};
  AnswerSet certain = *RoundTripCertainSO(m, inv, source, courses);
  AnswerSet direct = *EvaluateCq(courses, source);
  EXPECT_EQ(certain.tuples, direct.tuples);

  // The recovered instance preserves the co-enrollment structure: the two
  // 'ann' rows share their (null) student value.
  std::vector<Instance> worlds = *RoundTripWorldsSO(m, inv, source);
  ASSERT_EQ(worlds.size(), 1u);
  RelationId takes = worlds[0].schema().Find("Takes");
  ASSERT_EQ(worlds[0].TuplesCopy(takes).size(), 3u);
  Value ann_db, ann_os, bob_db;
  for (const Tuple& t : worlds[0].TuplesCopy(takes)) {
    if (t[1] == Value::MakeConstant("db") && !(t[0] == bob_db)) {
      // assigned below
    }
  }
  // Identify rows by course and cross-check student null sharing.
  std::vector<Tuple> rows = worlds[0].TuplesCopy(takes);
  std::map<std::string, std::vector<Value>> by_course;
  for (const Tuple& t : rows) by_course[t[1].ToString()].push_back(t[0]);
  ASSERT_EQ(by_course["db"].size(), 2u);
  ASSERT_EQ(by_course["os"].size(), 1u);
  // 'ann' appears in both db and os with the same null.
  EXPECT_TRUE(by_course["db"][0] == by_course["os"][0] ||
              by_course["db"][1] == by_course["os"][0]);
  // And the two db students are distinct.
  EXPECT_NE(by_course["db"][0], by_course["db"][1]);
}

TEST(PolySOInverseTest, SafeConstraintSeparatesFunctionProvenance) {
  // Two rules writing into T with different functions at the same position:
  // A(x) -> T(f(x)) and B(x) -> T(g(x)). Both subsume each other's head
  // tuple, so each inverse rule has two disjuncts, but Q_s makes the
  // branches mutually exclusive per value: a canonical f-null can only take
  // the A-branch together with the A-interpretation. Certain answers remain
  // sound.
  SORule r1;
  r1.premise = {Atom::Vars("A", {"x"})};
  r1.conclusion = {Atom("T", {Term::Fn("f", {Term::Var("x")})})};
  SORule r2;
  r2.premise = {Atom::Vars("B", {"x"})};
  r2.conclusion = {Atom("T", {Term::Fn("g", {Term::Var("x")})})};
  SOTgdMapping m(std::make_shared<const Schema>(Schema{{"A", 1}, {"B", 1}}),
                 std::make_shared<const Schema>(Schema{{"T", 1}}),
                 SOTgd{{r1, r2}});
  SOInverseMapping inv = *PolySOInverse(m);
  // Both σ emit the same rule shape (dedup keeps one), with one disjunct
  // per producer.
  ASSERT_EQ(inv.inverse.rules.size(), 1u);
  // No C() constraints: the only position of t̄ is a function term.
  EXPECT_TRUE(inv.inverse.rules[0].constant_vars.empty());
  ASSERT_EQ(inv.inverse.rules[0].disjuncts.size(), 2u);

  Instance source(*m.source);
  ASSERT_TRUE(source.AddInts("A", {1}).ok());
  std::vector<Instance> worlds = *RoundTripWorldsSO(m, inv, source);
  ASSERT_FALSE(worlds.empty());
  // Soundness: no world may claim a B-fact as certain.
  ConjunctiveQuery qb;
  qb.head = {InternVar("x")};
  qb.atoms = {Atom::Vars("B", {"x"})};
  AnswerSet certain = *CertainOverWorlds(worlds, qb);
  EXPECT_TRUE(certain.tuples.empty());
}

}  // namespace
}  // namespace mapinv
