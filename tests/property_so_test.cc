// Property sweeps over random *plain SO-tgd* mappings — the regime with
// shared function symbols across rules, which tgd-derived Skolemisation
// never produces. Checks PolySOInverse soundness (Theorem 5.3's recovery
// property) and the SO rewriting contract on random inputs.

#include <gtest/gtest.h>

#include "chase/chase_so.h"
#include "chase/round_trip.h"
#include "check/properties.h"
#include "eval/query_eval.h"
#include "inversion/polyso.h"
#include "mapgen/generators.h"
#include "rewrite/rewrite.h"

namespace mapinv {
namespace {

class SOSeedSweep : public ::testing::TestWithParam<uint64_t> {
 protected:
  SOTgdMapping MakeMapping(uint64_t seed) const {
    RandomSOMappingConfig config;
    config.seed = seed;
    config.num_rules = 3;
    config.source_relations = 3;
    config.target_relations = 3;
    config.arity = 2;
    config.premise_vars = 2;
    config.functions = 2;
    return GenerateRandomSOMapping(config);
  }

  Instance MakeSource(const SOTgdMapping& m, uint64_t seed) const {
    return GenerateInstance(*m.source, 2, 3, seed * 17 + 3);
  }
};

TEST_P(SOSeedSweep, GeneratedMappingsValidate) {
  SOTgdMapping m = MakeMapping(GetParam());
  EXPECT_TRUE(m.Validate().ok()) << m.ToString();
}

TEST_P(SOSeedSweep, PolySOInverseIsSoundOnSOMappings) {
  SOTgdMapping m = MakeMapping(GetParam());
  Result<SOInverseMapping> inv = PolySOInverse(m);
  ASSERT_TRUE(inv.ok()) << inv.status().ToString();
  Instance source = MakeSource(m, GetParam());
  ExecutionOptions options;
  options.max_worlds = 20000;
  for (const ConjunctiveQuery& q : PerRelationQueries(*m.source)) {
    Result<AnswerSet> certain =
        RoundTripCertainSO(m, *inv, source, q, options);
    if (!certain.ok() &&
        certain.status().code() == StatusCode::kResourceExhausted) {
      GTEST_SKIP() << "world explosion on seed " << GetParam();
    }
    ASSERT_TRUE(certain.ok())
        << certain.status().ToString() << "\n" << m.ToString();
    AnswerSet direct = *EvaluateCq(q, source);
    EXPECT_TRUE(certain->SubsetOf(direct))
        << "mapping:\n" << m.ToString() << "source: " << source.ToString()
        << "\nquery: " << q.ToString()
        << "\ncertain: " << certain->ToString()
        << "\ndirect: " << direct.ToString();
  }
}

TEST_P(SOSeedSweep, SORewritingMatchesChaseCertainAnswers) {
  SOTgdMapping m = MakeMapping(GetParam());
  Instance source = MakeSource(m, GetParam());
  Instance canonical = ChaseSOTgd(m, source).ValueOrDie();
  for (const ConjunctiveQuery& q : PerRelationQueries(*m.target)) {
    Result<UnionCq> rewriting = RewriteOverSourceSO(m, q);
    ASSERT_TRUE(rewriting.ok()) << rewriting.status().ToString();
    AnswerSet via_rewriting =
        EvaluateUnionCq(*rewriting, source).ValueOrDie();
    AnswerSet via_chase =
        EvaluateCq(q, canonical).ValueOrDie().CertainOnly();
    EXPECT_EQ(via_rewriting.tuples, via_chase.tuples)
        << "mapping:\n" << m.ToString() << "query: " << q.ToString()
        << "\nsource: " << source.ToString()
        << "\nrewriting: " << rewriting->ToString();
  }
}

INSTANTIATE_TEST_SUITE_P(RandomSOMappings, SOSeedSweep,
                         ::testing::Range<uint64_t>(0, 12));

}  // namespace
}  // namespace mapinv
