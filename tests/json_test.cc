// Tests for base/json.h — the protocol JSON value.
//
// The serving protocol depends on two properties beyond plain correctness:
// serialization is deterministic (objects keep insertion order, integers
// render exactly), and parsing is strict (no trailing garbage, bounded
// nesting) so a hostile frame cannot wedge or overflow the server.

#include "base/json.h"

#include <cstdint>
#include <string>

#include "gtest/gtest.h"

namespace mapinv {
namespace {

TEST(JsonParseTest, Scalars) {
  EXPECT_TRUE(Json::Parse("null")->IsNull());
  EXPECT_EQ(Json::Parse("true")->AsBool(), true);
  EXPECT_EQ(Json::Parse("false")->AsBool(), false);
  EXPECT_EQ(Json::Parse("42")->AsInt(), 42);
  EXPECT_EQ(Json::Parse("-7")->AsInt(), -7);
  EXPECT_DOUBLE_EQ(Json::Parse("2.5")->AsDouble(), 2.5);
  EXPECT_DOUBLE_EQ(Json::Parse("1e3")->AsDouble(), 1000.0);
  EXPECT_EQ(Json::Parse("\"hi\"")->AsString(), "hi");
}

TEST(JsonParseTest, Int64Exactness) {
  // INT64_MAX and INT64_MIN round-trip without double truncation.
  Json max = Json::Parse("9223372036854775807").ValueOrDie();
  EXPECT_EQ(max.AsInt(), INT64_MAX);
  EXPECT_EQ(max.Serialize(), "9223372036854775807");
  Json min = Json::Parse("-9223372036854775808").ValueOrDie();
  EXPECT_EQ(min.AsInt(), INT64_MIN);
  EXPECT_EQ(min.Serialize(), "-9223372036854775808");
}

TEST(JsonParseTest, NestedDocumentRoundTrips) {
  const std::string text =
      "{\"id\":3,\"command\":\"invert\",\"options\":{\"deadline_ms\":250,"
      "\"on_exhausted\":\"partial\"},\"tags\":[1,2,3],\"flag\":true}";
  Json parsed = Json::Parse(text).ValueOrDie();
  EXPECT_EQ(parsed.GetInt("id"), 3);
  EXPECT_EQ(parsed.GetString("command"), "invert");
  EXPECT_EQ(parsed.Find("options")->GetInt("deadline_ms"), 250);
  EXPECT_EQ(parsed.Find("tags")->AsArray().size(), 3u);
  // Insertion order is preserved, so re-serialization is byte-identical.
  EXPECT_EQ(parsed.Serialize(), text);
}

TEST(JsonParseTest, StringEscapes) {
  Json parsed =
      Json::Parse("\"a\\\"b\\\\c\\/d\\n\\t\\u0041\"").ValueOrDie();
  EXPECT_EQ(parsed.AsString(), "a\"b\\c/d\n\tA");
  // Control characters re-escape on output.
  EXPECT_EQ(Json(std::string("x\ny\x01")).Serialize(), "\"x\\ny\\u0001\"");
}

TEST(JsonParseTest, SurrogatePairsDecodeToUtf8) {
  // U+1F600 as a surrogate pair.
  Json parsed = Json::Parse("\"\\uD83D\\uDE00\"").ValueOrDie();
  EXPECT_EQ(parsed.AsString(), "\xF0\x9F\x98\x80");
  // A lone high surrogate is malformed.
  EXPECT_FALSE(Json::Parse("\"\\uD83D\"").ok());
}

TEST(JsonParseTest, RejectsMalformedDocuments) {
  const char* bad[] = {
      "",        "{",         "[1,",      "{\"a\":}", "{\"a\" 1}",
      "[1,]",    "{,}",       "tru",      "01",       "1.",
      "\"\x01\"", "nul",      "{\"a\":1,}", "1 2",    "[1] x",
  };
  for (const char* text : bad) {
    EXPECT_FALSE(Json::Parse(text).ok()) << text;
  }
}

TEST(JsonParseTest, RejectsTrailingGarbage) {
  Status status = Json::Parse("{\"a\":1} trailing").status();
  EXPECT_EQ(status.code(), StatusCode::kMalformed);
}

TEST(JsonParseTest, DepthLimitBoundsHostileNesting) {
  std::string deep(Json::kMaxDepth, '[');
  deep += std::string(Json::kMaxDepth, ']');
  EXPECT_TRUE(Json::Parse(deep).ok());
  std::string too_deep(Json::kMaxDepth + 1, '[');
  too_deep += std::string(Json::kMaxDepth + 1, ']');
  EXPECT_FALSE(Json::Parse(too_deep).ok());
}

TEST(JsonBuildTest, SetOverwritesInPlacePreservingOrder) {
  Json json = Json::MakeObject();
  json.Set("a", Json(1));
  json.Set("b", Json(2));
  json.Set("a", Json(3));
  EXPECT_EQ(json.Serialize(), "{\"a\":3,\"b\":2}");
}

TEST(JsonBuildTest, TolerantReadsReturnDefaults) {
  Json json = Json::MakeObject();
  json.Set("n", Json(7));
  EXPECT_EQ(json.GetInt("n"), 7);
  EXPECT_EQ(json.GetInt("missing", -1), -1);
  EXPECT_EQ(json.GetString("n", "fallback"), "fallback");  // wrong kind
  EXPECT_EQ(json.Find("missing"), nullptr);
  EXPECT_EQ(Json(5).Find("anything"), nullptr);  // non-object
}

}  // namespace
}  // namespace mapinv
