/// \file parser_fuzz.cc
/// \brief Fuzz target for the text parsers (see src/parser/parser.h).
///
/// The first input byte selects the entry point ('T' tgd mapping, 'R'
/// reverse mapping, 'S' SO-tgd mapping, 'Q' union query, 'C' single CQ,
/// 'I' instance, 'N' binary snapshot loader — see docs/STORAGE.md, 'J' job
/// manifest loader — see docs/JOBS.md; anything else exercises the lexer
/// alone) and the rest is fed to it as text (or, for 'N'/'J', raw bytes).
/// Two properties are checked on every input:
///
///   1. No parse crashes, hangs, or trips ASan/UBSan — errors must come
///      back as Status values.
///   2. Accepted inputs round-trip: ToString() of the parsed value parses
///      again, to an equal rendering (the printers and parsers agree).
///
/// With clang the target links against libFuzzer (-fsanitize=fuzzer); with
/// other toolchains CMake builds a standalone driver whose main() replays
/// corpus files and, with --mutate=N, runs a deterministic xorshift-based
/// mutation loop over them. Either way the per-input behaviour is
/// identical, so corpus files reproduce findings on both drivers.

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <string_view>

#include "base/status.h"
#include "data/instance.h"
#include "job/job.h"
#include "logic/cq.h"
#include "logic/mapping.h"
#include "parser/lexer.h"
#include "parser/parser.h"

namespace {

// The input being processed, for the finding report (libFuzzer dumps crash
// inputs itself; the standalone driver needs this to make findings
// reproducible).
std::string g_current_input;

// Dies loudly so both libFuzzer and the standalone driver report the input
// as a finding instead of silently moving on.
void Fail(const char* what, const std::string& detail) {
  std::string escaped;
  for (unsigned char c : g_current_input) {
    if (c >= 0x20 && c < 0x7f && c != '\\') {
      escaped += static_cast<char>(c);
    } else {
      char buf[8];
      std::snprintf(buf, sizeof buf, "\\x%02x", c);
      escaped += buf;
    }
  }
  std::fprintf(stderr, "parser_fuzz: %s\n%s\ninput (escaped): %s\n", what,
               detail.c_str(), escaped.c_str());
  std::abort();
}

// Parses `text`, and if it is accepted re-parses the rendering. Both the
// re-parse failing and the re-parse rendering differently are findings.
template <typename Fn>
void RoundTrip(Fn parse, std::string_view text) {
  auto first = parse(text);
  if (!first.ok()) return;  // rejection is fine; crashing is not
  const std::string rendered = first.ValueOrDie().ToString();
  auto second = parse(rendered);
  if (!second.ok()) {
    Fail("accepted input renders unparseably",
         rendered + "\n" + second.status().ToString());
  }
  const std::string rerendered = second.ValueOrDie().ToString();
  if (rerendered != rendered) {
    Fail("rendering is not a fixed point", rendered + "\n---\n" + rerendered);
  }
}

void RunOneInput(const uint8_t* data, size_t size) {
  if (size == 0) return;
  g_current_input.assign(reinterpret_cast<const char*>(data), size);
  const std::string_view text(reinterpret_cast<const char*>(data) + 1,
                              size - 1);
  switch (data[0]) {
    case 'T':
      RoundTrip([](std::string_view t) { return mapinv::ParseTgdMapping(t); },
                text);
      break;
    case 'R':
      RoundTrip(
          [](std::string_view t) { return mapinv::ParseReverseMapping(t); },
          text);
      break;
    case 'S':
      RoundTrip(
          [](std::string_view t) { return mapinv::ParseSOTgdMapping(t); },
          text);
      break;
    case 'Q':
      RoundTrip([](std::string_view t) { return mapinv::ParseQuery(t); },
                text);
      break;
    case 'C':
      RoundTrip([](std::string_view t) { return mapinv::ParseCq(t); }, text);
      break;
    case 'I':
      RoundTrip(
          [](std::string_view t) {
            return mapinv::ParseInstanceInferSchema(t);
          },
          text);
      break;
    case 'N': {
      // Snapshot loader: arbitrary bytes must come back as a clean Status
      // or a fully-walkable instance — the validation pass has to catch
      // every malformed directory/page/spelling reference before anything
      // dereferences it.
      auto loaded = mapinv::Instance::LoadFromBytes(text.data(), text.size());
      if (loaded.ok()) {
        loaded.ValueOrDie().ToString();  // walks every row and spelling
      }
      break;
    }
    case 'J': {
      // Job-manifest loader: arbitrary bytes must parse to a clean Status
      // or a manifest whose re-serialization reproduces the input exactly
      // (the resume path trusts nothing a parse did not verify).
      auto manifest =
          mapinv::JobManifestFromBytes(text.data(), text.size());
      if (manifest.ok()) {
        const std::string rebytes =
            mapinv::JobManifestToBytes(manifest.ValueOrDie());
        if (rebytes != text) {
          Fail("job manifest re-serialization is not the identity",
               "accepted " + std::to_string(text.size()) + " bytes, wrote " +
                   std::to_string(rebytes.size()));
        }
      }
      break;
    }
    default:
      // Unknown selector: still worth lexing — the tokeniser must reject
      // garbage with a Status, never a crash.
      mapinv::Lex(text).status();
      break;
  }
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  RunOneInput(data, size);
  return 0;
}

#ifndef MAPINV_FUZZ_HAS_LIBFUZZER

// Standalone driver for toolchains without libFuzzer (the repo's default
// gcc build). Replays every corpus file passed on the command line;
// --mutate=N additionally runs N deterministic mutations of the corpus
// (seeded by --seed=S), covering byte flips, truncation, duplication and
// cross-file splices.

#include <filesystem>
#include <fstream>
#include <vector>

namespace {

uint64_t g_rng_state = 0x9e3779b97f4a7c15ull;

uint64_t NextRand() {  // xorshift64* — deterministic across platforms
  uint64_t x = g_rng_state;
  x ^= x >> 12;
  x ^= x << 25;
  x ^= x >> 27;
  g_rng_state = x;
  return x * 0x2545f4914f6cdd1dull;
}

std::vector<uint8_t> Mutate(const std::vector<std::vector<uint8_t>>& corpus) {
  std::vector<uint8_t> input = corpus[NextRand() % corpus.size()];
  const int edits = 1 + static_cast<int>(NextRand() % 4);
  for (int e = 0; e < edits; ++e) {
    switch (NextRand() % 4) {
      case 0:  // flip a byte
        if (!input.empty()) {
          input[NextRand() % input.size()] ^=
              static_cast<uint8_t>(1u << (NextRand() % 8));
        }
        break;
      case 1:  // truncate
        if (!input.empty()) input.resize(NextRand() % input.size());
        break;
      case 2: {  // duplicate a chunk in place
        if (input.empty()) break;
        size_t at = NextRand() % input.size();
        size_t len = 1 + NextRand() % 16;
        std::vector<uint8_t> chunk(
            input.begin() + at,
            input.begin() + at + std::min(len, input.size() - at));
        input.insert(input.begin() + at, chunk.begin(), chunk.end());
        break;
      }
      case 3: {  // splice a tail from another corpus entry
        const std::vector<uint8_t>& other =
            corpus[NextRand() % corpus.size()];
        if (other.empty()) break;
        size_t keep = input.empty() ? 0 : NextRand() % input.size();
        input.resize(keep);
        size_t from = NextRand() % other.size();
        input.insert(input.end(), other.begin() + from, other.end());
        break;
      }
    }
  }
  return input;
}

void CollectFiles(const std::filesystem::path& path,
                  std::vector<std::filesystem::path>* out) {
  if (std::filesystem::is_directory(path)) {
    for (const auto& entry : std::filesystem::directory_iterator(path)) {
      if (entry.is_regular_file()) out->push_back(entry.path());
    }
  } else {
    out->push_back(path);
  }
}

}  // namespace

int main(int argc, char** argv) {
  long long mutations = 0;
  std::vector<std::filesystem::path> files;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--mutate=", 0) == 0) {
      mutations = std::atoll(arg.c_str() + 9);
    } else if (arg.rfind("--seed=", 0) == 0) {
      g_rng_state = std::strtoull(arg.c_str() + 7, nullptr, 10) | 1ull;
    } else {
      CollectFiles(arg, &files);
    }
  }
  if (files.empty()) {
    std::fprintf(stderr,
                 "usage: %s [--mutate=N] [--seed=S] corpus-file-or-dir...\n",
                 argv[0]);
    return 2;
  }

  std::vector<std::vector<uint8_t>> corpus;
  for (const auto& file : files) {
    std::ifstream in(file, std::ios::binary);
    corpus.emplace_back(std::istreambuf_iterator<char>(in),
                        std::istreambuf_iterator<char>());
  }
  for (const auto& input : corpus) {
    RunOneInput(input.data(), input.size());
  }
  std::printf("parser_fuzz: replayed %zu corpus file(s)\n", corpus.size());

  for (long long i = 0; i < mutations; ++i) {
    std::vector<uint8_t> input = Mutate(corpus);
    RunOneInput(input.data(), input.size());
  }
  if (mutations > 0) {
    std::printf("parser_fuzz: ran %lld deterministic mutation(s)\n",
                mutations);
  }
  return 0;
}

#endif  // MAPINV_FUZZ_HAS_LIBFUZZER
