// Property-style parameterized sweeps over random mappings and instances.
//
// These are the library's strongest correctness checks: the Section 4
// pipeline (MaximumRecovery → EliminateEqualities → EliminateDisjunctions)
// and the Section 5 PolySOInverse are two fully independent implementations
// of CQ-maximum recoveries, so their certain answers must agree exactly on
// every mapping, instance and conjunctive query; the rewriting engine is
// checked against chase-based certain answers; each pipeline stage must
// preserve round-trip certain answers.

#include <gtest/gtest.h>

#include "check/properties.h"
#include "chase/round_trip.h"
#include "eval/query_eval.h"
#include "inversion/cq_maximum_recovery.h"
#include "inversion/eliminate_disjunctions.h"
#include "inversion/eliminate_equalities.h"
#include "inversion/maximum_recovery.h"
#include "inversion/polyso.h"
#include "mapgen/generators.h"
#include "rewrite/rewrite.h"
#include "rewrite/skolemize.h"

namespace mapinv {
namespace {

class SeedSweep : public ::testing::TestWithParam<uint64_t> {
 protected:
  // Small shapes keep disjunctive world counts manageable while still
  // exercising joins, repeated variables and existentials.
  TgdMapping MakeMapping(uint64_t seed) const {
    RandomMappingConfig config;
    config.seed = seed;
    config.num_tgds = 3;
    config.source_relations = 3;
    config.target_relations = 3;
    config.arity = 2;
    config.premise_atoms = 2;
    config.conclusion_atoms = 1;
    config.premise_vars = 3;
    config.existential_vars = 1;
    return GenerateRandomMapping(config);
  }

  Instance MakeSource(const TgdMapping& m, uint64_t seed) const {
    return GenerateInstance(*m.source, 3, 3, seed * 31 + 7);
  }
};

TEST_P(SeedSweep, RewritingMatchesChaseCertainAnswers) {
  TgdMapping m = MakeMapping(GetParam());
  Instance source = MakeSource(m, GetParam());
  for (const ConjunctiveQuery& q : PerRelationQueries(*m.target)) {
    Result<UnionCq> rewriting = RewriteOverSource(m, q);
    ASSERT_TRUE(rewriting.ok()) << rewriting.status().ToString();
    AnswerSet via_rewriting = *EvaluateUnionCq(*rewriting, source);
    AnswerSet via_chase = *CertainAnswersTgd(m, source, q);
    EXPECT_EQ(via_rewriting.tuples, via_chase.tuples)
        << "mapping:\n" << m.ToString() << "query: " << q.ToString()
        << "\nsource: " << source.ToString()
        << "\nrewriting: " << rewriting->ToString();
  }
}

TEST_P(SeedSweep, RewritingMatchesChaseOnJoinQueries) {
  TgdMapping m = MakeMapping(GetParam());
  Instance source = MakeSource(m, GetParam());
  // A two-atom join query over the first two target relations, projecting
  // the join variable away.
  ConjunctiveQuery q;
  q.name = "Join";
  q.head = {InternVar("?j0")};
  q.atoms = {Atom("T0", {Term::Var("?j0"), Term::Var("?j1")}),
             Atom("T1", {Term::Var("?j1"), Term::Var("?j2")})};
  Result<UnionCq> rewriting = RewriteOverSource(m, q);
  ASSERT_TRUE(rewriting.ok()) << rewriting.status().ToString();
  AnswerSet via_rewriting = *EvaluateUnionCq(*rewriting, source);
  AnswerSet via_chase = *CertainAnswersTgd(m, source, q);
  EXPECT_EQ(via_rewriting.tuples, via_chase.tuples)
      << "mapping:\n" << m.ToString() << "source: " << source.ToString();
}

TEST_P(SeedSweep, CqMaximumRecoveryIsSound) {
  TgdMapping m = MakeMapping(GetParam());
  Result<ReverseMapping> rec = CqMaximumRecovery(m);
  ASSERT_TRUE(rec.ok()) << rec.status().ToString();
  std::vector<Instance> sources = {MakeSource(m, GetParam()),
                                   MakeSource(m, GetParam() + 1000)};
  auto violation =
      *CheckCRecovery(m, *rec, sources, PerRelationQueries(*m.source));
  EXPECT_FALSE(violation.has_value())
      << violation->description << "\nmapping:\n" << m.ToString();
}

TEST_P(SeedSweep, PolySOInverseIsSound) {
  TgdMapping m = MakeMapping(GetParam());
  Result<SOTgdMapping> so = TgdsToPlainSOTgd(m);
  ASSERT_TRUE(so.ok());
  Result<SOInverseMapping> inv = PolySOInverse(*so);
  ASSERT_TRUE(inv.ok()) << inv.status().ToString();
  Instance source = MakeSource(m, GetParam());
  for (const ConjunctiveQuery& q : PerRelationQueries(*m.source)) {
    Result<AnswerSet> certain = RoundTripCertainSO(*so, *inv, source, q);
    ASSERT_TRUE(certain.ok()) << certain.status().ToString();
    AnswerSet direct = *EvaluateCq(q, source);
    EXPECT_TRUE(certain->SubsetOf(direct))
        << "mapping:\n" << m.ToString() << "query: " << q.ToString()
        << "\ncertain: " << certain->ToString()
        << "\ndirect:  " << direct.ToString();
  }
}

TEST_P(SeedSweep, SectionFourAndSectionFiveAgree) {
  // Both algorithms produce CQ-maximum recoveries, so the certain answers
  // of every source CQ through the round trip must coincide (Definition
  // 3.4: CQ-maximum recoveries mutually dominate).
  TgdMapping m = MakeMapping(GetParam());
  Result<ReverseMapping> rec = CqMaximumRecovery(m);
  ASSERT_TRUE(rec.ok()) << rec.status().ToString();
  Result<SOTgdMapping> so = TgdsToPlainSOTgd(m);
  ASSERT_TRUE(so.ok());
  Result<SOInverseMapping> inv = PolySOInverse(*so);
  ASSERT_TRUE(inv.ok()) << inv.status().ToString();
  Instance source = MakeSource(m, GetParam());
  for (const ConjunctiveQuery& q : PerRelationQueries(*m.source)) {
    Result<AnswerSet> via_pipeline = RoundTripCertain(m, *rec, source, q);
    ASSERT_TRUE(via_pipeline.ok()) << via_pipeline.status().ToString();
    Result<AnswerSet> via_polyso = RoundTripCertainSO(*so, *inv, source, q);
    ASSERT_TRUE(via_polyso.ok()) << via_polyso.status().ToString();
    EXPECT_EQ(via_pipeline->tuples, via_polyso->tuples)
        << "mapping:\n" << m.ToString() << "query: " << q.ToString()
        << "\npipeline: " << via_pipeline->ToString()
        << "\npolyso:   " << via_polyso->ToString()
        << "\nsource:   " << source.ToString();
  }
}

TEST_P(SeedSweep, EliminateEqualitiesPreservesRoundTripCertainAnswers) {
  // Lemma 4.2: Σ' and Σ'' specify the same maximum recovery, so round-trip
  // certain answers agree.
  TgdMapping m = MakeMapping(GetParam());
  Result<ReverseMapping> sigma1 = MaximumRecovery(m);
  ASSERT_TRUE(sigma1.ok()) << sigma1.status().ToString();
  Result<ReverseMapping> sigma2 = EliminateEqualities(*sigma1);
  ASSERT_TRUE(sigma2.ok()) << sigma2.status().ToString();
  Instance source = MakeSource(m, GetParam());
  ExecutionOptions options;
  options.max_worlds = 100000;
  for (const ConjunctiveQuery& q : PerRelationQueries(*m.source)) {
    Result<AnswerSet> a1 = RoundTripCertain(m, *sigma1, source, q, options);
    Result<AnswerSet> a2 = RoundTripCertain(m, *sigma2, source, q, options);
    if (!a1.ok() || !a2.ok()) {
      GTEST_SKIP() << "world explosion: " << a1.status().ToString() << " / "
                   << a2.status().ToString();
    }
    EXPECT_EQ(a1->tuples, a2->tuples)
        << "mapping:\n" << m.ToString() << "query: " << q.ToString();
  }
}

TEST_P(SeedSweep, EliminateDisjunctionsPreservesCqCertainAnswers) {
  // Lemma 4.3: Σ'' ≡_CQ Σ*, compared on the canonical target of a random
  // source (the realistic input distribution for a reverse mapping).
  TgdMapping m = MakeMapping(GetParam());
  Result<ReverseMapping> sigma1 = MaximumRecovery(m);
  ASSERT_TRUE(sigma1.ok());
  Result<ReverseMapping> sigma2 = EliminateEqualities(*sigma1);
  ASSERT_TRUE(sigma2.ok());
  Result<ReverseMapping> sigma_star = EliminateDisjunctions(*sigma2);
  ASSERT_TRUE(sigma_star.ok()) << sigma_star.status().ToString();
  Instance source = MakeSource(m, GetParam());
  Result<Instance> target = ChaseTgds(m, source);
  ASSERT_TRUE(target.ok());
  ExecutionOptions options;
  options.max_worlds = 100000;
  auto violation = CheckCqEquivalentReverse(
      *sigma2, *sigma_star, {*target}, PerRelationQueries(*m.source), options);
  if (!violation.ok()) {
    GTEST_SKIP() << "world explosion: " << violation.status().ToString();
  }
  EXPECT_FALSE(violation->has_value())
      << (*violation)->description << "\nmapping:\n" << m.ToString();
}

INSTANTIATE_TEST_SUITE_P(RandomMappings, SeedSweep,
                         ::testing::Range<uint64_t>(0, 12));

// A second shape: two-atom conclusions with two existentials per tgd. This
// exercises multi-atom ψ premises in MaximumRecovery (the reverse premise
// is a pattern, not a single atom) and conclusion normalisation in
// PolySOInverse (one inverse rule per conclusion atom).
class WideConclusionSweep : public ::testing::TestWithParam<uint64_t> {
 protected:
  TgdMapping MakeMapping(uint64_t seed) const {
    RandomMappingConfig config;
    config.seed = seed * 131 + 17;
    config.num_tgds = 2;
    config.source_relations = 2;
    config.target_relations = 2;
    config.arity = 2;
    config.premise_atoms = 1;
    config.conclusion_atoms = 2;
    config.premise_vars = 2;
    config.existential_vars = 2;
    return GenerateRandomMapping(config);
  }
};

TEST_P(WideConclusionSweep, CqMaximumRecoveryIsSound) {
  TgdMapping m = MakeMapping(GetParam());
  Result<ReverseMapping> rec = CqMaximumRecovery(m);
  ASSERT_TRUE(rec.ok()) << rec.status().ToString() << "\n" << m.ToString();
  Instance source = GenerateInstance(*m.source, 3, 3, GetParam());
  auto violation =
      *CheckCRecovery(m, *rec, {source}, PerRelationQueries(*m.source));
  EXPECT_FALSE(violation.has_value())
      << violation->description << "\nmapping:\n" << m.ToString();
}

TEST_P(WideConclusionSweep, RoundTripApproximationChainHolds) {
  // With multi-atom conclusions the two canonical round trips need not
  // coincide: a rule like S1(v,v) → ∃w,e (T(w,v) ∧ T(v,e)) lets a
  // non-canonical solution fold the invented e onto a constant, satisfying
  // the SO inverse without returning the S1-fact, while the canonical
  // instance keeps e fresh and the provenance-constrained SO disjuncts
  // force the fact back. The guaranteed relationship (see
  // chase/round_trip.h) is the one-sided chain
  //     FO-pipeline round trip ⊆ SO round trip ⊆ direct evaluation.
  TgdMapping m = MakeMapping(GetParam());
  Result<ReverseMapping> rec = CqMaximumRecovery(m);
  ASSERT_TRUE(rec.ok()) << rec.status().ToString();
  Result<SOTgdMapping> so = TgdsToPlainSOTgd(m);
  ASSERT_TRUE(so.ok());
  Result<SOInverseMapping> inv = PolySOInverse(*so);
  ASSERT_TRUE(inv.ok()) << inv.status().ToString();
  Instance source = GenerateInstance(*m.source, 2, 3, GetParam() + 55);
  ExecutionOptions options;
  options.max_worlds = 50000;
  for (const ConjunctiveQuery& q : PerRelationQueries(*m.source)) {
    Result<AnswerSet> via_pipeline =
        RoundTripCertain(m, *rec, source, q, options);
    Result<AnswerSet> via_polyso =
        RoundTripCertainSO(*so, *inv, source, q, options);
    if (!via_pipeline.ok() || !via_polyso.ok()) {
      GTEST_SKIP() << "world explosion: "
                   << via_pipeline.status().ToString() << " / "
                   << via_polyso.status().ToString();
    }
    AnswerSet direct = *EvaluateCq(q, source);
    EXPECT_TRUE(via_pipeline->SubsetOf(*via_polyso))
        << "mapping:\n" << m.ToString() << "query: " << q.ToString()
        << "\npipeline: " << via_pipeline->ToString()
        << "\npolyso:   " << via_polyso->ToString();
    EXPECT_TRUE(via_polyso->SubsetOf(direct))
        << "mapping:\n" << m.ToString() << "query: " << q.ToString()
        << "\npolyso: " << via_polyso->ToString()
        << "\ndirect: " << direct.ToString();
  }
}

INSTANTIATE_TEST_SUITE_P(WideConclusions, WideConclusionSweep,
                         ::testing::Range<uint64_t>(0, 8));

// Sweep over the structured generator families as well.
class FamilySweep : public ::testing::TestWithParam<int> {};

TEST_P(FamilySweep, CopyMappingsAreExactlyInvertible) {
  int n = GetParam();
  TgdMapping m = CopyMapping(n, 2);
  ReverseMapping rec = *CqMaximumRecovery(m);
  Instance source = GenerateInstance(*m.source, 4, 4, n);
  EXPECT_TRUE(*RoundTripIsIdentity(m, rec, source));
}

TEST_P(FamilySweep, ChainJoinsRecoverTheChainQuery) {
  int len = GetParam();
  TgdMapping m = ChainJoinMapping(len);
  ReverseMapping rec = *CqMaximumRecovery(m);
  // Source: one long chain 0 -> 1 -> ... -> len.
  Instance source(*m.source);
  for (int i = 0; i < len; ++i) {
    ASSERT_TRUE(source.AddInts("R" + std::to_string(i), {i, i + 1}).ok());
  }
  ConjunctiveQuery ends;
  ends.head = {InternVar("?a"), InternVar("?b")};
  std::vector<Atom> chain;
  for (int i = 0; i < len; ++i) {
    chain.push_back(Atom("R" + std::to_string(i),
                         {Term::Var("?c" + std::to_string(i)),
                          Term::Var("?c" + std::to_string(i + 1))}));
  }
  ends.atoms = chain;
  ends.head = {InternVar("?c0"), InternVar("?c" + std::to_string(len))};
  AnswerSet certain = *RoundTripCertain(m, rec, source, ends);
  ASSERT_EQ(certain.tuples.size(), 1u);
  EXPECT_EQ(certain.tuples[0], Tuple({Value::Int(0), Value::Int(len)}));
}

INSTANTIATE_TEST_SUITE_P(Families, FamilySweep, ::testing::Values(1, 2, 3, 4));

}  // namespace
}  // namespace mapinv
