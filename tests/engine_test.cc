// Tests for the execution engine: thread pool, deterministic parallel
// trigger collection, eval cache, symbol scoping and the Engine facade.

#include <atomic>
#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "base/symbol_context.h"
#include "chase/chase_reverse.h"
#include "chase/chase_so.h"
#include "chase/chase_tgd.h"
#include "engine/engine.h"
#include "engine/eval_cache.h"
#include "engine/execution_options.h"
#include "engine/parallel_chase.h"
#include "engine/thread_pool.h"
#include "engine/trace.h"
#include "eval/containment.h"
#include "eval/hom.h"
#include "eval/instance_core.h"
#include "inversion/compose.h"
#include "inversion/cq_maximum_recovery.h"
#include "inversion/eliminate_equalities.h"
#include "mapgen/generators.h"
#include "rewrite/rewrite.h"
#include "parser/parser.h"

namespace mapinv {
namespace {

// ---------------------------------------------------------------------------
// ThreadPool

TEST(ThreadPoolTest, ParallelForCoversEveryIndexExactlyOnce) {
  ThreadPool pool(3);
  constexpr size_t kN = 10000;
  std::vector<std::atomic<int>> counts(kN);
  pool.ParallelFor(kN, [&](size_t i) {
    counts[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (size_t i = 0; i < kN; ++i) {
    ASSERT_EQ(counts[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPoolTest, ZeroWorkersRunsInline) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.thread_count(), 0);
  std::atomic<size_t> sum{0};
  pool.ParallelFor(100, [&](size_t i) {
    sum.fetch_add(i, std::memory_order_relaxed);
  });
  EXPECT_EQ(sum.load(), 100u * 99u / 2);
}

TEST(ThreadPoolTest, ParallelForWithZeroItemsReturns) {
  ThreadPool pool(2);
  bool ran = false;
  pool.ParallelFor(0, [&](size_t) { ran = true; });
  EXPECT_FALSE(ran);
}

TEST(ThreadPoolTest, SubmitEventuallyRunsEveryTask) {
  std::atomic<int> done{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 64; ++i) {
      pool.Submit([&done] { done.fetch_add(1, std::memory_order_relaxed); });
    }
    // The destructor drains outstanding work.
  }
  EXPECT_EQ(done.load(), 64);
}

TEST(ThreadPoolTest, NestedParallelForDoesNotDeadlock) {
  ThreadPool pool(2);
  std::atomic<int> total{0};
  pool.ParallelFor(8, [&](size_t) {
    pool.ParallelFor(8, [&](size_t) {
      total.fetch_add(1, std::memory_order_relaxed);
    });
  });
  EXPECT_EQ(total.load(), 64);
}

// ---------------------------------------------------------------------------
// ExecDeadline

TEST(ExecDeadlineTest, ZeroMeansUnlimited) {
  ExecDeadline deadline(0);
  EXPECT_FALSE(deadline.Expired());
}

TEST(ExecDeadlineTest, ExpiresAfterItsBudget) {
  ExecDeadline deadline(1);
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  EXPECT_TRUE(deadline.Expired());
}

TEST(ExecDeadlineTest, ExpiredChaseReportsResourceExhausted) {
  TgdMapping mapping = ParseTgdMapping("R(x,y) -> S(x,y)").ValueOrDie();
  Instance source = GenerateInstance(*mapping.source, 50, 20, 7);
  ExecutionOptions options;
  options.deadline_ms = 1;
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  // The deadline is measured from operation entry, so this chase still has
  // its full (tiny) budget — but a 1ms budget on a 50-tuple chase may or may
  // not expire. Force the issue by chasing in a loop until one run expires
  // or all runs succeed; either way no other error may appear.
  for (int i = 0; i < 3; ++i) {
    Result<Instance> result = ChaseTgds(mapping, source, options);
    if (!result.ok()) {
      EXPECT_EQ(result.status().code(), StatusCode::kResourceExhausted);
      return;
    }
  }
  // All runs beat the deadline — acceptable on a fast machine.
}

// ---------------------------------------------------------------------------
// SymbolContext

TEST(SymbolContextTest, CountsFromZeroAndBumps) {
  SymbolContext context;
  EXPECT_EQ(context.NextNullLabel(), 0u);
  EXPECT_EQ(context.NextNullLabel(), 1u);
  context.BumpNullPast(10);
  EXPECT_EQ(context.NextNullLabel(), 11u);
  // Bumping below the current counter is a no-op.
  context.BumpNullPast(3);
  EXPECT_EQ(context.NextNullLabel(), 12u);
  EXPECT_EQ(context.NextVarOrdinal(), 0u);
  context.BumpVarPast(5);
  EXPECT_EQ(context.NextVarOrdinal(), 6u);
}

// Two identical chases with fresh contexts produce *identical* (not merely
// isomorphic) instances — the regression test for the old global-atomic
// fresh-null counter, under which the second run's nulls continued where the
// first run's left off.
TEST(SymbolContextTest, IdenticalChasesProduceIdenticalInstances) {
  TgdMapping mapping =
      ParseTgdMapping("R(x,y) -> EXISTS z . T(x,z), T(z,y)").ValueOrDie();
  Instance source =
      ParseInstance("{ R(1,2), R(3,4) }", *mapping.source).ValueOrDie();

  auto chase_fresh = [&]() {
    SymbolContext symbols;
    ExecutionOptions options;
    options.symbols = &symbols;
    return ChaseTgds(mapping, source, options).ValueOrDie().ToString();
  };
  std::string first = chase_fresh();
  std::string second = chase_fresh();
  EXPECT_EQ(first, second);
  // The output really contains fresh nulls (so the test is not vacuous).
  EXPECT_NE(first.find('_'), std::string::npos) << first;
}

TEST(SymbolContextTest, EngineScopedNullsNeverCollideWithInputNulls) {
  TgdMapping mapping =
      ParseTgdMapping("R(x,y) -> EXISTS z . T(x,z)").ValueOrDie();
  // The input already contains a labelled null; the engine-scoped context
  // must issue labels strictly above it.
  Instance source =
      ParseInstance("{ R(1,_7) }", *mapping.source).ValueOrDie();
  SymbolContext symbols;
  ExecutionOptions options;
  options.symbols = &symbols;
  Instance target = ChaseTgds(mapping, source, options).ValueOrDie();
  EXPECT_EQ(target.ToString().find("_7)"), std::string::npos)
      << "fresh null reused an input label: " << target.ToString();
}

// ---------------------------------------------------------------------------
// Parallel chase == sequential chase (bit-identical output)

std::string ChaseWithThreads(const TgdMapping& mapping, const Instance& source,
                             int threads, bool oblivious = false) {
  SymbolContext symbols;
  ExecutionOptions options;
  options.threads = threads;
  options.symbols = &symbols;
  options.oblivious = oblivious;
  return ChaseTgds(mapping, source, options).ValueOrDie().ToString();
}

TEST(ParallelChaseTest, ChainJoinMatchesSequentialForEveryThreadCount) {
  TgdMapping mapping = ChainJoinMapping(4);
  Instance source = GenerateInstance(*mapping.source, 12, 5, 11);
  const std::string sequential = ChaseWithThreads(mapping, source, 1);
  for (int threads : {2, 4, 8}) {
    EXPECT_EQ(ChaseWithThreads(mapping, source, threads), sequential)
        << "threads = " << threads;
  }
}

TEST(ParallelChaseTest, RandomMappingsMatchSequentialAcrossSeeds) {
  for (uint64_t seed : {1u, 2u, 3u, 4u, 5u}) {
    RandomMappingConfig config;
    config.seed = seed;
    config.num_tgds = 5;
    config.premise_atoms = 2;
    config.existential_vars = 2;
    TgdMapping mapping = GenerateRandomMapping(config);
    Instance source = GenerateInstance(*mapping.source, 10, 4, seed);
    const std::string sequential = ChaseWithThreads(mapping, source, 1);
    for (int threads : {2, 4, 8}) {
      EXPECT_EQ(ChaseWithThreads(mapping, source, threads), sequential)
          << "seed = " << seed << " threads = " << threads;
    }
  }
}

TEST(ParallelChaseTest, ObliviousChaseMatchesSequentialToo) {
  TgdMapping mapping = ChainJoinMapping(3);
  Instance source = GenerateInstance(*mapping.source, 10, 4, 23);
  const std::string sequential =
      ChaseWithThreads(mapping, source, 1, /*oblivious=*/true);
  EXPECT_EQ(ChaseWithThreads(mapping, source, 8, /*oblivious=*/true),
            sequential);
}

TEST(ParallelChaseTest, SOChaseMatchesSequential) {
  for (uint64_t seed : {1u, 7u, 19u}) {
    RandomSOMappingConfig config;
    config.seed = seed;
    config.num_rules = 4;
    SOTgdMapping mapping = GenerateRandomSOMapping(config);
    Instance source = GenerateInstance(*mapping.source, 12, 5, seed);
    auto chase = [&](int threads) {
      SymbolContext symbols;
      ExecutionOptions options;
      options.threads = threads;
      options.symbols = &symbols;
      return ChaseSOTgd(mapping, source, options).ValueOrDie().ToString();
    };
    const std::string sequential = chase(1);
    for (int threads : {2, 8}) {
      EXPECT_EQ(chase(threads), sequential)
          << "seed = " << seed << " threads = " << threads;
    }
  }
}

TEST(ParallelChaseTest, ReverseChaseWorldsMatchSequential) {
  TgdMapping mapping =
      ParseTgdMapping("R(x,y), S(y,z) -> T(x,z)").ValueOrDie();
  ReverseMapping reverse = CqMaximumRecovery(mapping).ValueOrDie();
  Instance target =
      ParseInstance("{ T(1,5), T(3,5) }", *reverse.source).ValueOrDie();
  auto worlds_text = [&](int threads) {
    SymbolContext symbols;
    ExecutionOptions options;
    options.threads = threads;
    options.symbols = &symbols;
    std::vector<Instance> worlds =
        ChaseReverseWorlds(reverse, target, options).ValueOrDie();
    std::string text;
    for (const Instance& world : worlds) text += world.ToString() + "\n";
    return text;
  };
  const std::string sequential = worlds_text(1);
  EXPECT_EQ(worlds_text(8), sequential);
}

// CollectTriggers must report premise homomorphisms in the exact order the
// sequential backtracking search enumerates them — the chase's firing order
// (and hence its null labelling) depends on it.
TEST(ParallelChaseTest, CollectTriggersPreservesForEachHomOrder) {
  TgdMapping mapping =
      ParseTgdMapping("R(x,y), S(y,z) -> T(x,z)").ValueOrDie();
  Instance source = GenerateInstance(*mapping.source, 30, 6, 99);
  const std::vector<Atom>& premise = mapping.tgds[0].premise;

  HomSearch search(source);
  HomConstraints constraints;
  std::vector<Assignment> sequential;
  ASSERT_TRUE(search
                  .ForEachHom(premise, constraints, {},
                              [&](const Assignment& hom) {
                                sequential.push_back(hom);
                                return true;
                              })
                  .ok());
  ASSERT_FALSE(sequential.empty());

  // The order must survive every execution shape: scalar and vectorized,
  // single- and multi-threaded, and batch sizes that straddle block
  // boundaries.
  for (int threads : {1, 4}) {
    for (size_t batch : {size_t{0}, size_t{1}, size_t{7}, size_t{1024}}) {
      ExecutionOptions options;
      options.threads = threads;
      options.vectorized = batch != 0;
      if (batch != 0) options.vector_batch = batch;
      ExecDeadline deadline(0);
      TriggerBatch collected =
          CollectTriggers(search, source, premise, constraints, options,
                          deadline)
              .ValueOrDie();
      ASSERT_EQ(collected.rows, sequential.size())
          << "threads = " << threads << " batch = " << batch;
      for (size_t i = 0; i < collected.rows; ++i) {
        EXPECT_EQ(collected.AssignmentAt(i), sequential[i])
            << "threads = " << threads << " batch = " << batch << " trigger "
            << i;
      }
    }
  }
}

// Plan compilation happens once, before the fan-out: repeated multi-threaded
// collections over the same premise reuse the cached remaining-atoms plan
// instead of compiling per worker (or per call).
TEST(ParallelChaseTest, CollectTriggersCompilesRemainingPlanOnce) {
  TgdMapping mapping =
      ParseTgdMapping("R(x,y), S(y,z) -> T(x,z)").ValueOrDie();
  Instance source = GenerateInstance(*mapping.source, 40, 6, 7);
  const std::vector<Atom>& premise = mapping.tgds[0].premise;

  HomSearch search(source);
  ExecStats stats;
  search.set_stats(&stats);
  ExecutionOptions options;
  options.threads = 4;
  ExecDeadline deadline(0);
  for (int round = 0; round < 3; ++round) {
    ASSERT_TRUE(CollectTriggers(search, source, premise, HomConstraints{},
                                options, deadline)
                    .ok());
  }
  // One remaining-atoms plan, compiled before the first fan-out and cached
  // across rounds and across worker threads.
  EXPECT_EQ(stats.hom_plans_compiled.load(), 1u);
}

TEST(ParallelChaseTest, CollectTriggersEmptyPremiseYieldsOneEmptyTrigger) {
  Instance instance{std::make_shared<Schema>(Schema{{"R", 2}})};
  HomSearch search(instance);
  ExecutionOptions options;
  ExecDeadline deadline(0);
  TriggerBatch collected =
      CollectTriggers(search, instance, {}, {}, options, deadline)
          .ValueOrDie();
  ASSERT_EQ(collected.rows, 1u);
  EXPECT_TRUE(collected.vars.empty());
  EXPECT_TRUE(collected.AssignmentAt(0).empty());
}

// ---------------------------------------------------------------------------
// EvalCache

TEST(EvalCacheTest, RepeatLookupHits) {
  EvalCache cache(8);
  EXPECT_FALSE(cache.GetBool("k").has_value());
  cache.PutBool("k", true);
  auto hit = cache.GetBool("k");
  ASSERT_TRUE(hit.has_value());
  EXPECT_TRUE(*hit);
  EvalCache::Stats stats = cache.GetStats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.entries, 1u);
}

TEST(EvalCacheTest, EvictsLeastRecentlyUsedUnderBound) {
  EvalCache cache(2);
  cache.PutBool("a", true);
  cache.PutBool("b", true);
  ASSERT_TRUE(cache.GetBool("a").has_value());  // "a" now most recent
  cache.PutBool("c", true);                     // evicts "b"
  EXPECT_TRUE(cache.GetBool("a").has_value());
  EXPECT_FALSE(cache.GetBool("b").has_value());
  EXPECT_TRUE(cache.GetBool("c").has_value());
  EvalCache::Stats stats = cache.GetStats();
  EXPECT_EQ(stats.entries, 2u);
  EXPECT_EQ(stats.evictions, 1u);
}

TEST(EvalCacheTest, CapacityZeroDisablesTheCache) {
  EvalCache cache(0);
  cache.PutBool("k", true);
  EXPECT_FALSE(cache.GetBool("k").has_value());
  EXPECT_EQ(cache.GetStats().entries, 0u);
}

TEST(EvalCacheTest, ClearDropsEntriesButKeepsStats) {
  EvalCache cache(8);
  cache.PutBool("k", false);
  ASSERT_TRUE(cache.GetBool("k").has_value());
  cache.Clear();
  EXPECT_FALSE(cache.GetBool("k").has_value());
  EvalCache::Stats stats = cache.GetStats();
  EXPECT_EQ(stats.entries, 0u);
  EXPECT_EQ(stats.hits, 1u);
}

TEST(EvalCacheTest, StoresInstancesBySharedPointer) {
  EvalCache cache(8);
  auto schema = std::make_shared<Schema>(Schema{{"R", 1}});
  auto instance = std::make_shared<Instance>(Instance{schema});
  ASSERT_TRUE(instance->AddInts("R", {1}).ok());
  cache.PutInstance("inst", instance);
  std::shared_ptr<const Instance> hit = cache.GetInstance("inst");
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit->ToString(), instance->ToString());
  EXPECT_EQ(cache.GetInstance("other"), nullptr);
}

// Alpha-equivalent containment queries share one cache entry: the key
// canonicalises variables by first occurrence, so renaming every variable
// still hits. (Keys embed spellings of constants and relations rather than
// interner ids, so interner state can never produce a stale hit.)
TEST(EvalCacheTest, ContainmentKeysCanonicaliseVariableNames) {
  ConjunctiveQuery q1 = ParseCq("Q(x) :- R(x,y), R(y,z)").ValueOrDie();
  ConjunctiveQuery q2 = ParseCq("Q(u) :- R(u,u)").ValueOrDie();
  // Same queries with every variable renamed.
  ConjunctiveQuery r1 = ParseCq("Q(a) :- R(a,b), R(b,c)").ValueOrDie();
  ConjunctiveQuery r2 = ParseCq("Q(w) :- R(w,w)").ValueOrDie();

  EvalCache& cache = GlobalEvalCache();
  cache.Clear();
  cache.ResetStats();
  bool first = CqContainedIn(q2, q1).ValueOrDie();
  EvalCache::Stats after_first = cache.GetStats();
  bool renamed = CqContainedIn(r2, r1).ValueOrDie();
  EvalCache::Stats after_second = cache.GetStats();

  EXPECT_EQ(first, renamed);
  EXPECT_GT(after_second.hits, after_first.hits)
      << "alpha-renamed containment query missed the cache";
}

TEST(EvalCacheTest, RepeatedInstanceCoreHitsTheCache) {
  auto schema = std::make_shared<Schema>(Schema{{"R", 2}});
  Instance instance{schema};
  ASSERT_TRUE(instance.AddInts("R", {1, 2}).ok());

  EvalCache& cache = GlobalEvalCache();
  cache.Clear();
  cache.ResetStats();
  Instance core1 = CoreOfInstance(instance).ValueOrDie();
  EvalCache::Stats after_first = cache.GetStats();
  Instance core2 = CoreOfInstance(instance).ValueOrDie();
  EvalCache::Stats after_second = cache.GetStats();

  EXPECT_EQ(core1.ToString(), core2.ToString());
  EXPECT_GT(after_second.hits, after_first.hits);
}

// ---------------------------------------------------------------------------
// ExecStats

TEST(ExecStatsTest, ChaseStreamsCounters) {
  TgdMapping mapping =
      ParseTgdMapping("R(x,y), S(y,z) -> T(x,z)").ValueOrDie();
  Instance source =
      ParseInstance("{ R(1,2), S(2,3), S(2,4) }", *mapping.source)
          .ValueOrDie();
  ExecStats stats;
  ExecutionOptions options;
  options.stats = &stats;
  Instance target = ChaseTgds(mapping, source, options).ValueOrDie();
  EXPECT_EQ(target.ToString(), "{ T(1,3), T(1,4) }");
  EXPECT_GT(stats.chase_steps.load(), 0u);
  EXPECT_GT(stats.hom_searches.load(), 0u);
  stats.Reset();
  EXPECT_EQ(stats.chase_steps.load(), 0u);
  EXPECT_EQ(stats.ToString().find("chase_steps=0"), 0u);
}

// ---------------------------------------------------------------------------
// Unified options

// ExecutionOptions is the single options type of the library: it inherits
// every limit knob from ResourceLimits and passes anywhere an operation
// takes options.
TEST(UnifiedOptionsTest, ExecutionOptionsCarriesEveryLimitKnob) {
  static_assert(std::is_base_of_v<ResourceLimits, ExecutionOptions>);

  ExecutionOptions options;
  options.max_new_facts = 10;
  options.oblivious = true;
  options.max_disjuncts = 5;
  options.minimize = false;
  options.max_rules = 3;
  options.max_frontier_width = 4;
  options.max_worlds = 2;
  EXPECT_EQ(options.max_new_facts, 10u);
  EXPECT_EQ(options.max_worlds, 2u);

  TgdMapping mapping = ParseTgdMapping("R(x,y) -> T(x,y)").ValueOrDie();
  Instance source =
      ParseInstance("{ R(1,2) }", *mapping.source).ValueOrDie();
  Instance target = ChaseTgds(mapping, source, options).ValueOrDie();
  EXPECT_EQ(target.ToString(), "{ T(1,2) }");
}

// ---------------------------------------------------------------------------
// Engine facade

TEST(EngineTest, ChaseMatchesFreeFunctionWithFreshContext) {
  TgdMapping mapping =
      ParseTgdMapping("R(x,y) -> EXISTS z . T(x,z), T(z,y)").ValueOrDie();
  Instance source =
      ParseInstance("{ R(1,2), R(3,4) }", *mapping.source).ValueOrDie();

  Engine engine({.threads = 4});
  Instance via_engine = engine.Chase(mapping, source).ValueOrDie();
  EXPECT_EQ(via_engine.ToString(), ChaseWithThreads(mapping, source, 1));
  EXPECT_GT(engine.stats().chase_steps.load(), 0u);
  engine.ResetStats();
  EXPECT_EQ(engine.stats().chase_steps.load(), 0u);
}

TEST(EngineTest, FullPipelineRuns) {
  TgdMapping mapping =
      ParseTgdMapping("R(x,y), S(y,z) -> T(x,z)").ValueOrDie();
  Instance source =
      ParseInstance("{ R(1,2), S(2,5) }", *mapping.source).ValueOrDie();

  Engine engine({.threads = 2});
  Instance target = engine.Chase(mapping, source).ValueOrDie();
  EXPECT_EQ(target.ToString(), "{ T(1,5) }");
  ReverseMapping recovery = engine.Invert(mapping).ValueOrDie();
  EXPECT_FALSE(recovery.deps.empty());
  std::vector<Instance> worlds =
      engine.RoundTrip(mapping, recovery, source).ValueOrDie();
  EXPECT_FALSE(worlds.empty());
  ConjunctiveQuery q = ParseCq("Q(x,y) :- R(x,z), S(z,y)").ValueOrDie();
  AnswerSet certain =
      engine.RoundTripCertain(mapping, recovery, source, q).ValueOrDie();
  EXPECT_NE(certain.ToString().find("(1,5)"), std::string::npos)
      << certain.ToString();
}

TEST(EngineTest, TwoEnginesProduceIdenticalOutput) {
  TgdMapping mapping = ChainJoinMapping(3);
  Instance source = GenerateInstance(*mapping.source, 8, 4, 5);
  auto run = [&]() {
    Engine engine({.threads = 2});
    return engine.Chase(mapping, source).ValueOrDie().ToString();
  };
  EXPECT_EQ(run(), run());
}

TEST(EngineTest, MakeOptionsWiresLimitsPoolAndSymbols) {
  EngineConfig config;
  config.threads = 3;
  config.limits.max_new_facts = 123;
  config.deadline_ms = 456;
  Engine engine(config);
  ExecutionOptions options = engine.MakeOptions();
  EXPECT_EQ(options.max_new_facts, 123u);
  EXPECT_EQ(options.deadline_ms, 456);
  EXPECT_EQ(options.threads, 3);
  EXPECT_NE(options.pool, nullptr);
  EXPECT_EQ(options.symbols, &engine.symbols());
  EXPECT_NE(options.stats, nullptr);
}

TEST(EngineTest, ResourceLimitFailurePropagates) {
  TgdMapping mapping = ParseTgdMapping("R(x,y) -> T(x,y)").ValueOrDie();
  Instance source =
      ParseInstance("{ R(1,2), R(3,4) }", *mapping.source).ValueOrDie();
  EngineConfig config;
  config.limits.max_new_facts = 1;
  Engine engine(config);
  Result<Instance> result = engine.Chase(mapping, source);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kResourceExhausted);
}

// Cache stats attribute to the engine whose operation performed the lookup,
// even when another engine is hammering the shared cache concurrently — the
// regression test for the old WithCacheStats global-counter diff, which
// credited any concurrent engine's cache traffic to whoever finished last.
TEST(EngineTest, ConcurrentEnginesReportDisjointCacheStats) {
  // Engine A: inversion with minimisation — containment checks go through
  // the global eval cache.
  TgdMapping invertible = ExponentialFamilyMapping(2, 3);
  // Engine B: plain chase — performs no cache lookups at all.
  TgdMapping chased = ParseTgdMapping("R(x,y) -> T(x,y)").ValueOrDie();
  Instance source =
      ParseInstance("{ R(1,2), R(3,4) }", *chased.source).ValueOrDie();

  Engine a({.threads = 1});
  Engine b({.threads = 1});
  std::atomic<bool> done{false};
  std::thread hammer([&] {
    for (int i = 0; i < 8; ++i) {
      ASSERT_TRUE(a.Invert(invertible).ok());
    }
    done.store(true, std::memory_order_release);
  });
  // Keep B chasing until A's inversions finish, so the two engines really
  // overlap (capped in case the hammer thread dies to an assertion).
  for (int i = 0; i < 1000000 && !done.load(std::memory_order_acquire); ++i) {
    ASSERT_TRUE(b.Chase(chased, source).ok());
  }
  hammer.join();

  // A's inversions really did touch the cache...
  EXPECT_GT(a.stats().cache_hits.load() + a.stats().cache_misses.load(), 0u);
  // ...and none of that traffic leaked into B's counters.
  EXPECT_EQ(b.stats().cache_hits.load(), 0u);
  EXPECT_EQ(b.stats().cache_misses.load(), 0u);
}

// A deadline carried into the inversion pipeline fails fast and names the
// phase that exhausted it.
TEST(EngineTest, InversionDeadlineNamesThePhase) {
  TgdMapping mapping = ExponentialFamilyMapping(3, 9);
  ExecutionOptions options;
  options.deadline_ms = 1;
  Result<ReverseMapping> result = CqMaximumRecovery(mapping, options);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kResourceExhausted);
  EXPECT_NE(result.status().ToString().find("phase '"), std::string::npos)
      << result.status().ToString();
}

// ---------------------------------------------------------------------------
// Trace spans

namespace {

// Names-and-counts render of a span tree, ignoring timings and stats.
void RenderShape(const TraceSpan& span, int depth, std::string* out) {
  out->append(static_cast<size_t>(depth) * 2, ' ');
  *out += span.name + " x" + std::to_string(span.count) + "\n";
  for (const auto& child : span.children) RenderShape(*child, depth + 1, out);
}

// Full pipeline (chase, invert, round trip) under one tracer.
std::string TracedPipelineShape(int threads) {
  TgdMapping mapping =
      ParseTgdMapping("R(x,y), S(y,z) -> T(x,z)").ValueOrDie();
  Instance source =
      ParseInstance("{ R(1,2), S(2,5) }", *mapping.source).ValueOrDie();
  Engine engine({.threads = threads});
  Tracer tracer;
  engine.set_tracer(&tracer);
  Instance target = engine.Chase(mapping, source).ValueOrDie();
  ReverseMapping recovery = engine.Invert(mapping).ValueOrDie();
  std::vector<Instance> worlds =
      engine.RoundTrip(mapping, recovery, source).ValueOrDie();
  EXPECT_FALSE(worlds.empty());
  std::string shape;
  for (const auto& child : tracer.root().children) {
    RenderShape(*child, 0, &shape);
  }
  EXPECT_FALSE(shape.empty());
  return shape;
}

}  // namespace

// The span tree's shape (phase names, nesting, entry counts) is a property
// of the algorithms, not of the thread count.
TEST(TraceTest, SpanTreeShapeIsStableAcrossThreadCounts) {
  const std::string sequential = TracedPipelineShape(1);
  EXPECT_EQ(TracedPipelineShape(4), sequential);
}

// Every counter bump happens inside some span, so the per-phase stats deltas
// of the top-level spans sum to the engine's ExecStats totals.
TEST(TraceTest, TopLevelSpanStatsSumToEngineTotals) {
  TgdMapping mapping =
      ParseTgdMapping("R(x,y), S(y,z) -> T(x,z)").ValueOrDie();
  Instance source =
      ParseInstance("{ R(1,2), S(2,3), S(2,4) }", *mapping.source)
          .ValueOrDie();
  Engine engine({.threads = 2});
  Tracer tracer;
  engine.set_tracer(&tracer);
  ASSERT_TRUE(engine.Chase(mapping, source).ok());
  ReverseMapping recovery = engine.Invert(mapping).ValueOrDie();
  ASSERT_TRUE(engine.RoundTrip(mapping, recovery, source).ok());

  ExecStatsSnapshot sum;
  for (const auto& child : tracer.root().children) {
    sum.chase_steps += child->stats.chase_steps;
    sum.hom_searches += child->stats.hom_searches;
    sum.hom_backtracks += child->stats.hom_backtracks;
    sum.cache_hits += child->stats.cache_hits;
    sum.cache_misses += child->stats.cache_misses;
    sum.hom_plans_compiled += child->stats.hom_plans_compiled;
    sum.hom_bucket_candidates += child->stats.hom_bucket_candidates;
    sum.hom_slot_bindings += child->stats.hom_slot_bindings;
    sum.vector_blocks_scanned += child->stats.vector_blocks_scanned;
    sum.vector_rows_scanned += child->stats.vector_rows_scanned;
    sum.vector_rows_selected += child->stats.vector_rows_selected;
    sum.bulk_rows_appended += child->stats.bulk_rows_appended;
  }
  const ExecStatsSnapshot total = engine.stats().Snapshot();
  EXPECT_EQ(sum.chase_steps, total.chase_steps);
  EXPECT_EQ(sum.hom_searches, total.hom_searches);
  EXPECT_EQ(sum.hom_backtracks, total.hom_backtracks);
  EXPECT_EQ(sum.cache_hits, total.cache_hits);
  EXPECT_EQ(sum.cache_misses, total.cache_misses);
  EXPECT_EQ(sum.hom_plans_compiled, total.hom_plans_compiled);
  EXPECT_EQ(sum.hom_bucket_candidates, total.hom_bucket_candidates);
  EXPECT_EQ(sum.hom_slot_bindings, total.hom_slot_bindings);
  EXPECT_EQ(sum.vector_blocks_scanned, total.vector_blocks_scanned);
  EXPECT_EQ(sum.vector_rows_scanned, total.vector_rows_scanned);
  EXPECT_EQ(sum.vector_rows_selected, total.vector_rows_selected);
  EXPECT_EQ(sum.bulk_rows_appended, total.bulk_rows_appended);
  // The default chase is vectorized, so the new counters actually moved.
  EXPECT_GT(total.vector_blocks_scanned, 0u);
  EXPECT_GT(total.vector_rows_scanned, 0u);
}

// ToJson emits one syntactically well-formed JSON object line (balanced
// braces/brackets, no trailing commas before closers).
TEST(TraceTest, ToJsonIsBalancedAndQuotesPhaseNames) {
  TgdMapping mapping = ParseTgdMapping("R(x,y) -> T(x,y)").ValueOrDie();
  Instance source =
      ParseInstance("{ R(1,2) }", *mapping.source).ValueOrDie();
  ExecutionOptions options;
  Tracer tracer;
  options.trace = &tracer;
  ASSERT_TRUE(ChaseTgds(mapping, source, options).ok());
  const std::string json = tracer.ToJson();
  int braces = 0, brackets = 0;
  for (size_t i = 0; i < json.size(); ++i) {
    const char c = json[i];
    if (c == '{') ++braces;
    if (c == '}') --braces;
    if (c == '[') ++brackets;
    if (c == ']') --brackets;
    if (c == ',') {
      ASSERT_LT(i + 1, json.size());
      EXPECT_NE(json[i + 1], '}');
      EXPECT_NE(json[i + 1], ']');
    }
    ASSERT_GE(braces, 0);
    ASSERT_GE(brackets, 0);
  }
  EXPECT_EQ(braces, 0);
  EXPECT_EQ(brackets, 0);
  EXPECT_NE(json.find("\"name\":\"chase_tgds\""), std::string::npos) << json;
}

}  // namespace
}  // namespace mapinv
