// Tests for the serving layer: wire framing (serve/protocol.h), sessions
// (serve/session.h) and the daemon (serve/server.h).
//
// The load-bearing properties:
//   * framing violations (zero/oversized/truncated frames) are rejected and
//     close the connection; a non-JSON payload inside an intact frame is an
//     application error and the connection survives;
//   * concurrent sessions are isolated — interleaved traffic on four
//     connections never leaks one session's data into another's responses;
//   * a client that disconnects mid-request gets its work cancelled
//     (observable as ServerMetrics::disconnect_cancels);
//   * the server and ExecuteRequest produce byte-identical response
//     documents for the same request (the CLI/server parity contract);
//   * under random failpoint injection, retried-to-success sessions end in
//     exactly the state a clean run produces (differential equality).

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <pthread.h>
#include <signal.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "base/json.h"
#include "engine/failpoint.h"
#include "engine/request.h"
#include "serve/protocol.h"
#include "serve/server.h"
#include "serve/session.h"

#include "gtest/gtest.h"

namespace mapinv {
namespace {

// --- helpers ---------------------------------------------------------------

std::unique_ptr<Server> StartTcpServer(ServerConfig config = {}) {
  config.tcp_port = 0;  // ephemeral
  auto server = std::make_unique<Server>(std::move(config));
  Status started = server->Start();
  EXPECT_TRUE(started.ok()) << started.ToString();
  return server;
}

int ConnectTcp(int port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  EXPECT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);
  return fd;
}

// One request/response exchange; the raw response payload bytes.
Result<std::string> Call(int fd, std::string_view payload) {
  MAPINV_RETURN_NOT_OK(WriteFrame(fd, payload));
  std::string out;
  MAPINV_ASSIGN_OR_RETURN(bool got,
                          ReadFrame(fd, kDefaultMaxFrameBytes, &out));
  if (!got) return Status::Internal("unexpected EOF");
  return out;
}

Json CallJson(int fd, const Json& request) {
  Result<std::string> raw = Call(fd, request.Serialize());
  EXPECT_TRUE(raw.ok()) << raw.status().ToString();
  if (!raw.ok()) return Json();
  Result<Json> parsed = Json::Parse(*raw);
  EXPECT_TRUE(parsed.ok()) << parsed.status().ToString();
  return parsed.ok() ? *parsed : Json();
}

Json MakeRequest(std::string command, std::string session = "") {
  Json json = Json::MakeObject();
  json.Set("id", Json(1));
  json.Set("command", Json(std::move(command)));
  if (!session.empty()) json.Set("session", Json(std::move(session)));
  return json;
}

// --- framing ---------------------------------------------------------------

TEST(ProtocolTest, FramesRoundTripOverSocketpair) {
  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  const std::string payloads[] = {"x", std::string("hello world"),
                                  std::string(100000, 'q')};
  for (const std::string& payload : payloads) {
    ASSERT_TRUE(WriteFrame(fds[0], payload).ok());
  }
  std::string read;
  for (const std::string& payload : payloads) {
    Result<bool> got = ReadFrame(fds[1], kDefaultMaxFrameBytes, &read);
    ASSERT_TRUE(got.ok()) << got.status().ToString();
    EXPECT_TRUE(*got);
    EXPECT_EQ(read, payload);
  }
  // Closing the writer is a clean EOF at the frame boundary.
  ::close(fds[0]);
  Result<bool> eof = ReadFrame(fds[1], kDefaultMaxFrameBytes, &read);
  ASSERT_TRUE(eof.ok());
  EXPECT_FALSE(*eof);
  ::close(fds[1]);
}

TEST(ProtocolTest, RejectsZeroLengthFrame) {
  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  const unsigned char header[4] = {0, 0, 0, 0};
  ASSERT_EQ(::send(fds[0], header, 4, 0), 4);
  std::string read;
  Result<bool> got = ReadFrame(fds[1], kDefaultMaxFrameBytes, &read);
  EXPECT_EQ(got.status().code(), StatusCode::kMalformed);
  ::close(fds[0]);
  ::close(fds[1]);
}

TEST(ProtocolTest, RejectsOversizedDeclaredLength) {
  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  // Declares 1 MiB against a 1 KiB limit.
  const unsigned char header[4] = {0x00, 0x10, 0x00, 0x00};
  ASSERT_EQ(::send(fds[0], header, 4, 0), 4);
  std::string read;
  Result<bool> got = ReadFrame(fds[1], 1024, &read);
  EXPECT_EQ(got.status().code(), StatusCode::kMalformed);
  ::close(fds[0]);
  ::close(fds[1]);
}

TEST(ProtocolTest, RejectsTruncatedFrame) {
  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  const unsigned char header[4] = {0, 0, 0, 10};
  ASSERT_EQ(::send(fds[0], header, 4, 0), 4);
  ASSERT_EQ(::send(fds[0], "abc", 3, 0), 3);
  ::close(fds[0]);  // EOF mid-frame
  std::string read;
  Result<bool> got = ReadFrame(fds[1], kDefaultMaxFrameBytes, &read);
  EXPECT_EQ(got.status().code(), StatusCode::kMalformed);
  ::close(fds[1]);
}

TEST(ProtocolTest, ReportsHeaderTruncatedMidFourBytes) {
  // EOF two bytes into the length prefix must be a clean truncated-header
  // error — the partial bytes must never be interpreted as a frame length.
  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  const unsigned char header[2] = {0x00, 0x01};
  ASSERT_EQ(::send(fds[0], header, 2, 0), 2);
  ::close(fds[0]);
  std::string read;
  Result<bool> got = ReadFrame(fds[1], kDefaultMaxFrameBytes, &read);
  EXPECT_EQ(got.status().code(), StatusCode::kMalformed);
  EXPECT_NE(got.status().ToString().find("truncated frame header"),
            std::string::npos)
      << got.status().ToString();
  ::close(fds[1]);
}

TEST(ProtocolTest, ReadFrameRetriesAcrossEintr) {
  // A signal delivered to a thread blocked in recv (handler installed
  // without SA_RESTART, so recv really returns EINTR) must not abort the
  // read: ReadFrame retries and delivers the complete frame.
  struct sigaction action = {};
  action.sa_handler = [](int) {};
  sigemptyset(&action.sa_mask);
  action.sa_flags = 0;  // no SA_RESTART: recv fails with EINTR
  struct sigaction previous = {};
  ASSERT_EQ(::sigaction(SIGUSR1, &action, &previous), 0);

  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  std::atomic<bool> reading{false};
  std::string read;
  Result<bool> got = false;
  std::thread reader([&] {
    reading.store(true);
    got = ReadFrame(fds[1], kDefaultMaxFrameBytes, &read);
  });
  while (!reading.load()) std::this_thread::yield();

  // Interrupt the blocked recv a few times, completing the frame in stages
  // so every stage gets its own EINTR: header, then payload.
  const std::string payload = "interrupted but intact";
  const auto poke = [&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    ::pthread_kill(reader.native_handle(), SIGUSR1);
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  };
  poke();
  const uint32_t length = static_cast<uint32_t>(payload.size());
  const unsigned char header[4] = {0, 0, static_cast<unsigned char>(length >> 8),
                                   static_cast<unsigned char>(length)};
  ASSERT_EQ(::send(fds[0], header, 4, 0), 4);
  poke();
  ASSERT_EQ(::send(fds[0], payload.data(), payload.size(), 0),
            static_cast<ssize_t>(payload.size()));
  reader.join();
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  EXPECT_TRUE(*got);
  EXPECT_EQ(read, payload);
  ::close(fds[0]);
  ::close(fds[1]);
  ASSERT_EQ(::sigaction(SIGUSR1, &previous, nullptr), 0);
}

TEST(ProtocolTest, WriteRefusesPayloadAboveLimit) {
  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  EXPECT_EQ(WriteFrame(fds[0], std::string(2048, 'x'), 1024).code(),
            StatusCode::kInvalidArgument);
  ::close(fds[0]);
  ::close(fds[1]);
}

// --- server: sessions and dispatch -----------------------------------------

TEST(ServerTest, SessionLifecycle) {
  auto server = StartTcpServer();
  const int fd = ConnectTcp(server->tcp_port());

  Json open = MakeRequest("session.open", "tenant");
  open.Set("mapping", Json("R(x,y) -> T(x,y)"));
  EXPECT_EQ(CallJson(fd, open).GetString("status"), "ok");

  Json put = MakeRequest("instance.put", "tenant");
  put.Set("name", Json("db"));
  put.Set("instance", Json("{ R(1,2) }"));
  EXPECT_EQ(CallJson(fd, put).GetString("status"), "ok");

  Json exchange = MakeRequest("exchange", "tenant");
  exchange.Set("instance_ref", Json("db"));
  Json response = CallJson(fd, exchange);
  EXPECT_EQ(response.GetString("status"), "ok");
  EXPECT_EQ(response.GetString("kind"), "instance");
  EXPECT_EQ(response.GetString("result"), "{ T(1,2) }\n");

  Json list = CallJson(fd, MakeRequest("session.list"));
  EXPECT_EQ(list.GetString("result"), "[\"tenant\"]");

  // Duplicate opens and unknown sessions are clean errors.
  EXPECT_EQ(CallJson(fd, open).GetString("status"), "error");
  Json ghost = MakeRequest("exchange", "nobody");
  ghost.Set("instance_ref", Json("db"));
  EXPECT_EQ(CallJson(fd, ghost).GetString("code"), "not-found");
  Json noref = MakeRequest("exchange", "tenant");
  noref.Set("instance_ref", Json("missing"));
  EXPECT_EQ(CallJson(fd, noref).GetString("code"), "not-found");

  EXPECT_EQ(CallJson(fd, MakeRequest("session.close", "tenant"))
                .GetString("status"),
            "ok");
  EXPECT_EQ(CallJson(fd, MakeRequest("session.close", "tenant"))
                .GetString("code"),
            "not-found");
  ::close(fd);
}

TEST(ServerTest, InvertIsMemoizedPerSession) {
  auto server = StartTcpServer();
  const int fd = ConnectTcp(server->tcp_port());
  Json open = MakeRequest("session.open", "memo");
  open.Set("mapping", Json("R(x,y) -> T(x,y)"));
  EXPECT_EQ(CallJson(fd, open).GetString("status"), "ok");

  Json invert = MakeRequest("invert", "memo");
  const std::string first = CallJson(fd, invert).GetString("result");
  EXPECT_FALSE(first.empty());
  EXPECT_EQ(CallJson(fd, invert).GetString("result"), first);

  auto session = server->sessions().Get("memo");
  ASSERT_TRUE(session.ok());
  EXPECT_EQ((*session)->MetricsSnapshot().inverse_cache_hits, 1u);
  ::close(fd);
}

TEST(ServerTest, IncrementalMaintenanceOverSession) {
  // instance.append + exchange-delta keep a per-session maintained target in
  // step with its registered source. A copy mapping has no existentials, so
  // every rendering is byte-comparable.
  auto server = StartTcpServer();
  const int fd = ConnectTcp(server->tcp_port());
  Json open = MakeRequest("session.open", "inc");
  open.Set("mapping", Json("R(x,y) -> T(x,y)"));
  EXPECT_EQ(CallJson(fd, open).GetString("status"), "ok");
  Json put = MakeRequest("instance.put", "inc");
  put.Set("name", Json("db"));
  put.Set("instance", Json("{ R(1,2) }"));
  EXPECT_EQ(CallJson(fd, put).GetString("status"), "ok");

  // First exchange-delta materialises the maintained target (full chase).
  Json delta0 = MakeRequest("exchange-delta", "inc");
  delta0.Set("instance_ref", Json("db"));
  Json first = CallJson(fd, delta0);
  EXPECT_EQ(first.GetString("status"), "ok");
  EXPECT_EQ(first.GetString("kind"), "instance");
  EXPECT_EQ(first.GetString("result"), "{ T(1,2) }\n");

  // instance.append absorbs new rows and returns the refreshed target.
  Json append = MakeRequest("instance.append", "inc");
  append.Set("name", Json("db"));
  append.Set("delta", Json("{ R(3,4) }"));
  Json appended = CallJson(fd, append);
  EXPECT_EQ(appended.GetString("status"), "ok");
  EXPECT_EQ(appended.GetString("result"), "{ T(1,2), T(3,4) }\n");

  // exchange-delta may carry its own delta rows.
  Json delta1 = MakeRequest("exchange-delta", "inc");
  delta1.Set("instance_ref", Json("db"));
  delta1.Set("delta", Json("{ R(5,6) }"));
  EXPECT_EQ(CallJson(fd, delta1).GetString("result"),
            "{ T(1,2), T(3,4), T(5,6) }\n");

  // The registered source grew along with the maintained one: a plain full
  // exchange over the same ref sees every appended row.
  Json exchange = MakeRequest("exchange", "inc");
  exchange.Set("instance_ref", Json("db"));
  EXPECT_EQ(CallJson(fd, exchange).GetString("result"),
            "{ T(1,2), T(3,4), T(5,6) }\n");

  // instance.put replaces rows wholesale, so the maintained state resets.
  put.Set("instance", Json("{ R(9,9) }"));
  EXPECT_EQ(CallJson(fd, put).GetString("status"), "ok");
  EXPECT_EQ(CallJson(fd, delta0).GetString("result"), "{ T(9,9) }\n");

  // Appends need rows and a registered name.
  Json empty = MakeRequest("instance.append", "inc");
  empty.Set("name", Json("db"));
  EXPECT_EQ(CallJson(fd, empty).GetString("status"), "error");
  Json ghost = MakeRequest("instance.append", "inc");
  ghost.Set("name", Json("missing"));
  ghost.Set("delta", Json("{ R(1,1) }"));
  EXPECT_EQ(CallJson(fd, ghost).GetString("status"), "error");
  ::close(fd);
}

TEST(ServerTest, SessionlessExchangeDeltaRunsRequestLocal) {
  auto server = StartTcpServer();
  const int fd = ConnectTcp(server->tcp_port());
  Json request = MakeRequest("exchange-delta");
  request.Set("mapping", Json("R(x,y) -> T(x,y)"));
  request.Set("instance", Json("{ R(1,2) }"));
  request.Set("delta", Json("{ R(3,4) }"));
  Json response = CallJson(fd, request);
  EXPECT_EQ(response.GetString("status"), "ok");
  EXPECT_EQ(response.GetString("result"), "{ T(1,2), T(3,4) }\n");
  ::close(fd);
}

TEST(ServerTest, BackgroundJobSurvivesDisconnect) {
  auto server = StartTcpServer();
  int fd = ConnectTcp(server->tcp_port());
  Json start = MakeRequest("job.start");
  start.Set("name", Json("j1"));
  start.Set("run", Json("roundtrip"));
  start.Set("mapping", Json("S1(x) -> T(x)\nS2(x) -> T(x)"));
  start.Set("instance", Json("{ S1(1), S2(2) }"));
  EXPECT_EQ(CallJson(fd, start).GetString("status"), "ok");
  // The job runs on its own thread with its own cancel token — the
  // starting connection going away must not cancel it.
  ::close(fd);

  const int fd2 = ConnectTcp(server->tcp_port());
  Json status_req = MakeRequest("job.status");
  status_req.Set("name", Json("j1"));
  std::string doc;
  for (int i = 0; i < 500; ++i) {
    Json status = CallJson(fd2, status_req);
    ASSERT_EQ(status.GetString("status"), "ok");
    doc = status.GetString("result");
    if (doc.find("\"state\":\"running\"") == std::string::npos) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_NE(doc.find("\"state\":\"done\""), std::string::npos) << doc;
  EXPECT_NE(doc.find("recovered:"), std::string::npos) << doc;

  // A finished job's name is reclaimed by the next start; unknown names
  // and a missing run command are clean errors.
  EXPECT_EQ(CallJson(fd2, start).GetString("status"), "ok");
  Json ghost = MakeRequest("job.status");
  ghost.Set("name", Json("nobody"));
  EXPECT_EQ(CallJson(fd2, ghost).GetString("code"), "not-found");
  Json norun = MakeRequest("job.start");
  norun.Set("name", Json("j2"));
  EXPECT_EQ(CallJson(fd2, norun).GetString("code"), "invalid-argument");
  ::close(fd2);
}

TEST(ServerTest, JobCancelStopsARunningJob) {
  auto server = StartTcpServer();
  const int fd = ConnectTcp(server->tcp_port());
  Json start = MakeRequest("job.start");
  start.Set("name", Json("slow"));
  start.Set("run", Json("invert"));
  start.Set("mapping", Json("gen:exp:3,9"));
  EXPECT_EQ(CallJson(fd, start).GetString("status"), "ok");
  Json cancel = MakeRequest("job.cancel");
  cancel.Set("name", Json("slow"));
  EXPECT_EQ(CallJson(fd, cancel).GetString("status"), "ok");
  Json status_req = MakeRequest("job.status");
  status_req.Set("name", Json("slow"));
  std::string doc;
  for (int i = 0; i < 500; ++i) {
    doc = CallJson(fd, status_req).GetString("result");
    if (doc.find("\"state\":\"running\"") == std::string::npos &&
        doc.find("\"state\":\"cancelling\"") == std::string::npos) {
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  // Cancellation may race completion on a fast machine; either terminal
  // state is fine, hanging forever is not.
  EXPECT_TRUE(doc.find("\"state\":\"cancelled\"") != std::string::npos ||
              doc.find("\"state\":\"done\"") != std::string::npos)
      << doc;
  ::close(fd);
}

TEST(SessionTest, EvictIdleDropsOnlyStaleSessions) {
  SessionManager manager;
  ASSERT_TRUE(manager.Open("stale").ok());
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  ASSERT_TRUE(manager.Open("fresh").ok());
  // Only the session idle for longer than the TTL goes.
  EXPECT_EQ(manager.EvictIdle(/*ttl_ms=*/20), 1u);
  EXPECT_FALSE(manager.Get("stale").ok());
  ASSERT_TRUE(manager.Get("fresh").ok());
  // Get touches: after a touch the survivor is fresh again.
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  ASSERT_TRUE(manager.Get("fresh").ok());
  EXPECT_EQ(manager.EvictIdle(/*ttl_ms=*/20), 0u);
  // A very long TTL evicts nothing; TTL 0 is "everything idle is stale".
  EXPECT_EQ(manager.Names().size(), 1u);
}

TEST(ServerTest, BadJsonKeepsConnectionMalformedFrameCloses) {
  auto server = StartTcpServer();
  const int fd = ConnectTcp(server->tcp_port());

  // Intact frame, non-JSON payload: error response, connection survives.
  Result<std::string> raw = Call(fd, "this is not json");
  ASSERT_TRUE(raw.ok());
  Json error = Json::Parse(*raw).ValueOrDie();
  EXPECT_EQ(error.GetString("status"), "error");
  EXPECT_EQ(error.GetString("code"), "malformed");
  EXPECT_EQ(CallJson(fd, MakeRequest("ping")).GetString("result"), "pong");

  // Zero-length frame: refusal response, then the server closes.
  const unsigned char header[4] = {0, 0, 0, 0};
  ASSERT_EQ(::send(fd, header, 4, 0), 4);
  std::string payload;
  Result<bool> refusal = ReadFrame(fd, kDefaultMaxFrameBytes, &payload);
  ASSERT_TRUE(refusal.ok());
  ASSERT_TRUE(*refusal);
  EXPECT_EQ(Json::Parse(payload).ValueOrDie().GetString("code"), "malformed");
  Result<bool> eof = ReadFrame(fd, kDefaultMaxFrameBytes, &payload);
  ASSERT_TRUE(eof.ok());
  EXPECT_FALSE(*eof);
  EXPECT_EQ(server->metrics().malformed_frames.load(), 1u);
  ::close(fd);
}

TEST(ServerTest, ServerStopDrainsAndUnknownVerbErrors) {
  auto server = StartTcpServer();
  const int fd = ConnectTcp(server->tcp_port());
  EXPECT_EQ(CallJson(fd, MakeRequest("no.such.verb")).GetString("status"),
            "error");
  EXPECT_EQ(CallJson(fd, MakeRequest("server.stop")).GetString("result"),
            "stopping");
  ::close(fd);
  server->Wait();  // returns because server.stop drained the server

  ServerConfig no_stop;
  no_stop.allow_stop = false;
  auto fortified = StartTcpServer(std::move(no_stop));
  const int fd2 = ConnectTcp(fortified->tcp_port());
  EXPECT_EQ(CallJson(fd2, MakeRequest("server.stop")).GetString("status"),
            "error");
  ::close(fd2);
}

// --- concurrency and isolation ----------------------------------------------

TEST(ServerTest, ConcurrentSessionsStayIsolated) {
  auto server = StartTcpServer();
  constexpr int kSessions = 4;
  constexpr int kRounds = 25;
  std::atomic<int> failures{0};
  std::vector<std::thread> clients;
  clients.reserve(kSessions);
  for (int i = 0; i < kSessions; ++i) {
    clients.emplace_back([&server, &failures, i] {
      const int fd = ConnectTcp(server->tcp_port());
      const std::string session = "tenant-" + std::to_string(i);
      Json open = MakeRequest("session.open", session);
      open.Set("mapping", Json("R(x,y) -> T(x,y)"));
      if (CallJson(fd, open).GetString("status") != "ok") ++failures;
      Json put = MakeRequest("instance.put", session);
      put.Set("name", Json("db"));
      const std::string fact =
          "R(" + std::to_string(i) + "," + std::to_string(i + 100) + ")";
      put.Set("instance", Json("{ " + fact + " }"));
      if (CallJson(fd, put).GetString("status") != "ok") ++failures;
      const std::string expected = "{ T(" + std::to_string(i) + "," +
                                   std::to_string(i + 100) + ") }\n";
      Json exchange = MakeRequest("exchange", session);
      exchange.Set("instance_ref", Json("db"));
      for (int round = 0; round < kRounds; ++round) {
        // A session must only ever see its own data, no matter what the
        // other three connections are doing.
        if (CallJson(fd, exchange).GetString("result") != expected) {
          ++failures;
        }
      }
      ::close(fd);
    });
  }
  for (std::thread& client : clients) client.join();
  EXPECT_EQ(failures.load(), 0);
}

TEST(ServerTest, DisconnectCancelsInFlightRequest) {
  auto server = StartTcpServer();
  const int fd = ConnectTcp(server->tcp_port());
  // gen:exp:3,9 inversion is effectively unbounded — it only ends because
  // the watchdog cancels it when the client vanishes.
  Json open = MakeRequest("session.open", "doomed");
  open.Set("mapping", Json("gen:exp:3,9"));
  EXPECT_EQ(CallJson(fd, open).GetString("status"), "ok");
  ASSERT_TRUE(WriteFrame(fd, MakeRequest("invert", "doomed").Serialize()).ok());
  ::close(fd);  // vanish mid-request

  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while (server->metrics().disconnect_cancels.load() == 0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_GE(server->metrics().disconnect_cancels.load(), 1u);

  // The server is still healthy for other clients.
  const int fd2 = ConnectTcp(server->tcp_port());
  EXPECT_EQ(CallJson(fd2, MakeRequest("ping")).GetString("result"), "pong");
  ::close(fd2);
}

// --- CLI/server parity ------------------------------------------------------

TEST(ServerTest, ResponseBytesMatchExecuteRequest) {
  // The parity contract: for the same request document, the server's frame
  // payload is byte-identical to ResponseToJson(ExecuteRequest(...)) — which
  // is also exactly what `mapinv_cli --response-json` prints.
  EngineRequest invert;
  invert.id = 7;
  invert.command = "invert";
  invert.mapping = "R(x,y), S(y,z) -> T(x,z)";
  EngineRequest exchange;
  exchange.id = 8;
  exchange.command = "exchange";
  exchange.mapping = "R(x,y) -> EXISTS z . T(x,z)";
  exchange.instance = "{ R(1,2), R(3,4) }";
  exchange.options.max_facts = 1000;

  for (const EngineRequest* request : {&invert, &exchange}) {
    const std::string local =
        ResponseToJson(ExecuteRequest(*request, ExecutionOptions()))
            .Serialize();
    auto server = StartTcpServer();  // fresh server: no cache history
    const int fd = ConnectTcp(server->tcp_port());
    Result<std::string> remote =
        Call(fd, EngineRequestToJson(*request).Serialize());
    ASSERT_TRUE(remote.ok());
    EXPECT_EQ(*remote, local) << "command " << request->command;
    ::close(fd);
  }
}

// --- failpoint chaos --------------------------------------------------------

// Four concurrent sessions run their workload under random failpoint
// injection at every site; each request retries until it succeeds. After
// disarming, every session's final responses must be byte-equal (status,
// kind, result) to a clean run's — injected faults may delay work but can
// never corrupt a session or leak across sessions.
TEST(ServerChaosTest, RandomInjectionPreservesSessionStateDifferentially) {
  constexpr int kSessions = 4;

  // Clean-run expectations, computed through the same engine entry point.
  std::vector<std::string> expected_exchange(kSessions);
  std::vector<std::string> expected_invert(kSessions);
  for (int i = 0; i < kSessions; ++i) {
    EngineRequest request;
    request.command = "exchange";
    request.mapping = "R(x,y) -> T(x,y)\nR(x,y) -> S(y)";
    request.instance = "{ R(" + std::to_string(i) + "," +
                       std::to_string(i + 10) + ") }";
    EngineResponse clean = ExecuteRequest(request, ExecutionOptions());
    ASSERT_TRUE(clean.status.ok());
    expected_exchange[i] = clean.result;
    EngineRequest invert;
    invert.command = "invert";
    invert.mapping = request.mapping;
    EngineResponse clean_invert = ExecuteRequest(invert, ExecutionOptions());
    ASSERT_TRUE(clean_invert.status.ok());
    expected_invert[i] = clean_invert.result;
  }

  auto server = StartTcpServer();

  // Arm every site with a low random failure rate, seeded per site for
  // reproducibility.
  FailPointRegistry& registry = FailPointRegistry::Global();
  uint64_t seed = 0x9e3779b97f4a7c15ull;
  for (const std::string& site : registry.SiteNames()) {
    FailPointSpec spec;
    spec.mode = FailPointSpec::Mode::kRandom;
    spec.rate = 0.02;
    spec.seed = seed++;
    ASSERT_TRUE(registry.Activate(site, spec).ok());
  }

  std::atomic<int> failures{0};
  std::vector<std::thread> clients;
  clients.reserve(kSessions);
  for (int i = 0; i < kSessions; ++i) {
    clients.emplace_back([&server, &failures, &expected_exchange, i] {
      const int fd = ConnectTcp(server->tcp_port());
      const std::string session = "chaos-" + std::to_string(i);
      auto retry_until_ok = [&](const Json& request) -> Json {
        for (int attempt = 0; attempt < 300; ++attempt) {
          Json response = CallJson(fd, request);
          if (response.GetString("status") == "ok") return response;
        }
        ++failures;
        return Json();
      };
      Json open = MakeRequest("session.open", session);
      open.Set("mapping", Json("R(x,y) -> T(x,y)\nR(x,y) -> S(y)"));
      retry_until_ok(open);
      Json put = MakeRequest("instance.put", session);
      put.Set("name", Json("db"));
      put.Set("instance", Json("{ R(" + std::to_string(i) + "," +
                               std::to_string(i + 10) + ") }"));
      retry_until_ok(put);
      Json exchange = MakeRequest("exchange", session);
      exchange.Set("instance_ref", Json("db"));
      for (int round = 0; round < 10; ++round) {
        Json response = retry_until_ok(exchange);
        if (response.GetString("result") != expected_exchange[i]) ++failures;
        retry_until_ok(MakeRequest("invert", session));
      }
      ::close(fd);
    });
  }
  for (std::thread& client : clients) client.join();
  registry.DeactivateAll();
  EXPECT_EQ(failures.load(), 0);

  // Quiesced differential check: every session answers exactly as a clean
  // engine does — injected faults never became corrupted session state.
  const int fd = ConnectTcp(server->tcp_port());
  for (int i = 0; i < kSessions; ++i) {
    const std::string session = "chaos-" + std::to_string(i);
    Json exchange = MakeRequest("exchange", session);
    exchange.Set("instance_ref", Json("db"));
    Json response = CallJson(fd, exchange);
    EXPECT_EQ(response.GetString("status"), "ok");
    EXPECT_EQ(response.GetString("result"), expected_exchange[i]) << session;
    Json invert = CallJson(fd, MakeRequest("invert", session));
    EXPECT_EQ(invert.GetString("status"), "ok");
    EXPECT_EQ(invert.GetString("result"), expected_invert[i]) << session;
  }
  ::close(fd);
}

}  // namespace
}  // namespace mapinv
