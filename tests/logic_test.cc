// Unit tests for the logic layer: terms, atoms, queries, dependencies,
// substitution and unification, SO-tgds.

#include <gtest/gtest.h>

#include "logic/cq.h"
#include "logic/dependency.h"
#include "logic/mapping.h"
#include "logic/so_tgd.h"
#include "logic/substitution.h"
#include "logic/term.h"

namespace mapinv {
namespace {

TEST(TermTest, KindsAndAccessors) {
  Term v = Term::Var("x");
  Term c = Term::Const(Value::Int(3));
  Term f = Term::Fn("f", {Term::Var("x"), Term::Var("y")});
  EXPECT_TRUE(v.is_variable());
  EXPECT_TRUE(c.is_constant());
  EXPECT_TRUE(f.is_function());
  EXPECT_EQ(f.args().size(), 2u);
  EXPECT_EQ(v.ToString(), "x");
  EXPECT_EQ(c.ToString(), "3");
  EXPECT_EQ(f.ToString(), "f(x,y)");
}

TEST(TermTest, PlainnessPerPaperDefinition) {
  EXPECT_TRUE(Term::Var("x").IsPlain());
  EXPECT_FALSE(Term::Const(Value::Int(1)).IsPlain());
  EXPECT_TRUE(Term::Fn("f", {Term::Var("x")}).IsPlain());
  // Nested applications (possible after composition) are not plain.
  Term nested = Term::Fn("g", {Term::Fn("f", {Term::Var("x")})});
  EXPECT_FALSE(nested.IsPlain());
  EXPECT_EQ(nested.Depth(), 2u);
}

TEST(TermTest, EqualityAndHash) {
  Term a = Term::Fn("f", {Term::Var("x")});
  Term b = Term::Fn("f", {Term::Var("x")});
  Term c = Term::Fn("f", {Term::Var("y")});
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  EXPECT_EQ(a.Hash(), b.Hash());
}

TEST(TermTest, CollectVarsAndMentions) {
  Term t = Term::Fn("g", {Term::Var("x"), Term::Var("y")});
  std::vector<VarId> vars;
  t.CollectVars(&vars);
  EXPECT_EQ(vars.size(), 2u);
  EXPECT_TRUE(t.Mentions(InternVar("x")));
  EXPECT_FALSE(t.Mentions(InternVar("zz_unused")));
}

TEST(AtomTest, ValidationAgainstSchema) {
  Schema s{{"R", 2}};
  Atom good = Atom::Vars("R", {"x", "y"});
  EXPECT_TRUE(good.Validate(s).ok());
  Atom wrong_arity = Atom::Vars("R", {"x"});
  EXPECT_EQ(wrong_arity.Validate(s).code(), StatusCode::kMalformed);
  Atom unknown = Atom::Vars("Z", {"x"});
  EXPECT_EQ(unknown.Validate(s).code(), StatusCode::kNotFound);
}

TEST(AtomTest, CollectDistinctVarsPreservesFirstOccurrenceOrder) {
  std::vector<Atom> atoms = {Atom::Vars("R", {"x", "y"}),
                             Atom::Vars("S", {"y", "z"})};
  std::vector<VarId> vars = CollectDistinctVars(atoms);
  ASSERT_EQ(vars.size(), 3u);
  EXPECT_EQ(VarName(vars[0]), "x");
  EXPECT_EQ(VarName(vars[1]), "y");
  EXPECT_EQ(VarName(vars[2]), "z");
}

TEST(CqTest, ValidateAndPrint) {
  Schema s{{"R", 2}, {"S", 2}};
  ConjunctiveQuery q;
  q.head = {InternVar("x")};
  q.atoms = {Atom::Vars("R", {"x", "y"}), Atom::Vars("S", {"y", "z"})};
  EXPECT_TRUE(q.Validate(s).ok());
  EXPECT_EQ(q.ToString(), "Q(x) :- R(x,y), S(y,z)");
  EXPECT_EQ(q.ExistentialVars().size(), 2u);
}

TEST(CqTest, UnsafeHeadRejected) {
  Schema s{{"R", 2}};
  ConjunctiveQuery q;
  q.head = {InternVar("w")};
  q.atoms = {Atom::Vars("R", {"x", "y"})};
  EXPECT_EQ(q.Validate(s).code(), StatusCode::kMalformed);
}

TEST(UnionCqTest, EqualityLinkedHeadIsSafe) {
  Schema s{{"B", 1}};
  UnionCq u;
  u.head = {InternVar("x"), InternVar("y")};
  CqDisjunct d;
  d.atoms = {Atom::Vars("B", {"x"})};
  d.equalities = {{InternVar("x"), InternVar("y")}};
  u.disjuncts = {d};
  EXPECT_TRUE(u.Validate(s).ok());
}

TEST(UnionCqTest, DisconnectedHeadIsUnsafe) {
  Schema s{{"B", 1}};
  UnionCq u;
  u.head = {InternVar("x"), InternVar("y")};
  CqDisjunct d;
  d.atoms = {Atom::Vars("B", {"x"})};
  u.disjuncts = {d};
  EXPECT_EQ(u.Validate(s).code(), StatusCode::kMalformed);
}

TEST(TgdTest, FrontierAndExistentials) {
  // R(x,y), S(y,z) -> EXISTS u . T(x,z,u)   (the paper's Section 2 example)
  Tgd tgd;
  tgd.premise = {Atom::Vars("R", {"x", "y"}), Atom::Vars("S", {"y", "z"})};
  tgd.conclusion = {Atom::Vars("T", {"x", "z", "u"})};
  std::vector<VarId> frontier = tgd.FrontierVars();
  ASSERT_EQ(frontier.size(), 2u);
  EXPECT_EQ(VarName(frontier[0]), "x");
  EXPECT_EQ(VarName(frontier[1]), "z");
  std::vector<VarId> exist = tgd.ExistentialVars();
  ASSERT_EQ(exist.size(), 1u);
  EXPECT_EQ(VarName(exist[0]), "u");
  EXPECT_EQ(tgd.ToString(), "R(x,y), S(y,z) -> EXISTS u . T(x,z,u)");
}

TEST(TgdTest, ValidateChecksBothSides) {
  Schema src{{"R", 2}, {"S", 2}};
  Schema tgt{{"T", 3}};
  Tgd tgd;
  tgd.premise = {Atom::Vars("R", {"x", "y"})};
  tgd.conclusion = {Atom::Vars("T", {"x", "y", "u"})};
  EXPECT_TRUE(tgd.Validate(src, tgt).ok());
  // Target relation used in the premise: rejected.
  Tgd bad;
  bad.premise = {Atom::Vars("T", {"x", "y", "z"})};
  bad.conclusion = {Atom::Vars("T", {"x", "y", "z"})};
  EXPECT_FALSE(bad.Validate(src, tgt).ok());
}

TEST(ReverseDependencyTest, ValidateAndPrint) {
  Schema target_schema{{"T", 2}};
  Schema source_schema{{"R", 2}, {"S", 2}};
  ReverseDependency dep;
  dep.premise = {Atom::Vars("T", {"x", "y"})};
  dep.constant_vars = {InternVar("x"), InternVar("y")};
  dep.inequalities = {{InternVar("x"), InternVar("y")}};
  ReverseDisjunct d1;
  d1.atoms = {Atom::Vars("R", {"x", "u"})};
  ReverseDisjunct d2;
  d2.atoms = {Atom::Vars("S", {"x", "y"})};
  d2.equalities = {{InternVar("x"), InternVar("y")}};
  dep.disjuncts = {d1, d2};
  EXPECT_TRUE(dep.Validate(target_schema, source_schema).ok());
  EXPECT_EQ(dep.ToString(),
            "T(x,y), C(x), C(y), x != y -> EXISTS u . R(x,u) | S(x,y), x = y");
}

TEST(ReverseDependencyTest, ConstantVarMustBeInPremise) {
  Schema target_schema{{"T", 2}};
  Schema source_schema{{"R", 2}};
  ReverseDependency dep;
  dep.premise = {Atom::Vars("T", {"x", "y"})};
  dep.constant_vars = {InternVar("zzz")};
  ReverseDisjunct d;
  d.atoms = {Atom::Vars("R", {"x", "y"})};
  dep.disjuncts = {d};
  EXPECT_EQ(dep.Validate(target_schema, source_schema).code(),
            StatusCode::kMalformed);
}

TEST(SubstitutionTest, ApplyResolvesChains) {
  Substitution s;
  s.Bind(InternVar("x"), Term::Var("y"));
  s.Bind(InternVar("y"), Term::Const(Value::Int(1)));
  EXPECT_EQ(s.Resolve(InternVar("x")), Term::Const(Value::Int(1)));
  Atom a = Atom::Vars("R", {"x", "z"});
  Atom applied = s.Apply(a);
  EXPECT_EQ(applied.terms[0], Term::Const(Value::Int(1)));
  EXPECT_EQ(applied.terms[1], Term::Var("z"));
}

TEST(UnifyTest, SimpleVariableBinding) {
  auto res = Unify({{Term::Var("x"), Term::Var("y")}});
  ASSERT_TRUE(res.ok());
  EXPECT_EQ(res->Resolve(InternVar("x")), res->Resolve(InternVar("y")));
}

TEST(UnifyTest, FunctionDecomposition) {
  // f(x, g(y)) = f(a, g(b))  ⇒  x=a, y=b
  Term lhs = Term::Fn("f", {Term::Var("x"), Term::Fn("g", {Term::Var("y")})});
  Term rhs = Term::Fn("f", {Term::Var("a"), Term::Fn("g", {Term::Var("b")})});
  auto res = Unify({{lhs, rhs}});
  ASSERT_TRUE(res.ok());
  EXPECT_EQ(res->Resolve(InternVar("x")), res->Resolve(InternVar("a")));
  EXPECT_EQ(res->Resolve(InternVar("y")), res->Resolve(InternVar("b")));
}

TEST(UnifyTest, FunctionClashFails) {
  Term lhs = Term::Fn("f", {Term::Var("x")});
  Term rhs = Term::Fn("g", {Term::Var("y")});
  EXPECT_EQ(Unify({{lhs, rhs}}).status().code(), StatusCode::kNotFound);
}

TEST(UnifyTest, OccursCheckFails) {
  Term lhs = Term::Var("x");
  Term rhs = Term::Fn("f", {Term::Var("x")});
  EXPECT_EQ(Unify({{lhs, rhs}}).status().code(), StatusCode::kNotFound);
}

TEST(UnifyTest, ConstantsMustMatch) {
  EXPECT_TRUE(
      Unify({{Term::Const(Value::Int(1)), Term::Const(Value::Int(1))}}).ok());
  EXPECT_FALSE(
      Unify({{Term::Const(Value::Int(1)), Term::Const(Value::Int(2))}}).ok());
}

TEST(UnifyTest, TransitiveThroughSharedVariable) {
  // x = f(u), x = f(v)  ⇒  u = v
  auto res = Unify({{Term::Var("x"), Term::Fn("f", {Term::Var("u")})},
                    {Term::Var("x"), Term::Fn("f", {Term::Var("v")})}});
  ASSERT_TRUE(res.ok());
  EXPECT_EQ(res->Resolve(InternVar("u")), res->Resolve(InternVar("v")));
}

TEST(UnifyAtomsTest, DifferentRelationsFail) {
  EXPECT_FALSE(
      UnifyAtoms(Atom::Vars("R", {"x"}), Atom::Vars("S", {"x"})).ok());
}

TEST(RenameApartTest, ProducesFreshDistinctVars) {
  FreshVarGen gen("t");
  std::vector<VarId> vars = {InternVar("x"), InternVar("y"), InternVar("x")};
  Substitution r = RenameApart(vars, &gen);
  Term rx = r.Resolve(InternVar("x"));
  Term ry = r.Resolve(InternVar("y"));
  EXPECT_NE(rx, ry);
  EXPECT_NE(rx, Term::Var("x"));
}

TEST(SOTgdTest, ValidatePlainTerms) {
  Schema src{{"R", 3}};
  Schema tgt{{"T", 4}};
  SORule rule;
  rule.premise = {Atom::Vars("R", {"x", "y", "z"})};
  rule.conclusion = {
      Atom("T", {Term::Var("x"), Term::Fn("f", {Term::Var("y")}),
                 Term::Fn("f", {Term::Var("y")}),
                 Term::Fn("g", {Term::Var("x"), Term::Var("z")})})};
  SOTgd so;
  so.rules = {rule};
  EXPECT_TRUE(so.Validate(src, tgt).ok());
  auto fns = so.Functions();
  ASSERT_TRUE(fns.ok());
  EXPECT_EQ(fns->size(), 2u);
}

TEST(SOTgdTest, InconsistentArityRejected) {
  Schema src{{"R", 2}};
  Schema tgt{{"T", 2}};
  SORule rule;
  rule.premise = {Atom::Vars("R", {"x", "y"})};
  rule.conclusion = {Atom("T", {Term::Fn("f", {Term::Var("x")}),
                                Term::Fn("f", {Term::Var("x"), Term::Var("y")})})};
  SOTgd so;
  so.rules = {rule};
  EXPECT_FALSE(so.Validate(src, tgt).ok());
}

TEST(SOTgdTest, ConclusionVariableMustComeFromPremise) {
  Schema src{{"R", 1}};
  Schema tgt{{"T", 1}};
  SORule rule;
  rule.premise = {Atom::Vars("R", {"x"})};
  rule.conclusion = {Atom::Vars("T", {"w"})};
  SOTgd so;
  so.rules = {rule};
  EXPECT_EQ(so.Validate(src, tgt).code(), StatusCode::kMalformed);
}

TEST(MappingTest, TgdMappingValidates) {
  Tgd tgd;
  tgd.premise = {Atom::Vars("R", {"x", "y"}), Atom::Vars("S", {"y", "z"})};
  tgd.conclusion = {Atom::Vars("T", {"x", "z"})};
  TgdMapping m(Schema{{"R", 2}, {"S", 2}}, Schema{{"T", 2}}, {tgd});
  EXPECT_TRUE(m.Validate().ok());
}

}  // namespace
}  // namespace mapinv
