// Durable-job tests: the checkpointed world enumeration of src/job.
//
//   * manifest codec: byte round trip, every truncation length and every
//     byte flip rejected as clean kMalformed (the checksum-first contract);
//   * checkpointer protocol: generation GC, fallback to the previous good
//     generation past a corrupt or torn newest one, refusal semantics
//     (existing checkpoint without resume, fingerprint/kind mismatch);
//   * the kill matrix: a forked child armed with Mode::kAbortProcess is
//     SIGKILLed at every job/* failpoint site, at every hit index, and the
//     parent's resumed run must reproduce the uninterrupted world set byte
//     for byte — the issue's acceptance criterion.

#include <csignal>
#include <cstdint>
#include <cstdlib>
#include <string>
#include <vector>

#include <dirent.h>
#include <sys/wait.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include "base/symbol_context.h"
#include "chase/chase_reverse.h"
#include "chase/chase_so.h"
#include "chase/chase_tgd.h"
#include "engine/execution_options.h"
#include "engine/failpoint.h"
#include "inversion/maximum_recovery.h"
#include "inversion/polyso.h"
#include "job/job.h"
#include "parser/parser.h"
#include "rewrite/skolemize.h"

namespace mapinv {
namespace {

// ---------------------------------------------------------------------------
// Fixtures and helpers

// Two producers of T force disjunctive reverse dependencies (world forks),
// the repeated variable forces equalities, the existential forces fresh
// nulls — the enumeration exercises every cursor dimension.
constexpr char kJobMapping[] =
    "S1(x) -> T(x)\n"
    "S2(x) -> T(x)\n"
    "P(x,y) -> Q(x,x,y)\n"
    "E(x) -> F(x,y)\n";

constexpr char kJobSource[] = "{ S1(1), S2(2), P(1,2), E(3) }";

const char* const kJobSites[] = {"job/commit_begin", "job/world_snapshot",
                                 "job/manifest_write", "job/commit_end"};

std::string MakeJobDir() {
  char tmpl[] = "/tmp/mapinv-job-test-XXXXXX";
  char* dir = ::mkdtemp(tmpl);
  EXPECT_NE(dir, nullptr);
  return dir == nullptr ? std::string() : std::string(dir);
}

std::vector<std::string> ListDir(const std::string& dir) {
  std::vector<std::string> names;
  DIR* d = ::opendir(dir.c_str());
  if (d == nullptr) return names;
  while (dirent* entry = ::readdir(d)) {
    const std::string name = entry->d_name;
    if (name != "." && name != "..") names.push_back(name);
  }
  ::closedir(d);
  return names;
}

void RemoveDir(const std::string& dir) {
  for (const std::string& name : ListDir(dir)) {
    ::unlink((dir + "/" + name).c_str());
  }
  ::rmdir(dir.c_str());
}

std::string RenderWorlds(const std::vector<Instance>& worlds) {
  std::string out;
  for (const Instance& world : worlds) out += world.ToString() + "\n";
  return out;
}

JobManifest SampleManifest() {
  JobManifest manifest;
  manifest.kind = 0;
  manifest.fingerprint = 0x0123456789abcdefull;
  manifest.generation = 7;
  manifest.complete = false;
  manifest.dep_index = 2;
  manifest.trigger_index = 5;
  manifest.created = 9;
  manifest.null_watermark = 42;
  manifest.world_files = {"w7-0.snap", "w7-1.snap"};
  return manifest;
}

// ---------------------------------------------------------------------------
// Manifest codec

TEST(JobManifestTest, BytesRoundTrip) {
  const JobManifest manifest = SampleManifest();
  const std::string bytes = JobManifestToBytes(manifest);
  Result<JobManifest> parsed = JobManifestFromBytes(bytes.data(), bytes.size());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(*parsed, manifest);
  // The fuzz oracle: re-serializing a valid parse reproduces the image.
  EXPECT_EQ(JobManifestToBytes(*parsed), bytes);
}

TEST(JobManifestTest, EmptyWorldListRoundTrips) {
  JobManifest manifest = SampleManifest();
  manifest.world_files.clear();
  manifest.complete = true;
  const std::string bytes = JobManifestToBytes(manifest);
  Result<JobManifest> parsed = JobManifestFromBytes(bytes.data(), bytes.size());
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(*parsed, manifest);
}

TEST(JobManifestTest, EveryTruncationLengthIsRejectedCleanly) {
  const std::string bytes = JobManifestToBytes(SampleManifest());
  for (size_t len = 0; len < bytes.size(); ++len) {
    Result<JobManifest> parsed = JobManifestFromBytes(bytes.data(), len);
    ASSERT_FALSE(parsed.ok()) << "length " << len;
    EXPECT_EQ(parsed.status().code(), StatusCode::kMalformed)
        << "length " << len << ": " << parsed.status().ToString();
  }
}

TEST(JobManifestTest, EveryByteFlipIsRejectedCleanly) {
  const std::string bytes = JobManifestToBytes(SampleManifest());
  for (size_t i = 0; i < bytes.size(); ++i) {
    for (uint8_t bit : {uint8_t{0x01}, uint8_t{0x80}}) {
      std::string corrupt = bytes;
      corrupt[i] = static_cast<char>(corrupt[i] ^ bit);
      Result<JobManifest> parsed =
          JobManifestFromBytes(corrupt.data(), corrupt.size());
      // The trailing checksum covers every preceding byte, and is itself
      // part of the image, so no single flip can survive.
      ASSERT_FALSE(parsed.ok()) << "byte " << i << " bit " << int(bit);
      EXPECT_EQ(parsed.status().code(), StatusCode::kMalformed)
          << "byte " << i << ": " << parsed.status().ToString();
    }
  }
}

TEST(JobManifestTest, TrailingGarbageIsRejected) {
  std::string bytes = JobManifestToBytes(SampleManifest());
  bytes += '\0';
  Result<JobManifest> parsed = JobManifestFromBytes(bytes.data(), bytes.size());
  ASSERT_FALSE(parsed.ok());
  EXPECT_EQ(parsed.status().code(), StatusCode::kMalformed);
}

TEST(JobManifestTest, GarbageIsRejected) {
  const std::string garbage = "definitely not a job manifest image";
  Result<JobManifest> parsed =
      JobManifestFromBytes(garbage.data(), garbage.size());
  ASSERT_FALSE(parsed.ok());
  EXPECT_EQ(parsed.status().code(), StatusCode::kMalformed);
}

TEST(JobManifestTest, FingerprintSeparatesJobIdentities) {
  const uint64_t base =
      JobFingerprint(JobKind::kReverseWorlds, "m", "i", false);
  EXPECT_NE(base, JobFingerprint(JobKind::kSOInverseWorlds, "m", "i", false));
  EXPECT_NE(base, JobFingerprint(JobKind::kReverseWorlds, "m2", "i", false));
  EXPECT_NE(base, JobFingerprint(JobKind::kReverseWorlds, "m", "i2", false));
  EXPECT_NE(base, JobFingerprint(JobKind::kReverseWorlds, "m", "i", true));
  // Length-delimited hashing: shifting bytes across the boundary changes
  // the image, not just the concatenation.
  EXPECT_NE(JobFingerprint(JobKind::kReverseWorlds, "ab", "c", false),
            JobFingerprint(JobKind::kReverseWorlds, "a", "bc", false));
  EXPECT_EQ(base, JobFingerprint(JobKind::kReverseWorlds, "m", "i", false));
}

// ---------------------------------------------------------------------------
// Checkpointer protocol

TEST(JobCheckpointerTest, CommitResumeAndGenerationGC) {
  const std::string dir = MakeJobDir();
  const uint64_t fp = JobFingerprint(JobKind::kReverseWorlds, "m", "i", false);
  {
    Result<JobCheckpointer> ckpt =
        JobCheckpointer::Open(dir, JobKind::kReverseWorlds, fp, false);
    ASSERT_TRUE(ckpt.ok()) << ckpt.status().ToString();
    EXPECT_FALSE(ckpt->resumed().has_value());
    ExecStats stats;
    JobManifest cursor;
    cursor.dep_index = 1;
    cursor.trigger_index = 2;
    ASSERT_TRUE(ckpt->Commit(cursor, {"alpha", "beta"}, &stats).ok());
    cursor.trigger_index = 3;
    ASSERT_TRUE(ckpt->Commit(cursor, {"gamma"}, &stats).ok());
    cursor.trigger_index = 4;
    ASSERT_TRUE(ckpt->Commit(cursor, {"delta", "epsilon"}, &stats).ok());
    EXPECT_EQ(stats.jobs_checkpointed.load(), 3u);
    EXPECT_GT(stats.checkpoint_bytes.load(), 0u);
  }
  // GC keeps the newest generation plus the previous good one.
  std::vector<std::string> files = ListDir(dir);
  size_t manifests = 0;
  for (const std::string& name : files) {
    EXPECT_EQ(name.find("manifest-1"), std::string::npos) << name;
    EXPECT_EQ(name.find("w1-"), std::string::npos) << name;
    if (name.rfind("manifest-", 0) == 0) ++manifests;
  }
  EXPECT_EQ(manifests, 2u);

  Result<JobCheckpointer> resumed =
      JobCheckpointer::Open(dir, JobKind::kReverseWorlds, fp, true);
  ASSERT_TRUE(resumed.ok()) << resumed.status().ToString();
  ASSERT_TRUE(resumed->resumed().has_value());
  EXPECT_EQ(resumed->resumed()->manifest.generation, 3u);
  EXPECT_EQ(resumed->resumed()->manifest.trigger_index, 4u);
  EXPECT_EQ(resumed->resumed()->world_images,
            (std::vector<std::string>{"delta", "epsilon"}));
  // The next commit continues the generation sequence past the restored one.
  ExecStats stats;
  ASSERT_TRUE(resumed->Commit(JobManifest{}, {"zeta"}, &stats).ok());
  Result<JobCheckpointer> again =
      JobCheckpointer::Open(dir, JobKind::kReverseWorlds, fp, true);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again->resumed()->manifest.generation, 4u);
  RemoveDir(dir);
}

TEST(JobCheckpointerTest, FreshOpenRefusesAnExistingCheckpoint) {
  const std::string dir = MakeJobDir();
  const uint64_t fp = JobFingerprint(JobKind::kReverseWorlds, "m", "i", false);
  {
    Result<JobCheckpointer> ckpt =
        JobCheckpointer::Open(dir, JobKind::kReverseWorlds, fp, false);
    ASSERT_TRUE(ckpt.ok());
    ExecStats stats;
    ASSERT_TRUE(ckpt->Commit(JobManifest{}, {"w"}, &stats).ok());
  }
  Result<JobCheckpointer> refused =
      JobCheckpointer::Open(dir, JobKind::kReverseWorlds, fp, false);
  ASSERT_FALSE(refused.ok());
  EXPECT_EQ(refused.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(refused.status().ToString().find("resume"), std::string::npos)
      << refused.status().ToString();
  RemoveDir(dir);
}

TEST(JobCheckpointerTest, ResumeRefusesMismatchedIdentity) {
  const std::string dir = MakeJobDir();
  const uint64_t fp = JobFingerprint(JobKind::kReverseWorlds, "m", "i", false);
  {
    Result<JobCheckpointer> ckpt =
        JobCheckpointer::Open(dir, JobKind::kReverseWorlds, fp, false);
    ASSERT_TRUE(ckpt.ok());
    ExecStats stats;
    ASSERT_TRUE(ckpt->Commit(JobManifest{}, {"w"}, &stats).ok());
  }
  Result<JobCheckpointer> wrong_fp =
      JobCheckpointer::Open(dir, JobKind::kReverseWorlds, fp + 1, true);
  ASSERT_FALSE(wrong_fp.ok());
  EXPECT_EQ(wrong_fp.status().code(), StatusCode::kInvalidArgument);
  Result<JobCheckpointer> wrong_kind =
      JobCheckpointer::Open(dir, JobKind::kSOInverseWorlds, fp, true);
  ASSERT_FALSE(wrong_kind.ok());
  EXPECT_EQ(wrong_kind.status().code(), StatusCode::kInvalidArgument);
  RemoveDir(dir);
}

TEST(JobCheckpointerTest, CorruptNewestGenerationFallsBackToPreviousGood) {
  const std::string dir = MakeJobDir();
  const uint64_t fp = JobFingerprint(JobKind::kReverseWorlds, "m", "i", false);
  {
    Result<JobCheckpointer> ckpt =
        JobCheckpointer::Open(dir, JobKind::kReverseWorlds, fp, false);
    ASSERT_TRUE(ckpt.ok());
    ExecStats stats;
    JobManifest cursor;
    cursor.trigger_index = 1;
    ASSERT_TRUE(ckpt->Commit(cursor, {"good"}, &stats).ok());
    cursor.trigger_index = 2;
    ASSERT_TRUE(ckpt->Commit(cursor, {"newest"}, &stats).ok());
  }
  // Flip one byte in the newest manifest: the checksum rejects it and the
  // open falls back to generation 1.
  const std::string newest = dir + "/manifest-2";
  FILE* f = ::fopen(newest.c_str(), "r+b");
  ASSERT_NE(f, nullptr);
  int first = ::fgetc(f);
  ASSERT_NE(first, EOF);
  ::fseek(f, 0, SEEK_SET);
  ::fputc(first ^ 0x01, f);
  ::fclose(f);
  Result<JobCheckpointer> fallback =
      JobCheckpointer::Open(dir, JobKind::kReverseWorlds, fp, true);
  ASSERT_TRUE(fallback.ok()) << fallback.status().ToString();
  ASSERT_TRUE(fallback->resumed().has_value());
  EXPECT_EQ(fallback->resumed()->manifest.generation, 1u);
  EXPECT_EQ(fallback->resumed()->manifest.trigger_index, 1u);
  EXPECT_EQ(fallback->resumed()->world_images,
            (std::vector<std::string>{"good"}));
  RemoveDir(dir);
}

TEST(JobCheckpointerTest, TornWorldFileFallsBackToPreviousGood) {
  const std::string dir = MakeJobDir();
  const uint64_t fp = JobFingerprint(JobKind::kReverseWorlds, "m", "i", false);
  {
    Result<JobCheckpointer> ckpt =
        JobCheckpointer::Open(dir, JobKind::kReverseWorlds, fp, false);
    ASSERT_TRUE(ckpt.ok());
    ExecStats stats;
    JobManifest cursor;
    cursor.trigger_index = 1;
    ASSERT_TRUE(ckpt->Commit(cursor, {"good"}, &stats).ok());
    cursor.trigger_index = 2;
    ASSERT_TRUE(ckpt->Commit(cursor, {"newest"}, &stats).ok());
  }
  ASSERT_EQ(::unlink((dir + "/w2-0.snap").c_str()), 0);
  Result<JobCheckpointer> fallback =
      JobCheckpointer::Open(dir, JobKind::kReverseWorlds, fp, true);
  ASSERT_TRUE(fallback.ok()) << fallback.status().ToString();
  ASSERT_TRUE(fallback->resumed().has_value());
  EXPECT_EQ(fallback->resumed()->manifest.generation, 1u);
  RemoveDir(dir);
}

TEST(JobCheckpointerTest, DirectoryWithNoLoadableCheckpointIsMalformed) {
  const std::string dir = MakeJobDir();
  FILE* f = ::fopen((dir + "/manifest-1").c_str(), "wb");
  ASSERT_NE(f, nullptr);
  ::fputs("torn garbage, not a manifest", f);
  ::fclose(f);
  const uint64_t fp = JobFingerprint(JobKind::kReverseWorlds, "m", "i", false);
  Result<JobCheckpointer> resumed =
      JobCheckpointer::Open(dir, JobKind::kReverseWorlds, fp, true);
  ASSERT_FALSE(resumed.ok());
  EXPECT_EQ(resumed.status().code(), StatusCode::kMalformed);
  RemoveDir(dir);
}

TEST(JobCheckpointerTest, ResumeOnEmptyDirectoryStartsFresh) {
  const std::string dir = MakeJobDir();
  const uint64_t fp = JobFingerprint(JobKind::kReverseWorlds, "m", "i", false);
  Result<JobCheckpointer> ckpt =
      JobCheckpointer::Open(dir, JobKind::kReverseWorlds, fp, true);
  ASSERT_TRUE(ckpt.ok()) << ckpt.status().ToString();
  EXPECT_FALSE(ckpt->resumed().has_value());
  RemoveDir(dir);
}

// ---------------------------------------------------------------------------
// Checkpointed enumeration end to end

class JobEnumerationTest : public ::testing::Test {
 protected:
  void SetUp() override {
    mapping_ = ParseTgdMapping(kJobMapping).ValueOrDie();
    source_ = ParseInstance(kJobSource, *mapping_.source).ValueOrDie();
    SymbolContext symbols;
    ExecutionOptions options = Options(&symbols);
    reverse_ = MaximumRecovery(mapping_, options).ValueOrDie();
    target_ = ChaseTgds(mapping_, source_, options).ValueOrDie();
    so_ = TgdsToPlainSOTgd(mapping_).ValueOrDie();
    so_inverse_ = PolySOInverseOfTgds(mapping_, options).ValueOrDie();
    so_target_ = ChaseSOTgd(so_, source_, Options(&symbols)).ValueOrDie();
  }
  void TearDown() override { FailPointRegistry::Global().DeactivateAll(); }

  static ExecutionOptions Options(SymbolContext* symbols,
                                  ExecStats* stats = nullptr) {
    ExecutionOptions options;
    options.threads = 1;
    options.symbols = symbols;
    options.stats = stats;
    return options;
  }

  // The uninterrupted reverse enumeration, freshly scoped.
  std::string GoldenReverse() {
    SymbolContext symbols;
    return RenderWorlds(
        ChaseReverseWorlds(reverse_, target_, Options(&symbols)).ValueOrDie());
  }

  std::string GoldenSO() {
    SymbolContext symbols;
    return RenderWorlds(
        ChaseSOInverseWorlds(so_inverse_, so_target_, Options(&symbols))
            .ValueOrDie());
  }

  TgdMapping mapping_;
  Instance source_{std::make_shared<Schema>()};
  ReverseMapping reverse_;
  Instance target_{std::make_shared<Schema>()};
  SOTgdMapping so_;
  SOInverseMapping so_inverse_;
  Instance so_target_{std::make_shared<Schema>()};
};

TEST_F(JobEnumerationTest, CheckpointedRunMatchesUncheckpointed) {
  const std::string golden = GoldenReverse();
  const std::string dir = MakeJobDir();
  SymbolContext symbols;
  ExecStats stats;
  ExecutionOptions options = Options(&symbols, &stats);
  options.checkpoint_dir = dir;
  options.checkpoint_every = 1;
  Result<std::vector<Instance>> worlds =
      ChaseReverseWorlds(reverse_, target_, options);
  ASSERT_TRUE(worlds.ok()) << worlds.status().ToString();
  EXPECT_EQ(RenderWorlds(*worlds), golden);
  EXPECT_GT(stats.jobs_checkpointed.load(), 0u);
  EXPECT_GT(stats.checkpoint_bytes.load(), 0u);

  // Resuming a completed job serves the committed worlds byte-identically.
  SymbolContext symbols2;
  ExecStats stats2;
  ExecutionOptions resume_options = Options(&symbols2, &stats2);
  resume_options.checkpoint_dir = dir;
  resume_options.resume = true;
  Result<std::vector<Instance>> again =
      ChaseReverseWorlds(reverse_, target_, resume_options);
  ASSERT_TRUE(again.ok()) << again.status().ToString();
  EXPECT_EQ(RenderWorlds(*again), golden);
  EXPECT_GT(stats2.worlds_resumed.load(), 0u);
  RemoveDir(dir);
}

TEST_F(JobEnumerationTest, ExistingCheckpointWithoutResumeIsRefused) {
  const std::string dir = MakeJobDir();
  {
    SymbolContext symbols;
    ExecutionOptions options = Options(&symbols);
    options.checkpoint_dir = dir;
    ASSERT_TRUE(ChaseReverseWorlds(reverse_, target_, options).ok());
  }
  SymbolContext symbols;
  ExecutionOptions options = Options(&symbols);
  options.checkpoint_dir = dir;
  Result<std::vector<Instance>> refused =
      ChaseReverseWorlds(reverse_, target_, options);
  ASSERT_FALSE(refused.ok());
  EXPECT_EQ(refused.status().code(), StatusCode::kInvalidArgument);
  RemoveDir(dir);
}

TEST_F(JobEnumerationTest, ResumeAgainstDifferentInputsIsRefused) {
  const std::string dir = MakeJobDir();
  {
    SymbolContext symbols;
    ExecutionOptions options = Options(&symbols);
    options.checkpoint_dir = dir;
    ASSERT_TRUE(ChaseReverseWorlds(reverse_, target_, options).ok());
  }
  // Same directory, different input instance: the fingerprint differs.
  SymbolContext symbols;
  ExecutionOptions options = Options(&symbols);
  options.checkpoint_dir = dir;
  options.resume = true;
  Instance other = target_.Fork();
  ASSERT_TRUE(other.AddInts("T", {99}).ok());
  Result<std::vector<Instance>> refused =
      ChaseReverseWorlds(reverse_, other, options);
  ASSERT_FALSE(refused.ok());
  EXPECT_EQ(refused.status().code(), StatusCode::kInvalidArgument);
  RemoveDir(dir);
}

TEST_F(JobEnumerationTest, SOCheckpointedRunMatchesAndResumes) {
  const std::string golden = GoldenSO();
  const std::string dir = MakeJobDir();
  SymbolContext symbols;
  ExecStats stats;
  ExecutionOptions options = Options(&symbols, &stats);
  options.checkpoint_dir = dir;
  options.checkpoint_every = 1;
  Result<std::vector<Instance>> worlds =
      ChaseSOInverseWorlds(so_inverse_, so_target_, options);
  ASSERT_TRUE(worlds.ok()) << worlds.status().ToString();
  EXPECT_EQ(RenderWorlds(*worlds), golden);
  EXPECT_GT(stats.jobs_checkpointed.load(), 0u);

  SymbolContext symbols2;
  ExecStats stats2;
  ExecutionOptions resume_options = Options(&symbols2, &stats2);
  resume_options.checkpoint_dir = dir;
  resume_options.resume = true;
  Result<std::vector<Instance>> again =
      ChaseSOInverseWorlds(so_inverse_, so_target_, resume_options);
  ASSERT_TRUE(again.ok()) << again.status().ToString();
  EXPECT_EQ(RenderWorlds(*again), golden);
  EXPECT_GT(stats2.worlds_resumed.load(), 0u);
  RemoveDir(dir);
}

// ---------------------------------------------------------------------------
// The kill matrix: SIGKILL at every checkpoint boundary, resume, compare.

class JobKillMatrix : public JobEnumerationTest {};

// Forks a child that arms `site` to SIGKILL itself on the `nth` hit and runs
// the checkpointed reverse enumeration into `dir`. Returns the child's wait
// status.
template <typename RunFn>
int RunKilledChild(const std::string& site, uint64_t nth,
                   const std::string& dir, RunFn run) {
  const pid_t pid = ::fork();
  if (pid == 0) {
    FailPointSpec spec;
    spec.mode = FailPointSpec::Mode::kAbortProcess;
    spec.nth = nth;
    if (!FailPointRegistry::Global().Activate(site, spec).ok()) ::_exit(3);
    ::_exit(run(dir) ? 0 : 4);
  }
  int status = 0;
  ::waitpid(pid, &status, 0);
  return status;
}

TEST_F(JobKillMatrix, ReverseWorldsSurviveSigkillAtEveryCheckpointBoundary) {
  const std::string golden = GoldenReverse();
  auto run = [this](const std::string& dir) {
    SymbolContext symbols;
    ExecutionOptions options = Options(&symbols);
    options.checkpoint_dir = dir;
    options.checkpoint_every = 1;
    return ChaseReverseWorlds(reverse_, target_, options).ok();
  };
  size_t kills = 0;
  for (const char* site : kJobSites) {
    for (uint64_t nth = 1;; ++nth) {
      ASSERT_LT(nth, 200u) << "site " << site
                           << " never stops tripping: runaway matrix";
      const std::string dir = MakeJobDir();
      const int status = RunKilledChild(site, nth, dir, run);
      if (WIFEXITED(status) && WEXITSTATUS(status) == 0) {
        // The enumeration finished before the nth hit: this site's matrix
        // is exhausted.
        RemoveDir(dir);
        break;
      }
      ASSERT_TRUE(WIFSIGNALED(status) && WTERMSIG(status) == SIGKILL)
          << "site " << site << " nth " << nth << " status " << status;
      ++kills;
      // The killed run's directory must resume to the byte-identical world
      // set — no matter which side of which fsync the kill landed on.
      SymbolContext symbols;
      ExecStats stats;
      ExecutionOptions options = Options(&symbols, &stats);
      options.checkpoint_dir = dir;
      options.checkpoint_every = 1;
      options.resume = true;
      Result<std::vector<Instance>> resumed =
          ChaseReverseWorlds(reverse_, target_, options);
      ASSERT_TRUE(resumed.ok())
          << "site " << site << " nth " << nth << ": "
          << resumed.status().ToString();
      EXPECT_EQ(RenderWorlds(*resumed), golden)
          << "site " << site << " nth " << nth;
      RemoveDir(dir);
    }
  }
  // The matrix actually killed something at every site.
  EXPECT_GE(kills, 4u);
}

TEST_F(JobKillMatrix, SOWorldsSurviveSigkillMidEnumeration) {
  const std::string golden = GoldenSO();
  auto run = [this](const std::string& dir) {
    SymbolContext symbols;
    ExecutionOptions options = Options(&symbols);
    options.checkpoint_dir = dir;
    options.checkpoint_every = 1;
    return ChaseSOInverseWorlds(so_inverse_, so_target_, options).ok();
  };
  size_t kills = 0;
  for (const char* site : {"job/manifest_write", "job/commit_end"}) {
    for (uint64_t nth = 1; nth <= 3; ++nth) {
      const std::string dir = MakeJobDir();
      const int status = RunKilledChild(site, nth, dir, run);
      if (WIFEXITED(status) && WEXITSTATUS(status) == 0) {
        RemoveDir(dir);
        break;
      }
      ASSERT_TRUE(WIFSIGNALED(status) && WTERMSIG(status) == SIGKILL)
          << "site " << site << " nth " << nth << " status " << status;
      ++kills;
      SymbolContext symbols;
      ExecutionOptions options = Options(&symbols);
      options.checkpoint_dir = dir;
      options.checkpoint_every = 1;
      options.resume = true;
      Result<std::vector<Instance>> resumed =
          ChaseSOInverseWorlds(so_inverse_, so_target_, options);
      ASSERT_TRUE(resumed.ok())
          << "site " << site << " nth " << nth << ": "
          << resumed.status().ToString();
      EXPECT_EQ(RenderWorlds(*resumed), golden)
          << "site " << site << " nth " << nth;
      RemoveDir(dir);
    }
  }
  EXPECT_GE(kills, 1u);
}

}  // namespace
}  // namespace mapinv
