// Deeper tests for the SO chase engines (chase/chase_so.h): hand-built
// target instances, inverse-function consistency (the Safe/EnsureInv
// semantics), inconsistent branches, and resource limits.

#include <gtest/gtest.h>

#include "chase/chase_so.h"
#include "inversion/polyso.h"
#include "parser/parser.h"

namespace mapinv {
namespace {

SOTgdMapping Rule9() {
  return ParseSOTgdMapping("R(x,y,z) -> T(x, f(y), f(y), g(x,z))")
      .ValueOrDie();
}

TEST(ChaseSOInverseTest, HandBuiltCanonicalTargetRecovers) {
  // {T(1,a,a,b)} with labelled nulls a ≠ b — the paper's walkthrough input.
  SOTgdMapping m = Rule9();
  SOInverseMapping inv = PolySOInverse(m).ValueOrDie();
  Instance target =
      ParseInstance("{ T(1,_N0,_N0,_N1) }", *m.target).ValueOrDie();
  std::vector<Instance> worlds =
      ChaseSOInverseWorlds(inv, target).ValueOrDie();
  ASSERT_EQ(worlds.size(), 1u);
  RelationId r = worlds[0].schema().Find("R");
  ASSERT_EQ(worlds[0].TuplesCopy(r).size(), 1u);
  const Tuple t = worlds[0].TuplesCopy(r)[0];
  // R(1, ν_y, ν_z): u = x forces 1; f#1(a) and g#2(b) materialise as fresh
  // distinct nulls.
  EXPECT_EQ(t[0], Value::Int(1));
  EXPECT_TRUE(t[1].is_null());
  EXPECT_TRUE(t[2].is_null());
  EXPECT_NE(t[1], t[2]);
}

TEST(ChaseSOInverseTest, MismatchedEqualityPatternDoesNotTrigger) {
  // T(1,a,c,b) with a ≠ c does not match the premise T(u,v,v,w).
  SOTgdMapping m = Rule9();
  SOInverseMapping inv = PolySOInverse(m).ValueOrDie();
  Instance target =
      ParseInstance("{ T(1,_N0,_N2,_N1) }", *m.target).ValueOrDie();
  std::vector<Instance> worlds =
      ChaseSOInverseWorlds(inv, target).ValueOrDie();
  ASSERT_EQ(worlds.size(), 1u);
  EXPECT_EQ(worlds[0].TotalSize(), 0u);
}

TEST(ChaseSOInverseTest, NullAtConstantPositionBlocksTrigger) {
  // C(u) guards the first position: a null there cannot have come from the
  // variable x, so the rule does not fire.
  SOTgdMapping m = Rule9();
  SOInverseMapping inv = PolySOInverse(m).ValueOrDie();
  Instance target =
      ParseInstance("{ T(_N5,_N0,_N0,_N1) }", *m.target).ValueOrDie();
  std::vector<Instance> worlds =
      ChaseSOInverseWorlds(inv, target).ValueOrDie();
  ASSERT_EQ(worlds.size(), 1u);
  EXPECT_EQ(worlds[0].TotalSize(), 0u);
}

TEST(ChaseSOInverseTest, ConstantAtFunctionPositionIsAccepted) {
  // A constant where the canonical exchange would put an invented value is
  // allowed (the functions are arbitrary): f#1(2) materialises as a null.
  SOTgdMapping m = Rule9();
  SOInverseMapping inv = PolySOInverse(m).ValueOrDie();
  Instance target =
      ParseInstance("{ T(1,2,2,3) }", *m.target).ValueOrDie();
  std::vector<Instance> worlds =
      ChaseSOInverseWorlds(inv, target).ValueOrDie();
  ASSERT_EQ(worlds.size(), 1u);
  RelationId r = worlds[0].schema().Find("R");
  ASSERT_EQ(worlds[0].TuplesCopy(r).size(), 1u);
  EXPECT_EQ(worlds[0].TuplesCopy(r)[0][0], Value::Int(1));
  EXPECT_TRUE(worlds[0].TuplesCopy(r)[0][1].is_null());
}

TEST(ChaseSOInverseTest, SharedFunctionValueLinksTwoFacts) {
  // Two facts sharing the value at the f-position recover tuples sharing
  // the f#1 class: Takes-style co-enrolment.
  SOTgdMapping m =
      ParseSOTgdMapping("Takes(n,c) -> Enrollment(f(n),c)").ValueOrDie();
  SOInverseMapping inv = PolySOInverse(m).ValueOrDie();
  Instance target = ParseInstance(
      "{ Enrollment(_N0,'db'), Enrollment(_N0,'os'), Enrollment(_N1,'db') }",
      *m.target).ValueOrDie();
  std::vector<Instance> worlds =
      ChaseSOInverseWorlds(inv, target).ValueOrDie();
  ASSERT_EQ(worlds.size(), 1u);
  RelationId takes = worlds[0].schema().Find("Takes");
  ASSERT_EQ(worlds[0].TuplesCopy(takes).size(), 3u);
  std::vector<Value> db_students, os_students;
  for (const Tuple& t : worlds[0].TuplesCopy(takes)) {
    if (t[1] == Value::MakeConstant("os")) {
      os_students.push_back(t[0]);
    } else {
      db_students.push_back(t[0]);
    }
  }
  ASSERT_EQ(db_students.size(), 2u);
  ASSERT_EQ(os_students.size(), 1u);
  // Exactly one of the db students equals the os student.
  EXPECT_TRUE((db_students[0] == os_students[0]) !=
              (db_students[1] == os_students[0]));
}

TEST(ChaseSOInverseTest, GInverseConstraintPinsTheConstant) {
  // A(x) -> P(g(x), x): the inverse includes g#1(u) = x and u carries no C.
  // Recovering from P(k, 7) must pin the A-value to 7 via the second
  // position, not invent a null.
  SOTgdMapping m = ParseSOTgdMapping("A(x) -> P(g(x), x)").ValueOrDie();
  SOInverseMapping inv = PolySOInverse(m).ValueOrDie();
  Instance target = ParseInstance("{ P(_N0, 7) }", *m.target).ValueOrDie();
  std::vector<Instance> worlds =
      ChaseSOInverseWorlds(inv, target).ValueOrDie();
  ASSERT_EQ(worlds.size(), 1u);
  RelationId a = worlds[0].schema().Find("A");
  ASSERT_EQ(worlds[0].TuplesCopy(a).size(), 1u);
  EXPECT_EQ(worlds[0].TuplesCopy(a)[0][0], Value::Int(7));
}

TEST(ChaseSOInverseTest, ConflictingPinsKillTheBranch) {
  // With A(x) -> P(g(x), x), the two facts P(k,7), P(k,8) claim g#1(k) is
  // both 7 and 8 — the only branch is inconsistent, so no world survives.
  SOTgdMapping m = ParseSOTgdMapping("A(x) -> P(g(x), x)").ValueOrDie();
  SOInverseMapping inv = PolySOInverse(m).ValueOrDie();
  Instance target =
      ParseInstance("{ P(_N0, 7), P(_N0, 8) }", *m.target).ValueOrDie();
  std::vector<Instance> worlds =
      ChaseSOInverseWorlds(inv, target).ValueOrDie();
  EXPECT_TRUE(worlds.empty());
}

TEST(ChaseSOInverseTest, SafeInequalitySeparatesProducers) {
  // A(x) -> T(f(x)) and B(x) -> T(g(x)): on a single fact both branches are
  // individually consistent (2 worlds); the Q_s constraints forbid taking
  // *both* branches for the same value, which shows up as: no world
  // contains both an A-fact and a B-fact for the same T value... but
  // separate worlds may choose either.
  SOTgdMapping m =
      ParseSOTgdMapping("A(x) -> T(f(x))\nB(x) -> T(g(x))").ValueOrDie();
  SOInverseMapping inv = PolySOInverse(m).ValueOrDie();
  Instance target = ParseInstance("{ T(_N0) }", *m.target).ValueOrDie();
  std::vector<Instance> worlds =
      ChaseSOInverseWorlds(inv, target).ValueOrDie();
  ASSERT_EQ(worlds.size(), 2u);
  for (const Instance& w : worlds) {
    RelationId a = w.schema().Find("A");
    RelationId b = w.schema().Find("B");
    EXPECT_EQ(w.TuplesCopy(a).size() + w.TuplesCopy(b).size(), 1u);
  }
}

TEST(ChaseSOInverseTest, WorldCapIsEnforced) {
  SOTgdMapping m =
      ParseSOTgdMapping("A(x) -> T(f(x))\nB(x) -> T(g(x))").ValueOrDie();
  SOInverseMapping inv = PolySOInverse(m).ValueOrDie();
  Instance target(*m.target);
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(target.Add("T", {Value::NullWithLabel(100 + i)}).ok());
  }
  ExecutionOptions tight;
  tight.max_worlds = 16;  // 2^8 = 256 branches
  EXPECT_EQ(ChaseSOInverseWorlds(inv, target, tight).status().code(),
            StatusCode::kResourceExhausted);
}

TEST(ChaseSOTgdTest, FactLimitEnforced) {
  SOTgdMapping m = ParseSOTgdMapping("A(x,y) -> T(x,f(y))").ValueOrDie();
  Instance source(*m.source);
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(source.AddInts("A", {i, i}).ok());
  }
  ExecutionOptions tight;
  tight.max_new_facts = 10;
  EXPECT_EQ(ChaseSOTgd(m, source, tight).status().code(),
            StatusCode::kResourceExhausted);
}

}  // namespace
}  // namespace mapinv
