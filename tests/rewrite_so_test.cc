// Tests for certain-answer rewriting over plain SO-tgd mappings
// (RewriteOverSourceSO) — including the shared-Skolem effects that
// distinguish SO mappings from Skolemised tgds.

#include <gtest/gtest.h>

#include "chase/chase_so.h"
#include "eval/query_eval.h"
#include "parser/parser.h"
#include "chase/chase_tgd.h"
#include "rewrite/rewrite.h"
#include "rewrite/skolemize.h"

namespace mapinv {
namespace {

// Rewriting contract against the SO chase on a concrete instance.
void ExpectSORewritingExact(const SOTgdMapping& m, const ConjunctiveQuery& q,
                            const Instance& source) {
  Result<UnionCq> rewriting = RewriteOverSourceSO(m, q);
  ASSERT_TRUE(rewriting.ok()) << rewriting.status().ToString();
  AnswerSet via_rewriting = EvaluateUnionCq(*rewriting, source).ValueOrDie();
  Instance canonical = ChaseSOTgd(m, source).ValueOrDie();
  AnswerSet via_chase =
      EvaluateCq(q, canonical).ValueOrDie().CertainOnly();
  EXPECT_EQ(via_rewriting.tuples, via_chase.tuples)
      << "rewriting: " << rewriting->ToString()
      << "\nsource:    " << source.ToString();
}

TEST(RewriteSOTest, SharedSkolemJoinsAcrossFacts) {
  // Takes(n,c) -> Enrollment(f(n),c): the co-enrolment self-join rewrites
  // into a source self-join on the student name because f identifies the
  // two invented ids.
  SOTgdMapping m =
      ParseSOTgdMapping("Takes(n,c) -> Enrollment(f(n),c)").ValueOrDie();
  ConjunctiveQuery q;
  q.head = {InternVar("c1"), InternVar("c2")};
  q.atoms = {Atom::Vars("Enrollment", {"s", "c1"}),
             Atom::Vars("Enrollment", {"s", "c2"})};
  UnionCq rewriting = *RewriteOverSourceSO(m, q);
  ASSERT_EQ(rewriting.disjuncts.size(), 1u);
  ASSERT_EQ(rewriting.disjuncts[0].atoms.size(), 2u);
  // Both atoms share the student variable.
  const Atom& a0 = rewriting.disjuncts[0].atoms[0];
  const Atom& a1 = rewriting.disjuncts[0].atoms[1];
  EXPECT_EQ(a0.terms[0], a1.terms[0]);

  Instance source = ParseInstance(
      "{ Takes('ann','db'), Takes('ann','os'), Takes('bob','ai') }",
      *m.source).ValueOrDie();
  ExpectSORewritingExact(m, q, source);
}

TEST(RewriteSOTest, DistinctSkolemsDoNotJoin) {
  // With two *different* functions the self-join only matches within one
  // rule's output: A(x) -> T(f(x)), B(x) -> T(g(x)); query ∃s T(s) ∧ T(s)
  // trivially matches, but the cross pattern f(x) = g(y) is pruned.
  SOTgdMapping m =
      ParseSOTgdMapping("A(x,c) -> P(f(x),c)\nB(x,c) -> P(g(x),c)")
          .ValueOrDie();
  ConjunctiveQuery q;
  q.head = {InternVar("c1"), InternVar("c2")};
  q.atoms = {Atom::Vars("P", {"s", "c1"}), Atom::Vars("P", {"s", "c2"})};
  UnionCq rewriting = *RewriteOverSourceSO(m, q);
  // Only the f-f and g-g combinations survive (f ≐ g clashes).
  EXPECT_EQ(rewriting.disjuncts.size(), 2u);
  Instance source = ParseInstance(
      "{ A(1,'x'), A(1,'y'), B(1,'z') }", *m.source).ValueOrDie();
  ExpectSORewritingExact(m, q, source);
}

TEST(RewriteSOTest, Rule9EqualityPattern) {
  // R(x,y,z) -> T(x,f(y),f(y),g(x,z)): the query T(a,b,b,c) with head a
  // rewrites to ∃y,z R(a,y,z); with head spanning an f-position it is
  // empty (invented value).
  SOTgdMapping m =
      ParseSOTgdMapping("R(x,y,z) -> T(x, f(y), f(y), g(x,z))").ValueOrDie();
  ConjunctiveQuery q;
  q.head = {InternVar("a")};
  q.atoms = {Atom::Vars("T", {"a", "b", "b", "c"})};
  UnionCq rewriting = *RewriteOverSourceSO(m, q);
  ASSERT_EQ(rewriting.disjuncts.size(), 1u);
  EXPECT_EQ(RelationText(rewriting.disjuncts[0].atoms[0].relation), "R");

  ConjunctiveQuery bad;
  bad.head = {InternVar("b")};
  bad.atoms = {Atom::Vars("T", {"a", "b", "b", "c"})};
  EXPECT_TRUE(RewriteOverSourceSO(m, bad)->disjuncts.empty());

  Instance source =
      ParseInstance("{ R(1,2,3), R(1,5,6) }", *m.source).ValueOrDie();
  ExpectSORewritingExact(m, q, source);
}

TEST(RewriteSOTest, MismatchedEqualityPatternPrunes) {
  // Query T(a,b,c,d) with all-distinct variables still matches rule 9's
  // head (b and c unify with the same term f(y)), so the rewriting is
  // nonempty; but a query that *forces* positions 2 and 4 equal clashes
  // (f(y) vs g(x,z)).
  SOTgdMapping m =
      ParseSOTgdMapping("R(x,y,z) -> T(x, f(y), f(y), g(x,z))").ValueOrDie();
  ConjunctiveQuery free;
  free.head = {InternVar("a")};
  free.atoms = {Atom::Vars("T", {"a", "b", "c", "d"})};
  EXPECT_EQ(RewriteOverSourceSO(m, free)->disjuncts.size(), 1u);

  ConjunctiveQuery forced;
  forced.head = {InternVar("a")};
  forced.atoms = {Atom::Vars("T", {"a", "b", "c", "b"})};
  EXPECT_TRUE(RewriteOverSourceSO(m, forced)->disjuncts.empty());
}

TEST(RewriteSOTest, AgreesWithTgdPathOnSkolemisedMappings) {
  // For a tgd-derived SO mapping, rewriting over the SO translation and
  // rewriting over the original tgds give the same answers. (The SO path
  // Skolemises over all premise variables, the tgd path over the frontier;
  // both are certain-answer exact, so evaluations coincide.)
  TgdMapping tgds = ParseTgdMapping(
      "R(x,y) -> EXISTS u . T(x,u)\nS(x) -> T(x,x)").ValueOrDie();
  SOTgdMapping so = TgdsToPlainSOTgd(tgds).ValueOrDie();
  ConjunctiveQuery q;
  q.head = {InternVar("x")};
  q.atoms = {Atom::Vars("T", {"x", "w"})};
  UnionCq via_tgds = *RewriteOverSource(tgds, q);
  UnionCq via_so = *RewriteOverSourceSO(so, q);
  Instance source =
      ParseInstance("{ R(1,2), S(3) }", *tgds.source).ValueOrDie();
  AnswerSet a1 = EvaluateUnionCq(via_tgds, source).ValueOrDie();
  AnswerSet a2 = EvaluateUnionCq(via_so, source).ValueOrDie();
  AnswerSet truth = *CertainAnswersTgd(tgds, source, q);
  EXPECT_EQ(a1.tuples, truth.tuples);
  EXPECT_EQ(a2.tuples, truth.tuples);
}

}  // namespace
}  // namespace mapinv
