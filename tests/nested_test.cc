// Tests for nested mappings (logic/nested.h): translation to plain SO-tgds
// and inversion through PolySOInverse — the Section 5.1 "nested mappings"
// claim.

#include <gtest/gtest.h>

#include "chase/chase_so.h"
#include "chase/round_trip.h"
#include "eval/query_eval.h"
#include "inversion/polyso.h"
#include "logic/nested.h"
#include "parser/parser.h"

namespace mapinv {
namespace {

// The Clio-style department/employee nested mapping:
//   Dept(d, m) -> DeptT(d, k)                     [k: invented dept key]
//     Emp(d, e) -> EmpT(e, k)                     [same k: correlation]
NestedMapping DeptEmpMapping() {
  NestedRule child;
  child.premise = {Atom::Vars("Emp", {"d", "e"})};
  child.conclusion = {Atom::Vars("EmpT", {"e", "k"})};
  NestedRule root;
  root.premise = {Atom::Vars("Dept", {"d", "m"})};
  root.conclusion = {Atom::Vars("DeptT", {"d", "k"})};
  root.children = {child};
  return NestedMapping(Schema{{"Dept", 2}, {"Emp", 2}},
                       Schema{{"DeptT", 2}, {"EmpT", 2}}, {root});
}

TEST(NestedTest, ValidatesAndPrints) {
  NestedMapping m = DeptEmpMapping();
  EXPECT_TRUE(m.Validate().ok());
  std::string text = m.ToString();
  EXPECT_NE(text.find("Dept(d,m) -> DeptT(d,k)"), std::string::npos);
  EXPECT_NE(text.find("  Emp(d,e) -> EmpT(e,k)"), std::string::npos);
}

TEST(NestedTest, RejectsMalformedTrees) {
  NestedMapping empty(Schema{{"A", 1}}, Schema{{"B", 1}}, {});
  EXPECT_EQ(empty.Validate().code(), StatusCode::kMalformed);

  NestedRule no_premise;
  no_premise.conclusion = {Atom::Vars("B", {"x"})};
  NestedMapping bad(Schema{{"A", 1}}, Schema{{"B", 1}}, {no_premise});
  EXPECT_EQ(bad.Validate().code(), StatusCode::kMalformed);

  NestedRule useless;
  useless.premise = {Atom::Vars("A", {"x"})};
  NestedMapping bad2(Schema{{"A", 1}}, Schema{{"B", 1}}, {useless});
  EXPECT_EQ(bad2.Validate().code(), StatusCode::kMalformed);
}

TEST(NestedTest, TranslationSharesTheCorrelatedSkolem) {
  SOTgdMapping so = NestedToPlainSOTgd(DeptEmpMapping()).ValueOrDie();
  ASSERT_EQ(so.so.rules.size(), 2u);
  // Rule 1: Dept(d,m) -> DeptT(d, f(d,m)).
  const Term& parent_key = so.so.rules[0].conclusion[0].terms[1];
  ASSERT_TRUE(parent_key.is_function());
  EXPECT_EQ(parent_key.args().size(), 2u);
  // Rule 2: Dept(d,m), Emp(d,e) -> EmpT(e, f(d,m)) — same function symbol,
  // same arguments.
  ASSERT_EQ(so.so.rules[1].premise.size(), 2u);
  const Term& child_key = so.so.rules[1].conclusion[0].terms[1];
  EXPECT_EQ(parent_key, child_key);
}

TEST(NestedTest, ExchangeCorrelatesAcrossLevels) {
  SOTgdMapping so = NestedToPlainSOTgd(DeptEmpMapping()).ValueOrDie();
  Instance source = ParseInstance(
      "{ Dept('cs','alice'), Dept('ee','bob'), "
      "Emp('cs','carol'), Emp('cs','dan'), Emp('ee','eve') }",
      *so.source).ValueOrDie();
  Instance target = ChaseSOTgd(so, source).ValueOrDie();
  RelationId deptt = target.schema().Find("DeptT");
  RelationId empt = target.schema().Find("EmpT");
  ASSERT_EQ(target.TuplesCopy(deptt).size(), 2u);
  ASSERT_EQ(target.TuplesCopy(empt).size(), 3u);
  // carol and dan share the cs key; eve has the ee key; the keys equal the
  // corresponding DeptT keys.
  Value cs_key, ee_key;
  for (const Tuple& t : target.TuplesCopy(deptt)) {
    if (t[0] == Value::MakeConstant("cs")) cs_key = t[1];
    if (t[0] == Value::MakeConstant("ee")) ee_key = t[1];
  }
  EXPECT_NE(cs_key, ee_key);
  int cs_members = 0, ee_members = 0;
  for (const Tuple& t : target.TuplesCopy(empt)) {
    if (t[1] == cs_key) ++cs_members;
    if (t[1] == ee_key) ++ee_members;
  }
  EXPECT_EQ(cs_members, 2);
  EXPECT_EQ(ee_members, 1);
}

TEST(NestedTest, InvertedNestedMappingRecoversMembership) {
  // The §5.1 punchline: nested mapping → plain SO-tgd → PolySOInverse.
  // After the round trip, the department-membership join survives even
  // though the invented keys are gone.
  SOTgdMapping so = NestedToPlainSOTgd(DeptEmpMapping()).ValueOrDie();
  SOInverseMapping inverse = PolySOInverse(so).ValueOrDie();
  Instance source = ParseInstance(
      "{ Dept('cs','alice'), Emp('cs','carol'), Emp('cs','dan') }",
      *so.source).ValueOrDie();
  ConjunctiveQuery colleagues = ParseCq(
      "Q(e1,e2) :- Emp(d,e1), Emp(d,e2)").ValueOrDie();
  AnswerSet certain =
      RoundTripCertainSO(so, inverse, source, colleagues).ValueOrDie();
  AnswerSet direct = EvaluateCq(colleagues, source).ValueOrDie();
  EXPECT_EQ(certain.tuples, direct.tuples);
  // Department names are constants in the target (DeptT carries d), so the
  // department projection is recovered exactly as well.
  ConjunctiveQuery depts = ParseCq("Q(d) :- Dept(d,m)").ValueOrDie();
  AnswerSet dept_certain =
      RoundTripCertainSO(so, inverse, source, depts).ValueOrDie();
  AnswerSet dept_direct = EvaluateCq(depts, source).ValueOrDie();
  EXPECT_EQ(dept_certain.tuples, dept_direct.tuples);
}

TEST(NestedTest, DeeperNestingAccumulatesPremises) {
  // Three levels: Org -> Dept -> Emp, with a shared org key at every level.
  NestedRule emp;
  emp.premise = {Atom::Vars("E", {"d", "e"})};
  emp.conclusion = {Atom::Vars("ET", {"e", "ok"})};
  NestedRule dept;
  dept.premise = {Atom::Vars("D", {"o", "d"})};
  dept.conclusion = {Atom::Vars("DT", {"d", "ok"})};
  dept.children = {emp};
  NestedRule org;
  org.premise = {Atom::Vars("O", {"o"})};
  org.conclusion = {Atom::Vars("OT", {"o", "ok"})};
  org.children = {dept};
  NestedMapping m(Schema{{"O", 1}, {"D", 2}, {"E", 2}},
                  Schema{{"OT", 2}, {"DT", 2}, {"ET", 2}}, {org});
  SOTgdMapping so = NestedToPlainSOTgd(m).ValueOrDie();
  ASSERT_EQ(so.so.rules.size(), 3u);
  EXPECT_EQ(so.so.rules[0].premise.size(), 1u);
  EXPECT_EQ(so.so.rules[1].premise.size(), 2u);
  EXPECT_EQ(so.so.rules[2].premise.size(), 3u);
  // ok is introduced at the org level: every level carries f(o) with the
  // same unary function.
  const Term& k0 = so.so.rules[0].conclusion[0].terms[1];
  const Term& k1 = so.so.rules[1].conclusion[0].terms[1];
  const Term& k2 = so.so.rules[2].conclusion[0].terms[1];
  ASSERT_TRUE(k0.is_function());
  EXPECT_EQ(k0.args().size(), 1u);
  EXPECT_EQ(k0, k1);
  EXPECT_EQ(k1, k2);
}

TEST(NestedTest, ChildOnlyExistentialGetsChildLevelSkolem) {
  // An existential introduced by a child depends on the child's premise
  // variables too.
  NestedRule child;
  child.premise = {Atom::Vars("E", {"d", "e"})};
  child.conclusion = {Atom::Vars("ET", {"e", "badge"})};
  NestedRule root;
  root.premise = {Atom::Vars("D", {"d"})};
  root.conclusion = {Atom::Vars("DT", {"d"})};
  root.children = {child};
  NestedMapping m(Schema{{"D", 1}, {"E", 2}}, Schema{{"DT", 1}, {"ET", 2}},
                  {root});
  SOTgdMapping so = NestedToPlainSOTgd(m).ValueOrDie();
  const Term& badge = so.so.rules[1].conclusion[0].terms[1];
  ASSERT_TRUE(badge.is_function());
  EXPECT_EQ(badge.args().size(), 2u);  // d (shared), e — deduplicated path vars
}

}  // namespace
}  // namespace mapinv
