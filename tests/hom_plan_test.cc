// Differential property tests for the compiled join-plan kernel: the
// compiled path (ForEachHom / ForEachHomWithPlan) must enumerate exactly the
// same homomorphism multiset as the retained reference interpreter
// (ForEachHomReference) on every input — random conjunctions and instances
// from mapgen, side constraints, fixed assignments, error contracts and
// early-stop semantics included.

#include <gtest/gtest.h>

#include <algorithm>
#include <random>
#include <string>
#include <vector>

#include "engine/execution_options.h"
#include "eval/hom.h"
#include "eval/hom_plan.h"
#include "mapgen/generators.h"

namespace mapinv {
namespace {

// Canonical rendering of an assignment multiset, order-insensitive.
std::vector<std::string> Canon(const std::vector<Assignment>& homs) {
  std::vector<std::string> out;
  out.reserve(homs.size());
  for (const Assignment& h : homs) {
    std::vector<std::pair<VarId, std::string>> items;
    items.reserve(h.size());
    for (const auto& [v, val] : h) items.emplace_back(v, val.ToString());
    std::sort(items.begin(), items.end());
    std::string s;
    for (const auto& [v, val] : items) {
      s += std::to_string(v) + "=" + val + ";";
    }
    out.push_back(std::move(s));
  }
  std::sort(out.begin(), out.end());
  return out;
}

// Runs both kernels over the same input and asserts identical outcome:
// same status code, and on success the same homomorphism multiset.
void ExpectSameHoms(const HomSearch& search, const std::vector<Atom>& atoms,
                    const HomConstraints& constraints,
                    const Assignment& fixed) {
  std::vector<Assignment> compiled;
  std::vector<Assignment> reference;
  Status sc = search.ForEachHom(atoms, constraints, fixed,
                                [&](const Assignment& h) {
                                  compiled.push_back(h);
                                  return true;
                                });
  Status sr = search.ForEachHomReference(atoms, constraints, fixed,
                                         [&](const Assignment& h) {
                                           reference.push_back(h);
                                           return true;
                                         });
  ASSERT_EQ(sc.code(), sr.code()) << sc.ToString() << " vs " << sr.ToString();
  if (!sc.ok()) return;
  EXPECT_EQ(Canon(compiled), Canon(reference));
}

TEST(HomPlanDifferentialTest, RandomMappingsAndInstances) {
  // Sweep over shapes: wide premises, repeated variables (small variable
  // pools), several relations. Premises of random tgds serve as the
  // conjunctions; the constraints and fixed assignments are derived
  // deterministically per round below.
  const int kShapes[][3] = {
      // {premise_atoms, premise_vars, arity}
      {1, 2, 2}, {2, 3, 2}, {3, 3, 2}, {3, 5, 3}, {4, 4, 2}, {5, 6, 3},
  };
  for (const auto& shape : kShapes) {
    for (uint64_t seed = 1; seed <= 5; ++seed) {
      RandomMappingConfig config;
      config.seed = seed;
      config.num_tgds = 3;
      config.source_relations = 3;
      config.premise_atoms = shape[0];
      config.premise_vars = shape[1];
      config.arity = shape[2];
      TgdMapping mapping = GenerateRandomMapping(config);
      Instance inst = GenerateInstance(*mapping.source, /*tuples=*/24,
                                       /*domain=*/6, /*seed=*/seed * 7 + 1);
      HomSearch search(inst);
      std::mt19937_64 rng(seed * 1000003 + shape[0]);
      for (const Tgd& tgd : mapping.tgds) {
        std::vector<VarId> vars = CollectDistinctVars(tgd.premise);
        // Plain.
        ExpectSameHoms(search, tgd.premise, HomConstraints{}, Assignment{});
        // With constraints: constrain ~half the variables to constants and
        // add a couple of inequalities (including possibly x != x).
        HomConstraints constraints;
        for (VarId v : vars) {
          if (rng() % 2 == 0) constraints.constant_vars.insert(v);
        }
        for (int i = 0; i < 2 && !vars.empty(); ++i) {
          constraints.inequalities.emplace_back(vars[rng() % vars.size()],
                                                vars[rng() % vars.size()]);
        }
        ExpectSameHoms(search, tgd.premise, constraints, Assignment{});
        // With a fixed assignment: bind one variable to a value drawn from
        // the active domain (may yield zero homomorphisms — also a case the
        // two kernels must agree on).
        std::vector<Value> domain = inst.ActiveDomain();
        if (!vars.empty() && !domain.empty()) {
          Assignment fixed;
          fixed.emplace(vars[rng() % vars.size()],
                        domain[rng() % domain.size()]);
          ExpectSameHoms(search, tgd.premise, constraints, fixed);
          ExpectSameHoms(search, tgd.premise, HomConstraints{}, fixed);
        }
      }
    }
  }
}

TEST(HomPlanDifferentialTest, RepeatedVariablesAndConstants) {
  Instance inst(Schema{{"R", 2}, {"S", 3}});
  ASSERT_TRUE(inst.AddInts("R", {1, 1}).ok());
  ASSERT_TRUE(inst.AddInts("R", {1, 2}).ok());
  ASSERT_TRUE(inst.AddInts("R", {2, 2}).ok());
  ASSERT_TRUE(inst.AddInts("S", {1, 1, 2}).ok());
  ASSERT_TRUE(inst.AddInts("S", {2, 2, 2}).ok());
  ASSERT_TRUE(inst.AddInts("S", {1, 2, 1}).ok());
  HomSearch search(inst);
  ExpectSameHoms(search, {Atom::Vars("R", {"x", "x"})}, HomConstraints{},
                 Assignment{});
  ExpectSameHoms(search, {Atom::Vars("S", {"x", "x", "y"})}, HomConstraints{},
                 Assignment{});
  ExpectSameHoms(search,
                 {Atom::Vars("R", {"x", "y"}), Atom::Vars("S", {"y", "y", "x"})},
                 HomConstraints{}, Assignment{});
  Atom with_const("S", {Term::Const(Value::Int(1)), Term::Var("a"),
                        Term::Var("b")});
  ExpectSameHoms(search, {with_const, Atom::Vars("R", {"a", "b"})},
                 HomConstraints{}, Assignment{});
}

TEST(HomPlanDifferentialTest, NullsAndConstantVarConstraint) {
  Instance inst(Schema{{"R", 2}});
  ASSERT_TRUE(inst.AddInts("R", {1, 2}).ok());
  Value null = Value::NullWithLabel(7);
  ASSERT_TRUE(inst.AddTuple(0, {Value::Int(1), null}).ok());
  HomSearch search(inst);
  HomConstraints constraints;
  constraints.constant_vars.insert(InternVar("y"));
  ExpectSameHoms(search, {Atom::Vars("R", {"x", "y"})}, constraints,
                 Assignment{});
  // A fixed null binding under the constant constraint rejects everything
  // at init on both paths.
  Assignment fixed_null;
  fixed_null.emplace(InternVar("y"), null);
  ExpectSameHoms(search, {Atom::Vars("R", {"x", "y"})}, constraints,
                 fixed_null);
}

TEST(HomPlanDifferentialTest, ErrorContracts) {
  Instance inst(Schema{{"R", 2}});
  ASSERT_TRUE(inst.AddInts("R", {1, 2}).ok());
  HomSearch search(inst);
  // Unknown relation -> kNotFound on both paths.
  ExpectSameHoms(search, {Atom::Vars("Q", {"x", "y"})}, HomConstraints{},
                 Assignment{});
  Status missing = search.ForEachHom({Atom::Vars("Q", {"x", "y"})},
                                     HomConstraints{}, Assignment{},
                                     [](const Assignment&) { return true; });
  EXPECT_EQ(missing.code(), StatusCode::kNotFound);
  // Arity mismatch -> kMalformed on both paths.
  ExpectSameHoms(search, {Atom::Vars("R", {"x", "y", "z"})}, HomConstraints{},
                 Assignment{});
  // Function term -> kMalformed on both paths.
  Atom fn_atom("R", {Term::Var("x"),
                     Term::Fn("f", {Term::Var("x")})});
  ExpectSameHoms(search, {fn_atom}, HomConstraints{}, Assignment{});
  Status fn = search.ForEachHom({fn_atom}, HomConstraints{}, Assignment{},
                                [](const Assignment&) { return true; });
  EXPECT_EQ(fn.code(), StatusCode::kMalformed);
}

TEST(HomPlanDifferentialTest, EarlyStopSemantics) {
  Instance inst(Schema{{"R", 2}, {"S", 2}});
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(inst.AddInts("R", {i, i + 1}).ok());
    ASSERT_TRUE(inst.AddInts("S", {i + 1, i + 2}).ok());
  }
  HomSearch search(inst);
  const std::vector<Atom> atoms = {Atom::Vars("R", {"x", "y"}),
                                   Atom::Vars("S", {"y", "z"})};
  // Stopping after k answers yields exactly the first k of the full
  // compiled enumeration (the compiled order is deterministic).
  std::vector<Assignment> full;
  ASSERT_TRUE(search
                  .ForEachHom(atoms, HomConstraints{}, Assignment{},
                              [&](const Assignment& h) {
                                full.push_back(h);
                                return true;
                              })
                  .ok());
  ASSERT_GT(full.size(), 3u);
  for (size_t k : {size_t{1}, size_t{3}}) {
    std::vector<Assignment> prefix;
    ASSERT_TRUE(search
                    .ForEachHom(atoms, HomConstraints{}, Assignment{},
                                [&](const Assignment& h) {
                                  prefix.push_back(h);
                                  return prefix.size() < k;
                                })
                    .ok());
    ASSERT_EQ(prefix.size(), k);
    EXPECT_EQ(Canon(prefix),
              Canon({full.begin(), full.begin() + static_cast<long>(k)}));
  }
  // And any stopped-at answer is a member of the reference's full set.
  auto exists = search.ExistsHom(atoms, HomConstraints{});
  ASSERT_TRUE(exists.ok());
  EXPECT_TRUE(*exists);
}

TEST(HomPlanDifferentialTest, InstanceGrowthIsPickedUp) {
  Instance inst(Schema{{"R", 2}, {"S", 2}});
  ASSERT_TRUE(inst.AddInts("R", {1, 2}).ok());
  ASSERT_TRUE(inst.AddInts("S", {2, 3}).ok());
  HomSearch search(inst);
  const std::vector<Atom> atoms = {Atom::Vars("R", {"x", "y"}),
                                   Atom::Vars("S", {"y", "z"})};
  ExpectSameHoms(search, atoms, HomConstraints{}, Assignment{});
  // Grow the instance: the cached plan's indexes must catch up.
  ASSERT_TRUE(inst.AddInts("R", {1, 5}).ok());
  ASSERT_TRUE(inst.AddInts("S", {5, 6}).ok());
  ExpectSameHoms(search, atoms, HomConstraints{}, Assignment{});
}

TEST(HomPlanDifferentialTest, BucketIntersectionPath) {
  // Two bound positions with large buckets: position-0 bucket of R under x,
  // and position-1 bucket under y, both > the intersection threshold, so
  // the executor takes the set_intersection path.
  Instance inst(Schema{{"A", 2}, {"R", 2}});
  ASSERT_TRUE(inst.AddInts("A", {1, 2}).ok());
  for (int i = 0; i < 200; ++i) {
    ASSERT_TRUE(inst.AddInts("R", {1, i}).ok());     // big bucket for x=1
    ASSERT_TRUE(inst.AddInts("R", {i + 2, 2}).ok()); // big bucket for y=2
  }
  ASSERT_TRUE(inst.AddInts("R", {1, 2}).ok());  // the single joint match
  HomSearch search(inst);
  const std::vector<Atom> atoms = {Atom::Vars("A", {"x", "y"}),
                                   Atom::Vars("R", {"x", "y"})};
  ExpectSameHoms(search, atoms, HomConstraints{}, Assignment{});
  std::vector<Assignment> homs;
  ASSERT_TRUE(search
                  .ForEachHom(atoms, HomConstraints{}, Assignment{},
                              [&](const Assignment& h) {
                                homs.push_back(h);
                                return true;
                              })
                  .ok());
  ASSERT_EQ(homs.size(), 1u);
  EXPECT_EQ(homs[0].at(InternVar("x")), Value::Int(1));
  EXPECT_EQ(homs[0].at(InternVar("y")), Value::Int(2));
}

TEST(HomPlanTest, PlanIsCachedAndCountersFlow) {
  Instance inst(Schema{{"R", 2}, {"S", 2}});
  ASSERT_TRUE(inst.AddInts("R", {1, 2}).ok());
  ASSERT_TRUE(inst.AddInts("S", {2, 3}).ok());
  HomSearch search(inst);
  ExecStats stats;
  search.set_stats(&stats);
  const std::vector<Atom> atoms = {Atom::Vars("R", {"x", "y"}),
                                   Atom::Vars("S", {"y", "z"})};
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(search
                    .ForEachHom(atoms, HomConstraints{}, Assignment{},
                                [](const Assignment&) { return true; })
                    .ok());
  }
  // One compilation, three searches; the (default) vectorized executor
  // reports its inner-loop work through the vector_* counters.
  EXPECT_EQ(stats.hom_plans_compiled.load(), 1u);
  EXPECT_EQ(stats.hom_searches.load(), 3u);
  EXPECT_GT(stats.vector_blocks_scanned.load(), 0u);
  EXPECT_GT(stats.vector_rows_scanned.load(), 0u);
  EXPECT_GT(stats.vector_rows_selected.load(), 0u);

  // The scalar executor (vector_batch == 0) books the classic per-candidate
  // counters instead, against the same cached plan.
  search.set_vector_batch(0);
  ASSERT_TRUE(search
                  .ForEachHom(atoms, HomConstraints{}, Assignment{},
                              [](const Assignment&) { return true; })
                  .ok());
  search.set_vector_batch(1024);
  EXPECT_EQ(stats.hom_plans_compiled.load(), 1u);
  EXPECT_EQ(stats.hom_searches.load(), 4u);
  EXPECT_GT(stats.hom_bucket_candidates.load(), 0u);
  EXPECT_GT(stats.hom_slot_bindings.load(), 0u);

  // A different bound-variable set is a different plan.
  Assignment fixed;
  fixed.emplace(InternVar("x"), Value::Int(1));
  ASSERT_TRUE(search
                  .ForEachHom(atoms, HomConstraints{}, fixed,
                              [](const Assignment&) { return true; })
                  .ok());
  EXPECT_EQ(stats.hom_plans_compiled.load(), 2u);

  // GetPlan returns the identical cached object.
  auto p1 = search.GetPlan(atoms, HomConstraints{});
  auto p2 = search.GetPlan(atoms, HomConstraints{});
  ASSERT_TRUE(p1.ok());
  ASSERT_TRUE(p2.ok());
  EXPECT_EQ(p1.ValueOrDie().get(), p2.ValueOrDie().get());
}

TEST(HomPlanTest, CompiledOrderPrefersSmallerRelationOnTies) {
  // Both atoms have zero bound positions up front; the plan must start with
  // the smaller relation (Small) even though Big comes first in the
  // conjunction.
  Instance inst(Schema{{"Big", 1}, {"Small", 1}});
  for (int i = 0; i < 10; ++i) ASSERT_TRUE(inst.AddInts("Big", {i}).ok());
  ASSERT_TRUE(inst.AddInts("Small", {3}).ok());
  HomSearch search(inst);
  auto plan = search.GetPlan(
      {Atom::Vars("Big", {"x"}), Atom::Vars("Small", {"y"})},
      HomConstraints{});
  ASSERT_TRUE(plan.ok());
  const HomPlan& p = *plan.ValueOrDie();
  ASSERT_EQ(p.steps.size(), 2u);
  EXPECT_EQ(p.steps[0].atom_index, 1u);  // Small first
  EXPECT_EQ(p.steps[1].atom_index, 0u);
}

}  // namespace
}  // namespace mapinv
