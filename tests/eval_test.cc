// Unit tests for the eval layer: homomorphism search, query evaluation,
// containment and minimisation.

#include <gtest/gtest.h>

#include "eval/containment.h"
#include "eval/hom.h"
#include "eval/query_eval.h"

namespace mapinv {
namespace {

Instance JoinInstance() {
  // The running instance from Example 3.1: { R(1,2), R(3,4), S(2,5) }.
  Instance inst(Schema{{"R", 2}, {"S", 2}});
  EXPECT_TRUE(inst.AddInts("R", {1, 2}).ok());
  EXPECT_TRUE(inst.AddInts("R", {3, 4}).ok());
  EXPECT_TRUE(inst.AddInts("S", {2, 5}).ok());
  return inst;
}

TEST(HomSearchTest, EnumeratesAllHomomorphisms) {
  Instance inst = JoinInstance();
  HomSearch search(inst);
  int count = 0;
  ASSERT_TRUE(search
                  .ForEachHom({Atom::Vars("R", {"x", "y"})}, HomConstraints{},
                              Assignment{},
                              [&](const Assignment& h) {
                                EXPECT_EQ(h.size(), 2u);
                                ++count;
                                return true;
                              })
                  .ok());
  EXPECT_EQ(count, 2);
}

TEST(HomSearchTest, JoinAcrossAtoms) {
  Instance inst = JoinInstance();
  HomSearch search(inst);
  std::vector<Assignment> homs;
  ASSERT_TRUE(search
                  .ForEachHom({Atom::Vars("R", {"x", "y"}),
                               Atom::Vars("S", {"y", "z"})},
                              HomConstraints{}, Assignment{},
                              [&](const Assignment& h) {
                                homs.push_back(h);
                                return true;
                              })
                  .ok());
  ASSERT_EQ(homs.size(), 1u);  // only R(1,2) joins S(2,5)
  EXPECT_EQ(homs[0].at(InternVar("x")), Value::Int(1));
  EXPECT_EQ(homs[0].at(InternVar("z")), Value::Int(5));
}

TEST(HomSearchTest, RepeatedVariableForcesEqualColumns) {
  Instance inst(Schema{{"P", 2}});
  ASSERT_TRUE(inst.AddInts("P", {1, 1}).ok());
  ASSERT_TRUE(inst.AddInts("P", {1, 2}).ok());
  HomSearch search(inst);
  int count = 0;
  ASSERT_TRUE(search
                  .ForEachHom({Atom::Vars("P", {"x", "x"})}, HomConstraints{},
                              Assignment{},
                              [&](const Assignment&) {
                                ++count;
                                return true;
                              })
                  .ok());
  EXPECT_EQ(count, 1);
}

TEST(HomSearchTest, ConstantTermsMatchExactly) {
  Instance inst = JoinInstance();
  HomSearch search(inst);
  Atom a("R", {Term::Const(Value::Int(3)), Term::Var("y")});
  auto exists = search.ExistsHom({a}, HomConstraints{});
  ASSERT_TRUE(exists.ok());
  EXPECT_TRUE(*exists);
  Atom b("R", {Term::Const(Value::Int(9)), Term::Var("y")});
  EXPECT_FALSE(*search.ExistsHom({b}, HomConstraints{}));
}

TEST(HomSearchTest, ConstantConstraintFiltersNulls) {
  Instance inst(Schema{{"T", 2}});
  Value null = Value::FreshNull();
  ASSERT_TRUE(inst.Add("T", {Value::Int(1), null}).ok());
  HomSearch search(inst);
  HomConstraints constraints;
  constraints.constant_vars.insert(InternVar("y"));
  EXPECT_FALSE(
      *search.ExistsHom({Atom::Vars("T", {"x", "y"})}, constraints));
  HomConstraints only_x;
  only_x.constant_vars.insert(InternVar("x"));
  EXPECT_TRUE(*search.ExistsHom({Atom::Vars("T", {"x", "y"})}, only_x));
}

TEST(HomSearchTest, InequalityConstraint) {
  Instance inst(Schema{{"P", 2}});
  ASSERT_TRUE(inst.AddInts("P", {1, 1}).ok());
  HomSearch search(inst);
  HomConstraints constraints;
  constraints.inequalities = {{InternVar("x"), InternVar("y")}};
  EXPECT_FALSE(
      *search.ExistsHom({Atom::Vars("P", {"x", "y"})}, constraints));
  ASSERT_TRUE(inst.AddInts("P", {1, 2}).ok());
  HomSearch search2(inst);
  EXPECT_TRUE(
      *search2.ExistsHom({Atom::Vars("P", {"x", "y"})}, constraints));
}

TEST(HomSearchTest, FixedBindingsRespected) {
  Instance inst = JoinInstance();
  HomSearch search(inst);
  Assignment fixed{{InternVar("x"), Value::Int(3)}};
  std::vector<Assignment> homs;
  ASSERT_TRUE(search
                  .ForEachHom({Atom::Vars("R", {"x", "y"})}, HomConstraints{},
                              fixed,
                              [&](const Assignment& h) {
                                homs.push_back(h);
                                return true;
                              })
                  .ok());
  ASSERT_EQ(homs.size(), 1u);
  EXPECT_EQ(homs[0].at(InternVar("y")), Value::Int(4));
}

TEST(HomSearchTest, FunctionTermRejected) {
  Instance inst = JoinInstance();
  HomSearch search(inst);
  Atom a("R", {Term::Fn("f", {Term::Var("x")}), Term::Var("y")});
  EXPECT_EQ(search.ExistsHom({a}, HomConstraints{}).status().code(),
            StatusCode::kMalformed);
}

TEST(InstanceHomTest, NullsMapFreely) {
  Schema s{{"T", 2}};
  Instance a(s);
  Instance b(s);
  Value null = Value::FreshNull();
  ASSERT_TRUE(a.Add("T", {Value::Int(1), null}).ok());
  ASSERT_TRUE(b.AddInts("T", {1, 7}).ok());
  EXPECT_TRUE(*InstanceHomExists(a, b));   // null -> 7
  EXPECT_FALSE(*InstanceHomExists(b, a));  // 7 is a constant, can't move
}

TEST(InstanceHomTest, EquivalenceOfRenamedNulls) {
  Schema s{{"T", 2}};
  Instance a(s);
  Instance b(s);
  ASSERT_TRUE(a.Add("T", {Value::Int(1), Value::FreshNull()}).ok());
  ASSERT_TRUE(b.Add("T", {Value::Int(1), Value::FreshNull()}).ok());
  EXPECT_TRUE(*InstancesHomEquivalent(a, b));
}

TEST(InstanceHomTest, SharedNullStructureMatters) {
  Schema s{{"T", 2}};
  Instance a(s);
  Value n = Value::FreshNull();
  ASSERT_TRUE(a.Add("T", {Value::Int(1), n}).ok());
  ASSERT_TRUE(a.Add("T", {n, Value::Int(1)}).ok());
  Instance b(s);
  ASSERT_TRUE(b.Add("T", {Value::Int(1), Value::FreshNull()}).ok());
  ASSERT_TRUE(b.Add("T", {Value::FreshNull(), Value::Int(1)}).ok());
  EXPECT_TRUE(*InstanceHomExists(b, a));
  EXPECT_FALSE(*InstanceHomExists(a, b));  // a's shared null needs one value
}

TEST(EvalCqTest, ProjectionAndDeduplication) {
  Instance inst = JoinInstance();
  ConjunctiveQuery q;
  q.head = {InternVar("x")};
  q.atoms = {Atom::Vars("R", {"x", "y"})};
  AnswerSet ans = *EvaluateCq(q, inst);
  EXPECT_EQ(ans.tuples.size(), 2u);
  EXPECT_TRUE(ans.Contains({Value::Int(1)}));
  EXPECT_TRUE(ans.Contains({Value::Int(3)}));
}

TEST(EvalCqTest, JoinQueryFromExample33) {
  // Q(x,y) :- R(x,z), S(z,y) over { R(1,2), R(3,4), S(2,5) } = { (1,5) }.
  Instance inst = JoinInstance();
  ConjunctiveQuery q;
  q.head = {InternVar("x"), InternVar("y")};
  q.atoms = {Atom::Vars("R", {"x", "z"}), Atom::Vars("S", {"z", "y"})};
  AnswerSet ans = *EvaluateCq(q, inst);
  ASSERT_EQ(ans.tuples.size(), 1u);
  EXPECT_EQ(ans.tuples[0], Tuple({Value::Int(1), Value::Int(5)}));
}

TEST(EvalCqTest, CertainOnlyDropsNullTuples) {
  Instance inst(Schema{{"T", 2}});
  ASSERT_TRUE(inst.Add("T", {Value::Int(1), Value::FreshNull()}).ok());
  ASSERT_TRUE(inst.AddInts("T", {2, 3}).ok());
  ConjunctiveQuery q;
  q.head = {InternVar("x"), InternVar("y")};
  q.atoms = {Atom::Vars("T", {"x", "y"})};
  AnswerSet all = *EvaluateCq(q, inst);
  EXPECT_EQ(all.tuples.size(), 2u);
  EXPECT_EQ(all.CertainOnly().tuples.size(), 1u);
}

TEST(EvalUnionCqTest, PaperRewritingExampleSemantics) {
  // Q'(x,y) = A(x,y) ∨ (B(x) ∧ x = y): the Section 4 rewriting example.
  Schema s{{"A", 2}, {"B", 1}};
  Instance inst(s);
  ASSERT_TRUE(inst.AddInts("A", {1, 2}).ok());
  ASSERT_TRUE(inst.AddInts("B", {7}).ok());
  UnionCq u;
  u.head = {InternVar("x"), InternVar("y")};
  CqDisjunct d1;
  d1.atoms = {Atom::Vars("A", {"x", "y"})};
  CqDisjunct d2;
  d2.atoms = {Atom::Vars("B", {"x"})};
  d2.equalities = {{InternVar("x"), InternVar("y")}};
  u.disjuncts = {d1, d2};
  ASSERT_TRUE(u.Validate(s).ok());
  AnswerSet ans = *EvaluateUnionCq(u, inst);
  EXPECT_EQ(ans.tuples.size(), 2u);
  EXPECT_TRUE(ans.Contains({Value::Int(1), Value::Int(2)}));
  EXPECT_TRUE(ans.Contains({Value::Int(7), Value::Int(7)}));
}

TEST(AnswerSetTest, SetOperations) {
  AnswerSet a = MakeAnswerSet({{Value::Int(1)}, {Value::Int(2)}});
  AnswerSet b = MakeAnswerSet({{Value::Int(2)}, {Value::Int(3)}});
  AnswerSet inter = a.Intersect(b);
  ASSERT_EQ(inter.tuples.size(), 1u);
  EXPECT_TRUE(inter.Contains({Value::Int(2)}));
  EXPECT_TRUE(inter.SubsetOf(a));
  EXPECT_FALSE(a.SubsetOf(b));
}

TEST(ContainmentTest, MoreConstrainedIsContained) {
  // Q1(x) :- R(x,x)  ⊆  Q2(x) :- R(x,y), but not conversely.
  ConjunctiveQuery q1;
  q1.head = {InternVar("x")};
  q1.atoms = {Atom::Vars("R", {"x", "x"})};
  ConjunctiveQuery q2;
  q2.head = {InternVar("x")};
  q2.atoms = {Atom::Vars("R", {"x", "y"})};
  EXPECT_TRUE(*CqContainedIn(q1, q2));
  EXPECT_FALSE(*CqContainedIn(q2, q1));
}

TEST(ContainmentTest, LongerPathContainedInShorter) {
  // Path of length 2 from x ⊆ path of length 1 from x? No. Reverse? No.
  // But x with both edges ⊆ x with one edge.
  ConjunctiveQuery both;
  both.head = {InternVar("x")};
  both.atoms = {Atom::Vars("E", {"x", "y"}), Atom::Vars("E", {"y", "z"})};
  ConjunctiveQuery one;
  one.head = {InternVar("x")};
  one.atoms = {Atom::Vars("E", {"x", "y"})};
  EXPECT_TRUE(*CqContainedIn(both, one));
  EXPECT_FALSE(*CqContainedIn(one, both));
}

TEST(ContainmentTest, ArityMismatchIsAnError) {
  ConjunctiveQuery q1;
  q1.head = {InternVar("x")};
  q1.atoms = {Atom::Vars("R", {"x", "y"})};
  ConjunctiveQuery q2;
  q2.head = {InternVar("x"), InternVar("y")};
  q2.atoms = {Atom::Vars("R", {"x", "y"})};
  EXPECT_FALSE(CqContainedIn(q1, q2).ok());
}

TEST(DisjunctContainmentTest, EqualityMakesDisjunctMoreSpecific) {
  std::vector<VarId> head = {InternVar("x"), InternVar("y")};
  CqDisjunct general;
  general.atoms = {Atom::Vars("A", {"x", "y"})};
  CqDisjunct specific;
  specific.atoms = {Atom::Vars("A", {"x", "y"})};
  specific.equalities = {{InternVar("x"), InternVar("y")}};
  EXPECT_TRUE(*DisjunctContainedIn(head, specific, general));
  EXPECT_FALSE(*DisjunctContainedIn(head, general, specific));
}

TEST(MinimizeUnionCqTest, DropsSubsumedDisjuncts) {
  UnionCq u;
  u.head = {InternVar("x")};
  CqDisjunct narrow;
  narrow.atoms = {Atom::Vars("R", {"x", "x"})};
  CqDisjunct wide;
  wide.atoms = {Atom::Vars("R", {"x", "y"})};
  u.disjuncts = {narrow, wide};
  UnionCq m = *MinimizeUnionCq(u);
  ASSERT_EQ(m.disjuncts.size(), 1u);
  EXPECT_EQ(m.disjuncts[0], wide);
}

TEST(MinimizeUnionCqTest, KeepsIncomparableDisjuncts) {
  UnionCq u;
  u.head = {InternVar("x")};
  CqDisjunct a;
  a.atoms = {Atom::Vars("A", {"x"})};
  CqDisjunct b;
  b.atoms = {Atom::Vars("B", {"x"})};
  u.disjuncts = {a, b};
  EXPECT_EQ(MinimizeUnionCq(u)->disjuncts.size(), 2u);
}

TEST(MinimizeUnionCqTest, DeduplicatesEquivalentDisjunctsKeepingFirst) {
  UnionCq u;
  u.head = {InternVar("x")};
  CqDisjunct a;
  a.atoms = {Atom::Vars("A", {"x"})};
  CqDisjunct a2;
  a2.atoms = {Atom::Vars("A", {"x"}), Atom::Vars("A", {"x"})};
  u.disjuncts = {a, a2};
  UnionCq m = *MinimizeUnionCq(u);
  ASSERT_EQ(m.disjuncts.size(), 1u);
  EXPECT_EQ(m.disjuncts[0], a);
}

TEST(CoreTest, RedundantAtomRemoved) {
  // Q(x) :- R(x,y), R(x,z) has core Q(x) :- R(x,y).
  ConjunctiveQuery q;
  q.head = {InternVar("x")};
  q.atoms = {Atom::Vars("R", {"x", "y"}), Atom::Vars("R", {"x", "z"})};
  ConjunctiveQuery core = *CoreOfCq(q);
  EXPECT_EQ(core.atoms.size(), 1u);
}

TEST(CoreTest, NonRedundantQueryUntouched) {
  ConjunctiveQuery q;
  q.head = {InternVar("x")};
  q.atoms = {Atom::Vars("R", {"x", "y"}), Atom::Vars("S", {"y", "z"})};
  EXPECT_EQ(CoreOfCq(q)->atoms.size(), 2u);
}

}  // namespace
}  // namespace mapinv
