// Tests for the text syntax: lexer and parser.

#include <gtest/gtest.h>

#include "parser/lexer.h"
#include "parser/parser.h"

namespace mapinv {
namespace {

TEST(LexerTest, TokenKindsAndPositions) {
  auto tokens = Lex("R(x,y) -> T(x)\nQ(x) :- A(x) | B(x), x = y, x != z");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ(tokens->front().kind, TokenKind::kIdent);
  EXPECT_EQ(tokens->front().text, "R");
  EXPECT_EQ(tokens->back().kind, TokenKind::kEnd);
  int separators = 0;
  for (const Token& t : *tokens) {
    if (t.kind == TokenKind::kSeparator) ++separators;
  }
  EXPECT_EQ(separators, 1);
}

TEST(LexerTest, CommentsAndStrings) {
  auto tokens = Lex("# a comment\nR('ann', 42)  # trailing");
  ASSERT_TRUE(tokens.ok());
  ASSERT_GE(tokens->size(), 6u);
  EXPECT_EQ((*tokens)[2].kind, TokenKind::kString);
  EXPECT_EQ((*tokens)[2].text, "ann");
  EXPECT_EQ((*tokens)[4].kind, TokenKind::kNumber);
}

TEST(LexerTest, Errors) {
  EXPECT_EQ(Lex("R(x) @ T(x)").status().code(), StatusCode::kParseError);
  EXPECT_EQ(Lex("'unterminated").status().code(), StatusCode::kParseError);
  EXPECT_EQ(Lex("a - b").status().code(), StatusCode::kParseError);
  EXPECT_EQ(Lex("a ! b").status().code(), StatusCode::kParseError);
  EXPECT_EQ(Lex("a : b").status().code(), StatusCode::kParseError);
}

TEST(ParseTgdMappingTest, JoinMapping) {
  auto m = ParseTgdMapping("R(x,y), S(y,z) -> T(x,z)");
  ASSERT_TRUE(m.ok()) << m.status().ToString();
  EXPECT_EQ(m->tgds.size(), 1u);
  EXPECT_EQ(m->source->size(), 2u);
  EXPECT_EQ(m->target->size(), 1u);
  EXPECT_EQ(m->tgds[0].ToString(), "R(x,y), S(y,z) -> T(x,z)");
}

TEST(ParseTgdMappingTest, ExistentialsAndMultipleStatements) {
  auto m = ParseTgdMapping(R"(
    # two tgds
    R(x,y) -> EXISTS u . T(x,u)
    S(x)   -> T(x,x)
  )");
  ASSERT_TRUE(m.ok()) << m.status().ToString();
  EXPECT_EQ(m->tgds.size(), 2u);
  EXPECT_EQ(m->tgds[0].ExistentialVars().size(), 1u);
}

TEST(ParseTgdMappingTest, SemicolonSeparators) {
  auto m = ParseTgdMapping("A(x) -> D(x); B(x) -> D(x), E(x)");
  ASSERT_TRUE(m.ok()) << m.status().ToString();
  EXPECT_EQ(m->tgds.size(), 2u);
  EXPECT_EQ(m->tgds[1].conclusion.size(), 2u);
}

TEST(ParseTgdMappingTest, SharedRelationAcrossSidesRejected) {
  EXPECT_EQ(ParseTgdMapping("R(x) -> R(x)").status().code(),
            StatusCode::kParseError);
}

TEST(ParseTgdMappingTest, ArityClashRejected) {
  EXPECT_FALSE(ParseTgdMapping("R(x) -> T(x)\nR(x,y) -> T(y)").ok());
}

TEST(ParseTgdMappingTest, ConstraintsRejectedInTgds) {
  EXPECT_FALSE(ParseTgdMapping("R(x,y), x != y -> T(x)").ok());
  EXPECT_FALSE(ParseTgdMapping("R(x,y), C(x) -> T(x)").ok());
}

TEST(ParseReverseMappingTest, FullInverseLanguage) {
  auto m = ParseReverseMapping(
      "T(x,y), C(x), C(y), x != y -> EXISTS u . R(x,u) | S(x,y), x = y");
  ASSERT_TRUE(m.ok()) << m.status().ToString();
  ASSERT_EQ(m->deps.size(), 1u);
  const ReverseDependency& dep = m->deps[0];
  EXPECT_EQ(dep.constant_vars.size(), 2u);
  EXPECT_EQ(dep.inequalities.size(), 1u);
  ASSERT_EQ(dep.disjuncts.size(), 2u);
  EXPECT_EQ(dep.disjuncts[1].equalities.size(), 1u);
  EXPECT_EQ(
      dep.ToString(),
      "T(x,y), C(x), C(y), x != y -> EXISTS u . R(x,u) | S(x,y), x = y");
}

TEST(ParseReverseMappingTest, RoundTripsThroughToString) {
  const char* text =
      "T(x,y), C(x), C(y), x != y -> EXISTS u . R(x,u) | S(x,y), x = y";
  auto m1 = ParseReverseMapping(text);
  ASSERT_TRUE(m1.ok());
  auto m2 = ParseReverseMapping(m1->ToString());
  ASSERT_TRUE(m2.ok()) << m2.status().ToString();
  EXPECT_EQ(m1->ToString(), m2->ToString());
}

TEST(ParseSOTgdMappingTest, FunctionTerms) {
  auto m = ParseSOTgdMapping("Takes(n,c) -> Enrollment(f(n), c)");
  ASSERT_TRUE(m.ok()) << m.status().ToString();
  ASSERT_EQ(m->so.rules.size(), 1u);
  EXPECT_TRUE(m->so.rules[0].conclusion[0].terms[0].is_function());
}

TEST(ParseSOTgdMappingTest, Rule9) {
  auto m = ParseSOTgdMapping("R(x,y,z) -> T(x, f(y), f(y), g(x,z))");
  ASSERT_TRUE(m.ok()) << m.status().ToString();
  auto fns = m->so.Functions();
  ASSERT_TRUE(fns.ok());
  EXPECT_EQ(fns->size(), 2u);
}

TEST(ParseSOTgdMappingTest, NestedFunctionRejectedByValidation) {
  // Parsed fine, but plain-term validation rejects nesting.
  EXPECT_FALSE(ParseSOTgdMapping("R(x) -> T(g(f(x)))").ok());
}

TEST(ParseQueryTest, UnionWithEqualities) {
  auto q = ParseQuery("Q(x,y) :- A(x,y) | B(x), x = y");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_EQ(q->head.size(), 2u);
  ASSERT_EQ(q->disjuncts.size(), 2u);
  EXPECT_EQ(q->disjuncts[1].equalities.size(), 1u);
}

TEST(ParseQueryTest, CqHelper) {
  auto q = ParseCq("Q(x) :- R(x,y), S(y,z)");
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->atoms.size(), 2u);
  EXPECT_FALSE(ParseCq("Q(x) :- A(x) | B(x)").ok());
}

TEST(ParseQueryTest, BooleanQuery) {
  auto q = ParseQuery("Q() :- R(x,y)");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_TRUE(q->head.empty());
}

TEST(ParseInstanceTest, AgainstSchema) {
  Schema s{{"R", 2}, {"S", 2}};
  auto inst = ParseInstance("{ R(1,2), R(3,4), S(2,5) }", s);
  ASSERT_TRUE(inst.ok()) << inst.status().ToString();
  EXPECT_EQ(inst->ToString(), "{ R(1,2), R(3,4), S(2,5) }");
}

TEST(ParseInstanceTest, InferSchemaWithMixedConstants) {
  auto inst = ParseInstanceInferSchema("{ Takes(ann,'db systems'), Id(7) }");
  ASSERT_TRUE(inst.ok()) << inst.status().ToString();
  EXPECT_EQ(inst->schema().size(), 2u);
  EXPECT_EQ(inst->schema().arity(inst->schema().Find("Takes")), 2u);
}

TEST(ParseInstanceTest, NullLiterals) {
  auto inst = ParseInstanceInferSchema("{ T(1,_N0), T(2,_N0), T(3,_N1) }");
  ASSERT_TRUE(inst.ok()) << inst.status().ToString();
  RelationId t = inst->schema().Find("T");
  ASSERT_EQ(inst->TuplesCopy(t).size(), 3u);
  EXPECT_EQ(inst->TuplesCopy(t)[0][1], inst->TuplesCopy(t)[1][1]);
  EXPECT_NE(inst->TuplesCopy(t)[0][1], inst->TuplesCopy(t)[2][1]);
  EXPECT_FALSE(inst->IsNullFree());
}

TEST(ParseInstanceTest, EmptyInstance) {
  auto inst = ParseInstanceInferSchema("{ }");
  ASSERT_TRUE(inst.ok());
  EXPECT_EQ(inst->TotalSize(), 0u);
}

TEST(ParseInstanceTest, ArityMismatchAgainstSchema) {
  Schema s{{"R", 2}};
  EXPECT_FALSE(ParseInstance("{ R(1) }", s).ok());
}

TEST(ParseErrorTest, HelpfulMessages) {
  Status st = ParseTgdMapping("R(x,y ->").status();
  EXPECT_EQ(st.code(), StatusCode::kParseError);
  EXPECT_NE(st.message().find("line"), std::string::npos);
}

}  // namespace
}  // namespace mapinv
