// Tests for instance cores (eval/instance_core.h).

#include <gtest/gtest.h>

#include "chase/chase_tgd.h"
#include "eval/hom.h"
#include "eval/instance_core.h"
#include "parser/parser.h"

namespace mapinv {
namespace {

TEST(InstanceCoreTest, NullFreeInstanceIsItsOwnCore) {
  Instance inst = ParseInstanceInferSchema("{ R(1,2), R(3,4) }").ValueOrDie();
  EXPECT_TRUE(*IsCore(inst));
  Instance core = CoreOfInstance(inst).ValueOrDie();
  EXPECT_TRUE(core.EqualTo(inst));
}

TEST(InstanceCoreTest, RedundantNullFoldsOntoConstant) {
  // { R(1,2), R(1,_N) }: the null row is dominated by the constant row.
  Instance inst =
      ParseInstanceInferSchema("{ R(1,2), R(1,_N0) }").ValueOrDie();
  EXPECT_FALSE(*IsCore(inst));
  Instance core = CoreOfInstance(inst).ValueOrDie();
  EXPECT_EQ(core.ToString(), "{ R(1,2) }");
}

TEST(InstanceCoreTest, LinkedNullsSurvive) {
  // { R(1,_N0), S(_N0,2) }: the null carries join information — no fold.
  Instance inst =
      ParseInstanceInferSchema("{ R(1,_N0), S(_N0,2) }").ValueOrDie();
  EXPECT_TRUE(*IsCore(inst));
}

TEST(InstanceCoreTest, ParallelNullChainsCollapse) {
  // Two parallel null chains from 1 to 2 fold into one.
  Instance inst = ParseInstanceInferSchema(
      "{ R(1,_N0), S(_N0,2), R(1,_N1), S(_N1,2) }").ValueOrDie();
  EXPECT_FALSE(*IsCore(inst));
  Instance core = CoreOfInstance(inst).ValueOrDie();
  EXPECT_EQ(core.TotalSize(), 2u);
  EXPECT_TRUE(*InstancesHomEquivalent(core, inst));
}

TEST(InstanceCoreTest, CoreIsHomEquivalentRetract) {
  Instance inst = ParseInstanceInferSchema(
      "{ E(_N0,_N1), E(_N1,_N2), E(1,1) }").ValueOrDie();
  Instance core = CoreOfInstance(inst).ValueOrDie();
  // The loop E(1,1) absorbs the null path: core = { E(1,1) }.
  EXPECT_EQ(core.ToString(), "{ E(1,1) }");
  EXPECT_TRUE(*InstancesHomEquivalent(core, inst));
  EXPECT_TRUE(core.SubsetOf(inst));
  EXPECT_TRUE(*IsCore(core));
}

TEST(InstanceCoreTest, ObliviousChaseCoresToStandardSize) {
  // The oblivious chase of {A(1), B(1)} under A(x) -> ∃y P(x,y) and
  // B(x) -> P(x,x) produces P(1,_N) and P(1,1); the core drops the null row
  // — matching what the standard chase produces directly.
  TgdMapping m =
      ParseTgdMapping("A(x) -> EXISTS y . P(x,y)\nB(x) -> P(x,x)")
          .ValueOrDie();
  Instance source = ParseInstance("{ A(1), B(1) }", *m.source).ValueOrDie();
  ExecutionOptions oblivious;
  oblivious.oblivious = true;
  Instance naive = ChaseTgds(m, source, oblivious).ValueOrDie();
  EXPECT_EQ(naive.TotalSize(), 2u);
  Instance core = CoreOfInstance(naive).ValueOrDie();
  EXPECT_EQ(core.ToString(), "{ P(1,1) }");
}

TEST(InstanceCoreTest, BlockOfInterchangeableNullsShrinksToOne) {
  // Five facts R(_Ni) are all interchangeable: the core keeps one.
  Instance inst = ParseInstanceInferSchema(
      "{ R(_N0), R(_N1), R(_N2), R(_N3), R(_N4) }").ValueOrDie();
  Instance core = CoreOfInstance(inst).ValueOrDie();
  EXPECT_EQ(core.TotalSize(), 1u);
}

}  // namespace
}  // namespace mapinv
