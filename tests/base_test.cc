// Unit tests for the base layer: Status/Result, interning, fresh symbols.

#include <gtest/gtest.h>

#include <set>
#include <string>
#include <thread>
#include <vector>

#include "base/interner.h"
#include "base/status.h"
#include "base/symbols.h"

namespace mapinv {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
  EXPECT_TRUE(s.message().empty());
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad arity");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad arity");
  EXPECT_EQ(s.ToString(), "invalid-argument: bad arity");
}

TEST(StatusTest, AllConstructorsProduceMatchingCodes) {
  EXPECT_EQ(Status::ParseError("x").code(), StatusCode::kParseError);
  EXPECT_EQ(Status::Malformed("x").code(), StatusCode::kMalformed);
  EXPECT_EQ(Status::ResourceExhausted("x").code(),
            StatusCode::kResourceExhausted);
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::Unsupported("x").code(), StatusCode::kUnsupported);
}

TEST(StatusTest, CopyIsCheapAndShared) {
  Status a = Status::NotFound("missing");
  Status b = a;
  EXPECT_EQ(b.message(), "missing");
  EXPECT_EQ(b.code(), StatusCode::kNotFound);
}

TEST(StatusTest, CodeNamesAreStable) {
  EXPECT_STREQ(StatusCodeName(StatusCode::kOk), "ok");
  EXPECT_STREQ(StatusCodeName(StatusCode::kParseError), "parse-error");
  EXPECT_STREQ(StatusCodeName(StatusCode::kUnsupported), "unsupported");
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("nope"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r(std::string("hello"));
  std::string v = std::move(r).ValueOrDie();
  EXPECT_EQ(v, "hello");
}

Result<int> Half(int x) {
  if (x % 2 != 0) return Status::InvalidArgument("odd");
  return x / 2;
}

Status UseHalf(int x, int* out) {
  MAPINV_ASSIGN_OR_RETURN(int h, Half(x));
  *out = h;
  return Status::OK();
}

TEST(ResultTest, AssignOrReturnPropagates) {
  int out = -1;
  EXPECT_TRUE(UseHalf(8, &out).ok());
  EXPECT_EQ(out, 4);
  Status s = UseHalf(7, &out);
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(out, 4);  // untouched on error
}

TEST(InternerTest, RoundTrips) {
  Interner interner;
  uint32_t a = interner.Intern("alpha");
  uint32_t b = interner.Intern("beta");
  EXPECT_NE(a, b);
  EXPECT_EQ(interner.Intern("alpha"), a);
  EXPECT_EQ(interner.Text(a), "alpha");
  EXPECT_EQ(interner.Text(b), "beta");
  EXPECT_EQ(interner.size(), 2u);
}

TEST(InternerTest, LookupWithoutInsert) {
  Interner interner;
  EXPECT_EQ(interner.Lookup("ghost"), UINT32_MAX);
  uint32_t id = interner.Intern("ghost");
  EXPECT_EQ(interner.Lookup("ghost"), id);
}

TEST(InternerTest, BadIdRendersDiagnostic) {
  Interner interner;
  EXPECT_EQ(interner.Text(999), "<bad-id:999>");
}

TEST(InternerTest, ConcurrentInterningIsConsistent) {
  Interner interner;
  constexpr int kThreads = 8;
  constexpr int kNames = 64;
  std::vector<std::thread> threads;
  std::vector<std::vector<uint32_t>> ids(kThreads,
                                         std::vector<uint32_t>(kNames));
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t]() {
      for (int i = 0; i < kNames; ++i) {
        ids[t][i] = interner.Intern("name" + std::to_string(i));
      }
    });
  }
  for (auto& th : threads) th.join();
  for (int t = 1; t < kThreads; ++t) EXPECT_EQ(ids[t], ids[0]);
  EXPECT_EQ(interner.size(), static_cast<size_t>(kNames));
}

TEST(SymbolsTest, VariablePoolRoundTrip) {
  VarId x = InternVar("x");
  EXPECT_EQ(VarName(x), "x");
  EXPECT_EQ(InternVar("x"), x);
}

TEST(SymbolsTest, FreshVarsNeverCollideWithUserNames) {
  FreshVarGen gen("t");
  VarId a = gen.Next();
  VarId b = gen.Next();
  EXPECT_NE(a, b);
  EXPECT_EQ(VarName(a)[0], '?');  // sigil unreachable from the parser
}

TEST(SymbolsTest, FreshFunctionsAreDistinct) {
  FreshFunctionGen gen("sk");
  std::set<FunctionId> seen;
  for (int i = 0; i < 100; ++i) EXPECT_TRUE(seen.insert(gen.Next()).second);
}

TEST(SymbolsTest, HashCombineSpreadsValues) {
  size_t a = 0, b = 0;
  HashCombine(a, 1);
  HashCombine(b, 2);
  EXPECT_NE(a, b);
}

}  // namespace
}  // namespace mapinv
