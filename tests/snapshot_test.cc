// Tests for the segmented storage engine's persistence and spill paths:
// snapshot save/load round trips, byte-stability of the file format,
// fork-after-load isolation, spill + copy-on-write interaction, bulk
// appends straddling segment boundaries, and clean rejection of corrupted
// or truncated snapshot files. The deterministic-output contract is load
// bearing throughout: in-RAM, spilled and reloaded instances must render
// byte-identically.

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "base/symbol_context.h"
#include "chase/chase_delta.h"
#include "chase/chase_tgd.h"
#include "data/instance.h"
#include "data/schema.h"
#include "data/segment.h"
#include "data/value.h"
#include "engine/execution_options.h"
#include "parser/parser.h"

namespace mapinv {
namespace {

std::string TempPath(const char* name) {
  return ::testing::TempDir() + "/mapinv_snapshot_test_" + name;
}

std::string SlurpFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(static_cast<bool>(in)) << "cannot open " << path;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

// An instance big enough to seal several segments: `rows` arity-2 rows in R
// plus a handful of S rows, mixing small ints and interned spellings.
Instance BigInstance(size_t rows) {
  Schema schema{{"R", 2}, {"S", 2}};
  Instance inst(schema);
  for (size_t i = 0; i < rows; ++i) {
    EXPECT_TRUE(
        inst.AddInts("R", {static_cast<int>(i), static_cast<int>(i % 97)})
            .ok());
  }
  for (int i = 0; i < 5; ++i) {
    EXPECT_TRUE(inst.AddInts("S", {i, i + 1}).ok());
  }
  return inst;
}

// ---------------------------------------------------------------------------
// Snapshot round trips

TEST(SnapshotTest, SaveLoadRoundTripPreservesContentAndRendering) {
  // A chased target carries nulls; the snapshot must preserve them bit for
  // bit (labels included), not just up to renaming.
  TgdMapping mapping = *ParseTgdMapping("R(x,y) -> T(x,z)");
  Instance source(mapping.source);
  ASSERT_TRUE(source.AddInts("R", {1, 2}).ok());
  ASSERT_TRUE(source.AddInts("R", {3, 4}).ok());
  Instance target = *ChaseTgds(mapping, source);

  const std::string path = TempPath("roundtrip.snap");
  ASSERT_TRUE(target.Save(path).ok());
  Result<Instance> loaded = Instance::Load(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_TRUE(loaded->EqualTo(target));
  EXPECT_EQ(loaded->ToString(), target.ToString());
  std::remove(path.c_str());
}

TEST(SnapshotTest, MultiSegmentRoundTrip) {
  // > 2 sealed segments plus a partial tail; the loader maps the sealed
  // pages and heap-copies the tail.
  Instance inst = BigInstance(3 * kSegmentRows + 17);
  const std::string path = TempPath("multiseg.snap");
  ASSERT_TRUE(inst.Save(path).ok());
  Result<Instance> loaded = Instance::Load(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_TRUE(loaded->EqualTo(inst));
  // Appending to the loaded instance lands in a fresh heap tail and dedups
  // against the mapped rows.
  EXPECT_FALSE(*loaded->AddInts("R", {0, 0}));  // row 0 already present
  EXPECT_TRUE(*loaded->AddInts("R", {-1, -1}));
  std::remove(path.c_str());
}

TEST(SnapshotTest, SaveLoadSaveIsByteStable) {
  Instance inst = BigInstance(kSegmentRows + 100);
  const std::string first = TempPath("stable_1.snap");
  const std::string second = TempPath("stable_2.snap");
  ASSERT_TRUE(inst.Save(first).ok());
  Result<Instance> loaded = Instance::Load(first);
  ASSERT_TRUE(loaded.ok());
  // Skew the process-global constant pool between load and re-save: file
  // ids are ranks in the sorted spelling table, not pool ids, so the bytes
  // must not move.
  Instance scratch(Schema{{"Z", 1}});
  for (int i = 0; i < 64; ++i) {
    ASSERT_TRUE(scratch.AddInts("Z", {1000000 + i}).ok());
  }
  ASSERT_TRUE(loaded->Save(second).ok());
  EXPECT_EQ(SlurpFile(first), SlurpFile(second));
  std::remove(first.c_str());
  std::remove(second.c_str());
}

TEST(SnapshotTest, EmptyInstanceRoundTrip) {
  Schema schema{{"R", 2}, {"S", 3}};
  Instance empty(schema);
  const std::string path = TempPath("empty.snap");
  ASSERT_TRUE(empty.Save(path).ok());
  Result<Instance> loaded = Instance::Load(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->TotalSize(), 0u);
  EXPECT_EQ(loaded->schema().size(), 2u);
  EXPECT_TRUE(*loaded->AddInts("S", {1, 2, 3}));
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// Fork-after-load isolation

TEST(SnapshotTest, ForkAfterLoadIsolation) {
  Instance inst = BigInstance(kSegmentRows + 50);
  const std::string path = TempPath("fork.snap");
  ASSERT_TRUE(inst.Save(path).ok());
  Result<Instance> loaded = Instance::Load(path);
  ASSERT_TRUE(loaded.ok());

  Instance fork = loaded->Fork();
  EXPECT_TRUE(fork.EqualTo(*loaded));
  // Writes on either side of the fork stay invisible to the other — the
  // mapped segments are shared, the tails are not.
  ASSERT_TRUE(*fork.AddInts("R", {7777, 1}));
  RelationId r = loaded->schema().Find("R");
  EXPECT_FALSE(loaded->Contains(r, {Value::Int(7777), Value::Int(1)}));
  ASSERT_TRUE(*loaded->AddInts("R", {8888, 1}));
  EXPECT_FALSE(fork.Contains(r, {Value::Int(8888), Value::Int(1)}));
  // Neither write leaked into the snapshot file (MAP_PRIVATE): a fresh load
  // still equals the original instance.
  Result<Instance> reloaded = Instance::Load(path);
  ASSERT_TRUE(reloaded.ok());
  EXPECT_TRUE(reloaded->EqualTo(inst));
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// AddRows across segment boundaries

TEST(SnapshotTest, AddRowsBatchStraddlingSegmentsMatchesAddRowLoop) {
  Schema schema{{"R", 2}};
  const RelationId r = schema.Find("R");
  // One batch spanning three segments, with duplicates both of earlier
  // batch rows and of rows already in the store.
  std::vector<Value> rows;
  const size_t count = 2 * kSegmentRows + 500;
  for (size_t i = 0; i < count; ++i) {
    const size_t key = i % (2 * kSegmentRows + 100);  // tail rows duplicate
    rows.push_back(Value::Int(static_cast<int64_t>(key)));
    rows.push_back(Value::Int(static_cast<int64_t>(key + 1)));
  }

  Instance bulk(schema);
  ASSERT_TRUE(bulk.AddInts("R", {42, 43}).ok());  // pre-existing row
  std::vector<uint8_t> added;
  Result<size_t> inserted = bulk.AddRows(r, rows.data(), count, &added);
  ASSERT_TRUE(inserted.ok()) << inserted.status().ToString();

  Instance loop(schema);
  ASSERT_TRUE(loop.AddInts("R", {42, 43}).ok());
  size_t loop_inserted = 0;
  std::vector<uint8_t> loop_added;
  for (size_t i = 0; i < count; ++i) {
    Result<bool> one = loop.AddRow(r, RowView(rows.data() + 2 * i, 2));
    ASSERT_TRUE(one.ok());
    loop_added.push_back(*one ? 1 : 0);
    loop_inserted += *one ? 1 : 0;
  }

  EXPECT_EQ(*inserted, loop_inserted);
  EXPECT_EQ(added, loop_added);
  EXPECT_TRUE(bulk.EqualTo(loop));
  EXPECT_EQ(bulk.ToString(), loop.ToString());  // same refs, same order
}

// ---------------------------------------------------------------------------
// Spill-to-disk + copy-on-write

TEST(SnapshotTest, SpillEvictsAndFaultsBackLosslessly) {
  Instance control = BigInstance(3 * kSegmentRows);
  Instance budgeted = BigInstance(3 * kSegmentRows);

  ExecStats stats;
  // Budget below one sealed segment's payload: the next mutation must evict
  // every evictable segment.
  budgeted.SetMemoryBudget(1024, "", &stats);
  ASSERT_TRUE(budgeted.AddInts("S", {100, 101}).ok());
  EXPECT_GT(stats.segments_spilled.load(), 0u);
  EXPECT_LT(budgeted.ResidentBytes(), budgeted.ArenaBytes());

  ASSERT_TRUE(control.AddInts("S", {100, 101}).ok());
  // Reading every row faults the spilled segments back in transparently.
  EXPECT_TRUE(budgeted.EqualTo(control));
  EXPECT_EQ(budgeted.ToString(), control.ToString());
  EXPECT_GT(stats.segments_faulted.load(), 0u);
}

TEST(SnapshotTest, SpillSharedWithForkNeverEvicted) {
  ExecStats stats;
  Instance parent = BigInstance(3 * kSegmentRows);
  parent.SetMemoryBudget(1024, "", &stats);
  Instance fork = parent.Fork();

  // Every store is now shared with the fork, so a mutation may not evict
  // anything — correctness first, budget second.
  const uint64_t spilled_before = stats.segments_spilled.load();
  ASSERT_TRUE(parent.AddInts("S", {200, 201}).ok());
  EXPECT_EQ(stats.segments_spilled.load(), spilled_before);

  // The fork never sees the parent's write, and both render consistently.
  RelationId s = parent.schema().Find("S");
  EXPECT_FALSE(fork.Contains(s, {Value::Int(200), Value::Int(201)}));
  EXPECT_TRUE(fork.SubsetOf(parent));
}

TEST(SnapshotTest, ForkOfSpilledInstanceReadsFaultedSegments) {
  ExecStats stats;
  Instance parent = BigInstance(3 * kSegmentRows);
  // Independent control (a fork would share — and so pin — every segment).
  Instance control = BigInstance(3 * kSegmentRows);
  parent.SetMemoryBudget(1024, "", &stats);
  ASSERT_TRUE(parent.AddInts("S", {300, 301}).ok());
  ASSERT_GT(stats.segments_spilled.load(), 0u);

  // Forking after the spill shares the spilled segments; the fork faults
  // them back on read and sees exactly the parent's rows.
  Instance fork = parent.Fork();
  ASSERT_TRUE(control.AddInts("S", {300, 301}).ok());
  EXPECT_TRUE(fork.EqualTo(control));
  EXPECT_EQ(fork.ToString(), control.ToString());
}

TEST(SnapshotTest, ChaseUnderBudgetMatchesUnconstrainedByteForByte) {
  // The acceptance-shaped differential: the same chase with and without a
  // tiny memory budget must render byte-identically.
  TgdMapping mapping = *ParseTgdMapping("R(x,y) -> T(x,z)\nR(x,y) -> U(y,x)");
  Instance source(mapping.source);
  for (int i = 0; i < 3000; ++i) {
    ASSERT_TRUE(source.AddInts("R", {i, i + 1}).ok());
  }
  // Fresh null scope per run: the labels must match across the two chases,
  // not just the structure.
  SymbolContext plain_symbols;
  ExecutionOptions plain_options;
  plain_options.symbols = &plain_symbols;
  Instance plain = *ChaseTgds(mapping, source, plain_options);

  SymbolContext budget_symbols;
  ExecutionOptions options;
  options.symbols = &budget_symbols;
  ExecStats stats;
  options.stats = &stats;
  options.memory_budget_bytes = 2048;
  Instance budgeted = *ChaseTgds(mapping, source, options);
  EXPECT_GT(stats.segments_spilled.load(), 0u);
  EXPECT_EQ(budgeted.ToString(), plain.ToString());
}

// ---------------------------------------------------------------------------
// Save → load → incremental append

TEST(SnapshotTest, LoadThenChaseDeltaMatchesNeverPersistedTarget) {
  TgdMapping mapping = *ParseTgdMapping("R(x,y), S(y,z) -> T(x,w)");
  Instance base(mapping.source);
  ASSERT_TRUE(base.AddInts("R", {1, 2}).ok());
  ASSERT_TRUE(base.AddInts("S", {2, 3}).ok());

  // Both paths chase the base with fresh, identically seeded null scopes,
  // then absorb the same delta with ChaseDelta using its own fresh scope
  // (ChaseDelta bumps the scope past the target's existing nulls, so the
  // labels come out the same whether the target was persisted or not).
  auto run = [&](bool persist) {
    SymbolContext base_symbols;
    ExecutionOptions base_options;
    base_options.symbols = &base_symbols;
    Instance target = *ChaseTgds(mapping, base, base_options);
    if (persist) {
      const std::string path = TempPath("delta.snap");
      EXPECT_TRUE(target.Save(path).ok());
      Result<Instance> loaded = Instance::Load(path);
      EXPECT_TRUE(loaded.ok()) << loaded.status().ToString();
      target = std::move(*loaded);
      std::remove(path.c_str());
    }
    Instance source = base.Fork();
    const DeltaWatermark mark = WatermarkOf(source);
    EXPECT_TRUE(source.AddInts("R", {9, 2}).ok());
    EXPECT_TRUE(source.AddInts("S", {2, 8}).ok());
    SymbolContext delta_symbols;
    ExecutionOptions delta_options;
    delta_options.symbols = &delta_symbols;
    Result<bool> complete =
        ChaseDelta(mapping, source, mark, &target, nullptr, delta_options);
    EXPECT_TRUE(complete.ok()) << complete.status().ToString();
    return target.ToString();
  };

  EXPECT_EQ(run(/*persist=*/true), run(/*persist=*/false));
}

// ---------------------------------------------------------------------------
// Corrupted and truncated snapshots

TEST(SnapshotTest, TruncatedSnapshotsRejectedAtEveryLength) {
  Instance inst = BigInstance(100);
  const std::string path = TempPath("trunc.snap");
  ASSERT_TRUE(inst.Save(path).ok());
  const std::string bytes = SlurpFile(path);
  std::remove(path.c_str());
  ASSERT_GT(bytes.size(), 48u);

  // The header's file_size field makes every strict prefix malformed.
  for (size_t len = 0; len < bytes.size(); len += 7) {
    Result<Instance> loaded = Instance::LoadFromBytes(bytes.data(), len);
    EXPECT_FALSE(loaded.ok()) << "truncation to " << len << " bytes accepted";
  }
}

TEST(SnapshotTest, CorruptedHeadersRejectedCleanly) {
  Instance inst = BigInstance(kSegmentRows + 10);
  const std::string path = TempPath("corrupt.snap");
  ASSERT_TRUE(inst.Save(path).ok());
  const std::string good = SlurpFile(path);
  std::remove(path.c_str());

  auto expect_reject = [&](size_t offset, uint64_t value, const char* what) {
    std::string bad = good;
    ASSERT_LE(offset + 8, bad.size());
    std::memcpy(&bad[offset], &value, sizeof(value));
    Result<Instance> loaded = Instance::LoadFromBytes(bad.data(), bad.size());
    EXPECT_FALSE(loaded.ok()) << what;
    if (!loaded.ok()) {
      EXPECT_EQ(loaded.status().code(), StatusCode::kMalformed) << what;
    }
  };

  expect_reject(0, 0x4242424242424242ull, "bad magic");
  expect_reject(8, 0xffffffff00000001ull, "huge relation count");
  expect_reject(8, 0x0000000200000000ull, "unknown version 0");
  expect_reject(16, good.size() + 1, "file_size mismatch");
  expect_reject(24, good.size() + 8, "spelling table past EOF");
  expect_reject(24, 0, "spelling table inside header");
  expect_reject(32, uint64_t{1} << 40, "spelling count overflow");

  // A directory num_rows beyond the stored pages must be caught by the
  // bounds check, not walk off the mapping. Relation 0's num_rows sits at
  // directory offset 48 + 8 (name_len+arity) in this fixed schema.
  expect_reject(56, uint64_t{1} << 33, "num_rows beyond TupleRef range");
  expect_reject(56, (uint64_t{1} << 32) - 1, "num_rows beyond stored pages");

  // The original still loads — the corruptions above were the only edits.
  Result<Instance> ok = Instance::LoadFromBytes(good.data(), good.size());
  EXPECT_TRUE(ok.ok()) << ok.status().ToString();
}

TEST(SnapshotTest, ByteFlipsNeverCrashTheLoader) {
  // Deterministic single-byte corruption sweep: every outcome must be a
  // clean Status or a well-formed instance — never a crash or a hang. This
  // mirrors the fuzz target's property on a dense grid.
  Instance inst = BigInstance(60);
  const std::string path = TempPath("flip.snap");
  ASSERT_TRUE(inst.Save(path).ok());
  const std::string good = SlurpFile(path);
  std::remove(path.c_str());

  for (size_t i = 0; i < good.size(); ++i) {
    for (uint8_t mask : {uint8_t{0x01}, uint8_t{0x80}, uint8_t{0xff}}) {
      std::string bad = good;
      bad[i] = static_cast<char>(bad[i] ^ mask);
      Result<Instance> loaded =
          Instance::LoadFromBytes(bad.data(), bad.size());
      if (loaded.ok()) {
        // Accepted: the instance must be fully walkable.
        loaded->ToString();
        loaded->TotalSize();
      }
    }
  }
}

TEST(SnapshotTest, MissingFileIsNotFound) {
  Result<Instance> loaded = Instance::Load(TempPath("does_not_exist.snap"));
  EXPECT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kNotFound);
}

}  // namespace
}  // namespace mapinv
