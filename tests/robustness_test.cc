// Robustness tests: fault-injection failpoints, cooperative cancellation,
// partial-result degradation, error-message determinism, and the
// inputs-untouched (strong exception safety) sweep over every registered
// failpoint site.

#include <cctype>
#include <chrono>
#include <cstdlib>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include <dirent.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include "base/symbol_context.h"
#include "chase/chase_delta.h"
#include "chase/chase_tgd.h"
#include "chase/round_trip.h"
#include "check/properties.h"
#include "engine/engine.h"
#include "engine/eval_cache.h"
#include "engine/execution_options.h"
#include "engine/failpoint.h"
#include "engine/trace.h"
#include "eval/instance_core.h"
#include "inversion/compose.h"
#include "inversion/cq_maximum_recovery.h"
#include "inversion/maximum_recovery.h"
#include "inversion/polyso.h"
#include "mapgen/generators.h"
#include "parser/parser.h"
#include "rewrite/skolemize.h"

namespace mapinv {
namespace {

// ---------------------------------------------------------------------------
// FailPoint registry basics

FailPoint* Site(const char* name) {
  FailPoint* fp = FailPointRegistry::Global().Find(name);
  EXPECT_NE(fp, nullptr) << "site '" << name << "' not registered";
  return fp;
}

class FailPointTest : public ::testing::Test {
 protected:
  void TearDown() override { FailPointRegistry::Global().DeactivateAll(); }
};

TEST_F(FailPointTest, RegistryEnumeratesTheSitesTheIssueRequires) {
  std::vector<std::string> names = FailPointRegistry::Global().SiteNames();
  EXPECT_GE(names.size(), 25u);
  // Spot-check one site per subsystem named in the issue.
  for (const char* required :
       {"chase_tgds/fire", "chase_reverse/world_fork", "collect_triggers/chunk",
        "maximum_recovery/dependency", "eliminate_equalities/partition",
        "eliminate_disjunctions/product", "compose/rule", "polyso/rule",
        "rewrite/disjunct", "hom_plan/compile", "instance/add_row",
        "containment/cache_insert", "instance_core/cache_insert"}) {
    EXPECT_NE(Site(required), nullptr);
  }
}

TEST_F(FailPointTest, DisarmedSiteIsANoOp) {
  FailPoint* fp = Site("chase_tgds/entry");
  EXPECT_TRUE(fp->Check().ok());
  EXPECT_EQ(fp->hits(), 0u);  // disarmed hits are not counted
}

TEST_F(FailPointTest, ActivateValidatesNameAndSpec) {
  FailPointRegistry& reg = FailPointRegistry::Global();
  EXPECT_EQ(reg.Activate("no/such/site", {}).code(), StatusCode::kNotFound);
  FailPointSpec bad_rate;
  bad_rate.mode = FailPointSpec::Mode::kRandom;
  bad_rate.rate = 1.5;
  EXPECT_EQ(reg.Activate("chase_tgds/entry", bad_rate).code(),
            StatusCode::kInvalidArgument);
  FailPointSpec bad_nth;
  bad_nth.mode = FailPointSpec::Mode::kNth;
  bad_nth.nth = 0;
  EXPECT_EQ(reg.Activate("chase_tgds/entry", bad_nth).code(),
            StatusCode::kInvalidArgument);
  FailPointSpec bad_code;
  bad_code.code = StatusCode::kOk;
  EXPECT_EQ(reg.Activate("chase_tgds/entry", bad_code).code(),
            StatusCode::kInvalidArgument);
}

TEST_F(FailPointTest, AlwaysModeInjectsDeterministicStatus) {
  FailPoint* fp = Site("chase_tgds/entry");
  ASSERT_TRUE(
      FailPointRegistry::Global().Activate("chase_tgds/entry", {}).ok());
  Status s = fp->Check();
  EXPECT_EQ(s.code(), StatusCode::kInternal);
  EXPECT_EQ(s.ToString(),
            "internal: failpoint 'chase_tgds/entry': injected failure");
  EXPECT_EQ(fp->hits(), 1u);
  EXPECT_EQ(fp->trips(), 1u);
  ASSERT_TRUE(FailPointRegistry::Global().Deactivate("chase_tgds/entry").ok());
  EXPECT_TRUE(fp->Check().ok());
}

TEST_F(FailPointTest, NthModeFailsExactlyTheNthHit) {
  FailPoint* fp = Site("chase_tgds/fire");
  FailPointSpec spec;
  spec.mode = FailPointSpec::Mode::kNth;
  spec.nth = 3;
  ASSERT_TRUE(
      FailPointRegistry::Global().Activate("chase_tgds/fire", spec).ok());
  EXPECT_TRUE(fp->Check().ok());
  EXPECT_TRUE(fp->Check().ok());
  EXPECT_FALSE(fp->Check().ok());
  EXPECT_TRUE(fp->Check().ok());
  EXPECT_EQ(fp->hits(), 4u);
  EXPECT_EQ(fp->trips(), 1u);
}

TEST_F(FailPointTest, CountModeNeverFailsButCounts) {
  FailPoint* fp = Site("chase_tgds/fire");
  FailPointSpec spec;
  spec.mode = FailPointSpec::Mode::kCount;
  ASSERT_TRUE(
      FailPointRegistry::Global().Activate("chase_tgds/fire", spec).ok());
  for (int i = 0; i < 10; ++i) EXPECT_TRUE(fp->Check().ok());
  EXPECT_EQ(fp->hits(), 10u);
  EXPECT_EQ(fp->trips(), 0u);
}

TEST_F(FailPointTest, RandomModeIsSeedDeterministic) {
  FailPoint* fp = Site("chase_tgds/fire");
  FailPointSpec spec;
  spec.mode = FailPointSpec::Mode::kRandom;
  spec.rate = 0.4;
  spec.seed = 99;
  auto draw = [&] {
    std::vector<bool> fails;
    for (int i = 0; i < 128; ++i) fails.push_back(!fp->Check().ok());
    return fails;
  };
  ASSERT_TRUE(
      FailPointRegistry::Global().Activate("chase_tgds/fire", spec).ok());
  std::vector<bool> first = draw();
  // Re-activating resets the hit counter, so the stream replays.
  ASSERT_TRUE(
      FailPointRegistry::Global().Activate("chase_tgds/fire", spec).ok());
  std::vector<bool> second = draw();
  EXPECT_EQ(first, second);
  size_t trips = 0;
  for (bool f : first) trips += f;
  EXPECT_GT(trips, 0u);
  EXPECT_LT(trips, first.size());
  spec.seed = 100;
  ASSERT_TRUE(
      FailPointRegistry::Global().Activate("chase_tgds/fire", spec).ok());
  EXPECT_NE(draw(), first);
}

// ---------------------------------------------------------------------------
// The sweep workload: a small mapping that drives every pipeline phase —
// two producers of T (disjunctions → reverse world forks), a conclusion
// with a repeated variable (equalities → partition expansion), and an
// existential (Skolem functions in the SO paths, nulls for the core).

constexpr char kSweepMapping[] =
    "S1(x) -> T(x)\n"
    "S2(x) -> T(x)\n"
    "P(x,y) -> Q(x,x,y)\n"
    "E(x) -> F(x,y)\n";

constexpr char kSweepSecond[] =
    "T(x) -> U(x)\n"
    "Q(x,y,z) -> V(x,z)\n";

constexpr char kSweepSource[] = "{ S1(1), S2(2), P(1,2), E(3) }";

// Job directories are flat (manifest-<G> + w<G>-<i>.snap); one readdir pass
// clears them.
void RemoveJobDir(const std::string& dir) {
  DIR* d = ::opendir(dir.c_str());
  if (d != nullptr) {
    while (dirent* entry = ::readdir(d)) {
      const std::string name = entry->d_name;
      if (name == "." || name == "..") continue;
      ::unlink((dir + "/" + name).c_str());
    }
    ::closedir(d);
  }
  ::rmdir(dir.c_str());
}

// Runs every pipeline entry point the issue audits, concatenating the
// results into one comparable transcript. A fresh SymbolContext per run
// makes reruns bit-identical.
Result<std::string> RunSweepWorkload(const TgdMapping& mapping,
                                     const TgdMapping& second,
                                     const Instance& source,
                                     bool vectorized = true) {
  SymbolContext symbols;
  ExecStats stats;
  ExecutionOptions options;
  options.threads = 1;
  options.symbols = &symbols;
  options.stats = &stats;
  options.vectorized = vectorized;
  std::string out;
  MAPINV_ASSIGN_OR_RETURN(Instance chased, ChaseTgds(mapping, source, options));
  out += chased.ToString() + "\n";
  // Incremental step (reaches the chase_delta/* sites): append rows to a
  // fork of the source and absorb them into a fork of the chased target.
  // Locals only — injected failures must leave the member inputs untouched.
  Instance delta_source = source.Fork();
  const DeltaWatermark mark = WatermarkOf(delta_source);
  MAPINV_RETURN_NOT_OK(delta_source.AddInts("S1", {7}).status());
  MAPINV_RETURN_NOT_OK(delta_source.AddInts("P", {7, 8}).status());
  MAPINV_RETURN_NOT_OK(delta_source.AddInts("E", {9}).status());
  Instance delta_target = chased.Fork();
  ChaseProvenance provenance;
  MAPINV_ASSIGN_OR_RETURN(
      bool delta_complete,
      ChaseDelta(mapping, delta_source, mark, &delta_target, &provenance,
                 options));
  out += std::string("delta_complete=") + (delta_complete ? "1" : "0") + "\n";
  out += delta_target.ToString() + "\n";
  // Spill step (reaches the instance/spill site): arm a deliberately tiny
  // memory budget on a scratch fork and append a row, forcing the budget
  // check to fire before the mutation. Stores shared with `chased` are never
  // evicted, so the member inputs stay untouched either way.
  Instance budgeted = chased.Fork();
  budgeted.SetMemoryBudget(1, "", &stats);
  MAPINV_RETURN_NOT_OK(budgeted.AddInts("T", {77}).status());
  out += "budgeted=" + std::to_string(budgeted.TotalSize()) + "\n";
  MAPINV_ASSIGN_OR_RETURN(ReverseMapping maxrec,
                          MaximumRecovery(mapping, options));
  out += maxrec.ToString() + "\n";
  MAPINV_ASSIGN_OR_RETURN(std::vector<Instance> worlds,
                          RoundTripWorlds(mapping, maxrec, source, options));
  out += "worlds=" + std::to_string(worlds.size()) + "\n";
  // Durable-job step (reaches the job/* checkpoint sites): the same reverse
  // enumeration, committing every trigger to a throwaway directory. A fresh
  // mkdtemp per run keeps reruns independent (an existing checkpoint without
  // resume is refused by design); the dir is removed on every exit path so
  // injected failures leave no residue.
  {
    char tmpl[] = "/tmp/mapinv-sweep-job-XXXXXX";
    char* dir = ::mkdtemp(tmpl);
    if (dir == nullptr) return Status::Internal("mkdtemp failed");
    ExecutionOptions job_options = options;
    job_options.checkpoint_dir = dir;
    job_options.checkpoint_every = 1;
    Result<std::vector<Instance>> job_worlds =
        RoundTripWorlds(mapping, maxrec, source, job_options);
    RemoveJobDir(dir);
    MAPINV_RETURN_NOT_OK(job_worlds.status());
    out += "job_worlds=" + std::to_string(job_worlds->size()) + "\n";
  }
  MAPINV_ASSIGN_OR_RETURN(ReverseMapping inverted,
                          CqMaximumRecovery(mapping, options));
  out += inverted.ToString() + "\n";
  MAPINV_ASSIGN_OR_RETURN(SOTgdMapping composed,
                          ComposeTgdMappings(mapping, second, options));
  out += composed.ToString() + "\n";
  MAPINV_ASSIGN_OR_RETURN(SOInverseMapping so_inverse,
                          PolySOInverseOfTgds(mapping, options));
  out += so_inverse.ToString() + "\n";
  MAPINV_ASSIGN_OR_RETURN(SOTgdMapping so, TgdsToPlainSOTgd(mapping));
  MAPINV_ASSIGN_OR_RETURN(std::vector<Instance> so_worlds,
                          RoundTripWorldsSO(so, so_inverse, source, options));
  out += "so_worlds=" + std::to_string(so_worlds.size()) + "\n";
  MAPINV_ASSIGN_OR_RETURN(Instance core, CoreOfInstance(chased, &stats));
  out += core.ToString() + "\n";
  return out;
}

// Fresh-symbol names (?m3, ?u15, sk%9, _N2) draw from process-global
// counters that a per-run SymbolContext does not reset, so two otherwise
// identical workload runs differ in numbering alone. Renumber each prefix's
// digit runs by first occurrence so transcripts compare structurally.
// Digits anywhere else (constants, relation names) are left untouched.
std::string CanonicalizeFreshNames(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  std::map<std::string, std::map<std::string, size_t>> renumber;
  auto emit = [&](const std::string& prefix, size_t digits_begin) -> size_t {
    size_t j = digits_begin;
    while (j < text.size() &&
           std::isdigit(static_cast<unsigned char>(text[j]))) {
      ++j;
    }
    out += prefix;
    if (j == digits_begin) return j;  // bare prefix, nothing to renumber
    std::map<std::string, size_t>& seen = renumber[prefix];
    auto [it, inserted] =
        seen.emplace(text.substr(digits_begin, j - digits_begin), seen.size());
    out += std::to_string(it->second);
    return j;
  };
  size_t i = 0;
  while (i < text.size()) {
    if (text[i] == '?') {
      size_t j = i + 1;
      while (j < text.size() &&
             std::isalpha(static_cast<unsigned char>(text[j]))) {
        ++j;
      }
      i = emit(text.substr(i, j - i), j);
    } else if (text.compare(i, 3, "sk%") == 0) {
      i = emit("sk%", i + 3);
    } else if (text.compare(i, 2, "_N") == 0) {
      i = emit("_N", i + 2);
    } else {
      out += text[i++];
    }
  }
  return out;
}

class FailPointSweep : public ::testing::Test {
 protected:
  void SetUp() override {
    mapping_ = ParseTgdMapping(kSweepMapping).ValueOrDie();
    second_ = ParseTgdMapping(kSweepSecond).ValueOrDie();
    source_ = ParseInstance(kSweepSource, *mapping_.source).ValueOrDie();
  }
  void TearDown() override { FailPointRegistry::Global().DeactivateAll(); }

  TgdMapping mapping_;
  TgdMapping second_;
  Instance source_{std::make_shared<Schema>()};
};

TEST_F(FailPointSweep, WorkloadCoversEveryRegisteredSite) {
  FailPointRegistry& reg = FailPointRegistry::Global();
  FailPointSpec count;
  count.mode = FailPointSpec::Mode::kCount;
  for (const std::string& name : reg.SiteNames()) {
    ASSERT_TRUE(reg.Activate(name, count).ok()) << name;
  }
  // Both execution shapes must keep every site alive: the vectorized paths
  // moved the fire/collect failpoints to batch granularity, and a site only
  // reachable from one shape would silently lose injection coverage.
  for (bool vectorized : {true, false}) {
    GlobalEvalCache().Clear();
    Result<std::string> run =
        RunSweepWorkload(mapping_, second_, source_, vectorized);
    ASSERT_TRUE(run.ok()) << run.status().ToString();
  }
  for (const std::string& name : reg.SiteNames()) {
    EXPECT_GT(Site(name.c_str())->hits(), 0u)
        << "site '" << name << "' is dead: the sweep workload never reaches "
        << "it, so the per-site injection pass below cannot exercise it";
  }
}

TEST_F(FailPointSweep, EverySiteFailsCleanAndLeavesInputsUntouched) {
  FailPointRegistry& reg = FailPointRegistry::Global();

  // Input fingerprints: deep renderings plus the arena data pointers of the
  // source's columnar stores — an injected failure must not even COW them.
  const std::string mapping_before = mapping_.ToString();
  const std::string second_before = second_.ToString();
  const std::string source_before = source_.ToString();
  std::vector<const Value*> arenas_before;
  for (RelationId r = 0; r < mapping_.source->size(); ++r) {
    if (source_.NumRows(r) > 0) arenas_before.push_back(source_.Row(r, 0).data());
  }

  // Both execution shapes: the vectorized paths fail at batch granularity
  // (before the batch's mutations), the scalar paths per tuple — either way
  // the strong guarantee below must hold at every site.
  for (bool vectorized : {true, false}) {
    SCOPED_TRACE(vectorized ? "vectorized" : "scalar");
    reg.DeactivateAll();
    GlobalEvalCache().Clear();
    Result<std::string> baseline =
        RunSweepWorkload(mapping_, second_, source_, vectorized);
    ASSERT_TRUE(baseline.ok()) << baseline.status().ToString();

    for (const std::string& name : reg.SiteNames()) {
      SCOPED_TRACE("site " + name);
      reg.DeactivateAll();
      GlobalEvalCache().Clear();
      ASSERT_TRUE(reg.Activate(name, {}).ok());  // kAlways, kInternal
      Result<std::string> injected =
          RunSweepWorkload(mapping_, second_, source_, vectorized);
      ASSERT_FALSE(injected.ok());
      EXPECT_EQ(injected.status().code(), StatusCode::kInternal);
      EXPECT_NE(injected.status().ToString().find("failpoint '" + name + "'"),
                std::string::npos)
          << injected.status().ToString();

      // Strong guarantee: the inputs are unchanged, byte for byte and
      // arena for arena.
      EXPECT_EQ(mapping_.ToString(), mapping_before);
      EXPECT_EQ(second_.ToString(), second_before);
      EXPECT_EQ(source_.ToString(), source_before);
      std::vector<const Value*> arenas_after;
      for (RelationId r = 0; r < mapping_.source->size(); ++r) {
        if (source_.NumRows(r) > 0) arenas_after.push_back(source_.Row(r, 0).data());
      }
      EXPECT_EQ(arenas_after, arenas_before);

      // Engine reusable: disarm and the identical run succeeds identically.
      ASSERT_TRUE(reg.Deactivate(name).ok());
      GlobalEvalCache().Clear();
      Result<std::string> rerun =
          RunSweepWorkload(mapping_, second_, source_, vectorized);
      ASSERT_TRUE(rerun.ok()) << rerun.status().ToString();
      EXPECT_EQ(CanonicalizeFreshNames(*rerun),
                CanonicalizeFreshNames(*baseline));
    }
  }
}

// ---------------------------------------------------------------------------
// Cancellation

TEST(CancelTest, PreCancelledTokenStopsTheChase) {
  TgdMapping mapping = ParseTgdMapping("R(x,y) -> S(x,y)").ValueOrDie();
  Instance source = GenerateInstance(*mapping.source, 20, 10, 5);
  // Every execution shape polls the token: the scalar path per candidate,
  // the vectorized paths per block (collection) and per batch (fire).
  struct Shape {
    bool vectorized;
    size_t batch;
  };
  for (const Shape& shape : {Shape{false, 0}, Shape{true, 1}, Shape{true, 7},
                             Shape{true, 1024}}) {
    CancelToken token;
    token.Cancel();
    ExecutionOptions options;
    options.threads = 1;
    options.cancel = &token;
    options.vectorized = shape.vectorized;
    if (shape.batch != 0) options.vector_batch = shape.batch;
    Result<Instance> result = ChaseTgds(mapping, source, options);
    ASSERT_FALSE(result.ok()) << "batch=" << shape.batch;
    EXPECT_EQ(result.status().code(), StatusCode::kCancelled);
    token.Reset();
    EXPECT_TRUE(ChaseTgds(mapping, source, options).ok());
  }
}

TEST(CancelTest, CancellationWinsOverAnExpiredDeadline) {
  TgdMapping mapping = ParseTgdMapping("R(x,y) -> S(x,y)").ValueOrDie();
  Instance source = GenerateInstance(*mapping.source, 20, 10, 5);
  CancelToken token;
  token.Cancel();
  ExecDeadline expired(1);
  std::this_thread::sleep_for(std::chrono::milliseconds(3));
  ExecutionOptions options;
  options.threads = 1;
  options.cancel = &token;
  options.deadline = &expired;
  options.deadline_ms = 1;
  Result<Instance> result = ChaseTgds(mapping, source, options);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kCancelled);
}

TEST(CancelTest, EngineCancelIsStickyUntilReset) {
  EngineConfig config;
  config.threads = 1;
  Engine engine(config);
  engine.Cancel();
  TgdMapping mapping = ExponentialFamilyMapping(2, 3);
  Result<ReverseMapping> cancelled = engine.Invert(mapping);
  ASSERT_FALSE(cancelled.ok());
  EXPECT_EQ(cancelled.status().code(), StatusCode::kCancelled);
  Result<ReverseMapping> still = engine.Invert(mapping);
  ASSERT_FALSE(still.ok());
  EXPECT_EQ(still.status().code(), StatusCode::kCancelled);
  engine.ResetCancel();
  EXPECT_TRUE(engine.Invert(mapping).ok());
}

// ---------------------------------------------------------------------------
// Error-message determinism: the pinned strings, byte-identical across
// thread counts and repeated runs.

TEST(DeterminismTest, CancelledMessageIsIdenticalAcrossThreadsAndRuns) {
  TgdMapping mapping = ExponentialFamilyMapping(2, 4);
  CancelToken token;
  token.Cancel();
  std::vector<std::string> messages;
  for (int threads : {1, 4}) {
    for (int run = 0; run < 2; ++run) {
      SymbolContext symbols;
      ExecutionOptions options;
      options.threads = threads;
      options.symbols = &symbols;
      options.cancel = &token;
      Result<ReverseMapping> r = CqMaximumRecovery(mapping, options);
      ASSERT_FALSE(r.ok());
      ASSERT_EQ(r.status().code(), StatusCode::kCancelled);
      messages.push_back(r.status().ToString());
    }
  }
  for (const std::string& m : messages) {
    EXPECT_EQ(m, "cancelled: phase 'maximum_recovery': cancelled");
  }
}

TEST(DeterminismTest, ExhaustedMessageIsIdenticalAcrossThreadsAndRuns) {
  TgdMapping mapping = ParseTgdMapping("R(x,y) -> S(x,y)").ValueOrDie();
  Instance source = GenerateInstance(*mapping.source, 30, 10, 5);
  ExecDeadline expired(1);
  std::this_thread::sleep_for(std::chrono::milliseconds(3));
  std::vector<std::string> messages;
  for (int threads : {1, 4}) {
    for (int run = 0; run < 2; ++run) {
      SymbolContext symbols;
      ExecutionOptions options;
      options.threads = threads;
      options.symbols = &symbols;
      options.deadline = &expired;
      options.deadline_ms = 1;
      Result<Instance> r = ChaseTgds(mapping, source, options);
      ASSERT_FALSE(r.ok());
      ASSERT_EQ(r.status().code(), StatusCode::kResourceExhausted);
      messages.push_back(r.status().ToString());
    }
  }
  for (size_t i = 1; i < messages.size(); ++i) {
    EXPECT_EQ(messages[i], messages[0]);
  }
  EXPECT_EQ(messages[0].rfind("resource-exhausted: phase '", 0), 0u)
      << messages[0];
}

// ---------------------------------------------------------------------------
// Partial-result degradation

TEST(PartialResultTest, ChaseDegradesOnFactBudget) {
  TgdMapping mapping = ParseTgdMapping("R(x,y) -> S(x,y)").ValueOrDie();
  Instance source = GenerateInstance(*mapping.source, 30, 50, 3);
  const RelationId s_id = mapping.target->Find("S");
  ASSERT_NE(s_id, kInvalidRelation);

  ExecutionOptions options;
  options.threads = 1;
  options.max_new_facts = 5;
  Result<Instance> failed = ChaseTgds(mapping, source, options);
  ASSERT_FALSE(failed.ok());
  EXPECT_EQ(failed.status().code(), StatusCode::kResourceExhausted);

  ExecStats stats;
  options.stats = &stats;
  options.on_exhausted = OnExhausted::kPartial;
  Result<Instance> partial = ChaseTgds(mapping, source, options);
  ASSERT_TRUE(partial.ok()) << partial.status().ToString();
  EXPECT_TRUE(stats.partial.load());
  const size_t rows = partial->NumRows(s_id);
  EXPECT_GE(rows, 1u);
  // Whole-trigger granularity: the budget check runs after each trigger
  // fires completely, so the overshoot is bounded by one trigger's output.
  EXPECT_LE(rows, options.max_new_facts + 1);
  // Soundness: every partial fact is a fact of the full chase.
  ExecutionOptions full_options;
  full_options.threads = 1;
  Result<Instance> full = ChaseTgds(mapping, source, full_options);
  ASSERT_TRUE(full.ok());
  EXPECT_GT(full->NumRows(s_id), rows);
}

TEST(PartialResultTest, InjectedExhaustionDropsDependenciesNotDisjuncts) {
  TgdMapping mapping = ParseTgdMapping(kSweepMapping).ValueOrDie();
  SymbolContext symbols;
  ExecutionOptions options;
  options.threads = 1;
  options.symbols = &symbols;
  GlobalEvalCache().Clear();
  Result<ReverseMapping> baseline = CqMaximumRecovery(mapping, options);
  ASSERT_TRUE(baseline.ok());

  // A kResourceExhausted injected into the FOURTH per-dependency rewriting
  // (the E(x) -> F(x,y) tgd) must degrade at dependency granularity: the
  // recovery keeps the earlier dependencies whole and never emits a
  // truncated one. (Hitting an earlier rewrite would leave only the T
  // dependencies, which EliminateDisjunctions legitimately drops because
  // the conjunctive product of their S1|S2 disjuncts is empty — a sound
  // but empty recovery that this test could not distinguish from a bug.)
  FailPointSpec spec;
  spec.mode = FailPointSpec::Mode::kNth;
  spec.nth = 4;
  spec.code = StatusCode::kResourceExhausted;
  ASSERT_TRUE(
      FailPointRegistry::Global().Activate("rewrite/entry", spec).ok());
  ExecStats stats;
  SymbolContext symbols2;
  ExecutionOptions partial_options;
  partial_options.threads = 1;
  partial_options.symbols = &symbols2;
  partial_options.stats = &stats;
  partial_options.on_exhausted = OnExhausted::kPartial;
  GlobalEvalCache().Clear();
  Result<ReverseMapping> partial = CqMaximumRecovery(mapping, partial_options);
  FailPointRegistry::Global().DeactivateAll();
  ASSERT_TRUE(partial.ok()) << partial.status().ToString();
  EXPECT_TRUE(stats.partial.load());
  EXPECT_LT(partial->deps.size(), baseline->deps.size());
  EXPECT_GE(partial->deps.size(), 1u);

  // The degraded recovery is still a sound C-recovery.
  Instance source =
      ParseInstance(kSweepSource, *mapping.source).ValueOrDie();
  auto violation =
      CheckCRecovery(mapping, *partial, {source},
                     PerRelationQueries(*mapping.source), ExecutionOptions{});
  ASSERT_TRUE(violation.ok()) << violation.status().ToString();
  EXPECT_FALSE(violation->has_value()) << (*violation)->description;
}

TEST(PartialResultTest, SameInjectionUnderFailModeStillFails) {
  TgdMapping mapping = ParseTgdMapping(kSweepMapping).ValueOrDie();
  FailPointSpec spec;
  spec.mode = FailPointSpec::Mode::kNth;
  spec.nth = 4;
  spec.code = StatusCode::kResourceExhausted;
  ASSERT_TRUE(
      FailPointRegistry::Global().Activate("rewrite/entry", spec).ok());
  ExecutionOptions options;
  options.threads = 1;
  Result<ReverseMapping> r = CqMaximumRecovery(mapping, options);
  FailPointRegistry::Global().DeactivateAll();
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kResourceExhausted);
}

TEST(PartialResultTest, InjectedInternalFaultNeverDegrades) {
  TgdMapping mapping = ParseTgdMapping(kSweepMapping).ValueOrDie();
  ASSERT_TRUE(FailPointRegistry::Global()
                  .Activate("maximum_recovery/dependency", {})
                  .ok());  // kAlways, kInternal
  ExecutionOptions options;
  options.threads = 1;
  options.on_exhausted = OnExhausted::kPartial;
  Result<ReverseMapping> r = CqMaximumRecovery(mapping, options);
  FailPointRegistry::Global().DeactivateAll();
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInternal);
}

// The issue's acceptance scenario: CqMaximumRecovery on the exponential
// family, cancelled mid-run (at half its measured runtime, against a
// generous deadline), must return ok with partial=true — and the partial
// recovery must pass the existing C-recovery checker.
TEST(PartialResultTest, CancelMidRecoveryYieldsSoundPartialRecovery) {
  TgdMapping mapping = ExponentialFamilyMapping(2, 5);

  // Measure the organic runtime under kPartial (the family is built to
  // exhaust budgets, so kFail would error; kPartial completes).
  const auto t0 = std::chrono::steady_clock::now();
  {
    SymbolContext symbols;
    ExecutionOptions options;
    options.threads = 1;
    options.symbols = &symbols;
    options.on_exhausted = OnExhausted::kPartial;
    ASSERT_TRUE(CqMaximumRecovery(mapping, options).ok());
  }
  const auto full_ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                           std::chrono::steady_clock::now() - t0)
                           .count();

  // Cancel at ~50% of the measured runtime; halve on a lost race.
  int64_t delay_ms = std::max<int64_t>(1, full_ms / 2);
  for (int attempt = 0; attempt < 6; ++attempt) {
    CancelToken token;
    std::thread canceller([&token, delay_ms] {
      std::this_thread::sleep_for(std::chrono::milliseconds(delay_ms));
      token.Cancel();
    });
    SymbolContext symbols;
    ExecStats stats;
    ExecutionOptions options;
    options.threads = 1;
    options.symbols = &symbols;
    options.stats = &stats;
    options.cancel = &token;
    options.deadline_ms = 600000;  // generous: cancellation must cut first
    options.on_exhausted = OnExhausted::kPartial;
    Result<ReverseMapping> partial = CqMaximumRecovery(mapping, options);
    canceller.join();
    ASSERT_TRUE(partial.ok()) << partial.status().ToString();
    if (!stats.partial.load()) {
      // The run finished before the timer fired; try cancelling earlier.
      delay_ms = std::max<int64_t>(1, delay_ms / 2);
      continue;
    }
    // Cancellation struck mid-pipeline. Whatever stage it interrupted, the
    // result must be a sound C-recovery on a concrete source instance.
    Instance tiny(mapping.source);
    ASSERT_TRUE(tiny.Add("A0_0", {Value::Int(1)}).ok());
    ExecutionOptions check_options;
    check_options.threads = 1;
    auto violation =
        CheckCRecovery(mapping, *partial, {tiny},
                       PerRelationQueries(*mapping.source), check_options);
    ASSERT_TRUE(violation.ok()) << violation.status().ToString();
    EXPECT_FALSE(violation->has_value()) << (*violation)->description;
    return;
  }
  FAIL() << "cancellation never struck mid-run (measured " << full_ms
         << "ms; final delay " << delay_ms << "ms)";
}

TEST(PartialResultTest, StatsReportPartialFlag) {
  ExecStats stats;
  EXPECT_NE(stats.ToString().find("partial=false"), std::string::npos);
  stats.partial.store(true);
  EXPECT_NE(stats.ToString().find("partial=true"), std::string::npos);
  ExecStatsSnapshot snap = stats.Snapshot();
  EXPECT_TRUE(snap.partial);
  stats.Reset();
  EXPECT_FALSE(stats.Snapshot().partial);
}

TEST(PartialResultTest, EnginePartialModeSetsItsStats) {
  EngineConfig config;
  config.threads = 1;
  config.on_exhausted = OnExhausted::kPartial;
  config.limits.max_new_facts = 5;
  Engine engine(config);
  TgdMapping mapping = ParseTgdMapping("R(x,y) -> S(x,y)").ValueOrDie();
  Instance source = GenerateInstance(*mapping.source, 30, 50, 3);
  Result<Instance> partial = engine.Chase(mapping, source);
  ASSERT_TRUE(partial.ok()) << partial.status().ToString();
  EXPECT_TRUE(engine.stats().Snapshot().partial);
}

}  // namespace
}  // namespace mapinv
