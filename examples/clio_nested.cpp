// Nested mappings à la Clio and their polynomial-time inversion.
//
// Section 5.1 of the paper points out that nested mappings [15] — the
// language Clio (the IBM data exchange tool) emits — translate in
// polynomial time into plain SO-tgds, so PolySOInverse can invert mappings
// "most commonly used in practice". This example builds the classic
// department/employee nested mapping, exchanges data with one consistent
// invented key per department, inverts the mapping, and shows that the
// membership structure survives the round trip.

#include <cstdio>

#include "chase/chase_so.h"
#include "chase/round_trip.h"
#include "eval/query_eval.h"
#include "inversion/polyso.h"
#include "logic/nested.h"
#include "parser/parser.h"

using namespace mapinv;  // NOLINT — example brevity

namespace {

void Section(const char* title) { std::printf("\n== %s ==\n", title); }

}  // namespace

int main() {
  Section("A nested mapping (Clio-style)");
  // Dept(d, mgr) -> DeptT(d, k)          [k: invented department key]
  //   Emp(d, e)  -> EmpT(e, k)           [the same k: correlation]
  NestedRule child;
  child.premise = {Atom::Vars("Emp", {"d", "e"})};
  child.conclusion = {Atom::Vars("EmpT", {"e", "k"})};
  NestedRule root;
  root.premise = {Atom::Vars("Dept", {"d", "mgr"})};
  root.conclusion = {Atom::Vars("DeptT", {"d", "k"})};
  root.children = {child};
  NestedMapping nested(Schema{{"Dept", 2}, {"Emp", 2}},
                       Schema{{"DeptT", 2}, {"EmpT", 2}}, {root});
  std::printf("%s", nested.ToString().c_str());
  std::printf("(the child shares the parent's invented key k — the feature "
              "flat tgds cannot express)\n");

  Section("Translation to a plain SO-tgd (Section 5.1, linear time)");
  SOTgdMapping so = NestedToPlainSOTgd(nested).ValueOrDie();
  std::printf("%s", so.ToString().c_str());

  Section("Exchange");
  Instance source = ParseInstance(R"({
    Dept('cs','alice'), Dept('ee','bob'),
    Emp('cs','carol'), Emp('cs','dan'), Emp('ee','eve')
  })", *so.source).ValueOrDie();
  std::printf("source = %s\n", source.ToString().c_str());
  Instance target = ChaseSOTgd(so, source).ValueOrDie();
  std::printf("target = %s\n", target.ToString().c_str());

  Section("PolySOInverse");
  SOInverseMapping inverse = PolySOInverse(so).ValueOrDie();
  std::printf("%s", inverse.ToString().c_str());

  Section("Round trip: membership survives");
  for (const char* text :
       {"Q(d) :- Dept(d,m)",
        "Q(e1,e2) :- Emp(d,e1), Emp(d,e2)",
        "Q(d,e) :- Emp(d,e)"}) {
    ConjunctiveQuery q = ParseCq(text).ValueOrDie();
    AnswerSet direct = EvaluateCq(q, source).ValueOrDie();
    AnswerSet certain =
        RoundTripCertainSO(so, inverse, source, q).ValueOrDie();
    std::printf("%-36s direct |%zu| recovered |%zu| %s\n", text,
                direct.tuples.size(), certain.tuples.size(),
                certain.tuples == direct.tuples ? "(exact)" : "(partial)");
  }
  std::printf("\nColleague pairs (same-department joins) are recovered "
              "exactly; Emp(d,e) pairs\nare recovered exactly too because "
              "the department name is a constant carried by\nDeptT and "
              "pinned through the shared key.\n");
  return 0;
}
