// Peer data management: answering queries against the *source* peer using
// only the data materialised at the *target* peer.
//
// The paper's PDMS motivation (Section 1): mappings between peers are
// directional. A mapping M from peer P1 to peer P2 reformulates P2-queries
// over P1; the inverse of M lets the system reformulate P1-queries over P2,
// treating P2 as the data source. Here P1 publishes a people directory, P2
// materialises two derived views, the original P1 data is gone, and we
// answer P1 queries from P2 alone through the CQ-maximum recovery.

#include <cstdio>

#include "chase/chase_reverse.h"
#include "chase/chase_tgd.h"
#include "eval/query_eval.h"
#include "inversion/cq_maximum_recovery.h"
#include "parser/parser.h"

using namespace mapinv;  // NOLINT — example brevity

namespace {

void Section(const char* title) { std::printf("\n== %s ==\n", title); }

}  // namespace

int main() {
  Section("Peer mapping M : P1 -> P2");
  // P1: Person(name, city), WorksAt(name, company)
  // P2: CityIndex(city, name), Employment(name, company, dept?)
  TgdMapping mapping = ParseTgdMapping(R"(
    Person(n, c)   -> CityIndex(c, n)
    WorksAt(n, co) -> EXISTS d . Employment(n, co, d)
  )").ValueOrDie();
  std::printf("%s", mapping.ToString().c_str());

  Section("P1 published this data once (then went offline)");
  Instance p1 = ParseInstance(R"({
    Person('ada', 'london'), Person('erd', 'budapest'),
    WorksAt('ada', 'analytical-engines'), WorksAt('erd', 'oeis')
  })", *mapping.source).ValueOrDie();
  std::printf("P1 = %s\n", p1.ToString().c_str());

  Instance p2 = ChaseTgds(mapping, p1).ValueOrDie();
  Section("P2 materialised views");
  std::printf("P2 = %s\n", p2.ToString().c_str());

  Section("Inverse mapping M* : P2 -> P1 (CQ-maximum recovery)");
  ReverseMapping inverse = CqMaximumRecovery(mapping).ValueOrDie();
  std::printf("%s", inverse.ToString().c_str());

  Section("Reformulating P1 queries against P2");
  // The PDMS evaluates P1 queries by chasing P2's data through M* and
  // taking certain answers — no access to P1 needed.
  for (const char* text :
       {"Q(n) :- Person(n, c)",
        "Q(n, co) :- WorksAt(n, co)",
        "Q(n) :- Person(n, c), WorksAt(n, co)"}) {
    ConjunctiveQuery q = ParseCq(text).ValueOrDie();
    AnswerSet from_p2 = CertainAnswersReverse(inverse, p2, q).ValueOrDie();
    AnswerSet ground_truth = EvaluateCq(q, p1).ValueOrDie();
    std::printf("%-38s from P2 %-34s (P1 truth %s)\n", text,
                from_p2.ToString().c_str(), ground_truth.ToString().c_str());
  }

  std::printf(
      "\nEvery certain answer computed from P2 is sound with respect to the\n"
      "original P1 data (Definition 3.2), and no sound reverse mapping can\n"
      "recover more (Definition 3.4).\n");
  return 0;
}
