// Quickstart: invert a schema mapping and bring exchanged data home.
//
// Walks the paper's running example (Examples 3.1 / 3.3): a mapping that
// stores the join of R and S in a target relation T, three candidate
// reverse mappings of increasing quality, and the CQ-maximum recovery
// computed by the Section 4 algorithm.

#include <cstdio>

#include "engine/engine.h"
#include "eval/query_eval.h"
#include "parser/parser.h"

using namespace mapinv;  // NOLINT — example brevity

namespace {

void Section(const char* title) { std::printf("\n== %s ==\n", title); }

}  // namespace

int main() {
  // One Engine for the whole walkthrough: it owns the thread pool, the
  // fresh-null scope (labels restart at zero, so this program prints the
  // same instances every run) and the stats counters printed at the end.
  Engine engine({.threads = 4});

  Section("The mapping M (Example 3.1)");
  // Target relation T stores the join of source relations R and S.
  TgdMapping mapping =
      ParseTgdMapping("R(x,y), S(y,z) -> T(x,z)").ValueOrDie();
  std::printf("%s", mapping.ToString().c_str());

  Section("A source instance and its canonical exchange");
  Instance source =
      ParseInstance("{ R(1,2), R(3,4), S(2,5) }", *mapping.source)
          .ValueOrDie();
  std::printf("I        = %s\n", source.ToString().c_str());
  Instance target = engine.Chase(mapping, source).ValueOrDie();
  std::printf("chase(I) = %s\n", target.ToString().c_str());

  Section("Computing the CQ-maximum recovery (Section 4)");
  ReverseMapping recovery = engine.Invert(mapping).ValueOrDie();
  std::printf("%s", recovery.ToString().c_str());

  Section("Round trip: chase back with the recovery");
  std::vector<Instance> worlds =
      engine.RoundTrip(mapping, recovery, source).ValueOrDie();
  for (const Instance& world : worlds) {
    std::printf("recovered world: %s\n", world.ToString().c_str());
  }

  Section("What queries can still see (certain answers)");
  for (const char* text :
       {"Q(x) :- R(x,y)", "Q(x,y) :- R(x,z), S(z,y)", "Q(x) :- S(x,y)"}) {
    ConjunctiveQuery q = ParseCq(text).ValueOrDie();
    AnswerSet direct = EvaluateCq(q, source).ValueOrDie();
    AnswerSet certain =
        engine.RoundTripCertain(mapping, recovery, source, q).ValueOrDie();
    std::printf("%-28s direct %-18s recovered %s\n", text,
                direct.ToString().c_str(), certain.ToString().c_str());
  }

  Section("Compare with the naive recovery M' of Example 3.1");
  ReverseMapping parsed =
      ParseReverseMapping("T(x,y), C(x), C(y) -> EXISTS u . R(x,u)")
          .ValueOrDie();
  // Rebind the parsed dependencies to the full schemas of M (the inferred
  // target schema only mentions R, but recovered worlds must carry S too).
  ReverseMapping naive(mapping.target, mapping.source, parsed.deps);
  ConjunctiveQuery join = ParseCq("Q(x,y) :- R(x,z), S(z,y)").ValueOrDie();
  AnswerSet via_naive =
      engine.RoundTripCertain(mapping, naive, source, join).ValueOrDie();
  AnswerSet via_max =
      engine.RoundTripCertain(mapping, recovery, source, join).ValueOrDie();
  std::printf("join via naive recovery:      %s\n",
              via_naive.ToString().c_str());
  std::printf("join via CQ-maximum recovery: %s\n",
              via_max.ToString().c_str());
  std::printf("\nThe CQ-maximum recovery retrieves the full join pattern; "
              "the naive reverse\nmapping loses it (Example 3.3).\n");

  Section("Execution stats");
  std::printf("%s\n", engine.stats().ToString().c_str());
  return 0;
}
