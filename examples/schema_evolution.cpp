// Schema evolution: maintain a mapping when the source schema evolves.
//
// The paper's Section 1 scenario: a mapping M relates schema A to schema B.
// Schema A evolves into A', expressed as a mapping M' : A -> A'. The
// relationship between the *new* schema A' and B is (M')⁻¹ ∘ M. This
// example computes the inverse of the evolution mapping with the Section 4
// algorithm and runs the composed pipeline on data that only exists in the
// evolved schema, landing it in B without ever reconstructing A by hand.

#include <cstdio>

#include "chase/chase_reverse.h"
#include "engine/engine.h"
#include "eval/query_eval.h"
#include "inversion/compose.h"
#include "parser/parser.h"

using namespace mapinv;  // NOLINT — example brevity

namespace {

void Section(const char* title) { std::printf("\n== %s ==\n", title); }

}  // namespace

int main() {
  // The Engine facade wires thread pool, symbol scope and resource limits
  // into every call; primitives outside the facade (ChaseReverse, compose)
  // take the same options via MakeOptions().
  Engine engine;

  Section("Original mapping M : A -> B");
  // A: Emp(name, city, salary). B: Payroll(name, salary).
  TgdMapping m = ParseTgdMapping(R"(
    Emp(n, c, s) -> Payroll(n, s)
  )").ValueOrDie();
  std::printf("%s", m.ToString().c_str());

  Section("Evolution mapping M' : A -> A' (vertical partitioning)");
  // A evolves into A': the Emp table is split into EmpCity and EmpSal.
  TgdMapping evolution = ParseTgdMapping(R"(
    Emp(n, c, s) -> EmpCity(n, c), EmpSal(n, s)
  )").ValueOrDie();
  std::printf("%s", evolution.ToString().c_str());

  Section("Inverting the evolution: (M')* : A' -> A");
  ReverseMapping back = engine.Invert(evolution).ValueOrDie();
  std::printf("%s", back.ToString().c_str());

  Section("New data lives only in A'");
  Instance evolved = ParseInstance(R"({
    EmpCity('ada', 'london'), EmpSal('ada', 90),
    EmpCity('erd', 'budapest'), EmpSal('erd', 60)
  })", *back.source).ValueOrDie();
  std::printf("A' = %s\n", evolved.ToString().c_str());

  Section("Composed pipeline (M')* then M : A' -> B");
  Instance recovered_a =
      ChaseReverse(back, evolved, engine.MakeOptions()).ValueOrDie();
  std::printf("recovered A = %s\n", recovered_a.ToString().c_str());
  Instance b = engine.Chase(m, recovered_a).ValueOrDie();
  std::printf("B           = %s\n", b.ToString().c_str());

  Section("Certain answers over B");
  ConjunctiveQuery q = ParseCq("Q(n, s) :- Payroll(n, s)").ValueOrDie();
  AnswerSet payroll = EvaluateCq(q, b).ValueOrDie();
  std::printf("Payroll(n,s): %s\n", payroll.CertainOnly().ToString().c_str());

  Section("Syntactic composition (SO-tgd algebra)");
  // Forward mappings compose syntactically (the Section 5.1 language is
  // closed under composition by unfolding): evolve A -> A', then publish
  // A' -> B2. The inverse hop above stays operational because its language
  // (premise C(·), ≠) lives outside plain SO-tgds.
  TgdMapping publish = ParseTgdMapping(R"(
    EmpSal(n, s) -> Payroll2(n, s)
  )").ValueOrDie();
  SOTgdMapping composed =
      ComposeTgdMappings(evolution, publish, engine.MakeOptions()).ValueOrDie();
  std::printf("M' ∘ publish (A -> B2, computed by unfolding):\n%s",
              composed.ToString().c_str());
  return 0;
}
