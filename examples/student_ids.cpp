// Student ids: plain SO-tgds and the polynomial-time inverse (Section 5).
//
// Example 5.1 of the paper: translating Takes(name, course) into
// Enrollment(studentId, course) needs one *consistent* id per student name —
// expressible with the plain SO-tgd Takes(n,c) -> Enrollment(f(n),c) but by
// no set of tgds. PolySOInverse inverts it in polynomial time; the round
// trip recovers the enrolment structure exactly, with student names
// abstracted into one labelled null per id.

#include <cstdio>

#include "chase/chase_so.h"
#include "chase/round_trip.h"
#include "eval/query_eval.h"
#include "inversion/polyso.h"
#include "parser/parser.h"

using namespace mapinv;  // NOLINT — example brevity

namespace {

void Section(const char* title) { std::printf("\n== %s ==\n", title); }

}  // namespace

int main() {
  Section("Plain SO-tgd (Example 5.1)");
  SOTgdMapping mapping =
      ParseSOTgdMapping("Takes(n, c) -> Enrollment(f(n), c)").ValueOrDie();
  std::printf("%s", mapping.ToString().c_str());

  Section("Source data");
  Instance source = ParseInstance(R"({
    Takes('ann', 'db'), Takes('ann', 'os'), Takes('bob', 'db')
  })", *mapping.source).ValueOrDie();
  std::printf("I = %s\n", source.ToString().c_str());

  Section("Exchange: one fresh id per student (Skolem semantics)");
  Instance target = ChaseSOTgd(mapping, source).ValueOrDie();
  std::printf("J = %s\n", target.ToString().c_str());
  std::printf("(ann's two courses share the id f('ann'))\n");

  Section("PolySOInverse (Section 5.2, polynomial time)");
  SOInverseMapping inverse = PolySOInverse(mapping).ValueOrDie();
  std::printf("%s", inverse.ToString().c_str());

  Section("Round trip");
  std::vector<Instance> worlds =
      RoundTripWorldsSO(mapping, inverse, source).ValueOrDie();
  for (const Instance& world : worlds) {
    std::printf("recovered: %s\n", world.ToString().c_str());
  }
  std::printf("(names return as labelled nulls; co-enrolment is preserved "
              "because f#1\ninverts f consistently)\n");

  Section("Certain answers survive the trip");
  for (const char* text :
       {"Q(c) :- Takes(n, c)",
        "Q(c1, c2) :- Takes(n, c1), Takes(n, c2)"}) {
    ConjunctiveQuery q = ParseCq(text).ValueOrDie();
    AnswerSet direct = EvaluateCq(q, source).ValueOrDie();
    AnswerSet certain =
        RoundTripCertainSO(mapping, inverse, source, q).ValueOrDie();
    std::printf("%-36s direct %-30s recovered %s\n", text,
                direct.ToString().c_str(), certain.ToString().c_str());
  }
  std::printf("\nThe self-join query (same student, two courses) is fully "
              "recovered even\nthough the student names themselves are "
              "gone.\n");
  return 0;
}
