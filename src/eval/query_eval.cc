#include "eval/query_eval.h"

#include <algorithm>
#include <map>

namespace mapinv {

bool AnswerSet::Contains(const Tuple& t) const {
  return std::binary_search(tuples.begin(), tuples.end(), t);
}

bool AnswerSet::SubsetOf(const AnswerSet& other) const {
  return std::includes(other.tuples.begin(), other.tuples.end(),
                       tuples.begin(), tuples.end());
}

AnswerSet AnswerSet::CertainOnly() const {
  AnswerSet out;
  for (const Tuple& t : tuples) {
    bool null_free = std::all_of(t.begin(), t.end(), [](const Value& v) {
      return v.is_constant();
    });
    if (null_free) out.tuples.push_back(t);
  }
  return out;
}

AnswerSet AnswerSet::Intersect(const AnswerSet& other) const {
  AnswerSet out;
  std::set_intersection(tuples.begin(), tuples.end(), other.tuples.begin(),
                        other.tuples.end(), std::back_inserter(out.tuples));
  return out;
}

std::string AnswerSet::ToString() const {
  std::string out = "{ ";
  for (size_t i = 0; i < tuples.size(); ++i) {
    if (i > 0) out += ", ";
    out += "(";
    for (size_t j = 0; j < tuples[i].size(); ++j) {
      if (j > 0) out += ",";
      out += tuples[i][j].ToString();
    }
    out += ")";
  }
  out += " }";
  return out;
}

AnswerSet MakeAnswerSet(std::vector<Tuple> tuples) {
  std::sort(tuples.begin(), tuples.end());
  tuples.erase(std::unique(tuples.begin(), tuples.end()), tuples.end());
  return AnswerSet{std::move(tuples)};
}

Result<AnswerSet> EvaluateCq(const ConjunctiveQuery& query,
                             const Instance& instance, ExecStats* stats) {
  HomSearch search(instance);
  search.set_stats(stats);
  std::vector<Tuple> raw;
  MAPINV_RETURN_NOT_OK(search.ForEachHom(
      query.atoms, HomConstraints{}, Assignment{},
      [&](const Assignment& h) {
        Tuple t;
        t.reserve(query.head.size());
        for (VarId v : query.head) t.push_back(h.at(v));
        raw.push_back(std::move(t));
        return true;
      }));
  return MakeAnswerSet(std::move(raw));
}

Result<AnswerSet> EvaluateDisjunct(const std::vector<VarId>& head,
                                   const CqDisjunct& disjunct,
                                   const Instance& instance, ExecStats* stats) {
  // Merge equality classes of head variables: pick the first-mentioned head
  // variable of each class as representative and rewrite the atoms.
  std::map<VarId, VarId> rep;
  auto find = [&](VarId v) {
    VarId r = v;
    while (rep.contains(r) && rep[r] != r) r = rep[r];
    return r;
  };
  for (VarId h : head) {
    if (!rep.contains(h)) rep[h] = h;
  }
  for (const VarPair& eq : disjunct.equalities) {
    if (!rep.contains(eq.first)) rep[eq.first] = eq.first;
    if (!rep.contains(eq.second)) rep[eq.second] = eq.second;
    VarId a = find(eq.first);
    VarId b = find(eq.second);
    if (a != b) rep[std::max(a, b)] = std::min(a, b);
  }

  std::vector<Atom> atoms;
  atoms.reserve(disjunct.atoms.size());
  for (const Atom& a : disjunct.atoms) {
    Atom out;
    out.relation = a.relation;
    out.terms.reserve(a.terms.size());
    for (const Term& t : a.terms) {
      if (t.is_variable()) {
        out.terms.push_back(Term::Var(find(t.var())));
      } else {
        out.terms.push_back(t);
      }
    }
    atoms.push_back(std::move(out));
  }

  // Inequalities evaluate naively (two values are unequal iff they are
  // distinct, nulls included) — exact on null-free instances; see
  // query_eval.h for the certain-answer caveat on instances with nulls.
  HomConstraints constraints;
  for (const VarPair& ne : disjunct.inequalities) {
    constraints.inequalities.emplace_back(find(ne.first), find(ne.second));
  }

  HomSearch search(instance);
  search.set_stats(stats);
  std::vector<Tuple> raw;
  MAPINV_RETURN_NOT_OK(search.ForEachHom(
      atoms, constraints, Assignment{}, [&](const Assignment& h) {
        Tuple t;
        t.reserve(head.size());
        for (VarId v : head) {
          auto it = h.find(find(v));
          if (it == h.end()) return true;  // unsafe var: skip (validated away)
          t.push_back(it->second);
        }
        raw.push_back(std::move(t));
        return true;
      }));
  return MakeAnswerSet(std::move(raw));
}

Result<AnswerSet> EvaluateUnionCq(const UnionCq& query,
                                  const Instance& instance, ExecStats* stats) {
  std::vector<Tuple> raw;
  for (const CqDisjunct& d : query.disjuncts) {
    MAPINV_ASSIGN_OR_RETURN(AnswerSet part,
                            EvaluateDisjunct(query.head, d, instance, stats));
    raw.insert(raw.end(), part.tuples.begin(), part.tuples.end());
  }
  return MakeAnswerSet(std::move(raw));
}

}  // namespace mapinv
