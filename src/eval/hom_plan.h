/// \file hom_plan.h
/// \brief Compiled join plans for the homomorphism-search kernel.
///
/// The interpretive search in hom.cc re-derives the same decisions for every
/// candidate tuple: it rescans all atoms per recursion step to find the
/// most-bound one (O(atoms²) per step), and it hashes a VarId→Value map for
/// every variable it touches. Both are per-*conjunction* facts, not
/// per-*tuple* facts: which atom comes next depends only on which variables
/// are bound — never on their values — so the whole join order is a static
/// property of (atoms, initially-bound variables). A HomPlan fixes that
/// order once and lowers each atom to a check/bind micro-program over dense
/// plan-local value slots:
///
///   * join order    — greedy: most bound positions first, ties broken by
///                     smaller relation cardinality (snapshotted at compile
///                     time), then by original atom index;
///   * slot lowering — every variable gets a dense slot id; the inner loop
///                     runs over a flat std::vector<Value> with no hashing
///                     or allocation, converting to an Assignment only at
///                     the callback boundary;
///   * constraints   — constant-variable checks fuse into the bind op of
///                     the slot; each inequality is checked exactly once, at
///                     the op that binds its later-bound endpoint.
///
/// Candidate selection happens at run time (values vary), but the *set of
/// bound positions* per step is compiled: the executor looks up the index
/// bucket of every bound position and scans the smallest one — or the
/// intersection of the two smallest when the win is worth the merge — where
/// the interpreter always took the first bound position's bucket.
///
/// Plans are immutable after compilation and are cached per HomSearch under
/// a content key (atoms + constraints + bound-variable set), so concurrent
/// searches over one instance share them; see HomSearch::GetPlan.
///
/// Enumeration-order contract: for a fixed plan the executor enumerates
/// homomorphisms in a deterministic order (candidates ascend by tuple
/// insertion index at every step). The order can differ from the
/// interpreter's only through the cardinality tie-break in the join order;
/// the homomorphism *set* is always identical (tests/hom_plan_test.cc
/// asserts this differentially against the retained interpreter).

#ifndef MAPINV_EVAL_HOM_PLAN_H_
#define MAPINV_EVAL_HOM_PLAN_H_

#include <cstdint>
#include <vector>

#include "base/status.h"
#include "data/instance.h"
#include "logic/cq.h"

namespace mapinv {

struct HomConstraints;

/// \brief Content identity of a plan: what it was compiled from. Two
/// ForEachHom calls reuse one plan iff their keys are equal — same atoms
/// (relations, term structure, constants), same constraints, same *set* of
/// initially-bound variables (values are runtime inputs, not plan inputs).
struct HomPlanKey {
  std::vector<uint64_t> words;
  size_t hash = 0;

  friend bool operator==(const HomPlanKey& a, const HomPlanKey& b) {
    return a.hash == b.hash && a.words == b.words;
  }
};

/// \brief A compiled join plan. Data members are an implementation detail
/// shared with the executor in hom.cc; treat them as read-only.
struct HomPlan {
  /// One position of one atom, lowered. Ops run in position order; the first
  /// failing op rejects the candidate tuple.
  struct Op {
    enum class Kind : uint8_t {
      kCheckConst,  ///< tuple[pos] must equal `value`
      kCheckSlot,   ///< tuple[pos] must equal slots[slot]
      kBind,        ///< slots[slot] = tuple[pos], then run fused checks
    };
    Kind kind;
    /// Fused into kBind: reject labelled nulls (the paper's C(·)).
    bool must_be_constant = false;
    uint32_t pos = 0;
    uint16_t slot = 0;
    Value value;
    /// Fused into kBind: slots whose value must differ from the bound one
    /// (each inequality constraint compiles into exactly one bind op — the
    /// one that binds its later-bound endpoint).
    std::vector<uint16_t> distinct_from;
  };

  /// A position whose value is known before the step starts scanning
  /// candidates — from a constant term or a slot bound by an earlier step
  /// (or at init). These drive index-bucket selection.
  struct BoundPos {
    uint32_t pos = 0;
    bool is_const = false;
    Value value;       ///< valid when is_const
    uint16_t slot = 0; ///< valid when !is_const
  };

  /// One atom of the conjunction, in execution order.
  struct Step {
    RelationId relation = 0;
    uint32_t atom_index = 0;  ///< index in the source conjunction
    std::vector<BoundPos> bound_positions;
    std::vector<Op> ops;
  };

  std::vector<Step> steps;

  /// Total number of value slots; slot ids index a flat vector<Value>.
  uint16_t num_slots = 0;
  /// slot -> variable it carries (diagnostics and callback conversion).
  std::vector<VarId> slot_vars;

  /// Variables pre-bound from the `fixed` assignment at execution start
  /// (`fixed_slots` is parallel). Every key of the fixed assignment the
  /// plan was compiled for appears here, sorted by VarId.
  std::vector<VarId> fixed_vars;
  std::vector<uint16_t> fixed_slots;

  /// Slots that must hold constants, checkable at init (fixed variables
  /// under a constant_vars constraint).
  std::vector<uint16_t> init_constant_slots;
  /// Inequalities between two init-bound slots, checked once at init.
  std::vector<std::pair<uint16_t, uint16_t>> init_inequalities;

  /// Slots to emit into the callback Assignment (everything bound by a step
  /// rather than by `fixed`; `emit_vars` is parallel).
  std::vector<uint16_t> emit_slots;
  std::vector<VarId> emit_vars;

  /// The content key this plan was compiled under (set by HomSearch).
  HomPlanKey key;
};

/// Builds the content key for (atoms, constraints, bound variable set).
/// `bound_vars` must be sorted and duplicate-free.
HomPlanKey BuildHomPlanKey(const std::vector<Atom>& atoms,
                           const HomConstraints& constraints,
                           const std::vector<VarId>& bound_vars);

/// Compiles a plan against `instance` (schema resolution + cardinality
/// snapshot for the join-order tie-break). `bound_vars` must be sorted and
/// duplicate-free. Fails with kNotFound for a relation missing from the
/// instance schema and kMalformed for arity mismatches or function terms —
/// the same contract as the interpretive search.
Result<HomPlan> CompileHomPlan(const Instance& instance,
                               const std::vector<Atom>& atoms,
                               const HomConstraints& constraints,
                               const std::vector<VarId>& bound_vars);

}  // namespace mapinv

#endif  // MAPINV_EVAL_HOM_PLAN_H_
