#include "eval/instance_core.h"

#include <memory>
#include <unordered_map>

#include "engine/eval_cache.h"
#include "engine/failpoint.h"
#include "eval/hom.h"

namespace mapinv {

namespace {

FailPoint fp_core_cache_insert("instance_core/cache_insert");

// Cache key for core computation: schema signature plus the instance's
// deterministic rendering. Unlike containment keys this is *exact* (null
// labels are not canonicalised): a cached core is replayed only onto a
// bit-identical input, because the caller receives the cached instance's
// nulls verbatim.
std::string CoreKey(const Instance& instance) {
  std::string key = "core|";
  const Schema& schema = instance.schema();
  for (RelationId r = 0; r < schema.size(); ++r) {
    key.append(schema.name(r)).append("/").append(
        std::to_string(schema.arity(r))).append(";");
  }
  key.append("|").append(instance.ToString());
  return key;
}

// Encodes the instance as an atom conjunction: nulls become variables (one
// per label), constants become constant terms. Returns the null->variable
// map through `null_vars`.
std::vector<Atom> InstanceAsAtoms(
    const Instance& instance,
    std::unordered_map<Value, VarId, ValueHash>* null_vars) {
  std::vector<Atom> atoms;
  FreshVarGen gen("core");
  RelationId last_rel = kInvalidRelation;
  RelName rel_name = 0;
  instance.ForEachFact([&](RelationId r, RowView row) {
    if (r != last_rel) {
      last_rel = r;
      rel_name = InternRelation(instance.schema().name(r));
    }
    Atom a;
    a.relation = rel_name;
    a.terms.reserve(row.size());
    for (const Value& v : row) {
      if (v.is_constant()) {
        a.terms.push_back(Term::Const(v));
      } else {
        auto [it, inserted] = null_vars->emplace(v, 0);
        if (inserted) it->second = gen.Next();
        a.terms.push_back(Term::Var(it->second));
      }
    }
    atoms.push_back(std::move(a));
  });
  return atoms;
}

// Looks for an endomorphism of `instance` whose image avoids `target_null`
// entirely (no null maps to it — in particular the null itself moves).
// This is the progress condition that makes the greedy fold terminate: a
// mere automorphism (e.g. swapping two interchangeable nulls) is not a
// fold, and if a proper retract C exists then some null n is outside C and
// the retraction is an endomorphism avoiding n. Returns the full value map
// on success.
Result<bool> FindFoldingEndomorphism(
    const Instance& instance, Value target_null,
    std::unordered_map<Value, Value, ValueHash>* out_map,
    ExecStats* stats = nullptr) {
  std::unordered_map<Value, VarId, ValueHash> null_vars;
  std::vector<Atom> atoms = InstanceAsAtoms(instance, &null_vars);
  // An image fact avoids `target_null` iff it lives in the sub-instance of
  // facts not containing it, so search homomorphisms into that restriction
  // — the search then prunes eagerly instead of post-filtering assignments.
  Instance restricted(instance.schema_ptr());
  Status add_status = Status::OK();
  instance.ForEachFact([&](RelationId r, RowView row) {
    for (const Value& v : row) {
      if (v == target_null) return true;  // skip facts mentioning the null
    }
    Result<bool> added = restricted.AddRow(r, row);
    if (!added.ok()) {
      add_status = added.status();
      return false;
    }
    return true;
  });
  MAPINV_RETURN_NOT_OK(add_status);
  HomSearch search(restricted);
  search.set_stats(stats);
  bool found = false;
  MAPINV_RETURN_NOT_OK(search.ForEachHom(
      atoms, HomConstraints{}, Assignment{}, [&](const Assignment& h) {
        out_map->clear();
        for (const auto& [null_value, var] : null_vars) {
          out_map->emplace(null_value, h.at(var));
        }
        found = true;
        return false;  // stop
      }));
  return found;
}

Instance ApplyValueMap(
    const Instance& instance,
    const std::unordered_map<Value, Value, ValueHash>& map) {
  Instance out(instance.schema_ptr());
  Tuple scratch;
  instance.ForEachFact([&](RelationId r, RowView row) {
    scratch.clear();
    for (const Value& v : row) {
      auto it = map.find(v);
      scratch.push_back(it == map.end() ? v : it->second);
    }
    out.AddRow(r, scratch).ValueOrDie();
  });
  return out;
}

}  // namespace

Result<Instance> CoreOfInstance(const Instance& instance, ExecStats* stats) {
  const std::string key = CoreKey(instance);
  EvalCache& cache = GlobalEvalCache();
  if (std::shared_ptr<const Instance> hit = cache.GetInstance(key, stats)) {
    return Instance(*hit);
  }
  Instance current = instance;
  bool changed = true;
  while (changed) {
    changed = false;
    std::vector<Value> nulls;
    for (Value v : current.ActiveDomain()) {
      if (v.is_null()) nulls.push_back(v);
    }
    for (Value null_value : nulls) {
      std::unordered_map<Value, Value, ValueHash> map;
      MAPINV_ASSIGN_OR_RETURN(
          bool found,
          FindFoldingEndomorphism(current, null_value, &map, stats));
      if (found) {
        current = ApplyValueMap(current, map);
        changed = true;
        break;
      }
    }
  }
  MAPINV_FAILPOINT(fp_core_cache_insert);
  cache.PutInstance(key, std::make_shared<const Instance>(current));
  return current;
}

Result<bool> IsCore(const Instance& instance) {
  for (Value v : instance.ActiveDomain()) {
    if (!v.is_null()) continue;
    std::unordered_map<Value, Value, ValueHash> map;
    MAPINV_ASSIGN_OR_RETURN(bool found,
                            FindFoldingEndomorphism(instance, v, &map));
    if (found) return false;
  }
  return true;
}

}  // namespace mapinv
