/// \file hom.h
/// \brief Homomorphism search from atom conjunctions into instances, running
/// on compiled join plans.
///
/// This is the workhorse shared by query evaluation, the chase (premise
/// matching), CQ containment and instance homomorphism tests. A
/// *homomorphism* assigns a value to every variable of the atom conjunction
/// such that every atom maps to a fact of the instance; optional side
/// constraints restrict assignments:
///   * constant_vars — the variable must map to a constant (the paper's C(·))
///   * inequalities  — the two variables must map to distinct values.
///
/// Atom arguments may be variables or constants (constants must match
/// exactly); function terms are rejected — they never reach evaluation in
/// any of the paper's algorithms.
///
/// ForEachHom compiles the conjunction into a HomPlan (see hom_plan.h) on
/// first use and caches it under a content key, so repeated matching of the
/// same rule pays join-order selection and constraint lowering once. The
/// pre-plan interpreter is retained as ForEachHomReference for differential
/// testing.

#ifndef MAPINV_EVAL_HOM_H_
#define MAPINV_EVAL_HOM_H_

#include <functional>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "base/status.h"
#include "data/instance.h"
#include "logic/cq.h"

namespace mapinv {

struct ExecStats;
struct HomPlan;

/// A partial or total variable assignment.
using Assignment = std::unordered_map<VarId, Value>;

/// \brief Side constraints on homomorphisms.
struct HomConstraints {
  /// Variables that must be assigned constant (non-null) values.
  std::unordered_set<VarId> constant_vars;
  /// Pairs of variables that must be assigned distinct values.
  std::vector<VarPair> inequalities;
};

/// \brief Homomorphism enumerator over one instance.
///
/// The per-relation, per-position value indexes the search needs are owned
/// by the Instance itself (Instance::IndexFor): built lazily, extended
/// incrementally as the append-only instance grows, and shared by every
/// HomSearch over the same instance — and, through copy-on-write stores, by
/// its forks. Constructing a HomSearch is therefore free; it carries only a
/// reference and a plan cache. The instance must outlive the search object.
class HomSearch {
 public:
  explicit HomSearch(const Instance& instance) : instance_(instance) {}

  /// Enumerates every homomorphism extending `fixed` from `atoms` into the
  /// instance under `constraints`. The callback receives each total
  /// assignment; returning false stops the enumeration early.
  ///
  /// Compiles (or fetches from the plan cache) a HomPlan for
  /// (atoms, constraints, key set of `fixed`) and executes it.
  ///
  /// Fails with kNotFound if an atom's relation is missing from the
  /// instance's schema, and with kMalformed on function-term arguments.
  Status ForEachHom(const std::vector<Atom>& atoms,
                    const HomConstraints& constraints, const Assignment& fixed,
                    const std::function<bool(const Assignment&)>& callback) const;

  /// True if at least one homomorphism exists.
  Result<bool> ExistsHom(const std::vector<Atom>& atoms,
                         const HomConstraints& constraints,
                         const Assignment& fixed = {}) const;

  /// Returns the cached plan for (atoms, constraints, keys of `fixed`),
  /// compiling and caching it on a miss. Thread-safe; returned plans are
  /// immutable and shared.
  Result<std::shared_ptr<const HomPlan>> GetPlan(
      const std::vector<Atom>& atoms, const HomConstraints& constraints,
      const Assignment& fixed = {}) const;

  /// Same, with the bound-variable set given directly (any order,
  /// duplicates tolerated). Lets callers obtain a plan before the values of
  /// the bound variables are known — e.g. the parallel chase compiles the
  /// remaining-premise plan once, then executes it per candidate binding.
  Result<std::shared_ptr<const HomPlan>> GetPlanForVars(
      const std::vector<Atom>& atoms, const HomConstraints& constraints,
      std::vector<VarId> bound_vars) const;

  /// Executes a compiled plan. `fixed` must bind exactly the variables the
  /// plan was compiled with (`plan.fixed_vars`); extra keys are copied into
  /// the callback assignment but take no part in matching. The callback
  /// contract matches ForEachHom.
  ///
  /// Runs batch-at-a-time through the vectorized executor (see
  /// eval/vector_plan.h) unless set_vector_batch(0) selected the scalar
  /// path; matches arrive in the same order either way.
  Status ForEachHomWithPlan(
      const HomPlan& plan, const Assignment& fixed,
      const std::function<bool(const Assignment&)>& callback) const;

  /// Scalar tuple-at-a-time plan execution, bypassing the vectorized
  /// executor regardless of set_vector_batch — the differential oracle for
  /// the vectorized path, and the engine's ExecutionOptions::vectorized =
  /// false route. Same contract and enumeration order as ForEachHomWithPlan.
  Status ForEachHomWithPlanScalar(
      const HomPlan& plan, const Assignment& fixed,
      const std::function<bool(const Assignment&)>& callback) const;

  /// Block size for the vectorized executor behind ForEachHom /
  /// ForEachHomWithPlan; 0 selects the scalar tuple-at-a-time executor.
  /// Existence checks (Exists*) always run scalar — they stop at the first
  /// match, where batching buys nothing.
  void set_vector_batch(size_t batch) { vector_batch_ = batch; }
  size_t vector_batch() const { return vector_batch_; }

  /// Plan-size ceiling for the vectorized executor: compiled plans with more
  /// steps run scalar even when a vector batch is set (and bump
  /// ExecStats::vector_plan_fallbacks). Defaults to kVectorMaxPlanSteps; the
  /// chase engines set it from ExecutionOptions::vector_max_plan_steps.
  void set_vector_max_plan_steps(size_t steps) {
    vector_max_plan_steps_ = steps;
  }
  size_t vector_max_plan_steps() const { return vector_max_plan_steps_; }

  /// Existence check on a compiled plan. Equivalent to ForEachHomWithPlan
  /// with a stop-at-first callback, but never materialises an Assignment —
  /// the fast path for per-trigger conclusion checks, where the same plan
  /// runs thousands of times and only the yes/no answer matters.
  Result<bool> ExistsHomWithPlan(const HomPlan& plan,
                                 const Assignment& fixed) const;

  /// Same existence check with the bound values given positionally:
  /// `fixed_values[i]` is the value of `plan.fixed_vars[i]`. Skips the
  /// per-call hash-map construction and lookups entirely — the chase fire
  /// loops call this once per trigger.
  Result<bool> ExistsHomWithPlanValues(
      const HomPlan& plan, const std::vector<Value>& fixed_values) const;

  /// The pre-plan interpretive search, retained as the reference semantics
  /// for differential testing (tests/hom_plan_test.cc). Same contract and
  /// homomorphism set as ForEachHom; enumeration order may differ only
  /// through the plan's cardinality tie-break.
  Status ForEachHomReference(
      const std::vector<Atom>& atoms, const HomConstraints& constraints,
      const Assignment& fixed,
      const std::function<bool(const Assignment&)>& callback) const;

  /// Validates `atoms` against the instance schema and builds the indexes
  /// for every relation they mention. After Prewarm, concurrent ForEachHom
  /// calls over the same atoms are safe as long as the instance does not
  /// grow — the lazily built index structures are then only read (the plan
  /// cache takes its own lock). The parallel chase prewarms and compiles
  /// plans before fanning trigger enumeration out.
  Status Prewarm(const std::vector<Atom>& atoms) const;

  /// Streams search counters (enumerations started, candidate tuples
  /// rejected, plans compiled, bucket candidates scanned, slot bindings)
  /// into `stats`; nullptr disables. Counter updates are atomic, so one
  /// sink may serve concurrent searches.
  void set_stats(ExecStats* stats) { stats_ = stats; }

 private:
  // Thin shim over Instance::IndexFor that books catch-up work into
  // stats_->index_catchup_rows.
  const RelationIndex& IndexFor(RelationId relation) const;

  // Shared plan runner behind ForEachHomWithPlan and ExistsHomWithPlan(Values).
  // Callback mode (callback != nullptr) enumerates every match; exists mode
  // (callback == nullptr) stops at the first full match, sets *found, and
  // never materialises an Assignment. Bound values come from `fixed` or,
  // when `fixed_values` is non-null (exists mode only), positionally from
  // there; `fixed` may then be null.
  Status RunPlan(const HomPlan& plan, const Assignment* fixed,
                 const Value* fixed_values,
                 const std::function<bool(const Assignment&)>* callback,
                 bool* found) const;

  const Instance& instance_;
  ExecStats* stats_ = nullptr;
  // Defaults match ExecutionOptions::vector_batch / vector_max_plan_steps;
  // the chase engines set both from their options before collecting
  // triggers.
  size_t vector_batch_ = 1024;
  size_t vector_max_plan_steps_ = 32;

  // Plan cache: key hash -> plans with that hash (full key compared to rule
  // out collisions). Guarded by plans_mutex_ so concurrent searches after
  // Prewarm stay safe.
  mutable std::mutex plans_mutex_;
  mutable std::unordered_map<size_t,
                             std::vector<std::shared_ptr<const HomPlan>>>
      plans_;
};

/// \brief True if there is a homomorphism from instance `from` into instance
/// `to`: a value map that is the identity on constants, maps nulls anywhere,
/// and sends every fact of `from` to a fact of `to`. This is the standard
/// instance-homomorphism notion used for universality and data-exchange
/// equivalence (Section 3.1).
Result<bool> InstanceHomExists(const Instance& from, const Instance& to);

/// \brief Homomorphic equivalence of instances (maps in both directions).
Result<bool> InstancesHomEquivalent(const Instance& a, const Instance& b);

}  // namespace mapinv

#endif  // MAPINV_EVAL_HOM_H_
