#include "eval/hom.h"

#include <algorithm>
#include <string>

#include "engine/execution_options.h"
#include "eval/hom_plan.h"

namespace mapinv {

namespace {

// Smallest-bucket scans below this size are not worth intersecting with the
// second-smallest bucket; the per-candidate slot checks are cheaper than the
// merge.
constexpr size_t kIntersectMinBucket = 32;

// Checks the constraints that are decidable under the partial assignment:
// a newly bound variable's constant requirement, and inequalities whose two
// endpoints are both bound. (Reference interpreter only — the compiled path
// fuses these checks into bind ops.)
bool ConstraintsHold(const HomConstraints& constraints,
                     const Assignment& assignment) {
  for (VarId v : constraints.constant_vars) {
    auto it = assignment.find(v);
    if (it != assignment.end() && !it->second.is_constant()) return false;
  }
  for (const VarPair& ne : constraints.inequalities) {
    auto a = assignment.find(ne.first);
    auto b = assignment.find(ne.second);
    if (a != assignment.end() && b != assignment.end() &&
        a->second == b->second) {
      return false;
    }
  }
  return true;
}

}  // namespace

const HomSearch::RelationIndex& HomSearch::IndexFor(RelationId relation) const {
  RelationIndex& idx = indexes_[relation];
  const auto& tuples = instance_.tuples(relation);
  if (idx.positions.size() < instance_.schema().arity(relation)) {
    idx.positions.resize(instance_.schema().arity(relation));
  }
  if (idx.indexed_count < tuples.size()) {
    const uint32_t arity = instance_.schema().arity(relation);
    for (size_t i = idx.indexed_count; i < tuples.size(); ++i) {
      for (uint32_t p = 0; p < arity; ++p) {
        idx.positions[p].buckets[tuples[i][p]].push_back(
            static_cast<uint32_t>(i));
      }
    }
    idx.indexed_count = tuples.size();
  }
  return idx;
}

Result<std::shared_ptr<const HomPlan>> HomSearch::GetPlan(
    const std::vector<Atom>& atoms, const HomConstraints& constraints,
    const Assignment& fixed) const {
  std::vector<VarId> bound_vars;
  bound_vars.reserve(fixed.size());
  for (const auto& [v, unused] : fixed) bound_vars.push_back(v);
  return GetPlanForVars(atoms, constraints, std::move(bound_vars));
}

Result<std::shared_ptr<const HomPlan>> HomSearch::GetPlanForVars(
    const std::vector<Atom>& atoms, const HomConstraints& constraints,
    std::vector<VarId> bound_vars) const {
  std::sort(bound_vars.begin(), bound_vars.end());
  bound_vars.erase(std::unique(bound_vars.begin(), bound_vars.end()),
                   bound_vars.end());
  HomPlanKey key = BuildHomPlanKey(atoms, constraints, bound_vars);
  {
    std::lock_guard<std::mutex> lock(plans_mutex_);
    auto it = plans_.find(key.hash);
    if (it != plans_.end()) {
      for (const std::shared_ptr<const HomPlan>& p : it->second) {
        if (p->key == key) return p;
      }
    }
  }
  MAPINV_ASSIGN_OR_RETURN(
      HomPlan plan, CompileHomPlan(instance_, atoms, constraints, bound_vars));
  plan.key = std::move(key);
  auto shared = std::make_shared<const HomPlan>(std::move(plan));
  if (stats_ != nullptr) {
    stats_->hom_plans_compiled.fetch_add(1, std::memory_order_relaxed);
  }
  std::lock_guard<std::mutex> lock(plans_mutex_);
  auto& bucket = plans_[shared->key.hash];
  for (const std::shared_ptr<const HomPlan>& p : bucket) {
    if (p->key == shared->key) return p;  // another thread compiled it first
  }
  bucket.push_back(shared);
  return shared;
}

Status HomSearch::ForEachHom(
    const std::vector<Atom>& atoms, const HomConstraints& constraints,
    const Assignment& fixed,
    const std::function<bool(const Assignment&)>& callback) const {
  MAPINV_ASSIGN_OR_RETURN(std::shared_ptr<const HomPlan> plan,
                          GetPlan(atoms, constraints, fixed));
  return ForEachHomWithPlan(*plan, fixed, callback);
}

Status HomSearch::ForEachHomWithPlan(
    const HomPlan& plan, const Assignment& fixed,
    const std::function<bool(const Assignment&)>& callback) const {
  return RunPlan(plan, fixed, &callback, nullptr);
}

Result<bool> HomSearch::ExistsHomWithPlan(const HomPlan& plan,
                                          const Assignment& fixed) const {
  bool found = false;
  MAPINV_RETURN_NOT_OK(RunPlan(plan, fixed, nullptr, &found));
  return found;
}

Status HomSearch::RunPlan(
    const HomPlan& plan, const Assignment& fixed,
    const std::function<bool(const Assignment&)>* callback,
    bool* found) const {
  // Resolve per-step tuple vectors and indexes up front; IndexFor also
  // catches the index up if the instance grew since the last call.
  // unordered_map mapped references are node-stable, so earlier StepCtx
  // entries survive later IndexFor calls.
  struct StepCtx {
    const std::vector<Tuple>* tuples;
    const std::vector<PositionIndex>* positions;
  };
  std::vector<StepCtx> ctx(plan.steps.size());
  for (size_t i = 0; i < plan.steps.size(); ++i) {
    const RelationIndex& idx = IndexFor(plan.steps[i].relation);
    ctx[i].positions = &idx.positions;
    ctx[i].tuples = &instance_.tuples(plan.steps[i].relation);
  }

  std::vector<Value> slots(plan.num_slots);
  for (size_t i = 0; i < plan.fixed_vars.size(); ++i) {
    auto it = fixed.find(plan.fixed_vars[i]);
    if (it == fixed.end()) {
      return Status::InvalidArgument(
          "fixed assignment is missing variable v" +
          std::to_string(plan.fixed_vars[i]) +
          " that the plan was compiled with");
    }
    slots[plan.fixed_slots[i]] = it->second;
  }

  uint64_t rejected = 0;
  uint64_t candidates = 0;
  uint64_t bindings = 0;

  bool init_ok = true;
  for (uint16_t s : plan.init_constant_slots) {
    if (!slots[s].is_constant()) init_ok = false;
  }
  for (const auto& [sa, sb] : plan.init_inequalities) {
    if (slots[sa] == slots[sb]) init_ok = false;
  }

  if (init_ok) {
    // Backtracking over the compiled order. With a static join order there
    // is no unbinding: deeper steps only read statically-known slots, and
    // re-entering a step overwrites its bind slots before they are read.
    struct Executor {
      const HomPlan& plan;
      const std::vector<StepCtx>& ctx;
      std::vector<Value>& slots;
      const Assignment& fixed;
      const std::function<bool(const Assignment&)>* callback;  // null: exists
      bool* found;                                             // exists mode
      std::vector<std::vector<uint32_t>>& scratch;
      // The callback assignment is built lazily at the first match, so a
      // search with no matches (and every exists-only search) never pays the
      // hash-map copy of `fixed`.
      Assignment out;
      bool out_ready = false;
      uint64_t rejected = 0;
      uint64_t candidates = 0;
      uint64_t bindings = 0;

      // Returns false to stop the whole enumeration.
      bool Run(size_t si) {
        if (si == plan.steps.size()) {
          if (callback == nullptr) {
            *found = true;
            return false;  // first match decides the existence check
          }
          if (!out_ready) {
            out = fixed;
            out_ready = true;
          }
          for (size_t k = 0; k < plan.emit_slots.size(); ++k) {
            out.insert_or_assign(plan.emit_vars[k], slots[plan.emit_slots[k]]);
          }
          return (*callback)(out);
        }
        const HomPlan::Step& step = plan.steps[si];
        const std::vector<Tuple>& tuples = *ctx[si].tuples;

        // Candidate tuples: smallest index bucket over the bound positions,
        // intersected with the second-smallest when the smallest is still
        // large; full scan when nothing is bound. All buckets hold ascending
        // tuple indexes, so the candidate order (and hence the enumeration
        // order) does not depend on which bucket wins.
        const std::vector<uint32_t>* bucket = nullptr;
        if (!step.bound_positions.empty()) {
          const std::vector<uint32_t>* smallest = nullptr;
          const std::vector<uint32_t>* second = nullptr;
          for (const HomPlan::BoundPos& bp : step.bound_positions) {
            const Value v = bp.is_const ? bp.value : slots[bp.slot];
            const auto& buckets = (*ctx[si].positions)[bp.pos].buckets;
            auto it = buckets.find(v);
            if (it == buckets.end()) return true;  // no candidates at all
            const std::vector<uint32_t>* b = &it->second;
            if (smallest == nullptr || b->size() < smallest->size()) {
              second = smallest;
              smallest = b;
            } else if (second == nullptr || b->size() < second->size()) {
              second = b;
            }
          }
          if (second != nullptr && smallest->size() > kIntersectMinBucket) {
            std::vector<uint32_t>& buf = scratch[si];
            buf.clear();
            std::set_intersection(smallest->begin(), smallest->end(),
                                  second->begin(), second->end(),
                                  std::back_inserter(buf));
            bucket = &buf;
          } else {
            bucket = smallest;
          }
        }

        const size_t n = bucket != nullptr ? bucket->size() : tuples.size();
        for (size_t k = 0; k < n; ++k) {
          const uint32_t ti =
              bucket != nullptr ? (*bucket)[k] : static_cast<uint32_t>(k);
          ++candidates;
          const Tuple& tuple = tuples[ti];
          bool ok = true;
          for (const HomPlan::Op& op : step.ops) {
            switch (op.kind) {
              case HomPlan::Op::Kind::kCheckConst:
                ok = (op.value == tuple[op.pos]);
                break;
              case HomPlan::Op::Kind::kCheckSlot:
                ok = (slots[op.slot] == tuple[op.pos]);
                break;
              case HomPlan::Op::Kind::kBind: {
                const Value v = tuple[op.pos];
                if (op.must_be_constant && !v.is_constant()) {
                  ok = false;
                  break;
                }
                slots[op.slot] = v;
                ++bindings;
                for (uint16_t other : op.distinct_from) {
                  if (slots[other] == v) {
                    ok = false;
                    break;
                  }
                }
                break;
              }
            }
            if (!ok) break;
          }
          if (!ok) {
            ++rejected;
            continue;
          }
          if (!Run(si + 1)) return false;
        }
        return true;
      }
    };

    std::vector<std::vector<uint32_t>> scratch(plan.steps.size());
    Executor exec{plan, ctx, slots, fixed, callback, found, scratch};
    exec.Run(0);
    rejected = exec.rejected;
    candidates = exec.candidates;
    bindings = exec.bindings;
  }

  if (stats_ != nullptr) {
    stats_->hom_searches.fetch_add(1, std::memory_order_relaxed);
    stats_->hom_backtracks.fetch_add(rejected, std::memory_order_relaxed);
    stats_->hom_bucket_candidates.fetch_add(candidates,
                                            std::memory_order_relaxed);
    stats_->hom_slot_bindings.fetch_add(bindings, std::memory_order_relaxed);
  }
  return Status::OK();
}

Status HomSearch::ForEachHomReference(
    const std::vector<Atom>& atoms, const HomConstraints& constraints,
    const Assignment& fixed,
    const std::function<bool(const Assignment&)>& callback) const {
  // Resolve relations and validate argument shapes once.
  struct ResolvedAtom {
    const Atom* atom;
    RelationId relation;
    bool done = false;
  };
  std::vector<ResolvedAtom> resolved;
  resolved.reserve(atoms.size());
  for (const Atom& a : atoms) {
    MAPINV_ASSIGN_OR_RETURN(RelationId id,
                            instance_.schema().Require(RelationText(a.relation)));
    if (instance_.schema().arity(id) != a.terms.size()) {
      return Status::Malformed("atom " + a.ToString() +
                               " arity mismatch with instance schema");
    }
    for (const Term& t : a.terms) {
      if (t.is_function()) {
        return Status::Malformed("cannot match function term " + t.ToString() +
                                 " against an instance");
      }
    }
    resolved.push_back(ResolvedAtom{&a, id});
  }

  Assignment assignment = fixed;
  if (!ConstraintsHold(constraints, assignment)) return Status::OK();

  uint64_t rejected = 0;  // candidate tuples discarded; flushed to stats_

  // Recursive backtracking: pick the most-bound unprocessed atom each step.
  std::function<bool()> recurse = [&]() -> bool {
    // Returning false means "stop the whole enumeration".
    ResolvedAtom* best = nullptr;
    int best_bound = -1;
    for (ResolvedAtom& ra : resolved) {
      if (ra.done) continue;
      int bound = 0;
      for (const Term& t : ra.atom->terms) {
        if (t.is_constant() ||
            (t.is_variable() && assignment.contains(t.var()))) {
          ++bound;
        }
      }
      if (bound > best_bound) {
        best_bound = bound;
        best = &ra;
      }
    }
    if (best == nullptr) {
      return callback(assignment);
    }
    best->done = true;
    const Atom& atom = *best->atom;
    const auto& tuples = instance_.tuples(best->relation);

    // Candidate tuples: use the index bucket of the first bound position,
    // else scan the whole relation.
    const std::vector<uint32_t>* bucket = nullptr;
    std::vector<uint32_t> all;
    for (uint32_t p = 0; p < atom.terms.size(); ++p) {
      const Term& t = atom.terms[p];
      Value bound_value;
      bool have = false;
      if (t.is_constant()) {
        bound_value = t.value();
        have = true;
      } else if (assignment.contains(t.var())) {
        bound_value = assignment.at(t.var());
        have = true;
      }
      if (have) {
        const auto& buckets = IndexFor(best->relation).positions[p].buckets;
        auto it = buckets.find(bound_value);
        if (it == buckets.end()) {
          bucket = &all;  // empty
        } else {
          bucket = &it->second;
        }
        break;
      }
    }
    if (bucket == nullptr) {
      // Full scan: the identity candidate list is materialized only on this
      // no-position-bound path.
      all.resize(tuples.size());
      for (uint32_t i = 0; i < tuples.size(); ++i) all[i] = i;
      bucket = &all;
    }

    bool keep_going = true;
    for (uint32_t idx : *bucket) {
      const Tuple& tuple = tuples[idx];
      std::vector<VarId> newly_bound;
      bool ok = true;
      for (uint32_t p = 0; p < atom.terms.size() && ok; ++p) {
        const Term& t = atom.terms[p];
        if (t.is_constant()) {
          ok = (t.value() == tuple[p]);
        } else {
          auto it = assignment.find(t.var());
          if (it == assignment.end()) {
            // Constant constraint applied eagerly.
            if (constraints.constant_vars.contains(t.var()) &&
                !tuple[p].is_constant()) {
              ok = false;
            } else {
              assignment.emplace(t.var(), tuple[p]);
              newly_bound.push_back(t.var());
            }
          } else {
            ok = (it->second == tuple[p]);
          }
        }
      }
      if (ok) {
        // Inequalities involving newly bound variables.
        for (const VarPair& ne : constraints.inequalities) {
          auto a = assignment.find(ne.first);
          auto b = assignment.find(ne.second);
          if (a != assignment.end() && b != assignment.end() &&
              a->second == b->second) {
            ok = false;
            break;
          }
        }
      }
      if (ok) {
        keep_going = recurse();
      } else {
        ++rejected;
      }
      for (VarId v : newly_bound) assignment.erase(v);
      if (!keep_going) break;
    }
    best->done = false;
    return keep_going;
  };

  recurse();
  if (stats_ != nullptr) {
    stats_->hom_searches.fetch_add(1, std::memory_order_relaxed);
    stats_->hom_backtracks.fetch_add(rejected, std::memory_order_relaxed);
  }
  return Status::OK();
}

Status HomSearch::Prewarm(const std::vector<Atom>& atoms) const {
  for (const Atom& a : atoms) {
    MAPINV_ASSIGN_OR_RETURN(RelationId id,
                            instance_.schema().Require(RelationText(a.relation)));
    if (instance_.schema().arity(id) != a.terms.size()) {
      return Status::Malformed("atom " + a.ToString() +
                               " arity mismatch with instance schema");
    }
    for (const Term& t : a.terms) {
      if (t.is_function()) {
        return Status::Malformed("cannot match function term " + t.ToString() +
                                 " against an instance");
      }
    }
    IndexFor(id);
  }
  return Status::OK();
}

Result<bool> HomSearch::ExistsHom(const std::vector<Atom>& atoms,
                                  const HomConstraints& constraints,
                                  const Assignment& fixed) const {
  MAPINV_ASSIGN_OR_RETURN(std::shared_ptr<const HomPlan> plan,
                          GetPlan(atoms, constraints, fixed));
  return ExistsHomWithPlan(*plan, fixed);
}

Result<bool> InstanceHomExists(const Instance& from, const Instance& to) {
  // Encode `from` as an atom conjunction: nulls become variables, constants
  // become constant terms; then ask for a homomorphism into `to`.
  std::vector<Atom> atoms;
  FreshVarGen gen("h");
  std::unordered_map<Value, VarId, ValueHash> null_vars;
  for (const Fact& f : from.AllFacts()) {
    // A fact over a relation absent from `to`'s schema can never be mapped.
    if (to.schema().Find(from.schema().name(f.relation)) == kInvalidRelation) {
      return false;
    }
    Atom a;
    a.relation = InternRelation(from.schema().name(f.relation));
    a.terms.reserve(f.tuple.size());
    for (const Value& v : f.tuple) {
      if (v.is_constant()) {
        a.terms.push_back(Term::Const(v));
      } else {
        auto [it, inserted] = null_vars.emplace(v, 0);
        if (inserted) it->second = gen.Next();
        a.terms.push_back(Term::Var(it->second));
      }
    }
    atoms.push_back(std::move(a));
  }
  if (atoms.empty()) return true;
  HomSearch search(to);
  return search.ExistsHom(atoms, HomConstraints{});
}

Result<bool> InstancesHomEquivalent(const Instance& a, const Instance& b) {
  MAPINV_ASSIGN_OR_RETURN(bool ab, InstanceHomExists(a, b));
  if (!ab) return false;
  return InstanceHomExists(b, a);
}

}  // namespace mapinv
