#include "eval/hom.h"

#include <algorithm>

#include "engine/execution_options.h"

namespace mapinv {

namespace {

// Checks the constraints that are decidable under the partial assignment:
// a newly bound variable's constant requirement, and inequalities whose two
// endpoints are both bound.
bool ConstraintsHold(const HomConstraints& constraints,
                     const Assignment& assignment) {
  for (VarId v : constraints.constant_vars) {
    auto it = assignment.find(v);
    if (it != assignment.end() && !it->second.is_constant()) return false;
  }
  for (const VarPair& ne : constraints.inequalities) {
    auto a = assignment.find(ne.first);
    auto b = assignment.find(ne.second);
    if (a != assignment.end() && b != assignment.end() &&
        a->second == b->second) {
      return false;
    }
  }
  return true;
}

}  // namespace

const HomSearch::RelationIndex& HomSearch::IndexFor(RelationId relation) const {
  RelationIndex& idx = indexes_[relation];
  const auto& tuples = instance_.tuples(relation);
  if (idx.positions.size() < instance_.schema().arity(relation)) {
    idx.positions.resize(instance_.schema().arity(relation));
  }
  if (idx.indexed_count < tuples.size()) {
    const uint32_t arity = instance_.schema().arity(relation);
    for (size_t i = idx.indexed_count; i < tuples.size(); ++i) {
      for (uint32_t p = 0; p < arity; ++p) {
        idx.positions[p].buckets[tuples[i][p]].push_back(
            static_cast<uint32_t>(i));
      }
    }
    idx.indexed_count = tuples.size();
  }
  return idx;
}

Status HomSearch::ForEachHom(
    const std::vector<Atom>& atoms, const HomConstraints& constraints,
    const Assignment& fixed,
    const std::function<bool(const Assignment&)>& callback) const {
  // Resolve relations and validate argument shapes once.
  struct ResolvedAtom {
    const Atom* atom;
    RelationId relation;
    bool done = false;
  };
  std::vector<ResolvedAtom> resolved;
  resolved.reserve(atoms.size());
  for (const Atom& a : atoms) {
    MAPINV_ASSIGN_OR_RETURN(RelationId id,
                            instance_.schema().Require(RelationText(a.relation)));
    if (instance_.schema().arity(id) != a.terms.size()) {
      return Status::Malformed("atom " + a.ToString() +
                               " arity mismatch with instance schema");
    }
    for (const Term& t : a.terms) {
      if (t.is_function()) {
        return Status::Malformed("cannot match function term " + t.ToString() +
                                 " against an instance");
      }
    }
    resolved.push_back(ResolvedAtom{&a, id});
  }

  Assignment assignment = fixed;
  if (!ConstraintsHold(constraints, assignment)) return Status::OK();

  uint64_t rejected = 0;  // candidate tuples discarded; flushed to stats_

  // Recursive backtracking: pick the most-bound unprocessed atom each step.
  std::function<bool()> recurse = [&]() -> bool {
    // Returning false means "stop the whole enumeration".
    ResolvedAtom* best = nullptr;
    int best_bound = -1;
    for (ResolvedAtom& ra : resolved) {
      if (ra.done) continue;
      int bound = 0;
      for (const Term& t : ra.atom->terms) {
        if (t.is_constant() ||
            (t.is_variable() && assignment.contains(t.var()))) {
          ++bound;
        }
      }
      if (bound > best_bound) {
        best_bound = bound;
        best = &ra;
      }
    }
    if (best == nullptr) {
      return callback(assignment);
    }
    best->done = true;
    const Atom& atom = *best->atom;
    const auto& tuples = instance_.tuples(best->relation);

    // Candidate tuples: use the index bucket of the first bound position,
    // else scan the whole relation.
    const std::vector<uint32_t>* bucket = nullptr;
    std::vector<uint32_t> all;
    for (uint32_t p = 0; p < atom.terms.size(); ++p) {
      const Term& t = atom.terms[p];
      Value bound_value;
      bool have = false;
      if (t.is_constant()) {
        bound_value = t.value();
        have = true;
      } else if (assignment.contains(t.var())) {
        bound_value = assignment.at(t.var());
        have = true;
      }
      if (have) {
        const auto& buckets = IndexFor(best->relation).positions[p].buckets;
        auto it = buckets.find(bound_value);
        if (it == buckets.end()) {
          bucket = &all;  // empty
        } else {
          bucket = &it->second;
        }
        break;
      }
    }
    if (bucket == nullptr) {
      all.resize(tuples.size());
      for (uint32_t i = 0; i < tuples.size(); ++i) all[i] = i;
      bucket = &all;
    }

    bool keep_going = true;
    for (uint32_t idx : *bucket) {
      const Tuple& tuple = tuples[idx];
      std::vector<VarId> newly_bound;
      bool ok = true;
      for (uint32_t p = 0; p < atom.terms.size() && ok; ++p) {
        const Term& t = atom.terms[p];
        if (t.is_constant()) {
          ok = (t.value() == tuple[p]);
        } else {
          auto it = assignment.find(t.var());
          if (it == assignment.end()) {
            // Constant constraint applied eagerly.
            if (constraints.constant_vars.contains(t.var()) &&
                !tuple[p].is_constant()) {
              ok = false;
            } else {
              assignment.emplace(t.var(), tuple[p]);
              newly_bound.push_back(t.var());
            }
          } else {
            ok = (it->second == tuple[p]);
          }
        }
      }
      if (ok) {
        // Inequalities involving newly bound variables.
        for (const VarPair& ne : constraints.inequalities) {
          auto a = assignment.find(ne.first);
          auto b = assignment.find(ne.second);
          if (a != assignment.end() && b != assignment.end() &&
              a->second == b->second) {
            ok = false;
            break;
          }
        }
      }
      if (ok) {
        keep_going = recurse();
      } else {
        ++rejected;
      }
      for (VarId v : newly_bound) assignment.erase(v);
      if (!keep_going) break;
    }
    best->done = false;
    return keep_going;
  };

  recurse();
  if (stats_ != nullptr) {
    stats_->hom_searches.fetch_add(1, std::memory_order_relaxed);
    stats_->hom_backtracks.fetch_add(rejected, std::memory_order_relaxed);
  }
  return Status::OK();
}

Status HomSearch::Prewarm(const std::vector<Atom>& atoms) const {
  for (const Atom& a : atoms) {
    MAPINV_ASSIGN_OR_RETURN(RelationId id,
                            instance_.schema().Require(RelationText(a.relation)));
    if (instance_.schema().arity(id) != a.terms.size()) {
      return Status::Malformed("atom " + a.ToString() +
                               " arity mismatch with instance schema");
    }
    for (const Term& t : a.terms) {
      if (t.is_function()) {
        return Status::Malformed("cannot match function term " + t.ToString() +
                                 " against an instance");
      }
    }
    IndexFor(id);
  }
  return Status::OK();
}

Result<bool> HomSearch::ExistsHom(const std::vector<Atom>& atoms,
                                  const HomConstraints& constraints,
                                  const Assignment& fixed) const {
  bool found = false;
  MAPINV_RETURN_NOT_OK(ForEachHom(atoms, constraints, fixed,
                                  [&](const Assignment&) {
                                    found = true;
                                    return false;  // stop
                                  }));
  return found;
}

Result<bool> InstanceHomExists(const Instance& from, const Instance& to) {
  // Encode `from` as an atom conjunction: nulls become variables, constants
  // become constant terms; then ask for a homomorphism into `to`.
  std::vector<Atom> atoms;
  FreshVarGen gen("h");
  std::unordered_map<Value, VarId, ValueHash> null_vars;
  for (const Fact& f : from.AllFacts()) {
    // A fact over a relation absent from `to`'s schema can never be mapped.
    if (to.schema().Find(from.schema().name(f.relation)) == kInvalidRelation) {
      return false;
    }
    Atom a;
    a.relation = InternRelation(from.schema().name(f.relation));
    a.terms.reserve(f.tuple.size());
    for (Value v : f.tuple) {
      if (v.is_constant()) {
        a.terms.push_back(Term::Const(v));
      } else {
        auto [it, inserted] = null_vars.emplace(v, 0);
        if (inserted) it->second = gen.Next();
        a.terms.push_back(Term::Var(it->second));
      }
    }
    atoms.push_back(std::move(a));
  }
  if (atoms.empty()) return true;
  HomSearch search(to);
  return search.ExistsHom(atoms, HomConstraints{});
}

Result<bool> InstancesHomEquivalent(const Instance& a, const Instance& b) {
  MAPINV_ASSIGN_OR_RETURN(bool ab, InstanceHomExists(a, b));
  if (!ab) return false;
  return InstanceHomExists(b, a);
}

}  // namespace mapinv
