#include "eval/hom.h"

#include <algorithm>
#include <string>

#include "engine/execution_options.h"
#include "eval/hom_plan.h"
#include "eval/vector_plan.h"

namespace mapinv {

namespace {

// Smallest-bucket scans below this size are not worth intersecting with the
// second-smallest bucket; the per-candidate slot checks are cheaper than the
// merge.
constexpr size_t kIntersectMinBucket = 32;

// Checks the constraints that are decidable under the partial assignment:
// a newly bound variable's constant requirement, and inequalities whose two
// endpoints are both bound. (Reference interpreter only — the compiled path
// fuses these checks into bind ops.)
bool ConstraintsHold(const HomConstraints& constraints,
                     const Assignment& assignment) {
  for (VarId v : constraints.constant_vars) {
    auto it = assignment.find(v);
    if (it != assignment.end() && !it->second.is_constant()) return false;
  }
  for (const VarPair& ne : constraints.inequalities) {
    auto a = assignment.find(ne.first);
    auto b = assignment.find(ne.second);
    if (a != assignment.end() && b != assignment.end() &&
        a->second == b->second) {
      return false;
    }
  }
  return true;
}

}  // namespace

const RelationIndex& HomSearch::IndexFor(RelationId relation) const {
  size_t catchup = 0;
  const RelationIndex& idx = instance_.IndexFor(relation, &catchup);
  if (stats_ != nullptr && catchup > 0) {
    stats_->index_catchup_rows.fetch_add(catchup, std::memory_order_relaxed);
  }
  return idx;
}

Result<std::shared_ptr<const HomPlan>> HomSearch::GetPlan(
    const std::vector<Atom>& atoms, const HomConstraints& constraints,
    const Assignment& fixed) const {
  std::vector<VarId> bound_vars;
  bound_vars.reserve(fixed.size());
  for (const auto& [v, unused] : fixed) bound_vars.push_back(v);
  return GetPlanForVars(atoms, constraints, std::move(bound_vars));
}

Result<std::shared_ptr<const HomPlan>> HomSearch::GetPlanForVars(
    const std::vector<Atom>& atoms, const HomConstraints& constraints,
    std::vector<VarId> bound_vars) const {
  std::sort(bound_vars.begin(), bound_vars.end());
  bound_vars.erase(std::unique(bound_vars.begin(), bound_vars.end()),
                   bound_vars.end());
  HomPlanKey key = BuildHomPlanKey(atoms, constraints, bound_vars);
  {
    std::lock_guard<std::mutex> lock(plans_mutex_);
    auto it = plans_.find(key.hash);
    if (it != plans_.end()) {
      for (const std::shared_ptr<const HomPlan>& p : it->second) {
        if (p->key == key) return p;
      }
    }
  }
  MAPINV_ASSIGN_OR_RETURN(
      HomPlan plan, CompileHomPlan(instance_, atoms, constraints, bound_vars));
  plan.key = std::move(key);
  auto shared = std::make_shared<const HomPlan>(std::move(plan));
  if (stats_ != nullptr) {
    stats_->hom_plans_compiled.fetch_add(1, std::memory_order_relaxed);
  }
  std::lock_guard<std::mutex> lock(plans_mutex_);
  auto& bucket = plans_[shared->key.hash];
  for (const std::shared_ptr<const HomPlan>& p : bucket) {
    if (p->key == shared->key) return p;  // another thread compiled it first
  }
  bucket.push_back(shared);
  return shared;
}

Status HomSearch::ForEachHom(
    const std::vector<Atom>& atoms, const HomConstraints& constraints,
    const Assignment& fixed,
    const std::function<bool(const Assignment&)>& callback) const {
  MAPINV_ASSIGN_OR_RETURN(std::shared_ptr<const HomPlan> plan,
                          GetPlan(atoms, constraints, fixed));
  return ForEachHomWithPlan(*plan, fixed, callback);
}

namespace {

// The empty assignment handed to the emit path when RunPlan executes in
// positional-values mode (exists mode never emits, so it is never read).
const Assignment kNoFixed;

}  // namespace

Status HomSearch::ForEachHomWithPlan(
    const HomPlan& plan, const Assignment& fixed,
    const std::function<bool(const Assignment&)>& callback) const {
  if (vector_batch_ == 0 || plan.steps.size() > vector_max_plan_steps_) {
    if (vector_batch_ != 0 && stats_ != nullptr) {
      // Vectorization was requested but the plan is too wide: make the
      // scalar routing observable.
      stats_->vector_plan_fallbacks.fetch_add(1, std::memory_order_relaxed);
    }
    return RunPlan(plan, &fixed, nullptr, &callback, nullptr);
  }
  std::vector<Value> fixed_values;
  fixed_values.reserve(plan.fixed_vars.size());
  for (VarId v : plan.fixed_vars) {
    auto it = fixed.find(v);
    if (it == fixed.end()) {
      return Status::InvalidArgument(
          "fixed assignment is missing variable v" + std::to_string(v) +
          " that the plan was compiled with");
    }
    fixed_values.push_back(it->second);
  }
  // The callback assignment is built lazily at the first match, exactly like
  // the scalar executor, so no-match searches never copy `fixed`.
  Assignment out;
  bool out_ready = false;
  VectorRunStats vstats;
  Status status = RunHomPlanVectorized(
      instance_, plan, fixed_values.data(), vector_batch_,
      [&](const Value* slots) {
        if (!out_ready) {
          out = fixed;
          out_ready = true;
        }
        for (size_t k = 0; k < plan.emit_slots.size(); ++k) {
          out.insert_or_assign(plan.emit_vars[k], slots[plan.emit_slots[k]]);
        }
        return callback(out);
      },
      stats_ != nullptr ? &vstats : nullptr);
  FlushVectorRunStats(vstats, stats_);
  if (stats_ != nullptr) {
    // One search per plan execution, the same invariant as the scalar
    // runner; the inner-loop work is reported via the vector_* counters.
    stats_->hom_searches.fetch_add(1, std::memory_order_relaxed);
  }
  return status;
}

Status HomSearch::ForEachHomWithPlanScalar(
    const HomPlan& plan, const Assignment& fixed,
    const std::function<bool(const Assignment&)>& callback) const {
  return RunPlan(plan, &fixed, nullptr, &callback, nullptr);
}

Result<bool> HomSearch::ExistsHomWithPlan(const HomPlan& plan,
                                          const Assignment& fixed) const {
  bool found = false;
  MAPINV_RETURN_NOT_OK(RunPlan(plan, &fixed, nullptr, nullptr, &found));
  return found;
}

Result<bool> HomSearch::ExistsHomWithPlanValues(
    const HomPlan& plan, const std::vector<Value>& fixed_values) const {
  if (fixed_values.size() != plan.fixed_vars.size()) {
    return Status::InvalidArgument(
        "fixed values count " + std::to_string(fixed_values.size()) +
        " does not match the plan's bound-variable count " +
        std::to_string(plan.fixed_vars.size()));
  }
  bool found = false;
  MAPINV_RETURN_NOT_OK(
      RunPlan(plan, nullptr, fixed_values.data(), nullptr, &found));
  return found;
}

Status HomSearch::RunPlan(
    const HomPlan& plan, const Assignment* fixed, const Value* fixed_values,
    const std::function<bool(const Assignment&)>* callback,
    bool* found) const {
  // Resolve per-step arenas and indexes up front; IndexFor also catches the
  // index up if the instance grew since the last call. The index lives in
  // the relation's (shared_ptr-held) store, so the references stay valid
  // across the later IndexFor calls of this loop.
  //
  // All per-call state (step contexts, slots, intersection scratch) lives in
  // stack buffers up to a size that covers every realistic plan: this runner
  // executes once per chase trigger, and heap-allocating three vectors per
  // existence check dominated small-plan run time.
  struct StepCtx {
    Instance::ArenaView view;  // segment-aware row accessor
    uint32_t arity;
    size_t rows;
    const std::vector<PositionIndex>* positions;
  };
  constexpr size_t kMaxStackSteps = 16;
  constexpr size_t kMaxStackSlots = 64;
  const size_t num_steps = plan.steps.size();
  StepCtx ctx_buf[kMaxStackSteps];
  std::vector<StepCtx> ctx_heap;
  StepCtx* ctx = ctx_buf;
  if (num_steps > kMaxStackSteps) {
    ctx_heap.resize(num_steps);
    ctx = ctx_heap.data();
  }
  for (size_t i = 0; i < num_steps; ++i) {
    const RelationId rel = plan.steps[i].relation;
    const RelationIndex& idx = IndexFor(rel);
    ctx[i].positions = &idx.positions;
    ctx[i].view = instance_.Arena(rel);
    ctx[i].arity = instance_.schema().arity(rel);
    ctx[i].rows = instance_.NumRows(rel);
  }

  Value slots_buf[kMaxStackSlots];
  std::vector<Value> slots_heap;
  Value* slots = slots_buf;
  if (plan.num_slots > kMaxStackSlots) {
    slots_heap.resize(plan.num_slots);
    slots = slots_heap.data();
  }
  if (fixed_values != nullptr) {
    for (size_t i = 0; i < plan.fixed_slots.size(); ++i) {
      slots[plan.fixed_slots[i]] = fixed_values[i];
    }
  } else {
    for (size_t i = 0; i < plan.fixed_vars.size(); ++i) {
      auto it = fixed->find(plan.fixed_vars[i]);
      if (it == fixed->end()) {
        return Status::InvalidArgument(
            "fixed assignment is missing variable v" +
            std::to_string(plan.fixed_vars[i]) +
            " that the plan was compiled with");
      }
      slots[plan.fixed_slots[i]] = it->second;
    }
  }

  uint64_t rejected = 0;
  uint64_t candidates = 0;
  uint64_t bindings = 0;

  bool init_ok = true;
  for (uint16_t s : plan.init_constant_slots) {
    if (!slots[s].is_constant()) init_ok = false;
  }
  for (const auto& [sa, sb] : plan.init_inequalities) {
    if (slots[sa] == slots[sb]) init_ok = false;
  }

  if (init_ok) {
    // Backtracking over the compiled order. With a static join order there
    // is no unbinding: deeper steps only read statically-known slots, and
    // re-entering a step overwrites its bind slots before they are read.
    struct Executor {
      const HomPlan& plan;
      const StepCtx* ctx;
      Value* slots;
      const Assignment& fixed;
      const std::function<bool(const Assignment&)>* callback;  // null: exists
      bool* found;                                             // exists mode
      std::vector<uint32_t>* scratch;
      // The callback assignment is built lazily at the first match, so a
      // search with no matches (and every exists-only search) never pays the
      // hash-map copy of `fixed`.
      Assignment out;
      bool out_ready = false;
      uint64_t rejected = 0;
      uint64_t candidates = 0;
      uint64_t bindings = 0;

      // Returns false to stop the whole enumeration.
      bool Run(size_t si) {
        if (si == plan.steps.size()) {
          if (callback == nullptr) {
            *found = true;
            return false;  // first match decides the existence check
          }
          if (!out_ready) {
            out = fixed;
            out_ready = true;
          }
          for (size_t k = 0; k < plan.emit_slots.size(); ++k) {
            out.insert_or_assign(plan.emit_vars[k], slots[plan.emit_slots[k]]);
          }
          return (*callback)(out);
        }
        const HomPlan::Step& step = plan.steps[si];
        const StepCtx& sc = ctx[si];

        // Candidate tuples: smallest index bucket over the bound positions,
        // intersected with the second-smallest when the smallest is still
        // large; full scan when nothing is bound. All buckets hold ascending
        // tuple indexes, so the candidate order (and hence the enumeration
        // order) does not depend on which bucket wins.
        const std::vector<uint32_t>* bucket = nullptr;
        if (!step.bound_positions.empty()) {
          const std::vector<uint32_t>* smallest = nullptr;
          const std::vector<uint32_t>* second = nullptr;
          for (const HomPlan::BoundPos& bp : step.bound_positions) {
            const Value v = bp.is_const ? bp.value : slots[bp.slot];
            const auto& buckets = (*sc.positions)[bp.pos].buckets;
            auto it = buckets.find(v);
            if (it == buckets.end()) return true;  // no candidates at all
            const std::vector<uint32_t>* b = &it->second;
            if (smallest == nullptr || b->size() < smallest->size()) {
              second = smallest;
              smallest = b;
            } else if (second == nullptr || b->size() < second->size()) {
              second = b;
            }
          }
          if (second != nullptr && smallest->size() > kIntersectMinBucket) {
            std::vector<uint32_t>& buf = scratch[si];
            buf.clear();
            std::set_intersection(smallest->begin(), smallest->end(),
                                  second->begin(), second->end(),
                                  std::back_inserter(buf));
            bucket = &buf;
          } else {
            bucket = smallest;
          }
        }

        const size_t n = bucket != nullptr ? bucket->size() : sc.rows;
        for (size_t k = 0; k < n; ++k) {
          const uint32_t ti =
              bucket != nullptr ? (*bucket)[k] : static_cast<uint32_t>(k);
          ++candidates;
          const Value* tuple = sc.view.row(ti);
          bool ok = true;
          for (const HomPlan::Op& op : step.ops) {
            switch (op.kind) {
              case HomPlan::Op::Kind::kCheckConst:
                ok = (op.value == tuple[op.pos]);
                break;
              case HomPlan::Op::Kind::kCheckSlot:
                ok = (slots[op.slot] == tuple[op.pos]);
                break;
              case HomPlan::Op::Kind::kBind: {
                const Value v = tuple[op.pos];
                if (op.must_be_constant && !v.is_constant()) {
                  ok = false;
                  break;
                }
                slots[op.slot] = v;
                ++bindings;
                for (uint16_t other : op.distinct_from) {
                  if (slots[other] == v) {
                    ok = false;
                    break;
                  }
                }
                break;
              }
            }
            if (!ok) break;
          }
          if (!ok) {
            ++rejected;
            continue;
          }
          if (!Run(si + 1)) return false;
        }
        return true;
      }
    };

    std::vector<uint32_t> scratch_buf[kMaxStackSteps];
    std::vector<std::vector<uint32_t>> scratch_heap;
    std::vector<uint32_t>* scratch = scratch_buf;
    if (num_steps > kMaxStackSteps) {
      scratch_heap.resize(num_steps);
      scratch = scratch_heap.data();
    }
    Executor exec{plan,     ctx,   slots,
                  fixed != nullptr ? *fixed : kNoFixed,
                  callback, found, scratch};
    exec.Run(0);
    rejected = exec.rejected;
    candidates = exec.candidates;
    bindings = exec.bindings;
  }

  if (stats_ != nullptr) {
    stats_->hom_searches.fetch_add(1, std::memory_order_relaxed);
    stats_->hom_backtracks.fetch_add(rejected, std::memory_order_relaxed);
    stats_->hom_bucket_candidates.fetch_add(candidates,
                                            std::memory_order_relaxed);
    stats_->hom_slot_bindings.fetch_add(bindings, std::memory_order_relaxed);
  }
  return Status::OK();
}

Status HomSearch::ForEachHomReference(
    const std::vector<Atom>& atoms, const HomConstraints& constraints,
    const Assignment& fixed,
    const std::function<bool(const Assignment&)>& callback) const {
  // Resolve relations and validate argument shapes once.
  struct ResolvedAtom {
    const Atom* atom;
    RelationId relation;
    bool done = false;
  };
  std::vector<ResolvedAtom> resolved;
  resolved.reserve(atoms.size());
  for (const Atom& a : atoms) {
    MAPINV_ASSIGN_OR_RETURN(RelationId id,
                            instance_.schema().Require(RelationText(a.relation)));
    if (instance_.schema().arity(id) != a.terms.size()) {
      return Status::Malformed("atom " + a.ToString() +
                               " arity mismatch with instance schema");
    }
    for (const Term& t : a.terms) {
      if (t.is_function()) {
        return Status::Malformed("cannot match function term " + t.ToString() +
                                 " against an instance");
      }
    }
    resolved.push_back(ResolvedAtom{&a, id});
  }

  Assignment assignment = fixed;
  if (!ConstraintsHold(constraints, assignment)) return Status::OK();

  uint64_t rejected = 0;  // candidate tuples discarded; flushed to stats_

  // Recursive backtracking: pick the most-bound unprocessed atom each step.
  std::function<bool()> recurse = [&]() -> bool {
    // Returning false means "stop the whole enumeration".
    ResolvedAtom* best = nullptr;
    int best_bound = -1;
    for (ResolvedAtom& ra : resolved) {
      if (ra.done) continue;
      int bound = 0;
      for (const Term& t : ra.atom->terms) {
        if (t.is_constant() ||
            (t.is_variable() && assignment.contains(t.var()))) {
          ++bound;
        }
      }
      if (bound > best_bound) {
        best_bound = bound;
        best = &ra;
      }
    }
    if (best == nullptr) {
      return callback(assignment);
    }
    best->done = true;
    const Atom& atom = *best->atom;
    const Instance::ArenaView view = instance_.Arena(best->relation);
    const size_t rows = instance_.NumRows(best->relation);

    // Candidate tuples: use the index bucket of the first bound position,
    // else scan the whole relation.
    const std::vector<uint32_t>* bucket = nullptr;
    std::vector<uint32_t> all;
    for (uint32_t p = 0; p < atom.terms.size(); ++p) {
      const Term& t = atom.terms[p];
      Value bound_value;
      bool have = false;
      if (t.is_constant()) {
        bound_value = t.value();
        have = true;
      } else if (assignment.contains(t.var())) {
        bound_value = assignment.at(t.var());
        have = true;
      }
      if (have) {
        const auto& buckets = IndexFor(best->relation).positions[p].buckets;
        auto it = buckets.find(bound_value);
        if (it == buckets.end()) {
          bucket = &all;  // empty
        } else {
          bucket = &it->second;
        }
        break;
      }
    }
    if (bucket == nullptr) {
      // Full scan: the identity candidate list is materialized only on this
      // no-position-bound path.
      all.resize(rows);
      for (uint32_t i = 0; i < rows; ++i) all[i] = i;
      bucket = &all;
    }

    bool keep_going = true;
    for (uint32_t idx : *bucket) {
      const Value* tuple = view.row(idx);
      std::vector<VarId> newly_bound;
      bool ok = true;
      for (uint32_t p = 0; p < atom.terms.size() && ok; ++p) {
        const Term& t = atom.terms[p];
        if (t.is_constant()) {
          ok = (t.value() == tuple[p]);
        } else {
          auto it = assignment.find(t.var());
          if (it == assignment.end()) {
            // Constant constraint applied eagerly.
            if (constraints.constant_vars.contains(t.var()) &&
                !tuple[p].is_constant()) {
              ok = false;
            } else {
              assignment.emplace(t.var(), tuple[p]);
              newly_bound.push_back(t.var());
            }
          } else {
            ok = (it->second == tuple[p]);
          }
        }
      }
      if (ok) {
        // Inequalities involving newly bound variables.
        for (const VarPair& ne : constraints.inequalities) {
          auto a = assignment.find(ne.first);
          auto b = assignment.find(ne.second);
          if (a != assignment.end() && b != assignment.end() &&
              a->second == b->second) {
            ok = false;
            break;
          }
        }
      }
      if (ok) {
        keep_going = recurse();
      } else {
        ++rejected;
      }
      for (VarId v : newly_bound) assignment.erase(v);
      if (!keep_going) break;
    }
    best->done = false;
    return keep_going;
  };

  recurse();
  if (stats_ != nullptr) {
    stats_->hom_searches.fetch_add(1, std::memory_order_relaxed);
    stats_->hom_backtracks.fetch_add(rejected, std::memory_order_relaxed);
  }
  return Status::OK();
}

Status HomSearch::Prewarm(const std::vector<Atom>& atoms) const {
  for (const Atom& a : atoms) {
    MAPINV_ASSIGN_OR_RETURN(RelationId id,
                            instance_.schema().Require(RelationText(a.relation)));
    if (instance_.schema().arity(id) != a.terms.size()) {
      return Status::Malformed("atom " + a.ToString() +
                               " arity mismatch with instance schema");
    }
    for (const Term& t : a.terms) {
      if (t.is_function()) {
        return Status::Malformed("cannot match function term " + t.ToString() +
                                 " against an instance");
      }
    }
    IndexFor(id);
  }
  return Status::OK();
}

Result<bool> HomSearch::ExistsHom(const std::vector<Atom>& atoms,
                                  const HomConstraints& constraints,
                                  const Assignment& fixed) const {
  MAPINV_ASSIGN_OR_RETURN(std::shared_ptr<const HomPlan> plan,
                          GetPlan(atoms, constraints, fixed));
  return ExistsHomWithPlan(*plan, fixed);
}

Result<bool> InstanceHomExists(const Instance& from, const Instance& to) {
  // Encode `from` as an atom conjunction: nulls become variables, constants
  // become constant terms; then ask for a homomorphism into `to`. Facts are
  // streamed straight out of the arenas (relation-major), so the per-relation
  // name resolution is amortised over each relation's rows.
  std::vector<Atom> atoms;
  FreshVarGen gen("h");
  std::unordered_map<Value, VarId, ValueHash> null_vars;
  bool unmappable = false;
  RelationId last_rel = kInvalidRelation;
  RelName rel_name = 0;
  from.ForEachFact([&](RelationId r, RowView row) {
    if (r != last_rel) {
      last_rel = r;
      // A fact over a relation absent from `to`'s schema can never be mapped.
      if (to.schema().Find(from.schema().name(r)) == kInvalidRelation) {
        unmappable = true;
        return false;
      }
      rel_name = InternRelation(from.schema().name(r));
    }
    Atom a;
    a.relation = rel_name;
    a.terms.reserve(row.size());
    for (const Value& v : row) {
      if (v.is_constant()) {
        a.terms.push_back(Term::Const(v));
      } else {
        auto [it, inserted] = null_vars.emplace(v, 0);
        if (inserted) it->second = gen.Next();
        a.terms.push_back(Term::Var(it->second));
      }
    }
    atoms.push_back(std::move(a));
    return true;
  });
  if (unmappable) return false;
  if (atoms.empty()) return true;
  HomSearch search(to);
  return search.ExistsHom(atoms, HomConstraints{});
}

Result<bool> InstancesHomEquivalent(const Instance& a, const Instance& b) {
  MAPINV_ASSIGN_OR_RETURN(bool ab, InstanceHomExists(a, b));
  if (!ab) return false;
  return InstanceHomExists(b, a);
}

}  // namespace mapinv
