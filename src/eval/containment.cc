#include "eval/containment.h"

#include <algorithm>
#include <functional>
#include <map>
#include <unordered_map>
#include <unordered_set>

#include "engine/eval_cache.h"
#include "engine/failpoint.h"
#include "engine/trace.h"
#include "eval/query_eval.h"

namespace mapinv {

namespace {

FailPoint fp_minimize_entry("minimize/entry");
FailPoint fp_containment_cache_insert("containment/cache_insert");

// ---------------------------------------------------------------------------
// Canonical cache keys. Variables are renamed by first occurrence, so
// alpha-equivalent query pairs share one EvalCache entry; constants and
// function symbols are rendered by length-prefixed spelling, which makes the
// key self-contained (immune to interner id reassignment).
// ---------------------------------------------------------------------------

using VarCanon = std::unordered_map<VarId, size_t>;

void AppendTermKey(const Term& t, VarCanon* vars, std::string* out) {
  if (t.is_variable()) {
    auto [it, inserted] = vars->emplace(t.var(), vars->size());
    out->append("?").append(std::to_string(it->second));
  } else if (t.is_constant()) {
    std::string s = t.value().ToString();
    out->append("c").append(std::to_string(s.size())).append(":").append(s);
  } else {
    const std::string& name = FunctionName(t.fn());
    out->append("f").append(std::to_string(name.size())).append(":").append(
        name);
    out->append("(");
    for (const Term& a : t.args()) AppendTermKey(a, vars, out);
    out->append(")");
  }
}

void AppendAtomsKey(const std::vector<Atom>& atoms, VarCanon* vars,
                    std::string* out) {
  for (const Atom& a : atoms) {
    const std::string_view rel = RelationText(a.relation);
    out->append(std::to_string(rel.size())).append(":").append(rel).append(
        "(");
    for (const Term& t : a.terms) AppendTermKey(t, vars, out);
    out->append(")");
  }
}

std::string CqKey(const ConjunctiveQuery& q) {
  VarCanon vars;
  std::string out = "[";
  for (VarId v : q.head) AppendTermKey(Term::Var(v), &vars, &out);
  out.append("]");
  AppendAtomsKey(q.atoms, &vars, &out);
  return out;
}

// Canonical rendering of one disjunct under a head-seeded renaming (copied:
// the two sides of a containment share head variables but nothing else).
std::string DisjunctKey(const CqDisjunct& d, VarCanon vars) {
  std::string out;
  AppendAtomsKey(d.atoms, &vars, &out);
  out.append("=");
  for (const VarPair& eq : d.equalities) {
    AppendTermKey(Term::Var(eq.first), &vars, &out);
    AppendTermKey(Term::Var(eq.second), &vars, &out);
    out.append(";");
  }
  out.append("!");
  for (const VarPair& ne : d.inequalities) {
    AppendTermKey(Term::Var(ne.first), &vars, &out);
    AppendTermKey(Term::Var(ne.second), &vars, &out);
    out.append(";");
  }
  return out;
}

// Builds a schema covering all relations mentioned by `atoms` (arity taken
// from the atoms themselves; consistent arities are required).
Result<Schema> SchemaFromAtoms(const std::vector<Atom>& atoms) {
  Schema s;
  for (const Atom& a : atoms) {
    MAPINV_ASSIGN_OR_RETURN(
        RelationId id,
        s.AddRelation(RelationText(a.relation),
                      static_cast<uint32_t>(a.terms.size())));
    (void)id;
  }
  return s;
}

// Freezes atoms into an instance: every variable becomes a distinct fresh
// constant (via `frozen`), existing constants stay themselves.
Result<Instance> Freeze(const std::vector<Atom>& atoms,
                        const std::vector<Atom>& extra_schema_atoms,
                        std::unordered_map<VarId, Value>* frozen) {
  std::vector<Atom> all = atoms;
  all.insert(all.end(), extra_schema_atoms.begin(), extra_schema_atoms.end());
  MAPINV_ASSIGN_OR_RETURN(Schema schema, SchemaFromAtoms(all));
  Instance inst(schema);
  uint64_t counter = frozen->size();
  auto freeze_var = [&](VarId v) {
    auto it = frozen->find(v);
    if (it == frozen->end()) {
      Value c = Value::MakeConstant("!frz" + std::to_string(counter++) + "_" +
                                    VarName(v));
      it = frozen->emplace(v, c).first;
    }
    return it->second;
  };
  for (const Atom& a : atoms) {
    Tuple t;
    t.reserve(a.terms.size());
    for (const Term& term : a.terms) {
      if (term.is_variable()) {
        t.push_back(freeze_var(term.var()));
      } else if (term.is_constant()) {
        t.push_back(term.value());
      } else {
        return Status::Malformed("cannot freeze function term " +
                                 term.ToString());
      }
    }
    MAPINV_ASSIGN_OR_RETURN(bool added,
                            inst.Add(RelationText(a.relation), std::move(t)));
    (void)added;
  }
  return inst;
}

// Representative map for a disjunct's head-equality classes.
std::map<VarId, VarId> EqualityReps(const std::vector<VarId>& head,
                                    const std::vector<VarPair>& equalities) {
  std::map<VarId, VarId> rep;
  std::function<VarId(VarId)> find = [&](VarId v) {
    while (rep.contains(v) && rep[v] != v) v = rep[v];
    return v;
  };
  for (VarId h : head) rep.emplace(h, h);
  for (const VarPair& eq : equalities) {
    rep.emplace(eq.first, eq.first);
    rep.emplace(eq.second, eq.second);
    VarId a = find(eq.first);
    VarId b = find(eq.second);
    if (a != b) rep[std::max(a, b)] = std::min(a, b);
  }
  // Flatten.
  for (auto& [v, r] : rep) r = find(v);
  return rep;
}

std::vector<Atom> ApplyReps(const std::vector<Atom>& atoms,
                            const std::map<VarId, VarId>& rep) {
  std::vector<Atom> out;
  out.reserve(atoms.size());
  for (const Atom& a : atoms) {
    Atom b;
    b.relation = a.relation;
    b.terms.reserve(a.terms.size());
    for (const Term& t : a.terms) {
      if (t.is_variable()) {
        auto it = rep.find(t.var());
        b.terms.push_back(Term::Var(it == rep.end() ? t.var() : it->second));
      } else {
        b.terms.push_back(t);
      }
    }
    out.push_back(std::move(b));
  }
  return out;
}

}  // namespace

Result<bool> CqContainedIn(const ConjunctiveQuery& q1,
                           const ConjunctiveQuery& q2, ExecStats* stats) {
  if (q1.head.size() != q2.head.size()) {
    return Status::InvalidArgument("containment between queries of arity " +
                                   std::to_string(q1.head.size()) + " and " +
                                   std::to_string(q2.head.size()));
  }
  const std::string key = "cq|" + CqKey(q1) + "|" + CqKey(q2);
  EvalCache& cache = GlobalEvalCache();
  if (std::optional<bool> hit = cache.GetBool(key, stats)) return *hit;
  std::unordered_map<VarId, Value> frozen;
  MAPINV_ASSIGN_OR_RETURN(Instance canonical,
                          Freeze(q1.atoms, q2.atoms, &frozen));
  ConjunctiveQuery q2_renamed = q2;
  MAPINV_ASSIGN_OR_RETURN(AnswerSet answers,
                          EvaluateCq(q2_renamed, canonical, stats));
  Tuple head;
  head.reserve(q1.head.size());
  for (VarId v : q1.head) {
    auto it = frozen.find(v);
    if (it == frozen.end()) {
      return Status::Malformed("unsafe head variable " + VarName(v) +
                               " in containment check");
    }
    head.push_back(it->second);
  }
  const bool contained = answers.Contains(head);
  MAPINV_FAILPOINT(fp_containment_cache_insert);
  cache.PutBool(key, contained);
  return contained;
}

Result<bool> DisjunctContainedIn(const std::vector<VarId>& head,
                                 const CqDisjunct& d1, const CqDisjunct& d2,
                                 ExecStats* stats) {
  if (!d1.inequalities.empty() || !d2.inequalities.empty()) {
    return Status::Unsupported(
        "containment of UCQ≠ disjuncts is not implemented (the freeze "
        "technique is incomplete with inequalities)");
  }
  // The head variables are shared between the disjuncts; everything else is
  // disjunct-local, so each side renames from its own head-seeded map.
  VarCanon head_vars;
  std::string key = "dj|[";
  for (VarId v : head) AppendTermKey(Term::Var(v), &head_vars, &key);
  key.append("]").append(DisjunctKey(d1, head_vars)).append("|").append(
      DisjunctKey(d2, head_vars));
  EvalCache& cache = GlobalEvalCache();
  if (std::optional<bool> hit = cache.GetBool(key, stats)) return *hit;
  auto put = [&](bool contained) -> Result<bool> {
    MAPINV_FAILPOINT(fp_containment_cache_insert);
    cache.PutBool(key, contained);
    return contained;
  };
  // Merge d1's equality classes, freeze, then evaluate d2 over the frozen
  // instance: d1 ⊆ d2 iff d2 returns d1's frozen head tuple.
  std::map<VarId, VarId> rep = EqualityReps(head, d1.equalities);
  std::vector<Atom> atoms = ApplyReps(d1.atoms, rep);
  std::unordered_map<VarId, Value> frozen;
  MAPINV_ASSIGN_OR_RETURN(Instance canonical, Freeze(atoms, d2.atoms, &frozen));
  Tuple head_tuple;
  head_tuple.reserve(head.size());
  for (VarId v : head) {
    auto it = frozen.find(rep.at(v));
    if (it == frozen.end()) {
      // Head variable not grounded by d1's atoms even through equalities:
      // d1 is unsafe; treat as empty (contained in anything).
      return put(true);
    }
    head_tuple.push_back(it->second);
  }
  MAPINV_ASSIGN_OR_RETURN(AnswerSet answers,
                          EvaluateDisjunct(head, d2, canonical, stats));
  return put(answers.Contains(head_tuple));
}

Result<UnionCq> MinimizeUnionCq(const UnionCq& query,
                                const ExecutionOptions& options) {
  ScopedTraceSpan span(options, "minimize");
  MAPINV_FAILPOINT(fp_minimize_entry);
  ExecDeadline entry_deadline(options.deadline_ms);
  const ExecDeadline& deadline = CarriedDeadline(options, entry_deadline);
  const size_t n = query.disjuncts.size();
  std::vector<bool> dropped(n, false);
  // Stopping the subsumption scan early keeps disjuncts that a full pass
  // would have dropped — redundant but equivalent, so degrading here never
  // changes the query's meaning, only its size.
  for (size_t j = 0; j < n; ++j) {
    if (Status poll = PollPhaseInterrupt(options, deadline, "minimize");
        !poll.ok()) {
      if (DegradeToPartial(options, poll)) break;
      return poll;
    }
    for (size_t i = 0; i < n && !dropped[j]; ++i) {
      if (i == j || dropped[i]) continue;
      MAPINV_ASSIGN_OR_RETURN(
          bool j_in_i,
          DisjunctContainedIn(query.head, query.disjuncts[j],
                              query.disjuncts[i], options.stats));
      if (!j_in_i) continue;
      MAPINV_ASSIGN_OR_RETURN(
          bool i_in_j,
          DisjunctContainedIn(query.head, query.disjuncts[i],
                              query.disjuncts[j], options.stats));
      if (i_in_j) {
        // Mutually equivalent: keep the lower index.
        dropped[std::max(i, j)] = true;
      } else {
        dropped[j] = true;  // strictly subsumed
      }
    }
  }
  UnionCq out;
  out.name = query.name;
  out.head = query.head;
  for (size_t i = 0; i < n; ++i) {
    if (!dropped[i]) out.disjuncts.push_back(query.disjuncts[i]);
  }
  return out;
}

Result<ConjunctiveQuery> CoreOfCq(const ConjunctiveQuery& query,
                                  ExecStats* stats) {
  ConjunctiveQuery current = query;
  bool changed = true;
  while (changed) {
    changed = false;
    for (size_t i = 0; i < current.atoms.size(); ++i) {
      if (current.atoms.size() == 1) break;
      ConjunctiveQuery candidate = current;
      candidate.atoms.erase(candidate.atoms.begin() + i);
      // Head variables must remain grounded.
      std::vector<VarId> body = candidate.BodyVars();
      std::unordered_set<VarId> body_set(body.begin(), body.end());
      bool safe = std::all_of(candidate.head.begin(), candidate.head.end(),
                              [&](VarId v) { return body_set.contains(v); });
      if (!safe) continue;
      // candidate ⊆ current always (it has fewer atoms ⇒ more answers ⇒
      // actually superset); equivalence needs candidate ⊆ current.
      MAPINV_ASSIGN_OR_RETURN(bool equivalent,
                              CqContainedIn(candidate, current, stats));
      if (equivalent) {
        current = std::move(candidate);
        changed = true;
        break;
      }
    }
  }
  return current;
}

}  // namespace mapinv
