/// \file containment.h
/// \brief Conjunctive-query containment and UCQ= minimisation.
///
/// Containment Q₁ ⊆ Q₂ is decided by the classical freezing argument
/// (Chandra–Merlin): freeze Q₁'s variables into distinct fresh constants,
/// evaluate Q₂ over the frozen body, and check that the frozen head tuple is
/// among the answers. The same construction handles UCQ= disjuncts after
/// merging their head-equality classes. Minimisation drops every disjunct
/// that is contained in another disjunct of the same union — used to keep
/// rewritings (Section 4) small and deterministic.

#ifndef MAPINV_EVAL_CONTAINMENT_H_
#define MAPINV_EVAL_CONTAINMENT_H_

#include "base/status.h"
#include "logic/cq.h"

namespace mapinv {

/// \brief True iff Q₁ ⊆ Q₂ (every answer of Q₁ is an answer of Q₂ on all
/// instances). Heads must have equal arity.
Result<bool> CqContainedIn(const ConjunctiveQuery& q1,
                           const ConjunctiveQuery& q2);

/// \brief Containment of UCQ= disjuncts sharing the head tuple `head`.
Result<bool> DisjunctContainedIn(const std::vector<VarId>& head,
                                 const CqDisjunct& d1, const CqDisjunct& d2);

/// \brief Removes disjuncts subsumed by other disjuncts of the union, and
/// exact duplicates. Keeps the first (lowest-index) representative of each
/// equivalence class, preserving order — deterministic output.
Result<UnionCq> MinimizeUnionCq(const UnionCq& query);

/// \brief Core minimisation of a single CQ: repeatedly drops atoms whose
/// removal preserves equivalence. The result is the standard core, unique up
/// to isomorphism.
Result<ConjunctiveQuery> CoreOfCq(const ConjunctiveQuery& query);

}  // namespace mapinv

#endif  // MAPINV_EVAL_CONTAINMENT_H_
