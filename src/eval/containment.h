/// \file containment.h
/// \brief Conjunctive-query containment and UCQ= minimisation.
///
/// Containment Q₁ ⊆ Q₂ is decided by the classical freezing argument
/// (Chandra–Merlin): freeze Q₁'s variables into distinct fresh constants,
/// evaluate Q₂ over the frozen body, and check that the frozen head tuple is
/// among the answers. The same construction handles UCQ= disjuncts after
/// merging their head-equality classes. Minimisation drops every disjunct
/// that is contained in another disjunct of the same union — used to keep
/// rewritings (Section 4) small and deterministic.

#ifndef MAPINV_EVAL_CONTAINMENT_H_
#define MAPINV_EVAL_CONTAINMENT_H_

#include "base/status.h"
#include "engine/execution_options.h"
#include "logic/cq.h"

namespace mapinv {

/// \brief True iff Q₁ ⊆ Q₂ (every answer of Q₁ is an answer of Q₂ on all
/// instances). Heads must have equal arity. When `stats` is non-null, the
/// EvalCache lookup the check performs is attributed to that sink.
Result<bool> CqContainedIn(const ConjunctiveQuery& q1,
                           const ConjunctiveQuery& q2,
                           ExecStats* stats = nullptr);

/// \brief Containment of UCQ= disjuncts sharing the head tuple `head`.
/// `stats` as in CqContainedIn.
Result<bool> DisjunctContainedIn(const std::vector<VarId>& head,
                                 const CqDisjunct& d1, const CqDisjunct& d2,
                                 ExecStats* stats = nullptr);

/// \brief Removes disjuncts subsumed by other disjuncts of the union, and
/// exact duplicates. Keeps the first (lowest-index) representative of each
/// equivalence class, preserving order — deterministic output. Honours the
/// carried deadline (quadratic containment loop; phase "minimize") and
/// attributes cache traffic to `options.stats`.
Result<UnionCq> MinimizeUnionCq(const UnionCq& query,
                                const ExecutionOptions& options = {});

/// \brief Core minimisation of a single CQ: repeatedly drops atoms whose
/// removal preserves equivalence. The result is the standard core, unique up
/// to isomorphism. `stats` as in CqContainedIn.
Result<ConjunctiveQuery> CoreOfCq(const ConjunctiveQuery& query,
                                  ExecStats* stats = nullptr);

}  // namespace mapinv

#endif  // MAPINV_EVAL_CONTAINMENT_H_
