#include "eval/vector_plan.h"

#include <algorithm>
#include <string>
#include <utility>

#include "engine/execution_options.h"
#include "engine/trace.h"
#include "eval/hom_plan.h"

namespace mapinv {

namespace {

// Keep in sync with hom.cc: smallest-bucket scans below this size are not
// worth intersecting with the second-smallest bucket.
constexpr size_t kIntersectMinBucket = 32;

// Level matrices start small and grow geometrically up to the batch size, so
// one-off searches with a handful of matches never pay a full-batch
// allocation. Growth only moves flush boundaries, which the determinism
// contract makes invisible.
constexpr size_t kInitialLevelRows = 16;

/// One selection-vector pass over a candidate block. Lowered from the plan's
/// scalar check/bind ops (see LowerStep).
struct BlockOp {
  enum class Kind : uint8_t {
    kConstEq,    ///< tuple[pos] == value
    kParentEq,   ///< tuple[pos] == parent_slots[slot]
    kRowEq,      ///< tuple[pos] == tuple[other_pos]
    kMustConst,  ///< tuple[pos] is a constant
    kParentNe,   ///< tuple[pos] != parent_slots[slot]
    kRowNe,      ///< tuple[pos] != tuple[other_pos]
  };
  Kind kind;
  uint32_t pos = 0;
  uint32_t other_pos = 0;
  uint16_t slot = 0;
  Value value;
};

/// One plan step lowered for block execution.
struct StepProgram {
  const HomPlan::Step* step = nullptr;
  std::vector<BlockOp> ops;
  /// Child-row slot writes: slot <- tuple[pos], one per bind op.
  std::vector<std::pair<uint16_t, uint32_t>> writes;
};

// Lowers one step's scalar ops. A reference to a slot bound earlier in the
// *same* step becomes a row-local position compare (that slot's value is this
// very tuple's value at the binding position); references to fixed or
// earlier-step slots read the parent row, which is uniform across the block.
// A block row survives iff every lowered op passes — the same conjunction the
// scalar executor short-circuits through.
StepProgram LowerStep(const HomPlan::Step& step) {
  StepProgram sp;
  sp.step = &step;
  std::vector<std::pair<uint16_t, uint32_t>> bound_here;  // slot -> pos
  auto find_here = [&](uint16_t slot) -> int64_t {
    for (const auto& [s, p] : bound_here) {
      if (s == slot) return static_cast<int64_t>(p);
    }
    return -1;
  };
  for (const HomPlan::Op& op : step.ops) {
    switch (op.kind) {
      case HomPlan::Op::Kind::kCheckConst: {
        BlockOp b;
        b.kind = BlockOp::Kind::kConstEq;
        b.pos = op.pos;
        b.value = op.value;
        sp.ops.push_back(b);
        break;
      }
      case HomPlan::Op::Kind::kCheckSlot: {
        BlockOp b;
        const int64_t here = find_here(op.slot);
        if (here >= 0) {
          b.kind = BlockOp::Kind::kRowEq;
          b.other_pos = static_cast<uint32_t>(here);
        } else {
          b.kind = BlockOp::Kind::kParentEq;
          b.slot = op.slot;
        }
        b.pos = op.pos;
        sp.ops.push_back(b);
        break;
      }
      case HomPlan::Op::Kind::kBind: {
        if (op.must_be_constant) {
          BlockOp b;
          b.kind = BlockOp::Kind::kMustConst;
          b.pos = op.pos;
          sp.ops.push_back(b);
        }
        // The scalar executor binds the slot *before* checking
        // distinct_from, so a self-inequality (x != x puts the bound slot in
        // its own distinct list) reads the just-bound value and rejects
        // every tuple. Registering the binding first reproduces that: the
        // self reference lowers to tuple[pos] != tuple[pos].
        bound_here.emplace_back(op.slot, op.pos);
        for (uint16_t other : op.distinct_from) {
          BlockOp b;
          const int64_t here = find_here(other);
          if (here >= 0) {
            b.kind = BlockOp::Kind::kRowNe;
            b.other_pos = static_cast<uint32_t>(here);
          } else {
            b.kind = BlockOp::Kind::kParentNe;
            b.slot = other;
          }
          b.pos = op.pos;
          sp.ops.push_back(b);
        }
        sp.writes.emplace_back(op.slot, op.pos);
        break;
      }
    }
  }
  return sp;
}

/// The batch executor: one per run (or per chunk of the chase's premise
/// scan), reused across every block the run touches.
class Exec {
 public:
  Exec(const Instance& instance, const HomPlan& plan, size_t batch,
       const std::function<bool(const Value*)>& emit,
       const ExecutionOptions* options, const ExecDeadline* deadline,
       std::string_view phase, VectorRunStats* vstats)
      : instance_(instance),
        plan_(plan),
        batch_(batch < 1 ? 1 : batch),
        emit_(emit),
        options_(options),
        deadline_(deadline),
        phase_(phase),
        vstats_(vstats),
        num_slots_(plan.num_slots) {
    const size_t num_steps = plan.steps.size();
    ctx_.resize(num_steps);
    steps_.reserve(num_steps);
    for (size_t i = 0; i < num_steps; ++i) {
      const RelationId rel = plan.steps[i].relation;
      size_t catchup = 0;
      const RelationIndex& idx = instance.IndexFor(rel, &catchup);
      if (vstats_ != nullptr) vstats_->index_catchup_rows += catchup;
      ctx_[i].positions = &idx.positions;
      ctx_[i].view = instance.Arena(rel);
      ctx_[i].arity = instance.schema().arity(rel);
      ctx_[i].rows = instance.NumRows(rel);
      steps_.push_back(LowerStep(plan.steps[i]));
    }
    levels_.resize(num_steps + 1);
    scratch_.resize(num_steps + 1);
  }

  /// Full-plan mode: one root row from the plan's fixed values.
  Status RunFromFixed(const Value* fixed_values) {
    Level& root = levels_[0];
    EnsureCapacity(&root, 1);
    Value* row = root.matrix.data();
    for (uint16_t s = 0; s < num_slots_; ++s) row[s] = Value();
    for (size_t i = 0; i < plan_.fixed_slots.size(); ++i) {
      row[plan_.fixed_slots[i]] = fixed_values[i];
    }
    // Init checks run scalar on the single root row (the seeded mode lowers
    // them into the seed block program instead).
    for (uint16_t s : plan_.init_constant_slots) {
      if (!row[s].is_constant()) return Status::OK();
    }
    for (const auto& [sa, sb] : plan_.init_inequalities) {
      if (row[sa] == row[sb]) return Status::OK();
    }
    root.rows = 1;
    Status status = ProcessLevel(0);
    root.rows = 0;
    return status;
  }

  /// Seeded mode: block-scan [begin_row, end_row) of the pinned relation.
  /// Blocks additionally split at segment boundaries, so each block's rows
  /// sit in one contiguous segment stripe and the check loops run off a flat
  /// base pointer. The extra splits only move block boundaries, which the
  /// determinism contract makes invisible.
  Status RunSeeded(const SeedProgram& seed, size_t begin_row, size_t end_row) {
    const Instance::ArenaView view = instance_.Arena(seed.relation);
    const uint32_t arity = seed.arity;
    Level& root = levels_[0];
    std::vector<uint32_t>& refs = scratch_[0].seed_refs;
    for (size_t off = begin_row; off < end_row && !stop_;) {
      const size_t seg_index = off >> kSegmentRowShift;
      const size_t seg_end = (seg_index + 1) << kSegmentRowShift;
      const size_t block = std::min({batch_, end_row - off, seg_end - off});
      MAPINV_RETURN_NOT_OK(Poll());
      // The segment stripe, addressed by segment-local row index.
      const Value* data = view.segment_base(seg_index);
      const uint32_t local = static_cast<uint32_t>(off & kSegmentRowMask);
      refs.resize(block);
      for (size_t i = 0; i < block; ++i) {
        refs[i] = local + static_cast<uint32_t>(i);
      }
      size_t m = block;
      // Seed checks, selection-vector style: every check is row-local.
      for (const SeedProgram::ConstCheck& c : seed.const_checks) {
        size_t out = 0;
        for (size_t i = 0; i < m; ++i) {
          const Value* t = data + static_cast<size_t>(refs[i]) * arity;
          if (t[c.pos] == c.value) refs[out++] = refs[i];
        }
        m = out;
        if (m == 0) break;
      }
      for (const SeedProgram::PosEq& c : seed.pos_eqs) {
        if (m == 0) break;
        size_t out = 0;
        for (size_t i = 0; i < m; ++i) {
          const Value* t = data + static_cast<size_t>(refs[i]) * arity;
          if (t[c.pos] == t[c.first_pos]) refs[out++] = refs[i];
        }
        m = out;
      }
      for (const SeedProgram::MustConst& c : seed.must_consts) {
        if (m == 0) break;
        size_t out = 0;
        for (size_t i = 0; i < m; ++i) {
          const Value* t = data + static_cast<size_t>(refs[i]) * arity;
          if (t[c.pos].is_constant()) refs[out++] = refs[i];
        }
        m = out;
      }
      for (const SeedProgram::PosNe& c : seed.pos_nes) {
        if (m == 0) break;
        size_t out = 0;
        for (size_t i = 0; i < m; ++i) {
          const Value* t = data + static_cast<size_t>(refs[i]) * arity;
          if (!(t[c.pos_a] == t[c.pos_b])) refs[out++] = refs[i];
        }
        m = out;
      }
      if (vstats_ != nullptr) {
        ++vstats_->blocks_scanned;
        vstats_->rows_scanned += block;
        vstats_->rows_selected += m;
      }
      for (size_t i = 0; i < m && !stop_; ++i) {
        EnsureCapacity(&root, root.rows + 1);
        Value* row = root.matrix.data() + root.rows * num_slots_;
        const Value* t = data + static_cast<size_t>(refs[i]) * arity;
        for (const SeedProgram::Bind& b : seed.binds) row[b.slot] = t[b.pos];
        ++root.rows;
        if (root.rows == root.cap) {
          MAPINV_RETURN_NOT_OK(Flush(0));
          Grow(&root);
        }
      }
      off += block;
    }
    if (!stop_ && root.rows > 0) MAPINV_RETURN_NOT_OK(Flush(0));
    return Status::OK();
  }

 private:
  struct StepCtx {
    Instance::ArenaView view;
    uint32_t arity = 0;
    size_t rows = 0;
    const std::vector<PositionIndex>* positions = nullptr;
  };
  /// One level of the expansion pipeline: a slot matrix of pending rows.
  struct Level {
    std::vector<Value> matrix;  // cap * num_slots, row-major
    size_t rows = 0;
    size_t cap = 0;
  };
  struct Scratch {
    std::vector<uint32_t> refs;       // candidate block under compaction
    std::vector<uint32_t> isect;      // bucket-intersection buffer
    std::vector<uint32_t> seed_refs;  // level 0 seed scan only
  };

  void EnsureCapacity(Level* lvl, size_t rows) {
    if (lvl->cap >= rows) return;
    size_t cap = lvl->cap == 0 ? kInitialLevelRows : lvl->cap;
    while (cap < rows) cap *= 2;
    cap = std::min(std::max(cap, rows), std::max(batch_, rows));
    lvl->matrix.resize(cap * num_slots_);
    lvl->cap = cap;
  }

  void Grow(Level* lvl) {
    if (lvl->cap >= batch_) return;
    const size_t cap = std::min(batch_, lvl->cap * 8);
    lvl->matrix.resize(cap * num_slots_);
    lvl->cap = cap;
  }

  Status Poll() {
    if (options_ != nullptr && CancelRequested(*options_)) {
      return PhaseCancelled(phase_);
    }
    if (deadline_ != nullptr && deadline_->Expired()) {
      return PhaseExhausted(phase_,
                            "deadline exceeded during trigger enumeration");
    }
    return Status::OK();
  }

  Status Flush(size_t si) {
    Status status = ProcessLevel(si);
    levels_[si].rows = 0;
    return status;
  }

  // Drives every pending row of level `si` through the remaining steps.
  // Matches are emitted in the scalar executor's depth-first order: parents
  // are visited in order, each parent's candidates ascend by tuple index,
  // and a full child block is driven to completion before more children are
  // produced.
  Status ProcessLevel(size_t si) {
    Level& lvl = levels_[si];
    if (si == steps_.size()) {
      for (size_t r = 0; r < lvl.rows; ++r) {
        if (!emit_(lvl.matrix.data() + r * num_slots_)) {
          stop_ = true;
          return Status::OK();
        }
      }
      return Status::OK();
    }
    const StepProgram& sp = steps_[si];
    const StepCtx& sc = ctx_[si];
    Level& child = levels_[si + 1];
    Scratch& scr = scratch_[si];
    const Instance::ArenaView view = sc.view;
    for (size_t p = 0; p < lvl.rows && !stop_; ++p) {
      const Value* parent = lvl.matrix.data() + p * num_slots_;
      // Candidate selection mirrors the scalar executor: smallest bucket
      // over the bound positions, intersected with the second-smallest when
      // still large; full scan when nothing is bound. All candidate orders
      // ascend by tuple index, so the choice never shows in the output.
      const std::vector<uint32_t>* bucket = nullptr;
      bool dead = false;
      if (!sp.step->bound_positions.empty()) {
        const std::vector<uint32_t>* smallest = nullptr;
        const std::vector<uint32_t>* second = nullptr;
        for (const HomPlan::BoundPos& bp : sp.step->bound_positions) {
          const Value v = bp.is_const ? bp.value : parent[bp.slot];
          const auto& buckets = (*sc.positions)[bp.pos].buckets;
          auto it = buckets.find(v);
          if (it == buckets.end()) {
            dead = true;
            break;
          }
          const std::vector<uint32_t>* b = &it->second;
          if (smallest == nullptr || b->size() < smallest->size()) {
            second = smallest;
            smallest = b;
          } else if (second == nullptr || b->size() < second->size()) {
            second = b;
          }
        }
        if (dead) continue;
        if (second != nullptr && smallest->size() > kIntersectMinBucket) {
          scr.isect.clear();
          std::set_intersection(smallest->begin(), smallest->end(),
                                second->begin(), second->end(),
                                std::back_inserter(scr.isect));
          bucket = &scr.isect;
        } else {
          bucket = smallest;
        }
      }
      const size_t total = bucket != nullptr ? bucket->size() : sc.rows;
      for (size_t off = 0; off < total && !stop_; off += batch_) {
        const size_t block = std::min(batch_, total - off);
        MAPINV_RETURN_NOT_OK(Poll());
        scr.refs.resize(block);
        if (bucket != nullptr) {
          std::copy(bucket->begin() + off, bucket->begin() + off + block,
                    scr.refs.begin());
        } else {
          for (size_t i = 0; i < block; ++i) {
            scr.refs[i] = static_cast<uint32_t>(off + i);
          }
        }
        uint32_t* refs = scr.refs.data();
        size_t m = block;
        for (const BlockOp& op : sp.ops) {
          size_t out = 0;
          switch (op.kind) {
            case BlockOp::Kind::kConstEq: {
              const Value v = op.value;
              for (size_t i = 0; i < m; ++i) {
                const Value* t = view.row(refs[i]);
                if (t[op.pos] == v) refs[out++] = refs[i];
              }
              break;
            }
            case BlockOp::Kind::kParentEq: {
              const Value v = parent[op.slot];
              for (size_t i = 0; i < m; ++i) {
                const Value* t = view.row(refs[i]);
                if (t[op.pos] == v) refs[out++] = refs[i];
              }
              break;
            }
            case BlockOp::Kind::kRowEq: {
              for (size_t i = 0; i < m; ++i) {
                const Value* t = view.row(refs[i]);
                if (t[op.pos] == t[op.other_pos]) refs[out++] = refs[i];
              }
              break;
            }
            case BlockOp::Kind::kMustConst: {
              for (size_t i = 0; i < m; ++i) {
                const Value* t = view.row(refs[i]);
                if (t[op.pos].is_constant()) refs[out++] = refs[i];
              }
              break;
            }
            case BlockOp::Kind::kParentNe: {
              const Value v = parent[op.slot];
              for (size_t i = 0; i < m; ++i) {
                const Value* t = view.row(refs[i]);
                if (!(t[op.pos] == v)) refs[out++] = refs[i];
              }
              break;
            }
            case BlockOp::Kind::kRowNe: {
              for (size_t i = 0; i < m; ++i) {
                const Value* t = view.row(refs[i]);
                if (!(t[op.pos] == t[op.other_pos])) refs[out++] = refs[i];
              }
              break;
            }
          }
          m = out;
          if (m == 0) break;
        }
        if (vstats_ != nullptr) {
          ++vstats_->blocks_scanned;
          vstats_->rows_scanned += block;
          vstats_->rows_selected += m;
        }
        for (size_t i = 0; i < m && !stop_; ++i) {
          EnsureCapacity(&child, child.rows + 1);
          Value* row = child.matrix.data() + child.rows * num_slots_;
          const Value* t = view.row(refs[i]);
          std::copy(parent, parent + num_slots_, row);
          for (const auto& [slot, pos] : sp.writes) row[slot] = t[pos];
          ++child.rows;
          if (child.rows == child.cap) {
            MAPINV_RETURN_NOT_OK(Flush(si + 1));
            Grow(&child);
            // Flushing may have consumed deeper levels; the parent pointer
            // is into this level's matrix, which deeper levels never touch.
          }
        }
      }
    }
    if (!stop_ && child.rows > 0) MAPINV_RETURN_NOT_OK(Flush(si + 1));
    return Status::OK();
  }

  const Instance& instance_;
  const HomPlan& plan_;
  const size_t batch_;
  const std::function<bool(const Value*)>& emit_;
  const ExecutionOptions* options_;
  const ExecDeadline* deadline_;
  const std::string_view phase_;
  VectorRunStats* vstats_;
  const uint16_t num_slots_;
  std::vector<StepCtx> ctx_;
  std::vector<StepProgram> steps_;
  std::vector<Level> levels_;
  std::vector<Scratch> scratch_;
  bool stop_ = false;
};

}  // namespace

void FlushVectorRunStats(const VectorRunStats& v, ExecStats* stats) {
  if (stats == nullptr) return;
  stats->vector_blocks_scanned.fetch_add(v.blocks_scanned,
                                         std::memory_order_relaxed);
  stats->vector_rows_scanned.fetch_add(v.rows_scanned,
                                       std::memory_order_relaxed);
  stats->vector_rows_selected.fetch_add(v.rows_selected,
                                        std::memory_order_relaxed);
  stats->index_catchup_rows.fetch_add(v.index_catchup_rows,
                                      std::memory_order_relaxed);
}

Result<SeedProgram> CompileSeedProgram(const Instance& instance,
                                       const Atom& pinned,
                                       const HomPlan& plan) {
  SeedProgram seed;
  MAPINV_ASSIGN_OR_RETURN(
      seed.relation, instance.schema().Require(RelationText(pinned.relation)));
  seed.arity = instance.schema().arity(seed.relation);
  if (seed.arity != pinned.terms.size()) {
    return Status::Malformed("atom " + pinned.ToString() +
                             " arity mismatch with instance schema");
  }
  auto slot_of = [&plan](VarId v) -> int64_t {
    const auto it =
        std::lower_bound(plan.fixed_vars.begin(), plan.fixed_vars.end(), v);
    if (it == plan.fixed_vars.end() || *it != v) return -1;
    return plan.fixed_slots[it - plan.fixed_vars.begin()];
  };
  std::vector<std::pair<VarId, uint32_t>> first_pos;
  for (uint32_t p = 0; p < pinned.terms.size(); ++p) {
    const Term& t = pinned.terms[p];
    if (t.is_constant()) {
      seed.const_checks.push_back({p, t.value()});
      continue;
    }
    if (t.is_function()) {
      return Status::Malformed("cannot match function term " + t.ToString() +
                               " against an instance");
    }
    uint32_t seen = 0;
    bool repeated = false;
    for (const auto& [v, fp] : first_pos) {
      if (v == t.var()) {
        seen = fp;
        repeated = true;
        break;
      }
    }
    if (repeated) {
      seed.pos_eqs.push_back({p, seen});
      continue;
    }
    first_pos.emplace_back(t.var(), p);
    const int64_t slot = slot_of(t.var());
    if (slot < 0) {
      return Status::Internal("pinned variable v" + std::to_string(t.var()) +
                              " is not a fixed variable of the seeded plan");
    }
    seed.binds.push_back({static_cast<uint16_t>(slot), p});
  }
  // The plan's init checks cover the constraints BindCandidate applies
  // eagerly (constant-constrained pinned variables, inequalities between two
  // pinned variables); lower them to row-local checks via the bind positions.
  auto pos_of_slot = [&seed](uint16_t slot) -> int64_t {
    for (const SeedProgram::Bind& b : seed.binds) {
      if (b.slot == slot) return b.pos;
    }
    return -1;
  };
  for (uint16_t s : plan.init_constant_slots) {
    const int64_t pos = pos_of_slot(s);
    if (pos < 0) {
      return Status::Internal("init constant slot not bound by the seed");
    }
    seed.must_consts.push_back({static_cast<uint32_t>(pos)});
  }
  for (const auto& [sa, sb] : plan.init_inequalities) {
    const int64_t pa = pos_of_slot(sa);
    const int64_t pb = pos_of_slot(sb);
    if (pa < 0 || pb < 0) {
      return Status::Internal("init inequality slot not bound by the seed");
    }
    seed.pos_nes.push_back(
        {static_cast<uint32_t>(pa), static_cast<uint32_t>(pb)});
  }
  return seed;
}

Status RunHomPlanVectorized(const Instance& instance, const HomPlan& plan,
                            const Value* fixed_values, size_t batch,
                            const std::function<bool(const Value*)>& emit,
                            VectorRunStats* vstats) {
  Exec exec(instance, plan, batch, emit, /*options=*/nullptr,
            /*deadline=*/nullptr, /*phase=*/"hom_search", vstats);
  return exec.RunFromFixed(fixed_values);
}

Status RunSeededPlanVectorized(const Instance& instance,
                               const SeedProgram& seed, size_t begin_row,
                               size_t end_row, const HomPlan& plan,
                               size_t batch,
                               const std::function<bool(const Value*)>& emit,
                               const ExecutionOptions* options,
                               const ExecDeadline* deadline,
                               std::string_view phase,
                               VectorRunStats* vstats) {
  Exec exec(instance, plan, batch, emit, options, deadline, phase, vstats);
  return exec.RunSeeded(seed, begin_row, end_row);
}

}  // namespace mapinv
