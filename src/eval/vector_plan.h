/// \file vector_plan.h
/// \brief Batch-at-a-time execution of compiled homomorphism plans: block
/// scans over the columnar arenas with selection-vector compaction.
///
/// The scalar executor in hom.cc walks the compiled join order one candidate
/// tuple at a time: per candidate it runs the step's check/bind micro-ops,
/// recurses, and materialises an Assignment at every match. This file runs
/// the *same plan* batch-at-a-time:
///
///   * candidate rows are taken in fixed-size blocks (ExecutionOptions::
///     vector_batch, default 1024) — from the pinned relation's arena slice
///     for the chase's chunked premise scan, or from the step's smallest
///     index bucket (intersected with the second-smallest exactly like the
///     scalar executor) during join expansion;
///   * each micro-op becomes one tight loop over the block's selection
///     vector of surviving candidate refs: constant and inequality checks
///     compare one arena column against one broadcast value (or a second
///     column of the same row for same-step references), compacting the
///     selection in place;
///   * survivors are materialised as rows of a slot *matrix* (stride =
///     plan.num_slots) rather than hash maps; child matrices flush through
///     the remaining steps whenever they reach the batch size.
///
/// Determinism contract: block boundaries are invisible in the output. Every
/// step's candidates ascend by tuple insertion index (index buckets are
/// ascending, blocks partition them in order, and compaction is stable), and
/// a flushed child block is driven to completion before its parents produce
/// more children — so matches are emitted in exactly the scalar executor's
/// depth-first order, for every batch size. tests/vector_plan_test.cc pins
/// this differentially against the scalar path and the interpreter.
///
/// Stats: the vectorized path books its work into the vector_* counters of
/// ExecStats (via VectorRunStats) and leaves the scalar path's hom_searches /
/// hom_bucket_candidates / hom_backtracks untouched, so each counter family
/// describes exactly the path that bumped it.

#ifndef MAPINV_EVAL_VECTOR_PLAN_H_
#define MAPINV_EVAL_VECTOR_PLAN_H_

#include <cstdint>
#include <functional>
#include <string_view>
#include <vector>

#include "base/status.h"
#include "data/instance.h"
#include "logic/cq.h"

namespace mapinv {

class ExecDeadline;
struct ExecutionOptions;
struct HomPlan;

/// Counters accumulated by one vectorized run; the caller flushes them into
/// ExecStats (vector_blocks_scanned / vector_rows_scanned /
/// vector_rows_selected / index_catchup_rows) once per run or chunk.
struct VectorRunStats {
  uint64_t blocks_scanned = 0;
  uint64_t rows_scanned = 0;
  uint64_t rows_selected = 0;
  uint64_t index_catchup_rows = 0;
};

struct ExecStats;

/// Accumulates one run's counters into the engine-wide sink (atomic adds;
/// null `stats` is a no-op).
void FlushVectorRunStats(const VectorRunStats& v, ExecStats* stats);

/// Default for ExecutionOptions::vector_max_plan_steps: plans wider than
/// this many steps run on the scalar executor even when vectorized execution
/// is on (each such routing bumps ExecStats::vector_plan_fallbacks).
/// Batch execution pays a per-run cost
/// proportional to the step count (op lowering, one level matrix per step)
/// and reaches its first match only after cascading a block through every
/// level — a win when plans are small relative to the rows they scan (chase
/// premises: a handful of atoms over arena-sized relations), a severe loss
/// for instance-as-query searches such as core folding, where a 256-fact
/// instance becomes a 256-step plan probed thousands of times for a single
/// early-stopped match. Both executors emit in the same order, so routing is
/// invisible in the output.
inline constexpr size_t kVectorMaxPlanSteps = 32;

/// \brief Per-row checks and slot writes compiled from a pinned premise atom,
/// for seeding a plan whose bound variables are the atom's variables.
///
/// Reproduces exactly the eager checks the chase's scalar BindCandidate
/// performs on a candidate row of the pinned relation: constant terms must
/// match, repeated variables must agree, constant-constrained variables
/// reject nulls, and inequalities between two pinned variables must hold
/// (the latter two lowered from the plan's init checks, which cover the same
/// conditions on the fixed slots). All checks are row-local column compares,
/// so a whole arena block runs through them selection-vector style.
struct SeedProgram {
  RelationId relation = 0;
  uint32_t arity = 0;
  struct ConstCheck {
    uint32_t pos;
    Value value;
  };
  /// Repeated variable: tuple[pos] must equal tuple[first_pos].
  struct PosEq {
    uint32_t pos;
    uint32_t first_pos;
  };
  struct MustConst {
    uint32_t pos;
  };
  /// Init inequality between two pinned variables, lowered to row positions.
  struct PosNe {
    uint32_t pos_a;
    uint32_t pos_b;
  };
  /// Fixed-slot initialisation: plan slot `slot` takes tuple[pos].
  struct Bind {
    uint16_t slot;
    uint32_t pos;
  };
  std::vector<ConstCheck> const_checks;
  std::vector<PosEq> pos_eqs;
  std::vector<MustConst> must_consts;
  std::vector<PosNe> pos_nes;
  std::vector<Bind> binds;
};

/// Compiles the seed program for scanning `pinned` rows into `plan`, which
/// must have been compiled with bound variables = `pinned`'s variable set
/// (the chase's remaining-premise plan). Fails like ForEachHom on unknown
/// relations, arity mismatches, or function terms.
Result<SeedProgram> CompileSeedProgram(const Instance& instance,
                                       const Atom& pinned,
                                       const HomPlan& plan);

/// Executes `plan` batch-at-a-time over `instance`. `fixed_values[i]` is the
/// value of `plan.fixed_vars[i]` (may be null when the plan has no fixed
/// variables). For every homomorphism, `emit` receives the full slot row —
/// `row[s]` is the value of `plan.slot_vars[s]`, valid only during the call;
/// returning false stops the enumeration. Matches arrive in exactly the
/// scalar executor's order.
Status RunHomPlanVectorized(const Instance& instance, const HomPlan& plan,
                            const Value* fixed_values, size_t batch,
                            const std::function<bool(const Value*)>& emit,
                            VectorRunStats* vstats);

/// Seeded variant for the chase's chunked premise scan: rows
/// [begin_row, end_row) of `seed.relation` run through the seed checks in
/// blocks; each surviving row initialises `plan`'s fixed slots and the plan
/// expands it through the remaining premise atoms. `emit` as above — the
/// slot row covers every premise variable (pinned variables live in the
/// plan's fixed slots). Polls `options`' cancel token and `deadline` once
/// per block, failing with PhaseCancelled/PhaseExhausted under `phase` —
/// the same statuses the scalar scan produces (both may be null to disable
/// polling).
Status RunSeededPlanVectorized(const Instance& instance,
                               const SeedProgram& seed, size_t begin_row,
                               size_t end_row, const HomPlan& plan,
                               size_t batch,
                               const std::function<bool(const Value*)>& emit,
                               const ExecutionOptions* options,
                               const ExecDeadline* deadline,
                               std::string_view phase, VectorRunStats* vstats);

}  // namespace mapinv

#endif  // MAPINV_EVAL_VECTOR_PLAN_H_
