/// \file instance_core.h
/// \brief Cores of instances with labelled nulls.
///
/// The *core* of an instance is its smallest retract: the unique (up to
/// isomorphism) sub-instance C ⊆ I with a homomorphism I → C and no proper
/// retract of its own [Fagin-Kolaitis-Popa]. In data exchange the core of
/// the canonical universal solution is the preferred materialisation — it
/// is the smallest universal solution — and the same holds for the
/// recovered source worlds produced by the reverse chase: folding redundant
/// nulls makes recovered instances canonical and comparable.
///
/// The computation here is the classical greedy fold: repeatedly look for
/// an endomorphism that is the identity on constants and maps some null to
/// a different value, replace the instance by its image, and stop when no
/// null can be folded. Worst-case exponential (core computation is NP-hard
/// in general) but fast on chase outputs, whose null blocks are small.

#ifndef MAPINV_EVAL_INSTANCE_CORE_H_
#define MAPINV_EVAL_INSTANCE_CORE_H_

#include "base/status.h"
#include "data/instance.h"

namespace mapinv {

struct ExecStats;

/// \brief Computes the core of `instance`. Constants are fixed; labelled
/// nulls may fold onto other values. Null-free instances are their own
/// cores and are returned unchanged. When `stats` is non-null the EvalCache
/// lookup is attributed to that sink.
Result<Instance> CoreOfInstance(const Instance& instance,
                                ExecStats* stats = nullptr);

/// \brief True if no proper fold exists (the instance is its own core).
Result<bool> IsCore(const Instance& instance);

}  // namespace mapinv

#endif  // MAPINV_EVAL_INSTANCE_CORE_H_
