#include "eval/hom_plan.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>
#include <utility>

#include "engine/failpoint.h"
#include "eval/hom.h"

namespace mapinv {

namespace {

FailPoint fp_hom_plan_compile("hom_plan/compile");

// Key-word tags. Terms self-delimit (functions carry an arity word), atoms
// carry a term count, so no two distinct inputs share a word sequence.
constexpr uint64_t kSectionAtoms = 0xA1;
constexpr uint64_t kSectionBound = 0xA2;
constexpr uint64_t kSectionConstVars = 0xA3;
constexpr uint64_t kSectionInequalities = 0xA4;

void AppendTermWords(const Term& t, std::vector<uint64_t>* words) {
  if (t.is_variable()) {
    words->push_back((1ULL << 62) | t.var());
  } else if (t.is_constant()) {
    const Value v = t.value();
    words->push_back((2ULL << 62) | (v.is_null() ? (1ULL << 40) : 0) | v.id());
  } else {
    words->push_back((3ULL << 62) | (static_cast<uint64_t>(t.args().size())
                                     << 32) | t.fn());
    for (const Term& a : t.args()) AppendTermWords(a, words);
  }
}

}  // namespace

HomPlanKey BuildHomPlanKey(const std::vector<Atom>& atoms,
                           const HomConstraints& constraints,
                           const std::vector<VarId>& bound_vars) {
  HomPlanKey key;
  key.words.push_back(kSectionAtoms);
  key.words.push_back(atoms.size());
  for (const Atom& a : atoms) {
    key.words.push_back(a.relation);
    key.words.push_back(a.terms.size());
    for (const Term& t : a.terms) AppendTermWords(t, &key.words);
  }
  key.words.push_back(kSectionBound);
  for (VarId v : bound_vars) key.words.push_back(v);
  key.words.push_back(kSectionConstVars);
  std::vector<VarId> const_vars(constraints.constant_vars.begin(),
                                constraints.constant_vars.end());
  std::sort(const_vars.begin(), const_vars.end());
  for (VarId v : const_vars) key.words.push_back(v);
  key.words.push_back(kSectionInequalities);
  std::vector<uint64_t> neq;
  neq.reserve(constraints.inequalities.size());
  for (const VarPair& p : constraints.inequalities) {
    neq.push_back((static_cast<uint64_t>(std::min(p.first, p.second)) << 32) |
                  std::max(p.first, p.second));
  }
  std::sort(neq.begin(), neq.end());
  key.words.insert(key.words.end(), neq.begin(), neq.end());

  size_t seed = key.words.size();
  for (uint64_t w : key.words) HashCombine(seed, std::hash<uint64_t>()(w));
  key.hash = seed;
  return key;
}

Result<HomPlan> CompileHomPlan(const Instance& instance,
                               const std::vector<Atom>& atoms,
                               const HomConstraints& constraints,
                               const std::vector<VarId>& bound_vars) {
  MAPINV_FAILPOINT(fp_hom_plan_compile);
  const Schema& schema = instance.schema();
  HomPlan plan;

  // Resolve relations and validate argument shapes (identical contract to
  // the interpretive search: kNotFound for unknown relations, kMalformed for
  // arity mismatches and function terms).
  struct Pending {
    const Atom* atom;
    RelationId relation;
    uint32_t index;
    size_t cardinality;
    bool placed = false;
  };
  std::vector<Pending> pending;
  pending.reserve(atoms.size());
  for (size_t i = 0; i < atoms.size(); ++i) {
    const Atom& a = atoms[i];
    MAPINV_ASSIGN_OR_RETURN(RelationId id,
                            schema.Require(RelationText(a.relation)));
    if (schema.arity(id) != a.terms.size()) {
      return Status::Malformed("atom " + a.ToString() +
                               " arity mismatch with instance schema");
    }
    for (const Term& t : a.terms) {
      if (t.is_function()) {
        return Status::Malformed("cannot match function term " + t.ToString() +
                                 " against an instance");
      }
    }
    pending.push_back(
        Pending{&a, id, static_cast<uint32_t>(i), instance.NumRows(id)});
  }

  // Slot table: fixed variables first (callers pass them sorted), then atom
  // variables in binding order. Slot existence below therefore means "bound
  // at this point of the compile walk".
  std::unordered_map<VarId, uint16_t> slot_of;
  auto slot_for = [&](VarId v) {
    auto [it, inserted] =
        slot_of.emplace(v, static_cast<uint16_t>(plan.slot_vars.size()));
    if (inserted) plan.slot_vars.push_back(v);
    return it->second;
  };
  for (VarId v : bound_vars) {
    plan.fixed_slots.push_back(slot_for(v));
    plan.fixed_vars.push_back(v);
  }
  std::unordered_set<VarId> bound(bound_vars.begin(), bound_vars.end());

  // Bind site of each slot: (step, op) ordinal, or kInitSite for fixed
  // slots. Used to place each inequality check at its later-bound endpoint.
  constexpr uint64_t kInitSite = 0;
  std::vector<uint64_t> bind_site(plan.slot_vars.size(), kInitSite);

  // Greedy static join order: most bound positions first; ties prefer the
  // smaller relation (cardinality snapshotted now), then the earlier atom.
  // "Bound" depends only on which variables previous steps introduced,
  // never on runtime values, so this order is exact, not an estimate of the
  // interpreter's dynamic most-bound rule.
  while (plan.steps.size() < pending.size()) {
    Pending* best = nullptr;
    int best_bound = -1;
    for (Pending& p : pending) {
      if (p.placed) continue;
      int b = 0;
      for (const Term& t : p.atom->terms) {
        if (t.is_constant() || bound.contains(t.var())) ++b;
      }
      if (b > best_bound ||
          (b == best_bound && best != nullptr &&
           p.cardinality < best->cardinality)) {
        best_bound = b;
        best = &p;
      }
    }
    best->placed = true;

    HomPlan::Step step;
    step.relation = best->relation;
    step.atom_index = best->index;
    const std::vector<Term>& terms = best->atom->terms;
    for (uint32_t pos = 0; pos < terms.size(); ++pos) {
      const Term& t = terms[pos];
      HomPlan::Op op;
      op.pos = pos;
      if (t.is_constant()) {
        op.kind = HomPlan::Op::Kind::kCheckConst;
        op.value = t.value();
        HomPlan::BoundPos bp;
        bp.pos = pos;
        bp.is_const = true;
        bp.value = t.value();
        step.bound_positions.push_back(bp);
      } else {
        const VarId v = t.var();
        auto it = slot_of.find(v);
        if (it != slot_of.end()) {
          op.kind = HomPlan::Op::Kind::kCheckSlot;
          op.slot = it->second;
          // Usable for bucket selection only if bound before the step
          // starts scanning (not by an earlier position of this same atom).
          if (bound.contains(v)) {
            HomPlan::BoundPos bp;
            bp.pos = pos;
            bp.slot = it->second;
            step.bound_positions.push_back(bp);
          }
        } else {
          if (plan.slot_vars.size() >= 0xffff) {
            return Status::Malformed(
                "conjunction exceeds 65534 distinct variables");
          }
          op.kind = HomPlan::Op::Kind::kBind;
          op.slot = slot_for(v);
          op.must_be_constant = constraints.constant_vars.contains(v);
          bind_site.push_back((static_cast<uint64_t>(plan.steps.size() + 1)
                               << 32) | (pos + 1));
        }
      }
      step.ops.push_back(std::move(op));
    }
    for (const Term& t : terms) {
      if (t.is_variable()) bound.insert(t.var());
    }
    plan.steps.push_back(std::move(step));
  }
  plan.num_slots = static_cast<uint16_t>(plan.slot_vars.size());

  // Constant constraints on fixed variables are decidable at init (those on
  // step-bound variables fused into their bind op above; those on variables
  // never bound are vacuous, exactly as in the interpreter).
  for (size_t i = 0; i < plan.fixed_vars.size(); ++i) {
    if (constraints.constant_vars.contains(plan.fixed_vars[i])) {
      plan.init_constant_slots.push_back(plan.fixed_slots[i]);
    }
  }

  // Each inequality compiles into exactly one check at its later-bound
  // endpoint (or an init check when both endpoints are fixed). A pair with
  // a never-bound endpoint is vacuous — the interpreter only tests pairs
  // with both endpoints assigned.
  for (const VarPair& ne : constraints.inequalities) {
    auto a = slot_of.find(ne.first);
    auto b = slot_of.find(ne.second);
    if (a == slot_of.end() || b == slot_of.end()) continue;
    const uint64_t site_a = bind_site[a->second];
    const uint64_t site_b = bind_site[b->second];
    if (site_a == kInitSite && site_b == kInitSite) {
      plan.init_inequalities.emplace_back(a->second, b->second);
      continue;
    }
    // Attach to the later site; on a tie (x != x, one bind op) the slot
    // compares against itself and rejects every binding, matching the
    // interpreter.
    const uint16_t later = site_a >= site_b ? a->second : b->second;
    const uint16_t other = site_a >= site_b ? b->second : a->second;
    const uint64_t site = std::max(site_a, site_b);
    HomPlan::Step& step = plan.steps[(site >> 32) - 1];
    HomPlan::Op& op = step.ops[(site & 0xffffffff) - 1];
    op.distinct_from.push_back(later == op.slot ? other : later);
  }

  // Callback conversion table: everything bound by a step (fixed variables
  // are already present in the caller's assignment).
  for (uint16_t s = static_cast<uint16_t>(plan.fixed_slots.size());
       s < plan.num_slots; ++s) {
    plan.emit_slots.push_back(s);
    plan.emit_vars.push_back(plan.slot_vars[s]);
  }
  return plan;
}

}  // namespace mapinv
