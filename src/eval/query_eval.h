/// \file query_eval.h
/// \brief Evaluation of CQ / UCQ= queries over instances with nulls.
///
/// Evaluation follows naive-table semantics: labelled nulls are treated as
/// ordinary (pairwise distinct) values during matching, so Q(I) may contain
/// tuples with nulls. The *certain* projection keeps only null-free answer
/// tuples — composing naive evaluation over a universal (canonical chase)
/// instance with the certain projection computes certain answers of CQs, the
/// standard data-exchange result [11] used throughout the paper.

#ifndef MAPINV_EVAL_QUERY_EVAL_H_
#define MAPINV_EVAL_QUERY_EVAL_H_

#include <vector>

#include "base/status.h"
#include "data/instance.h"
#include "eval/hom.h"
#include "logic/cq.h"

namespace mapinv {

struct ExecStats;

/// \brief A deduplicated, deterministic (sorted) set of answer tuples.
struct AnswerSet {
  std::vector<Tuple> tuples;

  bool Contains(const Tuple& t) const;
  /// True if every tuple of this set occurs in `other`.
  bool SubsetOf(const AnswerSet& other) const;
  bool operator==(const AnswerSet& other) const {
    return tuples == other.tuples;
  }
  /// Keeps only null-free tuples.
  AnswerSet CertainOnly() const;
  /// Set intersection (both operands sorted).
  AnswerSet Intersect(const AnswerSet& other) const;

  std::string ToString() const;
};

/// Builds a deduplicated sorted AnswerSet from raw tuples.
AnswerSet MakeAnswerSet(std::vector<Tuple> tuples);

/// Evaluates a conjunctive query over an instance (naive semantics).
/// `stats` (optional) receives the homomorphism-search counters.
Result<AnswerSet> EvaluateCq(const ConjunctiveQuery& query,
                             const Instance& instance,
                             ExecStats* stats = nullptr);

/// Evaluates one UCQ= / UCQ≠ disjunct with the given head. Equalities merge
/// head variables into representative classes before matching, exactly as
/// in the paper's normal form (equalities relate free variables only).
/// Inequalities evaluate naively: two values are unequal iff they are
/// distinct, labelled nulls included. Over null-free instances this is the
/// exact UCQ≠ semantics; over instances with nulls it is the standard naive
/// over-approximation (two distinct nulls might denote the same value), so
/// certain-answer computations with ≠ should be restricted to null-free
/// worlds (as in the Fagin-inverse round trips of Theorem 3.5, where the
/// recovered instances are null-free).
Result<AnswerSet> EvaluateDisjunct(const std::vector<VarId>& head,
                                   const CqDisjunct& disjunct,
                                   const Instance& instance,
                                   ExecStats* stats = nullptr);

/// Evaluates a UCQ= (union of the disjunct answers).
Result<AnswerSet> EvaluateUnionCq(const UnionCq& query,
                                  const Instance& instance,
                                  ExecStats* stats = nullptr);

}  // namespace mapinv

#endif  // MAPINV_EVAL_QUERY_EVAL_H_
