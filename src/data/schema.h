/// \file schema.h
/// \brief Relational schemas: named relation symbols with fixed arities.
///
/// A Schema is a finite set of relation symbols. Relation symbols are
/// identified within a schema by dense RelationId indexes; mappings carry a
/// source and a target Schema and all formulas refer to relations by name,
/// resolved against the appropriate schema at validation time.

#ifndef MAPINV_DATA_SCHEMA_H_
#define MAPINV_DATA_SCHEMA_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "base/status.h"

namespace mapinv {

/// Index of a relation symbol within one Schema.
using RelationId = uint32_t;

/// Sentinel for "no such relation".
inline constexpr RelationId kInvalidRelation = UINT32_MAX;

/// \brief A relation symbol: a name plus an arity.
struct RelationSymbol {
  std::string name;
  uint32_t arity = 0;
};

/// \brief An ordered set of relation symbols with name lookup.
class Schema {
 public:
  Schema() = default;

  /// Constructs a schema from (name, arity) pairs; duplicate names must not
  /// occur (asserted in debug builds, last-wins otherwise).
  Schema(std::initializer_list<RelationSymbol> symbols) {
    for (const auto& s : symbols) AddRelation(s.name, s.arity);
  }

  /// Adds a relation; returns its id. Re-adding an existing name with the
  /// same arity returns the existing id.
  Result<RelationId> AddRelation(std::string_view name, uint32_t arity);

  /// Returns the id of `name`, or kInvalidRelation.
  RelationId Find(std::string_view name) const {
    auto it = by_name_.find(std::string(name));
    return it == by_name_.end() ? kInvalidRelation : it->second;
  }

  /// Returns the id of `name` or an error.
  Result<RelationId> Require(std::string_view name) const;

  const RelationSymbol& relation(RelationId id) const { return symbols_[id]; }
  uint32_t arity(RelationId id) const { return symbols_[id].arity; }
  const std::string& name(RelationId id) const { return symbols_[id].name; }
  size_t size() const { return symbols_.size(); }
  const std::vector<RelationSymbol>& relations() const { return symbols_; }

  /// True if the two schemas have disjoint relation-name sets.
  bool DisjointFrom(const Schema& other) const;

  /// Returns the union of two schemas; fails on a name clash with differing
  /// arities.
  static Result<Schema> Union(const Schema& a, const Schema& b);

  /// "S { R/2, T/3 }"-style rendering.
  std::string ToString() const;

 private:
  std::vector<RelationSymbol> symbols_;
  std::unordered_map<std::string, RelationId> by_name_;
};

}  // namespace mapinv

#endif  // MAPINV_DATA_SCHEMA_H_
