/// \file value.h
/// \brief Database values: constants and labelled nulls.
///
/// As in the data-exchange literature [Fagin-Kolaitis-Miller-Popa, TCS'05],
/// instances contain two kinds of values. *Constants* come from a fixed
/// domain (interned spellings: "1", "alice", ...). *Labelled nulls* are
/// placeholders invented by the chase; two nulls are equal iff they carry the
/// same label. Source instances must be null-free; target instances may mix
/// both. The built-in predicate C(x) of the paper holds exactly on constants.

#ifndef MAPINV_DATA_VALUE_H_
#define MAPINV_DATA_VALUE_H_

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>

#include "base/symbol_context.h"
#include "base/symbols.h"

namespace mapinv {

/// \brief A single database value: either a constant or a labelled null.
class Value {
 public:
  /// Default-constructed value: the constant with interned id 0 if any; do
  /// not rely on this — present only so Value is usable in containers.
  Value() : bits_(0) {}

  /// Returns the constant with the given spelling (interned).
  static Value MakeConstant(std::string_view spelling) {
    return Value(ConstantPool().Intern(spelling), /*is_null=*/false);
  }

  /// Returns the constant spelling the decimal form of `n` (convenience).
  static Value Int(int64_t n) { return MakeConstant(std::to_string(n)); }

  /// Returns a labelled null with a label fresh in `context`. Engine-scoped
  /// contexts make label assignment reproducible run-to-run; see
  /// base/symbol_context.h.
  static Value FreshNull(SymbolContext& context) {
    return Value(context.NextNullLabel(), /*is_null=*/true);
  }

  /// Returns a labelled null fresh in the process-global context.
  static Value FreshNull() { return FreshNull(SymbolContext::Global()); }

  /// Returns the labelled null with the given explicit label. Intended for
  /// tests and parsers; labels below 2^31 never collide with FreshNull()
  /// output only if FreshNull has not issued them — prefer FreshNull in
  /// library code.
  static Value NullWithLabel(uint32_t label) {
    return Value(label, /*is_null=*/true);
  }

  bool is_constant() const { return (bits_ & kNullFlag) == 0; }
  bool is_null() const { return !is_constant(); }

  /// Raw id: interned-spelling id for constants, label for nulls.
  uint32_t id() const { return static_cast<uint32_t>(bits_ & 0xffffffffu); }

  /// Constant spelling, or "_N<label>" for nulls.
  std::string ToString() const {
    if (is_constant()) return std::string(ConstantPool().Text(id()));
    return "_N" + std::to_string(id());
  }

  friend bool operator==(Value a, Value b) { return a.bits_ == b.bits_; }
  friend bool operator!=(Value a, Value b) { return a.bits_ != b.bits_; }
  friend bool operator<(Value a, Value b) { return a.bits_ < b.bits_; }

  /// Stable hash of the value.
  size_t Hash() const { return std::hash<uint64_t>()(bits_); }

  /// Raw bit pattern, for the snapshot/spill serialisation paths only: the
  /// constant-id half is meaningful solely relative to this process's
  /// ConstantPool, so persisted bits must be remapped through a spelling
  /// table (see data/snapshot.cc).
  uint64_t bits() const { return bits_; }
  /// Rebuilds a value from a bit pattern produced by bits() (after any
  /// cross-process constant-id remapping).
  static Value FromBits(uint64_t bits) {
    Value v;
    v.bits_ = bits;
    return v;
  }
  /// The bit distinguishing labelled nulls from constants in bits().
  static constexpr uint64_t kNullBit = 1ULL << 32;

 private:
  static constexpr uint64_t kNullFlag = 1ULL << 32;

  Value(uint32_t id, bool is_null)
      : bits_(static_cast<uint64_t>(id) | (is_null ? kNullFlag : 0)) {}

  uint64_t bits_;
};

struct ValueHash {
  size_t operator()(Value v) const { return v.Hash(); }
};

/// \brief Renders a value in the parser's *formula* syntax: nulls as
/// _N<label>, numeric constants bare, every other constant single-quoted —
/// a bare identifier in a formula reads back as a variable, not a
/// constant. The lexer has no escape syntax, so a spelling containing a
/// quote or newline (API-constructible only; the parser can never intern
/// one) does not round-trip; it is still rendered quoted.
inline std::string RenderTermValue(Value v) {
  std::string s = v.ToString();
  if (v.is_null()) return s;
  bool numeric = !s.empty();
  for (char c : s) {
    if (c < '0' || c > '9') numeric = false;
  }
  if (numeric) return s;
  return "'" + s + "'";
}

/// \brief Renders a value in the parser's *instance* syntax, where bare
/// identifiers are constant spellings: numbers and identifier-shaped
/// spellings stay bare (except the _N<digits> pattern, which would read
/// back as a labelled null) and everything else is single-quoted.
inline std::string RenderFactValue(Value v) {
  std::string s = v.ToString();
  if (v.is_null()) return s;
  bool numeric = !s.empty();
  for (char c : s) {
    if (c < '0' || c > '9') numeric = false;
  }
  if (numeric) return s;
  auto is_ident_char = [](char c) {
    return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
           (c >= '0' && c <= '9') || c == '_';
  };
  bool ident = !s.empty() && !(s[0] >= '0' && s[0] <= '9');
  for (char c : s) {
    if (!is_ident_char(c)) ident = false;
  }
  if (ident && s.size() > 2 && s[0] == '_' && s[1] == 'N') {
    bool null_shaped = true;
    for (size_t i = 2; i < s.size(); ++i) {
      if (s[i] < '0' || s[i] > '9') null_shaped = false;
    }
    if (null_shaped) ident = false;  // would read back as a null
  }
  if (ident) return s;
  return "'" + s + "'";
}

}  // namespace mapinv

#endif  // MAPINV_DATA_VALUE_H_
