#include "data/schema.h"

namespace mapinv {

Result<RelationId> Schema::AddRelation(std::string_view name, uint32_t arity) {
  auto it = by_name_.find(std::string(name));
  if (it != by_name_.end()) {
    if (symbols_[it->second].arity != arity) {
      return Status::InvalidArgument(
          "relation '" + std::string(name) + "' re-declared with arity " +
          std::to_string(arity) + " (was " +
          std::to_string(symbols_[it->second].arity) + ")");
    }
    return it->second;
  }
  RelationId id = static_cast<RelationId>(symbols_.size());
  symbols_.push_back(RelationSymbol{std::string(name), arity});
  by_name_.emplace(std::string(name), id);
  return id;
}

Result<RelationId> Schema::Require(std::string_view name) const {
  RelationId id = Find(name);
  if (id == kInvalidRelation) {
    return Status::NotFound("unknown relation '" + std::string(name) + "'");
  }
  return id;
}

bool Schema::DisjointFrom(const Schema& other) const {
  for (const auto& s : symbols_) {
    if (other.Find(s.name) != kInvalidRelation) return false;
  }
  return true;
}

Result<Schema> Schema::Union(const Schema& a, const Schema& b) {
  Schema out = a;
  for (const auto& s : b.relations()) {
    MAPINV_ASSIGN_OR_RETURN(RelationId id, out.AddRelation(s.name, s.arity));
    (void)id;
  }
  return out;
}

std::string Schema::ToString() const {
  std::string out = "{ ";
  for (size_t i = 0; i < symbols_.size(); ++i) {
    if (i > 0) out += ", ";
    out += symbols_[i].name + "/" + std::to_string(symbols_[i].arity);
  }
  out += " }";
  return out;
}

}  // namespace mapinv
