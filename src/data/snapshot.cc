/// \file snapshot.cc
/// \brief Instance snapshot save/load: the mmap-able on-disk format behind
/// Instance::Save / Instance::Load.
///
/// Layout (all integers host-endian, the format is a single-host artifact):
///
///   header   (48 bytes)
///     bytes 0..7   magic "MAPINVSN"
///     u32          version (currently 1)
///     u32          num_relations
///     u64          file_size           — total bytes; truncation check
///     u64          spell_table_offset  — start of the spelling side table
///     u64          spell_count         — constants in the side table
///     u64          max_null_label      — advisory: largest null label used
///   directory (one entry per relation, in RelationId order)
///     u32          name_len
///     u32          arity
///     u64          num_rows
///     u64          pages_offset        — 8-aligned, relative to file start
///     bytes        name, zero-padded to a multiple of 8
///   pages     (per relation, at its pages_offset)
///     u64 × num_rows*arity             — row-major values; nulls keep their
///                                        bits (kNullBit | label), constants
///                                        are *file ids*: the rank of their
///                                        spelling in the sorted side table
///   spelling table (at spell_table_offset)
///     spell_count × { u32 len, bytes } — spellings in ascending order
///
/// Constants are never persisted under process-local interner ids: Save
/// rewrites them to sorted-spelling ranks, which makes the bytes a pure
/// function of the logical content — save → load → save round-trips
/// byte-identically, in any process. Load interns the side table, and only
/// if some file id disagrees with the local id does it rewrite the pages in
/// place (the mapping is MAP_PRIVATE, so rewritten pages become anonymous
/// copies and untouched pages stay file-backed / zero-copy).
///
/// Dedup tables and value indexes are not persisted; the loaded instance
/// rebuilds them lazily on first probe (see Instance::EnsureDedup /
/// IndexFor). Sealed segments point straight into the mapping with the
/// MappedFile as keepalive; the partial tail is copied to heap so the
/// instance can keep growing. Every loader path validates bounds and value
/// shapes and fails with kMalformed — never a crash — on corrupt or
/// truncated input (the 'N' selector in tests/fuzz/parser_fuzz.cc hammers
/// this, and tests/snapshot_test.cc walks every truncation length).

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>
#include <type_traits>
#include <unordered_set>
#include <utility>
#include <vector>

#include "base/status.h"
#include "base/symbols.h"
#include "data/instance.h"
#include "data/segment.h"
#include "data/value.h"

namespace mapinv {

namespace {

constexpr char kMagic[8] = {'M', 'A', 'P', 'I', 'N', 'V', 'S', 'N'};
constexpr uint32_t kVersion = 1;
constexpr size_t kHeaderSize = 48;
constexpr size_t kDirEntryFixed = 24;  // name_len + arity + num_rows + offset

static_assert(sizeof(Value) == sizeof(uint64_t),
              "snapshot pages store one u64 per value");
static_assert(std::is_trivially_copyable_v<Value>,
              "snapshot pages memcpy Value payloads");

size_t PadTo8(size_t n) { return (n + 7) & ~size_t{7}; }

void AppendU32(std::string& buf, uint32_t v) {
  buf.append(reinterpret_cast<const char*>(&v), sizeof(v));
}

void AppendU64(std::string& buf, uint64_t v) {
  buf.append(reinterpret_cast<const char*>(&v), sizeof(v));
}

Status Malformed(const std::string& what) {
  return Status::Malformed("snapshot: " + what);
}

/// Bounds-checked cursor over the mapped image; every read fails with
/// kMalformed instead of walking off the mapping.
class Reader {
 public:
  Reader(const uint8_t* data, size_t size) : data_(data), size_(size) {}

  Result<uint32_t> U32() {
    uint32_t v;
    MAPINV_RETURN_NOT_OK(Raw(&v, sizeof(v)));
    return v;
  }

  Result<uint64_t> U64() {
    uint64_t v;
    MAPINV_RETURN_NOT_OK(Raw(&v, sizeof(v)));
    return v;
  }

  Result<std::string_view> Bytes(size_t len) {
    if (len > size_ - pos_) return Malformed("truncated inside a field");
    std::string_view view(reinterpret_cast<const char*>(data_ + pos_), len);
    pos_ += len;
    return view;
  }

  Status Skip(size_t len) {
    if (len > size_ - pos_) return Malformed("truncated inside padding");
    pos_ += len;
    return Status::OK();
  }

  size_t pos() const { return pos_; }

 private:
  Status Raw(void* out, size_t len) {
    if (len > size_ - pos_) return Malformed("truncated inside a field");
    std::memcpy(out, data_ + pos_, len);
    pos_ += len;
    return Status::OK();
  }

  const uint8_t* data_;
  size_t size_;
  size_t pos_ = 0;
};

Status WriteFileAtomic(const std::string& path, const std::string& bytes) {
  const std::string tmp = path + ".tmp";
  int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    return Status::Internal("snapshot: cannot create " + tmp + ": " +
                            std::strerror(errno));
  }
  size_t off = 0;
  while (off < bytes.size()) {
    ssize_t n = ::write(fd, bytes.data() + off, bytes.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      Status s = Status::Internal("snapshot: write to " + tmp + " failed: " +
                                  std::strerror(errno));
      ::close(fd);
      ::unlink(tmp.c_str());
      return s;
    }
    off += static_cast<size_t>(n);
  }
  if (::close(fd) != 0) {
    ::unlink(tmp.c_str());
    return Status::Internal("snapshot: close of " + tmp + " failed: " +
                            std::strerror(errno));
  }
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    Status s = Status::Internal("snapshot: rename to " + path + " failed: " +
                                std::strerror(errno));
    ::unlink(tmp.c_str());
    return s;
  }
  return Status::OK();
}

}  // namespace

/// Friend of Instance: the only code that reaches into Store internals from
/// outside instance.cc.
struct SnapshotAccess {
  static std::string SaveBytes(const Instance& instance);
  static Result<Instance> Load(std::shared_ptr<MappedFile> map);
};

std::string SnapshotAccess::SaveBytes(const Instance& instance) {
  instance.EnsureSlots();
  const Schema& schema = instance.schema();
  const size_t num_relations = schema.size();

  // Pass 1: collect the constants in use and the largest null label.
  std::unordered_set<uint32_t> constant_ids;
  uint64_t max_null_label = 0;
  for (RelationId r = 0; r < num_relations; ++r) {
    const Instance::Store& store = *instance.stores_[r];
    if (store.arity == 0) continue;
    for (size_t row = 0; row < store.num_rows; ++row) {
      const Value* ptr = store.RowPtr(static_cast<TupleRef>(row));
      for (uint32_t pos = 0; pos < store.arity; ++pos) {
        const Value v = ptr[pos];
        if (v.is_constant()) {
          constant_ids.insert(v.id());
        } else {
          max_null_label = std::max<uint64_t>(max_null_label, v.id());
        }
      }
    }
  }

  // Sorted spelling table: file id = rank of the spelling. Interner ids are
  // process-local accidents of insertion order; spellings are the content.
  std::vector<std::pair<std::string_view, uint32_t>> spellings;
  spellings.reserve(constant_ids.size());
  for (uint32_t id : constant_ids) {
    spellings.emplace_back(ConstantPool().Text(id), id);
  }
  std::sort(spellings.begin(), spellings.end());
  std::vector<uint64_t> file_id_of;  // dense over the max interner id seen
  uint32_t max_interner_id = 0;
  for (const auto& [text, id] : spellings) {
    max_interner_id = std::max(max_interner_id, id);
  }
  file_id_of.assign(static_cast<size_t>(max_interner_id) + 1, 0);
  for (size_t rank = 0; rank < spellings.size(); ++rank) {
    file_id_of[spellings[rank].second] = rank;
  }

  // Layout: header, directory, pages (8-aligned by construction), table.
  size_t dir_size = 0;
  for (RelationId r = 0; r < num_relations; ++r) {
    dir_size += kDirEntryFixed + PadTo8(schema.name(r).size());
  }
  std::vector<uint64_t> pages_offsets(num_relations);
  uint64_t offset = kHeaderSize + dir_size;
  for (RelationId r = 0; r < num_relations; ++r) {
    pages_offsets[r] = offset;
    const Instance::Store& store = *instance.stores_[r];
    offset += static_cast<uint64_t>(store.num_rows) * store.arity *
              sizeof(uint64_t);
  }
  const uint64_t spell_table_offset = offset;
  uint64_t spell_table_size = 0;
  for (const auto& [text, id] : spellings) {
    spell_table_size += sizeof(uint32_t) + text.size();
  }
  const uint64_t file_size = spell_table_offset + spell_table_size;

  std::string buf;
  buf.reserve(file_size);
  buf.append(kMagic, sizeof(kMagic));
  AppendU32(buf, kVersion);
  AppendU32(buf, static_cast<uint32_t>(num_relations));
  AppendU64(buf, file_size);
  AppendU64(buf, spell_table_offset);
  AppendU64(buf, spellings.size());
  AppendU64(buf, max_null_label);
  for (RelationId r = 0; r < num_relations; ++r) {
    const std::string& name = schema.name(r);
    AppendU32(buf, static_cast<uint32_t>(name.size()));
    AppendU32(buf, schema.arity(r));
    AppendU64(buf, instance.stores_[r]->num_rows);
    AppendU64(buf, pages_offsets[r]);
    buf.append(name);
    buf.append(PadTo8(name.size()) - name.size(), '\0');
  }
  for (RelationId r = 0; r < num_relations; ++r) {
    const Instance::Store& store = *instance.stores_[r];
    if (store.arity == 0) continue;
    for (size_t row = 0; row < store.num_rows; ++row) {
      const Value* ptr = store.RowPtr(static_cast<TupleRef>(row));
      for (uint32_t pos = 0; pos < store.arity; ++pos) {
        const Value v = ptr[pos];
        AppendU64(buf, v.is_null() ? v.bits() : file_id_of[v.id()]);
      }
    }
  }
  for (const auto& [text, id] : spellings) {
    AppendU32(buf, static_cast<uint32_t>(text.size()));
    buf.append(text);
  }
  return buf;
}

Result<Instance> SnapshotAccess::Load(std::shared_ptr<MappedFile> map) {
  const uint8_t* data = map->data();
  const size_t size = map->size();
  if (size < kHeaderSize) return Malformed("shorter than the header");
  if (std::memcmp(data, kMagic, sizeof(kMagic)) != 0) {
    return Malformed("bad magic");
  }
  Reader header(data + sizeof(kMagic), size - sizeof(kMagic));
  MAPINV_ASSIGN_OR_RETURN(uint32_t version, header.U32());
  if (version != kVersion) {
    return Malformed("unsupported version " + std::to_string(version));
  }
  MAPINV_ASSIGN_OR_RETURN(uint32_t num_relations, header.U32());
  MAPINV_ASSIGN_OR_RETURN(uint64_t file_size, header.U64());
  MAPINV_ASSIGN_OR_RETURN(uint64_t spell_table_offset, header.U64());
  MAPINV_ASSIGN_OR_RETURN(uint64_t spell_count, header.U64());
  MAPINV_ASSIGN_OR_RETURN(uint64_t max_null_label, header.U64());
  (void)max_null_label;  // advisory metadata; labels validate per value
  if (file_size != size) {
    return Malformed("file size field " + std::to_string(file_size) +
                     " does not match actual size " + std::to_string(size) +
                     " (truncated?)");
  }
  if (spell_table_offset < kHeaderSize || spell_table_offset > size) {
    return Malformed("spelling table offset out of bounds");
  }

  // Directory. Names are parsed before pages so schema errors (duplicate
  // names with differing arities, ...) surface as kMalformed too.
  struct DirEntry {
    std::string_view name;
    uint32_t arity;
    uint64_t num_rows;
    uint64_t pages_offset;
  };
  Reader dir(data + kHeaderSize,
             std::min<size_t>(size, spell_table_offset) - kHeaderSize);
  // A directory entry is at least kDirEntryFixed bytes plus one padded name
  // chunk; reject impossible counts before sizing the entry vector.
  if (num_relations > (spell_table_offset - kHeaderSize) / kDirEntryFixed) {
    return Malformed("relation count exceeds the directory size");
  }
  std::vector<DirEntry> entries(num_relations);
  Schema schema;
  for (uint32_t r = 0; r < num_relations; ++r) {
    DirEntry& e = entries[r];
    MAPINV_ASSIGN_OR_RETURN(uint32_t name_len, dir.U32());
    MAPINV_ASSIGN_OR_RETURN(e.arity, dir.U32());
    MAPINV_ASSIGN_OR_RETURN(e.num_rows, dir.U64());
    MAPINV_ASSIGN_OR_RETURN(e.pages_offset, dir.U64());
    if (name_len == 0) return Malformed("empty relation name");
    MAPINV_ASSIGN_OR_RETURN(e.name, dir.Bytes(name_len));
    MAPINV_RETURN_NOT_OK(dir.Skip(PadTo8(name_len) - name_len));
    if (e.num_rows > UINT32_MAX) {
      return Malformed("relation row count exceeds the TupleRef range");
    }
    if (e.arity == 0 && e.num_rows > 1) {
      return Malformed("0-ary relation with more than one row");
    }
    // Payload bounds: num_rows * arity * 8 without overflow, inside
    // [directory end, spelling table), 8-aligned for the Value view.
    const uint64_t payload =
        e.num_rows * e.arity * static_cast<uint64_t>(sizeof(uint64_t));
    if (e.arity != 0 && payload / sizeof(uint64_t) / e.arity != e.num_rows) {
      return Malformed("relation payload size overflows");
    }
    if ((e.pages_offset & 7) != 0) {
      return Malformed("relation pages not 8-aligned");
    }
    if (e.pages_offset > spell_table_offset ||
        payload > spell_table_offset - e.pages_offset) {
      return Malformed("relation pages out of bounds");
    }
    MAPINV_ASSIGN_OR_RETURN(RelationId id,
                            schema.AddRelation(e.name, e.arity));
    if (id != r) return Malformed("duplicate relation name in directory");
  }
  const size_t dir_end = kHeaderSize + dir.pos();

  // Spelling table: intern every spelling; local_ids[file_id] is this
  // process's interner id for it.
  Reader table(data + spell_table_offset, size - spell_table_offset);
  std::vector<uint32_t> local_ids;
  bool identity = true;
  for (uint64_t i = 0; i < spell_count; ++i) {
    MAPINV_ASSIGN_OR_RETURN(uint32_t len, table.U32());
    MAPINV_ASSIGN_OR_RETURN(std::string_view text, table.Bytes(len));
    const uint32_t local = ConstantPool().Intern(text);
    if (local != local_ids.size()) identity = false;
    local_ids.push_back(local);
  }

  // Validate every value — and rewrite constants to local interner ids when
  // they disagree with the file ids — in one pass. The mapping is
  // MAP_PRIVATE + PROT_WRITE, so rewrites never touch the file.
  for (const DirEntry& e : entries) {
    if (e.pages_offset < dir_end && e.num_rows * e.arity != 0) {
      return Malformed("relation pages overlap the directory");
    }
    uint64_t* vals =
        reinterpret_cast<uint64_t*>(const_cast<uint8_t*>(data) +
                                    e.pages_offset);
    const uint64_t count = e.num_rows * e.arity;
    for (uint64_t i = 0; i < count; ++i) {
      const uint64_t v = vals[i];
      if (v & Value::kNullBit) {
        if ((v & ~(Value::kNullBit | 0xffffffffULL)) != 0) {
          return Malformed("null value with stray high bits");
        }
      } else {
        if (v >= spell_count) {
          return Malformed("constant file id out of spelling-table range");
        }
        if (!identity) vals[i] = local_ids[static_cast<size_t>(v)];
      }
    }
  }

  // Assemble the instance: sealed segments point into the mapping (the
  // shared MappedFile keeps it alive), the partial tail is heap-copied so
  // appends never write through the mapping. Dedup and index stay at
  // watermark 0 — rebuilt lazily on the first probe.
  Instance instance(std::make_shared<const Schema>(std::move(schema)));
  for (uint32_t r = 0; r < num_relations; ++r) {
    const DirEntry& e = entries[r];
    Instance::Store& store = *instance.stores_[r];
    store.num_rows = static_cast<size_t>(e.num_rows);
    if (e.arity == 0) continue;
    const Value* pages = reinterpret_cast<const Value*>(data + e.pages_offset);
    const size_t full_segs = e.num_rows >> kSegmentRowShift;
    const uint32_t tail_rows = static_cast<uint32_t>(e.num_rows &
                                                     kSegmentRowMask);
    for (size_t s = 0; s < full_segs; ++s) {
      auto seg = std::make_shared<Segment>();
      seg->mapping = map;
      seg->mapped_base = pages + s * kSegmentRows * e.arity;
      seg->base.store(seg->mapped_base, std::memory_order_relaxed);
      seg->rows = static_cast<uint32_t>(kSegmentRows);
      store.seg_ptrs.push_back(seg.get());
      store.segs.push_back(std::move(seg));
    }
    if (tail_rows > 0) {
      auto seg = std::make_shared<Segment>();
      const Value* src = pages + full_segs * kSegmentRows * e.arity;
      seg->heap.assign(src, src + static_cast<size_t>(tail_rows) * e.arity);
      seg->base.store(seg->heap.data(), std::memory_order_relaxed);
      seg->rows = tail_rows;
      store.seg_ptrs.push_back(seg.get());
      store.segs.push_back(std::move(seg));
    }
  }
  return instance;
}

Status Instance::Save(const std::string& path) const {
  return WriteFileAtomic(path, SnapshotAccess::SaveBytes(*this));
}

std::string Instance::SaveToBytes() const {
  return SnapshotAccess::SaveBytes(*this);
}

Result<Instance> Instance::Load(const std::string& path) {
  MAPINV_ASSIGN_OR_RETURN(std::shared_ptr<MappedFile> map,
                          MappedFile::Open(path));
  return SnapshotAccess::Load(std::move(map));
}

Result<Instance> Instance::LoadFromBytes(const void* bytes, size_t size) {
  return SnapshotAccess::Load(MappedFile::FromBytes(bytes, size));
}

}  // namespace mapinv
