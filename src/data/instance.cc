#include "data/instance.h"

#include <algorithm>
#include <unordered_set>
#include <utility>

#include "engine/execution_options.h"
#include "engine/failpoint.h"

namespace mapinv {

namespace {

// Fires before any store mutation, so an injected arena-growth failure
// leaves the instance exactly as it was (strong guarantee).
FailPoint fp_add_row("instance/add_row");

// Fires when a mutation finds the instance over its memory budget, before
// any eviction or row is applied (same strong guarantee as instance/add_row).
FailPoint fp_spill("instance/spill");

bool RowEquals(const Value* a, const Value* b, uint32_t arity) {
  for (uint32_t i = 0; i < arity; ++i) {
    if (a[i] != b[i]) return false;
  }
  return true;
}

// Appends one row to the (writable, capacity-ensured) tail segment. The
// base pointer is refreshed unconditionally: insert only reallocates when a
// caller skipped WritableTail's reserve, but the relaxed store is free.
void AppendRowToTail(Segment& tail, const Value* row, uint32_t arity) {
  tail.heap.insert(tail.heap.end(), row, row + arity);
  tail.base.store(tail.heap.data(), std::memory_order_relaxed);
  ++tail.rows;
}

}  // namespace

Instance::Store::Store(const Store& other)
    : arity(other.arity),
      num_rows(other.num_rows),
      // Segments are shared, not copied: sealed segments are
      // content-immutable, and the partial tail is unshared lazily by
      // WritableTail on the first write from either side.
      segs(other.segs),
      seg_ptrs(other.seg_ptrs) {
  // Snapshot the lazy structures consistently: index and dedup catch-up
  // mutate their tables + watermarks under index_mu, so hold the source's
  // lock while copying all four.
  std::lock_guard<std::mutex> lock(other.index_mu);
  dedup = other.dedup;
  dedup_rows.store(other.dedup_rows.load(std::memory_order_relaxed),
                   std::memory_order_relaxed);
  index = other.index;
  indexed_rows.store(other.indexed_rows.load(std::memory_order_relaxed),
                     std::memory_order_relaxed);
}

Instance::Instance(std::shared_ptr<const Schema> schema)
    : schema_(std::move(schema)) {
  EnsureSlots();
}

void Instance::EnsureSlots() const {
  while (stores_.size() < schema_->size()) {
    auto store = std::make_shared<Store>();
    store->arity = schema_->arity(static_cast<RelationId>(stores_.size()));
    // Shaped from birth so IndexFor's fast path (0 rows indexed of 0) hands
    // out a well-formed per-position index even for empty relations.
    store->index.positions.resize(store->arity);
    stores_.push_back(std::move(store));
  }
}

Instance::Store& Instance::Mutable(RelationId relation) {
  std::shared_ptr<Store>& slot = stores_[relation];
  if (slot.use_count() > 1) slot = std::make_shared<Store>(*slot);
  return *slot;
}

void Instance::EnsureDedup(Store& store) {
  const size_t n = store.num_rows;
  // Fast path: the table already covers every row (always true except after
  // Load, whose instances defer the rebuild until the first probe). The
  // acquire load pairs with the release store below.
  if (store.dedup_rows.load(std::memory_order_acquire) == n) return;
  std::lock_guard<std::mutex> lock(store.index_mu);
  size_t done = store.dedup_rows.load(std::memory_order_relaxed);
  if (done == n) return;  // raced, other thread won
  if (store.arity > 0) {
    store.dedup.reserve(n);
    for (size_t row = done; row < n; ++row) {
      const Value* ptr = store.RowPtr(static_cast<TupleRef>(row));
      store.dedup.emplace(HashRow(RowView(ptr, store.arity)),
                          static_cast<TupleRef>(row));
    }
  }
  store.dedup_rows.store(n, std::memory_order_release);
}

Segment& Instance::WritableTail(Store& store) {
  if (store.segs.empty() || store.segs.back()->sealed()) {
    auto seg = std::make_shared<Segment>();
    store.seg_ptrs.push_back(seg.get());
    store.segs.push_back(std::move(seg));
  } else {
    std::shared_ptr<Segment>& slot = store.segs.back();
    if (slot.use_count() > 1 ||
        (slot->rows > 0 && !slot->heap_backed())) {
      // The tail is shared with a fork, mapped from a snapshot, or spilled:
      // replace it with a private heap copy before writing. Sealed segments
      // never reach here (handled above), so this copies at most one
      // partial segment.
      auto seg = std::make_shared<Segment>();
      seg->rows = slot->rows;
      const size_t n = static_cast<size_t>(slot->rows) * store.arity;
      const Value* src = slot->base.load(std::memory_order_acquire);
      if (src == nullptr) src = slot->FaultIn(store.arity);
      seg->heap.assign(src, src + n);
      seg->base.store(seg->heap.data(), std::memory_order_relaxed);
      store.seg_ptrs.back() = seg.get();
      slot = std::move(seg);
    }
  }
  Segment& tail = *store.segs.back();
  // Grow the tail geometrically up to full segment capacity, so small
  // relations (and freshly unshared tails in fork-heavy worlds) don't pay
  // a full kSegmentRows * arity allocation up front.
  const size_t need = (static_cast<size_t>(tail.rows) + 1) * store.arity;
  if (tail.heap.capacity() < need) {
    size_t cap = std::max(tail.heap.capacity() * 2,
                          static_cast<size_t>(16) * store.arity);
    cap = std::min(cap, kSegmentRows * static_cast<size_t>(store.arity));
    cap = std::max(cap, need);
    tail.heap.reserve(cap);
    tail.base.store(tail.heap.data(), std::memory_order_relaxed);
  }
  return tail;
}

Status Instance::MaybeSpill() {
  if (spill_ == nullptr || spill_->budget_bytes == 0) return Status::OK();
  size_t resident = ResidentBytes();
  if (resident <= spill_->budget_bytes) return Status::OK();
  MAPINV_FAILPOINT(fp_spill);
  std::shared_ptr<SpillFile> file;
  {
    std::lock_guard<std::mutex> lock(spill_->mu);
    if (spill_->file == nullptr) {
      MAPINV_ASSIGN_OR_RETURN(spill_->file, SpillFile::Create(spill_->dir));
    }
    file = spill_->file;
  }
  // Evict cold sealed segments oldest-first (ascending relation, then
  // ascending segment) until back under budget. Anything shared with a
  // fork — a shared store, or a shared segment of a private store — is
  // skipped: sibling instances may be reading it concurrently, and the
  // budget holds per instance, not per fork family.
  for (RelationId r = 0;
       r < stores_.size() && resident > spill_->budget_bytes; ++r) {
    if (stores_[r].use_count() > 1) continue;
    Store& store = *stores_[r];
    for (size_t s = 0;
         s < store.segs.size() && resident > spill_->budget_bytes; ++s) {
      std::shared_ptr<Segment>& slot = store.segs[s];
      if (slot.use_count() > 1) continue;
      Segment& seg = *slot;
      if (!seg.sealed() || !seg.heap_backed()) continue;
      if (seg.spill == nullptr) {
        // First eviction of this segment: persist the payload. A segment
        // that was spilled before and faulted back re-evicts for free —
        // sealed payloads are immutable, so the old file bytes still match.
        MAPINV_ASSIGN_OR_RETURN(
            seg.spill_offset,
            file->Append(seg.heap.data(), seg.heap.size() * sizeof(Value)));
        seg.spill = file;
        seg.spill_state = spill_;
      }
      const size_t freed = seg.heap.capacity() * sizeof(Value);
      seg.base.store(nullptr, std::memory_order_relaxed);
      std::vector<Value>().swap(seg.heap);
      resident -= std::min(freed, resident);
      if (spill_->stats != nullptr) {
        spill_->stats->segments_spilled.fetch_add(1,
                                                  std::memory_order_relaxed);
      }
    }
  }
  return Status::OK();
}

void Instance::SetMemoryBudget(uint64_t budget_bytes, std::string spill_dir,
                               ExecStats* stats) {
  if (budget_bytes == 0) {
    spill_.reset();
    return;
  }
  auto state = std::make_shared<SpillState>();
  state->budget_bytes = budget_bytes;
  state->dir = std::move(spill_dir);
  state->stats = stats;
  spill_ = std::move(state);
}

Result<bool> Instance::AddRow(RelationId relation, RowView row) {
  MAPINV_FAILPOINT(fp_add_row);
  EnsureSlots();
  if (relation >= schema_->size()) {
    return Status::NotFound("relation id " + std::to_string(relation) +
                            " not in schema");
  }
  if (row.size() != schema_->arity(relation)) {
    return Status::InvalidArgument(
        "arity mismatch for " + schema_->name(relation) + ": got " +
        std::to_string(row.size()) + ", want " +
        std::to_string(schema_->arity(relation)));
  }
  if (ContainsRow(relation, row)) return false;
  MAPINV_RETURN_NOT_OK(MaybeSpill());
  Store& store = Mutable(relation);
  const TupleRef ref = static_cast<TupleRef>(store.num_rows);
  if (store.arity > 0) {
    Segment& tail = WritableTail(store);
    AppendRowToTail(tail, row.data(), store.arity);
  }
  store.dedup.emplace(HashRow(row), ref);
  ++store.num_rows;
  store.dedup_rows.store(store.num_rows, std::memory_order_relaxed);
  return true;
}

Result<size_t> Instance::AddRows(RelationId relation, const Value* rows,
                                 size_t count, std::vector<uint8_t>* added) {
  // One failpoint per batch, fired before any mutation: an injected failure
  // keeps the whole-batch strong guarantee a per-row loop would give.
  MAPINV_FAILPOINT(fp_add_row);
  EnsureSlots();
  if (relation >= schema_->size()) {
    return Status::NotFound("relation id " + std::to_string(relation) +
                            " not in schema");
  }
  if (added != nullptr) added->assign(count, 0);
  if (count == 0) return size_t{0};
  MAPINV_RETURN_NOT_OK(MaybeSpill());
  const uint32_t arity = schema_->arity(relation);
  Store& store = Mutable(relation);
  if (arity == 0) {
    // 0-ary relations hold at most one (empty) row; only the first insert
    // into an empty store adds anything.
    if (store.num_rows > 0) return size_t{0};
    store.dedup.emplace(HashRow(RowView{}), TupleRef{0});
    store.num_rows = 1;
    store.dedup_rows.store(1, std::memory_order_relaxed);
    if (added != nullptr) (*added)[0] = 1;
    return size_t{1};
  }
  EnsureDedup(store);
  store.dedup.reserve(store.num_rows + count);
  size_t inserted = 0;
  for (size_t i = 0; i < count; ++i) {
    const Value* row = rows + i * arity;
    const size_t hash = HashRow(RowView(row, arity));
    bool present = false;
    // Probes see rows appended earlier in this same batch, so intra-batch
    // duplicates dedup exactly as a per-row AddRow loop would.
    auto [begin, end] = store.dedup.equal_range(hash);
    for (auto it = begin; it != end; ++it) {
      if (RowEquals(store.RowPtr(it->second), row, arity)) {
        present = true;
        break;
      }
    }
    if (present) continue;
    const TupleRef ref = static_cast<TupleRef>(store.num_rows);
    // WritableTail per row: cheap branches in the common case, and it
    // transparently seals + opens segments for batches that straddle a
    // segment boundary.
    Segment& tail = WritableTail(store);
    AppendRowToTail(tail, row, arity);
    store.dedup.emplace(hash, ref);
    ++store.num_rows;
    ++inserted;
    if (added != nullptr) (*added)[i] = 1;
  }
  store.dedup_rows.store(store.num_rows, std::memory_order_relaxed);
  return inserted;
}

void Instance::Reserve(RelationId relation, size_t additional_rows) {
  EnsureSlots();
  if (relation >= schema_->size() || additional_rows == 0) return;
  Store& store = Mutable(relation);
  store.dedup.reserve(store.num_rows + additional_rows);
  if (store.arity == 0) return;
  // Pre-grow the tail for as many of the rows as fit in it; rows beyond the
  // segment boundary allocate fresh segments as they arrive.
  Segment& tail = WritableTail(store);
  const size_t room = kSegmentRows - tail.rows;
  const size_t want = std::min(additional_rows, room);
  const size_t need = (static_cast<size_t>(tail.rows) + want) * store.arity;
  if (tail.heap.capacity() < need) {
    tail.heap.reserve(need);
    tail.base.store(tail.heap.data(), std::memory_order_relaxed);
  }
}

Result<bool> Instance::Add(std::string_view relation, Tuple tuple) {
  MAPINV_ASSIGN_OR_RETURN(RelationId id, schema_->Require(relation));
  return AddTuple(id, std::move(tuple));
}

Result<bool> Instance::AddInts(std::string_view relation,
                               const std::vector<int64_t>& values) {
  Tuple tuple;
  tuple.reserve(values.size());
  for (int64_t v : values) tuple.push_back(Value::Int(v));
  return Add(relation, std::move(tuple));
}

bool Instance::ContainsRow(RelationId relation, RowView row) const {
  EnsureSlots();
  if (relation >= stores_.size()) return false;
  Store& store = *stores_[relation];
  if (row.size() != store.arity) return false;
  if (store.arity == 0) return store.num_rows > 0;
  EnsureDedup(store);
  auto [begin, end] = store.dedup.equal_range(HashRow(row));
  for (auto it = begin; it != end; ++it) {
    if (RowEquals(store.RowPtr(it->second), row.data(), store.arity)) {
      return true;
    }
  }
  return false;
}

std::optional<TupleRef> Instance::FindRow(RelationId relation,
                                          RowView row) const {
  EnsureSlots();
  if (relation >= stores_.size()) return std::nullopt;
  Store& store = *stores_[relation];
  if (row.size() != store.arity) return std::nullopt;
  if (store.arity == 0) {
    if (store.num_rows == 0) return std::nullopt;
    return TupleRef{0};
  }
  EnsureDedup(store);
  auto [begin, end] = store.dedup.equal_range(HashRow(row));
  for (auto it = begin; it != end; ++it) {
    if (RowEquals(store.RowPtr(it->second), row.data(), store.arity)) {
      return it->second;
    }
  }
  return std::nullopt;
}

size_t Instance::NumRows(RelationId relation) const {
  EnsureSlots();
  return stores_[relation]->num_rows;
}

RowView Instance::Row(RelationId relation, TupleRef ref) const {
  EnsureSlots();
  const Store& store = *stores_[relation];
  if (store.arity == 0) return RowView();
  return RowView(store.RowPtr(ref), store.arity);
}

Instance::ArenaView Instance::Arena(RelationId relation) const {
  EnsureSlots();
  const Store& store = *stores_[relation];
  return ArenaView(store.seg_ptrs.data(), store.arity);
}

std::vector<Tuple> Instance::TuplesCopy(RelationId relation) const {
  EnsureSlots();
  const Store& store = *stores_[relation];
  std::vector<Tuple> out;
  out.reserve(store.num_rows);
  for (size_t i = 0; i < store.num_rows; ++i) {
    if (store.arity == 0) {
      out.emplace_back();
      continue;
    }
    const Value* row = store.RowPtr(static_cast<TupleRef>(i));
    out.emplace_back(row, row + store.arity);
  }
  return out;
}

const RelationIndex& Instance::IndexFor(RelationId relation,
                                        size_t* catchup_rows) const {
  EnsureSlots();
  Store& store = *stores_[relation];
  if (catchup_rows != nullptr) *catchup_rows = 0;
  // Fast path: the index already covers every row. The acquire load pairs
  // with the release store below, making the bucket contents visible.
  if (store.indexed_rows.load(std::memory_order_acquire) == store.num_rows) {
    return store.index;
  }
  std::lock_guard<std::mutex> lock(store.index_mu);
  size_t done = store.indexed_rows.load(std::memory_order_relaxed);
  if (done == store.num_rows) return store.index;  // raced, other thread won
  if (store.index.positions.empty()) {
    store.index.positions.resize(store.arity);
  }
  if (store.arity > 0) {
    for (size_t row = done; row < store.num_rows; ++row) {
      const Value* ptr = store.RowPtr(static_cast<TupleRef>(row));
      for (uint32_t pos = 0; pos < store.arity; ++pos) {
        store.index.positions[pos].buckets[ptr[pos]].push_back(
            static_cast<TupleRef>(row));
      }
    }
  }
  if (catchup_rows != nullptr) *catchup_rows = store.num_rows - done;
  store.indexed_rows.store(store.num_rows, std::memory_order_release);
  return store.index;
}

size_t Instance::TotalSize() const {
  EnsureSlots();
  size_t n = 0;
  for (const auto& store : stores_) n += store->num_rows;
  return n;
}

size_t Instance::ArenaBytes() const {
  EnsureSlots();
  size_t bytes = 0;
  for (const auto& store : stores_) {
    for (const auto& seg : store->segs) {
      const size_t heap_bytes = seg->heap.capacity() * sizeof(Value);
      if (heap_bytes > 0) {
        bytes += heap_bytes;
      } else {
        // Mapped or spilled: count the logical payload.
        bytes += static_cast<size_t>(seg->rows) * store->arity * sizeof(Value);
      }
    }
  }
  return bytes;
}

size_t Instance::ResidentBytes() const {
  EnsureSlots();
  size_t bytes = 0;
  for (const auto& store : stores_) {
    for (const auto& seg : store->segs) {
      bytes += seg->heap.capacity() * sizeof(Value);
    }
  }
  return bytes;
}

bool Instance::IsNullFree() const {
  bool null_free = true;
  ForEachFact([&](RelationId, RowView row) {
    for (const Value& v : row) {
      if (v.is_null()) {
        null_free = false;
        return false;
      }
    }
    return true;
  });
  return null_free;
}

std::vector<Value> Instance::ActiveDomain() const {
  std::unordered_set<Value, ValueHash> seen;
  std::vector<Value> out;
  ForEachFact([&](RelationId, RowView row) {
    for (const Value& v : row) {
      if (seen.insert(v).second) out.push_back(v);
    }
  });
  // Deterministic ascending Value order (constants before nulls, each by
  // id), independent of hash-map iteration and insertion history.
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<Fact> Instance::AllFacts() const {
  std::vector<Fact> out;
  out.reserve(TotalSize());
  ForEachFact([&](RelationId r, RowView row) {
    out.push_back(Fact{r, Tuple(row.begin(), row.end())});
  });
  return out;
}

bool Instance::SubsetOf(const Instance& other) const {
  EnsureSlots();
  bool subset = true;
  RelationId other_id = kInvalidRelation;
  RelationId last_rel = kInvalidRelation;
  ForEachFact([&](RelationId r, RowView row) {
    if (r != last_rel) {
      last_rel = r;
      other_id = other.schema().Find(schema_->name(r));
    }
    if (other_id == kInvalidRelation || !other.ContainsRow(other_id, row)) {
      subset = false;
      return false;
    }
    return true;
  });
  return subset;
}

Status Instance::UnionWith(const Instance& other) {
  for (RelationId r = 0; r < other.schema().size(); ++r) {
    if (other.NumRows(r) == 0) continue;
    MAPINV_ASSIGN_OR_RETURN(RelationId mine,
                            schema_->Require(other.schema().name(r)));
    const size_t n = other.NumRows(r);
    for (size_t i = 0; i < n; ++i) {
      MAPINV_ASSIGN_OR_RETURN(
          bool added, AddRow(mine, other.Row(r, static_cast<TupleRef>(i))));
      (void)added;
    }
  }
  return Status::OK();
}

std::string Instance::ToString() const {
  std::vector<std::string> rendered;
  ForEachFact([&](RelationId r, RowView row) {
    std::string s = schema_->name(r) + "(";
    for (size_t i = 0; i < row.size(); ++i) {
      if (i > 0) s += ",";
      // Quote spellings that would not read back as the same constant
      // (non-identifier characters, null-shaped _N<digits>, ...).
      s += RenderFactValue(row[i]);
    }
    s += ")";
    rendered.push_back(std::move(s));
  });
  std::sort(rendered.begin(), rendered.end());
  std::string out = "{ ";
  for (size_t i = 0; i < rendered.size(); ++i) {
    if (i > 0) out += ", ";
    out += rendered[i];
  }
  out += " }";
  return out;
}

}  // namespace mapinv
