#include "data/instance.h"

#include <algorithm>
#include <unordered_set>

namespace mapinv {

Instance::Instance(std::shared_ptr<const Schema> schema)
    : schema_(std::move(schema)) {
  EnsureSlots();
}

void Instance::EnsureSlots() const {
  if (relations_.size() < schema_->size()) relations_.resize(schema_->size());
}

const std::vector<Tuple>& Instance::tuples(RelationId relation) const {
  EnsureSlots();
  return relations_[relation].tuples;
}

Result<bool> Instance::AddTuple(RelationId relation, Tuple tuple) {
  EnsureSlots();
  if (relation >= schema_->size()) {
    return Status::NotFound("relation id " + std::to_string(relation) +
                            " not in schema");
  }
  if (tuple.size() != schema_->arity(relation)) {
    return Status::InvalidArgument(
        "arity mismatch for " + schema_->name(relation) + ": got " +
        std::to_string(tuple.size()) + ", want " +
        std::to_string(schema_->arity(relation)));
  }
  RelationData& data = relations_[relation];
  if (data.set.contains(tuple)) return false;
  data.set.insert(tuple);
  data.tuples.push_back(std::move(tuple));
  return true;
}

Result<bool> Instance::Add(std::string_view relation, Tuple tuple) {
  MAPINV_ASSIGN_OR_RETURN(RelationId id, schema_->Require(relation));
  return AddTuple(id, std::move(tuple));
}

Result<bool> Instance::AddInts(std::string_view relation,
                               const std::vector<int64_t>& values) {
  Tuple tuple;
  tuple.reserve(values.size());
  for (int64_t v : values) tuple.push_back(Value::Int(v));
  return Add(relation, std::move(tuple));
}

bool Instance::Contains(RelationId relation, const Tuple& tuple) const {
  EnsureSlots();
  if (relation >= relations_.size()) return false;
  return relations_[relation].set.contains(tuple);
}

size_t Instance::TotalSize() const {
  EnsureSlots();
  size_t n = 0;
  for (const auto& r : relations_) n += r.tuples.size();
  return n;
}

bool Instance::IsNullFree() const {
  EnsureSlots();
  for (const auto& r : relations_) {
    for (const Tuple& t : r.tuples) {
      for (const Value& v : t) {
        if (v.is_null()) return false;
      }
    }
  }
  return true;
}

std::vector<Value> Instance::ActiveDomain() const {
  EnsureSlots();
  std::unordered_set<Value, ValueHash> seen;
  std::vector<Value> out;
  for (const auto& r : relations_) {
    for (const Tuple& t : r.tuples) {
      for (const Value& v : t) {
        if (seen.insert(v).second) out.push_back(v);
      }
    }
  }
  return out;
}

std::vector<Fact> Instance::AllFacts() const {
  EnsureSlots();
  std::vector<Fact> out;
  for (RelationId r = 0; r < relations_.size(); ++r) {
    for (const Tuple& t : relations_[r].tuples) out.push_back(Fact{r, t});
  }
  return out;
}

bool Instance::SubsetOf(const Instance& other) const {
  EnsureSlots();
  for (RelationId r = 0; r < relations_.size(); ++r) {
    if (relations_[r].tuples.empty()) continue;
    RelationId other_id = other.schema().Find(schema_->name(r));
    if (other_id == kInvalidRelation) return false;
    for (const Tuple& t : relations_[r].tuples) {
      if (!other.Contains(other_id, t)) return false;
    }
  }
  return true;
}

Status Instance::UnionWith(const Instance& other) {
  for (RelationId r = 0; r < other.schema().size(); ++r) {
    const auto& ts = other.tuples(r);
    if (ts.empty()) continue;
    MAPINV_ASSIGN_OR_RETURN(RelationId mine,
                            schema_->Require(other.schema().name(r)));
    for (const Tuple& t : ts) {
      MAPINV_ASSIGN_OR_RETURN(bool added, AddTuple(mine, t));
      (void)added;
    }
  }
  return Status::OK();
}

std::string Instance::ToString() const {
  EnsureSlots();
  std::vector<std::string> rendered;
  for (RelationId r = 0; r < relations_.size(); ++r) {
    for (const Tuple& t : relations_[r].tuples) {
      std::string s = schema_->name(r) + "(";
      for (size_t i = 0; i < t.size(); ++i) {
        if (i > 0) s += ",";
        s += t[i].ToString();
      }
      s += ")";
      rendered.push_back(std::move(s));
    }
  }
  std::sort(rendered.begin(), rendered.end());
  std::string out = "{ ";
  for (size_t i = 0; i < rendered.size(); ++i) {
    if (i > 0) out += ", ";
    out += rendered[i];
  }
  out += " }";
  return out;
}

}  // namespace mapinv
