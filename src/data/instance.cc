#include "data/instance.h"

#include <algorithm>
#include <unordered_set>
#include <utility>

#include "engine/failpoint.h"

namespace mapinv {

namespace {

// Fires before any store mutation, so an injected arena-growth failure
// leaves the instance exactly as it was (strong guarantee).
FailPoint fp_add_row("instance/add_row");

bool RowEquals(const Value* a, const Value* b, uint32_t arity) {
  for (uint32_t i = 0; i < arity; ++i) {
    if (a[i] != b[i]) return false;
  }
  return true;
}

}  // namespace

Instance::Store::Store(const Store& other)
    : arity(other.arity),
      num_rows(other.num_rows),
      arena(other.arena),
      dedup(other.dedup) {
  // Snapshot the index consistently: catch-up mutates index + indexed_rows
  // under index_mu, so hold the source's lock while copying both.
  std::lock_guard<std::mutex> lock(other.index_mu);
  index = other.index;
  indexed_rows.store(other.indexed_rows.load(std::memory_order_relaxed),
                     std::memory_order_relaxed);
}

Instance::Instance(std::shared_ptr<const Schema> schema)
    : schema_(std::move(schema)) {
  EnsureSlots();
}

void Instance::EnsureSlots() const {
  while (stores_.size() < schema_->size()) {
    auto store = std::make_shared<Store>();
    store->arity = schema_->arity(static_cast<RelationId>(stores_.size()));
    // Shaped from birth so IndexFor's fast path (0 rows indexed of 0) hands
    // out a well-formed per-position index even for empty relations.
    store->index.positions.resize(store->arity);
    stores_.push_back(std::move(store));
  }
}

Instance::Store& Instance::Mutable(RelationId relation) {
  std::shared_ptr<Store>& slot = stores_[relation];
  if (slot.use_count() > 1) slot = std::make_shared<Store>(*slot);
  return *slot;
}

Result<bool> Instance::AddRow(RelationId relation, RowView row) {
  MAPINV_FAILPOINT(fp_add_row);
  EnsureSlots();
  if (relation >= schema_->size()) {
    return Status::NotFound("relation id " + std::to_string(relation) +
                            " not in schema");
  }
  if (row.size() != schema_->arity(relation)) {
    return Status::InvalidArgument(
        "arity mismatch for " + schema_->name(relation) + ": got " +
        std::to_string(row.size()) + ", want " +
        std::to_string(schema_->arity(relation)));
  }
  if (ContainsRow(relation, row)) return false;
  Store& store = Mutable(relation);
  const TupleRef ref = static_cast<TupleRef>(store.num_rows);
  store.arena.insert(store.arena.end(), row.begin(), row.end());
  store.dedup.emplace(HashRow(row), ref);
  ++store.num_rows;
  return true;
}

Result<size_t> Instance::AddRows(RelationId relation, const Value* rows,
                                 size_t count, std::vector<uint8_t>* added) {
  // One failpoint per batch, fired before any mutation: an injected failure
  // keeps the whole-batch strong guarantee a per-row loop would give.
  MAPINV_FAILPOINT(fp_add_row);
  EnsureSlots();
  if (relation >= schema_->size()) {
    return Status::NotFound("relation id " + std::to_string(relation) +
                            " not in schema");
  }
  if (added != nullptr) added->assign(count, 0);
  if (count == 0) return size_t{0};
  const uint32_t arity = schema_->arity(relation);
  Store& store = Mutable(relation);
  if (arity == 0) {
    // 0-ary relations hold at most one (empty) row; only the first insert
    // into an empty store adds anything.
    if (store.num_rows > 0) return size_t{0};
    store.dedup.emplace(HashRow(RowView{}), TupleRef{0});
    store.num_rows = 1;
    if (added != nullptr) (*added)[0] = 1;
    return size_t{1};
  }
  store.arena.reserve(store.arena.size() + count * arity);
  size_t inserted = 0;
  for (size_t i = 0; i < count; ++i) {
    const Value* row = rows + i * arity;
    const size_t hash = HashRow(RowView(row, arity));
    bool present = false;
    // Probes see rows appended earlier in this same batch, so intra-batch
    // duplicates dedup exactly as a per-row AddRow loop would.
    auto [begin, end] = store.dedup.equal_range(hash);
    for (auto it = begin; it != end; ++it) {
      if (RowEquals(store.arena.data() + it->second * arity, row, arity)) {
        present = true;
        break;
      }
    }
    if (present) continue;
    const TupleRef ref = static_cast<TupleRef>(store.num_rows);
    store.arena.insert(store.arena.end(), row, row + arity);
    store.dedup.emplace(hash, ref);
    ++store.num_rows;
    ++inserted;
    if (added != nullptr) (*added)[i] = 1;
  }
  return inserted;
}

void Instance::Reserve(RelationId relation, size_t additional_rows) {
  EnsureSlots();
  if (relation >= schema_->size() || additional_rows == 0) return;
  Store& store = Mutable(relation);
  store.arena.reserve(store.arena.size() + additional_rows * store.arity);
  store.dedup.reserve(store.num_rows + additional_rows);
}

Result<bool> Instance::Add(std::string_view relation, Tuple tuple) {
  MAPINV_ASSIGN_OR_RETURN(RelationId id, schema_->Require(relation));
  return AddTuple(id, std::move(tuple));
}

Result<bool> Instance::AddInts(std::string_view relation,
                               const std::vector<int64_t>& values) {
  Tuple tuple;
  tuple.reserve(values.size());
  for (int64_t v : values) tuple.push_back(Value::Int(v));
  return Add(relation, std::move(tuple));
}

bool Instance::ContainsRow(RelationId relation, RowView row) const {
  EnsureSlots();
  if (relation >= stores_.size()) return false;
  const Store& store = *stores_[relation];
  if (row.size() != store.arity) return false;
  if (store.arity == 0) return store.num_rows > 0;
  auto [begin, end] = store.dedup.equal_range(HashRow(row));
  for (auto it = begin; it != end; ++it) {
    if (RowEquals(store.arena.data() + it->second * store.arity, row.data(),
                  store.arity)) {
      return true;
    }
  }
  return false;
}

std::optional<TupleRef> Instance::FindRow(RelationId relation,
                                          RowView row) const {
  EnsureSlots();
  if (relation >= stores_.size()) return std::nullopt;
  const Store& store = *stores_[relation];
  if (row.size() != store.arity) return std::nullopt;
  if (store.arity == 0) {
    if (store.num_rows == 0) return std::nullopt;
    return TupleRef{0};
  }
  auto [begin, end] = store.dedup.equal_range(HashRow(row));
  for (auto it = begin; it != end; ++it) {
    if (RowEquals(store.arena.data() + it->second * store.arity, row.data(),
                  store.arity)) {
      return it->second;
    }
  }
  return std::nullopt;
}

size_t Instance::NumRows(RelationId relation) const {
  EnsureSlots();
  return stores_[relation]->num_rows;
}

RowView Instance::Row(RelationId relation, TupleRef ref) const {
  const Store& store = *stores_[relation];
  return RowView(store.arena.data() + static_cast<size_t>(ref) * store.arity,
                 store.arity);
}

const Value* Instance::ArenaData(RelationId relation) const {
  EnsureSlots();
  return stores_[relation]->arena.data();
}

std::vector<Tuple> Instance::TuplesCopy(RelationId relation) const {
  EnsureSlots();
  const Store& store = *stores_[relation];
  std::vector<Tuple> out;
  out.reserve(store.num_rows);
  for (size_t i = 0; i < store.num_rows; ++i) {
    const Value* row = store.arena.data() + i * store.arity;
    out.emplace_back(row, row + store.arity);
  }
  return out;
}

const RelationIndex& Instance::IndexFor(RelationId relation,
                                        size_t* catchup_rows) const {
  EnsureSlots();
  Store& store = *stores_[relation];
  if (catchup_rows != nullptr) *catchup_rows = 0;
  // Fast path: the index already covers every row. The acquire load pairs
  // with the release store below, making the bucket contents visible.
  if (store.indexed_rows.load(std::memory_order_acquire) == store.num_rows) {
    return store.index;
  }
  std::lock_guard<std::mutex> lock(store.index_mu);
  size_t done = store.indexed_rows.load(std::memory_order_relaxed);
  if (done == store.num_rows) return store.index;  // raced, other thread won
  if (store.index.positions.empty()) {
    store.index.positions.resize(store.arity);
  }
  const Value* data = store.arena.data();
  for (size_t row = done; row < store.num_rows; ++row) {
    for (uint32_t pos = 0; pos < store.arity; ++pos) {
      store.index.positions[pos]
          .buckets[data[row * store.arity + pos]]
          .push_back(static_cast<TupleRef>(row));
    }
  }
  if (catchup_rows != nullptr) *catchup_rows = store.num_rows - done;
  store.indexed_rows.store(store.num_rows, std::memory_order_release);
  return store.index;
}

size_t Instance::TotalSize() const {
  EnsureSlots();
  size_t n = 0;
  for (const auto& store : stores_) n += store->num_rows;
  return n;
}

size_t Instance::ArenaBytes() const {
  EnsureSlots();
  size_t bytes = 0;
  for (const auto& store : stores_) {
    bytes += store->arena.capacity() * sizeof(Value);
  }
  return bytes;
}

bool Instance::IsNullFree() const {
  bool null_free = true;
  ForEachFact([&](RelationId, RowView row) {
    for (const Value& v : row) {
      if (v.is_null()) {
        null_free = false;
        return false;
      }
    }
    return true;
  });
  return null_free;
}

std::vector<Value> Instance::ActiveDomain() const {
  std::unordered_set<Value, ValueHash> seen;
  std::vector<Value> out;
  ForEachFact([&](RelationId, RowView row) {
    for (const Value& v : row) {
      if (seen.insert(v).second) out.push_back(v);
    }
  });
  // Deterministic ascending Value order (constants before nulls, each by
  // id), independent of hash-map iteration and insertion history.
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<Fact> Instance::AllFacts() const {
  std::vector<Fact> out;
  out.reserve(TotalSize());
  ForEachFact([&](RelationId r, RowView row) {
    out.push_back(Fact{r, Tuple(row.begin(), row.end())});
  });
  return out;
}

bool Instance::SubsetOf(const Instance& other) const {
  EnsureSlots();
  bool subset = true;
  RelationId other_id = kInvalidRelation;
  RelationId last_rel = kInvalidRelation;
  ForEachFact([&](RelationId r, RowView row) {
    if (r != last_rel) {
      last_rel = r;
      other_id = other.schema().Find(schema_->name(r));
    }
    if (other_id == kInvalidRelation || !other.ContainsRow(other_id, row)) {
      subset = false;
      return false;
    }
    return true;
  });
  return subset;
}

Status Instance::UnionWith(const Instance& other) {
  for (RelationId r = 0; r < other.schema().size(); ++r) {
    if (other.NumRows(r) == 0) continue;
    MAPINV_ASSIGN_OR_RETURN(RelationId mine,
                            schema_->Require(other.schema().name(r)));
    const size_t n = other.NumRows(r);
    for (size_t i = 0; i < n; ++i) {
      MAPINV_ASSIGN_OR_RETURN(
          bool added, AddRow(mine, other.Row(r, static_cast<TupleRef>(i))));
      (void)added;
    }
  }
  return Status::OK();
}

std::string Instance::ToString() const {
  std::vector<std::string> rendered;
  ForEachFact([&](RelationId r, RowView row) {
    std::string s = schema_->name(r) + "(";
    for (size_t i = 0; i < row.size(); ++i) {
      if (i > 0) s += ",";
      // Quote spellings that would not read back as the same constant
      // (non-identifier characters, null-shaped _N<digits>, ...).
      s += RenderFactValue(row[i]);
    }
    s += ")";
    rendered.push_back(std::move(s));
  });
  std::sort(rendered.begin(), rendered.end());
  std::string out = "{ ";
  for (size_t i = 0; i < rendered.size(); ++i) {
    if (i > 0) out += ", ";
    out += rendered[i];
  }
  out += " }";
  return out;
}

}  // namespace mapinv
