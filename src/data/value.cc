#include "data/value.h"

namespace mapinv {

std::atomic<uint32_t>& Value::next_null_label() {
  static std::atomic<uint32_t> label{0};
  return label;
}

}  // namespace mapinv
