#include "data/value.h"

// Value is fully inline; fresh-null label state lives in SymbolContext
// (base/symbol_context.cc). This TU is kept so the build records the
// dependency and future out-of-line members have a home.
