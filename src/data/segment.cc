#include "data/segment.h"

#include <errno.h>
#include <fcntl.h>
#include <string.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <utility>

#include "engine/execution_options.h"

namespace mapinv {

Result<std::shared_ptr<MappedFile>> MappedFile::Open(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    return Status::NotFound("cannot open snapshot file '" + path +
                            "': " + ::strerror(errno));
  }
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    const std::string err = ::strerror(errno);
    ::close(fd);
    return Status::Internal("cannot stat snapshot file '" + path +
                            "': " + err);
  }
  const size_t size = static_cast<size_t>(st.st_size);
  if (size == 0) {
    ::close(fd);
    return Status::Malformed("snapshot file '" + path + "' is empty");
  }
  // MAP_PRIVATE + PROT_WRITE: the loader may rewrite constant ids in place;
  // written pages become anonymous copies, untouched pages stay file-backed.
  void* map = ::mmap(nullptr, size, PROT_READ | PROT_WRITE, MAP_PRIVATE, fd,
                     /*offset=*/0);
  ::close(fd);  // the mapping keeps the file alive
  if (map == MAP_FAILED) {
    return Status::Internal("cannot mmap snapshot file '" + path +
                            "': " + ::strerror(errno));
  }
  return std::shared_ptr<MappedFile>(
      new MappedFile(static_cast<uint8_t*>(map), size, /*is_mmap=*/true));
}

std::shared_ptr<MappedFile> MappedFile::FromBytes(const void* data,
                                                  size_t size) {
  uint8_t* copy = static_cast<uint8_t*>(::malloc(size == 0 ? 1 : size));
  if (size > 0) ::memcpy(copy, data, size);
  return std::shared_ptr<MappedFile>(
      new MappedFile(copy, size, /*is_mmap=*/false));
}

MappedFile::~MappedFile() {
  if (is_mmap_) {
    ::munmap(data_, size_);
  } else {
    ::free(data_);
  }
}

Result<std::shared_ptr<SpillFile>> SpillFile::Create(const std::string& dir) {
  std::string base = dir;
  if (base.empty()) {
    const char* tmp = ::getenv("TMPDIR");
    base = (tmp != nullptr && *tmp != '\0') ? tmp : "/tmp";
  }
  std::string templ = base + "/mapinv-spill-XXXXXX";
  std::vector<char> buf(templ.begin(), templ.end());
  buf.push_back('\0');
  const int fd = ::mkstemp(buf.data());
  if (fd < 0) {
    return Status::Internal("cannot create spill file under '" + base +
                            "': " + ::strerror(errno));
  }
  // Unlink immediately: the payload can never outlive the process, and a
  // crashed run leaves nothing behind.
  ::unlink(buf.data());
  return std::shared_ptr<SpillFile>(new SpillFile(fd));
}

SpillFile::~SpillFile() { ::close(fd_); }

Result<uint64_t> SpillFile::Append(const void* bytes, size_t len) {
  std::lock_guard<std::mutex> lock(mu_);
  const uint64_t offset = end_;
  size_t done = 0;
  while (done < len) {
    const ssize_t n =
        ::pwrite(fd_, static_cast<const uint8_t*>(bytes) + done, len - done,
                 static_cast<off_t>(offset + done));
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::Internal(std::string("spill write failed: ") +
                              ::strerror(errno));
    }
    done += static_cast<size_t>(n);
  }
  end_ += len;
  return offset;
}

Status SpillFile::ReadAt(void* out, size_t len, uint64_t offset) const {
  size_t done = 0;
  while (done < len) {
    const ssize_t n =
        ::pread(fd_, static_cast<uint8_t*>(out) + done, len - done,
                static_cast<off_t>(offset + done));
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::Internal(std::string("spill read failed: ") +
                              ::strerror(errno));
    }
    if (n == 0) {
      return Status::Internal("spill read hit EOF (truncated spill file)");
    }
    done += static_cast<size_t>(n);
  }
  return Status::OK();
}

const Value* Segment::FaultIn(uint32_t arity) {
  std::lock_guard<std::mutex> lock(mu);
  // Double-check: another reader may have faulted the payload in while we
  // waited for the lock.
  const Value* resident = base.load(std::memory_order_relaxed);
  if (resident != nullptr) return resident;
  std::vector<Value> data(static_cast<size_t>(rows) * arity);
  // Bounded retry before giving up: ReadAt already restarts EINTR-interrupted
  // syscalls internally, so a retry here covers genuinely transient I/O
  // faults (networked tmp dirs, overloaded storage). Each extra attempt is
  // surfaced via segment_faultin_retries.
  constexpr int kFaultInAttempts = 3;
  Status read = Status::OK();
  for (int attempt = 0; attempt < kFaultInAttempts; ++attempt) {
    if (attempt > 0 && spill_state != nullptr &&
        spill_state->stats != nullptr) {
      spill_state->stats->segment_faultin_retries.fetch_add(
          1, std::memory_order_relaxed);
    }
    read =
        spill->ReadAt(data.data(), data.size() * sizeof(Value), spill_offset);
    if (read.ok()) break;
  }
  if (!read.ok()) {
    // The unlinked spill file is the only copy of this payload; a read that
    // keeps failing after the retries is unrecoverable data loss, not a
    // degradable condition.
    std::fprintf(stderr,
                 "mapinv: fatal: segment fault-in failed after %d attempts: "
                 "%s\n",
                 kFaultInAttempts, read.ToString().c_str());
    std::abort();
  }
  heap = std::move(data);
  if (spill_state != nullptr && spill_state->stats != nullptr) {
    spill_state->stats->segments_faulted.fetch_add(1,
                                                   std::memory_order_relaxed);
  }
  const Value* ptr = heap.data();
  base.store(ptr, std::memory_order_release);
  return ptr;
}

}  // namespace mapinv
