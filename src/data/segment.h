/// \file segment.h
/// \brief Fixed-size storage segments backing the relation arenas, plus the
/// file primitives (read-only mmap, append-only spill file) the segmented
/// store builds snapshots and spill-to-disk on.
///
/// A relation's rows no longer live in one contiguous grow-by-realloc
/// vector; they live in a chain of fixed-capacity *segments* of
/// kSegmentRows rows each (row-major, stride = arity). Row `ref` lives in
/// segment `ref >> kSegmentRowShift` at local row `ref & kSegmentRowMask`.
/// The capacity matches the vectorized executor's default 1024-row block, so
/// a seed scan's blocks tile segment stripes exactly.
///
/// A segment is in exactly one of three backing states:
///
///   * **heap** — owns a std::vector<Value>; the only state that accepts
///     appends (and only while it is the un-shared tail of its store);
///   * **mapped** — points into a snapshot file mapping (MAP_PRIVATE), kept
///     alive by a shared MappedFile; content-immutable;
///   * **spilled** — evicted past the memory budget; payload lives at
///     `spill_offset` of a SpillFile and `base` is null until a reader
///     faults it back in.
///
/// `base` is the single source of truth for residency: readers load it with
/// acquire and hit the fault-in slow path on null. Fault-in is double-checked
/// under the segment's mutex, exactly like the instance index catch-up, so
/// concurrent readers of a non-growing instance may race on it safely. All
/// other fields are written only while the segment is exclusively owned
/// (mutation paths) or under `mu` (fault-in).

#ifndef MAPINV_DATA_SEGMENT_H_
#define MAPINV_DATA_SEGMENT_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "base/status.h"
#include "data/value.h"

namespace mapinv {

struct ExecStats;

/// Rows per storage segment (must stay a power of two; the hot row-address
/// computation is one shift and one mask).
inline constexpr size_t kSegmentRows = 1024;
inline constexpr uint32_t kSegmentRowShift = 10;
inline constexpr uint32_t kSegmentRowMask = 1023;
static_assert(kSegmentRows == size_t{1} << kSegmentRowShift);
static_assert(kSegmentRowMask == kSegmentRows - 1);

/// \brief A private, writable mmap of a snapshot file. MAP_PRIVATE: pages
/// the loader rewrites (constant-id remapping) become anonymous copies;
/// untouched pages stay file-backed, so an identity remap is zero-copy.
/// Shared by every segment carved out of one snapshot (keepalive).
class MappedFile {
 public:
  /// Maps `path` read-write-private. Fails (kNotFound / kInternal) without
  /// touching the filesystem state.
  static Result<std::shared_ptr<MappedFile>> Open(const std::string& path);

  /// Wraps a heap buffer in the MappedFile interface (no file behind it);
  /// used by the in-memory snapshot loader entry point and the fuzzer.
  static std::shared_ptr<MappedFile> FromBytes(const void* data, size_t size);

  ~MappedFile();
  MappedFile(const MappedFile&) = delete;
  MappedFile& operator=(const MappedFile&) = delete;

  uint8_t* data() const { return data_; }
  size_t size() const { return size_; }

 private:
  MappedFile(uint8_t* data, size_t size, bool is_mmap)
      : data_(data), size_(size), is_mmap_(is_mmap) {}

  uint8_t* data_;
  size_t size_;
  bool is_mmap_;
};

/// \brief The append-only spill file cold segments are evicted to. Created
/// lazily (mkstemp under the configured directory) and unlinked immediately,
/// so the payload can never outlive the process. Appends serialise on an
/// internal mutex; reads are positional (pread) and lock-free.
class SpillFile {
 public:
  /// Creates an anonymous spill file under `dir` (empty: $TMPDIR or /tmp).
  static Result<std::shared_ptr<SpillFile>> Create(const std::string& dir);

  ~SpillFile();
  SpillFile(const SpillFile&) = delete;
  SpillFile& operator=(const SpillFile&) = delete;

  /// Appends `len` bytes; returns the offset they were written at.
  Result<uint64_t> Append(const void* bytes, size_t len);

  /// Reads `len` bytes from `offset` into `out` (full read or error).
  Status ReadAt(void* out, size_t len, uint64_t offset) const;

 private:
  explicit SpillFile(int fd) : fd_(fd) {}

  int fd_;
  std::mutex mu_;  // serialises appends (end_ is the next write offset)
  uint64_t end_ = 0;
};

/// \brief Memory-budget configuration and counters, shared by an instance
/// and all of its forks (the budget governs the fork family as a whole: the
/// spill file is shared, and bytes are counted per instance at enforcement
/// points). `stats` receives segments_spilled / segments_faulted.
struct SpillState {
  uint64_t budget_bytes = 0;
  std::string dir;
  ExecStats* stats = nullptr;
  std::shared_ptr<SpillFile> file;  // created on first eviction, under mu
  std::mutex mu;
};

/// \brief One fixed-capacity run of up to kSegmentRows rows of one relation.
/// Sealed (full) segments are content-immutable and shared freely across
/// copy-on-write forks; only the un-shared heap tail of a store accepts
/// appends.
struct Segment {
  /// Owning storage while heap-backed (grown geometrically up to
  /// kSegmentRows * arity while the segment is the tail). Empty when mapped
  /// or spilled.
  std::vector<Value> heap;
  /// Keepalive + base while backed by a snapshot mapping.
  std::shared_ptr<MappedFile> mapping;
  const Value* mapped_base = nullptr;
  /// Resident payload pointer; null while spilled. Readers acquire-load and
  /// fault on null; fault-in release-stores after filling the payload.
  std::atomic<const Value*> base{nullptr};
  /// Spill location while (or after) being spilled.
  std::shared_ptr<SpillFile> spill;
  uint64_t spill_offset = 0;
  /// Spill bookkeeping backref, set when the segment is first evicted.
  std::shared_ptr<SpillState> spill_state;
  /// Rows present (sealed iff rows == kSegmentRows).
  uint32_t rows = 0;
  /// Guards fault-in (double-checked via `base`).
  std::mutex mu;

  Segment() = default;
  Segment(const Segment&) = delete;
  Segment& operator=(const Segment&) = delete;

  bool sealed() const { return rows == kSegmentRows; }
  bool heap_backed() const {
    return base.load(std::memory_order_relaxed) == heap.data() &&
           !heap.empty();
  }

  /// Fault-in slow path: loads the payload back from the spill file. Aborts
  /// the process on a genuine I/O failure (the unlinked spill file is the
  /// only copy of the data; see docs/STORAGE.md). `arity` sizes the read.
  const Value* FaultIn(uint32_t arity);
};

}  // namespace mapinv

#endif  // MAPINV_DATA_SEGMENT_H_
