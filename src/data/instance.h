/// \file instance.h
/// \brief Database instances: finite sets of tuples per relation symbol.
///
/// An Instance is bound to a Schema (shared ownership) and stores, for each
/// relation, a duplicate-free sequence of tuples. Tuples keep insertion
/// order, which makes chase output deterministic; set-semantics operations
/// (containment, equality, union) ignore order.

#ifndef MAPINV_DATA_INSTANCE_H_
#define MAPINV_DATA_INSTANCE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <unordered_set>
#include <vector>

#include "base/status.h"
#include "data/schema.h"
#include "data/value.h"

namespace mapinv {

/// \brief A database tuple: a fixed-length sequence of values.
using Tuple = std::vector<Value>;

struct TupleHash {
  size_t operator()(const Tuple& t) const {
    size_t seed = t.size();
    for (const Value& v : t) HashCombine(seed, v.Hash());
    return seed;
  }
};

/// \brief A fact: a relation id together with a tuple.
struct Fact {
  RelationId relation;
  Tuple tuple;

  friend bool operator==(const Fact& a, const Fact& b) {
    return a.relation == b.relation && a.tuple == b.tuple;
  }
};

/// \brief An instance of a relational schema.
class Instance {
 public:
  /// Creates an empty instance of `schema`.
  explicit Instance(std::shared_ptr<const Schema> schema);

  /// Convenience: copies the schema into shared ownership.
  explicit Instance(const Schema& schema)
      : Instance(std::make_shared<const Schema>(schema)) {}

  const Schema& schema() const { return *schema_; }
  std::shared_ptr<const Schema> schema_ptr() const { return schema_; }

  /// Inserts a tuple; returns true if it was new. Fails on arity mismatch or
  /// unknown relation.
  Result<bool> AddTuple(RelationId relation, Tuple tuple);

  /// Inserts a tuple by relation name.
  Result<bool> Add(std::string_view relation, Tuple tuple);

  /// Inserts a tuple whose values are the decimal constants of `values`.
  Result<bool> AddInts(std::string_view relation,
                       const std::vector<int64_t>& values);

  /// True if the instance contains the fact.
  bool Contains(RelationId relation, const Tuple& tuple) const;

  /// All tuples of one relation, in insertion order.
  const std::vector<Tuple>& tuples(RelationId relation) const;

  /// Total number of tuples across all relations.
  size_t TotalSize() const;

  /// True if no tuple contains a labelled null.
  bool IsNullFree() const;

  /// All values occurring in the instance (deduplicated, unspecified order).
  std::vector<Value> ActiveDomain() const;

  /// All facts, relation-major in insertion order.
  std::vector<Fact> AllFacts() const;

  /// True if every fact of this instance occurs in `other` (schemas must
  /// agree on the relations used).
  bool SubsetOf(const Instance& other) const;

  /// Set-semantics equality.
  bool EqualTo(const Instance& other) const {
    return SubsetOf(other) && other.SubsetOf(*this);
  }

  /// Adds every fact of `other` into this instance; relation names are
  /// resolved against this instance's schema.
  Status UnionWith(const Instance& other);

  /// Deterministic rendering: relations and tuples sorted lexicographically,
  /// e.g. "{ R(1,2), R(3,4), S(2,5) }".
  std::string ToString() const;

 private:
  struct RelationData {
    std::vector<Tuple> tuples;
    std::unordered_set<Tuple, TupleHash> set;
  };

  std::shared_ptr<const Schema> schema_;
  // Indexed by RelationId; grown when the schema has more relations than
  // were present at construction (schemas are append-only).
  mutable std::vector<RelationData> relations_;

  void EnsureSlots() const;
};

}  // namespace mapinv

#endif  // MAPINV_DATA_INSTANCE_H_
