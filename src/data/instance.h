/// \file instance.h
/// \brief Database instances: columnar tuple storage with instance-owned
/// value indexes and copy-on-write forks.
///
/// An Instance is bound to a Schema (shared ownership) and stores, for each
/// relation, a duplicate-free sequence of rows. Storage is *columnar in
/// spirit, flat in layout*: every relation keeps one contiguous
/// `std::vector<Value>` arena with an arity stride, so a row is the slice
/// `arena[i*arity .. i*arity+arity)` and a full-relation scan is one linear
/// sweep with no per-tuple heap allocation or pointer chasing. Rows are
/// addressed by dense `TupleRef` (uint32 row index in insertion order);
/// deduplication hashes the arena slice into a multimap of row refs.
///
/// Three properties the rest of the pipeline relies on:
///
///   * **Append-only, insertion-ordered.** Rows are never removed or
///     reordered, which keeps chase output deterministic and lets derived
///     structures catch up incrementally.
///   * **Instance-owned persistent indexes.** The (position, value) → rows
///     buckets that every homomorphism search needs live here, behind a
///     per-relation version counter (`indexed rows` vs `total rows`), built
///     lazily and extended incrementally. All HomSearch objects over one
///     instance share them; constructing a search is free.
///   * **Copy-on-write forks.** Copying an Instance is O(#relations): the
///     copy shares every relation store (arena + dedup + index) with the
///     original, and a store is cloned only on the first subsequent write
///     to it from either side. `Fork()`/`Snapshot()` name this explicitly
///     for the worlds-based algorithms (reverse chase, round trips), which
///     branch thousands of candidate worlds that each touch few relations.
///
/// Thread-safety contract (unchanged from the per-search index era, now
/// stated on the owner): concurrent *reads* — including lazy index catch-up,
/// which is internally synchronised — are safe on instances that do not
/// grow; any mutation of an instance, or of an instance sharing its stores,
/// must be externally ordered before/after concurrent access.

#ifndef MAPINV_DATA_INSTANCE_H_
#define MAPINV_DATA_INSTANCE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <type_traits>
#include <unordered_map>
#include <vector>

#include "base/status.h"
#include "data/schema.h"
#include "data/value.h"

namespace mapinv {

/// \brief A database tuple as a standalone value: a fixed-length sequence of
/// values. Inside an Instance tuples live in relation arenas, not in
/// individual vectors; Tuple remains the exchange type at API boundaries.
using Tuple = std::vector<Value>;

/// \brief Dense row id within one relation of one instance, in insertion
/// order.
using TupleRef = uint32_t;

/// \brief Borrowed view of one row of a relation arena (arity values).
/// Valid until the owning instance's relation store is next mutated.
using RowView = std::span<const Value>;

struct TupleHash {
  size_t operator()(const Tuple& t) const {
    size_t seed = t.size();
    for (const Value& v : t) HashCombine(seed, v.Hash());
    return seed;
  }
};

/// Hash of a row slice; agrees with TupleHash on equal contents.
inline size_t HashRow(RowView row) {
  size_t seed = row.size();
  for (const Value& v : row) HashCombine(seed, v.Hash());
  return seed;
}

/// \brief A fact: a relation id together with a tuple.
struct Fact {
  RelationId relation;
  Tuple tuple;

  friend bool operator==(const Fact& a, const Fact& b) {
    return a.relation == b.relation && a.tuple == b.tuple;
  }
};

/// \brief value-at-position → ascending row refs, for one position of one
/// relation. Owned by the instance; see Instance::IndexFor.
struct PositionIndex {
  std::unordered_map<Value, std::vector<TupleRef>, ValueHash> buckets;
};

/// \brief The per-relation value index: one PositionIndex per column.
struct RelationIndex {
  std::vector<PositionIndex> positions;
};

/// \brief An instance of a relational schema.
class Instance {
 public:
  /// Creates an empty instance of `schema`.
  explicit Instance(std::shared_ptr<const Schema> schema);

  /// Convenience: copies the schema into shared ownership.
  explicit Instance(const Schema& schema)
      : Instance(std::make_shared<const Schema>(schema)) {}

  /// Copying an instance is an O(#relations) copy-on-write fork: both sides
  /// share every relation store until one of them writes to it. Reads on
  /// the copy are exactly as fast as on the original (same arenas, same
  /// already-built indexes).
  Instance(const Instance&) = default;
  Instance& operator=(const Instance&) = default;
  Instance(Instance&&) = default;
  Instance& operator=(Instance&&) = default;

  /// Explicit O(1)-per-relation copy-on-write fork (same operation as the
  /// copy constructor, named for the worlds-based algorithms). The fork and
  /// the original are fully isolated observationally: a write to either
  /// clones the written relation's store first.
  Instance Fork() const { return *this; }

  /// A cheap point-in-time copy intended to be kept immutable (identical
  /// mechanism to Fork; the name documents intent at call sites).
  Instance Snapshot() const { return *this; }

  const Schema& schema() const { return *schema_; }
  std::shared_ptr<const Schema> schema_ptr() const { return schema_; }

  /// Inserts a tuple; returns true if it was new. Fails on arity mismatch or
  /// unknown relation.
  Result<bool> AddTuple(RelationId relation, Tuple tuple) {
    return AddRow(relation, RowView(tuple));
  }

  /// Inserts a row (copying the values into the relation arena); returns
  /// true if it was new. Fails on arity mismatch or unknown relation. The
  /// allocation-free hot path for the chase engines: callers reuse one
  /// scratch buffer across firings.
  Result<bool> AddRow(RelationId relation, RowView row);

  /// Bulk insert of `count` rows laid out row-major in `rows` (stride =
  /// arity). Semantically identical to calling AddRow on each row in order —
  /// same dedup (including against earlier rows of the same batch), same
  /// resulting refs — but pays the failpoint, schema checks, and
  /// copy-on-write gate once per batch instead of once per row. Returns the
  /// number of rows that were new; if `added` is non-null it is resized to
  /// `count` and `(*added)[i]` is 1 iff row i was inserted (so callers can
  /// reconstruct each inserted row's TupleRef from the prefix counts).
  Result<size_t> AddRows(RelationId relation, const Value* rows, size_t count,
                         std::vector<uint8_t>* added = nullptr);

  /// Capacity hint: pre-grows the relation's arena and dedup table for
  /// `additional_rows` more rows, so a chase fire loop does not reallocate
  /// mid-batch. Never shrinks; no-op for unknown relations. Takes the
  /// copy-on-write gate like any mutation (a fork about to be written is
  /// cloned at its current size, then grown).
  void Reserve(RelationId relation, size_t additional_rows);

  /// Inserts a tuple by relation name.
  Result<bool> Add(std::string_view relation, Tuple tuple);

  /// Inserts a tuple whose values are the decimal constants of `values`.
  Result<bool> AddInts(std::string_view relation,
                       const std::vector<int64_t>& values);

  /// True if the instance contains the fact.
  bool Contains(RelationId relation, const Tuple& tuple) const {
    return ContainsRow(relation, RowView(tuple));
  }

  /// True if the instance contains the row.
  bool ContainsRow(RelationId relation, RowView row) const;

  /// The dense ref of `row` within `relation`, or nullopt if absent. Rows
  /// are duplicate-free, so the ref is unique; because insertion order is
  /// append-only, `*FindRow(...) < n` partitions an instance's rows into
  /// "first n" and "appended since" — the delta chase's old/new test.
  std::optional<TupleRef> FindRow(RelationId relation, RowView row) const;

  /// Number of rows of one relation.
  size_t NumRows(RelationId relation) const;

  /// One row of a relation, by dense ref (insertion order). The view is
  /// valid until the relation store is next mutated.
  RowView Row(RelationId relation, TupleRef ref) const;

  /// The relation's flat value arena (row-major, stride = arity). May be
  /// nullptr when the relation is empty. Hot-loop accessor for the
  /// homomorphism kernel: row i's position p is `data[i * arity + p]`.
  const Value* ArenaData(RelationId relation) const;

  /// Materialises all tuples of one relation, in insertion order. Compat /
  /// test helper — the storage itself is a flat arena; production paths use
  /// NumRows/Row/ArenaData.
  std::vector<Tuple> TuplesCopy(RelationId relation) const;

  /// The instance-owned (position, value) → rows index of one relation,
  /// built lazily and caught up incrementally over appended rows (the
  /// relation's version counter is its indexed-row count). Shared by every
  /// HomSearch over this instance — and, until a write diverges them, by
  /// every fork. If `catchup_rows` is non-null it receives the number of
  /// rows newly indexed by this call (0 on the fast path), which feeds
  /// ExecStats::index_catchup_rows.
  ///
  /// Catch-up is internally synchronised (double-checked under a
  /// per-relation mutex), so concurrent searches over a non-growing
  /// instance may race to build the index safely.
  const RelationIndex& IndexFor(RelationId relation,
                                size_t* catchup_rows = nullptr) const;

  /// Total number of tuples across all relations.
  size_t TotalSize() const;

  /// Bytes held by the relation arenas (tuple payload only; excludes dedup
  /// tables and indexes). Feeds ExecStats::tuples_arena_bytes.
  size_t ArenaBytes() const;

  /// True if no tuple contains a labelled null.
  bool IsNullFree() const;

  /// All values occurring in the instance, deduplicated, in deterministic
  /// ascending Value order (constants before nulls, each by id). Callers
  /// may iterate it without leaking hash-map order into their output.
  std::vector<Value> ActiveDomain() const;

  /// Streams every fact, relation-major in insertion order, to `f` as
  /// (RelationId, RowView) without materialising tuples. `f` may return
  /// void, or bool where false stops the iteration early.
  template <typename F>
  void ForEachFact(F&& f) const {
    EnsureSlots();
    for (RelationId r = 0; r < stores_.size(); ++r) {
      const size_t n = NumRows(r);
      const uint32_t arity = schema_->arity(r);
      const Value* data = ArenaData(r);
      for (size_t i = 0; i < n; ++i) {
        RowView row(data + i * arity, arity);
        if constexpr (std::is_void_v<decltype(f(r, row))>) {
          f(r, row);
        } else {
          if (!f(r, row)) return;
        }
      }
    }
  }

  /// All facts, relation-major in insertion order. Thin materialising
  /// wrapper over ForEachFact, kept for tests and small call sites.
  std::vector<Fact> AllFacts() const;

  /// True if every fact of this instance occurs in `other` (schemas must
  /// agree on the relations used).
  bool SubsetOf(const Instance& other) const;

  /// Set-semantics equality.
  bool EqualTo(const Instance& other) const {
    return SubsetOf(other) && other.SubsetOf(*this);
  }

  /// Adds every fact of `other` into this instance; relation names are
  /// resolved against this instance's schema.
  Status UnionWith(const Instance& other);

  /// Deterministic rendering: relations and tuples sorted lexicographically,
  /// e.g. "{ R(1,2), R(3,4), S(2,5) }".
  std::string ToString() const;

 private:
  /// One relation's storage: flat arena + dedup table + owned index. Shared
  /// between forks via shared_ptr; cloned on first write to a shared store.
  struct Store {
    uint32_t arity = 0;
    size_t num_rows = 0;
    /// Row-major values, stride `arity` (empty for 0-ary relations, whose
    /// rows are counted by num_rows alone).
    std::vector<Value> arena;
    /// Row-content hash → row refs with that hash (duplicate-free rows, so
    /// multi-entries only on genuine hash collisions).
    std::unordered_multimap<size_t, TupleRef> dedup;
    /// Lazily built value index over rows [0, indexed_rows).
    RelationIndex index;
    std::atomic<size_t> indexed_rows{0};
    /// Guards index catch-up (double-checked via indexed_rows).
    mutable std::mutex index_mu;

    Store() = default;
    Store(const Store& other);
    Store& operator=(const Store&) = delete;
  };

  std::shared_ptr<const Schema> schema_;
  // Indexed by RelationId; grown when the schema has more relations than
  // were present at construction (schemas are append-only). The pointees
  // are shared with forks; Mutable() clones before any write.
  mutable std::vector<std::shared_ptr<Store>> stores_;

  void EnsureSlots() const;
  /// Copy-on-write gate: clones the relation's store iff it is shared.
  Store& Mutable(RelationId relation);
};

}  // namespace mapinv

#endif  // MAPINV_DATA_INSTANCE_H_
