/// \file instance.h
/// \brief Database instances: segmented columnar tuple storage with
/// instance-owned value indexes, copy-on-write forks, mmap-able snapshots
/// and spill-to-disk past a memory budget.
///
/// An Instance is bound to a Schema (shared ownership) and stores, for each
/// relation, a duplicate-free sequence of rows. Storage is *columnar in
/// spirit, paged in layout*: every relation keeps a chain of fixed-capacity
/// segments of kSegmentRows rows each (row-major, stride = arity), so a row
/// is the slice `segment[(ref & mask) * arity ..)` of segment `ref >> shift`
/// and a full-relation scan sweeps whole segment stripes with no per-tuple
/// heap allocation. Rows are addressed by dense `TupleRef` (uint32 row index
/// in insertion order); deduplication hashes row contents into a multimap of
/// row refs. Segment capacity matches the vectorized executor's default
/// 1024-row block, so block scans tile segments exactly (see
/// eval/vector_plan.h and docs/STORAGE.md).
///
/// Properties the rest of the pipeline relies on:
///
///   * **Append-only, insertion-ordered.** Rows are never removed or
///     reordered, which keeps chase output deterministic and lets derived
///     structures catch up incrementally. Appends never move sealed
///     segments, so row views into sealed segments survive appends.
///   * **Instance-owned persistent indexes.** The (position, value) → rows
///     buckets that every homomorphism search needs live here, behind a
///     per-relation version counter (`indexed rows` vs `total rows`), built
///     lazily and extended incrementally. All HomSearch objects over one
///     instance share them; constructing a search is free.
///   * **Copy-on-write forks.** Copying an Instance is O(#relations): the
///     copy shares every relation store with the original, and a store is
///     cloned only on the first subsequent write to it from either side. A
///     cloned store still *shares every sealed segment* with its source —
///     only the partial tail is unshared, and only when actually written —
///     so fork-heavy worlds pay per-write tail copies, never whole-arena
///     copies. `Fork()`/`Snapshot()` name this explicitly.
///   * **Reopenable artifacts.** `Save`/`Load` persist an instance to an
///     mmap-able snapshot file (segment pages + interner side table; dedup
///     and indexes are rebuilt lazily on demand), and `SetMemoryBudget`
///     arms spill-to-disk: past the budget, cold sealed segments are
///     evicted to an unlinked spill file and faulted back on access.
///
/// Thread-safety contract (unchanged): concurrent *reads* — including lazy
/// index/dedup catch-up and segment fault-in, which are internally
/// synchronised — are safe on instances that do not grow; any mutation of an
/// instance, or of an instance sharing its stores, must be externally
/// ordered before/after concurrent access. Segment eviction happens only
/// inside mutations, and only to segments not shared with any fork, so
/// concurrent readers of a sibling instance are never invalidated.

#ifndef MAPINV_DATA_INSTANCE_H_
#define MAPINV_DATA_INSTANCE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <type_traits>
#include <unordered_map>
#include <vector>

#include "base/status.h"
#include "data/schema.h"
#include "data/segment.h"
#include "data/value.h"

namespace mapinv {

struct ExecStats;

/// \brief A database tuple as a standalone value: a fixed-length sequence of
/// values. Inside an Instance tuples live in relation segments, not in
/// individual vectors; Tuple remains the exchange type at API boundaries.
using Tuple = std::vector<Value>;

/// \brief Dense row id within one relation of one instance, in insertion
/// order.
using TupleRef = uint32_t;

/// \brief Borrowed view of one row of a relation (arity values, contiguous —
/// a row never straddles a segment boundary). Valid until the owning
/// instance's relation store is next mutated.
using RowView = std::span<const Value>;

struct TupleHash {
  size_t operator()(const Tuple& t) const {
    size_t seed = t.size();
    for (const Value& v : t) HashCombine(seed, v.Hash());
    return seed;
  }
};

/// Hash of a row slice; agrees with TupleHash on equal contents.
inline size_t HashRow(RowView row) {
  size_t seed = row.size();
  for (const Value& v : row) HashCombine(seed, v.Hash());
  return seed;
}

/// \brief A fact: a relation id together with a tuple.
struct Fact {
  RelationId relation;
  Tuple tuple;

  friend bool operator==(const Fact& a, const Fact& b) {
    return a.relation == b.relation && a.tuple == b.tuple;
  }
};

/// \brief value-at-position → ascending row refs, for one position of one
/// relation. Owned by the instance; see Instance::IndexFor.
struct PositionIndex {
  std::unordered_map<Value, std::vector<TupleRef>, ValueHash> buckets;
};

/// \brief The per-relation value index: one PositionIndex per column.
struct RelationIndex {
  std::vector<PositionIndex> positions;
};

/// \brief An instance of a relational schema.
class Instance {
 public:
  /// \brief Borrowed, segment-aware view of one relation's rows — the
  /// hot-loop row accessor replacing the retired flat-arena pointer. One
  /// shift, one mask and one segment-table load per row; a spilled segment
  /// is faulted back in transparently on first touch (internally
  /// synchronised, so concurrent readers of a non-growing instance may race
  /// on the fault). Valid until the relation store is next mutated.
  class ArenaView {
   public:
    ArenaView() = default;

    /// Pointer to row `ref` (arity contiguous values).
    const Value* row(TupleRef ref) const {
      Segment* seg = segs_[ref >> kSegmentRowShift];
      const Value* base = seg->base.load(std::memory_order_acquire);
      if (base == nullptr) [[unlikely]] base = seg->FaultIn(arity_);
      return base + static_cast<size_t>(ref & kSegmentRowMask) * arity_;
    }

    /// Base pointer of segment `seg_index` (rows
    /// [seg_index * kSegmentRows ..), row-major, stride = arity), faulting
    /// it resident if spilled. For scan loops that tile whole stripes.
    const Value* segment_base(size_t seg_index) const {
      Segment* seg = segs_[seg_index];
      const Value* base = seg->base.load(std::memory_order_acquire);
      if (base == nullptr) [[unlikely]] base = seg->FaultIn(arity_);
      return base;
    }

    uint32_t arity() const { return arity_; }

   private:
    friend class Instance;
    ArenaView(Segment* const* segs, uint32_t arity)
        : segs_(segs), arity_(arity) {}

    Segment* const* segs_ = nullptr;
    uint32_t arity_ = 0;
  };

  /// Creates an empty instance of `schema`.
  explicit Instance(std::shared_ptr<const Schema> schema);

  /// Convenience: copies the schema into shared ownership.
  explicit Instance(const Schema& schema)
      : Instance(std::make_shared<const Schema>(schema)) {}

  /// Copying an instance is an O(#relations) copy-on-write fork: both sides
  /// share every relation store until one of them writes to it, and even
  /// then the clone shares every sealed segment. Reads on the copy are
  /// exactly as fast as on the original (same segments, same already-built
  /// indexes).
  Instance(const Instance&) = default;
  Instance& operator=(const Instance&) = default;
  Instance(Instance&&) = default;
  Instance& operator=(Instance&&) = default;

  /// Explicit O(1)-per-relation copy-on-write fork (same operation as the
  /// copy constructor, named for the worlds-based algorithms). The fork and
  /// the original are fully isolated observationally: a write to either
  /// clones the written relation's store (and unshares its tail segment)
  /// first.
  Instance Fork() const { return *this; }

  /// A cheap point-in-time copy intended to be kept immutable (identical
  /// mechanism to Fork; the name documents intent at call sites).
  Instance Snapshot() const { return *this; }

  const Schema& schema() const { return *schema_; }
  std::shared_ptr<const Schema> schema_ptr() const { return schema_; }

  /// Inserts a tuple; returns true if it was new. Fails on arity mismatch or
  /// unknown relation.
  Result<bool> AddTuple(RelationId relation, Tuple tuple) {
    return AddRow(relation, RowView(tuple));
  }

  /// Inserts a row (copying the values into the relation's tail segment);
  /// returns true if it was new. Fails on arity mismatch or unknown
  /// relation. The allocation-free hot path for the chase engines: callers
  /// reuse one scratch buffer across firings.
  Result<bool> AddRow(RelationId relation, RowView row);

  /// Bulk insert of `count` rows laid out row-major in `rows` (stride =
  /// arity). Semantically identical to calling AddRow on each row in order —
  /// same dedup (including against earlier rows of the same batch), same
  /// resulting refs, batches straddling segment boundaries included — but
  /// pays the failpoint, schema checks, budget check and copy-on-write gate
  /// once per batch instead of once per row. Returns the number of rows that
  /// were new; if `added` is non-null it is resized to `count` and
  /// `(*added)[i]` is 1 iff row i was inserted (so callers can reconstruct
  /// each inserted row's TupleRef from the prefix counts).
  Result<size_t> AddRows(RelationId relation, const Value* rows, size_t count,
                         std::vector<uint8_t>* added = nullptr);

  /// Capacity hint: pre-grows the relation's tail segment and dedup table
  /// for `additional_rows` more rows, so a chase fire loop does not
  /// reallocate mid-batch (growth beyond the tail's capacity allocates
  /// fresh segments as the rows arrive). Never shrinks; no-op for unknown
  /// relations. Takes the copy-on-write gate like any mutation.
  void Reserve(RelationId relation, size_t additional_rows);

  /// Inserts a tuple by relation name.
  Result<bool> Add(std::string_view relation, Tuple tuple);

  /// Inserts a tuple whose values are the decimal constants of `values`.
  Result<bool> AddInts(std::string_view relation,
                       const std::vector<int64_t>& values);

  /// True if the instance contains the fact.
  bool Contains(RelationId relation, const Tuple& tuple) const {
    return ContainsRow(relation, RowView(tuple));
  }

  /// True if the instance contains the row.
  bool ContainsRow(RelationId relation, RowView row) const;

  /// The dense ref of `row` within `relation`, or nullopt if absent. Rows
  /// are duplicate-free, so the ref is unique; because insertion order is
  /// append-only, `*FindRow(...) < n` partitions an instance's rows into
  /// "first n" and "appended since" — the delta chase's old/new test.
  std::optional<TupleRef> FindRow(RelationId relation, RowView row) const;

  /// Number of rows of one relation.
  size_t NumRows(RelationId relation) const;

  /// One row of a relation, by dense ref (insertion order). The view is
  /// valid until the relation store is next mutated.
  RowView Row(RelationId relation, TupleRef ref) const;

  /// Segment-aware row accessor for the homomorphism/scan kernels: row i's
  /// position p is `view.row(i)[p]`. Valid until the relation store is next
  /// mutated. (The flat `ArenaData` pointer is retired: a relation's rows
  /// are no longer one contiguous allocation.)
  ArenaView Arena(RelationId relation) const;

  /// Materialises all tuples of one relation, in insertion order. Compat /
  /// test helper — production paths use NumRows/Row/Arena.
  std::vector<Tuple> TuplesCopy(RelationId relation) const;

  /// The instance-owned (position, value) → rows index of one relation,
  /// built lazily and caught up incrementally over appended rows (the
  /// relation's version counter is its indexed-row count). Shared by every
  /// HomSearch over this instance — and, until a write diverges them, by
  /// every fork. If `catchup_rows` is non-null it receives the number of
  /// rows newly indexed by this call (0 on the fast path), which feeds
  /// ExecStats::index_catchup_rows.
  ///
  /// Catch-up is internally synchronised (double-checked under a
  /// per-relation mutex), so concurrent searches over a non-growing
  /// instance may race to build the index safely.
  const RelationIndex& IndexFor(RelationId relation,
                                size_t* catchup_rows = nullptr) const;

  /// Total number of tuples across all relations.
  size_t TotalSize() const;

  /// Bytes of tuple payload held by the relation segments, resident or not
  /// (excludes dedup tables and indexes). Feeds
  /// ExecStats::tuples_arena_bytes.
  size_t ArenaBytes() const;

  /// Heap-resident payload bytes only: spilled segments and mmap-backed
  /// (snapshot) segments are excluded. The quantity the memory budget
  /// bounds; feeds ExecStats::arena_resident_bytes.
  size_t ResidentBytes() const;

  /// Arms spill-to-disk: once ResidentBytes() exceeds `budget_bytes`,
  /// mutations evict cold sealed segments (ascending relation, then
  /// ascending segment — oldest first) to an unlinked spill file under
  /// `spill_dir` (empty: $TMPDIR or /tmp) until back under budget.
  /// Segments shared with forks, mmap-backed segments and partial tails are
  /// never evicted; spilled segments fault back in transparently on read.
  /// Forks inherit the policy (shared state and spill file). A zero budget
  /// disarms. `stats` (may be null) receives segments_spilled /
  /// segments_faulted. See docs/STORAGE.md for the full policy.
  void SetMemoryBudget(uint64_t budget_bytes, std::string spill_dir,
                       ExecStats* stats);

  /// The armed memory budget in bytes (0 when disarmed).
  uint64_t MemoryBudgetBytes() const {
    return spill_ != nullptr ? spill_->budget_bytes : 0;
  }

  /// Persists the instance to an mmap-able snapshot file: a relation
  /// directory, raw segment pages and a sorted constant-spelling side
  /// table. The bytes are a pure function of the logical content (schema,
  /// rows, null labels and constant *spellings* — never process-local
  /// interner ids), so save → load → save round-trips byte-identically.
  /// Dedup tables and indexes are not persisted; Load rebuilds them lazily.
  Status Save(const std::string& path) const;

  /// The snapshot image Save would write, as in-memory bytes. The job layer
  /// (src/job) persists world snapshots through its own fsync'd commit
  /// protocol, so it needs the image without the file write.
  std::string SaveToBytes() const;

  /// Reopens a snapshot written by Save. The file is mapped MAP_PRIVATE:
  /// sealed segments point straight into the mapping (constant ids are
  /// rewritten in place only when the process interner disagrees with the
  /// file's spelling table), the partial tail is copied to heap so it can
  /// accept appends. The schema is rebuilt from the directory. Rejects
  /// corrupted or truncated files with kMalformed without crashing.
  static Result<Instance> Load(const std::string& path);

  /// Load from an in-memory snapshot image (copied). Exercises exactly the
  /// file loader's validation path; used by tests and the snapshot fuzzer.
  static Result<Instance> LoadFromBytes(const void* bytes, size_t size);

  /// True if no tuple contains a labelled null.
  bool IsNullFree() const;

  /// All values occurring in the instance, deduplicated, in deterministic
  /// ascending Value order (constants before nulls, each by id). Callers
  /// may iterate it without leaking hash-map order into their output.
  std::vector<Value> ActiveDomain() const;

  /// Streams every fact, relation-major in insertion order, to `f` as
  /// (RelationId, RowView) without materialising tuples. `f` may return
  /// void, or bool where false stops the iteration early.
  template <typename F>
  void ForEachFact(F&& f) const {
    EnsureSlots();
    for (RelationId r = 0; r < stores_.size(); ++r) {
      const size_t n = NumRows(r);
      if (n == 0) continue;
      const uint32_t arity = schema_->arity(r);
      const ArenaView view = Arena(r);
      for (size_t i = 0; i < n; ++i) {
        RowView row(arity == 0 ? nullptr
                               : view.row(static_cast<TupleRef>(i)),
                    arity);
        if constexpr (std::is_void_v<decltype(f(r, row))>) {
          f(r, row);
        } else {
          if (!f(r, row)) return;
        }
      }
    }
  }

  /// All facts, relation-major in insertion order. Thin materialising
  /// wrapper over ForEachFact, kept for tests and small call sites.
  std::vector<Fact> AllFacts() const;

  /// True if every fact of this instance occurs in `other` (schemas must
  /// agree on the relations used).
  bool SubsetOf(const Instance& other) const;

  /// Set-semantics equality.
  bool EqualTo(const Instance& other) const {
    return SubsetOf(other) && other.SubsetOf(*this);
  }

  /// Adds every fact of `other` into this instance; relation names are
  /// resolved against this instance's schema.
  Status UnionWith(const Instance& other);

  /// Deterministic rendering: relations and tuples sorted lexicographically,
  /// e.g. "{ R(1,2), R(3,4), S(2,5) }".
  std::string ToString() const;

 private:
  /// One relation's storage: segment chain + dedup table + owned index.
  /// Shared between forks via shared_ptr; cloned on first write to a shared
  /// store — and the clone still shares the (content-immutable) sealed
  /// segments, unsharing only the tail, and only when it is written.
  struct Store {
    uint32_t arity = 0;
    size_t num_rows = 0;
    /// Row-major segments of kSegmentRows rows each (empty for 0-ary
    /// relations, whose rows are counted by num_rows alone). Only the last
    /// segment may be partial.
    std::vector<std::shared_ptr<Segment>> segs;
    /// Flat mirror of `segs` for the one-load hot-path row accessor.
    std::vector<Segment*> seg_ptrs;
    /// Row-content hash → row refs with that hash (duplicate-free rows, so
    /// multi-entries only on genuine hash collisions). Covers rows
    /// [0, dedup_rows); lazily rebuilt after Load.
    std::unordered_multimap<size_t, TupleRef> dedup;
    std::atomic<size_t> dedup_rows{0};
    /// Lazily built value index over rows [0, indexed_rows).
    RelationIndex index;
    std::atomic<size_t> indexed_rows{0};
    /// Guards index and dedup catch-up (double-checked via the counters).
    mutable std::mutex index_mu;

    Store() = default;
    Store(const Store& other);
    Store& operator=(const Store&) = delete;

    /// Row accessor over the segment chain (faults spilled segments in).
    const Value* RowPtr(TupleRef ref) const {
      Segment* seg = seg_ptrs[ref >> kSegmentRowShift];
      const Value* base = seg->base.load(std::memory_order_acquire);
      if (base == nullptr) [[unlikely]] base = seg->FaultIn(arity);
      return base + static_cast<size_t>(ref & kSegmentRowMask) * arity;
    }
  };

  std::shared_ptr<const Schema> schema_;
  // Indexed by RelationId; grown when the schema has more relations than
  // were present at construction (schemas are append-only). The pointees
  // are shared with forks; Mutable() clones before any write.
  mutable std::vector<std::shared_ptr<Store>> stores_;
  /// Spill policy shared with forks; null when no budget is armed.
  std::shared_ptr<SpillState> spill_;

  void EnsureSlots() const;
  /// Copy-on-write gate: clones the relation's store iff it is shared.
  Store& Mutable(RelationId relation);
  /// Ensures the store's dedup table covers every row (lazy rebuild after
  /// Load; internally synchronised like index catch-up).
  static void EnsureDedup(Store& store);
  /// Ensures the tail segment exists, is heap-backed, is not shared with a
  /// fork, and has capacity for one more row; returns it.
  Segment& WritableTail(Store& store);
  /// Budget enforcement, called before mutations: evicts cold sealed
  /// segments until resident bytes fit the armed budget. Fails only via the
  /// instance/spill failpoint or a spill-file I/O error, before any row of
  /// the pending batch is applied.
  Status MaybeSpill();

  friend struct SnapshotAccess;  // Save/Load implementation (snapshot.cc)
};

}  // namespace mapinv

#endif  // MAPINV_DATA_INSTANCE_H_
