#include "mapgen/generators.h"

#include <random>
#include <string>

namespace mapinv {

namespace {

std::vector<std::string> NumberedVars(const std::string& prefix, int n) {
  std::vector<std::string> out;
  out.reserve(n);
  for (int i = 0; i < n; ++i) out.push_back(prefix + std::to_string(i));
  return out;
}

}  // namespace

TgdMapping CopyMapping(int relations, int arity) {
  Schema source, target;
  std::vector<Tgd> tgds;
  std::vector<std::string> vars = NumberedVars("x", arity);
  for (int i = 0; i < relations; ++i) {
    std::string r = "R" + std::to_string(i);
    std::string t = "T" + std::to_string(i);
    source.AddRelation(r, arity).ValueOrDie();
    target.AddRelation(t, arity).ValueOrDie();
    Tgd tgd;
    tgd.premise = {Atom::Vars(r, vars)};
    tgd.conclusion = {Atom::Vars(t, vars)};
    tgds.push_back(std::move(tgd));
  }
  return TgdMapping(std::move(source), std::move(target), std::move(tgds));
}

TgdMapping ProjectionMapping(int relations) {
  Schema source, target;
  std::vector<Tgd> tgds;
  for (int i = 0; i < relations; ++i) {
    std::string r = "R" + std::to_string(i);
    std::string t = "T" + std::to_string(i);
    source.AddRelation(r, 2).ValueOrDie();
    target.AddRelation(t, 1).ValueOrDie();
    Tgd tgd;
    tgd.premise = {Atom::Vars(r, {"x", "y"})};
    tgd.conclusion = {Atom::Vars(t, {"x"})};
    tgds.push_back(std::move(tgd));
  }
  return TgdMapping(std::move(source), std::move(target), std::move(tgds));
}

TgdMapping ChainJoinMapping(int chain_length) {
  Schema source, target;
  Tgd tgd;
  for (int i = 0; i < chain_length; ++i) {
    std::string r = "R" + std::to_string(i);
    source.AddRelation(r, 2).ValueOrDie();
    tgd.premise.push_back(
        Atom::Vars(r, {"x" + std::to_string(i), "x" + std::to_string(i + 1)}));
  }
  target.AddRelation("T", 2).ValueOrDie();
  tgd.conclusion = {Atom::Vars("T", {"x0", "x" + std::to_string(chain_length)})};
  return TgdMapping(std::move(source), std::move(target), {std::move(tgd)});
}

TgdMapping ExponentialFamilyMapping(int n, int k) {
  Schema source, target;
  std::vector<Tgd> tgds;
  source.AddRelation("B", 1).ValueOrDie();
  for (int j = 0; j < k; ++j) {
    target.AddRelation("T" + std::to_string(j), 1).ValueOrDie();
  }
  // A_{j,i}(x) -> T_j(x): n producers per target relation.
  for (int j = 0; j < k; ++j) {
    for (int i = 0; i < n; ++i) {
      std::string a = "A" + std::to_string(j) + "_" + std::to_string(i);
      source.AddRelation(a, 1).ValueOrDie();
      Tgd tgd;
      tgd.premise = {Atom::Vars(a, {"x"})};
      tgd.conclusion = {Atom::Vars("T" + std::to_string(j), {"x"})};
      tgds.push_back(std::move(tgd));
    }
  }
  // B(x) -> T_0(x) ∧ ... ∧ T_{k-1}(x): its conclusion rewriting multiplies
  // the per-relation choices: (n+1)^k disjuncts before minimisation.
  Tgd big;
  big.premise = {Atom::Vars("B", {"x"})};
  for (int j = 0; j < k; ++j) {
    big.conclusion.push_back(Atom::Vars("T" + std::to_string(j), {"x"}));
  }
  tgds.push_back(std::move(big));
  return TgdMapping(std::move(source), std::move(target), std::move(tgds));
}

TgdMapping GenerateRandomMapping(const RandomMappingConfig& config) {
  std::mt19937_64 rng(config.seed);
  Schema source, target;
  for (int i = 0; i < config.source_relations; ++i) {
    source.AddRelation("S" + std::to_string(i), config.arity).ValueOrDie();
  }
  for (int i = 0; i < config.target_relations; ++i) {
    target.AddRelation("T" + std::to_string(i), config.arity).ValueOrDie();
  }
  std::uniform_int_distribution<int> src_rel(0, config.source_relations - 1);
  std::uniform_int_distribution<int> tgt_rel(0, config.target_relations - 1);
  std::uniform_int_distribution<int> pvar(0, config.premise_vars - 1);
  std::uniform_int_distribution<int> cvar(
      0, config.premise_vars + config.existential_vars - 1);

  std::vector<Tgd> tgds;
  for (int t = 0; t < config.num_tgds; ++t) {
    Tgd tgd;
    for (int a = 0; a < config.premise_atoms; ++a) {
      std::vector<std::string> vars;
      for (int p = 0; p < config.arity; ++p) {
        vars.push_back("v" + std::to_string(pvar(rng)));
      }
      tgd.premise.push_back(
          Atom::Vars("S" + std::to_string(src_rel(rng)), vars));
    }
    for (int a = 0; a < config.conclusion_atoms; ++a) {
      std::vector<std::string> vars;
      for (int p = 0; p < config.arity; ++p) {
        int v = cvar(rng);
        if (v < config.premise_vars) {
          vars.push_back("v" + std::to_string(v));
        } else {
          vars.push_back("e" + std::to_string(v - config.premise_vars));
        }
      }
      tgd.conclusion.push_back(
          Atom::Vars("T" + std::to_string(tgt_rel(rng)), vars));
    }
    tgds.push_back(std::move(tgd));
  }
  return TgdMapping(std::move(source), std::move(target), std::move(tgds));
}

SOTgdMapping GenerateRandomSOMapping(const RandomSOMappingConfig& config) {
  std::mt19937_64 rng(config.seed);
  Schema source, target;
  for (int i = 0; i < config.source_relations; ++i) {
    source.AddRelation("S" + std::to_string(i), config.arity).ValueOrDie();
  }
  for (int i = 0; i < config.target_relations; ++i) {
    target.AddRelation("T" + std::to_string(i), config.arity).ValueOrDie();
  }
  std::uniform_int_distribution<int> src_rel(0, config.source_relations - 1);
  std::uniform_int_distribution<int> tgt_rel(0, config.target_relations - 1);
  std::uniform_int_distribution<int> pvar(0, config.premise_vars - 1);
  std::uniform_int_distribution<int> fn(0, config.functions - 1);
  std::uniform_int_distribution<int> pct(0, 99);

  SOTgd so;
  // One unique seed-scoped name per function pool entry so that different
  // generated mappings never share symbols (composition-safe).
  std::vector<std::string> fn_names;
  for (int i = 0; i < config.functions; ++i) {
    fn_names.push_back("h" + std::to_string(config.seed % 997) + "_" +
                       std::to_string(i));
  }
  for (int r = 0; r < config.num_rules; ++r) {
    SORule rule;
    for (int a = 0; a < config.premise_atoms; ++a) {
      std::vector<std::string> vars;
      for (int p = 0; p < config.arity; ++p) {
        vars.push_back("v" + std::to_string(pvar(rng)));
      }
      rule.premise.push_back(
          Atom::Vars("S" + std::to_string(src_rel(rng)), vars));
    }
    // Variables actually present in the premise (conclusion terms must use
    // these).
    std::vector<VarId> available = CollectDistinctVars(rule.premise);
    std::uniform_int_distribution<size_t> avar(0, available.size() - 1);
    Atom conclusion;
    conclusion.relation =
        InternRelation("T" + std::to_string(tgt_rel(rng)));
    for (int p = 0; p < config.arity; ++p) {
      if (pct(rng) < config.fn_position_pct) {
        std::vector<Term> args;
        for (int j = 0; j < config.fn_arity; ++j) {
          args.push_back(Term::Var(available[avar(rng)]));
        }
        conclusion.terms.push_back(Term::Fn(fn_names[fn(rng)], std::move(args)));
      } else {
        conclusion.terms.push_back(Term::Var(available[avar(rng)]));
      }
    }
    rule.conclusion = {std::move(conclusion)};
    so.rules.push_back(std::move(rule));
  }
  SOTgdMapping out;
  out.source = std::make_shared<const Schema>(std::move(source));
  out.target = std::make_shared<const Schema>(std::move(target));
  out.so = std::move(so);
  return out;
}

Instance GenerateInstance(const Schema& schema, int tuples_per_relation,
                          int domain_size, uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::uniform_int_distribution<int> value(0, domain_size - 1);
  Instance out(schema);
  for (const RelationSymbol& rel : schema.relations()) {
    for (int i = 0; i < tuples_per_relation; ++i) {
      std::vector<int64_t> tuple;
      tuple.reserve(rel.arity);
      for (uint32_t p = 0; p < rel.arity; ++p) tuple.push_back(value(rng));
      out.AddInts(rel.name, tuple).ValueOrDie();
    }
  }
  return out;
}

}  // namespace mapinv
