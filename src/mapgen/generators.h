/// \file generators.h
/// \brief Deterministic synthetic workload generators.
///
/// The paper evaluates nothing empirically, so the bench harness defines its
/// own workloads; everything here is seeded and reproducible. Families:
///
///  * CopyMapping           — Rᵢ(x̄) → Tᵢ(x̄): Fagin-invertible, the easy case.
///  * ProjectionMapping     — Rᵢ(x,y) → Tᵢ(x): loses a column per relation.
///  * ChainJoinMapping      — R₁(x₀,x₁) ∧ ... ∧ R_m(x_{m-1},x_m) → T(x₀,x_m).
///  * ExponentialFamily     — the E1 blow-up family: B(x) → T₁(x) ∧ ... ∧
///    T_k(x) plus A_{j,i}(x) → T_j(x) for i ∈ [n]; the rewriting of the B
///    conclusion has (n+1)^k disjuncts, so every Section-4-style maximum
///    recovery is exponential while PolySOInverse stays polynomial (§1, §5).
///  * GenerateRandomMapping — shape-controlled random tgds.
///  * GenerateInstance      — random source instances over a bounded domain.

#ifndef MAPINV_MAPGEN_GENERATORS_H_
#define MAPINV_MAPGEN_GENERATORS_H_

#include <cstdint>

#include "base/status.h"
#include "data/instance.h"
#include "logic/mapping.h"

namespace mapinv {

/// \brief n copy tgds Rᵢ(x₁..x_a) → Tᵢ(x₁..x_a).
TgdMapping CopyMapping(int relations, int arity);

/// \brief n projection tgds Rᵢ(x,y) → Tᵢ(x).
TgdMapping ProjectionMapping(int relations);

/// \brief One tgd joining a chain of m binary relations into T(first,last).
TgdMapping ChainJoinMapping(int chain_length);

/// \brief The exponential-recovery family (bench E1): parameters n ≥ 1
/// producers per target relation and k ≥ 1 conjoined target relations.
TgdMapping ExponentialFamilyMapping(int n, int k);

/// \brief Shape parameters for random tgd sets.
struct RandomMappingConfig {
  uint64_t seed = 42;
  int num_tgds = 4;
  int source_relations = 4;
  int target_relations = 4;
  int arity = 2;              ///< arity of every relation
  int premise_atoms = 2;      ///< atoms per tgd premise
  int conclusion_atoms = 1;   ///< atoms per tgd conclusion
  int premise_vars = 3;       ///< distinct variables available to the premise
  int existential_vars = 1;   ///< extra conclusion-only variables
};

/// \brief Generates a random tgd mapping with the given shape. Every
/// conclusion variable is drawn from premise variables plus the existential
/// pool, so the output always validates.
TgdMapping GenerateRandomMapping(const RandomMappingConfig& config);

/// \brief Shape parameters for random plain SO-tgd sets.
struct RandomSOMappingConfig {
  uint64_t seed = 42;
  int num_rules = 3;
  int source_relations = 3;
  int target_relations = 3;
  int arity = 2;            ///< arity of every relation
  int premise_atoms = 1;    ///< atoms per rule premise
  int premise_vars = 2;     ///< distinct variables available to the premise
  int functions = 2;        ///< size of the shared function-symbol pool
  int fn_arity = 1;         ///< arity of every function symbol
  /// Probability (in percent) that a conclusion position is a function term
  /// rather than a plain variable.
  int fn_position_pct = 50;
};

/// \brief Generates a random plain SO-tgd mapping. Function symbols are
/// drawn from a pool shared across rules — the regime (shared invented
/// values across rules) that tgd-derived Skolemisation never produces.
SOTgdMapping GenerateRandomSOMapping(const RandomSOMappingConfig& config);

/// \brief Fills every relation of `schema` with `tuples_per_relation` random
/// tuples over the integer domain [0, domain_size).
Instance GenerateInstance(const Schema& schema, int tuples_per_relation,
                          int domain_size, uint64_t seed);

}  // namespace mapinv

#endif  // MAPINV_MAPGEN_GENERATORS_H_
