#include "inversion/query_product.h"

#include <map>
#include <unordered_set>
#include <utility>

namespace mapinv {

std::vector<Atom> ProductOfDisjuncts(const std::vector<VarId>& shared_free,
                                     const std::vector<Atom>& q1,
                                     const std::vector<Atom>& q2) {
  std::unordered_set<VarId> free_set(shared_free.begin(), shared_free.end());
  std::map<std::pair<VarId, VarId>, VarId> pair_var;
  FreshVarGen gen("p");
  auto f = [&](VarId y, VarId z) -> VarId {
    if (y == z && free_set.contains(y)) return y;
    auto [it, inserted] = pair_var.emplace(std::make_pair(y, z), 0);
    if (inserted) it->second = gen.Next();
    return it->second;
  };

  std::vector<Atom> out;
  for (const Atom& a : q1) {
    for (const Atom& b : q2) {
      if (a.relation != b.relation || a.terms.size() != b.terms.size()) {
        continue;
      }
      Atom prod;
      prod.relation = a.relation;
      prod.terms.reserve(a.terms.size());
      for (size_t p = 0; p < a.terms.size(); ++p) {
        prod.terms.push_back(Term::Var(f(a.terms[p].var(), b.terms[p].var())));
      }
      out.push_back(std::move(prod));
    }
  }
  return out;
}

std::vector<Atom> ProductOfMany(const std::vector<VarId>& shared_free,
                                const std::vector<std::vector<Atom>>& queries) {
  if (queries.empty()) return {};
  std::vector<Atom> acc = queries[0];
  for (size_t i = 1; i < queries.size(); ++i) {
    if (acc.empty()) return {};
    acc = ProductOfDisjuncts(shared_free, acc, queries[i]);
  }
  return acc;
}

}  // namespace mapinv
