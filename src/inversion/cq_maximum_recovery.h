/// \file cq_maximum_recovery.h
/// \brief Algorithm CQ-MAXIMUMRECOVERY(Σ) — the complete Section 4 pipeline.
///
/// MaximumRecovery → EliminateEqualities → EliminateDisjunctions. By Lemmas
/// 4.1–4.3 (Theorem 4.4) the output specifies a CQ-maximum recovery of the
/// input mapping, expressed as tgds extended with inequalities and the
/// constant predicate C(·) in their premises — a language with the same good
/// data-exchange properties as tgds (single-world chase; see
/// chase/chase_reverse.h).

#ifndef MAPINV_INVERSION_CQ_MAXIMUM_RECOVERY_H_
#define MAPINV_INVERSION_CQ_MAXIMUM_RECOVERY_H_

#include "base/status.h"
#include "engine/execution_options.h"
#include "inversion/eliminate_equalities.h"
#include "logic/mapping.h"
#include "rewrite/rewrite.h"

namespace mapinv {

/// \brief Computes a CQ-maximum recovery of `mapping` in the Theorem 4.5
/// language: every output dependency has a single, equality-free conjunctive
/// conclusion, and C(·) / ≠ appear in premises only.
Result<ReverseMapping> CqMaximumRecovery(
    const TgdMapping& mapping, const ExecutionOptions& options = {});

}  // namespace mapinv

#endif  // MAPINV_INVERSION_CQ_MAXIMUM_RECOVERY_H_
