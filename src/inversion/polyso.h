/// \file polyso.h
/// \brief Algorithm POLYSOINVERSE(λ) — Section 5.2's polynomial-time
/// computation of maximum recoveries for plain SO-tgds.
///
/// Given a plain SO-tgd λ, the algorithm emits, for every normalised rule
/// σ : φ(x̄) → R(t̄), one inverse rule
///     prem_σ(ū) → ∨ { ∃ȳ (ψ(ȳ) ∧ Q_e ∧ Q_s) :  ψ(ȳ) → R(s̄) ∈ Σ,
///                                               s̄ subsumes t̄ }
/// where ū = CREATETUPLE(t̄) mirrors the equality pattern of t̄, prem_σ adds
/// C(u_i) for positions whose original term is a variable, Q_e =
/// ENSUREINV(λ, ū, s̄) constrains the unary inverse functions f₁,...,f_k of
/// each k-ary f, and Q_s = SAFE(λ, ū, s̄) uses the extra function f★ to rule
/// out a target value being produced by two distinct functions.
///
/// By Theorem 5.3 the output specifies a maximum recovery of λ; by
/// Corollary 5.4 it is also a Fagin-inverse / quasi-inverse whenever λ has
/// one, and it is always a CQ-maximum recovery. Everything runs in
/// polynomial time and produces polynomial-size output — benchmarked
/// against the exponential Section 4 pipeline in E1/E2.

#ifndef MAPINV_INVERSION_POLYSO_H_
#define MAPINV_INVERSION_POLYSO_H_

#include <vector>

#include "base/status.h"
#include "engine/execution_options.h"
#include "logic/mapping.h"

namespace mapinv {

/// \brief CREATETUPLE(t̄): a tuple of variables mirroring the equality
/// pattern of the plain terms t̄ (equal terms ⇒ same variable). Fresh
/// variables are drawn from `gen`.
std::vector<VarId> CreateTuple(const std::vector<Term>& terms,
                               FreshVarGen* gen);

/// \brief The unary inverse-function family of λ: for every k-ary f in λ,
/// functions f#1,...,f#k, plus the global f★. Deterministic naming so tests
/// can assert on shapes.
struct InverseFunctions {
  /// inverse_of[f] = the ids of f#1..f#k.
  std::map<FunctionId, std::vector<FunctionId>> inverse_of;
  FunctionId f_star = 0;
};

/// \brief Builds the inverse-function family for the SO-tgd.
Result<InverseFunctions> MakeInverseFunctions(const SOTgd& so);

/// \brief ENSUREINV(λ, ū, s̄): equalities tying the inverse functions to the
/// original terms (u_i = y for variable positions, f#j(u_i) = y_j for
/// function positions).
Result<std::vector<TermEq>> EnsureInv(const InverseFunctions& inv,
                                      const std::vector<VarId>& u,
                                      const std::vector<Term>& s);

/// \brief SAFE(λ, ū, s̄): for every function position i with term f(...),
/// the equality f★(u_i) = f#1(u_i) and inequalities f★(u_i) ≠ g#1(u_i) for
/// every other function symbol g of λ. Returns (equalities, inequalities).
struct SafeFormula {
  std::vector<TermEq> equalities;
  std::vector<TermEq> inequalities;
};
Result<SafeFormula> Safe(const InverseFunctions& inv,
                         const std::vector<VarId>& u,
                         const std::vector<Term>& s);

/// \brief True if t̄ is subsumed by s̄: wherever t̄ has a variable, s̄ has a
/// variable too (Section 5.2).
bool Subsumes(const std::vector<Term>& s, const std::vector<Term>& t);

/// \brief Runs POLYSOINVERSE on a plain SO-tgd mapping. The result maps the
/// original target schema back to the original source schema and specifies
/// a maximum recovery of `mapping` (Theorem 5.3). Honours the carried
/// deadline and `max_rules` (phase "polyso_inverse").
Result<SOInverseMapping> PolySOInverse(const SOTgdMapping& mapping,
                                       const ExecutionOptions& options = {});

/// \brief Convenience: tgds → plain SO-tgd (linear time, Section 5.1)
/// followed by POLYSOINVERSE. This is the paper's polynomial-time inversion
/// path for ordinary tgd mappings.
Result<SOInverseMapping> PolySOInverseOfTgds(
    const TgdMapping& mapping, const ExecutionOptions& options = {});

}  // namespace mapinv

#endif  // MAPINV_INVERSION_POLYSO_H_
