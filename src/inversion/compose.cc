#include "inversion/compose.h"

#include <functional>

#include "engine/failpoint.h"
#include "engine/trace.h"
#include "logic/substitution.h"
#include "rewrite/skolemize.h"

namespace mapinv {

namespace {
FailPoint fp_compose_entry("compose/entry");
FailPoint fp_compose_rule("compose/rule");
}  // namespace

Result<SOTgdMapping> ComposeSOTgds(const SOTgdMapping& first,
                                   const SOTgdMapping& second,
                                   const ExecutionOptions& options) {
  MAPINV_RETURN_NOT_OK(first.Validate());
  MAPINV_RETURN_NOT_OK(second.Validate());
  // The middle schemas must agree on every relation second's premises use.
  for (const SORule& rule : second.so.rules) {
    for (const Atom& a : rule.premise) {
      RelationId id = first.target->Find(RelationText(a.relation));
      if (id == kInvalidRelation ||
          first.target->arity(id) != a.terms.size()) {
        return Status::InvalidArgument(
            "middle-schema mismatch: relation " +
            std::string(RelationText(a.relation)) +
            " of the second mapping's premise is not in the first mapping's "
            "target schema with matching arity");
      }
    }
  }

  // The two mappings quantify their function symbols independently; a
  // shared symbol would wrongly couple the interpretations in the unfolded
  // formula.
  MAPINV_ASSIGN_OR_RETURN(auto fns1, first.so.Functions());
  MAPINV_ASSIGN_OR_RETURN(auto fns2, second.so.Functions());
  for (const auto& [fn, arity] : fns1) {
    (void)arity;
    if (fns2.contains(fn)) {
      return Status::Unsupported(
          "function symbol " + FunctionName(fn) +
          " occurs in both mappings; rename one side before composing");
    }
  }

  ScopedTraceSpan span(options, "compose");
  MAPINV_FAILPOINT(fp_compose_entry);
  ExecDeadline entry_deadline(options.deadline_ms);
  const ExecDeadline& deadline = CarriedDeadline(options, entry_deadline);

  SOTgdMapping out;
  out.source = first.source;
  out.target = second.target;

  FreshVarGen gen("m");
  size_t produced = 0;

  // Composed rules are appended whole at the recursion leaves, so stopping
  // on exhaustion in kPartial mode returns a rule subset of the full
  // composition — a sound under-approximation (never a torn rule).
  for (const SORule& rule2 : second.so.rules) {
    // Resolve each premise atom of rule2 against conclusion atoms of rules
    // of `first`, in all combinations.
    std::vector<std::vector<std::pair<const SORule*, size_t>>> choices(
        rule2.premise.size());
    for (size_t i = 0; i < rule2.premise.size(); ++i) {
      for (const SORule& rule1 : first.so.rules) {
        for (size_t c = 0; c < rule1.conclusion.size(); ++c) {
          if (rule1.conclusion[c].relation == rule2.premise[i].relation) {
            choices[i].emplace_back(&rule1, c);
          }
        }
      }
      if (choices[i].empty()) {
        // This rule2 premise atom can never be produced by first: the rule
        // contributes nothing to the composition.
        break;
      }
    }
    bool feasible = true;
    for (const auto& c : choices) {
      if (c.empty()) feasible = false;
    }
    if (!feasible) continue;

    std::function<Status(size_t, std::vector<std::pair<Term, Term>>,
                         std::vector<Atom>)>
        recurse = [&](size_t i, std::vector<std::pair<Term, Term>> goals,
                      std::vector<Atom> premises) -> Status {
      MAPINV_RETURN_NOT_OK(PollPhaseInterrupt(options, deadline, "compose"));
      if (i == rule2.premise.size()) {
        auto unified = Unify(goals);
        if (!unified.ok()) return Status::OK();  // clash: prune combination
        MAPINV_FAILPOINT(fp_compose_rule);
        if (++produced > options.max_rules) {
          return PhaseExhausted("compose",
                                "exceeded max_rules = " +
                                    std::to_string(options.max_rules));
        }
        SORule composed;
        composed.premise = unified->Apply(premises);
        composed.conclusion = unified->Apply(rule2.conclusion);
        out.so.rules.push_back(std::move(composed));
        return Status::OK();
      }
      for (const auto& [rule1, c] : choices[i]) {
        // Rename rule1 apart for this use.
        Substitution renaming = RenameApart(rule1->PremiseVars(), &gen);
        Atom head = renaming.Apply(rule1->conclusion[c]);
        std::vector<std::pair<Term, Term>> new_goals = goals;
        for (size_t p = 0; p < head.terms.size(); ++p) {
          new_goals.emplace_back(rule2.premise[i].terms[p], head.terms[p]);
        }
        std::vector<Atom> new_premises = premises;
        for (const Atom& pa : rule1->premise) {
          new_premises.push_back(renaming.Apply(pa));
        }
        MAPINV_RETURN_NOT_OK(
            recurse(i + 1, std::move(new_goals), std::move(new_premises)));
      }
      return Status::OK();
    };
    if (Status rec = recurse(0, {}, {}); !rec.ok()) {
      if (DegradeToPartial(options, rec)) break;
      return rec;
    }
  }
  return out;
}

Result<SOTgdMapping> ComposeTgdMappings(const TgdMapping& first,
                                        const TgdMapping& second,
                                        const ExecutionOptions& options) {
  MAPINV_ASSIGN_OR_RETURN(SOTgdMapping so1, TgdsToPlainSOTgd(first));
  MAPINV_ASSIGN_OR_RETURN(SOTgdMapping so2, TgdsToPlainSOTgd(second));
  return ComposeSOTgds(so1, so2, options);
}

}  // namespace mapinv
