/// \file compose.h
/// \brief Composition of schema mappings specified by (plain) SO-tgds.
///
/// The composition M₁₂ ∘ M₂₃ (Section 2) of mappings given by SO-tgds is
/// again definable by an SO-tgd [Fagin-Kolaitis-Popa-Tan, TODS'05 — the
/// paper's reference 13]: every premise atom of an M₂₃ rule is resolved
/// against the conclusion atoms of M₁₂ rules in all possible ways, and the
/// unifier is pushed through. Function terms may nest in the result (e.g.
/// g(f(x))), which is why Term supports nesting while *plain* SO-tgds do
/// not; IsPlain()/Validate() report whether the composition stayed plain
/// (and hence invertible with PolySOInverse).
///
/// This is the algebra behind the paper's schema-evolution use case (§1):
/// invert the evolution mapping and compose with the original mapping.

#ifndef MAPINV_INVERSION_COMPOSE_H_
#define MAPINV_INVERSION_COMPOSE_H_

#include "base/status.h"
#include "engine/execution_options.h"
#include "logic/mapping.h"

namespace mapinv {

/// \brief Composes two SO-tgd mappings; `first` maps A→B, `second` maps
/// B→C, the result maps A→C. Fails unless first.target and second.source
/// agree on the relations the rules use.
Result<SOTgdMapping> ComposeSOTgds(const SOTgdMapping& first,
                                   const SOTgdMapping& second,
                                   const ExecutionOptions& options = {});

/// \brief Convenience: composes two tgd mappings by translating both to
/// plain SO-tgds first (Section 5.1) and unfolding.
Result<SOTgdMapping> ComposeTgdMappings(const TgdMapping& first,
                                        const TgdMapping& second,
                                        const ExecutionOptions& options = {});

}  // namespace mapinv

#endif  // MAPINV_INVERSION_COMPOSE_H_
