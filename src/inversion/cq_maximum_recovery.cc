#include "inversion/cq_maximum_recovery.h"

#include "inversion/eliminate_disjunctions.h"
#include "inversion/maximum_recovery.h"

namespace mapinv {

Result<ReverseMapping> CqMaximumRecovery(
    const TgdMapping& mapping, const CqMaximumRecoveryOptions& options) {
  MAPINV_ASSIGN_OR_RETURN(ReverseMapping sigma_prime,
                          MaximumRecovery(mapping, options.rewrite));
  MAPINV_ASSIGN_OR_RETURN(
      ReverseMapping sigma_double_prime,
      EliminateEqualities(sigma_prime, options.eliminate_equalities));
  return EliminateDisjunctions(sigma_double_prime);
}

}  // namespace mapinv
