#include "inversion/cq_maximum_recovery.h"

#include "engine/failpoint.h"
#include "engine/trace.h"
#include "inversion/eliminate_disjunctions.h"
#include "inversion/maximum_recovery.h"

namespace mapinv {

namespace {
FailPoint fp_invert_entry("invert/entry");
}  // namespace

Result<ReverseMapping> CqMaximumRecovery(
    const TgdMapping& mapping, const ExecutionOptions& options) {
  // One deadline for the whole pipeline: the three stages below share the
  // budget instead of each restarting deadline_ms.
  ScopedTraceSpan span(options, "invert");
  MAPINV_FAILPOINT(fp_invert_entry);
  ExecDeadline entry_deadline(options.deadline_ms);
  ExecutionOptions inner = options;
  inner.deadline = &CarriedDeadline(options, entry_deadline);
  // In kPartial mode each stage degrades internally (MaximumRecovery drops
  // unfinished dependencies, the elimination stages keep what they finished),
  // and an exhausted budget also short-circuits the remaining stages: the
  // intermediate forms are valid reverse mappings (EliminateEqualities /
  // EliminateDisjunctions only normalise), so the partial pipeline output is
  // still a sound C-recovery — just not maximal / not equality-free.
  const bool degrade = options.on_exhausted == OnExhausted::kPartial;
  auto interrupted = [&] {
    return CancelRequested(options) || inner.deadline->ExpiredNow();
  };
  MAPINV_ASSIGN_OR_RETURN(ReverseMapping sigma_prime,
                          MaximumRecovery(mapping, inner));
  if (degrade && interrupted()) {
    MarkPartial(options);
    return sigma_prime;
  }
  MAPINV_ASSIGN_OR_RETURN(ReverseMapping sigma_double_prime,
                          EliminateEqualities(sigma_prime, inner));
  if (degrade && interrupted()) {
    MarkPartial(options);
    return sigma_double_prime;
  }
  return EliminateDisjunctions(std::move(sigma_double_prime), inner);
}

}  // namespace mapinv
