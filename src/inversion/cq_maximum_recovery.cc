#include "inversion/cq_maximum_recovery.h"

#include "inversion/eliminate_disjunctions.h"
#include "inversion/maximum_recovery.h"

namespace mapinv {

Result<ReverseMapping> CqMaximumRecovery(
    const TgdMapping& mapping, const ExecutionOptions& options) {
  MAPINV_ASSIGN_OR_RETURN(ReverseMapping sigma_prime,
                          MaximumRecovery(mapping, options));
  MAPINV_ASSIGN_OR_RETURN(
      ReverseMapping sigma_double_prime,
      EliminateEqualities(sigma_prime, options));
  return EliminateDisjunctions(sigma_double_prime);
}

}  // namespace mapinv
