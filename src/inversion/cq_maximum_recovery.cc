#include "inversion/cq_maximum_recovery.h"

#include "engine/trace.h"
#include "inversion/eliminate_disjunctions.h"
#include "inversion/maximum_recovery.h"

namespace mapinv {

Result<ReverseMapping> CqMaximumRecovery(
    const TgdMapping& mapping, const ExecutionOptions& options) {
  // One deadline for the whole pipeline: the three stages below share the
  // budget instead of each restarting deadline_ms.
  ScopedTraceSpan span(options, "invert");
  ExecDeadline entry_deadline(options.deadline_ms);
  ExecutionOptions inner = options;
  inner.deadline = &CarriedDeadline(options, entry_deadline);
  MAPINV_ASSIGN_OR_RETURN(ReverseMapping sigma_prime,
                          MaximumRecovery(mapping, inner));
  MAPINV_ASSIGN_OR_RETURN(ReverseMapping sigma_double_prime,
                          EliminateEqualities(sigma_prime, inner));
  return EliminateDisjunctions(std::move(sigma_double_prime), inner);
}

}  // namespace mapinv
