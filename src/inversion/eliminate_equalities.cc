#include "inversion/eliminate_equalities.h"

#include <algorithm>
#include <cstdint>

#include "engine/failpoint.h"
#include "engine/trace.h"
#include "inversion/partitions.h"
#include "logic/substitution.h"

namespace mapinv {

namespace {

FailPoint fp_elim_eq_entry("eliminate_equalities/entry");
FailPoint fp_elim_eq_partition("eliminate_equalities/partition");

// The partition walk renames every atom of every surviving disjunct once per
// partition — Bell-number many times per dependency. Instead of re-resolving
// variables against the frontier inside that loop, each atom list is
// compiled once per dependency into the positions holding a frontier
// variable, resolved to the frontier index. A partition then materialises
// the renamed atoms by copying the template and patching those positions
// with a direct array lookup.
struct TermPatch {
  uint32_t atom;
  uint32_t term;
  uint32_t frontier;  // index into the dependency's frontier
};

struct CompiledRenamer {
  const std::vector<Atom>* tmpl = nullptr;
  std::vector<TermPatch> patches;
};

CompiledRenamer CompileRenamer(const std::vector<Atom>& atoms,
                               const std::vector<VarId>& frontier) {
  CompiledRenamer c;
  c.tmpl = &atoms;
  for (uint32_t i = 0; i < atoms.size(); ++i) {
    for (uint32_t j = 0; j < atoms[i].terms.size(); ++j) {
      const VarId v = atoms[i].terms[j].var();
      for (uint32_t f = 0; f < frontier.size(); ++f) {
        if (frontier[f] == v) {
          c.patches.push_back(TermPatch{i, j, f});
          break;
        }
      }
    }
  }
  return c;
}

// `reps[f]` is the representative of the f-th frontier variable under the
// current partition; non-frontier (existential) positions keep the
// template's variable.
std::vector<Atom> ApplyRenamer(const CompiledRenamer& c,
                               const std::vector<VarId>& reps) {
  std::vector<Atom> out = *c.tmpl;
  for (const TermPatch& p : c.patches) {
    out[p.atom].terms[p.term] = Term::Var(reps[p.frontier]);
  }
  return out;
}

// One conclusion equality with its endpoints pre-resolved to frontier
// indices (-1 for a variable outside the frontier, which every partition
// maps to itself).
struct EqIndex {
  int32_t i1 = -1;
  int32_t i2 = -1;
  VarId v1 = 0;
  VarId v2 = 0;
};

}  // namespace

Result<ReverseMapping> EliminateEqualities(
    const ReverseMapping& recovery,
    const ExecutionOptions& options) {
  MAPINV_RETURN_NOT_OK(recovery.Validate());
  ScopedTraceSpan span(options, "eliminate_equalities");
  MAPINV_FAILPOINT(fp_elim_eq_entry);
  ExecDeadline entry_deadline(options.deadline_ms);
  const ExecDeadline& deadline = CarriedDeadline(options, entry_deadline);
  // Degradation granularity: whole expanded dependencies. Every partition
  // emits a standalone dependency, so stopping the enumeration early (or
  // skipping an over-wide frontier) just drops dependencies — sound, merely
  // a weaker recovery.
  ReverseMapping out(recovery.source, recovery.target, {});
  for (const ReverseDependency& dep : recovery.deps) {
    if (!dep.inequalities.empty()) {
      return Status::InvalidArgument(
          "EliminateEqualities expects raw MaximumRecovery output "
          "(no premise inequalities yet)");
    }
    const std::vector<VarId>& frontier = dep.constant_vars;
    if (frontier.size() > options.max_frontier_width) {
      Status exhausted = PhaseExhausted(
          "eliminate_equalities",
          "frontier of width " + std::to_string(frontier.size()) +
              " exceeds max_frontier_width = " +
              std::to_string(options.max_frontier_width) +
              " (Bell-number guard)");
      if (DegradeToPartial(options, exhausted)) continue;  // skip this dep
      return exhausted;
    }

    auto frontier_index = [&frontier](VarId v) -> int32_t {
      for (uint32_t f = 0; f < frontier.size(); ++f) {
        if (frontier[f] == v) return static_cast<int32_t>(f);
      }
      return -1;
    };

    // Compiled once per dependency; applied once per surviving partition.
    const CompiledRenamer premise_renamer =
        CompileRenamer(dep.premise, frontier);
    std::vector<CompiledRenamer> disjunct_renamers;
    std::vector<std::vector<EqIndex>> disjunct_eqs;
    disjunct_renamers.reserve(dep.disjuncts.size());
    disjunct_eqs.reserve(dep.disjuncts.size());
    for (const ReverseDisjunct& d : dep.disjuncts) {
      disjunct_renamers.push_back(CompileRenamer(d.atoms, frontier));
      std::vector<EqIndex> eqs;
      eqs.reserve(d.equalities.size());
      for (const VarPair& eq : d.equalities) {
        EqIndex e;
        e.i1 = frontier_index(eq.first);
        e.i2 = frontier_index(eq.second);
        e.v1 = eq.first;
        e.v2 = eq.second;
        eqs.push_back(e);
      }
      disjunct_eqs.push_back(std::move(eqs));
    }

    // Per-partition scratch, reused across the whole enumeration.
    std::vector<VarId> reps(frontier.size());       // f_π per frontier index
    std::vector<VarId> block_rep(frontier.size());  // block id -> representative
    std::vector<bool> block_seen(frontier.size());
    std::vector<VarId> representatives;
    representatives.reserve(frontier.size());

    // The partition walk is the Bell-number loop: poll the deadline and the
    // rule cap inside it and stop the enumeration on the spot.
    Status inner_status;
    ForEachPartition(frontier.size(), [&](const SetPartition& pi) {
      if (Status fp = fp_elim_eq_partition.Check(); !fp.ok()) {
        inner_status = std::move(fp);
        return false;
      }
      if (CancelRequested(options)) {
        inner_status = PhaseCancelled("eliminate_equalities");
        return false;
      }
      if (deadline.Expired()) {
        inner_status = PhaseExhausted(
            "eliminate_equalities",
            "exceeded deadline_ms = " + std::to_string(options.deadline_ms) +
                " during partition expansion");
        return false;
      }
      if (out.deps.size() >= options.max_rules) {
        inner_status = PhaseExhausted(
            "eliminate_equalities",
            "partition expansion exceeded max_rules = " +
                std::to_string(options.max_rules));
        return false;
      }
      // f_π: every frontier variable maps to the minimum-index member of its
      // block (the paper's representative choice). Block ids are dense
      // (pi[i] < frontier.size()), so flat arrays replace any hash map.
      std::fill(block_seen.begin(), block_seen.end(), false);
      representatives.clear();
      for (size_t i = 0; i < frontier.size(); ++i) {
        if (!block_seen[pi[i]]) {
          block_seen[pi[i]] = true;
          block_rep[pi[i]] = frontier[i];
          representatives.push_back(frontier[i]);
        }
        reps[i] = block_rep[pi[i]];
      }
      auto resolve = [&](int32_t idx, VarId v) {
        return idx >= 0 ? reps[idx] : v;
      };

      // Keep each disjunct whose equalities are consistent with δ_π. After
      // applying f_π, an equality relates two representatives; since δ_π
      // asserts all representatives pairwise distinct, consistency is
      // exactly "every equality became trivial".
      std::vector<ReverseDisjunct> survivors;
      for (size_t di = 0; di < dep.disjuncts.size(); ++di) {
        bool consistent = true;
        for (const EqIndex& e : disjunct_eqs[di]) {
          if (resolve(e.i1, e.v1) != resolve(e.i2, e.v2)) {
            consistent = false;
            break;
          }
        }
        if (!consistent) continue;
        ReverseDisjunct nd;
        nd.atoms = ApplyRenamer(disjunct_renamers[di], reps);
        survivors.push_back(std::move(nd));
      }
      if (survivors.empty()) return true;  // no dependency for this partition

      // δ_π: pairwise inequalities between distinct representatives.
      std::vector<VarPair> delta_pi;
      delta_pi.reserve(representatives.size() * (representatives.size() - 1) /
                       2);
      for (size_t i = 0; i < representatives.size(); ++i) {
        for (size_t j = i + 1; j < representatives.size(); ++j) {
          delta_pi.emplace_back(representatives[i], representatives[j]);
        }
      }

      ReverseDependency nd;
      nd.premise = ApplyRenamer(premise_renamer, reps);
      nd.constant_vars = representatives;
      nd.inequalities = std::move(delta_pi);
      nd.disjuncts = std::move(survivors);
      out.deps.push_back(std::move(nd));
      return true;
    });
    if (!inner_status.ok()) {
      if (DegradeToPartial(options, inner_status)) break;
      return inner_status;
    }
  }
  // No exit validation: `out` is built by renaming variables of the
  // already-validated input, which cannot introduce malformed dependencies
  // — and the partition expansion makes it Bell-number large, so one
  // whole-mapping Validate here is a measurable fraction of the pipeline.
  return out;
}

}  // namespace mapinv
