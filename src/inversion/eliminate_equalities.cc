#include "inversion/eliminate_equalities.h"

#include <unordered_map>
#include <unordered_set>

#include "engine/trace.h"
#include "inversion/partitions.h"
#include "logic/substitution.h"

namespace mapinv {

namespace {

// Applies a variable->variable map to the atoms (identity on unmapped vars).
std::vector<Atom> ApplyVarMap(const std::vector<Atom>& atoms,
                              const std::unordered_map<VarId, VarId>& map) {
  std::vector<Atom> out;
  out.reserve(atoms.size());
  for (const Atom& a : atoms) {
    Atom b;
    b.relation = a.relation;
    b.terms.reserve(a.terms.size());
    for (const Term& t : a.terms) {
      auto it = map.find(t.var());
      b.terms.push_back(Term::Var(it == map.end() ? t.var() : it->second));
    }
    out.push_back(std::move(b));
  }
  return out;
}

}  // namespace

Result<ReverseMapping> EliminateEqualities(
    const ReverseMapping& recovery,
    const ExecutionOptions& options) {
  MAPINV_RETURN_NOT_OK(recovery.Validate());
  ScopedTraceSpan span(options, "eliminate_equalities");
  ExecDeadline entry_deadline(options.deadline_ms);
  const ExecDeadline& deadline = CarriedDeadline(options, entry_deadline);
  ReverseMapping out(recovery.source, recovery.target, {});
  for (const ReverseDependency& dep : recovery.deps) {
    if (!dep.inequalities.empty()) {
      return Status::InvalidArgument(
          "EliminateEqualities expects raw MaximumRecovery output "
          "(no premise inequalities yet)");
    }
    const std::vector<VarId>& frontier = dep.constant_vars;
    if (frontier.size() > options.max_frontier_width) {
      return PhaseExhausted(
          "eliminate_equalities",
          "frontier of width " + std::to_string(frontier.size()) +
              " exceeds max_frontier_width = " +
              std::to_string(options.max_frontier_width) +
              " (Bell-number guard)");
    }

    // The partition walk is the Bell-number loop: poll the deadline and the
    // rule cap inside it and stop the enumeration on the spot.
    Status inner_status;
    ForEachPartition(frontier.size(), [&](const SetPartition& pi) {
      if (deadline.Expired()) {
        inner_status = PhaseExhausted(
            "eliminate_equalities",
            "exceeded deadline_ms = " + std::to_string(options.deadline_ms) +
                " during partition expansion");
        return false;
      }
      if (out.deps.size() >= options.max_rules) {
        inner_status = PhaseExhausted(
            "eliminate_equalities",
            "partition expansion exceeded max_rules = " +
                std::to_string(options.max_rules));
        return false;
      }
      // f_π: every frontier variable maps to the minimum-index member of its
      // block (the paper's representative choice).
      std::unordered_map<uint32_t, VarId> block_rep;
      std::unordered_map<VarId, VarId> f_pi;
      std::vector<VarId> representatives;
      for (size_t i = 0; i < frontier.size(); ++i) {
        auto [it, inserted] = block_rep.emplace(pi[i], frontier[i]);
        if (inserted) representatives.push_back(frontier[i]);
        f_pi[frontier[i]] = it->second;
      }

      // δ_π: pairwise inequalities between distinct representatives.
      std::vector<VarPair> delta_pi;
      for (size_t i = 0; i < representatives.size(); ++i) {
        for (size_t j = i + 1; j < representatives.size(); ++j) {
          delta_pi.emplace_back(representatives[i], representatives[j]);
        }
      }

      // Keep each disjunct whose equalities are consistent with δ_π. After
      // applying f_π, an equality relates two representatives; since δ_π
      // asserts all representatives pairwise distinct, consistency is
      // exactly "every equality became trivial".
      std::vector<ReverseDisjunct> survivors;
      for (const ReverseDisjunct& d : dep.disjuncts) {
        bool consistent = true;
        for (const VarPair& eq : d.equalities) {
          if (f_pi.at(eq.first) != f_pi.at(eq.second)) {
            consistent = false;
            break;
          }
        }
        if (!consistent) continue;
        ReverseDisjunct nd;
        nd.atoms = ApplyVarMap(d.atoms, f_pi);
        survivors.push_back(std::move(nd));
      }
      if (survivors.empty()) return true;  // no dependency for this partition

      ReverseDependency nd;
      nd.premise = ApplyVarMap(dep.premise, f_pi);
      nd.constant_vars = representatives;
      nd.inequalities = std::move(delta_pi);
      nd.disjuncts = std::move(survivors);
      out.deps.push_back(std::move(nd));
      return true;
    });
    MAPINV_RETURN_NOT_OK(inner_status);
  }
  MAPINV_RETURN_NOT_OK(out.Validate());
  return out;
}

}  // namespace mapinv
