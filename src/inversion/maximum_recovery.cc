#include "inversion/maximum_recovery.h"

#include "engine/trace.h"
#include "rewrite/rewrite.h"

namespace mapinv {

Result<ReverseMapping> MaximumRecovery(const TgdMapping& mapping,
                                       const ExecutionOptions& rewrite_options) {
  // Prepare validates the mapping and Skolemises its tgds once; the per-tgd
  // loop below issues one rewriting per tgd, so going through
  // RewriteOverSource would redo both on every iteration (quadratic in
  // mapping size).
  MAPINV_ASSIGN_OR_RETURN(SourceRewriter rewriter,
                          SourceRewriter::Prepare(mapping));
  ScopedTraceSpan span(rewrite_options, "maximum_recovery");
  ExecDeadline entry_deadline(rewrite_options.deadline_ms);
  const ExecDeadline& deadline =
      CarriedDeadline(rewrite_options, entry_deadline);
  ExecutionOptions inner = rewrite_options;
  inner.deadline = &deadline;
  ReverseMapping out(mapping.target, mapping.source, {});
  for (const Tgd& tgd : mapping.tgds) {
    if (deadline.Expired()) {
      return PhaseExhausted("maximum_recovery",
                            "exceeded deadline_ms = " +
                                std::to_string(rewrite_options.deadline_ms));
    }
    // ψ(x̄) as a conjunctive query over the target with the frontier free.
    ConjunctiveQuery psi;
    psi.name = "psi";
    psi.head = tgd.FrontierVars();
    psi.atoms = tgd.conclusion;

    MAPINV_ASSIGN_OR_RETURN(UnionCq alpha, rewriter.Rewrite(psi, inner));
    if (alpha.disjuncts.empty()) {
      // Cannot happen for well-formed tgds: ψ can always be matched against
      // the conclusion of its own tgd, and frontier head variables never
      // resolve to Skolem terms in that self-match.
      return Status::Internal("empty rewriting for tgd conclusion " +
                              tgd.ToString());
    }

    ReverseDependency dep;
    dep.premise = tgd.conclusion;
    dep.constant_vars = psi.head;
    dep.disjuncts = std::move(alpha.disjuncts);
    out.deps.push_back(std::move(dep));
  }
  MAPINV_RETURN_NOT_OK(out.Validate());
  return out;
}

}  // namespace mapinv
