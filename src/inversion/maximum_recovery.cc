#include "inversion/maximum_recovery.h"

#include "engine/failpoint.h"
#include "engine/trace.h"
#include "rewrite/rewrite.h"

namespace mapinv {

namespace {
FailPoint fp_maxrec_entry("maximum_recovery/entry");
FailPoint fp_maxrec_dep("maximum_recovery/dependency");
}  // namespace

Result<ReverseMapping> MaximumRecovery(const TgdMapping& mapping,
                                       const ExecutionOptions& rewrite_options) {
  // Prepare validates the mapping and Skolemises its tgds once; the per-tgd
  // loop below issues one rewriting per tgd, so going through
  // RewriteOverSource would redo both on every iteration (quadratic in
  // mapping size).
  MAPINV_ASSIGN_OR_RETURN(SourceRewriter rewriter,
                          SourceRewriter::Prepare(mapping));
  ScopedTraceSpan span(rewrite_options, "maximum_recovery");
  MAPINV_FAILPOINT(fp_maxrec_entry);
  ExecDeadline entry_deadline(rewrite_options.deadline_ms);
  const ExecDeadline& deadline =
      CarriedDeadline(rewrite_options, entry_deadline);
  ExecutionOptions inner = rewrite_options;
  inner.deadline = &deadline;
  // Degradation happens here at whole-dependency granularity: dropping a
  // reverse dependency only weakens the recovery (fewer reverse facts are
  // chased), so a dependency subset is still a sound C-recovery. A *disjunct*
  // subset of one rewriting would be unsound (it strengthens the rewriting's
  // conclusion), so the inner Rewrite runs in kFail mode and an exhausted
  // rewriting drops its whole dependency instead of surfacing truncated.
  inner.on_exhausted = OnExhausted::kFail;
  ReverseMapping out(mapping.target, mapping.source, {});
  for (const Tgd& tgd : mapping.tgds) {
    if (Status poll =
            PollPhaseInterrupt(rewrite_options, deadline, "maximum_recovery");
        !poll.ok()) {
      if (DegradeToPartial(rewrite_options, poll)) break;
      return poll;
    }
    MAPINV_FAILPOINT(fp_maxrec_dep);
    // ψ(x̄) as a conjunctive query over the target with the frontier free.
    ConjunctiveQuery psi;
    psi.name = "psi";
    psi.head = tgd.FrontierVars();
    psi.atoms = tgd.conclusion;

    Result<UnionCq> rewritten = rewriter.Rewrite(psi, inner);
    if (!rewritten.ok()) {
      if (DegradeToPartial(rewrite_options, rewritten.status())) break;
      return rewritten.status();
    }
    UnionCq alpha = std::move(rewritten).ValueOrDie();
    if (alpha.disjuncts.empty()) {
      // Cannot happen for well-formed tgds: ψ can always be matched against
      // the conclusion of its own tgd, and frontier head variables never
      // resolve to Skolem terms in that self-match.
      return Status::Internal("empty rewriting for tgd conclusion " +
                              tgd.ToString());
    }

    ReverseDependency dep;
    dep.premise = tgd.conclusion;
    dep.constant_vars = psi.head;
    dep.disjuncts = std::move(alpha.disjuncts);
    out.deps.push_back(std::move(dep));
  }
  MAPINV_RETURN_NOT_OK(out.Validate());
  return out;
}

}  // namespace mapinv
