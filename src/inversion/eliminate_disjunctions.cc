#include "inversion/eliminate_disjunctions.h"

#include "inversion/query_product.h"

namespace mapinv {

Result<ReverseMapping> EliminateDisjunctions(const ReverseMapping& recovery) {
  MAPINV_RETURN_NOT_OK(recovery.Validate());
  if (!recovery.IsEqualityFree()) {
    return Status::InvalidArgument(
        "EliminateDisjunctions expects equality-free disjuncts; run "
        "EliminateEqualities first");
  }
  ReverseMapping out(recovery.source, recovery.target, {});
  for (const ReverseDependency& dep : recovery.deps) {
    std::vector<std::vector<Atom>> disjunct_atoms;
    disjunct_atoms.reserve(dep.disjuncts.size());
    for (const ReverseDisjunct& d : dep.disjuncts) {
      disjunct_atoms.push_back(d.atoms);
    }
    std::vector<Atom> product =
        ProductOfMany(dep.constant_vars, disjunct_atoms);
    if (product.empty()) continue;  // empty product: drop the dependency
    ReverseDependency nd;
    nd.premise = dep.premise;
    nd.constant_vars = dep.constant_vars;
    nd.inequalities = dep.inequalities;
    ReverseDisjunct single;
    single.atoms = std::move(product);
    nd.disjuncts = {std::move(single)};
    out.deps.push_back(std::move(nd));
  }
  MAPINV_RETURN_NOT_OK(out.Validate());
  return out;
}

}  // namespace mapinv
