#include "inversion/eliminate_disjunctions.h"

#include "engine/failpoint.h"
#include "engine/trace.h"
#include "inversion/query_product.h"

namespace mapinv {

namespace {
FailPoint fp_elim_disj_entry("eliminate_disjunctions/entry");
FailPoint fp_elim_disj_product("eliminate_disjunctions/product");
}  // namespace

Result<ReverseMapping> EliminateDisjunctions(ReverseMapping recovery,
                                             const ExecutionOptions& options) {
  // No whole-mapping Validate here: the input is EliminateEqualities output,
  // which is Bell-number large, and that stage already validated the mapping
  // it expanded (renaming variables cannot un-validate it). Only the checks
  // this pass itself relies on run: schemas present and equality-free
  // disjuncts. The mapping is taken by value so the pipeline can hand over
  // its intermediate and every dependency is transformed by move.
  if (!recovery.source || !recovery.target) {
    return Status::InvalidArgument("mapping has null schema");
  }
  if (!recovery.IsEqualityFree()) {
    return Status::InvalidArgument(
        "EliminateDisjunctions expects equality-free disjuncts; run "
        "EliminateEqualities first");
  }
  ScopedTraceSpan span(options, "eliminate_disjunctions");
  MAPINV_FAILPOINT(fp_elim_disj_entry);
  ExecDeadline entry_deadline(options.deadline_ms);
  const ExecDeadline& deadline = CarriedDeadline(options, entry_deadline);
  // Degradation granularity: whole dependencies — a dependency is either
  // fully transformed into its conjunctive product or dropped (skipped on an
  // oversized product, or left behind when the budget runs out). Either way
  // the output is a dependency subset of the full transform: sound.
  ReverseMapping out(recovery.source, recovery.target, {});
  out.deps.reserve(recovery.deps.size());
  for (ReverseDependency& dep : recovery.deps) {
    if (Status poll =
            PollPhaseInterrupt(options, deadline, "eliminate_disjunctions");
        !poll.ok()) {
      if (DegradeToPartial(options, poll)) break;
      return poll;
    }
    MAPINV_FAILPOINT(fp_elim_disj_product);
    // The product materialises prod(|dᵢ|) atoms; refuse to build one larger
    // than max_disjuncts (saturating multiply — widths can overflow).
    size_t product_size = 1;
    for (const ReverseDisjunct& d : dep.disjuncts) {
      const size_t arity = d.atoms.size();
      if (arity != 0 && product_size > options.max_disjuncts / arity) {
        product_size = options.max_disjuncts + 1;  // saturate
        break;
      }
      product_size *= arity;
    }
    if (product_size > options.max_disjuncts) {
      Status exhausted = PhaseExhausted(
          "eliminate_disjunctions",
          "conjunctive product of " + std::to_string(dep.disjuncts.size()) +
              " disjuncts exceeds max_disjuncts = " +
              std::to_string(options.max_disjuncts) + " atoms");
      if (DegradeToPartial(options, exhausted)) continue;  // skip this dep
      return exhausted;
    }
    std::vector<Atom> product;
    if (dep.disjuncts.size() == 1) {
      // The product of a single query is the query itself.
      product = std::move(dep.disjuncts[0].atoms);
    } else {
      std::vector<std::vector<Atom>> disjunct_atoms;
      disjunct_atoms.reserve(dep.disjuncts.size());
      for (ReverseDisjunct& d : dep.disjuncts) {
        disjunct_atoms.push_back(std::move(d.atoms));
      }
      product = ProductOfMany(dep.constant_vars, disjunct_atoms);
    }
    if (product.empty()) continue;  // empty product: drop the dependency
    ReverseDisjunct single;
    single.atoms = std::move(product);
    dep.disjuncts.clear();
    dep.disjuncts.push_back(std::move(single));
    out.deps.push_back(std::move(dep));
  }
  // No exit validation: every output dependency reuses a validated premise
  // and a product of validated disjunct atoms (see EliminateEqualities for
  // why these whole-mapping passes matter on Bell-number-sized inputs).
  return out;
}

}  // namespace mapinv
