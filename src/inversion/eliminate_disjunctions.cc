#include "inversion/eliminate_disjunctions.h"

#include "engine/trace.h"
#include "inversion/query_product.h"

namespace mapinv {

Result<ReverseMapping> EliminateDisjunctions(const ReverseMapping& recovery,
                                             const ExecutionOptions& options) {
  MAPINV_RETURN_NOT_OK(recovery.Validate());
  if (!recovery.IsEqualityFree()) {
    return Status::InvalidArgument(
        "EliminateDisjunctions expects equality-free disjuncts; run "
        "EliminateEqualities first");
  }
  ScopedTraceSpan span(options, "eliminate_disjunctions");
  ExecDeadline entry_deadline(options.deadline_ms);
  const ExecDeadline& deadline = CarriedDeadline(options, entry_deadline);
  ReverseMapping out(recovery.source, recovery.target, {});
  for (const ReverseDependency& dep : recovery.deps) {
    if (deadline.Expired()) {
      return PhaseExhausted("eliminate_disjunctions",
                            "exceeded deadline_ms = " +
                                std::to_string(options.deadline_ms));
    }
    std::vector<std::vector<Atom>> disjunct_atoms;
    disjunct_atoms.reserve(dep.disjuncts.size());
    // The product materialises prod(|dᵢ|) atoms; refuse to build one larger
    // than max_disjuncts (saturating multiply — widths can overflow).
    size_t product_size = 1;
    for (const ReverseDisjunct& d : dep.disjuncts) {
      const size_t arity = d.atoms.size();
      if (arity != 0 && product_size > options.max_disjuncts / arity) {
        product_size = options.max_disjuncts + 1;  // saturate
        break;
      }
      product_size *= arity;
    }
    if (product_size > options.max_disjuncts) {
      return PhaseExhausted(
          "eliminate_disjunctions",
          "conjunctive product of " + std::to_string(dep.disjuncts.size()) +
              " disjuncts exceeds max_disjuncts = " +
              std::to_string(options.max_disjuncts) + " atoms");
    }
    for (const ReverseDisjunct& d : dep.disjuncts) {
      disjunct_atoms.push_back(d.atoms);
    }
    std::vector<Atom> product =
        ProductOfMany(dep.constant_vars, disjunct_atoms);
    if (product.empty()) continue;  // empty product: drop the dependency
    ReverseDependency nd;
    nd.premise = dep.premise;
    nd.constant_vars = dep.constant_vars;
    nd.inequalities = dep.inequalities;
    ReverseDisjunct single;
    single.atoms = std::move(product);
    nd.disjuncts = {std::move(single)};
    out.deps.push_back(std::move(nd));
  }
  MAPINV_RETURN_NOT_OK(out.Validate());
  return out;
}

}  // namespace mapinv
