/// \file eliminate_disjunctions.h
/// \brief Algorithm ELIMINATEDISJUNCTIONS(Σ'') of Section 4.1.
///
/// Input dependencies have the EliminateEqualities shape
///     ψ(x̄) ∧ C(x̄) ∧ δ(x̄) → β₁(x̄) ∨ ... ∨ β_k(x̄)
/// with equality-free conjunctive disjuncts. Each disjunction is replaced by
/// the single conjunctive query β₁ × ... × β_k (the CQ product); empty
/// products drop the dependency. The result is conjunctive-query equivalent
/// to the input (Lemma 4.3) and lies in the chaseable language of
/// Theorem 4.5: tgds with inequalities and C(·) in premises only.

#ifndef MAPINV_INVERSION_ELIMINATE_DISJUNCTIONS_H_
#define MAPINV_INVERSION_ELIMINATE_DISJUNCTIONS_H_

#include "base/status.h"
#include "engine/execution_options.h"
#include "logic/mapping.h"

namespace mapinv {

/// \brief Replaces every disjunctive conclusion by the product of its
/// disjuncts. Input must be equality-free (run EliminateEqualities first)
/// and structurally valid — as every upstream pipeline stage guarantees;
/// this pass does not re-run a whole-mapping Validate, because its input is
/// Bell-number large after partition expansion. Honours the carried
/// deadline and caps each materialised product at `options.max_disjuncts`
/// atoms (the product size is the product of the disjunct sizes —
/// exponential in the disjunct count). Takes the mapping by value: pass an
/// rvalue (as the pipeline does) and the pass rebuilds dependencies by
/// move instead of copying the Bell-number-sized intermediate.
Result<ReverseMapping> EliminateDisjunctions(
    ReverseMapping recovery, const ExecutionOptions& options = {});

}  // namespace mapinv

#endif  // MAPINV_INVERSION_ELIMINATE_DISJUNCTIONS_H_
