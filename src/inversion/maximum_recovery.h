/// \file maximum_recovery.h
/// \brief Algorithm MAXIMUMRECOVERY(Σ) of [Arenas-Pérez-Riveros, PODS'08],
/// as restated in Section 4.1 of the paper.
///
/// For every tgd φ(x̄) → ψ(x̄) in Σ, the algorithm computes the source
/// rewriting α(x̄) = REWRITE(Σ, ψ(x̄)) and emits the reverse dependency
///     ψ(x̄) ∧ C(x̄) → α(x̄),
/// where C(·) restricts the frontier to constants (only constant values may
/// be returned to the source). The output mapping is a maximum recovery of
/// the mapping specified by Σ — hence also an ALL-maximum recovery and a
/// CQ-maximum recovery (Section 3.1) — but its conclusions may contain
/// disjunctions and equalities, which the rest of the Section 4 pipeline
/// eliminates.

#ifndef MAPINV_INVERSION_MAXIMUM_RECOVERY_H_
#define MAPINV_INVERSION_MAXIMUM_RECOVERY_H_

#include "base/status.h"
#include "logic/mapping.h"
#include "rewrite/rewrite.h"

namespace mapinv {

/// \brief Computes a maximum recovery of `mapping`. The result maps the
/// original target schema back to the original source schema; dependency i
/// corresponds to tgd i of the input.
Result<ReverseMapping> MaximumRecovery(const TgdMapping& mapping,
                                       const ExecutionOptions& rewrite_options = {});

}  // namespace mapinv

#endif  // MAPINV_INVERSION_MAXIMUM_RECOVERY_H_
