#include "inversion/partitions.h"

#include <algorithm>

namespace mapinv {

void ForEachPartition(size_t n,
                      const std::function<bool(const SetPartition&)>& fn) {
  SetPartition block(n, 0);
  if (n == 0) {
    fn(block);
    return;
  }
  bool stopped = false;
  // Recursive restricted-growth-string generation: position 0 is always
  // block 0; position i may use any existing block or open a new one.
  std::function<void(size_t, uint32_t)> recurse = [&](size_t i,
                                                      uint32_t max_block) {
    if (stopped) return;
    if (i == n) {
      if (!fn(block)) stopped = true;
      return;
    }
    for (uint32_t b = 0; b <= max_block + 1 && !stopped; ++b) {
      block[i] = b;
      recurse(i + 1, std::max(max_block, b));
    }
  };
  recurse(1, 0);
}

uint64_t BellNumber(size_t n) {
  // Bell triangle with saturation.
  std::vector<uint64_t> row{1};
  for (size_t i = 0; i < n; ++i) {
    std::vector<uint64_t> next;
    next.reserve(row.size() + 1);
    next.push_back(row.back());
    for (uint64_t v : row) {
      uint64_t sum = next.back();
      if (sum > UINT64_MAX - v) {
        sum = UINT64_MAX;
      } else {
        sum += v;
      }
      next.push_back(sum);
    }
    row = std::move(next);
  }
  return row.front();
}

}  // namespace mapinv
