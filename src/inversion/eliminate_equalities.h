/// \file eliminate_equalities.h
/// \brief Algorithm ELIMINATEEQUALITIES(Σ') of Section 4.1.
///
/// Input dependencies have the MaximumRecovery shape
///     ψ(x̄) ∧ C(x̄) → α(x̄)           (α a UCQ= over the source);
/// for every partition π of x̄ the algorithm specialises the dependency to
/// the equality type "variables in the same π-block are equal, blocks are
/// pairwise distinct": variables are collapsed to block representatives
/// (f_π), the premise gains the pairwise inequalities δ_π, and each disjunct
/// survives iff its equalities are consistent with δ_π, with the equalities
/// then dropped. The output specifies the same maximum recovery (Lemma 4.2)
/// in the equality-free language
///     ρ(ȳ) ∧ C(ȳ) ∧ δ(ȳ) → γ(ȳ)      (γ a UCQ without equalities).
///
/// The partition enumeration is the Bell-number blow-up benchmarked by E3.

#ifndef MAPINV_INVERSION_ELIMINATE_EQUALITIES_H_
#define MAPINV_INVERSION_ELIMINATE_EQUALITIES_H_

#include "base/status.h"
#include "engine/execution_options.h"
#include "logic/mapping.h"

namespace mapinv {

/// \brief Runs the partition expansion on every dependency of `recovery`
/// (the output of MaximumRecovery). The result is equality-free; premises
/// carry C(·) on block representatives and all pairwise inequalities.
Result<ReverseMapping> EliminateEqualities(
    const ReverseMapping& recovery,
    const ExecutionOptions& options = {});

}  // namespace mapinv

#endif  // MAPINV_INVERSION_ELIMINATE_EQUALITIES_H_
