#include "inversion/polyso.h"

#include <map>
#include <set>
#include <functional>
#include <unordered_map>
#include <unordered_set>

#include "engine/failpoint.h"
#include "engine/trace.h"
#include "rewrite/skolemize.h"

namespace mapinv {

namespace {
FailPoint fp_polyso_entry("polyso/entry");
FailPoint fp_polyso_rule("polyso/rule");
}  // namespace

std::vector<VarId> CreateTuple(const std::vector<Term>& terms,
                               FreshVarGen* gen) {
  std::map<Term, VarId> seen;
  std::vector<VarId> out;
  out.reserve(terms.size());
  for (const Term& t : terms) {
    auto [it, inserted] = seen.emplace(t, 0);
    if (inserted) it->second = gen->Next();
    out.push_back(it->second);
  }
  return out;
}

Result<InverseFunctions> MakeInverseFunctions(const SOTgd& so) {
  MAPINV_ASSIGN_OR_RETURN(auto functions, so.Functions());
  InverseFunctions inv;
  for (const auto& [fn, arity] : functions) {
    std::vector<FunctionId> components;
    components.reserve(arity);
    for (uint32_t j = 1; j <= arity; ++j) {
      components.push_back(
          InternFunction(FunctionName(fn) + "#" + std::to_string(j)));
    }
    inv.inverse_of.emplace(fn, std::move(components));
  }
  // '#' cannot appear in parsed function names, so "fstar#" never collides
  // with a symbol of λ.
  inv.f_star = InternFunction("fstar#");
  return inv;
}

Result<std::vector<TermEq>> EnsureInv(const InverseFunctions& inv,
                                      const std::vector<VarId>& u,
                                      const std::vector<Term>& s) {
  if (u.size() != s.size()) {
    return Status::InvalidArgument("EnsureInv: tuple length mismatch");
  }
  std::vector<TermEq> out;
  auto push_unique = [&out](TermEq eq) {
    for (const TermEq& e : out) {
      if (e == eq) return;
    }
    out.push_back(std::move(eq));
  };
  for (size_t i = 0; i < s.size(); ++i) {
    Term ui = Term::Var(u[i]);
    if (s[i].is_variable()) {
      push_unique(TermEq{ui, s[i]});
    } else if (s[i].is_function()) {
      auto it = inv.inverse_of.find(s[i].fn());
      if (it == inv.inverse_of.end() ||
          it->second.size() != s[i].args().size()) {
        return Status::Internal("EnsureInv: unknown function " +
                                s[i].ToString());
      }
      for (size_t j = 0; j < s[i].args().size(); ++j) {
        push_unique(TermEq{Term::Fn(it->second[j], {ui}), s[i].args()[j]});
      }
    } else {
      return Status::Malformed("EnsureInv: constant term " + s[i].ToString());
    }
  }
  return out;
}

Result<SafeFormula> Safe(const InverseFunctions& inv,
                         const std::vector<VarId>& u,
                         const std::vector<Term>& s) {
  if (u.size() != s.size()) {
    return Status::InvalidArgument("Safe: tuple length mismatch");
  }
  SafeFormula out;
  auto push_unique = [](std::vector<TermEq>* vec, TermEq eq) {
    for (const TermEq& e : *vec) {
      if (e == eq) return;
    }
    vec->push_back(std::move(eq));
  };
  for (size_t i = 0; i < s.size(); ++i) {
    if (!s[i].is_function()) continue;
    auto it = inv.inverse_of.find(s[i].fn());
    if (it == inv.inverse_of.end()) {
      return Status::Internal("Safe: unknown function " + s[i].ToString());
    }
    Term ui = Term::Var(u[i]);
    Term star = Term::Fn(inv.f_star, {ui});
    push_unique(&out.equalities,
                TermEq{star, Term::Fn(it->second[0], {ui})});
    for (const auto& [g, g_components] : inv.inverse_of) {
      if (g == s[i].fn()) continue;
      push_unique(&out.inequalities,
                  TermEq{star, Term::Fn(g_components[0], {ui})});
    }
  }
  return out;
}

bool Subsumes(const std::vector<Term>& s, const std::vector<Term>& t) {
  if (s.size() != t.size()) return false;
  for (size_t i = 0; i < t.size(); ++i) {
    if (t[i].is_variable() && !s[i].is_variable()) return false;
  }
  return true;
}

namespace {

// Canonical key of an inverse rule: premise variables renamed positionally
// so that two rules differing only in fresh ū names (e.g. produced by two
// source rules with the same conclusion shape) compare equal.
std::string CanonicalRuleKey(const SOInverseRule& rule) {
  std::unordered_map<VarId, VarId> renaming;
  uint32_t next = 0;
  auto canon = [&](VarId v) {
    auto [it, inserted] = renaming.emplace(v, 0);
    if (inserted) it->second = InternVar("?c" + std::to_string(next++));
    return it->second;
  };
  std::function<Term(const Term&)> map_term = [&](const Term& t) -> Term {
    switch (t.kind()) {
      case Term::Kind::kVariable:
        return Term::Var(canon(t.var()));
      case Term::Kind::kConstant:
        return t;
      case Term::Kind::kFunction: {
        std::vector<Term> args;
        for (const Term& a : t.args()) args.push_back(map_term(a));
        return Term::Fn(t.fn(), std::move(args));
      }
    }
    return t;
  };
  SOInverseRule copy = rule;
  for (Term& t : copy.premise.terms) t = map_term(t);
  for (VarId& v : copy.constant_vars) v = canon(v);
  for (SOInvDisjunct& d : copy.disjuncts) {
    for (Atom& a : d.atoms) {
      for (Term& t : a.terms) t = map_term(t);
    }
    for (TermEq& eq : d.equalities) {
      eq.lhs = map_term(eq.lhs);
      eq.rhs = map_term(eq.rhs);
    }
    for (TermEq& ne : d.inequalities) {
      ne.lhs = map_term(ne.lhs);
      ne.rhs = map_term(ne.rhs);
    }
  }
  return copy.ToString();
}

// Step 2 of the algorithm: one conclusion atom per rule.
std::vector<SORule> Normalize(const SOTgd& so) {
  std::vector<SORule> out;
  for (const SORule& rule : so.rules) {
    for (const Atom& atom : rule.conclusion) {
      SORule r;
      r.premise = rule.premise;
      r.conclusion = {atom};
      out.push_back(std::move(r));
    }
  }
  return out;
}

}  // namespace

Result<SOInverseMapping> PolySOInverse(const SOTgdMapping& mapping,
                                       const ExecutionOptions& options) {
  MAPINV_RETURN_NOT_OK(mapping.Validate());
  ScopedTraceSpan span(options, "polyso_inverse");
  MAPINV_FAILPOINT(fp_polyso_entry);
  ExecDeadline entry_deadline(options.deadline_ms);
  const ExecDeadline& deadline = CarriedDeadline(options, entry_deadline);
  MAPINV_ASSIGN_OR_RETURN(InverseFunctions inv,
                          MakeInverseFunctions(mapping.so));

  std::vector<SORule> normalized = Normalize(mapping.so);

  SOInverseMapping out;
  out.source = mapping.target;
  out.target = mapping.source;

  FreshVarGen gen("u");
  std::set<std::string> emitted;  // canonical dedup of output rules
  // kPartial degrades at whole-rule granularity: an inverse rule missing
  // disjuncts would be unsound (fewer disjuncts = fewer worlds = a stronger
  // claim), so exhaustion mid-rule discards the torn rule and returns the
  // complete ones.
  for (const SORule& sigma : normalized) {
    // The saturation is quadratic in the normalised rule count (every rule
    // pairs with every subsuming rule); poll the budget per outer rule.
    if (Status poll =
            PollPhaseInterrupt(options, deadline, "polyso_inverse");
        !poll.ok()) {
      if (DegradeToPartial(options, poll)) break;
      return poll;
    }
    MAPINV_FAILPOINT(fp_polyso_rule);
    const Atom& head = sigma.conclusion[0];
    std::vector<VarId> u = CreateTuple(head.terms, &gen);

    SOInverseRule rule;
    rule.premise.relation = head.relation;
    rule.premise.terms.reserve(u.size());
    for (VarId v : u) rule.premise.terms.push_back(Term::Var(v));
    // C(u_i) for positions whose original term is a variable; dedup repeats.
    std::unordered_set<VarId> added_constants;
    for (size_t i = 0; i < head.terms.size(); ++i) {
      if (head.terms[i].is_variable() && added_constants.insert(u[i]).second) {
        rule.constant_vars.push_back(u[i]);
      }
    }

    Status inner_status;
    for (const SORule& other : normalized) {
      if (CancelRequested(options)) {
        inner_status = PhaseCancelled("polyso_inverse");
        break;
      }
      if (deadline.Expired()) {
        inner_status =
            PhaseExhausted("polyso_inverse",
                           "exceeded deadline_ms = " +
                               std::to_string(options.deadline_ms) +
                               " during subsumption pairing");
        break;
      }
      const Atom& other_head = other.conclusion[0];
      if (other_head.relation != head.relation) continue;
      if (!Subsumes(other_head.terms, head.terms)) continue;
      MAPINV_ASSIGN_OR_RETURN(std::vector<TermEq> q_e,
                              EnsureInv(inv, u, other_head.terms));
      MAPINV_ASSIGN_OR_RETURN(SafeFormula q_s,
                              Safe(inv, u, other_head.terms));
      SOInvDisjunct disjunct;
      disjunct.atoms = other.premise;
      disjunct.equalities = std::move(q_e);
      disjunct.equalities.insert(disjunct.equalities.end(),
                                 q_s.equalities.begin(), q_s.equalities.end());
      disjunct.inequalities = std::move(q_s.inequalities);
      rule.disjuncts.push_back(std::move(disjunct));
    }
    if (!inner_status.ok()) {
      // The current rule is torn (missing disjuncts); never emit it.
      if (DegradeToPartial(options, inner_status)) break;
      return inner_status;
    }
    if (rule.disjuncts.empty()) {
      return Status::Internal(
          "PolySOInverse: no subsuming rule for its own head — "
          "self-subsumption must always hold");
    }
    if (emitted.insert(CanonicalRuleKey(rule)).second) {
      if (out.inverse.rules.size() >= options.max_rules) {
        Status exhausted =
            PhaseExhausted("polyso_inverse",
                           "exceeded max_rules = " +
                               std::to_string(options.max_rules));
        if (DegradeToPartial(options, exhausted)) break;
        return exhausted;
      }
      out.inverse.rules.push_back(std::move(rule));
    }
  }
  return out;
}

Result<SOInverseMapping> PolySOInverseOfTgds(const TgdMapping& mapping,
                                             const ExecutionOptions& options) {
  MAPINV_ASSIGN_OR_RETURN(SOTgdMapping so, TgdsToPlainSOTgd(mapping));
  return PolySOInverse(so, options);
}

}  // namespace mapinv
