/// \file query_product.h
/// \brief The product of conjunctive queries (Section 4.1).
///
/// For n-ary CQs Q₁, Q₂ with shared free tuple x̄, the product Q₁ × Q₂ pairs
/// variables through a one-to-one function f with f(x, x) = x for x ∈ x̄ and
/// a fresh variable otherwise, and contains the atom
/// R(f(y₁,z₁), ..., f(y_m,z_m)) for every pair of same-relation atoms
/// R(ȳ) ∈ Q₁, R(z̄) ∈ Q₂. It generalises the Cartesian product of graphs
/// and is the ⊓ of the homomorphism lattice: Q₁ × Q₂ maps into both inputs,
/// and anything that maps into both maps into the product. This is what
/// makes EliminateDisjunctions CQ-equivalence preserving (Lemma 4.3).
///
/// The product may be empty (no common relation), and its set of free
/// variables may shrink to the x̄-variables it still mentions.

#ifndef MAPINV_INVERSION_QUERY_PRODUCT_H_
#define MAPINV_INVERSION_QUERY_PRODUCT_H_

#include <vector>

#include "base/status.h"
#include "logic/cq.h"

namespace mapinv {

/// \brief Computes Q₁ × Q₂ for equality-free disjuncts sharing the free
/// tuple `shared_free`. Returns the product's atoms (possibly empty).
std::vector<Atom> ProductOfDisjuncts(const std::vector<VarId>& shared_free,
                                     const std::vector<Atom>& q1,
                                     const std::vector<Atom>& q2);

/// \brief Left fold of ProductOfDisjuncts over β₁, ..., β_k (k ≥ 1).
/// Returns empty atoms if any intermediate product is empty.
std::vector<Atom> ProductOfMany(const std::vector<VarId>& shared_free,
                                const std::vector<std::vector<Atom>>& queries);

}  // namespace mapinv

#endif  // MAPINV_INVERSION_QUERY_PRODUCT_H_
