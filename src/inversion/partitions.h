/// \file partitions.h
/// \brief Enumeration of set partitions (restricted growth strings).
///
/// EliminateEqualities (Section 4.1) iterates over every partition π of the
/// frontier tuple x̄. The number of partitions of an n-set is the Bell
/// number B(n) (1, 1, 2, 5, 15, 52, 203, ...), which is the intrinsic
/// exponential cost of the Section 4 pipeline — benchmarked by E3.

#ifndef MAPINV_INVERSION_PARTITIONS_H_
#define MAPINV_INVERSION_PARTITIONS_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "base/status.h"

namespace mapinv {

/// \brief A partition of {0, ..., n-1} in restricted-growth form:
/// block[i] is the block index of element i, block[0] = 0, and
/// block[i] <= max(block[0..i-1]) + 1.
using SetPartition = std::vector<uint32_t>;

/// \brief Calls `fn` for every partition of an n-element set, in restricted-
/// growth-string lexicographic order (the single partition of the empty set
/// is the empty string). `fn` returning false stops the enumeration.
void ForEachPartition(size_t n, const std::function<bool(const SetPartition&)>& fn);

/// \brief The Bell number B(n) (number of partitions); saturates at
/// UINT64_MAX. Used for limit checks and bench reporting.
uint64_t BellNumber(size_t n);

}  // namespace mapinv

#endif  // MAPINV_INVERSION_PARTITIONS_H_
