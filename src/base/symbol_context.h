/// \file symbol_context.h
/// \brief Scoped fresh-symbol generation: null labels, variable and function
/// ordinals.
///
/// Historically fresh nulls (`Value::FreshNull`) and fresh variable/function
/// names (`FreshVarGen`, `FreshFunctionGen`) drew from process-global atomic
/// counters, so the labels appearing in chase output depended on everything
/// the process had done before — two identical chases produced isomorphic
/// but not identical instances. A SymbolContext owns those counters instead.
/// Engine-scoped contexts (one per `Engine`, or one per `ExecutionOptions`)
/// make runs reproducible: a fresh context always counts from zero, so two
/// back-to-back identical chases emit bit-identical instances.
///
/// `SymbolContext::Global()` is the process-wide default used when no
/// context is supplied; it preserves the historical behaviour (and the
/// parser's BumpPast protocol for re-parsing printed output).

#ifndef MAPINV_BASE_SYMBOL_CONTEXT_H_
#define MAPINV_BASE_SYMBOL_CONTEXT_H_

#include <atomic>
#include <cstdint>

namespace mapinv {

/// \brief Owns the counters behind fresh nulls, fresh variables and fresh
/// function symbols. Thread-safe: all counters are atomics, so concurrent
/// chase workers may draw from one context (the parallel chase instead
/// assigns nulls in a deterministic sequential merge phase; see
/// docs/ENGINE.md).
class SymbolContext {
 public:
  SymbolContext() = default;
  SymbolContext(const SymbolContext&) = delete;
  SymbolContext& operator=(const SymbolContext&) = delete;

  /// Next fresh labelled-null label.
  uint32_t NextNullLabel() {
    return null_label_.fetch_add(1, std::memory_order_relaxed);
  }

  /// Next ordinal for a generated variable name "?<prefix><n>".
  uint64_t NextVarOrdinal() {
    return var_ordinal_.fetch_add(1, std::memory_order_relaxed);
  }

  /// Next ordinal for a generated function name "<prefix>%<n>".
  uint64_t NextFunctionOrdinal() {
    return fn_ordinal_.fetch_add(1, std::memory_order_relaxed);
  }

  /// The label the next NextNullLabel() call would return. Checkpointed
  /// enumeration persists this watermark with every commit so a resumed run
  /// restarts fresh-null generation exactly where the killed run left off
  /// (see src/job/job.h).
  uint32_t NullWatermark() const {
    return null_label_.load(std::memory_order_relaxed);
  }

  /// Ensures future NextNullLabel() results are strictly above `label`.
  /// Chase entry points call this with the largest null label of their input
  /// instance, so an engine-scoped context can never re-issue a label that
  /// already occurs in the data it is extending.
  void BumpNullPast(uint32_t label) { BumpPast(&null_label_, uint64_t{label}); }

  /// Ensures future NextVarOrdinal() results are strictly above `n` (the
  /// parser's re-parse safety protocol; see FreshVarGen::BumpPast).
  void BumpVarPast(uint64_t n) { BumpPast(&var_ordinal_, n); }

  /// The process-wide default context.
  static SymbolContext& Global();

 private:
  template <typename T>
  static void BumpPast(std::atomic<T>* counter, uint64_t n) {
    T current = counter->load(std::memory_order_relaxed);
    while (current <= static_cast<T>(n) &&
           !counter->compare_exchange_weak(current, static_cast<T>(n) + 1,
                                           std::memory_order_relaxed)) {
    }
  }

  std::atomic<uint32_t> null_label_{0};
  std::atomic<uint64_t> var_ordinal_{0};
  std::atomic<uint64_t> fn_ordinal_{0};
};

}  // namespace mapinv

#endif  // MAPINV_BASE_SYMBOL_CONTEXT_H_
