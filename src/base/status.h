/// \file status.h
/// \brief Error model for mapinv: Status and Result<T>, no exceptions.
///
/// The library follows the Arrow/RocksDB convention: fallible operations
/// return a Status (or Result<T> when they also produce a value). Statuses
/// carry an error code and a human-readable message. Successful statuses are
/// cheap to construct and copy (no allocation).

#ifndef MAPINV_BASE_STATUS_H_
#define MAPINV_BASE_STATUS_H_

#include <cassert>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <utility>
#include <variant>

namespace mapinv {

/// \brief Machine-readable classification of an error.
enum class StatusCode {
  kOk = 0,
  /// A caller supplied an argument that violates the function contract.
  kInvalidArgument,
  /// Input text failed to parse (see parser/).
  kParseError,
  /// A well-formedness condition on a logical object was violated
  /// (e.g. a tgd whose conclusion mentions a relation of the wrong arity).
  kMalformed,
  /// A configured resource limit was exceeded (chase steps, worlds, ...).
  kResourceExhausted,
  /// The operation was aborted cooperatively via a CancelToken (see
  /// engine/execution_options.h). Distinct from kResourceExhausted: the
  /// caller asked to stop; no budget was necessarily exceeded.
  kCancelled,
  /// The requested object does not exist (unknown relation, variable, ...).
  kNotFound,
  /// An internal invariant failed; indicates a bug in mapinv itself.
  kInternal,
  /// The operation is not supported for this input class.
  kUnsupported,
};

/// \brief Returns a stable lower-case name for a status code.
const char* StatusCodeName(StatusCode code);

/// \brief The result of a fallible operation without a payload.
class Status {
 public:
  /// Constructs an OK status.
  Status() = default;

  /// Constructs a non-OK status with the given code and message.
  Status(StatusCode code, std::string message) {
    assert(code != StatusCode::kOk);
    state_ = std::make_shared<State>(State{code, std::move(message)});
  }

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status Malformed(std::string msg) {
    return Status(StatusCode::kMalformed, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Unsupported(std::string msg) {
    return Status(StatusCode::kUnsupported, std::move(msg));
  }

  bool ok() const { return state_ == nullptr; }
  StatusCode code() const { return ok() ? StatusCode::kOk : state_->code; }
  const std::string& message() const {
    static const std::string kEmpty;
    return ok() ? kEmpty : state_->message;
  }

  /// Returns "OK" or "<code>: <message>".
  std::string ToString() const;

  /// Aborts the process if the status is not OK. Use only where an error
  /// indicates a programming bug (tests, examples, benches).
  void Check() const {
    if (!ok()) {
      std::fprintf(stderr, "mapinv fatal status: %s\n", ToString().c_str());
      std::abort();
    }
  }

 private:
  struct State {
    StatusCode code;
    std::string message;
  };
  // Shared so Status copies are cheap; null means OK.
  std::shared_ptr<const State> state_;
};

/// \brief A value-or-error sum type, analogous to arrow::Result.
template <typename T>
class Result {
 public:
  /// Implicit from a value (success).
  Result(T value) : repr_(std::move(value)) {}  // NOLINT(runtime/explicit)
  /// Implicit from a non-OK status (failure).
  Result(Status status) : repr_(std::move(status)) {  // NOLINT
    assert(!std::get<Status>(repr_).ok());
  }

  bool ok() const { return std::holds_alternative<T>(repr_); }

  const Status& status() const {
    static const Status kOk;
    return ok() ? kOk : std::get<Status>(repr_);
  }

  /// Returns the held value; the result must be OK.
  const T& ValueOrDie() const& {
    CheckOk();
    return std::get<T>(repr_);
  }
  T& ValueOrDie() & {
    CheckOk();
    return std::get<T>(repr_);
  }
  T ValueOrDie() && {
    CheckOk();
    return std::move(std::get<T>(repr_));
  }

  const T& operator*() const& { return ValueOrDie(); }
  T& operator*() & { return ValueOrDie(); }
  const T* operator->() const { return &ValueOrDie(); }
  T* operator->() { return &ValueOrDie(); }

 private:
  void CheckOk() const {
    if (!ok()) {
      std::fprintf(stderr, "mapinv fatal result: %s\n",
                   std::get<Status>(repr_).ToString().c_str());
      std::abort();
    }
  }
  std::variant<T, Status> repr_;
};

/// Propagates a non-OK Status out of the current function.
#define MAPINV_RETURN_NOT_OK(expr)              \
  do {                                          \
    ::mapinv::Status _st = (expr);              \
    if (!_st.ok()) return _st;                  \
  } while (0)

#define MAPINV_CONCAT_IMPL(a, b) a##b
#define MAPINV_CONCAT(a, b) MAPINV_CONCAT_IMPL(a, b)

/// Evaluates a Result<T> expression; on success binds the value to `lhs`,
/// on failure returns the error status from the current function.
#define MAPINV_ASSIGN_OR_RETURN(lhs, expr)                        \
  auto MAPINV_CONCAT(_res_, __LINE__) = (expr);                   \
  if (!MAPINV_CONCAT(_res_, __LINE__).ok())                       \
    return MAPINV_CONCAT(_res_, __LINE__).status();               \
  lhs = std::move(MAPINV_CONCAT(_res_, __LINE__)).ValueOrDie()

}  // namespace mapinv

#endif  // MAPINV_BASE_STATUS_H_
