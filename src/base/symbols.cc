#include "base/symbols.h"

namespace mapinv {

Interner& VariablePool() {
  static Interner* pool = new Interner();
  return *pool;
}

Interner& ConstantPool() {
  static Interner* pool = new Interner();
  return *pool;
}

Interner& FunctionPool() {
  static Interner* pool = new Interner();
  return *pool;
}

Interner& RelationNamePool() {
  static Interner* pool = new Interner();
  return *pool;
}

RelName InternRelation(std::string_view name) {
  return RelationNamePool().Intern(name);
}

std::string RelationText(RelName r) { return RelationNamePool().Text(r); }

VarId InternVar(std::string_view name) { return VariablePool().Intern(name); }

std::string VarName(VarId v) { return VariablePool().Text(v); }

FunctionId InternFunction(std::string_view name) {
  return FunctionPool().Intern(name);
}

std::string FunctionName(FunctionId f) { return FunctionPool().Text(f); }

}  // namespace mapinv
