#include "base/symbols.h"

#include <deque>
#include <mutex>

namespace mapinv {

namespace {

/// Append-only (prefix, ordinal) side table behind synthetic ids. Generated
/// symbols are write-once / read-rarely (only printing reads them back), so
/// a deque under a mutex beats the interner's hash table by a wide margin:
/// no hashing, no rehash churn, no per-symbol heap string, and the table's
/// growth does not degrade later appends.
class SyntheticPool {
 public:
  uint32_t PrefixId(std::string_view prefix) {
    return prefixes_.Intern(prefix);
  }

  uint32_t Add(uint32_t prefix_id, uint64_t ordinal) {
    std::lock_guard<std::mutex> lock(mu_);
    // 2^31 live synthetic symbols would need tens of GB of formula state
    // before this index could collide with the tag bit.
    uint32_t index = static_cast<uint32_t>(entries_.size());
    entries_.push_back(Entry{prefix_id, ordinal});
    return index;
  }

  /// Rebuilds the symbol's name as `sigil + prefix + sep + ordinal`.
  std::string Name(uint32_t index, const char* sigil, const char* sep) const {
    uint32_t prefix_id;
    uint64_t ordinal;
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (index >= entries_.size()) {
        return "<bad-synthetic:" + std::to_string(index) + ">";
      }
      prefix_id = entries_[index].prefix;
      ordinal = entries_[index].ordinal;
    }
    std::string out(sigil);
    out += prefixes_.Text(prefix_id);
    out += sep;
    out += std::to_string(ordinal);
    return out;
  }

 private:
  struct Entry {
    uint32_t prefix;
    uint64_t ordinal;
  };
  mutable std::mutex mu_;
  std::deque<Entry> entries_;
  Interner prefixes_;  // one entry per distinct generator prefix
};

SyntheticPool& SyntheticVarPool() {
  static SyntheticPool* pool = new SyntheticPool();
  return *pool;
}

SyntheticPool& SyntheticFunctionPool() {
  static SyntheticPool* pool = new SyntheticPool();
  return *pool;
}

}  // namespace

Interner& VariablePool() {
  static Interner* pool = new Interner();
  return *pool;
}

Interner& ConstantPool() {
  static Interner* pool = new Interner();
  return *pool;
}

Interner& FunctionPool() {
  static Interner* pool = new Interner();
  return *pool;
}

Interner& RelationNamePool() {
  static Interner* pool = new Interner();
  return *pool;
}

RelName InternRelation(std::string_view name) {
  return RelationNamePool().Intern(name);
}

std::string_view RelationText(RelName r) { return RelationNamePool().Text(r); }

VarId InternVar(std::string_view name) { return VariablePool().Intern(name); }

std::string VarName(VarId v) {
  if (v & kSyntheticIdBit) {
    return SyntheticVarPool().Name(v & ~kSyntheticIdBit, "?", "");
  }
  return std::string(VariablePool().Text(v));
}

FunctionId InternFunction(std::string_view name) {
  return FunctionPool().Intern(name);
}

std::string FunctionName(FunctionId f) {
  if (f & kSyntheticIdBit) {
    return SyntheticFunctionPool().Name(f & ~kSyntheticIdBit, "", "%");
  }
  return std::string(FunctionPool().Text(f));
}

uint32_t SyntheticVarPrefixId(std::string_view prefix) {
  return SyntheticVarPool().PrefixId(prefix);
}

VarId MakeSyntheticVar(uint32_t prefix_id, uint64_t ordinal) {
  return kSyntheticIdBit | SyntheticVarPool().Add(prefix_id, ordinal);
}

uint32_t SyntheticFunctionPrefixId(std::string_view prefix) {
  return SyntheticFunctionPool().PrefixId(prefix);
}

FunctionId MakeSyntheticFunction(uint32_t prefix_id, uint64_t ordinal) {
  return kSyntheticIdBit | SyntheticFunctionPool().Add(prefix_id, ordinal);
}

}  // namespace mapinv
