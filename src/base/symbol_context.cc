#include "base/symbol_context.h"

namespace mapinv {

SymbolContext& SymbolContext::Global() {
  static SymbolContext* context = new SymbolContext();
  return *context;
}

}  // namespace mapinv
