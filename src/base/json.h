/// \file json.h
/// \brief A small, dependency-free JSON value: parse, build, serialize.
///
/// The serving layer (src/serve/) speaks length-prefixed JSON frames, and
/// the Request/Response engine API (engine/request.h) serializes
/// EngineRequest/EngineResponse through this type, so the CLI and the
/// server render byte-identical response documents. Design points:
///
///   * Objects preserve insertion order (a vector of pairs, not a map), so
///     serialization is deterministic: the same value always renders to the
///     same bytes. Lookups are linear — fine for protocol-sized documents.
///   * Numbers keep an exact int64 representation when the input had one
///     (no '.' / exponent and the value fits); ExecStats counters round-trip
///     without double truncation.
///   * Parse is strict RFC-8259-shaped: no trailing garbage, no comments,
///     no trailing commas, \uXXXX escapes (surrogate pairs included) decoded
///     to UTF-8, and a depth limit so hostile nesting cannot overflow the
///     stack.
///
/// Errors are reported as Status::Malformed with a byte offset, matching
/// the parser/ diagnostics style.

#ifndef MAPINV_BASE_JSON_H_
#define MAPINV_BASE_JSON_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "base/status.h"

namespace mapinv {

/// \brief One JSON value (null, bool, number, string, array or object).
class Json {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  using Array = std::vector<Json>;
  using Object = std::vector<std::pair<std::string, Json>>;

  /// Nesting depth beyond which Parse fails (arrays + objects combined).
  static constexpr size_t kMaxDepth = 64;

  Json() : kind_(Kind::kNull) {}
  explicit Json(bool b) : kind_(Kind::kBool), bool_(b) {}
  explicit Json(int64_t n) : kind_(Kind::kNumber), int_(n), is_int_(true) {}
  explicit Json(uint64_t n)
      : kind_(Kind::kNumber), int_(static_cast<int64_t>(n)), is_int_(true) {}
  explicit Json(int n) : Json(static_cast<int64_t>(n)) {}
  explicit Json(double d) : kind_(Kind::kNumber), double_(d) {}
  explicit Json(std::string s) : kind_(Kind::kString), str_(std::move(s)) {}
  explicit Json(std::string_view s) : Json(std::string(s)) {}
  explicit Json(const char* s) : Json(std::string(s)) {}

  static Json MakeArray() {
    Json j;
    j.kind_ = Kind::kArray;
    return j;
  }
  static Json MakeObject() {
    Json j;
    j.kind_ = Kind::kObject;
    return j;
  }

  /// Strict parse of a complete document; kMalformed (with a byte offset in
  /// the message) on any violation, including trailing garbage.
  static Result<Json> Parse(std::string_view text);

  /// Compact deterministic rendering (no whitespace; object keys in
  /// insertion order; integers rendered exactly).
  std::string Serialize() const;
  void SerializeTo(std::string* out) const;

  Kind kind() const { return kind_; }
  bool IsNull() const { return kind_ == Kind::kNull; }
  bool IsBool() const { return kind_ == Kind::kBool; }
  bool IsNumber() const { return kind_ == Kind::kNumber; }
  bool IsString() const { return kind_ == Kind::kString; }
  bool IsArray() const { return kind_ == Kind::kArray; }
  bool IsObject() const { return kind_ == Kind::kObject; }

  /// Accessors assume the matching kind (checked only by assert); use the
  /// Get* helpers for schema-tolerant reads.
  bool AsBool() const { return bool_; }
  int64_t AsInt() const {
    return is_int_ ? int_ : static_cast<int64_t>(double_);
  }
  double AsDouble() const {
    return is_int_ ? static_cast<double>(int_) : double_;
  }
  const std::string& AsString() const { return str_; }
  const Array& AsArray() const { return array_; }
  Array& MutableArray() { return array_; }
  const Object& AsObject() const { return object_; }

  /// Object field lookup; nullptr when not an object or the key is absent.
  const Json* Find(std::string_view key) const;

  /// Schema-tolerant typed reads: the default when the field is missing or
  /// of the wrong kind.
  std::string GetString(std::string_view key,
                        std::string default_value = "") const;
  int64_t GetInt(std::string_view key, int64_t default_value = 0) const;
  bool GetBool(std::string_view key, bool default_value = false) const;

  /// Appends to an array value.
  void Append(Json value) { array_.push_back(std::move(value)); }
  /// Sets (or overwrites) an object field, preserving first-set order.
  void Set(std::string_view key, Json value);

 private:
  static void EscapeTo(std::string_view s, std::string* out);

  Kind kind_;
  bool bool_ = false;
  int64_t int_ = 0;
  double double_ = 0.0;
  bool is_int_ = false;
  std::string str_;
  Array array_;
  Object object_;
};

}  // namespace mapinv

#endif  // MAPINV_BASE_JSON_H_
