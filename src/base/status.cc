#include "base/status.h"

namespace mapinv {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "ok";
    case StatusCode::kInvalidArgument:
      return "invalid-argument";
    case StatusCode::kParseError:
      return "parse-error";
    case StatusCode::kMalformed:
      return "malformed";
    case StatusCode::kResourceExhausted:
      return "resource-exhausted";
    case StatusCode::kCancelled:
      return "cancelled";
    case StatusCode::kNotFound:
      return "not-found";
    case StatusCode::kInternal:
      return "internal";
    case StatusCode::kUnsupported:
      return "unsupported";
  }
  return "unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeName(code());
  out += ": ";
  out += message();
  return out;
}

}  // namespace mapinv
