/// \file parse.h
/// \brief Strict numeric parsing shared by every flag/spec surface.
///
/// All three tools (mapinv_cli, mapinv_serve, mapinv_bench_serve) and the
/// engine's gen:-spec resolver accept non-negative integer parameters. Each
/// historically carried its own copy of the rule; this header is the single
/// definition. The rule is deliberately stricter than strtoull:
///
///   * digits only — no sign, no whitespace, no base prefix, no trailing
///     garbage ("+3", " 3", "0x3", "3 " all rejected);
///   * bounded — values above `max` are rejected during accumulation, so an
///     overflowed literal can never wrap or saturate into an in-range value.

#ifndef MAPINV_BASE_PARSE_H_
#define MAPINV_BASE_PARSE_H_

#include <cstdint>
#include <string_view>

namespace mapinv {

/// \brief Parses `text` as a non-negative decimal integer in [0, max].
/// Returns false (leaving `*out` untouched) on empty input, any non-digit
/// character, or a value above `max`.
inline bool ParseUint(std::string_view text, uint64_t max, uint64_t* out) {
  if (text.empty()) return false;
  uint64_t v = 0;
  for (char c : text) {
    if (c < '0' || c > '9') return false;
    if (v > max / 10) return false;
    v = v * 10 + static_cast<uint64_t>(c - '0');
    if (v > max) return false;
  }
  *out = v;
  return true;
}

}  // namespace mapinv

#endif  // MAPINV_BASE_PARSE_H_
