/// \file interner.h
/// \brief String interning: maps strings to dense 32-bit ids and back.
///
/// mapinv identifies relation names, variable names, constant spellings and
/// function symbols by dense ids so that hot paths (homomorphism search, the
/// chase) compare integers rather than strings. Each id space has its own
/// Interner instance; see symbols.h for the process-wide pools.

#ifndef MAPINV_BASE_INTERNER_H_
#define MAPINV_BASE_INTERNER_H_

#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace mapinv {

/// \brief A thread-safe append-only string <-> id bijection.
class Interner {
 public:
  Interner() = default;
  Interner(const Interner&) = delete;
  Interner& operator=(const Interner&) = delete;

  /// Returns the id for `text`, inserting it if new.
  uint32_t Intern(std::string_view text) {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = ids_.find(std::string(text));
    if (it != ids_.end()) return it->second;
    uint32_t id = static_cast<uint32_t>(texts_.size());
    texts_.emplace_back(text);
    ids_.emplace(texts_.back(), id);
    return id;
  }

  /// Returns the text for a previously interned id.
  std::string Text(uint32_t id) const {
    std::lock_guard<std::mutex> lock(mu_);
    if (id >= texts_.size()) return "<bad-id:" + std::to_string(id) + ">";
    return texts_[id];
  }

  /// Returns the id for `text` if present, or UINT32_MAX otherwise.
  uint32_t Lookup(std::string_view text) const {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = ids_.find(std::string(text));
    return it == ids_.end() ? UINT32_MAX : it->second;
  }

  size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return texts_.size();
  }

 private:
  mutable std::mutex mu_;
  std::vector<std::string> texts_;
  std::unordered_map<std::string, uint32_t> ids_;
};

}  // namespace mapinv

#endif  // MAPINV_BASE_INTERNER_H_
