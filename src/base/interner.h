/// \file interner.h
/// \brief String interning: maps strings to dense 32-bit ids and back.
///
/// mapinv identifies relation names, variable names, constant spellings and
/// function symbols by dense ids so that hot paths (homomorphism search, the
/// chase) compare integers rather than strings. Each id space has its own
/// Interner instance; see symbols.h for the process-wide pools.

#ifndef MAPINV_BASE_INTERNER_H_
#define MAPINV_BASE_INTERNER_H_

#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>

namespace mapinv {

/// \brief A thread-safe append-only string <-> id bijection.
///
/// Texts live in a deque, so their addresses are stable for the interner's
/// lifetime: Text() can hand out views without copying under the lock, and
/// the id map keys alias the stored strings instead of duplicating them.
class Interner {
 public:
  Interner() = default;
  Interner(const Interner&) = delete;
  Interner& operator=(const Interner&) = delete;

  /// Returns the id for `text`, inserting it if new.
  uint32_t Intern(std::string_view text) {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = ids_.find(text);
    if (it != ids_.end()) return it->second;
    uint32_t id = static_cast<uint32_t>(texts_.size());
    texts_.emplace_back(text);
    ids_.emplace(std::string_view(texts_.back()), id);
    return id;
  }

  /// Returns the text for a previously interned id. The view is valid for
  /// the interner's lifetime (texts are append-only with stable addresses);
  /// no copy, no lock contention beyond a bounds check. Unknown ids render a
  /// "<bad-id:N>" diagnostic backed by thread-local storage, valid until the
  /// calling thread's next bad-id lookup.
  std::string_view Text(uint32_t id) const {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (id < texts_.size()) return texts_[id];
    }
    thread_local std::string bad;
    bad = "<bad-id:" + std::to_string(id) + ">";
    return bad;
  }

  /// Returns the id for `text` if present, or UINT32_MAX otherwise.
  uint32_t Lookup(std::string_view text) const {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = ids_.find(text);
    return it == ids_.end() ? UINT32_MAX : it->second;
  }

  size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return texts_.size();
  }

 private:
  /// Heterogeneous lookup so find(string_view) needs no temporary string.
  struct TextHash {
    using is_transparent = void;
    size_t operator()(std::string_view s) const {
      return std::hash<std::string_view>()(s);
    }
  };

  mutable std::mutex mu_;
  std::deque<std::string> texts_;  // deque: stable element addresses
  std::unordered_map<std::string_view, uint32_t, TextHash, std::equal_to<>>
      ids_;
};

}  // namespace mapinv

#endif  // MAPINV_BASE_INTERNER_H_
