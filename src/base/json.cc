#include "base/json.h"

#include <cassert>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace mapinv {
namespace {

/// Recursive-descent parser over a string_view. Positions are byte offsets
/// into the original document, reported in every diagnostic.
class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : text_(text) {}

  Result<Json> ParseDocument() {
    SkipWs();
    Json value;
    MAPINV_RETURN_NOT_OK(ParseValue(0, &value));
    SkipWs();
    if (pos_ != text_.size()) {
      return Error("trailing characters after JSON value");
    }
    return value;
  }

 private:
  Status Error(const std::string& message) const {
    return Status::Malformed("json: " + message + " at offset " +
                             std::to_string(pos_));
  }

  void SkipWs() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  Status ParseValue(size_t depth, Json* out) {
    if (depth >= Json::kMaxDepth) return Error("nesting too deep");
    if (pos_ >= text_.size()) return Error("unexpected end of input");
    switch (text_[pos_]) {
      case '{':
        return ParseObject(depth, out);
      case '[':
        return ParseArray(depth, out);
      case '"': {
        std::string s;
        MAPINV_RETURN_NOT_OK(ParseString(&s));
        *out = Json(std::move(s));
        return Status::OK();
      }
      case 't':
        return ParseLiteral("true", Json(true), out);
      case 'f':
        return ParseLiteral("false", Json(false), out);
      case 'n':
        return ParseLiteral("null", Json(), out);
      default:
        return ParseNumber(out);
    }
  }

  Status ParseLiteral(std::string_view word, Json value, Json* out) {
    if (text_.substr(pos_, word.size()) != word) {
      return Error("invalid literal");
    }
    pos_ += word.size();
    *out = std::move(value);
    return Status::OK();
  }

  Status ParseObject(size_t depth, Json* out) {
    ++pos_;  // '{'
    Json obj = Json::MakeObject();
    SkipWs();
    if (Consume('}')) {
      *out = std::move(obj);
      return Status::OK();
    }
    while (true) {
      SkipWs();
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        return Error("expected object key");
      }
      std::string key;
      MAPINV_RETURN_NOT_OK(ParseString(&key));
      SkipWs();
      if (!Consume(':')) return Error("expected ':' after object key");
      SkipWs();
      Json value;
      MAPINV_RETURN_NOT_OK(ParseValue(depth + 1, &value));
      obj.Set(key, std::move(value));
      SkipWs();
      if (Consume(',')) continue;
      if (Consume('}')) break;
      return Error("expected ',' or '}' in object");
    }
    *out = std::move(obj);
    return Status::OK();
  }

  Status ParseArray(size_t depth, Json* out) {
    ++pos_;  // '['
    Json array = Json::MakeArray();
    SkipWs();
    if (Consume(']')) {
      *out = std::move(array);
      return Status::OK();
    }
    while (true) {
      SkipWs();
      Json value;
      MAPINV_RETURN_NOT_OK(ParseValue(depth + 1, &value));
      array.Append(std::move(value));
      SkipWs();
      if (Consume(',')) continue;
      if (Consume(']')) break;
      return Error("expected ',' or ']' in array");
    }
    *out = std::move(array);
    return Status::OK();
  }

  Status ParseHex4(uint32_t* out) {
    if (pos_ + 4 > text_.size()) return Error("truncated \\u escape");
    uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = text_[pos_ + static_cast<size_t>(i)];
      v <<= 4;
      if (c >= '0' && c <= '9') {
        v |= static_cast<uint32_t>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        v |= static_cast<uint32_t>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        v |= static_cast<uint32_t>(c - 'A' + 10);
      } else {
        return Error("invalid hex digit in \\u escape");
      }
    }
    pos_ += 4;
    *out = v;
    return Status::OK();
  }

  static void AppendUtf8(uint32_t cp, std::string* out) {
    if (cp < 0x80) {
      out->push_back(static_cast<char>(cp));
    } else if (cp < 0x800) {
      out->push_back(static_cast<char>(0xC0 | (cp >> 6)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else if (cp < 0x10000) {
      out->push_back(static_cast<char>(0xE0 | (cp >> 12)));
      out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else {
      out->push_back(static_cast<char>(0xF0 | (cp >> 18)));
      out->push_back(static_cast<char>(0x80 | ((cp >> 12) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    }
  }

  Status ParseString(std::string* out) {
    ++pos_;  // '"'
    out->clear();
    while (true) {
      if (pos_ >= text_.size()) return Error("unterminated string");
      const unsigned char c = static_cast<unsigned char>(text_[pos_]);
      if (c == '"') {
        ++pos_;
        return Status::OK();
      }
      if (c < 0x20) return Error("unescaped control character in string");
      if (c != '\\') {
        out->push_back(static_cast<char>(c));
        ++pos_;
        continue;
      }
      ++pos_;  // '\\'
      if (pos_ >= text_.size()) return Error("truncated escape");
      const char e = text_[pos_++];
      switch (e) {
        case '"': out->push_back('"'); break;
        case '\\': out->push_back('\\'); break;
        case '/': out->push_back('/'); break;
        case 'b': out->push_back('\b'); break;
        case 'f': out->push_back('\f'); break;
        case 'n': out->push_back('\n'); break;
        case 'r': out->push_back('\r'); break;
        case 't': out->push_back('\t'); break;
        case 'u': {
          uint32_t cp = 0;
          MAPINV_RETURN_NOT_OK(ParseHex4(&cp));
          if (cp >= 0xD800 && cp <= 0xDBFF) {
            // High surrogate: a low surrogate must follow.
            if (pos_ + 1 >= text_.size() || text_[pos_] != '\\' ||
                text_[pos_ + 1] != 'u') {
              return Error("unpaired surrogate in \\u escape");
            }
            pos_ += 2;
            uint32_t low = 0;
            MAPINV_RETURN_NOT_OK(ParseHex4(&low));
            if (low < 0xDC00 || low > 0xDFFF) {
              return Error("invalid low surrogate in \\u escape");
            }
            cp = 0x10000 + ((cp - 0xD800) << 10) + (low - 0xDC00);
          } else if (cp >= 0xDC00 && cp <= 0xDFFF) {
            return Error("unpaired surrogate in \\u escape");
          }
          AppendUtf8(cp, out);
          break;
        }
        default:
          return Error("invalid escape character");
      }
    }
  }

  Status ParseNumber(Json* out) {
    const size_t start = pos_;
    bool is_int = true;
    if (Consume('-')) {
    }
    if (pos_ >= text_.size() ||
        !(text_[pos_] >= '0' && text_[pos_] <= '9')) {
      return Error("invalid number");
    }
    if (text_[pos_] == '0') {
      ++pos_;
    } else {
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
        ++pos_;
      }
    }
    if (pos_ < text_.size() && text_[pos_] == '.') {
      is_int = false;
      ++pos_;
      if (pos_ >= text_.size() ||
          !(text_[pos_] >= '0' && text_[pos_] <= '9')) {
        return Error("digits required after decimal point");
      }
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
        ++pos_;
      }
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      is_int = false;
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) {
        ++pos_;
      }
      if (pos_ >= text_.size() ||
          !(text_[pos_] >= '0' && text_[pos_] <= '9')) {
        return Error("digits required in exponent");
      }
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
        ++pos_;
      }
    }
    const std::string token(text_.substr(start, pos_ - start));
    if (is_int) {
      errno = 0;
      char* end = nullptr;
      const long long v = std::strtoll(token.c_str(), &end, 10);
      if (errno != ERANGE && end != nullptr && *end == '\0') {
        *out = Json(static_cast<int64_t>(v));
        return Status::OK();
      }
      // Integer literal out of int64 range: fall back to double.
    }
    errno = 0;
    char* end = nullptr;
    const double d = std::strtod(token.c_str(), &end);
    if (end == nullptr || *end != '\0' || std::isinf(d) || std::isnan(d)) {
      return Error("number out of range");
    }
    *out = Json(d);
    return Status::OK();
  }

  std::string_view text_;
  size_t pos_ = 0;
};

}  // namespace

Result<Json> Json::Parse(std::string_view text) {
  return JsonParser(text).ParseDocument();
}

const Json* Json::Find(std::string_view key) const {
  if (kind_ != Kind::kObject) return nullptr;
  for (const auto& [k, v] : object_) {
    if (k == key) return &v;
  }
  return nullptr;
}

std::string Json::GetString(std::string_view key,
                            std::string default_value) const {
  const Json* v = Find(key);
  return (v != nullptr && v->IsString()) ? v->AsString()
                                         : std::move(default_value);
}

int64_t Json::GetInt(std::string_view key, int64_t default_value) const {
  const Json* v = Find(key);
  return (v != nullptr && v->IsNumber()) ? v->AsInt() : default_value;
}

bool Json::GetBool(std::string_view key, bool default_value) const {
  const Json* v = Find(key);
  return (v != nullptr && v->IsBool()) ? v->AsBool() : default_value;
}

void Json::Set(std::string_view key, Json value) {
  assert(kind_ == Kind::kObject);
  for (auto& [k, v] : object_) {
    if (k == key) {
      v = std::move(value);
      return;
    }
  }
  object_.emplace_back(std::string(key), std::move(value));
}

void Json::EscapeTo(std::string_view s, std::string* out) {
  out->push_back('"');
  for (const char raw : s) {
    const unsigned char c = static_cast<unsigned char>(raw);
    switch (c) {
      case '"': *out += "\\\""; break;
      case '\\': *out += "\\\\"; break;
      case '\b': *out += "\\b"; break;
      case '\f': *out += "\\f"; break;
      case '\n': *out += "\\n"; break;
      case '\r': *out += "\\r"; break;
      case '\t': *out += "\\t"; break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          out->push_back(raw);
        }
    }
  }
  out->push_back('"');
}

void Json::SerializeTo(std::string* out) const {
  switch (kind_) {
    case Kind::kNull:
      *out += "null";
      return;
    case Kind::kBool:
      *out += bool_ ? "true" : "false";
      return;
    case Kind::kNumber:
      if (is_int_) {
        *out += std::to_string(int_);
      } else {
        // Shortest round-trip double rendering; %.17g always round-trips
        // and strtod in Parse reads it back exactly.
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%.17g", double_);
        *out += buf;
      }
      return;
    case Kind::kString:
      EscapeTo(str_, out);
      return;
    case Kind::kArray: {
      out->push_back('[');
      bool first = true;
      for (const Json& v : array_) {
        if (!first) out->push_back(',');
        first = false;
        v.SerializeTo(out);
      }
      out->push_back(']');
      return;
    }
    case Kind::kObject: {
      out->push_back('{');
      bool first = true;
      for (const auto& [k, v] : object_) {
        if (!first) out->push_back(',');
        first = false;
        EscapeTo(k, out);
        out->push_back(':');
        v.SerializeTo(out);
      }
      out->push_back('}');
      return;
    }
  }
}

std::string Json::Serialize() const {
  std::string out;
  SerializeTo(&out);
  return out;
}

}  // namespace mapinv
