/// \file symbols.h
/// \brief Process-wide symbol pools and fresh-symbol generation.
///
/// Four independent id spaces are used throughout mapinv:
///   * variables        (VarId)      — "x", "y", fresh "?v17"
///   * constant values  (see data/value.h; spellings interned here)
///   * relation symbols (managed per-Schema in data/schema.h)
///   * function symbols (FunctionId) — "f", Skolem "sk_3", inverse "f#1"
///
/// Variable and function names are global pools: formulas from different
/// mappings may share variable names, and identity of a variable is always
/// relative to the formula it appears in, so a global name pool is safe and
/// keeps printing trivial.

#ifndef MAPINV_BASE_SYMBOLS_H_
#define MAPINV_BASE_SYMBOLS_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "base/interner.h"
#include "base/symbol_context.h"

namespace mapinv {

/// Identifier of a (first-order) variable in the global variable pool.
using VarId = uint32_t;
/// Identifier of a function symbol in the global function pool.
using FunctionId = uint32_t;

/// Ids with this bit set are *synthetic*: generated fresh symbols whose
/// (prefix, ordinal) pair lives in an append-only side table instead of the
/// string interner. Fresh symbols are generated once and never looked up by
/// text again, so routing them through the interner paid a hash, a heap
/// string and an ever-growing hash table per symbol — the side table is a
/// plain append. Their names ("?<prefix><n>", "<prefix>%<n>") are rebuilt on
/// demand by VarName / FunctionName; re-parsing a printed name goes through
/// the regular interner and yields a distinct (but consistently distinct)
/// id, which is sound because variable identity is always relative to the
/// formula it appears in and BumpPast keeps generated ordinals ahead of
/// anything the parser has seen.
inline constexpr uint32_t kSyntheticIdBit = 0x80000000u;

/// Registers `prefix` in the synthetic-variable prefix registry (tiny; one
/// entry per distinct generator prefix) and returns its id.
uint32_t SyntheticVarPrefixId(std::string_view prefix);
/// Appends a synthetic variable (prefix, ordinal) entry; returns its VarId
/// (kSyntheticIdBit | index).
VarId MakeSyntheticVar(uint32_t prefix_id, uint64_t ordinal);
/// Same registry/side table pair for function symbols.
uint32_t SyntheticFunctionPrefixId(std::string_view prefix);
FunctionId MakeSyntheticFunction(uint32_t prefix_id, uint64_t ordinal);

/// Pool of variable names.
Interner& VariablePool();
/// Pool of constant spellings (used by data/value.h).
Interner& ConstantPool();
/// Pool of function-symbol names.
Interner& FunctionPool();
/// Pool of relation names as used inside formulas (atoms store interned
/// names; resolution against a concrete Schema happens at eval/chase time).
Interner& RelationNamePool();

/// Interns a variable name.
VarId InternVar(std::string_view name);
/// Returns a variable's name.
std::string VarName(VarId v);
/// Interns a function-symbol name.
FunctionId InternFunction(std::string_view name);
/// Returns a function symbol's name.
std::string FunctionName(FunctionId f);

/// Identifier of a relation name inside formulas.
using RelName = uint32_t;
/// Interns a relation name.
RelName InternRelation(std::string_view name);
/// Returns a relation name's text as a view into the pool (valid for the
/// process lifetime; no copy — this is the chase/eval hot-path accessor).
std::string_view RelationText(RelName r);

/// \brief Generates fresh variables "?<prefix><n>" from a SymbolContext
/// (the process-global context when none is given).
///
/// The '?' sigil cannot be produced by the parser, so generated variables can
/// never collide with user-written ones.
class FreshVarGen {
 public:
  explicit FreshVarGen(std::string prefix = "v",
                       SymbolContext* context = nullptr)
      : prefix_id_(SyntheticVarPrefixId(prefix)),
        context_(context != nullptr ? context : &SymbolContext::Global()) {}

  /// Returns a variable this context has never issued before. Costs one
  /// atomic increment and one side-table append — no string is built and the
  /// interner is never touched.
  VarId Next() {
    return MakeSyntheticVar(prefix_id_, context_->NextVarOrdinal());
  }

  /// Ensures future Next() calls on the *global* context use numbers
  /// strictly above `n`. The parser calls this when it reads a '?'-prefixed
  /// variable, so re-parsing printed output can never capture later
  /// generated variables.
  static void BumpPast(uint64_t n) { SymbolContext::Global().BumpVarPast(n); }

 private:
  uint32_t prefix_id_;
  SymbolContext* context_;
};

/// \brief Generates fresh function symbols "<prefix>%<n>" from a
/// SymbolContext (the process-global context when none is given).
class FreshFunctionGen {
 public:
  explicit FreshFunctionGen(std::string prefix = "sk",
                            SymbolContext* context = nullptr)
      : prefix_id_(SyntheticFunctionPrefixId(prefix)),
        context_(context != nullptr ? context : &SymbolContext::Global()) {}

  FunctionId Next() {
    return MakeSyntheticFunction(prefix_id_, context_->NextFunctionOrdinal());
  }

 private:
  uint32_t prefix_id_;
  SymbolContext* context_;
};

/// Combines a hash into a seed (boost::hash_combine recipe, 64-bit variant).
inline void HashCombine(size_t& seed, size_t value) {
  seed ^= value + 0x9e3779b97f4a7c15ULL + (seed << 6) + (seed >> 2);
}

}  // namespace mapinv

#endif  // MAPINV_BASE_SYMBOLS_H_
