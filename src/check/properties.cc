#include "check/properties.h"

#include <algorithm>

#include "chase/chase_tgd.h"
#include "eval/hom.h"
#include "eval/query_eval.h"

namespace mapinv {

Result<std::optional<PropertyViolation>> CheckCRecovery(
    const TgdMapping& mapping, const ReverseMapping& reverse,
    const std::vector<Instance>& sources,
    const std::vector<ConjunctiveQuery>& queries, const ExecutionOptions& options) {
  for (const Instance& source : sources) {
    for (const ConjunctiveQuery& q : queries) {
      MAPINV_ASSIGN_OR_RETURN(
          AnswerSet certain, RoundTripCertain(mapping, reverse, source, q,
                                              options));
      MAPINV_ASSIGN_OR_RETURN(AnswerSet direct, EvaluateCq(q, source));
      if (!certain.SubsetOf(direct)) {
        return std::optional<PropertyViolation>(PropertyViolation{
            "C-recovery violated for query " + q.ToString() + " on " +
            source.ToString() + ": certain " + certain.ToString() +
            " ⊄ direct " + direct.ToString()});
      }
    }
  }
  return std::optional<PropertyViolation>{};
}

Result<std::optional<PropertyViolation>> CheckRecoveryDominance(
    const TgdMapping& mapping, const ReverseMapping& better,
    const ReverseMapping& worse, const std::vector<Instance>& sources,
    const std::vector<ConjunctiveQuery>& queries, const ExecutionOptions& options) {
  for (const Instance& source : sources) {
    for (const ConjunctiveQuery& q : queries) {
      MAPINV_ASSIGN_OR_RETURN(
          AnswerSet via_worse,
          RoundTripCertain(mapping, worse, source, q, options));
      MAPINV_ASSIGN_OR_RETURN(
          AnswerSet via_better,
          RoundTripCertain(mapping, better, source, q, options));
      if (!via_worse.SubsetOf(via_better)) {
        return std::optional<PropertyViolation>(PropertyViolation{
            "dominance violated for query " + q.ToString() + " on " +
            source.ToString() + ": " + via_worse.ToString() + " ⊄ " +
            via_better.ToString()});
      }
    }
  }
  return std::optional<PropertyViolation>{};
}

Result<bool> RoundTripIsIdentity(const TgdMapping& mapping,
                                 const ReverseMapping& reverse,
                                 const Instance& source,
                                 const ExecutionOptions& options) {
  MAPINV_ASSIGN_OR_RETURN(
      std::vector<Instance> worlds,
      RoundTripWorlds(mapping, reverse, source, options));
  if (worlds.empty()) return false;
  // For every source relation, compare the null-free facts shared by all
  // worlds against the source facts, via per-relation identity queries.
  for (const ConjunctiveQuery& q : PerRelationQueries(*mapping.source)) {
    MAPINV_ASSIGN_OR_RETURN(AnswerSet certain, CertainOverWorlds(worlds, q));
    MAPINV_ASSIGN_OR_RETURN(AnswerSet direct, EvaluateCq(q, source));
    if (!(certain.tuples == direct.tuples)) return false;
  }
  return true;
}

Result<bool> SolutionsContained(const TgdMapping& mapping, const Instance& i1,
                                const Instance& i2,
                                const ExecutionOptions& options) {
  ExecutionOptions oblivious = options;
  oblivious.oblivious = true;
  MAPINV_ASSIGN_OR_RETURN(Instance c1, ChaseTgds(mapping, i1, oblivious));
  MAPINV_ASSIGN_OR_RETURN(Instance c2, ChaseTgds(mapping, i2, oblivious));
  // Sol(I) = { J : canonical(I) → J }; hence Sol(I₂) ⊆ Sol(I₁) iff
  // canonical(I₁) → canonical(I₂).
  return InstanceHomExists(c1, c2);
}

Result<bool> SubsetPropertyHolds(const TgdMapping& mapping, const Instance& i1,
                                 const Instance& i2,
                                 const ExecutionOptions& options) {
  MAPINV_ASSIGN_OR_RETURN(bool contained,
                          SolutionsContained(mapping, i1, i2, options));
  if (!contained) return true;  // antecedent false
  return i1.SubsetOf(i2);
}

Result<bool> UniqueSolutionsPropertyHolds(const TgdMapping& mapping,
                                          const Instance& i1,
                                          const Instance& i2,
                                          const ExecutionOptions& options) {
  MAPINV_ASSIGN_OR_RETURN(bool equivalent,
                          DataExchangeEquivalent(mapping, i1, i2, options));
  if (!equivalent) return true;  // antecedent false
  return i1.EqualTo(i2);
}

Result<bool> DataExchangeEquivalent(const TgdMapping& mapping,
                                    const Instance& i1, const Instance& i2,
                                    const ExecutionOptions& options) {
  MAPINV_ASSIGN_OR_RETURN(bool fwd, SolutionsContained(mapping, i1, i2, options));
  if (!fwd) return false;
  return SolutionsContained(mapping, i2, i1, options);
}

Result<std::optional<PropertyViolation>> CheckCqEquivalentReverse(
    const ReverseMapping& m1, const ReverseMapping& m2,
    const std::vector<Instance>& inputs,
    const std::vector<ConjunctiveQuery>& queries, const ExecutionOptions& options) {
  for (const Instance& input : inputs) {
    for (const ConjunctiveQuery& q : queries) {
      MAPINV_ASSIGN_OR_RETURN(AnswerSet a1,
                              CertainAnswersReverse(m1, input, q, options));
      MAPINV_ASSIGN_OR_RETURN(AnswerSet a2,
                              CertainAnswersReverse(m2, input, q, options));
      if (!(a1.tuples == a2.tuples)) {
        return std::optional<PropertyViolation>(PropertyViolation{
            "certain answers differ for " + q.ToString() + " on " +
            input.ToString() + ": " + a1.ToString() + " vs " +
            a2.ToString()});
      }
    }
  }
  return std::optional<PropertyViolation>{};
}

std::vector<ConjunctiveQuery> PerRelationQueries(const Schema& schema) {
  std::vector<ConjunctiveQuery> out;
  for (const RelationSymbol& rel : schema.relations()) {
    ConjunctiveQuery q;
    q.name = "Probe_" + rel.name;
    std::vector<Term> terms;
    for (uint32_t i = 0; i < rel.arity; ++i) {
      VarId v = InternVar("?probe" + std::to_string(i));
      q.head.push_back(v);
      terms.push_back(Term::Var(v));
    }
    q.atoms = {Atom(rel.name, std::move(terms))};
    out.push_back(std::move(q));
  }
  return out;
}

}  // namespace mapinv
