/// \file properties.h
/// \brief Semantic checkers for the paper's inverse notions.
///
/// Deciding the defining conditions exactly (e.g. M ∘ M' = Id⊆ over *all*
/// instance pairs) involves second-order quantification, so this module
/// provides the operational checks used throughout the literature, all built
/// on canonical chase instances:
///
///  * C-recovery soundness (Definition 3.2) on concrete instances/queries:
///    certain_{M∘M'}(Q, I) ⊆ Q(I), with the composition's certain answers
///    computed through the canonical round trip.
///  * Recovery dominance (Definition 3.4's comparison): certain answers of
///    one recovery contain the other's, per query and instance.
///  * Fagin-identity round trip: the null-free certain part of
///    chase-back(chase-forward(I)) equals I — the operational form of
///    M ∘ M' = Id⊆ on I [10].
///  * Subset / unique-solutions properties of tgd mappings [10]: checked
///    through homomorphisms between oblivious-chase canonical instances
///    (Sol(I₂) ⊆ Sol(I₁) ⟺ chase(I₁) → chase(I₂)).
///  * Data-exchange equivalence I₁ ~_M I₂ (Section 3.1): homomorphic
///    equivalence of the oblivious-chase canonical instances.
///  * Conjunctive-query equivalence of reverse mappings (Lemma 4.1/4.3) on
///    sampled inputs and query sets.

#ifndef MAPINV_CHECK_PROPERTIES_H_
#define MAPINV_CHECK_PROPERTIES_H_

#include <optional>
#include <string>
#include <vector>

#include "base/status.h"
#include "chase/round_trip.h"
#include "logic/mapping.h"

namespace mapinv {

/// \brief A witness that some checked property failed.
struct PropertyViolation {
  std::string description;
};

/// \brief Checks Definition 3.2 on the given instances and source queries:
/// certain_{M∘M'}(Q, I) ⊆ Q(I). Returns a violation witness or nullopt.
Result<std::optional<PropertyViolation>> CheckCRecovery(
    const TgdMapping& mapping, const ReverseMapping& reverse,
    const std::vector<Instance>& sources,
    const std::vector<ConjunctiveQuery>& queries,
    const ExecutionOptions& options = {});

/// \brief Checks that `better` dominates `worse` as a recovery of `mapping`
/// on the samples: certain_{M∘worse}(Q,I) ⊆ certain_{M∘better}(Q,I).
Result<std::optional<PropertyViolation>> CheckRecoveryDominance(
    const TgdMapping& mapping, const ReverseMapping& better,
    const ReverseMapping& worse, const std::vector<Instance>& sources,
    const std::vector<ConjunctiveQuery>& queries,
    const ExecutionOptions& options = {});

/// \brief Operational Fagin-identity check on one instance: the facts
/// shared by all round-trip worlds, restricted to null-free tuples, must be
/// exactly the facts of `source`. True for every source instance iff M' acts
/// as a Fagin-inverse along canonical exchanges.
Result<bool> RoundTripIsIdentity(const TgdMapping& mapping,
                                 const ReverseMapping& reverse,
                                 const Instance& source,
                                 const ExecutionOptions& options = {});

/// \brief Sol(I₂) ⊆ Sol(I₁) for a tgd mapping — decided via a homomorphism
/// from the oblivious chase of I₁ into the oblivious chase of I₂.
Result<bool> SolutionsContained(const TgdMapping& mapping, const Instance& i1,
                                const Instance& i2,
                                const ExecutionOptions& options = {});

/// \brief The subset property of [10] on a pair: Sol(I₂) ⊆ Sol(I₁) implies
/// I₁ ⊆ I₂. A tgd mapping is Fagin-invertible iff this holds for all pairs.
Result<bool> SubsetPropertyHolds(const TgdMapping& mapping, const Instance& i1,
                                 const Instance& i2,
                                 const ExecutionOptions& options = {});

/// \brief The unique-solutions property of [10] on a pair: Sol(I₁) = Sol(I₂)
/// implies I₁ = I₂.
Result<bool> UniqueSolutionsPropertyHolds(const TgdMapping& mapping,
                                          const Instance& i1,
                                          const Instance& i2,
                                          const ExecutionOptions& options = {});

/// \brief Data-exchange equivalence I₁ ~_M I₂ (Section 3.1): the two
/// instances have the same space of solutions under the tgd mapping.
Result<bool> DataExchangeEquivalent(const TgdMapping& mapping,
                                    const Instance& i1, const Instance& i2,
                                    const ExecutionOptions& options = {});

/// \brief Conjunctive-query equivalence of two reverse mappings on sampled
/// inputs (instances over their shared premise schema) and target queries
/// (over their shared conclusion schema): certain answers must coincide.
Result<std::optional<PropertyViolation>> CheckCqEquivalentReverse(
    const ReverseMapping& m1, const ReverseMapping& m2,
    const std::vector<Instance>& inputs,
    const std::vector<ConjunctiveQuery>& queries,
    const ExecutionOptions& options = {});

/// \brief Builds, for every relation of `schema`, the identity projection
/// query R(x₁,...,x_k) with all positions free — the standard probe set for
/// recovery checks.
std::vector<ConjunctiveQuery> PerRelationQueries(const Schema& schema);

}  // namespace mapinv

#endif  // MAPINV_CHECK_PROPERTIES_H_
