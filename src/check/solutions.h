/// \file solutions.h
/// \brief Direct satisfaction checks: is (I, J) in the mapping?
///
/// The chase *constructs* solutions; these helpers *verify* them, which is
/// what the semantic definitions of Section 2 need: (I, J) ∈ M iff the pair
/// satisfies every dependency of M. For tgds and reverse dependencies this
/// is decidable by homomorphism search; for plain SO-tgds it requires
/// guessing function interpretations and is implemented through the Skolem
/// chase (J is a solution iff the canonical instance maps into it *and*
/// J's interpretation choice exists — we expose the standard sufficient
/// check via universality).
///
/// These are the building blocks for the Fagin-identity witness checks:
/// Id⊆ ⊆ M∘M' holds on a pair (I₁, I₂) whenever the canonical solution K of
/// I₁ satisfies (K, I₂) ∈ M' — a sound (canonical-witness) test.

#ifndef MAPINV_CHECK_SOLUTIONS_H_
#define MAPINV_CHECK_SOLUTIONS_H_

#include "base/status.h"
#include "engine/execution_options.h"
#include "data/instance.h"
#include "logic/mapping.h"

namespace mapinv {

/// \brief True iff (source, target) satisfies every tgd of the mapping:
/// each premise homomorphism extends to a conclusion homomorphism.
/// `stats` (optional) receives the homomorphism-search counters.
Result<bool> SatisfiesTgds(const TgdMapping& mapping, const Instance& source,
                           const Instance& target, ExecStats* stats = nullptr);

/// \brief True iff (input, output) satisfies every reverse dependency:
/// each guarded premise homomorphism (C(·), ≠ respected) has some disjunct
/// whose equalities hold and whose atoms embed into `output`.
Result<bool> SatisfiesReverseDeps(const ReverseMapping& mapping,
                                  const Instance& input,
                                  const Instance& output,
                                  ExecStats* stats = nullptr);

/// \brief Sound canonical-witness check that (i1, i2) ∈ M ∘ M': chases i1
/// forward to the canonical solution K and tests (K, i2) ∈ M'. "true" is
/// definitive; "false" only means the canonical witness fails (some other
/// solution of i1 could still work — does not occur for the maximum
/// recoveries produced by this library, which are monotone in K).
Result<bool> InCompositionViaCanonicalWitness(const TgdMapping& mapping,
                                              const ReverseMapping& reverse,
                                              const Instance& i1,
                                              const Instance& i2,
                                              const ExecutionOptions& options = {});

}  // namespace mapinv

#endif  // MAPINV_CHECK_SOLUTIONS_H_
