#include "check/solutions.h"

#include <memory>

#include "chase/chase_tgd.h"
#include "eval/hom.h"
#include "eval/hom_plan.h"

namespace mapinv {

Result<bool> SatisfiesTgds(const TgdMapping& mapping, const Instance& source,
                           const Instance& target, ExecStats* stats) {
  HomSearch premise_search(source);
  premise_search.set_stats(stats);
  HomSearch conclusion_search(target);
  conclusion_search.set_stats(stats);
  for (const Tgd& tgd : mapping.tgds) {
    // The conclusion is checked once per premise homomorphism; compile its
    // plan against the frontier once, up front.
    const std::vector<VarId> frontier_vars = tgd.FrontierVars();
    MAPINV_ASSIGN_OR_RETURN(
        std::shared_ptr<const HomPlan> conclusion_plan,
        conclusion_search.GetPlanForVars(tgd.conclusion, HomConstraints{},
                                         frontier_vars));
    bool all_extend = true;
    std::vector<Value> frontier;  // ordered as the plan demands
    MAPINV_RETURN_NOT_OK(premise_search.ForEachHom(
        tgd.premise, HomConstraints{}, Assignment{},
        [&](const Assignment& h) {
          frontier.clear();
          for (VarId v : conclusion_plan->fixed_vars) {
            frontier.push_back(h.at(v));
          }
          Result<bool> extends = conclusion_search.ExistsHomWithPlanValues(
              *conclusion_plan, frontier);
          if (!extends.ok() || !*extends) {
            all_extend = false;
            return false;  // stop enumeration
          }
          return true;
        }));
    if (!all_extend) return false;
  }
  return true;
}

Result<bool> SatisfiesReverseDeps(const ReverseMapping& mapping,
                                  const Instance& input,
                                  const Instance& output, ExecStats* stats) {
  HomSearch premise_search(input);
  premise_search.set_stats(stats);
  HomSearch conclusion_search(output);
  conclusion_search.set_stats(stats);
  for (const ReverseDependency& dep : mapping.deps) {
    HomConstraints constraints;
    constraints.constant_vars.insert(dep.constant_vars.begin(),
                                     dep.constant_vars.end());
    constraints.inequalities = dep.inequalities;
    bool all_satisfied = true;
    MAPINV_RETURN_NOT_OK(premise_search.ForEachHom(
        dep.premise, constraints, Assignment{}, [&](const Assignment& h) {
          for (const ReverseDisjunct& d : dep.disjuncts) {
            bool equalities_hold = true;
            for (const VarPair& eq : d.equalities) {
              if (h.at(eq.first) != h.at(eq.second)) {
                equalities_hold = false;
                break;
              }
            }
            if (!equalities_hold) continue;
            Assignment fixed;
            for (VarId v : CollectDistinctVars(d.atoms)) {
              auto it = h.find(v);
              if (it != h.end()) fixed.emplace(v, it->second);
            }
            Result<bool> embeds =
                conclusion_search.ExistsHom(d.atoms, HomConstraints{}, fixed);
            if (embeds.ok() && *embeds) return true;  // this trigger is fine
          }
          all_satisfied = false;
          return false;  // violated trigger: stop
        }));
    if (!all_satisfied) return false;
  }
  return true;
}

Result<bool> InCompositionViaCanonicalWitness(const TgdMapping& mapping,
                                              const ReverseMapping& reverse,
                                              const Instance& i1,
                                              const Instance& i2,
                                              const ExecutionOptions& options) {
  MAPINV_ASSIGN_OR_RETURN(Instance canonical, ChaseTgds(mapping, i1, options));
  return SatisfiesReverseDeps(reverse, canonical, i2, options.stats);
}

}  // namespace mapinv
