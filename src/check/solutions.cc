#include "check/solutions.h"

#include "chase/chase_tgd.h"
#include "eval/hom.h"

namespace mapinv {

Result<bool> SatisfiesTgds(const TgdMapping& mapping, const Instance& source,
                           const Instance& target) {
  HomSearch premise_search(source);
  HomSearch conclusion_search(target);
  for (const Tgd& tgd : mapping.tgds) {
    bool all_extend = true;
    MAPINV_RETURN_NOT_OK(premise_search.ForEachHom(
        tgd.premise, HomConstraints{}, Assignment{},
        [&](const Assignment& h) {
          Assignment frontier;
          for (VarId v : tgd.FrontierVars()) frontier.emplace(v, h.at(v));
          Result<bool> extends =
              conclusion_search.ExistsHom(tgd.conclusion, HomConstraints{},
                                          frontier);
          if (!extends.ok() || !*extends) {
            all_extend = false;
            return false;  // stop enumeration
          }
          return true;
        }));
    if (!all_extend) return false;
  }
  return true;
}

Result<bool> SatisfiesReverseDeps(const ReverseMapping& mapping,
                                  const Instance& input,
                                  const Instance& output) {
  HomSearch premise_search(input);
  HomSearch conclusion_search(output);
  for (const ReverseDependency& dep : mapping.deps) {
    HomConstraints constraints;
    constraints.constant_vars.insert(dep.constant_vars.begin(),
                                     dep.constant_vars.end());
    constraints.inequalities = dep.inequalities;
    bool all_satisfied = true;
    MAPINV_RETURN_NOT_OK(premise_search.ForEachHom(
        dep.premise, constraints, Assignment{}, [&](const Assignment& h) {
          for (const ReverseDisjunct& d : dep.disjuncts) {
            bool equalities_hold = true;
            for (const VarPair& eq : d.equalities) {
              if (h.at(eq.first) != h.at(eq.second)) {
                equalities_hold = false;
                break;
              }
            }
            if (!equalities_hold) continue;
            Assignment fixed;
            for (VarId v : CollectDistinctVars(d.atoms)) {
              auto it = h.find(v);
              if (it != h.end()) fixed.emplace(v, it->second);
            }
            Result<bool> embeds =
                conclusion_search.ExistsHom(d.atoms, HomConstraints{}, fixed);
            if (embeds.ok() && *embeds) return true;  // this trigger is fine
          }
          all_satisfied = false;
          return false;  // violated trigger: stop
        }));
    if (!all_satisfied) return false;
  }
  return true;
}

Result<bool> InCompositionViaCanonicalWitness(const TgdMapping& mapping,
                                              const ReverseMapping& reverse,
                                              const Instance& i1,
                                              const Instance& i2,
                                              const ExecutionOptions& options) {
  MAPINV_ASSIGN_OR_RETURN(Instance canonical, ChaseTgds(mapping, i1, options));
  return SatisfiesReverseDeps(reverse, canonical, i2);
}

}  // namespace mapinv
