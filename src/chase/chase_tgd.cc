#include "chase/chase_tgd.h"

#include "chase/fire_plan.h"
#include "engine/failpoint.h"
#include "engine/parallel_chase.h"
#include "engine/trace.h"
#include "eval/hom.h"
#include "eval/hom_plan.h"

namespace mapinv {

namespace {
FailPoint fp_chase_entry("chase_tgds/entry");
FailPoint fp_chase_fire("chase_tgds/fire");
}  // namespace

Result<Instance> ChaseTgds(const TgdMapping& mapping, const Instance& source,
                           const ExecutionOptions& options) {
  ScopedTraceSpan span(options, "chase_tgds");
  MAPINV_FAILPOINT(fp_chase_entry);
  ExecDeadline entry_deadline(options.deadline_ms);
  const ExecDeadline& deadline = CarriedDeadline(options, entry_deadline);
  SymbolContext& symbols = ResolveSymbols(options, source);
  Instance target(mapping.target);
  HomSearch search(source);
  search.set_stats(options.stats);
  HomSearch target_search(target);
  target_search.set_stats(options.stats);
  size_t created = 0;
  std::vector<Value> fresh;    // per-firing nulls, one per existential var
  std::vector<Value> scratch;  // reused row buffer for AddRow
  // In kPartial mode exhaustion degrades at whole-trigger granularity: the
  // current trigger's conclusion atoms all land before the loop stops, so
  // the returned instance is the chase output of a trigger-list prefix — a
  // sound under-approximation of the universal solution.
  bool cut_short = false;
  for (const Tgd& tgd : mapping.tgds) {
    // Collect triggers first: firing only adds target facts, so the trigger
    // set over the (source-only) premise is not affected by firing order.
    // Collection may fan out across threads; the trigger list comes back in
    // the canonical sequential order, and the firing phase below is
    // sequential, so fresh nulls are assigned deterministically.
    std::vector<Assignment> triggers;
    {
      ScopedTraceSpan collect_span(options, "collect_triggers");
      Result<std::vector<Assignment>> collected = CollectTriggers(
          search, source, tgd.premise, HomConstraints{}, options, deadline);
      if (!collected.ok()) {
        if (DegradeToPartial(options, collected.status())) break;
        return collected.status();
      }
      triggers = std::move(collected).ValueOrDie();
    }
    ScopedTraceSpan fire_span(options, "fire");
    // Per-tgd invariants hoisted out of the trigger loop: the frontier /
    // existential variable sets, the compiled conclusion atoms, and the
    // conclusion plan (compiled once against the frontier; the satisfaction
    // check below runs it per trigger without rebuilding the plan key).
    const std::vector<VarId> frontier_vars = tgd.FrontierVars();
    const std::vector<VarId> existential_vars = tgd.ExistentialVars();
    MAPINV_ASSIGN_OR_RETURN(
        const std::vector<FireAtom> fire_atoms,
        CompileFireAtoms(tgd.conclusion, target.schema(), existential_vars));
    std::shared_ptr<const HomPlan> conclusion_plan;
    if (!options.oblivious && !triggers.empty()) {
      MAPINV_ASSIGN_OR_RETURN(
          conclusion_plan,
          target_search.GetPlanForVars(tgd.conclusion, HomConstraints{},
                                       frontier_vars));
    }
    std::vector<Value> frontier_values;  // ordered as conclusion_plan demands
    for (const Assignment& h : triggers) {
      if (Status poll = PollPhaseInterrupt(options, deadline, "chase_tgds");
          !poll.ok()) {
        if (DegradeToPartial(options, poll)) {
          cut_short = true;
          break;
        }
        return poll;
      }
      MAPINV_FAILPOINT(fp_chase_fire);
      if (!options.oblivious) {
        frontier_values.clear();
        for (VarId v : conclusion_plan->fixed_vars) {
          frontier_values.push_back(h.at(v));
        }
        MAPINV_ASSIGN_OR_RETURN(
            bool satisfied,
            target_search.ExistsHomWithPlanValues(*conclusion_plan,
                                                  frontier_values));
        if (satisfied) continue;
      }
      // Fire: frontier variables keep their bindings, existential variables
      // get fresh nulls (fresh per firing, in declaration order — the same
      // order the pre-arena engine assigned them).
      fresh.clear();
      for (size_t i = 0; i < existential_vars.size(); ++i) {
        fresh.push_back(Value::FreshNull(symbols));
      }
      if (options.stats != nullptr) {
        options.stats->chase_steps.fetch_add(1, std::memory_order_relaxed);
      }
      for (const FireAtom& fa : fire_atoms) {
        BuildFireRow(fa, h, fresh, &scratch);
        MAPINV_ASSIGN_OR_RETURN(bool added,
                                target.AddRow(fa.relation, scratch));
        if (added) ++created;
      }
      // Checked after the whole trigger fires (not per atom), so a partial
      // stop never leaves a half-fired conclusion; overshoot is bounded by
      // one trigger's conclusion atoms.
      if (created > options.max_new_facts) {
        Status exhausted =
            PhaseExhausted("chase_tgds",
                           "exceeded max_new_facts = " +
                               std::to_string(options.max_new_facts));
        if (DegradeToPartial(options, exhausted)) {
          cut_short = true;
          break;
        }
        return exhausted;
      }
    }
    if (cut_short) break;
  }
  if (options.stats != nullptr) {
    options.stats->ObserveArenaBytes(target.ArenaBytes());
  }
  return target;
}

Result<AnswerSet> CertainAnswersTgd(const TgdMapping& mapping,
                                    const Instance& source,
                                    const ConjunctiveQuery& target_query,
                                    const ExecutionOptions& options) {
  MAPINV_ASSIGN_OR_RETURN(Instance canonical,
                          ChaseTgds(mapping, source, options));
  MAPINV_ASSIGN_OR_RETURN(AnswerSet answers,
                          EvaluateCq(target_query, canonical, options.stats));
  return answers.CertainOnly();
}

}  // namespace mapinv
