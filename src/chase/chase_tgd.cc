#include "chase/chase_tgd.h"

#include <string>

#include "chase/fire_plan.h"
#include "engine/failpoint.h"
#include "engine/parallel_chase.h"
#include "engine/trace.h"
#include "eval/hom.h"
#include "eval/hom_plan.h"

namespace mapinv {

namespace {
FailPoint fp_chase_entry("chase_tgds/entry");
FailPoint fp_chase_fire("chase_tgds/fire");
}  // namespace

Result<Instance> ChaseTgds(const TgdMapping& mapping, const Instance& source,
                           const ExecutionOptions& options) {
  ScopedTraceSpan span(options, "chase_tgds");
  MAPINV_FAILPOINT(fp_chase_entry);
  ExecDeadline entry_deadline(options.deadline_ms);
  const ExecDeadline& deadline = CarriedDeadline(options, entry_deadline);
  SymbolContext& symbols = ResolveSymbols(options, source);
  Instance target(mapping.target);
  if (options.memory_budget_bytes > 0) {
    target.SetMemoryBudget(options.memory_budget_bytes, options.spill_dir,
                           options.stats);
  }
  HomSearch search(source);
  search.set_stats(options.stats);
  search.set_vector_max_plan_steps(options.vector_max_plan_steps);
  HomSearch target_search(target);
  target_search.set_stats(options.stats);
  target_search.set_vector_max_plan_steps(options.vector_max_plan_steps);
  size_t created = 0;
  std::vector<Value> fresh;    // per-firing nulls, one per existential var
  std::vector<Value> scratch;  // reused row buffer for AddRow
  // In kPartial mode exhaustion degrades at whole-trigger granularity: the
  // current trigger's conclusion atoms all land before the loop stops, so
  // the returned instance is the chase output of a trigger-list prefix — a
  // sound under-approximation of the universal solution.
  bool cut_short = false;
  for (const Tgd& tgd : mapping.tgds) {
    // Collect triggers first: firing only adds target facts, so the trigger
    // set over the (source-only) premise is not affected by firing order.
    // Collection may fan out across threads; the trigger batch comes back in
    // the canonical sequential order, and the firing phase below is
    // sequential, so fresh nulls are assigned deterministically.
    TriggerBatch triggers;
    {
      ScopedTraceSpan collect_span(options, "collect_triggers");
      Result<TriggerBatch> collected = CollectTriggers(
          search, source, tgd.premise, HomConstraints{}, options, deadline);
      if (!collected.ok()) {
        if (DegradeToPartial(options, collected.status())) break;
        return collected.status();
      }
      triggers = std::move(collected).ValueOrDie();
    }
    ScopedTraceSpan fire_span(options, "fire");
    // Per-tgd invariants hoisted out of the trigger loop: the frontier /
    // existential variable sets, the compiled (column-indexed) conclusion
    // atoms, and — on the per-trigger path — the conclusion plan (compiled
    // once against the frontier; the satisfaction check runs it per trigger
    // without rebuilding the plan key).
    const std::vector<VarId> frontier_vars = tgd.FrontierVars();
    const std::vector<VarId> existential_vars = tgd.ExistentialVars();
    MAPINV_ASSIGN_OR_RETURN(
        const std::vector<FireAtomCols> fire_atoms,
        CompileFireAtomsCols(tgd.conclusion, target.schema(), existential_vars,
                             triggers.vars));
    const size_t num_ex = existential_vars.size();
    // Bulk eligibility: the batch dedup pass of AddRows subsumes the
    // per-trigger satisfaction probe exactly when the conclusion is
    // existential-free (a trigger is satisfied iff firing it adds nothing);
    // the oblivious chase never probes at all. Either way the fire loop can
    // assemble vector_batch triggers' rows and append them in one pass per
    // relation, with identical output, chase_steps, and fresh-null labels.
    const bool bulk = options.vectorized && options.vector_batch > 0 &&
                      (options.oblivious || num_ex == 0);
    std::shared_ptr<const HomPlan> conclusion_plan;
    std::vector<size_t> frontier_cols;  // fixed_vars -> trigger columns
    if (!options.oblivious && !bulk && triggers.rows > 0) {
      MAPINV_ASSIGN_OR_RETURN(
          conclusion_plan,
          target_search.GetPlanForVars(tgd.conclusion, HomConstraints{},
                                       frontier_vars));
      frontier_cols.reserve(conclusion_plan->fixed_vars.size());
      for (VarId v : conclusion_plan->fixed_vars) {
        frontier_cols.push_back(triggers.ColumnOf(v));
      }
    }
    if (bulk) {
      const size_t fire_batch = options.vector_batch;
      BulkFireScratch bulk_scratch =
          MakeBulkFireScratch(fire_atoms, target.schema());
      std::vector<Value> fresh_batch;  // num_ex nulls per trigger, in order
      for (size_t base = 0; base < triggers.rows && !cut_short;
           base += fire_batch) {
        const size_t bcount = std::min(fire_batch, triggers.rows - base);
        // Interrupts and failpoints at batch granularity: failure precedes
        // the batch's mutations, so a stop is always a whole-batch prefix.
        if (Status poll = PollPhaseInterrupt(options, deadline, "chase_tgds");
            !poll.ok()) {
          if (DegradeToPartial(options, poll)) {
            cut_short = true;
            break;
          }
          return poll;
        }
        MAPINV_FAILPOINT(fp_chase_fire);
        if (created + bcount * fire_atoms.size() > options.max_new_facts) {
          // Near the budget edge, fall back to per-trigger appends so the
          // stopping trigger is exactly the scalar path's. Firing
          // unconditionally is equivalent: a satisfied trigger's rows all
          // dedup away, leaving created and chase_steps untouched.
          for (size_t t = base; t < base + bcount; ++t) {
            const Value* row = triggers.Row(t);
            fresh.clear();
            for (size_t i = 0; i < num_ex; ++i) {
              fresh.push_back(Value::FreshNull(symbols));
            }
            bool any_added = false;
            for (const FireAtomCols& fa : fire_atoms) {
              BuildFireRowCols(fa, row, fresh.data(), &scratch);
              MAPINV_ASSIGN_OR_RETURN(bool added,
                                      target.AddRow(fa.relation, scratch));
              if (added) {
                ++created;
                any_added = true;
              }
            }
            if ((options.oblivious || any_added) && options.stats != nullptr) {
              options.stats->chase_steps.fetch_add(1,
                                                   std::memory_order_relaxed);
            }
            if (created > options.max_new_facts) {
              Status exhausted =
                  PhaseExhausted("chase_tgds",
                                 "exceeded max_new_facts = " +
                                     std::to_string(options.max_new_facts));
              if (DegradeToPartial(options, exhausted)) {
                cut_short = true;
                break;
              }
              return exhausted;
            }
          }
          continue;
        }
        bulk_scratch.BeginBatch(bcount);
        fresh_batch.clear();
        for (size_t i = 0; i < bcount * num_ex; ++i) {
          fresh_batch.push_back(Value::FreshNull(symbols));
        }
        for (size_t t = 0; t < bcount; ++t) {
          const Value* row = triggers.Row(base + t);
          const Value* tf = fresh_batch.data() + t * num_ex;
          for (size_t ai = 0; ai < fire_atoms.size(); ++ai) {
            BuildFireRowCols(fire_atoms[ai], row, tf, &scratch);
            bulk_scratch.Append(bulk_scratch.atom_buf[ai],
                                static_cast<uint32_t>(t), scratch.data());
          }
        }
        MAPINV_ASSIGN_OR_RETURN(
            size_t inserted,
            FlushBulkFire(&target, &bulk_scratch,
                          [](RelationId, TupleRef, uint32_t) {}));
        created += inserted;
        if (options.stats != nullptr) {
          options.stats->bulk_rows_appended.fetch_add(
              inserted, std::memory_order_relaxed);
          uint64_t steps = 0;
          if (options.oblivious) {
            steps = bcount;
          } else {
            for (uint8_t f : bulk_scratch.fired) steps += f;
          }
          options.stats->chase_steps.fetch_add(steps,
                                               std::memory_order_relaxed);
        }
      }
      if (cut_short) break;
      continue;
    }
    std::vector<Value> frontier_values;  // ordered as conclusion_plan demands
    for (size_t t = 0; t < triggers.rows; ++t) {
      if (Status poll = PollPhaseInterrupt(options, deadline, "chase_tgds");
          !poll.ok()) {
        if (DegradeToPartial(options, poll)) {
          cut_short = true;
          break;
        }
        return poll;
      }
      MAPINV_FAILPOINT(fp_chase_fire);
      const Value* row = triggers.Row(t);
      if (!options.oblivious) {
        frontier_values.clear();
        for (size_t col : frontier_cols) frontier_values.push_back(row[col]);
        MAPINV_ASSIGN_OR_RETURN(
            bool satisfied,
            target_search.ExistsHomWithPlanValues(*conclusion_plan,
                                                  frontier_values));
        if (satisfied) continue;
      }
      // Fire: frontier variables keep their bindings, existential variables
      // get fresh nulls (fresh per firing, in declaration order — the same
      // order the pre-arena engine assigned them).
      fresh.clear();
      for (size_t i = 0; i < num_ex; ++i) {
        fresh.push_back(Value::FreshNull(symbols));
      }
      if (options.stats != nullptr) {
        options.stats->chase_steps.fetch_add(1, std::memory_order_relaxed);
      }
      for (const FireAtomCols& fa : fire_atoms) {
        BuildFireRowCols(fa, row, fresh.data(), &scratch);
        MAPINV_ASSIGN_OR_RETURN(bool added,
                                target.AddRow(fa.relation, scratch));
        if (added) ++created;
      }
      // Checked after the whole trigger fires (not per atom), so a partial
      // stop never leaves a half-fired conclusion; overshoot is bounded by
      // one trigger's conclusion atoms.
      if (created > options.max_new_facts) {
        Status exhausted =
            PhaseExhausted("chase_tgds",
                           "exceeded max_new_facts = " +
                               std::to_string(options.max_new_facts));
        if (DegradeToPartial(options, exhausted)) {
          cut_short = true;
          break;
        }
        return exhausted;
      }
    }
    if (cut_short) break;
  }
  if (options.stats != nullptr) {
    options.stats->ObserveArenaBytes(target.ArenaBytes());
    options.stats->ObserveResidentBytes(target.ResidentBytes());
  }
  return target;
}

Result<AnswerSet> CertainAnswersTgd(const TgdMapping& mapping,
                                    const Instance& source,
                                    const ConjunctiveQuery& target_query,
                                    const ExecutionOptions& options) {
  MAPINV_ASSIGN_OR_RETURN(Instance canonical,
                          ChaseTgds(mapping, source, options));
  MAPINV_ASSIGN_OR_RETURN(AnswerSet answers,
                          EvaluateCq(target_query, canonical, options.stats));
  return answers.CertainOnly();
}

}  // namespace mapinv
