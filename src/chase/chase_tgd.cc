#include "chase/chase_tgd.h"

#include "eval/hom.h"

namespace mapinv {

namespace {

// True if the tgd conclusion is satisfied in `target` by some extension of
// the frontier bindings in `h`. `target_search` is the incremental search
// over the growing target instance.
Result<bool> ConclusionSatisfied(const Tgd& tgd, const Assignment& h,
                                 const HomSearch& target_search) {
  Assignment frontier_bindings;
  for (VarId v : tgd.FrontierVars()) frontier_bindings.emplace(v, h.at(v));
  return target_search.ExistsHom(tgd.conclusion, HomConstraints{},
                                 frontier_bindings);
}

}  // namespace

Result<Instance> ChaseTgds(const TgdMapping& mapping, const Instance& source,
                           const ChaseOptions& options) {
  Instance target(mapping.target);
  HomSearch search(source);
  HomSearch target_search(target);
  size_t created = 0;
  for (const Tgd& tgd : mapping.tgds) {
    // Collect triggers first: firing only adds target facts, so the trigger
    // set over the (source-only) premise is not affected by firing order.
    std::vector<Assignment> triggers;
    MAPINV_RETURN_NOT_OK(search.ForEachHom(tgd.premise, HomConstraints{},
                                           Assignment{},
                                           [&](const Assignment& h) {
                                             triggers.push_back(h);
                                             return true;
                                           }));
    for (const Assignment& h : triggers) {
      if (!options.oblivious) {
        MAPINV_ASSIGN_OR_RETURN(bool satisfied,
                                ConclusionSatisfied(tgd, h, target_search));
        if (satisfied) continue;
      }
      // Fire: frontier variables keep their bindings, existential variables
      // get fresh nulls (fresh per firing).
      Assignment extended = h;
      for (VarId v : tgd.ExistentialVars()) {
        extended.emplace(v, Value::FreshNull());
      }
      for (const Atom& atom : tgd.conclusion) {
        Tuple t;
        t.reserve(atom.terms.size());
        for (const Term& term : atom.terms) {
          t.push_back(extended.at(term.var()));
        }
        MAPINV_ASSIGN_OR_RETURN(
            bool added, target.Add(RelationText(atom.relation), std::move(t)));
        if (added && ++created > options.max_new_facts) {
          return Status::ResourceExhausted(
              "chase exceeded max_new_facts = " +
              std::to_string(options.max_new_facts));
        }
      }
    }
  }
  return target;
}

Result<AnswerSet> CertainAnswersTgd(const TgdMapping& mapping,
                                    const Instance& source,
                                    const ConjunctiveQuery& target_query,
                                    const ChaseOptions& options) {
  MAPINV_ASSIGN_OR_RETURN(Instance canonical,
                          ChaseTgds(mapping, source, options));
  MAPINV_ASSIGN_OR_RETURN(AnswerSet answers,
                          EvaluateCq(target_query, canonical));
  return answers.CertainOnly();
}

}  // namespace mapinv
