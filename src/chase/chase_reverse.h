/// \file chase_reverse.h
/// \brief Chasing reverse dependencies (the Section 4 inverse languages).
///
/// Reverse dependencies carry C(·) and inequalities in their premises —
/// handled as homomorphism side constraints — and, before
/// EliminateDisjunctions has run, disjunctive conclusions with equalities.
/// The *disjunctive chase* therefore produces a set of worlds: firing a
/// dependency whose conclusion has k applicable disjuncts forks the current
/// world k ways. Certain answers over the result are the intersection of the
/// per-world certain answers.
///
/// For the equality-and-disjunction-free output of CqMaximumRecovery (a
/// single conjunctive conclusion), the chase degenerates to the ordinary
/// one-world tgd chase — this is the paper's "same good properties for data
/// exchange as tgds" (Theorem 4.5 (1)).

#ifndef MAPINV_CHASE_CHASE_REVERSE_H_
#define MAPINV_CHASE_CHASE_REVERSE_H_

#include <vector>

#include "base/status.h"
#include "engine/execution_options.h"
#include "data/instance.h"
#include "eval/query_eval.h"
#include "logic/mapping.h"

namespace mapinv {

/// \brief Disjunctive chase of `input` (an instance of mapping.source, i.e.
/// the original target schema; nulls allowed) with the reverse dependencies.
///
/// Returns the resulting worlds over mapping.target (the original source
/// schema). An empty vector means the dependencies are unsatisfiable on
/// `input` (some trigger had no consistent disjunct in any world).
Result<std::vector<Instance>> ChaseReverseWorlds(
    const ReverseMapping& mapping, const Instance& input,
    const ExecutionOptions& options = {});

/// \brief One-world chase for disjunction-free reverse mappings (each
/// dependency has exactly one disjunct). Conclusion equalities are checked
/// against the trigger bindings; a violated equality makes the input
/// unsatisfiable (kMalformed).
Result<Instance> ChaseReverse(const ReverseMapping& mapping,
                              const Instance& input,
                              const ExecutionOptions& options = {});

/// \brief Certain answers of `query` over the worlds of the disjunctive
/// chase: ∩ over worlds of the null-free answers.
Result<AnswerSet> CertainAnswersReverse(const ReverseMapping& mapping,
                                        const Instance& input,
                                        const ConjunctiveQuery& query,
                                        const ExecutionOptions& options = {});

}  // namespace mapinv

#endif  // MAPINV_CHASE_CHASE_REVERSE_H_
