/// \file chase_tgd.h
/// \brief The chase for source-to-target tgds (data exchange, Section 2).
///
/// Given a TgdMapping M and a source instance I, the chase computes a
/// *canonical universal solution* J: a target instance such that (I, J) ∈ M
/// and every solution of I admits a homomorphism from J. Certain answers of
/// conjunctive queries are then the null-free tuples of Q(J) [11].
///
/// Because the dependencies are source-to-target, the chase is a single pass
/// over all triggers and always terminates.

#ifndef MAPINV_CHASE_CHASE_TGD_H_
#define MAPINV_CHASE_CHASE_TGD_H_

#include "base/status.h"
#include "data/instance.h"
#include "engine/execution_options.h"
#include "eval/query_eval.h"
#include "logic/mapping.h"

namespace mapinv {

/// \brief Chases `source` with the mapping's tgds; returns the canonical
/// target instance. With options.oblivious every trigger fires (fresh nulls
/// per firing); otherwise a trigger is skipped when its conclusion is
/// already satisfied by an extension of the trigger homomorphism.
///
/// Trigger enumeration parallelises across `options.threads`; the output
/// instance is bit-identical for every thread count (see docs/ENGINE.md).
Result<Instance> ChaseTgds(const TgdMapping& mapping, const Instance& source,
                           const ExecutionOptions& options = {});

/// \brief Certain answers of a conjunctive query over the target:
/// null-free tuples of Q(chase(I)).
Result<AnswerSet> CertainAnswersTgd(const TgdMapping& mapping,
                                    const Instance& source,
                                    const ConjunctiveQuery& target_query,
                                    const ExecutionOptions& options = {});

}  // namespace mapinv

#endif  // MAPINV_CHASE_CHASE_TGD_H_
