/// \file provenance.h
/// \brief Per-fired-tuple provenance for the incremental chase.
///
/// ChaseDelta records, for every target row it fires, the index of the tgd
/// whose trigger produced it. The table is a per-relation vector parallel to
/// the target's dense TupleRef space (append-only, like the arena itself),
/// so lookup is an index, not a hash probe. Rows that predate provenance
/// tracking — a base target handed in from a non-tracking chase — carry the
/// kBaseFact sentinel.
///
/// This is the bookkeeping DRed-style retraction needs: deleting a source
/// row invalidates exactly the fired tuples whose recorded tgd could have
/// consumed it, which a future delete path can over-approximate per tgd and
/// re-derive. Today the table powers introspection and the maintained-
/// solution counters.

#ifndef MAPINV_CHASE_PROVENANCE_H_
#define MAPINV_CHASE_PROVENANCE_H_

#include <cstdint>
#include <vector>

#include "data/instance.h"

namespace mapinv {

/// \brief Which tgd fired each target row. Copyable (plain vectors), so a
/// speculative refresh can work on a copy and commit only on success.
class ChaseProvenance {
 public:
  /// Rows not produced by a tracked firing (pre-existing target facts).
  static constexpr uint32_t kBaseFact = UINT32_MAX;

  /// Records that `ref` of `relation` was fired by tgd `tgd_index`. Gaps
  /// below `ref` (rows added outside tracking) are padded with kBaseFact.
  void Record(RelationId relation, TupleRef ref, uint32_t tgd_index) {
    if (relation >= by_relation_.size()) by_relation_.resize(relation + 1);
    std::vector<uint32_t>& rows = by_relation_[relation];
    if (rows.size() <= ref) rows.resize(ref + 1, kBaseFact);
    rows[ref] = tgd_index;
  }

  /// The tgd that fired `ref` of `relation`, or kBaseFact.
  uint32_t TgdFor(RelationId relation, TupleRef ref) const {
    if (relation >= by_relation_.size()) return kBaseFact;
    const std::vector<uint32_t>& rows = by_relation_[relation];
    return ref < rows.size() ? rows[ref] : kBaseFact;
  }

  /// Number of rows recorded with a real tgd index (excludes kBaseFact).
  size_t FiredCount() const {
    size_t n = 0;
    for (const auto& rows : by_relation_) {
      for (uint32_t t : rows) {
        if (t != kBaseFact) ++n;
      }
    }
    return n;
  }

 private:
  std::vector<std::vector<uint32_t>> by_relation_;  // indexed by RelationId
};

}  // namespace mapinv

#endif  // MAPINV_CHASE_PROVENANCE_H_
