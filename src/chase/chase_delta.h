/// \file chase_delta.h
/// \brief Incremental chase: delta-driven maintenance of a chased solution.
///
/// Source-to-target tgds never consume target facts, so the chase is
/// monotone in the source: appending rows to an already-chased source can
/// only *add* triggers, never retract or re-derive existing ones. ChaseDelta
/// exploits this. Given a target J = chase(M, I) and an extension I' ⊇ I
/// (rows appended past a DeltaWatermark taken over I), it collects only the
/// *delta triggers* — premise homomorphisms into I' touching at least one
/// appended row (CollectTriggersDelta) — and fires them into J in place.
/// The result equals chase(M, I') up to renaming of labelled nulls, because
/// any trigger order yields hom-equivalent canonical solutions; tests pin
/// the equivalence with hom-multiset oracles over every generated family.
///
/// Cost is driven by |delta|, not |I'|: each delta trigger pins one premise
/// atom to the appended slice, so an append of k rows into an n-row source
/// costs O(k · join-width) instead of the O(n · join-width) full re-chase
/// (bench/bench_chase_delta.cc measures the gap).
///
/// Every fired tuple's producing tgd is recorded in a ChaseProvenance side
/// table — the bookkeeping a future DRed-style deletion path needs to find
/// the tuples a retracted source row may have supported.

#ifndef MAPINV_CHASE_CHASE_DELTA_H_
#define MAPINV_CHASE_CHASE_DELTA_H_

#include "base/status.h"
#include "chase/provenance.h"
#include "data/instance.h"
#include "engine/execution_options.h"
#include "engine/parallel_chase.h"
#include "logic/mapping.h"

namespace mapinv {

/// \brief Fires the delta triggers of `mapping` over `source` (relative to
/// `base`, the watermark taken before the rows being absorbed were appended)
/// into `target`, which must hold the chase result over the pre-append
/// source. Returns true when every delta trigger was processed; false when
/// kPartial degradation stopped early (the target then holds a sound prefix
/// extension — callers deciding whether to advance their watermark should
/// treat false as "retry the whole delta later").
///
/// `provenance` (may be null) receives the producing tgd index of every row
/// fired. Satisfaction checks and fresh-null assignment follow ChaseTgds
/// exactly: with options.oblivious every delta trigger fires; otherwise a
/// trigger whose conclusion is already satisfied in the growing target is
/// skipped. Deterministic for a fixed (source, base, target) input,
/// independent of thread count.
Result<bool> ChaseDelta(const TgdMapping& mapping, const Instance& source,
                        const DeltaWatermark& base, Instance* target,
                        ChaseProvenance* provenance,
                        const ExecutionOptions& options = {});

}  // namespace mapinv

#endif  // MAPINV_CHASE_CHASE_DELTA_H_
