#include "chase/maintained.h"

#include <utility>

#include "chase/chase_delta.h"
#include "parser/parser.h"

namespace mapinv {

Result<size_t> MaintainedSolution::AppendText(std::string_view text) {
  MAPINV_ASSIGN_OR_RETURN(Instance delta,
                          ParseInstance(text, *mapping_->source));
  return AppendInstance(delta);
}

Result<size_t> MaintainedSolution::AppendInstance(const Instance& delta) {
  std::lock_guard<std::mutex> lock(mu_);
  const size_t before = source_.TotalSize();
  MAPINV_RETURN_NOT_OK(source_.UnionWith(delta));
  const size_t added = source_.TotalSize() - before;
  appended_rows_ += added;
  return added;
}

Result<std::string> MaintainedSolution::RefreshAndRender(
    const ExecutionOptions& base_options) {
  std::lock_guard<std::mutex> lock(mu_);
  ExecutionOptions options = base_options;
  options.symbols = &symbols_;
  // Speculate on a COW fork + provenance copy; commit both (and the
  // watermark) only when the whole outstanding delta was absorbed.
  Instance work = target_.Fork();
  ChaseProvenance provenance = provenance_;
  MAPINV_ASSIGN_OR_RETURN(
      bool complete,
      ChaseDelta(*mapping_, source_, watermark_, &work, &provenance, options));
  if (complete) {
    target_ = std::move(work);
    provenance_ = std::move(provenance);
    watermark_ = WatermarkOf(source_);
    ++refreshes_;
    return target_.ToString() + "\n";
  }
  ++partial_refreshes_;
  return work.ToString() + "\n";
}

Instance MaintainedSolution::SourceSnapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return source_.Snapshot();
}

Instance MaintainedSolution::TargetSnapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return target_.Snapshot();
}

MaintainedSolution::Counters MaintainedSolution::CountersSnapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  Counters counters;
  counters.refreshes = refreshes_;
  counters.partial_refreshes = partial_refreshes_;
  counters.appended_rows = appended_rows_;
  counters.fired_rows = provenance_.FiredCount();
  counters.source_rows = source_.TotalSize();
  counters.target_rows = target_.TotalSize();
  return counters;
}

}  // namespace mapinv
