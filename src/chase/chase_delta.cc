#include "chase/chase_delta.h"

#include <string>

#include "chase/fire_plan.h"
#include "engine/failpoint.h"
#include "engine/trace.h"
#include "eval/hom.h"
#include "eval/hom_plan.h"

namespace mapinv {

namespace {
FailPoint fp_delta_entry("chase_delta/entry");
FailPoint fp_delta_fire("chase_delta/fire");
}  // namespace

Result<bool> ChaseDelta(const TgdMapping& mapping, const Instance& source,
                        const DeltaWatermark& base, Instance* target,
                        ChaseProvenance* provenance,
                        const ExecutionOptions& options) {
  ScopedTraceSpan span(options, "chase_delta");
  MAPINV_FAILPOINT(fp_delta_entry);
  ExecDeadline entry_deadline(options.deadline_ms);
  const ExecDeadline& deadline = CarriedDeadline(options, entry_deadline);
  // The fresh-null scope must clear the appended source rows *and* the nulls
  // the base chase already placed in the target: an engine-scoped context
  // that restarted at zero would otherwise mint labels colliding with the
  // maintained solution it is extending.
  SymbolContext& symbols = ResolveSymbols(options, source);
  if (options.symbols != nullptr) {
    target->ForEachFact([&](RelationId, RowView row) {
      for (const Value& v : row) {
        if (v.is_null()) options.symbols->BumpNullPast(v.id());
      }
    });
  }
  HomSearch search(source);
  search.set_stats(options.stats);
  HomSearch target_search(*target);
  target_search.set_stats(options.stats);
  size_t created = 0;
  std::vector<Value> fresh;    // per-firing nulls, one per existential var
  std::vector<Value> scratch;  // reused row buffer for AddRow
  // Degradation mirrors ChaseTgds at whole-trigger granularity, with one
  // extra obligation: an incomplete absorption must be reported, because a
  // caller that advanced its watermark over a half-fired delta would lose
  // the unfired triggers forever. `degraded` feeds the return value.
  bool degraded = false;
  for (size_t tgd_index = 0; tgd_index < mapping.tgds.size(); ++tgd_index) {
    const Tgd& tgd = mapping.tgds[tgd_index];
    // Delta triggers only: premise homomorphisms whose image touches at
    // least one row appended past `base`. Firing cannot create new ones
    // (conclusions land in the target; premises read the source), so one
    // pass per tgd is complete, exactly as in the full chase.
    std::vector<Assignment> triggers;
    {
      ScopedTraceSpan collect_span(options, "collect_triggers_delta");
      Result<std::vector<Assignment>> collected =
          CollectTriggersDelta(search, source, tgd.premise, HomConstraints{},
                               base, options, deadline);
      if (!collected.ok()) {
        if (DegradeToPartial(options, collected.status())) {
          degraded = true;
          break;
        }
        return collected.status();
      }
      triggers = std::move(collected).ValueOrDie();
    }
    ScopedTraceSpan fire_span(options, "fire");
    const std::vector<VarId> frontier_vars = tgd.FrontierVars();
    const std::vector<VarId> existential_vars = tgd.ExistentialVars();
    MAPINV_ASSIGN_OR_RETURN(
        const std::vector<FireAtom> fire_atoms,
        CompileFireAtoms(tgd.conclusion, target->schema(), existential_vars));
    std::shared_ptr<const HomPlan> conclusion_plan;
    if (!options.oblivious && !triggers.empty()) {
      MAPINV_ASSIGN_OR_RETURN(
          conclusion_plan,
          target_search.GetPlanForVars(tgd.conclusion, HomConstraints{},
                                       frontier_vars));
    }
    std::vector<Value> frontier_values;  // ordered as conclusion_plan demands
    bool cut_short = false;
    for (const Assignment& h : triggers) {
      if (Status poll = PollPhaseInterrupt(options, deadline, "chase_delta");
          !poll.ok()) {
        if (DegradeToPartial(options, poll)) {
          cut_short = true;
          break;
        }
        return poll;
      }
      MAPINV_FAILPOINT(fp_delta_fire);
      if (!options.oblivious) {
        frontier_values.clear();
        for (VarId v : conclusion_plan->fixed_vars) {
          frontier_values.push_back(h.at(v));
        }
        MAPINV_ASSIGN_OR_RETURN(
            bool satisfied,
            target_search.ExistsHomWithPlanValues(*conclusion_plan,
                                                  frontier_values));
        if (satisfied) continue;
      }
      fresh.clear();
      for (size_t i = 0; i < existential_vars.size(); ++i) {
        fresh.push_back(Value::FreshNull(symbols));
      }
      if (options.stats != nullptr) {
        options.stats->chase_steps.fetch_add(1, std::memory_order_relaxed);
      }
      for (const FireAtom& fa : fire_atoms) {
        BuildFireRow(fa, h, fresh, &scratch);
        MAPINV_ASSIGN_OR_RETURN(bool added,
                                target->AddRow(fa.relation, scratch));
        if (added) {
          ++created;
          if (provenance != nullptr) {
            // AddRow appends, so the new row's dense ref is the last one.
            provenance->Record(
                fa.relation,
                static_cast<TupleRef>(target->NumRows(fa.relation) - 1),
                static_cast<uint32_t>(tgd_index));
          }
        }
      }
      // Whole-trigger granularity, as in ChaseTgds: a partial stop never
      // leaves a half-fired conclusion.
      if (created > options.max_new_facts) {
        Status exhausted =
            PhaseExhausted("chase_delta",
                           "exceeded max_new_facts = " +
                               std::to_string(options.max_new_facts));
        if (DegradeToPartial(options, exhausted)) {
          cut_short = true;
          break;
        }
        return exhausted;
      }
    }
    if (cut_short) {
      degraded = true;
      break;
    }
  }
  if (options.stats != nullptr) {
    options.stats->ObserveArenaBytes(target->ArenaBytes());
  }
  return !degraded;
}

}  // namespace mapinv
