#include "chase/chase_delta.h"

#include <string>

#include "chase/fire_plan.h"
#include "engine/failpoint.h"
#include "engine/trace.h"
#include "eval/hom.h"
#include "eval/hom_plan.h"

namespace mapinv {

namespace {
FailPoint fp_delta_entry("chase_delta/entry");
FailPoint fp_delta_fire("chase_delta/fire");
}  // namespace

Result<bool> ChaseDelta(const TgdMapping& mapping, const Instance& source,
                        const DeltaWatermark& base, Instance* target,
                        ChaseProvenance* provenance,
                        const ExecutionOptions& options) {
  ScopedTraceSpan span(options, "chase_delta");
  MAPINV_FAILPOINT(fp_delta_entry);
  ExecDeadline entry_deadline(options.deadline_ms);
  const ExecDeadline& deadline = CarriedDeadline(options, entry_deadline);
  // The fresh-null scope must clear the appended source rows *and* the nulls
  // the base chase already placed in the target: an engine-scoped context
  // that restarted at zero would otherwise mint labels colliding with the
  // maintained solution it is extending.
  SymbolContext& symbols = ResolveSymbols(options, source);
  if (options.symbols != nullptr) {
    target->ForEachFact([&](RelationId, RowView row) {
      for (const Value& v : row) {
        if (v.is_null()) options.symbols->BumpNullPast(v.id());
      }
    });
  }
  if (options.memory_budget_bytes > 0) {
    target->SetMemoryBudget(options.memory_budget_bytes, options.spill_dir,
                            options.stats);
  }
  HomSearch search(source);
  search.set_stats(options.stats);
  search.set_vector_max_plan_steps(options.vector_max_plan_steps);
  HomSearch target_search(*target);
  target_search.set_stats(options.stats);
  target_search.set_vector_max_plan_steps(options.vector_max_plan_steps);
  size_t created = 0;
  std::vector<Value> fresh;    // per-firing nulls, one per existential var
  std::vector<Value> scratch;  // reused row buffer for AddRow
  // Degradation mirrors ChaseTgds at whole-trigger granularity, with one
  // extra obligation: an incomplete absorption must be reported, because a
  // caller that advanced its watermark over a half-fired delta would lose
  // the unfired triggers forever. `degraded` feeds the return value.
  bool degraded = false;
  for (size_t tgd_index = 0; tgd_index < mapping.tgds.size(); ++tgd_index) {
    const Tgd& tgd = mapping.tgds[tgd_index];
    // Delta triggers only: premise homomorphisms whose image touches at
    // least one row appended past `base`. Firing cannot create new ones
    // (conclusions land in the target; premises read the source), so one
    // pass per tgd is complete, exactly as in the full chase.
    TriggerBatch triggers;
    {
      ScopedTraceSpan collect_span(options, "collect_triggers_delta");
      Result<TriggerBatch> collected =
          CollectTriggersDelta(search, source, tgd.premise, HomConstraints{},
                               base, options, deadline);
      if (!collected.ok()) {
        if (DegradeToPartial(options, collected.status())) {
          degraded = true;
          break;
        }
        return collected.status();
      }
      triggers = std::move(collected).ValueOrDie();
    }
    ScopedTraceSpan fire_span(options, "fire");
    const std::vector<VarId> frontier_vars = tgd.FrontierVars();
    const std::vector<VarId> existential_vars = tgd.ExistentialVars();
    MAPINV_ASSIGN_OR_RETURN(
        const std::vector<FireAtomCols> fire_atoms,
        CompileFireAtomsCols(tgd.conclusion, target->schema(),
                             existential_vars, triggers.vars));
    const size_t num_ex = existential_vars.size();
    // Bulk eligibility as in ChaseTgds: AddRows' batch dedup subsumes the
    // per-trigger satisfaction probe for existential-free conclusions, and
    // the oblivious chase never probes. Provenance comes from the AddRows
    // added-flags (each new row's dense ref is reconstructed from the
    // post-append row count), so the bulk path records exactly the rows the
    // per-trigger loop would.
    const bool bulk = options.vectorized && options.vector_batch > 0 &&
                      (options.oblivious || num_ex == 0);
    std::shared_ptr<const HomPlan> conclusion_plan;
    std::vector<size_t> frontier_cols;  // fixed_vars -> trigger columns
    if (!options.oblivious && !bulk && triggers.rows > 0) {
      MAPINV_ASSIGN_OR_RETURN(
          conclusion_plan,
          target_search.GetPlanForVars(tgd.conclusion, HomConstraints{},
                                       frontier_vars));
      frontier_cols.reserve(conclusion_plan->fixed_vars.size());
      for (VarId v : conclusion_plan->fixed_vars) {
        frontier_cols.push_back(triggers.ColumnOf(v));
      }
    }
    bool cut_short = false;
    if (bulk) {
      const size_t fire_batch = options.vector_batch;
      BulkFireScratch bulk_scratch =
          MakeBulkFireScratch(fire_atoms, target->schema());
      std::vector<Value> fresh_batch;  // num_ex nulls per trigger, in order
      auto record = [&](RelationId rel, TupleRef ref, uint32_t) {
        if (provenance != nullptr) {
          provenance->Record(rel, ref, static_cast<uint32_t>(tgd_index));
        }
      };
      for (size_t base_t = 0; base_t < triggers.rows && !cut_short;
           base_t += fire_batch) {
        const size_t bcount = std::min(fire_batch, triggers.rows - base_t);
        if (Status poll = PollPhaseInterrupt(options, deadline, "chase_delta");
            !poll.ok()) {
          if (DegradeToPartial(options, poll)) {
            cut_short = true;
            break;
          }
          return poll;
        }
        MAPINV_FAILPOINT(fp_delta_fire);
        if (created + bcount * fire_atoms.size() > options.max_new_facts) {
          // Budget-edge fallback, per trigger and exact (see ChaseTgds).
          for (size_t t = base_t; t < base_t + bcount; ++t) {
            const Value* row = triggers.Row(t);
            fresh.clear();
            for (size_t i = 0; i < num_ex; ++i) {
              fresh.push_back(Value::FreshNull(symbols));
            }
            bool any_added = false;
            for (const FireAtomCols& fa : fire_atoms) {
              BuildFireRowCols(fa, row, fresh.data(), &scratch);
              MAPINV_ASSIGN_OR_RETURN(bool added,
                                      target->AddRow(fa.relation, scratch));
              if (added) {
                ++created;
                any_added = true;
                record(fa.relation,
                       static_cast<TupleRef>(target->NumRows(fa.relation) - 1),
                       0);
              }
            }
            if ((options.oblivious || any_added) && options.stats != nullptr) {
              options.stats->chase_steps.fetch_add(1,
                                                   std::memory_order_relaxed);
            }
            if (created > options.max_new_facts) {
              Status exhausted =
                  PhaseExhausted("chase_delta",
                                 "exceeded max_new_facts = " +
                                     std::to_string(options.max_new_facts));
              if (DegradeToPartial(options, exhausted)) {
                cut_short = true;
                break;
              }
              return exhausted;
            }
          }
          continue;
        }
        bulk_scratch.BeginBatch(bcount);
        fresh_batch.clear();
        for (size_t i = 0; i < bcount * num_ex; ++i) {
          fresh_batch.push_back(Value::FreshNull(symbols));
        }
        for (size_t t = 0; t < bcount; ++t) {
          const Value* row = triggers.Row(base_t + t);
          const Value* tf = fresh_batch.data() + t * num_ex;
          for (size_t ai = 0; ai < fire_atoms.size(); ++ai) {
            BuildFireRowCols(fire_atoms[ai], row, tf, &scratch);
            bulk_scratch.Append(bulk_scratch.atom_buf[ai],
                                static_cast<uint32_t>(t), scratch.data());
          }
        }
        MAPINV_ASSIGN_OR_RETURN(size_t inserted,
                                FlushBulkFire(target, &bulk_scratch, record));
        created += inserted;
        if (options.stats != nullptr) {
          options.stats->bulk_rows_appended.fetch_add(
              inserted, std::memory_order_relaxed);
          uint64_t steps = 0;
          if (options.oblivious) {
            steps = bcount;
          } else {
            for (uint8_t f : bulk_scratch.fired) steps += f;
          }
          options.stats->chase_steps.fetch_add(steps,
                                               std::memory_order_relaxed);
        }
      }
      if (cut_short) {
        degraded = true;
        break;
      }
      continue;
    }
    std::vector<Value> frontier_values;  // ordered as conclusion_plan demands
    for (size_t t = 0; t < triggers.rows; ++t) {
      if (Status poll = PollPhaseInterrupt(options, deadline, "chase_delta");
          !poll.ok()) {
        if (DegradeToPartial(options, poll)) {
          cut_short = true;
          break;
        }
        return poll;
      }
      MAPINV_FAILPOINT(fp_delta_fire);
      const Value* row = triggers.Row(t);
      if (!options.oblivious) {
        frontier_values.clear();
        for (size_t col : frontier_cols) frontier_values.push_back(row[col]);
        MAPINV_ASSIGN_OR_RETURN(
            bool satisfied,
            target_search.ExistsHomWithPlanValues(*conclusion_plan,
                                                  frontier_values));
        if (satisfied) continue;
      }
      fresh.clear();
      for (size_t i = 0; i < num_ex; ++i) {
        fresh.push_back(Value::FreshNull(symbols));
      }
      if (options.stats != nullptr) {
        options.stats->chase_steps.fetch_add(1, std::memory_order_relaxed);
      }
      for (const FireAtomCols& fa : fire_atoms) {
        BuildFireRowCols(fa, row, fresh.data(), &scratch);
        MAPINV_ASSIGN_OR_RETURN(bool added,
                                target->AddRow(fa.relation, scratch));
        if (added) {
          ++created;
          if (provenance != nullptr) {
            // AddRow appends, so the new row's dense ref is the last one.
            provenance->Record(
                fa.relation,
                static_cast<TupleRef>(target->NumRows(fa.relation) - 1),
                static_cast<uint32_t>(tgd_index));
          }
        }
      }
      // Whole-trigger granularity, as in ChaseTgds: a partial stop never
      // leaves a half-fired conclusion.
      if (created > options.max_new_facts) {
        Status exhausted =
            PhaseExhausted("chase_delta",
                           "exceeded max_new_facts = " +
                               std::to_string(options.max_new_facts));
        if (DegradeToPartial(options, exhausted)) {
          cut_short = true;
          break;
        }
        return exhausted;
      }
    }
    if (cut_short) {
      degraded = true;
      break;
    }
  }
  if (options.stats != nullptr) {
    options.stats->ObserveArenaBytes(target->ArenaBytes());
    options.stats->ObserveResidentBytes(target->ResidentBytes());
  }
  return !degraded;
}

}  // namespace mapinv
