/// \file round_trip.h
/// \brief Round-trip data exchange: source → target → recovered source.
///
/// The paper's recovery notions are all stated through the composition
/// M ∘ M' (Definition 3.2): exchange I forward with M, bring it back with
/// M', and compare what queries can still see. These helpers compute the
/// *canonical* round trip — chase forward to the canonical universal
/// solution, chase backward with the inverse — and the certain answers of
/// source queries over the recovered worlds, which is how all recovery
/// checks in check/ are implemented.
///
/// Semantics note. The composition quantifies over *all* intermediate
/// solutions K, while these helpers chase only the canonical one — the
/// operational reading the paper itself uses (§5.2: the inverse "focuses on
/// this canonical target instance"). Because the inverse languages carry
/// constraints that are not preserved under homomorphisms (C(·), ≠,
/// inverse-function provenance), the canonical round trip can retain
/// slightly more than the full-composition certain answers on mappings
/// whose invented values can fold onto constants in non-canonical
/// solutions. The effect is one-sided and ordered: full-composition
/// certain ⊆ FO-pipeline round trip ⊆ SO-inverse round trip ⊆ Q(I)
/// (soundness always holds; the property sweeps assert the chain). On
/// single-atom-conclusion mappings the paths agree exactly.

#ifndef MAPINV_CHASE_ROUND_TRIP_H_
#define MAPINV_CHASE_ROUND_TRIP_H_

#include <vector>

#include "base/status.h"
#include "engine/execution_options.h"
#include "chase/chase_reverse.h"
#include "chase/chase_so.h"
#include "chase/chase_tgd.h"
#include "data/instance.h"
#include "eval/query_eval.h"
#include "logic/mapping.h"

namespace mapinv {

/// \brief Recovered source worlds of chase-back(chase-forward(source)) for a
/// tgd mapping and a reverse mapping.
Result<std::vector<Instance>> RoundTripWorlds(const TgdMapping& mapping,
                                              const ReverseMapping& reverse,
                                              const Instance& source,
                                              const ExecutionOptions& options = {});

/// \brief Certain answers of a source query over the round-trip worlds,
/// i.e. certain_{M∘M'}(Q, I) computed canonically.
Result<AnswerSet> RoundTripCertain(const TgdMapping& mapping,
                                   const ReverseMapping& reverse,
                                   const Instance& source,
                                   const ConjunctiveQuery& query,
                                   const ExecutionOptions& options = {});

/// \brief Round trip through a plain SO-tgd and a PolySOInverse mapping.
Result<std::vector<Instance>> RoundTripWorldsSO(
    const SOTgdMapping& mapping, const SOInverseMapping& inverse,
    const Instance& source, const ExecutionOptions& options = {});

/// \brief Certain answers of a source query over the SO round-trip worlds.
Result<AnswerSet> RoundTripCertainSO(const SOTgdMapping& mapping,
                                     const SOInverseMapping& inverse,
                                     const Instance& source,
                                     const ConjunctiveQuery& query,
                                     const ExecutionOptions& options = {});

/// \brief Intersection of per-world certain answers of `query`; fails on an
/// empty world set.
Result<AnswerSet> CertainOverWorlds(const std::vector<Instance>& worlds,
                                    const ConjunctiveQuery& query);

}  // namespace mapinv

#endif  // MAPINV_CHASE_ROUND_TRIP_H_
