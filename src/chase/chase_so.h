/// \file chase_so.h
/// \brief Data exchange with plain SO-tgds and with PolySOInverse output.
///
/// Forward direction (Section 5.1): exchanging with a plain SO-tgd under the
/// standard assumption that every function application denotes a fresh value
/// — implemented with a Skolem table assigning one labelled null per
/// (function, argument tuple). This yields the canonical target instance the
/// paper's Section 5.2 intuition refers to ("{T(1,a,a,b)}" for source
/// {R(1,2,3)} and rule (9)).
///
/// Reverse direction (Section 5.2): the inverse language existentially
/// quantifies the inverse functions f₁,...,f_k,f★, so chasing it means
/// *choosing* an interpretation. We maintain a term store: a union-find over
/// nodes standing for input values and for applications f_j(v) of inverse
/// functions to input values. Conclusion equalities merge classes;
/// inequalities and the at-most-one-value-per-class invariant rule out
/// inconsistent disjuncts; disjunctions fork worlds. At the end, each class
/// materialises to its unique value if it has one and to a fresh labelled
/// null otherwise.

#ifndef MAPINV_CHASE_CHASE_SO_H_
#define MAPINV_CHASE_CHASE_SO_H_

#include <vector>

#include "base/status.h"
#include "engine/execution_options.h"
#include "data/instance.h"
#include "eval/query_eval.h"
#include "logic/mapping.h"

namespace mapinv {

/// \brief Chases `source` with a plain SO-tgd; Skolem semantics (one fresh
/// null per distinct function application).
Result<Instance> ChaseSOTgd(const SOTgdMapping& mapping, const Instance& source,
                            const ExecutionOptions& options = {});

/// \brief Chases `input` (over the original target schema, nulls allowed)
/// with a PolySOInverse mapping; returns the recovered source worlds.
/// An empty vector means every branch was inconsistent.
Result<std::vector<Instance>> ChaseSOInverseWorlds(
    const SOInverseMapping& mapping, const Instance& input,
    const ExecutionOptions& options = {});

/// \brief Certain answers of `query` over the recovered worlds (∩ of
/// null-free per-world answers). Fails if no world is consistent.
Result<AnswerSet> CertainAnswersSOInverse(const SOInverseMapping& mapping,
                                          const Instance& input,
                                          const ConjunctiveQuery& query,
                                          const ExecutionOptions& options = {});

}  // namespace mapinv

#endif  // MAPINV_CHASE_CHASE_SO_H_
