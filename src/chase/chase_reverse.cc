#include "chase/chase_reverse.h"

#include <algorithm>
#include <memory>
#include <optional>
#include <string>
#include <unordered_set>

#include "base/symbol_context.h"
#include "chase/fire_plan.h"
#include "engine/failpoint.h"
#include "engine/parallel_chase.h"
#include "engine/trace.h"
#include "eval/hom.h"
#include "eval/hom_plan.h"
#include "job/job.h"

namespace mapinv {

namespace {

FailPoint fp_reverse_entry("chase_reverse/entry");
FailPoint fp_reverse_fire("chase_reverse/fire");
FailPoint fp_reverse_fork("chase_reverse/world_fork");

// True if every conclusion equality of the disjunct holds under the trigger
// row (equality endpoints are premise variables by validation, hence
// trigger columns).
bool EqualitiesHold(const ReverseDisjunct& disjunct, const TriggerBatch& batch,
                    const Value* row) {
  for (const VarPair& eq : disjunct.equalities) {
    if (row[batch.ColumnOf(eq.first)] != row[batch.ColumnOf(eq.second)]) {
      return false;
    }
  }
  return true;
}

// One chase world: a heap-stable instance plus a search over it. Forking a
// world is a copy-on-write snapshot — the fork shares every relation store
// (arena, dedup table, value index) with its parent until one of them
// writes, so linear lineages never copy tuples and branching copies only
// the relations a branch actually extends. The fresh HomSearch is free: the
// indexes it reads are owned by the (shared) instance stores.
struct WorldState {
  std::unique_ptr<Instance> instance;
  std::unique_ptr<HomSearch> search;
  ExecStats* stats = nullptr;

  WorldState(Instance inst, ExecStats* stats_sink)
      : instance(std::make_unique<Instance>(std::move(inst))),
        search(std::make_unique<HomSearch>(*instance)),
        stats(stats_sink) {
    search->set_stats(stats);
  }

  WorldState Fork() const {
    if (stats != nullptr) {
      stats->worlds_forked.fetch_add(1, std::memory_order_relaxed);
    }
    return WorldState(instance->Fork(), stats);
  }
};

// Per-disjunct execution state, compiled once per dependency and shared by
// every world and every trigger:
//   * shared_vars — the disjunct's variables also bound by the premise (the
//     fixed set of the satisfaction check),
//   * ex_vars     — the remaining disjunct variables, in first-occurrence
//     order (fresh nulls are drawn in exactly this order when firing),
//   * sat_plan    — the satisfaction-check join plan, compiled once and run
//     on any world via ExistsHomWithPlan (plans are instance-independent;
//     per-world plan caches would recompile it per fork),
//   * fixed_cols  — the sat plan's fixed variables as trigger columns,
//   * fire_atoms  — conclusion atoms with relations resolved to ids and
//     bound variables resolved to trigger columns.
struct DisjunctExec {
  std::vector<VarId> shared_vars;
  std::vector<VarId> ex_vars;
  std::shared_ptr<const HomPlan> sat_plan;
  std::vector<size_t> fixed_cols;
  std::vector<FireAtomCols> fire_atoms;
};

Result<DisjunctExec> CompileDisjunct(const ReverseDisjunct& disjunct,
                                     const std::vector<VarId>& premise_vars,
                                     const std::vector<VarId>& trigger_vars,
                                     const WorldState& seed_world,
                                     const Schema& target_schema,
                                     bool oblivious) {
  DisjunctExec exec;
  const std::unordered_set<VarId> premise_set(premise_vars.begin(),
                                              premise_vars.end());
  for (VarId v : CollectDistinctVars(disjunct.atoms)) {
    if (premise_set.contains(v)) {
      exec.shared_vars.push_back(v);
    } else {
      exec.ex_vars.push_back(v);
    }
  }
  if (!oblivious) {
    MAPINV_ASSIGN_OR_RETURN(
        exec.sat_plan,
        seed_world.search->GetPlanForVars(disjunct.atoms, HomConstraints{},
                                          exec.shared_vars));
    exec.fixed_cols.reserve(exec.sat_plan->fixed_vars.size());
    for (VarId v : exec.sat_plan->fixed_vars) {
      exec.fixed_cols.push_back(static_cast<size_t>(
          std::lower_bound(trigger_vars.begin(), trigger_vars.end(), v) -
          trigger_vars.begin()));
    }
  }
  MAPINV_ASSIGN_OR_RETURN(
      exec.fire_atoms,
      CompileFireAtomsCols(disjunct.atoms, target_schema, exec.ex_vars,
                           trigger_vars));
  return exec;
}

// Adds the instantiated disjunct atoms to `world`; existential variables get
// fresh nulls (in ex_vars order).
Status FireDisjunct(const DisjunctExec& exec, const Value* row,
                    Instance* world, size_t* created, SymbolContext& symbols,
                    std::vector<Value>* fresh, std::vector<Value>* scratch) {
  fresh->clear();
  for (size_t i = 0; i < exec.ex_vars.size(); ++i) {
    fresh->push_back(Value::FreshNull(symbols));
  }
  for (const FireAtomCols& fa : exec.fire_atoms) {
    BuildFireRowCols(fa, row, fresh->data(), scratch);
    MAPINV_ASSIGN_OR_RETURN(bool added, world->AddRow(fa.relation, *scratch));
    if (added) ++*created;
  }
  return Status::OK();
}

}  // namespace

Result<std::vector<Instance>> ChaseReverseWorlds(const ReverseMapping& mapping,
                                                 const Instance& input,
                                                 const ExecutionOptions& options) {
  if (!mapping.source->DisjointFrom(*mapping.target)) {
    return Status::Unsupported(
        "reverse chase requires disjoint premise/conclusion schemas");
  }
  ScopedTraceSpan span(options, "chase_reverse");
  MAPINV_FAILPOINT(fp_reverse_entry);
  ExecDeadline entry_deadline(options.deadline_ms);
  const ExecDeadline& deadline = CarriedDeadline(options, entry_deadline);
  SymbolContext& symbols = ResolveSymbols(options, input);
  HomSearch search(input);
  search.set_stats(options.stats);
  std::vector<WorldState> worlds;
  worlds.emplace_back(Instance(mapping.target), options.stats);
  size_t created = 0;
  // Checkpointed-job state (see src/job/job.h). The fingerprint binds the
  // job directory to these exact inputs; the cursor names the first
  // unprocessed (dependency, trigger) pair. Restored worlds come back
  // through the MAPINVSN snapshot codec, whose images are a pure function of
  // logical content — which, together with the restored null watermark, is
  // what makes a killed-and-resumed run byte-identical to an uninterrupted
  // one.
  std::optional<JobCheckpointer> job;
  size_t resume_dep = 0;
  uint64_t resume_trigger = 0;
  bool restored_complete = false;
  if (!options.checkpoint_dir.empty()) {
    const uint64_t fingerprint =
        JobFingerprint(JobKind::kReverseWorlds, mapping.ToString(),
                       input.ToString(), options.oblivious);
    MAPINV_ASSIGN_OR_RETURN(
        JobCheckpointer opened,
        JobCheckpointer::Open(options.checkpoint_dir, JobKind::kReverseWorlds,
                              fingerprint, options.resume));
    job.emplace(std::move(opened));
    if (job->resumed().has_value()) {
      const JobResumeState& state = *job->resumed();
      worlds.clear();
      for (const std::string& image : state.world_images) {
        MAPINV_ASSIGN_OR_RETURN(
            Instance world, Instance::LoadFromBytes(image.data(), image.size()));
        worlds.emplace_back(std::move(world), options.stats);
      }
      created = static_cast<size_t>(state.manifest.created);
      resume_dep = state.manifest.dep_index;
      resume_trigger = state.manifest.trigger_index;
      restored_complete = state.manifest.complete;
      // Fresh nulls must continue exactly where the killed run left off, or
      // the facts fired after the cursor would mint labels differing from
      // the uninterrupted run's.
      if (state.manifest.null_watermark > 0) {
        symbols.BumpNullPast(
            static_cast<uint32_t>(state.manifest.null_watermark - 1));
      }
      if (options.stats != nullptr) {
        options.stats->worlds_resumed.fetch_add(state.world_images.size(),
                                                std::memory_order_relaxed);
      }
      // An empty frontier is only ever committed complete (the
      // unsatisfiable outcome); honour it rather than chase from nothing.
      if (worlds.empty()) return std::vector<Instance>{};
    }
  }
  const size_t checkpoint_every = options.checkpoint_every == 0
                                      ? kDefaultCheckpointEvery
                                      : options.checkpoint_every;
  size_t since_commit = 0;
  auto commit_checkpoint = [&](size_t dep_index, uint64_t trigger_index,
                               bool complete) -> Status {
    if (!job.has_value()) return Status::OK();
    std::vector<std::string> images;
    images.reserve(worlds.size());
    for (const WorldState& world : worlds) {
      images.push_back(world.instance->SaveToBytes());
    }
    JobManifest manifest;
    manifest.complete = complete;
    manifest.dep_index = static_cast<uint32_t>(dep_index);
    manifest.trigger_index = trigger_index;
    manifest.created = created;
    manifest.null_watermark = symbols.NullWatermark();
    since_commit = 0;
    return job->Commit(std::move(manifest), images, options.stats);
  };
  std::vector<Value> fresh;
  std::vector<Value> scratch;
  // In kPartial mode exhaustion degrades at whole-trigger granularity: every
  // world finishes the current trigger before the run stops, so the returned
  // worlds are exactly the chase of a trigger-list prefix (no world has a
  // half-applied disjunct). Limit checks are deferred to the end of the
  // trigger for the same reason; the overshoot is bounded by one trigger's
  // fan-out (|worlds| x |applicable disjuncts|).
  bool cut_short = false;
  // A resumed run re-enters the loop at the checkpointed cursor; a completed
  // checkpoint skips it entirely (the restored worlds are the answer).
  for (size_t dep_index = restored_complete ? mapping.deps.size() : resume_dep;
       dep_index < mapping.deps.size(); ++dep_index) {
    const ReverseDependency& dep = mapping.deps[dep_index];
    HomConstraints constraints;
    constraints.constant_vars.insert(dep.constant_vars.begin(),
                                     dep.constant_vars.end());
    constraints.inequalities = dep.inequalities;
    // Compiled once per dependency: satisfaction plans and fire programs are
    // shared across all worlds and triggers (plans are instance-independent,
    // and every world has the same target schema).
    const std::vector<VarId> premise_vars = CollectDistinctVars(dep.premise);
    std::vector<VarId> trigger_vars = premise_vars;  // TriggerBatch columns
    std::sort(trigger_vars.begin(), trigger_vars.end());
    std::vector<DisjunctExec> disjunct_exec;
    disjunct_exec.reserve(dep.disjuncts.size());
    for (const ReverseDisjunct& d : dep.disjuncts) {
      MAPINV_ASSIGN_OR_RETURN(
          DisjunctExec exec,
          CompileDisjunct(d, premise_vars, trigger_vars, worlds.front(),
                          *mapping.target, options.oblivious));
      disjunct_exec.push_back(std::move(exec));
    }
    TriggerBatch triggers;
    {
      ScopedTraceSpan collect_span(options, "collect_triggers");
      Result<TriggerBatch> collected = CollectTriggers(
          search, input, dep.premise, constraints, options, deadline);
      if (!collected.ok()) {
        if (DegradeToPartial(options, collected.status())) break;
        return collected.status();
      }
      triggers = std::move(collected).ValueOrDie();
    }
    ScopedTraceSpan fire_span(options, "fire");
    std::vector<Value> fixed_values;  // ordered as the sat plan demands
    // Trigger collection is deterministic for a fixed input, so the resumed
    // run's trigger list matches the killed run's and the cursor index is
    // meaningful across processes.
    const size_t first_trigger =
        dep_index == resume_dep ? static_cast<size_t>(resume_trigger) : 0;
    for (size_t t = first_trigger; t < triggers.rows; ++t) {
      if (Status poll = PollPhaseInterrupt(options, deadline, "chase_reverse");
          !poll.ok()) {
        if (DegradeToPartial(options, poll)) {
          cut_short = true;
          break;
        }
        return poll;
      }
      MAPINV_FAILPOINT(fp_reverse_fire);
      const Value* row = triggers.Row(t);
      if (options.stats != nullptr) {
        options.stats->chase_steps.fetch_add(1, std::memory_order_relaxed);
      }
      // Disjuncts whose equalities are consistent with the trigger.
      std::vector<size_t> applicable;
      for (size_t di = 0; di < dep.disjuncts.size(); ++di) {
        if (EqualitiesHold(dep.disjuncts[di], triggers, row)) {
          applicable.push_back(di);
        }
      }
      std::vector<WorldState> next;
      for (WorldState& world : worlds) {
        if (applicable.empty()) continue;  // world dies
        if (!options.oblivious) {
          bool satisfied = false;
          for (size_t di : applicable) {
            const DisjunctExec& exec = disjunct_exec[di];
            fixed_values.clear();
            for (size_t col : exec.fixed_cols) {
              fixed_values.push_back(row[col]);
            }
            MAPINV_ASSIGN_OR_RETURN(
                bool sat, world.search->ExistsHomWithPlanValues(*exec.sat_plan,
                                                                fixed_values));
            if (sat) {
              satisfied = true;
              break;
            }
          }
          if (satisfied) {
            next.push_back(std::move(world));
            continue;
          }
        }
        // The last applicable disjunct reuses the world in place; earlier
        // ones fork a snapshot (copy-on-write: only relations the branch
        // later writes get copied).
        for (size_t ai = 0; ai < applicable.size(); ++ai) {
          const size_t di = applicable[ai];
          if (ai + 1 != applicable.size()) MAPINV_FAILPOINT(fp_reverse_fork);
          WorldState fork = (ai + 1 == applicable.size())
                                ? std::move(world)
                                : world.Fork();
          MAPINV_RETURN_NOT_OK(FireDisjunct(disjunct_exec[di], row,
                                            fork.instance.get(), &created,
                                            symbols, &fresh, &scratch));
          next.push_back(std::move(fork));
        }
      }
      worlds = std::move(next);
      if (worlds.empty()) {  // unsatisfiable
        MAPINV_RETURN_NOT_OK(commit_checkpoint(dep_index, t + 1, true));
        return std::vector<Instance>{};
      }
      // Limit checks deferred to the end of the trigger so a partial stop
      // never leaves a world with a half-applied trigger.
      Status exhausted;
      if (created > options.max_new_facts) {
        exhausted =
            PhaseExhausted("chase_reverse",
                           "exceeded max_new_facts = " +
                               std::to_string(options.max_new_facts));
      } else if (worlds.size() > options.max_worlds) {
        exhausted = PhaseExhausted("chase_reverse",
                                   "exceeded max_worlds = " +
                                       std::to_string(options.max_worlds));
      }
      if (!exhausted.ok()) {
        if (DegradeToPartial(options, exhausted)) {
          cut_short = true;
          break;
        }
        return exhausted;
      }
      // The frontier is consistent exactly at trigger boundaries (no world
      // carries a half-applied disjunct here), so this is where the job
      // commits; the cursor points at the next unprocessed trigger.
      if (job.has_value() && ++since_commit >= checkpoint_every) {
        MAPINV_RETURN_NOT_OK(commit_checkpoint(dep_index, t + 1, false));
      }
    }
    if (cut_short) break;
  }
  // The final commit marks the job complete: a resume of a finished job
  // reloads these worlds without re-chasing anything. Partial (cut-short)
  // results commit as complete too — resuming reproduces the same sound
  // prefix deterministically.
  if (!restored_complete) {
    MAPINV_RETURN_NOT_OK(commit_checkpoint(mapping.deps.size(), 0, true));
  }
  std::vector<Instance> out;
  out.reserve(worlds.size());
  for (WorldState& world : worlds) out.push_back(std::move(*world.instance));
  if (options.stats != nullptr) {
    uint64_t bytes = 0;
    uint64_t resident = 0;
    for (const Instance& world : out) {
      bytes += world.ArenaBytes();
      resident += world.ResidentBytes();
    }
    options.stats->ObserveArenaBytes(bytes);
    options.stats->ObserveResidentBytes(resident);
  }
  return out;
}

Result<Instance> ChaseReverse(const ReverseMapping& mapping,
                              const Instance& input,
                              const ExecutionOptions& options) {
  for (const ReverseDependency& dep : mapping.deps) {
    if (dep.disjuncts.size() != 1) {
      return Status::Unsupported(
          "one-world reverse chase requires disjunction-free dependencies; "
          "use ChaseReverseWorlds");
    }
  }
  MAPINV_ASSIGN_OR_RETURN(std::vector<Instance> worlds,
                          ChaseReverseWorlds(mapping, input, options));
  if (worlds.empty()) {
    return Status::Malformed(
        "reverse dependencies are unsatisfiable on the given input "
        "(a conclusion equality failed for every trigger disjunct)");
  }
  return std::move(worlds.front());
}

Result<AnswerSet> CertainAnswersReverse(const ReverseMapping& mapping,
                                        const Instance& input,
                                        const ConjunctiveQuery& query,
                                        const ExecutionOptions& options) {
  MAPINV_ASSIGN_OR_RETURN(std::vector<Instance> worlds,
                          ChaseReverseWorlds(mapping, input, options));
  if (worlds.empty()) {
    return Status::Malformed(
        "no world: reverse dependencies unsatisfiable on input");
  }
  bool first = true;
  AnswerSet certain;
  for (const Instance& world : worlds) {
    MAPINV_ASSIGN_OR_RETURN(AnswerSet answers,
                            EvaluateCq(query, world, options.stats));
    AnswerSet c = answers.CertainOnly();
    if (first) {
      certain = std::move(c);
      first = false;
    } else {
      certain = certain.Intersect(c);
    }
  }
  return certain;
}

}  // namespace mapinv
