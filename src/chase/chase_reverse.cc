#include "chase/chase_reverse.h"

#include <memory>
#include <unordered_set>

#include "engine/parallel_chase.h"
#include "engine/trace.h"
#include "eval/hom.h"

namespace mapinv {

namespace {

// True if every conclusion equality of the disjunct holds under the trigger
// bindings (equality endpoints are premise variables by validation).
bool EqualitiesHold(const ReverseDisjunct& disjunct, const Assignment& h) {
  for (const VarPair& eq : disjunct.equalities) {
    if (h.at(eq.first) != h.at(eq.second)) return false;
  }
  return true;
}

// One chase world: a heap-stable instance plus an incremental search over
// it (HomSearch indexes catch up as the instance grows).
struct WorldState {
  std::unique_ptr<Instance> instance;
  std::unique_ptr<HomSearch> search;
  ExecStats* stats = nullptr;

  WorldState(Instance inst, ExecStats* stats_sink)
      : instance(std::make_unique<Instance>(std::move(inst))),
        search(std::make_unique<HomSearch>(*instance)),
        stats(stats_sink) {
    search->set_stats(stats);
  }

  WorldState Fork() const { return WorldState(*instance, stats); }
};

// True if the disjunct is already satisfied in the world by an extension of
// the trigger bindings restricted to the variables the disjunct shares with
// the premise. `dvars` is the disjunct's distinct-variable list, collected
// once per dependency.
Result<bool> DisjunctSatisfied(const ReverseDisjunct& disjunct,
                               const std::vector<VarId>& dvars,
                               const Assignment& h, const WorldState& world) {
  Assignment fixed;
  for (VarId v : dvars) {
    auto it = h.find(v);
    if (it != h.end()) fixed.emplace(v, it->second);
  }
  return world.search->ExistsHom(disjunct.atoms, HomConstraints{}, fixed);
}

// Adds the instantiated disjunct atoms to `world`; existential variables get
// fresh nulls.
Status FireDisjunct(const ReverseDisjunct& disjunct,
                    const std::vector<VarId>& dvars, const Assignment& h,
                    Instance* world, size_t* created, SymbolContext& symbols) {
  Assignment extended = h;
  for (VarId v : dvars) {
    if (!extended.contains(v)) extended.emplace(v, Value::FreshNull(symbols));
  }
  for (const Atom& atom : disjunct.atoms) {
    Tuple t;
    t.reserve(atom.terms.size());
    for (const Term& term : atom.terms) t.push_back(extended.at(term.var()));
    MAPINV_ASSIGN_OR_RETURN(
        bool added, world->Add(RelationText(atom.relation), std::move(t)));
    if (added) ++*created;
  }
  return Status::OK();
}

}  // namespace

Result<std::vector<Instance>> ChaseReverseWorlds(const ReverseMapping& mapping,
                                                 const Instance& input,
                                                 const ExecutionOptions& options) {
  if (!mapping.source->DisjointFrom(*mapping.target)) {
    return Status::Unsupported(
        "reverse chase requires disjoint premise/conclusion schemas");
  }
  ScopedTraceSpan span(options, "chase_reverse");
  ExecDeadline entry_deadline(options.deadline_ms);
  const ExecDeadline& deadline = CarriedDeadline(options, entry_deadline);
  SymbolContext& symbols = ResolveSymbols(options, input);
  HomSearch search(input);
  search.set_stats(options.stats);
  std::vector<WorldState> worlds;
  worlds.emplace_back(Instance(mapping.target), options.stats);
  size_t created = 0;
  for (const ReverseDependency& dep : mapping.deps) {
    HomConstraints constraints;
    constraints.constant_vars.insert(dep.constant_vars.begin(),
                                     dep.constant_vars.end());
    constraints.inequalities = dep.inequalities;
    // Collected once per dependency; DisjunctSatisfied/FireDisjunct run per
    // trigger per world.
    std::vector<std::vector<VarId>> disjunct_vars;
    disjunct_vars.reserve(dep.disjuncts.size());
    for (const ReverseDisjunct& d : dep.disjuncts) {
      disjunct_vars.push_back(CollectDistinctVars(d.atoms));
    }
    std::vector<Assignment> triggers;
    {
      ScopedTraceSpan collect_span(options, "collect_triggers");
      MAPINV_ASSIGN_OR_RETURN(
          triggers, CollectTriggers(search, input, dep.premise, constraints,
                                    options, deadline));
    }
    ScopedTraceSpan fire_span(options, "fire");
    for (const Assignment& h : triggers) {
      if (deadline.Expired()) {
        return PhaseExhausted("chase_reverse",
                              "exceeded deadline_ms = " +
                                  std::to_string(options.deadline_ms));
      }
      if (options.stats != nullptr) {
        options.stats->chase_steps.fetch_add(1, std::memory_order_relaxed);
      }
      // Disjuncts whose equalities are consistent with the trigger.
      std::vector<size_t> applicable;
      for (size_t di = 0; di < dep.disjuncts.size(); ++di) {
        if (EqualitiesHold(dep.disjuncts[di], h)) applicable.push_back(di);
      }
      std::vector<WorldState> next;
      for (WorldState& world : worlds) {
        if (applicable.empty()) continue;  // world dies
        if (!options.oblivious) {
          bool satisfied = false;
          for (size_t di : applicable) {
            MAPINV_ASSIGN_OR_RETURN(
                bool sat, DisjunctSatisfied(dep.disjuncts[di],
                                            disjunct_vars[di], h, world));
            if (sat) {
              satisfied = true;
              break;
            }
          }
          if (satisfied) {
            next.push_back(std::move(world));
            continue;
          }
        }
        // The last applicable disjunct reuses the world in place; earlier
        // ones fork a copy.
        for (size_t ai = 0; ai < applicable.size(); ++ai) {
          const size_t di = applicable[ai];
          WorldState fork = (ai + 1 == applicable.size())
                                ? std::move(world)
                                : world.Fork();
          MAPINV_RETURN_NOT_OK(
              FireDisjunct(dep.disjuncts[di], disjunct_vars[di], h,
                           fork.instance.get(), &created, symbols));
          if (created > options.max_new_facts) {
            return PhaseExhausted("chase_reverse",
                                  "exceeded max_new_facts = " +
                                      std::to_string(options.max_new_facts));
          }
          next.push_back(std::move(fork));
          if (next.size() > options.max_worlds) {
            return PhaseExhausted("chase_reverse",
                                  "exceeded max_worlds = " +
                                      std::to_string(options.max_worlds));
          }
        }
      }
      worlds = std::move(next);
      if (worlds.empty()) return std::vector<Instance>{};  // unsatisfiable
    }
  }
  std::vector<Instance> out;
  out.reserve(worlds.size());
  for (WorldState& world : worlds) out.push_back(std::move(*world.instance));
  return out;
}

Result<Instance> ChaseReverse(const ReverseMapping& mapping,
                              const Instance& input,
                              const ExecutionOptions& options) {
  for (const ReverseDependency& dep : mapping.deps) {
    if (dep.disjuncts.size() != 1) {
      return Status::Unsupported(
          "one-world reverse chase requires disjunction-free dependencies; "
          "use ChaseReverseWorlds");
    }
  }
  MAPINV_ASSIGN_OR_RETURN(std::vector<Instance> worlds,
                          ChaseReverseWorlds(mapping, input, options));
  if (worlds.empty()) {
    return Status::Malformed(
        "reverse dependencies are unsatisfiable on the given input "
        "(a conclusion equality failed for every trigger disjunct)");
  }
  return std::move(worlds.front());
}

Result<AnswerSet> CertainAnswersReverse(const ReverseMapping& mapping,
                                        const Instance& input,
                                        const ConjunctiveQuery& query,
                                        const ExecutionOptions& options) {
  MAPINV_ASSIGN_OR_RETURN(std::vector<Instance> worlds,
                          ChaseReverseWorlds(mapping, input, options));
  if (worlds.empty()) {
    return Status::Malformed(
        "no world: reverse dependencies unsatisfiable on input");
  }
  bool first = true;
  AnswerSet certain;
  for (const Instance& world : worlds) {
    MAPINV_ASSIGN_OR_RETURN(AnswerSet answers,
                            EvaluateCq(query, world, options.stats));
    AnswerSet c = answers.CertainOnly();
    if (first) {
      certain = std::move(c);
      first = false;
    } else {
      certain = certain.Intersect(c);
    }
  }
  return certain;
}

}  // namespace mapinv
