#include "chase/chase_so.h"

#include <algorithm>
#include <map>
#include <optional>
#include <string>
#include <unordered_map>

#include "chase/fire_plan.h"
#include "engine/failpoint.h"
#include "engine/parallel_chase.h"
#include "engine/trace.h"
#include "eval/hom.h"

namespace mapinv {

namespace {

FailPoint fp_so_entry("chase_so/entry");
FailPoint fp_so_fire("chase_so/fire");
FailPoint fp_so_inv_entry("chase_so_inverse/entry");
FailPoint fp_so_inv_fire("chase_so_inverse/fire");
FailPoint fp_so_inv_fork("chase_so_inverse/world_fork");

// --------------------------------------------------------------------------
// Forward chase: plain SO-tgds with Skolem semantics.
// --------------------------------------------------------------------------

class SkolemTable {
 public:
  explicit SkolemTable(SymbolContext& symbols) : symbols_(symbols) {}

  Value Get(FunctionId fn, const Tuple& args) {
    auto key = std::make_pair(fn, args);
    auto it = table_.find(key);
    if (it == table_.end()) {
      it = table_.emplace(std::move(key), Value::FreshNull(symbols_)).first;
    }
    return it->second;
  }

 private:
  SymbolContext& symbols_;
  struct KeyHash {
    size_t operator()(const std::pair<FunctionId, Tuple>& k) const {
      size_t seed = k.first;
      HashCombine(seed, TupleHash()(k.second));
      return seed;
    }
  };
  std::unordered_map<std::pair<FunctionId, Tuple>, Value, KeyHash> table_;
};

// Evaluates a conclusion term under a trigger row (columns = `vars`, the
// TriggerBatch order), inventing Skolem nulls per distinct (function,
// argument-values) pair. Handles nested applications, which arise from
// SO-tgd composition.
Result<Value> EvalConclusionTerm(const Term& term,
                                 const std::vector<VarId>& vars,
                                 const Value* row, SkolemTable* skolems) {
  switch (term.kind()) {
    case Term::Kind::kVariable: {
      const auto it = std::lower_bound(vars.begin(), vars.end(), term.var());
      if (it == vars.end() || *it != term.var()) {
        return Status::Malformed("unbound conclusion variable " +
                                 VarName(term.var()));
      }
      return row[it - vars.begin()];
    }
    case Term::Kind::kConstant:
      return Status::Malformed("constant in SO-tgd conclusion: " +
                               term.ToString());
    case Term::Kind::kFunction: {
      Tuple args;
      args.reserve(term.args().size());
      for (const Term& a : term.args()) {
        MAPINV_ASSIGN_OR_RETURN(Value v,
                                EvalConclusionTerm(a, vars, row, skolems));
        args.push_back(v);
      }
      return skolems->Get(term.fn(), args);
    }
  }
  return Status::Internal("unreachable term kind");
}

}  // namespace

Result<Instance> ChaseSOTgd(const SOTgdMapping& mapping, const Instance& source,
                            const ExecutionOptions& options) {
  ScopedTraceSpan span(options, "chase_so");
  MAPINV_FAILPOINT(fp_so_entry);
  ExecDeadline entry_deadline(options.deadline_ms);
  const ExecDeadline& deadline = CarriedDeadline(options, entry_deadline);
  SymbolContext& symbols = ResolveSymbols(options, source);
  Instance target(mapping.target);
  if (options.memory_budget_bytes > 0) {
    target.SetMemoryBudget(options.memory_budget_bytes, options.spill_dir,
                           options.stats);
  }
  SkolemTable skolems(symbols);
  HomSearch search(source);
  search.set_stats(options.stats);
  search.set_vector_max_plan_steps(options.vector_max_plan_steps);
  size_t created = 0;
  std::vector<Value> scratch;  // reused row buffer for AddRow
  // kPartial degrades at whole-trigger granularity (see ChaseTgds).
  bool cut_short = false;
  for (const SORule& rule : mapping.so.rules) {
    // Parallel trigger collection; the Skolem-firing phase stays sequential
    // so null labels are assigned in the canonical trigger order.
    TriggerBatch triggers;
    {
      ScopedTraceSpan collect_span(options, "collect_triggers");
      Result<TriggerBatch> collected = CollectTriggers(
          search, source, rule.premise, HomConstraints{}, options, deadline);
      if (!collected.ok()) {
        if (DegradeToPartial(options, collected.status())) break;
        return collected.status();
      }
      triggers = std::move(collected).ValueOrDie();
    }
    ScopedTraceSpan fire_span(options, "fire");
    // Conclusion relations resolved to ids once per rule, not per fired
    // fact (the terms themselves still evaluate per trigger — they may
    // contain Skolem applications over the trigger bindings).
    std::vector<RelationId> conclusion_rels;
    conclusion_rels.reserve(rule.conclusion.size());
    for (const Atom& atom : rule.conclusion) {
      MAPINV_ASSIGN_OR_RETURN(
          RelationId rel,
          target.schema().Require(RelationText(atom.relation)));
      conclusion_rels.push_back(rel);
    }
    // The SO chase is always bulk-eligible under options.vectorized: it
    // never probes satisfaction (chase_steps counts every trigger), and the
    // Skolem memo reads only the source-side bindings, so term evaluation
    // order — and with it every minted null label — is unchanged when rows
    // are buffered per batch and appended with one AddRows pass per
    // relation.
    const bool bulk = options.vectorized && options.vector_batch > 0;
    if (bulk) {
      const size_t fire_batch = options.vector_batch;
      BulkFireScratch bulk_scratch =
          MakeBulkFireScratch(conclusion_rels, target.schema());
      for (size_t base = 0; base < triggers.rows && !cut_short;
           base += fire_batch) {
        const size_t bcount = std::min(fire_batch, triggers.rows - base);
        if (Status poll = PollPhaseInterrupt(options, deadline, "chase_so");
            !poll.ok()) {
          if (DegradeToPartial(options, poll)) {
            cut_short = true;
            break;
          }
          return poll;
        }
        MAPINV_FAILPOINT(fp_so_fire);
        if (created + bcount * rule.conclusion.size() >
            options.max_new_facts) {
          // Budget-edge fallback, per trigger and exact (see ChaseTgds).
          for (size_t t = base; t < base + bcount; ++t) {
            const Value* row = triggers.Row(t);
            if (options.stats != nullptr) {
              options.stats->chase_steps.fetch_add(1,
                                                   std::memory_order_relaxed);
            }
            for (size_t ai = 0; ai < rule.conclusion.size(); ++ai) {
              scratch.clear();
              for (const Term& term : rule.conclusion[ai].terms) {
                MAPINV_ASSIGN_OR_RETURN(
                    Value v,
                    EvalConclusionTerm(term, triggers.vars, row, &skolems));
                scratch.push_back(v);
              }
              MAPINV_ASSIGN_OR_RETURN(
                  bool added, target.AddRow(conclusion_rels[ai], scratch));
              if (added) ++created;
            }
            if (created > options.max_new_facts) {
              Status exhausted =
                  PhaseExhausted("chase_so",
                                 "exceeded max_new_facts = " +
                                     std::to_string(options.max_new_facts));
              if (DegradeToPartial(options, exhausted)) {
                cut_short = true;
                break;
              }
              return exhausted;
            }
          }
          continue;
        }
        bulk_scratch.BeginBatch(bcount);
        if (options.stats != nullptr) {
          options.stats->chase_steps.fetch_add(bcount,
                                               std::memory_order_relaxed);
        }
        for (size_t t = 0; t < bcount; ++t) {
          const Value* row = triggers.Row(base + t);
          for (size_t ai = 0; ai < rule.conclusion.size(); ++ai) {
            scratch.clear();
            for (const Term& term : rule.conclusion[ai].terms) {
              MAPINV_ASSIGN_OR_RETURN(
                  Value v,
                  EvalConclusionTerm(term, triggers.vars, row, &skolems));
              scratch.push_back(v);
            }
            bulk_scratch.Append(bulk_scratch.atom_buf[ai],
                                static_cast<uint32_t>(t), scratch.data());
          }
        }
        MAPINV_ASSIGN_OR_RETURN(
            size_t inserted,
            FlushBulkFire(&target, &bulk_scratch,
                          [](RelationId, TupleRef, uint32_t) {}));
        created += inserted;
        if (options.stats != nullptr) {
          options.stats->bulk_rows_appended.fetch_add(
              inserted, std::memory_order_relaxed);
        }
      }
      if (cut_short) break;
      continue;
    }
    for (size_t t = 0; t < triggers.rows; ++t) {
      if (Status poll = PollPhaseInterrupt(options, deadline, "chase_so");
          !poll.ok()) {
        if (DegradeToPartial(options, poll)) {
          cut_short = true;
          break;
        }
        return poll;
      }
      MAPINV_FAILPOINT(fp_so_fire);
      const Value* row = triggers.Row(t);
      if (options.stats != nullptr) {
        options.stats->chase_steps.fetch_add(1, std::memory_order_relaxed);
      }
      for (size_t ai = 0; ai < rule.conclusion.size(); ++ai) {
        const Atom& atom = rule.conclusion[ai];
        scratch.clear();
        for (const Term& term : atom.terms) {
          MAPINV_ASSIGN_OR_RETURN(
              Value v, EvalConclusionTerm(term, triggers.vars, row, &skolems));
          scratch.push_back(v);
        }
        MAPINV_ASSIGN_OR_RETURN(bool added,
                                target.AddRow(conclusion_rels[ai], scratch));
        if (added) ++created;
      }
      // Whole-trigger granularity (see ChaseTgds): checked after the trigger
      // so a partial stop never leaves a half-fired conclusion.
      if (created > options.max_new_facts) {
        Status exhausted =
            PhaseExhausted("chase_so",
                           "exceeded max_new_facts = " +
                               std::to_string(options.max_new_facts));
        if (DegradeToPartial(options, exhausted)) {
          cut_short = true;
          break;
        }
        return exhausted;
      }
    }
    if (cut_short) break;
  }
  if (options.stats != nullptr) {
    options.stats->ObserveArenaBytes(target.ArenaBytes());
    options.stats->ObserveResidentBytes(target.ResidentBytes());
  }
  return target;
}

namespace {

// --------------------------------------------------------------------------
// Reverse chase: the PolySOInverse output language.
// --------------------------------------------------------------------------

// Union-find over nodes that stand for input values and for inverse-function
// applications f_j(v). Invariant: a class holds at most one Value (two
// distinct input values are distinct domain elements and can never be
// identified by choosing function interpretations).
class TermStore {
 public:
  uint32_t NodeForValue(Value v) {
    auto it = value_nodes_.find(v);
    if (it != value_nodes_.end()) return it->second;
    uint32_t n = NewNode(v);
    value_nodes_.emplace(v, n);
    return n;
  }

  uint32_t NodeForFn(FunctionId fn, Value arg) {
    auto key = std::make_pair(fn, arg);
    auto it = fn_nodes_.find(key);
    if (it != fn_nodes_.end()) return it->second;
    uint32_t n = NewNode(std::nullopt);
    fn_nodes_.emplace(key, n);
    return n;
  }

  uint32_t FreshNode() { return NewNode(std::nullopt); }

  uint32_t Find(uint32_t n) const {
    while (parent_[n] != n) n = parent_[n];
    return n;
  }

  /// Merges two classes; fails (returns false, store unchanged in terms of
  /// consistency) if that would identify two distinct values or violate a
  /// recorded disequality.
  bool Union(uint32_t a, uint32_t b) {
    a = Find(a);
    b = Find(b);
    if (a == b) return true;
    if (class_value_[a].has_value() && class_value_[b].has_value() &&
        *class_value_[a] != *class_value_[b]) {
      return false;
    }
    // Union by size.
    if (size_[a] < size_[b]) std::swap(a, b);
    parent_[b] = a;
    size_[a] += size_[b];
    if (!class_value_[a].has_value()) class_value_[a] = class_value_[b];
    for (const auto& [x, y] : disequalities_) {
      if (Find(x) == Find(y)) return false;
    }
    return true;
  }

  /// Records a ≠ b; fails if they are already identified.
  bool AddDisequality(uint32_t a, uint32_t b) {
    if (Find(a) == Find(b)) return false;
    disequalities_.emplace_back(a, b);
    return true;
  }

  /// The unique value of the node's class, if any.
  std::optional<Value> ClassValue(uint32_t n) const {
    return class_value_[Find(n)];
  }

 private:
  uint32_t NewNode(std::optional<Value> v) {
    uint32_t n = static_cast<uint32_t>(parent_.size());
    parent_.push_back(n);
    size_.push_back(1);
    class_value_.push_back(v);
    return n;
  }

  std::vector<uint32_t> parent_;
  std::vector<uint32_t> size_;
  std::vector<std::optional<Value>> class_value_;
  std::unordered_map<Value, uint32_t, ValueHash> value_nodes_;
  std::map<std::pair<FunctionId, Value>, uint32_t> fn_nodes_;
  std::vector<std::pair<uint32_t, uint32_t>> disequalities_;
};

struct SymFact {
  RelName relation;
  std::vector<uint32_t> nodes;
};

struct World {
  TermStore store;
  std::vector<SymFact> facts;
};

// Evaluates a conclusion term to a node. The trigger row (columns = `vars`,
// the TriggerBatch order) binds the premise variables ū; `local` binds this
// firing's existential variables ȳ (any variable absent from the premise
// gets a fresh node, memoised per firing).
Result<uint32_t> TermNode(const Term& term, const std::vector<VarId>& vars,
                          const Value* row,
                          std::unordered_map<VarId, uint32_t>* local,
                          TermStore* store) {
  switch (term.kind()) {
    case Term::Kind::kVariable: {
      const auto it = std::lower_bound(vars.begin(), vars.end(), term.var());
      if (it != vars.end() && *it == term.var()) {
        return store->NodeForValue(row[it - vars.begin()]);
      }
      auto [lit, inserted] = local->emplace(term.var(), 0);
      if (inserted) lit->second = store->FreshNode();
      return lit->second;
    }
    case Term::Kind::kConstant:
      return store->NodeForValue(term.value());
    case Term::Kind::kFunction: {
      if (term.args().size() != 1 || !term.args()[0].is_variable()) {
        return Status::Unsupported(
            "SO-inverse chase supports unary inverse functions applied to "
            "premise variables; got " + term.ToString());
      }
      const VarId arg = term.args()[0].var();
      const auto it = std::lower_bound(vars.begin(), vars.end(), arg);
      if (it == vars.end() || *it != arg) {
        return Status::Unsupported("inverse function applied to existential "
                                   "variable: " + term.ToString());
      }
      return store->NodeForFn(term.fn(), row[it - vars.begin()]);
    }
  }
  return Status::Internal("unreachable term kind");
}

// Tries to apply `disjunct` under a trigger row in `world`; on success
// returns the extended world, otherwise nullopt.
Result<std::optional<World>> ApplyDisjunct(const SOInvDisjunct& disjunct,
                                           const std::vector<VarId>& vars,
                                           const Value* row, World world) {
  std::unordered_map<VarId, uint32_t> local;
  for (const TermEq& eq : disjunct.equalities) {
    MAPINV_ASSIGN_OR_RETURN(uint32_t a,
                            TermNode(eq.lhs, vars, row, &local, &world.store));
    MAPINV_ASSIGN_OR_RETURN(uint32_t b,
                            TermNode(eq.rhs, vars, row, &local, &world.store));
    if (!world.store.Union(a, b)) return std::optional<World>{};
  }
  for (const TermEq& ne : disjunct.inequalities) {
    MAPINV_ASSIGN_OR_RETURN(uint32_t a,
                            TermNode(ne.lhs, vars, row, &local, &world.store));
    MAPINV_ASSIGN_OR_RETURN(uint32_t b,
                            TermNode(ne.rhs, vars, row, &local, &world.store));
    if (!world.store.AddDisequality(a, b)) return std::optional<World>{};
  }
  for (const Atom& atom : disjunct.atoms) {
    SymFact f;
    f.relation = atom.relation;
    f.nodes.reserve(atom.terms.size());
    for (const Term& t : atom.terms) {
      MAPINV_ASSIGN_OR_RETURN(
          uint32_t n, TermNode(t, vars, row, &local, &world.store));
      f.nodes.push_back(n);
    }
    world.facts.push_back(std::move(f));
  }
  return std::optional<World>(std::move(world));
}

Result<Instance> Materialize(const World& world,
                             std::shared_ptr<const Schema> schema,
                             SymbolContext& symbols) {
  Instance out(std::move(schema));
  std::unordered_map<uint32_t, Value> null_of_class;
  for (const SymFact& f : world.facts) {
    Tuple t;
    t.reserve(f.nodes.size());
    for (uint32_t n : f.nodes) {
      std::optional<Value> v = world.store.ClassValue(n);
      if (v.has_value()) {
        t.push_back(*v);
      } else {
        uint32_t root = world.store.Find(n);
        auto [it, inserted] = null_of_class.emplace(root, Value());
        if (inserted) it->second = Value::FreshNull(symbols);
        t.push_back(it->second);
      }
    }
    MAPINV_ASSIGN_OR_RETURN(bool added,
                            out.Add(RelationText(f.relation), std::move(t)));
    (void)added;
  }
  return out;
}

}  // namespace

Result<std::vector<Instance>> ChaseSOInverseWorlds(
    const SOInverseMapping& mapping, const Instance& input,
    const ExecutionOptions& options) {
  ScopedTraceSpan span(options, "chase_so_inverse");
  MAPINV_FAILPOINT(fp_so_inv_entry);
  ExecDeadline entry_deadline(options.deadline_ms);
  const ExecDeadline& deadline = CarriedDeadline(options, entry_deadline);
  SymbolContext& symbols = ResolveSymbols(options, input);
  HomSearch search(input);
  search.set_stats(options.stats);
  std::vector<World> worlds(1);
  // kPartial degrades at whole-trigger granularity: every world finishes the
  // current trigger before the run stops (see ChaseReverseWorlds).
  bool cut_short = false;
  for (const SOInverseRule& rule : mapping.inverse.rules) {
    HomConstraints constraints;
    constraints.constant_vars.insert(rule.constant_vars.begin(),
                                     rule.constant_vars.end());
    TriggerBatch triggers;
    {
      ScopedTraceSpan collect_span(options, "collect_triggers");
      Result<TriggerBatch> collected = CollectTriggers(
          search, input, {rule.premise}, constraints, options, deadline);
      if (!collected.ok()) {
        if (DegradeToPartial(options, collected.status())) break;
        return collected.status();
      }
      triggers = std::move(collected).ValueOrDie();
    }
    ScopedTraceSpan fire_span(options, "fire");
    for (size_t t = 0; t < triggers.rows; ++t) {
      if (Status poll =
              PollPhaseInterrupt(options, deadline, "chase_so_inverse");
          !poll.ok()) {
        if (DegradeToPartial(options, poll)) {
          cut_short = true;
          break;
        }
        return poll;
      }
      MAPINV_FAILPOINT(fp_so_inv_fire);
      const Value* row = triggers.Row(t);
      if (options.stats != nullptr) {
        options.stats->chase_steps.fetch_add(1, std::memory_order_relaxed);
      }
      std::vector<World> next;
      for (World& world : worlds) {
        for (size_t di = 0; di < rule.disjuncts.size(); ++di) {
          const SOInvDisjunct& d = rule.disjuncts[di];
          // The last disjunct consumes the world; earlier ones fork a copy
          // of the symbolic store (counted as a world fork).
          const bool last = di + 1 == rule.disjuncts.size();
          if (!last) {
            MAPINV_FAILPOINT(fp_so_inv_fork);
            if (options.stats != nullptr) {
              options.stats->worlds_forked.fetch_add(
                  1, std::memory_order_relaxed);
            }
          }
          MAPINV_ASSIGN_OR_RETURN(
              std::optional<World> applied,
              ApplyDisjunct(d, triggers.vars, row,
                            last ? std::move(world) : World(world)));
          if (applied.has_value()) next.push_back(std::move(*applied));
        }
      }
      worlds = std::move(next);
      if (worlds.empty()) return std::vector<Instance>{};
      // Checked after the whole trigger (see ChaseReverseWorlds): a partial
      // stop never leaves a world with a half-applied trigger.
      if (worlds.size() > options.max_worlds) {
        Status exhausted =
            PhaseExhausted("chase_so_inverse",
                           "exceeded max_worlds = " +
                               std::to_string(options.max_worlds));
        if (DegradeToPartial(options, exhausted)) {
          cut_short = true;
          break;
        }
        return exhausted;
      }
    }
    if (cut_short) break;
  }
  std::vector<Instance> out;
  out.reserve(worlds.size());
  for (const World& w : worlds) {
    MAPINV_ASSIGN_OR_RETURN(Instance inst,
                            Materialize(w, mapping.target, symbols));
    out.push_back(std::move(inst));
  }
  if (options.stats != nullptr) {
    uint64_t bytes = 0;
    uint64_t resident = 0;
    for (const Instance& inst : out) {
      bytes += inst.ArenaBytes();
      resident += inst.ResidentBytes();
    }
    options.stats->ObserveArenaBytes(bytes);
    options.stats->ObserveResidentBytes(resident);
  }
  return out;
}

Result<AnswerSet> CertainAnswersSOInverse(const SOInverseMapping& mapping,
                                          const Instance& input,
                                          const ConjunctiveQuery& query,
                                          const ExecutionOptions& options) {
  MAPINV_ASSIGN_OR_RETURN(std::vector<Instance> worlds,
                          ChaseSOInverseWorlds(mapping, input, options));
  if (worlds.empty()) {
    return Status::Malformed("SO-inverse chase: no consistent world");
  }
  bool first = true;
  AnswerSet certain;
  for (const Instance& world : worlds) {
    MAPINV_ASSIGN_OR_RETURN(AnswerSet answers, EvaluateCq(query, world));
    AnswerSet c = answers.CertainOnly();
    if (first) {
      certain = std::move(c);
      first = false;
    } else {
      certain = certain.Intersect(c);
    }
  }
  return certain;
}

}  // namespace mapinv
