#include "chase/chase_so.h"

#include <algorithm>
#include <cstring>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>

#include "base/symbols.h"
#include "chase/fire_plan.h"
#include "engine/failpoint.h"
#include "engine/parallel_chase.h"
#include "engine/trace.h"
#include "eval/hom.h"
#include "job/job.h"

namespace mapinv {

namespace {

FailPoint fp_so_entry("chase_so/entry");
FailPoint fp_so_fire("chase_so/fire");
FailPoint fp_so_inv_entry("chase_so_inverse/entry");
FailPoint fp_so_inv_fire("chase_so_inverse/fire");
FailPoint fp_so_inv_fork("chase_so_inverse/world_fork");

// --------------------------------------------------------------------------
// Forward chase: plain SO-tgds with Skolem semantics.
// --------------------------------------------------------------------------

class SkolemTable {
 public:
  explicit SkolemTable(SymbolContext& symbols) : symbols_(symbols) {}

  Value Get(FunctionId fn, const Tuple& args) {
    auto key = std::make_pair(fn, args);
    auto it = table_.find(key);
    if (it == table_.end()) {
      it = table_.emplace(std::move(key), Value::FreshNull(symbols_)).first;
    }
    return it->second;
  }

 private:
  SymbolContext& symbols_;
  struct KeyHash {
    size_t operator()(const std::pair<FunctionId, Tuple>& k) const {
      size_t seed = k.first;
      HashCombine(seed, TupleHash()(k.second));
      return seed;
    }
  };
  std::unordered_map<std::pair<FunctionId, Tuple>, Value, KeyHash> table_;
};

// Evaluates a conclusion term under a trigger row (columns = `vars`, the
// TriggerBatch order), inventing Skolem nulls per distinct (function,
// argument-values) pair. Handles nested applications, which arise from
// SO-tgd composition.
Result<Value> EvalConclusionTerm(const Term& term,
                                 const std::vector<VarId>& vars,
                                 const Value* row, SkolemTable* skolems) {
  switch (term.kind()) {
    case Term::Kind::kVariable: {
      const auto it = std::lower_bound(vars.begin(), vars.end(), term.var());
      if (it == vars.end() || *it != term.var()) {
        return Status::Malformed("unbound conclusion variable " +
                                 VarName(term.var()));
      }
      return row[it - vars.begin()];
    }
    case Term::Kind::kConstant:
      return Status::Malformed("constant in SO-tgd conclusion: " +
                               term.ToString());
    case Term::Kind::kFunction: {
      Tuple args;
      args.reserve(term.args().size());
      for (const Term& a : term.args()) {
        MAPINV_ASSIGN_OR_RETURN(Value v,
                                EvalConclusionTerm(a, vars, row, skolems));
        args.push_back(v);
      }
      return skolems->Get(term.fn(), args);
    }
  }
  return Status::Internal("unreachable term kind");
}

}  // namespace

Result<Instance> ChaseSOTgd(const SOTgdMapping& mapping, const Instance& source,
                            const ExecutionOptions& options) {
  ScopedTraceSpan span(options, "chase_so");
  MAPINV_FAILPOINT(fp_so_entry);
  ExecDeadline entry_deadline(options.deadline_ms);
  const ExecDeadline& deadline = CarriedDeadline(options, entry_deadline);
  SymbolContext& symbols = ResolveSymbols(options, source);
  Instance target(mapping.target);
  if (options.memory_budget_bytes > 0) {
    target.SetMemoryBudget(options.memory_budget_bytes, options.spill_dir,
                           options.stats);
  }
  SkolemTable skolems(symbols);
  HomSearch search(source);
  search.set_stats(options.stats);
  search.set_vector_max_plan_steps(options.vector_max_plan_steps);
  size_t created = 0;
  std::vector<Value> scratch;  // reused row buffer for AddRow
  // kPartial degrades at whole-trigger granularity (see ChaseTgds).
  bool cut_short = false;
  for (const SORule& rule : mapping.so.rules) {
    // Parallel trigger collection; the Skolem-firing phase stays sequential
    // so null labels are assigned in the canonical trigger order.
    TriggerBatch triggers;
    {
      ScopedTraceSpan collect_span(options, "collect_triggers");
      Result<TriggerBatch> collected = CollectTriggers(
          search, source, rule.premise, HomConstraints{}, options, deadline);
      if (!collected.ok()) {
        if (DegradeToPartial(options, collected.status())) break;
        return collected.status();
      }
      triggers = std::move(collected).ValueOrDie();
    }
    ScopedTraceSpan fire_span(options, "fire");
    // Conclusion relations resolved to ids once per rule, not per fired
    // fact (the terms themselves still evaluate per trigger — they may
    // contain Skolem applications over the trigger bindings).
    std::vector<RelationId> conclusion_rels;
    conclusion_rels.reserve(rule.conclusion.size());
    for (const Atom& atom : rule.conclusion) {
      MAPINV_ASSIGN_OR_RETURN(
          RelationId rel,
          target.schema().Require(RelationText(atom.relation)));
      conclusion_rels.push_back(rel);
    }
    // The SO chase is always bulk-eligible under options.vectorized: it
    // never probes satisfaction (chase_steps counts every trigger), and the
    // Skolem memo reads only the source-side bindings, so term evaluation
    // order — and with it every minted null label — is unchanged when rows
    // are buffered per batch and appended with one AddRows pass per
    // relation.
    const bool bulk = options.vectorized && options.vector_batch > 0;
    if (bulk) {
      const size_t fire_batch = options.vector_batch;
      BulkFireScratch bulk_scratch =
          MakeBulkFireScratch(conclusion_rels, target.schema());
      for (size_t base = 0; base < triggers.rows && !cut_short;
           base += fire_batch) {
        const size_t bcount = std::min(fire_batch, triggers.rows - base);
        if (Status poll = PollPhaseInterrupt(options, deadline, "chase_so");
            !poll.ok()) {
          if (DegradeToPartial(options, poll)) {
            cut_short = true;
            break;
          }
          return poll;
        }
        MAPINV_FAILPOINT(fp_so_fire);
        if (created + bcount * rule.conclusion.size() >
            options.max_new_facts) {
          // Budget-edge fallback, per trigger and exact (see ChaseTgds).
          for (size_t t = base; t < base + bcount; ++t) {
            const Value* row = triggers.Row(t);
            if (options.stats != nullptr) {
              options.stats->chase_steps.fetch_add(1,
                                                   std::memory_order_relaxed);
            }
            for (size_t ai = 0; ai < rule.conclusion.size(); ++ai) {
              scratch.clear();
              for (const Term& term : rule.conclusion[ai].terms) {
                MAPINV_ASSIGN_OR_RETURN(
                    Value v,
                    EvalConclusionTerm(term, triggers.vars, row, &skolems));
                scratch.push_back(v);
              }
              MAPINV_ASSIGN_OR_RETURN(
                  bool added, target.AddRow(conclusion_rels[ai], scratch));
              if (added) ++created;
            }
            if (created > options.max_new_facts) {
              Status exhausted =
                  PhaseExhausted("chase_so",
                                 "exceeded max_new_facts = " +
                                     std::to_string(options.max_new_facts));
              if (DegradeToPartial(options, exhausted)) {
                cut_short = true;
                break;
              }
              return exhausted;
            }
          }
          continue;
        }
        bulk_scratch.BeginBatch(bcount);
        if (options.stats != nullptr) {
          options.stats->chase_steps.fetch_add(bcount,
                                               std::memory_order_relaxed);
        }
        for (size_t t = 0; t < bcount; ++t) {
          const Value* row = triggers.Row(base + t);
          for (size_t ai = 0; ai < rule.conclusion.size(); ++ai) {
            scratch.clear();
            for (const Term& term : rule.conclusion[ai].terms) {
              MAPINV_ASSIGN_OR_RETURN(
                  Value v,
                  EvalConclusionTerm(term, triggers.vars, row, &skolems));
              scratch.push_back(v);
            }
            bulk_scratch.Append(bulk_scratch.atom_buf[ai],
                                static_cast<uint32_t>(t), scratch.data());
          }
        }
        MAPINV_ASSIGN_OR_RETURN(
            size_t inserted,
            FlushBulkFire(&target, &bulk_scratch,
                          [](RelationId, TupleRef, uint32_t) {}));
        created += inserted;
        if (options.stats != nullptr) {
          options.stats->bulk_rows_appended.fetch_add(
              inserted, std::memory_order_relaxed);
        }
      }
      if (cut_short) break;
      continue;
    }
    for (size_t t = 0; t < triggers.rows; ++t) {
      if (Status poll = PollPhaseInterrupt(options, deadline, "chase_so");
          !poll.ok()) {
        if (DegradeToPartial(options, poll)) {
          cut_short = true;
          break;
        }
        return poll;
      }
      MAPINV_FAILPOINT(fp_so_fire);
      const Value* row = triggers.Row(t);
      if (options.stats != nullptr) {
        options.stats->chase_steps.fetch_add(1, std::memory_order_relaxed);
      }
      for (size_t ai = 0; ai < rule.conclusion.size(); ++ai) {
        const Atom& atom = rule.conclusion[ai];
        scratch.clear();
        for (const Term& term : atom.terms) {
          MAPINV_ASSIGN_OR_RETURN(
              Value v, EvalConclusionTerm(term, triggers.vars, row, &skolems));
          scratch.push_back(v);
        }
        MAPINV_ASSIGN_OR_RETURN(bool added,
                                target.AddRow(conclusion_rels[ai], scratch));
        if (added) ++created;
      }
      // Whole-trigger granularity (see ChaseTgds): checked after the trigger
      // so a partial stop never leaves a half-fired conclusion.
      if (created > options.max_new_facts) {
        Status exhausted =
            PhaseExhausted("chase_so",
                           "exceeded max_new_facts = " +
                               std::to_string(options.max_new_facts));
        if (DegradeToPartial(options, exhausted)) {
          cut_short = true;
          break;
        }
        return exhausted;
      }
    }
    if (cut_short) break;
  }
  if (options.stats != nullptr) {
    options.stats->ObserveArenaBytes(target.ArenaBytes());
    options.stats->ObserveResidentBytes(target.ResidentBytes());
  }
  return target;
}

namespace {

// --------------------------------------------------------------------------
// Reverse chase: the PolySOInverse output language.
// --------------------------------------------------------------------------

// Checkpoint codec for symbolic worlds ("MAPINVSW"): unlike reverse-chase
// worlds, which persist through the MAPINVSN instance snapshot, an SO-inverse
// world is a union-find over term nodes plus symbolic facts — state with no
// Instance representation until Materialize runs at the very end. The blob
// stores constants and function symbols as *spellings* (never process-local
// interner ids) and map entries sorted by node id, so a resumed process
// rebuilds behaviourally identical memo tables. A trailing FNV-1a checksum
// plus a fully bounds-checked loader turn any corruption into a clean
// kMalformed error.

constexpr char kWorldMagic[8] = {'M', 'A', 'P', 'I', 'N', 'V', 'S', 'W'};
constexpr uint32_t kWorldVersion = 1;

void AppendU32(std::string& buf, uint32_t v) {
  buf.append(reinterpret_cast<const char*>(&v), sizeof(v));
}

void AppendU64(std::string& buf, uint64_t v) {
  buf.append(reinterpret_cast<const char*>(&v), sizeof(v));
}

uint64_t Fnv1a(const void* data, size_t len) {
  const uint8_t* p = static_cast<const uint8_t*>(data);
  uint64_t h = 14695981039346656037ull;
  for (size_t i = 0; i < len; ++i) {
    h ^= p[i];
    h *= 1099511628211ull;
  }
  return h;
}

Status WorldMalformed(const std::string& what) {
  return Status::Malformed("symbolic world snapshot: " + what);
}

// Bounds-checked cursor over a world image (the snapshot loader's Reader
// idiom — see data/snapshot.cc).
class WorldReader {
 public:
  WorldReader(const uint8_t* data, size_t size) : data_(data), size_(size) {}

  Result<uint32_t> U32() {
    uint32_t v;
    MAPINV_RETURN_NOT_OK(Raw(&v, sizeof(v)));
    return v;
  }

  Result<uint8_t> U8() {
    uint8_t v;
    MAPINV_RETURN_NOT_OK(Raw(&v, sizeof(v)));
    return v;
  }

  Result<std::string_view> Bytes(size_t len) {
    if (len > size_ - pos_) return WorldMalformed("truncated inside a field");
    std::string_view view(reinterpret_cast<const char*>(data_ + pos_), len);
    pos_ += len;
    return view;
  }

  size_t pos() const { return pos_; }
  size_t remaining() const { return size_ - pos_; }

 private:
  Status Raw(void* out, size_t len) {
    if (len > size_ - pos_) return WorldMalformed("truncated inside a field");
    std::memcpy(out, data_ + pos_, len);
    pos_ += len;
    return Status::OK();
  }

  const uint8_t* data_;
  size_t size_;
  size_t pos_ = 0;
};

// Values travel as tag + payload: nulls by label (stable across processes),
// constants by spelling (re-interned on load).
void AppendValue(std::string& buf, Value v) {
  if (v.is_null()) {
    buf.push_back(0);
    AppendU32(buf, v.id());
  } else {
    buf.push_back(1);
    const std::string_view spelling = ConstantPool().Text(v.id());
    AppendU32(buf, static_cast<uint32_t>(spelling.size()));
    buf.append(spelling);
  }
}

Result<Value> ReadValue(WorldReader* reader) {
  MAPINV_ASSIGN_OR_RETURN(const uint8_t tag, reader->U8());
  if (tag == 0) {
    MAPINV_ASSIGN_OR_RETURN(const uint32_t label, reader->U32());
    return Value::NullWithLabel(label);
  }
  if (tag != 1) return WorldMalformed("unknown value tag");
  MAPINV_ASSIGN_OR_RETURN(const uint32_t len, reader->U32());
  MAPINV_ASSIGN_OR_RETURN(std::string_view spelling, reader->Bytes(len));
  return Value::MakeConstant(spelling);
}

// Union-find over nodes that stand for input values and for inverse-function
// applications f_j(v). Invariant: a class holds at most one Value (two
// distinct input values are distinct domain elements and can never be
// identified by choosing function interpretations).
class TermStore {
 public:
  uint32_t NodeForValue(Value v) {
    auto it = value_nodes_.find(v);
    if (it != value_nodes_.end()) return it->second;
    uint32_t n = NewNode(v);
    value_nodes_.emplace(v, n);
    return n;
  }

  uint32_t NodeForFn(FunctionId fn, Value arg) {
    auto key = std::make_pair(fn, arg);
    auto it = fn_nodes_.find(key);
    if (it != fn_nodes_.end()) return it->second;
    uint32_t n = NewNode(std::nullopt);
    fn_nodes_.emplace(key, n);
    return n;
  }

  uint32_t FreshNode() { return NewNode(std::nullopt); }

  uint32_t Find(uint32_t n) const {
    while (parent_[n] != n) n = parent_[n];
    return n;
  }

  /// Merges two classes; fails (returns false, store unchanged in terms of
  /// consistency) if that would identify two distinct values or violate a
  /// recorded disequality.
  bool Union(uint32_t a, uint32_t b) {
    a = Find(a);
    b = Find(b);
    if (a == b) return true;
    if (class_value_[a].has_value() && class_value_[b].has_value() &&
        *class_value_[a] != *class_value_[b]) {
      return false;
    }
    // Union by size.
    if (size_[a] < size_[b]) std::swap(a, b);
    parent_[b] = a;
    size_[a] += size_[b];
    if (!class_value_[a].has_value()) class_value_[a] = class_value_[b];
    for (const auto& [x, y] : disequalities_) {
      if (Find(x) == Find(y)) return false;
    }
    return true;
  }

  /// Records a ≠ b; fails if they are already identified.
  bool AddDisequality(uint32_t a, uint32_t b) {
    if (Find(a) == Find(b)) return false;
    disequalities_.emplace_back(a, b);
    return true;
  }

  /// The unique value of the node's class, if any.
  std::optional<Value> ClassValue(uint32_t n) const {
    return class_value_[Find(n)];
  }

  uint32_t NumNodes() const { return static_cast<uint32_t>(parent_.size()); }

  /// Appends the store's complete state to `buf`. The memo maps go out
  /// sorted by node id (hash-map iteration order never leaks into the blob),
  /// disequalities in recorded order.
  void SerializeTo(std::string* buf) const {
    AppendU32(*buf, NumNodes());
    for (const uint32_t p : parent_) AppendU32(*buf, p);
    for (const uint32_t s : size_) AppendU32(*buf, s);
    for (const std::optional<Value>& v : class_value_) {
      if (v.has_value()) {
        buf->push_back(1);
        AppendValue(*buf, *v);
      } else {
        buf->push_back(0);
      }
    }
    std::vector<std::pair<uint32_t, Value>> by_node;
    by_node.reserve(value_nodes_.size());
    for (const auto& [value, node] : value_nodes_) {
      by_node.emplace_back(node, value);
    }
    std::sort(by_node.begin(), by_node.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    AppendU32(*buf, static_cast<uint32_t>(by_node.size()));
    for (const auto& [node, value] : by_node) {
      AppendValue(*buf, value);
      AppendU32(*buf, node);
    }
    std::vector<std::tuple<uint32_t, FunctionId, Value>> fn_by_node;
    fn_by_node.reserve(fn_nodes_.size());
    for (const auto& [key, node] : fn_nodes_) {
      fn_by_node.emplace_back(node, key.first, key.second);
    }
    std::sort(fn_by_node.begin(), fn_by_node.end(),
              [](const auto& a, const auto& b) {
                return std::get<0>(a) < std::get<0>(b);
              });
    AppendU32(*buf, static_cast<uint32_t>(fn_by_node.size()));
    for (const auto& [node, fn, arg] : fn_by_node) {
      const std::string name = FunctionName(fn);
      AppendU32(*buf, static_cast<uint32_t>(name.size()));
      buf->append(name);
      AppendValue(*buf, arg);
      AppendU32(*buf, node);
    }
    AppendU32(*buf, static_cast<uint32_t>(disequalities_.size()));
    for (const auto& [a, b] : disequalities_) {
      AppendU32(*buf, a);
      AppendU32(*buf, b);
    }
  }

  /// Rebuilds a store from `reader`. Function names resolve through
  /// `fn_by_name` — the symbols of the mapping being resumed — so the memo
  /// keys match the FunctionIds the resumed chase will probe with (a
  /// synthetic id's printed name re-interns to a *different* id, so spelling
  /// round-trips alone would silently empty the memo).
  static Result<TermStore> Deserialize(
      WorldReader* reader,
      const std::unordered_map<std::string, FunctionId>& fn_by_name) {
    TermStore store;
    MAPINV_ASSIGN_OR_RETURN(const uint32_t num_nodes, reader->U32());
    // Each node costs at least 9 serialized bytes (parent + size + value
    // flag); a count the remaining bytes cannot possibly hold is corruption,
    // rejected before it can drive a huge reserve.
    if (num_nodes > reader->remaining() / 9) {
      return WorldMalformed("node count exceeds the image size");
    }
    store.parent_.reserve(num_nodes);
    for (uint32_t i = 0; i < num_nodes; ++i) {
      MAPINV_ASSIGN_OR_RETURN(const uint32_t p, reader->U32());
      if (p >= num_nodes) return WorldMalformed("parent index out of range");
      store.parent_.push_back(p);
    }
    store.size_.reserve(num_nodes);
    for (uint32_t i = 0; i < num_nodes; ++i) {
      MAPINV_ASSIGN_OR_RETURN(const uint32_t s, reader->U32());
      store.size_.push_back(s);
    }
    store.class_value_.reserve(num_nodes);
    for (uint32_t i = 0; i < num_nodes; ++i) {
      MAPINV_ASSIGN_OR_RETURN(const uint8_t has, reader->U8());
      if (has > 1) return WorldMalformed("class-value flag is not 0/1");
      if (has == 1) {
        MAPINV_ASSIGN_OR_RETURN(const Value v, ReadValue(reader));
        store.class_value_.push_back(v);
      } else {
        store.class_value_.emplace_back();
      }
    }
    MAPINV_ASSIGN_OR_RETURN(const uint32_t num_values, reader->U32());
    if (num_values > num_nodes) {
      return WorldMalformed("more value nodes than nodes");
    }
    for (uint32_t i = 0; i < num_values; ++i) {
      MAPINV_ASSIGN_OR_RETURN(const Value v, ReadValue(reader));
      MAPINV_ASSIGN_OR_RETURN(const uint32_t node, reader->U32());
      if (node >= num_nodes) return WorldMalformed("value node out of range");
      store.value_nodes_.emplace(v, node);
    }
    MAPINV_ASSIGN_OR_RETURN(const uint32_t num_fns, reader->U32());
    if (num_fns > num_nodes) {
      return WorldMalformed("more function nodes than nodes");
    }
    for (uint32_t i = 0; i < num_fns; ++i) {
      MAPINV_ASSIGN_OR_RETURN(const uint32_t name_len, reader->U32());
      MAPINV_ASSIGN_OR_RETURN(std::string_view name, reader->Bytes(name_len));
      MAPINV_ASSIGN_OR_RETURN(const Value arg, ReadValue(reader));
      MAPINV_ASSIGN_OR_RETURN(const uint32_t node, reader->U32());
      if (node >= num_nodes) {
        return WorldMalformed("function node out of range");
      }
      const auto it = fn_by_name.find(std::string(name));
      const FunctionId fn =
          it != fn_by_name.end() ? it->second : InternFunction(name);
      store.fn_nodes_.emplace(std::make_pair(fn, arg), node);
    }
    MAPINV_ASSIGN_OR_RETURN(const uint32_t num_diseq, reader->U32());
    for (uint32_t i = 0; i < num_diseq; ++i) {
      MAPINV_ASSIGN_OR_RETURN(const uint32_t a, reader->U32());
      MAPINV_ASSIGN_OR_RETURN(const uint32_t b, reader->U32());
      if (a >= num_nodes || b >= num_nodes) {
        return WorldMalformed("disequality node out of range");
      }
      store.disequalities_.emplace_back(a, b);
    }
    return store;
  }

 private:
  uint32_t NewNode(std::optional<Value> v) {
    uint32_t n = static_cast<uint32_t>(parent_.size());
    parent_.push_back(n);
    size_.push_back(1);
    class_value_.push_back(v);
    return n;
  }

  std::vector<uint32_t> parent_;
  std::vector<uint32_t> size_;
  std::vector<std::optional<Value>> class_value_;
  std::unordered_map<Value, uint32_t, ValueHash> value_nodes_;
  std::map<std::pair<FunctionId, Value>, uint32_t> fn_nodes_;
  std::vector<std::pair<uint32_t, uint32_t>> disequalities_;
};

struct SymFact {
  RelName relation;
  std::vector<uint32_t> nodes;
};

struct World {
  TermStore store;
  std::vector<SymFact> facts;
};

std::string WorldToBytes(const World& world) {
  std::string buf;
  buf.append(kWorldMagic, sizeof(kWorldMagic));
  AppendU32(buf, kWorldVersion);
  world.store.SerializeTo(&buf);
  AppendU32(buf, static_cast<uint32_t>(world.facts.size()));
  for (const SymFact& f : world.facts) {
    const std::string_view rel = RelationText(f.relation);
    AppendU32(buf, static_cast<uint32_t>(rel.size()));
    buf.append(rel);
    AppendU32(buf, static_cast<uint32_t>(f.nodes.size()));
    for (const uint32_t n : f.nodes) AppendU32(buf, n);
  }
  AppendU64(buf, Fnv1a(buf.data(), buf.size()));
  return buf;
}

Result<World> WorldFromBytes(
    std::string_view image,
    const std::unordered_map<std::string, FunctionId>& fn_by_name) {
  const uint8_t* bytes = reinterpret_cast<const uint8_t*>(image.data());
  if (image.size() < sizeof(kWorldMagic) + sizeof(uint64_t)) {
    return WorldMalformed("image shorter than magic plus checksum");
  }
  uint64_t stored_sum;
  std::memcpy(&stored_sum, bytes + image.size() - sizeof(uint64_t),
              sizeof(uint64_t));
  if (Fnv1a(bytes, image.size() - sizeof(uint64_t)) != stored_sum) {
    return WorldMalformed("checksum mismatch (torn or corrupted write)");
  }
  WorldReader reader(bytes, image.size() - sizeof(uint64_t));
  MAPINV_ASSIGN_OR_RETURN(std::string_view magic,
                          reader.Bytes(sizeof(kWorldMagic)));
  if (std::memcmp(magic.data(), kWorldMagic, sizeof(kWorldMagic)) != 0) {
    return WorldMalformed("bad magic");
  }
  MAPINV_ASSIGN_OR_RETURN(const uint32_t version, reader.U32());
  if (version != kWorldVersion) {
    return WorldMalformed("unsupported version " + std::to_string(version));
  }
  World world;
  MAPINV_ASSIGN_OR_RETURN(world.store,
                          TermStore::Deserialize(&reader, fn_by_name));
  const uint32_t num_nodes = world.store.NumNodes();
  MAPINV_ASSIGN_OR_RETURN(const uint32_t num_facts, reader.U32());
  for (uint32_t i = 0; i < num_facts; ++i) {
    MAPINV_ASSIGN_OR_RETURN(const uint32_t rel_len, reader.U32());
    MAPINV_ASSIGN_OR_RETURN(std::string_view rel, reader.Bytes(rel_len));
    SymFact fact;
    fact.relation = InternRelation(rel);
    MAPINV_ASSIGN_OR_RETURN(const uint32_t arity, reader.U32());
    if (arity > reader.remaining() / sizeof(uint32_t)) {
      return WorldMalformed("fact arity exceeds the image size");
    }
    fact.nodes.reserve(arity);
    for (uint32_t j = 0; j < arity; ++j) {
      MAPINV_ASSIGN_OR_RETURN(const uint32_t node, reader.U32());
      if (node >= num_nodes) return WorldMalformed("fact node out of range");
      fact.nodes.push_back(node);
    }
    world.facts.push_back(std::move(fact));
  }
  if (reader.pos() != image.size() - sizeof(uint64_t)) {
    return WorldMalformed("trailing bytes after the fact list");
  }
  return world;
}

// The function symbols a resumed chase will look up, keyed by printed name —
// collected from every term of the mapping so Deserialize can map persisted
// spellings back to the ids of *this* run's rule objects.
void CollectFunctionNames(const Term& term,
                          std::unordered_map<std::string, FunctionId>* out) {
  if (term.kind() == Term::Kind::kFunction) {
    out->emplace(FunctionName(term.fn()), term.fn());
    for (const Term& a : term.args()) CollectFunctionNames(a, out);
  }
}

std::unordered_map<std::string, FunctionId> MappingFunctionNames(
    const SOInverseMapping& mapping) {
  std::unordered_map<std::string, FunctionId> names;
  for (const SOInverseRule& rule : mapping.inverse.rules) {
    for (const SOInvDisjunct& d : rule.disjuncts) {
      for (const TermEq& eq : d.equalities) {
        CollectFunctionNames(eq.lhs, &names);
        CollectFunctionNames(eq.rhs, &names);
      }
      for (const TermEq& ne : d.inequalities) {
        CollectFunctionNames(ne.lhs, &names);
        CollectFunctionNames(ne.rhs, &names);
      }
      for (const Atom& atom : d.atoms) {
        for (const Term& t : atom.terms) CollectFunctionNames(t, &names);
      }
    }
  }
  return names;
}

// Evaluates a conclusion term to a node. The trigger row (columns = `vars`,
// the TriggerBatch order) binds the premise variables ū; `local` binds this
// firing's existential variables ȳ (any variable absent from the premise
// gets a fresh node, memoised per firing).
Result<uint32_t> TermNode(const Term& term, const std::vector<VarId>& vars,
                          const Value* row,
                          std::unordered_map<VarId, uint32_t>* local,
                          TermStore* store) {
  switch (term.kind()) {
    case Term::Kind::kVariable: {
      const auto it = std::lower_bound(vars.begin(), vars.end(), term.var());
      if (it != vars.end() && *it == term.var()) {
        return store->NodeForValue(row[it - vars.begin()]);
      }
      auto [lit, inserted] = local->emplace(term.var(), 0);
      if (inserted) lit->second = store->FreshNode();
      return lit->second;
    }
    case Term::Kind::kConstant:
      return store->NodeForValue(term.value());
    case Term::Kind::kFunction: {
      if (term.args().size() != 1 || !term.args()[0].is_variable()) {
        return Status::Unsupported(
            "SO-inverse chase supports unary inverse functions applied to "
            "premise variables; got " + term.ToString());
      }
      const VarId arg = term.args()[0].var();
      const auto it = std::lower_bound(vars.begin(), vars.end(), arg);
      if (it == vars.end() || *it != arg) {
        return Status::Unsupported("inverse function applied to existential "
                                   "variable: " + term.ToString());
      }
      return store->NodeForFn(term.fn(), row[it - vars.begin()]);
    }
  }
  return Status::Internal("unreachable term kind");
}

// Tries to apply `disjunct` under a trigger row in `world`; on success
// returns the extended world, otherwise nullopt.
Result<std::optional<World>> ApplyDisjunct(const SOInvDisjunct& disjunct,
                                           const std::vector<VarId>& vars,
                                           const Value* row, World world) {
  std::unordered_map<VarId, uint32_t> local;
  for (const TermEq& eq : disjunct.equalities) {
    MAPINV_ASSIGN_OR_RETURN(uint32_t a,
                            TermNode(eq.lhs, vars, row, &local, &world.store));
    MAPINV_ASSIGN_OR_RETURN(uint32_t b,
                            TermNode(eq.rhs, vars, row, &local, &world.store));
    if (!world.store.Union(a, b)) return std::optional<World>{};
  }
  for (const TermEq& ne : disjunct.inequalities) {
    MAPINV_ASSIGN_OR_RETURN(uint32_t a,
                            TermNode(ne.lhs, vars, row, &local, &world.store));
    MAPINV_ASSIGN_OR_RETURN(uint32_t b,
                            TermNode(ne.rhs, vars, row, &local, &world.store));
    if (!world.store.AddDisequality(a, b)) return std::optional<World>{};
  }
  for (const Atom& atom : disjunct.atoms) {
    SymFact f;
    f.relation = atom.relation;
    f.nodes.reserve(atom.terms.size());
    for (const Term& t : atom.terms) {
      MAPINV_ASSIGN_OR_RETURN(
          uint32_t n, TermNode(t, vars, row, &local, &world.store));
      f.nodes.push_back(n);
    }
    world.facts.push_back(std::move(f));
  }
  return std::optional<World>(std::move(world));
}

Result<Instance> Materialize(const World& world,
                             std::shared_ptr<const Schema> schema,
                             SymbolContext& symbols) {
  Instance out(std::move(schema));
  std::unordered_map<uint32_t, Value> null_of_class;
  for (const SymFact& f : world.facts) {
    Tuple t;
    t.reserve(f.nodes.size());
    for (uint32_t n : f.nodes) {
      std::optional<Value> v = world.store.ClassValue(n);
      if (v.has_value()) {
        t.push_back(*v);
      } else {
        uint32_t root = world.store.Find(n);
        auto [it, inserted] = null_of_class.emplace(root, Value());
        if (inserted) it->second = Value::FreshNull(symbols);
        t.push_back(it->second);
      }
    }
    MAPINV_ASSIGN_OR_RETURN(bool added,
                            out.Add(RelationText(f.relation), std::move(t)));
    (void)added;
  }
  return out;
}

}  // namespace

Result<std::vector<Instance>> ChaseSOInverseWorlds(
    const SOInverseMapping& mapping, const Instance& input,
    const ExecutionOptions& options) {
  ScopedTraceSpan span(options, "chase_so_inverse");
  MAPINV_FAILPOINT(fp_so_inv_entry);
  ExecDeadline entry_deadline(options.deadline_ms);
  const ExecDeadline& deadline = CarriedDeadline(options, entry_deadline);
  SymbolContext& symbols = ResolveSymbols(options, input);
  HomSearch search(input);
  search.set_stats(options.stats);
  std::vector<World> worlds(1);
  // Checkpointed-job state (see src/job/job.h and ChaseReverseWorlds, whose
  // protocol this mirrors). Symbolic worlds persist through the MAPINVSW
  // codec above; nulls are only minted by Materialize, after the final
  // commit, so the restored watermark makes materialized output of a resumed
  // run byte-identical to an uninterrupted one.
  std::optional<JobCheckpointer> job;
  size_t resume_rule = 0;
  uint64_t resume_trigger = 0;
  bool restored_complete = false;
  if (!options.checkpoint_dir.empty()) {
    const uint64_t fingerprint =
        JobFingerprint(JobKind::kSOInverseWorlds, mapping.ToString(),
                       input.ToString(), options.oblivious);
    MAPINV_ASSIGN_OR_RETURN(
        JobCheckpointer opened,
        JobCheckpointer::Open(options.checkpoint_dir,
                              JobKind::kSOInverseWorlds, fingerprint,
                              options.resume));
    job.emplace(std::move(opened));
    if (job->resumed().has_value()) {
      const JobResumeState& state = *job->resumed();
      const std::unordered_map<std::string, FunctionId> fn_by_name =
          MappingFunctionNames(mapping);
      worlds.clear();
      for (const std::string& image : state.world_images) {
        MAPINV_ASSIGN_OR_RETURN(World world,
                                WorldFromBytes(image, fn_by_name));
        worlds.push_back(std::move(world));
      }
      resume_rule = state.manifest.dep_index;
      resume_trigger = state.manifest.trigger_index;
      restored_complete = state.manifest.complete;
      if (state.manifest.null_watermark > 0) {
        symbols.BumpNullPast(
            static_cast<uint32_t>(state.manifest.null_watermark - 1));
      }
      if (options.stats != nullptr) {
        options.stats->worlds_resumed.fetch_add(state.world_images.size(),
                                                std::memory_order_relaxed);
      }
      // An empty frontier is only ever committed complete (the inconsistent
      // outcome); honour it rather than chase from nothing.
      if (worlds.empty()) return std::vector<Instance>{};
    }
  }
  const size_t checkpoint_every = options.checkpoint_every == 0
                                      ? kDefaultCheckpointEvery
                                      : options.checkpoint_every;
  size_t since_commit = 0;
  auto commit_checkpoint = [&](size_t rule_index, uint64_t trigger_index,
                               bool complete) -> Status {
    if (!job.has_value()) return Status::OK();
    std::vector<std::string> images;
    images.reserve(worlds.size());
    for (const World& world : worlds) images.push_back(WorldToBytes(world));
    JobManifest manifest;
    manifest.complete = complete;
    manifest.dep_index = static_cast<uint32_t>(rule_index);
    manifest.trigger_index = trigger_index;
    manifest.null_watermark = symbols.NullWatermark();
    since_commit = 0;
    return job->Commit(std::move(manifest), images, options.stats);
  };
  // kPartial degrades at whole-trigger granularity: every world finishes the
  // current trigger before the run stops (see ChaseReverseWorlds).
  bool cut_short = false;
  for (size_t rule_index =
           restored_complete ? mapping.inverse.rules.size() : resume_rule;
       rule_index < mapping.inverse.rules.size(); ++rule_index) {
    const SOInverseRule& rule = mapping.inverse.rules[rule_index];
    HomConstraints constraints;
    constraints.constant_vars.insert(rule.constant_vars.begin(),
                                     rule.constant_vars.end());
    TriggerBatch triggers;
    {
      ScopedTraceSpan collect_span(options, "collect_triggers");
      Result<TriggerBatch> collected = CollectTriggers(
          search, input, {rule.premise}, constraints, options, deadline);
      if (!collected.ok()) {
        if (DegradeToPartial(options, collected.status())) break;
        return collected.status();
      }
      triggers = std::move(collected).ValueOrDie();
    }
    ScopedTraceSpan fire_span(options, "fire");
    // Trigger collection is deterministic for a fixed input, so the cursor
    // index is meaningful across processes (see ChaseReverseWorlds).
    const size_t first_trigger =
        rule_index == resume_rule ? static_cast<size_t>(resume_trigger) : 0;
    for (size_t t = first_trigger; t < triggers.rows; ++t) {
      if (Status poll =
              PollPhaseInterrupt(options, deadline, "chase_so_inverse");
          !poll.ok()) {
        if (DegradeToPartial(options, poll)) {
          cut_short = true;
          break;
        }
        return poll;
      }
      MAPINV_FAILPOINT(fp_so_inv_fire);
      const Value* row = triggers.Row(t);
      if (options.stats != nullptr) {
        options.stats->chase_steps.fetch_add(1, std::memory_order_relaxed);
      }
      std::vector<World> next;
      for (World& world : worlds) {
        for (size_t di = 0; di < rule.disjuncts.size(); ++di) {
          const SOInvDisjunct& d = rule.disjuncts[di];
          // The last disjunct consumes the world; earlier ones fork a copy
          // of the symbolic store (counted as a world fork).
          const bool last = di + 1 == rule.disjuncts.size();
          if (!last) {
            MAPINV_FAILPOINT(fp_so_inv_fork);
            if (options.stats != nullptr) {
              options.stats->worlds_forked.fetch_add(
                  1, std::memory_order_relaxed);
            }
          }
          MAPINV_ASSIGN_OR_RETURN(
              std::optional<World> applied,
              ApplyDisjunct(d, triggers.vars, row,
                            last ? std::move(world) : World(world)));
          if (applied.has_value()) next.push_back(std::move(*applied));
        }
      }
      worlds = std::move(next);
      if (worlds.empty()) {  // inconsistent in every disjunct
        MAPINV_RETURN_NOT_OK(commit_checkpoint(rule_index, t + 1, true));
        return std::vector<Instance>{};
      }
      // Checked after the whole trigger (see ChaseReverseWorlds): a partial
      // stop never leaves a world with a half-applied trigger.
      if (worlds.size() > options.max_worlds) {
        Status exhausted =
            PhaseExhausted("chase_so_inverse",
                           "exceeded max_worlds = " +
                               std::to_string(options.max_worlds));
        if (DegradeToPartial(options, exhausted)) {
          cut_short = true;
          break;
        }
        return exhausted;
      }
      // The frontier is consistent exactly at trigger boundaries; commit
      // here, with the cursor on the next unprocessed trigger.
      if (job.has_value() && ++since_commit >= checkpoint_every) {
        MAPINV_RETURN_NOT_OK(commit_checkpoint(rule_index, t + 1, false));
      }
    }
    if (cut_short) break;
  }
  // Final commit marks the job complete — deliberately *before* Materialize
  // mints nulls, so a resume of a finished job re-materializes from the same
  // watermark and reproduces the output byte for byte.
  if (!restored_complete) {
    MAPINV_RETURN_NOT_OK(
        commit_checkpoint(mapping.inverse.rules.size(), 0, true));
  }
  std::vector<Instance> out;
  out.reserve(worlds.size());
  for (const World& w : worlds) {
    MAPINV_ASSIGN_OR_RETURN(Instance inst,
                            Materialize(w, mapping.target, symbols));
    out.push_back(std::move(inst));
  }
  if (options.stats != nullptr) {
    uint64_t bytes = 0;
    uint64_t resident = 0;
    for (const Instance& inst : out) {
      bytes += inst.ArenaBytes();
      resident += inst.ResidentBytes();
    }
    options.stats->ObserveArenaBytes(bytes);
    options.stats->ObserveResidentBytes(resident);
  }
  return out;
}

Result<AnswerSet> CertainAnswersSOInverse(const SOInverseMapping& mapping,
                                          const Instance& input,
                                          const ConjunctiveQuery& query,
                                          const ExecutionOptions& options) {
  MAPINV_ASSIGN_OR_RETURN(std::vector<Instance> worlds,
                          ChaseSOInverseWorlds(mapping, input, options));
  if (worlds.empty()) {
    return Status::Malformed("SO-inverse chase: no consistent world");
  }
  bool first = true;
  AnswerSet certain;
  for (const Instance& world : worlds) {
    MAPINV_ASSIGN_OR_RETURN(AnswerSet answers, EvaluateCq(query, world));
    AnswerSet c = answers.CertainOnly();
    if (first) {
      certain = std::move(c);
      first = false;
    } else {
      certain = certain.Intersect(c);
    }
  }
  return certain;
}

}  // namespace mapinv
