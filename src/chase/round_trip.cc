#include "chase/round_trip.h"

#include "engine/failpoint.h"
#include "engine/trace.h"

namespace mapinv {

namespace {
FailPoint fp_round_trip_entry("round_trip/entry");
FailPoint fp_round_trip_so_entry("round_trip_so/entry");
}  // namespace

Result<std::vector<Instance>> RoundTripWorlds(const TgdMapping& mapping,
                                              const ReverseMapping& reverse,
                                              const Instance& source,
                                              const ExecutionOptions& options) {
  // One budget for both chases: resolve the deadline here and carry it into
  // the stages, instead of letting each restart the full deadline_ms.
  // In kPartial mode a stage cut short degrades inside the stage itself; a
  // forward chase stopped early simply hands a smaller canonical instance to
  // the reverse chase, which then degrades in turn on the shared budget.
  ScopedTraceSpan span(options, "round_trip");
  MAPINV_FAILPOINT(fp_round_trip_entry);
  ExecDeadline entry_deadline(options.deadline_ms);
  ExecutionOptions inner = options;
  inner.deadline = &CarriedDeadline(options, entry_deadline);
  MAPINV_ASSIGN_OR_RETURN(Instance canonical,
                          ChaseTgds(mapping, source, inner));
  return ChaseReverseWorlds(reverse, canonical, inner);
}

Result<AnswerSet> RoundTripCertain(const TgdMapping& mapping,
                                   const ReverseMapping& reverse,
                                   const Instance& source,
                                   const ConjunctiveQuery& query,
                                   const ExecutionOptions& options) {
  MAPINV_ASSIGN_OR_RETURN(std::vector<Instance> worlds,
                          RoundTripWorlds(mapping, reverse, source, options));
  return CertainOverWorlds(worlds, query);
}

Result<std::vector<Instance>> RoundTripWorldsSO(const SOTgdMapping& mapping,
                                                const SOInverseMapping& inverse,
                                                const Instance& source,
                                                const ExecutionOptions& options) {
  ScopedTraceSpan span(options, "round_trip");
  MAPINV_FAILPOINT(fp_round_trip_so_entry);
  ExecDeadline entry_deadline(options.deadline_ms);
  ExecutionOptions inner = options;
  inner.deadline = &CarriedDeadline(options, entry_deadline);
  MAPINV_ASSIGN_OR_RETURN(Instance canonical,
                          ChaseSOTgd(mapping, source, inner));
  return ChaseSOInverseWorlds(inverse, canonical, inner);
}

Result<AnswerSet> RoundTripCertainSO(const SOTgdMapping& mapping,
                                     const SOInverseMapping& inverse,
                                     const Instance& source,
                                     const ConjunctiveQuery& query,
                                     const ExecutionOptions& options) {
  MAPINV_ASSIGN_OR_RETURN(
      std::vector<Instance> worlds,
      RoundTripWorldsSO(mapping, inverse, source, options));
  return CertainOverWorlds(worlds, query);
}

Result<AnswerSet> CertainOverWorlds(const std::vector<Instance>& worlds,
                                    const ConjunctiveQuery& query) {
  if (worlds.empty()) {
    return Status::Malformed("certain answers over an empty world set");
  }
  bool first = true;
  AnswerSet certain;
  for (const Instance& world : worlds) {
    MAPINV_ASSIGN_OR_RETURN(AnswerSet answers, EvaluateCq(query, world));
    AnswerSet c = answers.CertainOnly();
    if (first) {
      certain = std::move(c);
      first = false;
    } else {
      certain = certain.Intersect(c);
    }
  }
  return certain;
}

}  // namespace mapinv
