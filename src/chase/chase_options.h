/// \file chase_options.h
/// \brief Resource limits shared by all chase engines.

#ifndef MAPINV_CHASE_CHASE_OPTIONS_H_
#define MAPINV_CHASE_CHASE_OPTIONS_H_

#include <cstddef>

namespace mapinv {

/// \brief Limits guarding chase runs. Source-to-target chases always
/// terminate, but adversarial inputs can still be quadratically large; the
/// limits turn runaways into clean kResourceExhausted errors.
struct ChaseOptions {
  /// If true, fire every trigger without checking whether the conclusion is
  /// already satisfied (the *oblivious* / naive chase). The oblivious chase
  /// gives the canonical instance used for data-exchange equivalence tests;
  /// the standard chase (false) gives smaller universal solutions.
  bool oblivious = false;
  /// Maximum number of facts a chase may create.
  size_t max_new_facts = 4u << 20;
  /// Maximum number of worlds a disjunctive chase may track.
  size_t max_worlds = 4096;
};

}  // namespace mapinv

#endif  // MAPINV_CHASE_CHASE_OPTIONS_H_
