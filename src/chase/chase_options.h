/// \file chase_options.h
/// \brief Deprecated alias: ChaseOptions is now ExecutionOptions.
///
/// The chase-specific limits struct was folded into the unified execution
/// API (engine/execution_options.h) together with RewriteOptions,
/// ComposeOptions, EliminateEqualitiesOptions and CqMaximumRecoveryOptions.
/// Every historical field (`oblivious`, `max_new_facts`, `max_worlds`)
/// exists on ExecutionOptions with the same name and default, so existing
/// code keeps compiling — with a deprecation warning nudging it to the new
/// spelling.

#ifndef MAPINV_CHASE_CHASE_OPTIONS_H_
#define MAPINV_CHASE_CHASE_OPTIONS_H_

#include "engine/execution_options.h"

namespace mapinv {

using ChaseOptions [[deprecated("use ExecutionOptions")]] = ExecutionOptions;

}  // namespace mapinv

#endif  // MAPINV_CHASE_CHASE_OPTIONS_H_
