/// \file fire_plan.h
/// \brief Precompiled conclusion atoms for the chase fire loops.
///
/// Firing a trigger used to resolve every conclusion atom's relation by name
/// (an interner lookup plus a schema hash probe per fired fact) and to copy
/// the whole trigger assignment into an extended hash map before building
/// each tuple. This helper compiles a conclusion once per dependency:
/// relations resolve to RelationIds up front, and every term is classified
/// as constant / premise-bound variable / existential (by index into the
/// dependency's existential-variable list). The fire loop then assembles
/// rows into a reused scratch buffer and appends them with Instance::AddRow
/// — no strings, no hash-map copies, no per-tuple allocation.
///
/// The column-indexed variants (FireAtomCols / BuildFireRowCols) read the
/// trigger straight out of a TriggerBatch row instead of an Assignment hash
/// map, and BulkFireScratch buffers a whole batch of assembled conclusion
/// rows per relation so the chase appends them with one Instance::AddRows
/// dedup pass per relation per batch — the bulk fire path behind
/// ExecutionOptions::vectorized.

#ifndef MAPINV_CHASE_FIRE_PLAN_H_
#define MAPINV_CHASE_FIRE_PLAN_H_

#include <algorithm>
#include <unordered_map>
#include <vector>

#include "base/status.h"
#include "data/instance.h"
#include "eval/hom.h"
#include "logic/atom.h"

namespace mapinv {

/// One compiled conclusion term.
struct FireTerm {
  enum class Kind { kConstant, kBound, kExistential } kind;
  Value constant;   // kConstant
  VarId var = 0;    // kBound: key into the trigger assignment
  uint32_t ex = 0;  // kExistential: index into the per-firing fresh nulls
};

/// One compiled conclusion atom.
struct FireAtom {
  RelationId relation;
  std::vector<FireTerm> terms;
};

/// Compiles `atoms` against `schema`. Variables in `existential_vars` become
/// kExistential terms indexed by their position in that list; every other
/// variable is kBound (looked up in the trigger assignment at fire time).
inline Result<std::vector<FireAtom>> CompileFireAtoms(
    const std::vector<Atom>& atoms, const Schema& schema,
    const std::vector<VarId>& existential_vars) {
  std::unordered_map<VarId, uint32_t> ex_index;
  for (uint32_t i = 0; i < existential_vars.size(); ++i) {
    ex_index.emplace(existential_vars[i], i);
  }
  std::vector<FireAtom> out;
  out.reserve(atoms.size());
  for (const Atom& atom : atoms) {
    FireAtom fa;
    MAPINV_ASSIGN_OR_RETURN(fa.relation,
                            schema.Require(RelationText(atom.relation)));
    fa.terms.reserve(atom.terms.size());
    for (const Term& term : atom.terms) {
      FireTerm ft;
      if (term.is_constant()) {
        ft.kind = FireTerm::Kind::kConstant;
        ft.constant = term.value();
      } else {
        auto it = ex_index.find(term.var());
        if (it != ex_index.end()) {
          ft.kind = FireTerm::Kind::kExistential;
          ft.ex = it->second;
        } else {
          ft.kind = FireTerm::Kind::kBound;
          ft.var = term.var();
        }
      }
      fa.terms.push_back(ft);
    }
    out.push_back(std::move(fa));
  }
  return out;
}

/// Assembles one compiled atom's row into `scratch` from the trigger
/// assignment `h` and the per-firing `fresh` nulls.
inline void BuildFireRow(const FireAtom& fa, const Assignment& h,
                         const std::vector<Value>& fresh,
                         std::vector<Value>* scratch) {
  scratch->clear();
  for (const FireTerm& ft : fa.terms) {
    switch (ft.kind) {
      case FireTerm::Kind::kConstant:
        scratch->push_back(ft.constant);
        break;
      case FireTerm::Kind::kBound:
        scratch->push_back(h.at(ft.var));
        break;
      case FireTerm::Kind::kExistential:
        scratch->push_back(fresh[ft.ex]);
        break;
    }
  }
}

/// One compiled conclusion term, column-indexed: bound variables resolve to
/// a column of the trigger row instead of a hash-map key.
struct FireTermCol {
  enum class Kind { kConstant, kBound, kExistential } kind;
  Value constant;    // kConstant
  uint32_t col = 0;  // kBound: column index into the trigger row
  uint32_t ex = 0;   // kExistential: index into the per-firing fresh nulls
};

/// One compiled conclusion atom, column-indexed.
struct FireAtomCols {
  RelationId relation;
  std::vector<FireTermCol> terms;
};

/// Compiles `atoms` against `schema` with bound variables resolved to
/// columns of `trigger_vars` (the TriggerBatch column order: sorted
/// ascending). Variables in `existential_vars` become kExistential terms;
/// every other variable must be a trigger column.
inline Result<std::vector<FireAtomCols>> CompileFireAtomsCols(
    const std::vector<Atom>& atoms, const Schema& schema,
    const std::vector<VarId>& existential_vars,
    const std::vector<VarId>& trigger_vars) {
  std::unordered_map<VarId, uint32_t> ex_index;
  for (uint32_t i = 0; i < existential_vars.size(); ++i) {
    ex_index.emplace(existential_vars[i], i);
  }
  std::vector<FireAtomCols> out;
  out.reserve(atoms.size());
  for (const Atom& atom : atoms) {
    FireAtomCols fa;
    MAPINV_ASSIGN_OR_RETURN(fa.relation,
                            schema.Require(RelationText(atom.relation)));
    fa.terms.reserve(atom.terms.size());
    for (const Term& term : atom.terms) {
      FireTermCol ft;
      if (term.is_constant()) {
        ft.kind = FireTermCol::Kind::kConstant;
        ft.constant = term.value();
      } else {
        auto it = ex_index.find(term.var());
        if (it != ex_index.end()) {
          ft.kind = FireTermCol::Kind::kExistential;
          ft.ex = it->second;
        } else {
          const auto col = std::lower_bound(trigger_vars.begin(),
                                            trigger_vars.end(), term.var());
          if (col == trigger_vars.end() || *col != term.var()) {
            return Status::Internal("conclusion variable v" +
                                    std::to_string(term.var()) +
                                    " is neither existential nor a premise "
                                    "variable");
          }
          ft.kind = FireTermCol::Kind::kBound;
          ft.col = static_cast<uint32_t>(col - trigger_vars.begin());
        }
      }
      fa.terms.push_back(ft);
    }
    out.push_back(std::move(fa));
  }
  return out;
}

/// Assembles one column-indexed atom's row into `scratch` from a trigger row
/// (in the compile-time column order) and the per-firing fresh nulls
/// (`fresh` may be null when the atom has no existential terms).
inline void BuildFireRowCols(const FireAtomCols& fa, const Value* row,
                             const Value* fresh, std::vector<Value>* scratch) {
  scratch->clear();
  for (const FireTermCol& ft : fa.terms) {
    switch (ft.kind) {
      case FireTermCol::Kind::kConstant:
        scratch->push_back(ft.constant);
        break;
      case FireTermCol::Kind::kBound:
        scratch->push_back(row[ft.col]);
        break;
      case FireTermCol::Kind::kExistential:
        scratch->push_back(fresh[ft.ex]);
        break;
    }
  }
}

/// \brief Per-relation row buffers for batch firing.
///
/// A fire batch assembles every conclusion row of up to vector_batch
/// triggers into these buffers (triggers outer, atoms inner, so each
/// relation receives its rows in exactly the order the per-trigger AddRow
/// loop would produce), then FlushBulkFire appends each buffer with one
/// Instance::AddRows call — a single dedup-probe pass per relation per
/// batch. `fired[t]` is set when trigger `t` contributed at least one
/// genuinely new row; for existential-free dependencies that is exactly
/// "the trigger was unsatisfied", so the bulk path needs no per-trigger
/// satisfaction probe.
struct BulkFireScratch {
  struct RelBuf {
    RelationId relation = 0;
    uint32_t arity = 0;
    std::vector<Value> rows;      ///< row-major pending rows
    std::vector<uint32_t> owner;  ///< pending row -> batch trigger index
    std::vector<uint8_t> added;   ///< AddRows out-flags, reused per flush
  };
  std::vector<RelBuf> bufs;
  /// Conclusion atom index -> index into `bufs` (atoms sharing a relation
  /// share a buffer, preserving per-relation insertion order).
  std::vector<size_t> atom_buf;
  /// Per-trigger "added at least one row" flags for the current batch.
  std::vector<uint8_t> fired;

  void BeginBatch(size_t num_triggers) {
    fired.assign(num_triggers, 0);
    for (RelBuf& b : bufs) {
      b.rows.clear();
      b.owner.clear();
    }
  }

  void Append(size_t buf_index, uint32_t trigger, const Value* row) {
    RelBuf& b = bufs[buf_index];
    b.rows.insert(b.rows.end(), row, row + b.arity);
    b.owner.push_back(trigger);
  }
};

/// Builds the per-relation buffers for conclusion atoms resolved to
/// `relations` (one buffer per distinct relation, in first-appearance
/// order) — the SO chase resolves relations itself, so it passes ids.
inline BulkFireScratch MakeBulkFireScratch(
    const std::vector<RelationId>& relations, const Schema& schema) {
  BulkFireScratch s;
  s.atom_buf.reserve(relations.size());
  for (RelationId rel : relations) {
    size_t b = 0;
    for (; b < s.bufs.size(); ++b) {
      if (s.bufs[b].relation == rel) break;
    }
    if (b == s.bufs.size()) {
      BulkFireScratch::RelBuf buf;
      buf.relation = rel;
      buf.arity = schema.arity(rel);
      s.bufs.push_back(std::move(buf));
    }
    s.atom_buf.push_back(b);
  }
  return s;
}

/// Builds the per-relation buffers for `atoms` (one buffer per distinct
/// conclusion relation, in first-appearance order).
inline BulkFireScratch MakeBulkFireScratch(const std::vector<FireAtomCols>& atoms,
                                           const Schema& schema) {
  std::vector<RelationId> relations;
  relations.reserve(atoms.size());
  for (const FireAtomCols& fa : atoms) relations.push_back(fa.relation);
  return MakeBulkFireScratch(relations, schema);
}

/// Appends every buffered row into `target` (one AddRows per relation, with
/// a capacity hint), marks `s->fired` for owning triggers of added rows, and
/// invokes `on_added(relation, ref, trigger)` for each genuinely new row —
/// the k-th added row of a relation lands at ref (NumRows - inserted + k),
/// since AddRows appends densely. Returns the number of rows added.
template <typename OnAdded>
inline Result<size_t> FlushBulkFire(Instance* target, BulkFireScratch* s,
                                    OnAdded&& on_added) {
  size_t created = 0;
  for (BulkFireScratch::RelBuf& b : s->bufs) {
    const size_t count = b.owner.size();
    if (count == 0) continue;
    target->Reserve(b.relation, count);
    MAPINV_ASSIGN_OR_RETURN(
        size_t inserted,
        target->AddRows(b.relation, b.rows.data(), count, &b.added));
    created += inserted;
    size_t ref = target->NumRows(b.relation) - inserted;
    for (size_t i = 0; i < count; ++i) {
      if (!b.added[i]) continue;
      s->fired[b.owner[i]] = 1;
      on_added(b.relation, static_cast<TupleRef>(ref), b.owner[i]);
      ++ref;
    }
  }
  return created;
}

}  // namespace mapinv

#endif  // MAPINV_CHASE_FIRE_PLAN_H_
