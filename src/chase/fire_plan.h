/// \file fire_plan.h
/// \brief Precompiled conclusion atoms for the chase fire loops.
///
/// Firing a trigger used to resolve every conclusion atom's relation by name
/// (an interner lookup plus a schema hash probe per fired fact) and to copy
/// the whole trigger assignment into an extended hash map before building
/// each tuple. This helper compiles a conclusion once per dependency:
/// relations resolve to RelationIds up front, and every term is classified
/// as constant / premise-bound variable / existential (by index into the
/// dependency's existential-variable list). The fire loop then assembles
/// rows into a reused scratch buffer and appends them with Instance::AddRow
/// — no strings, no hash-map copies, no per-tuple allocation.

#ifndef MAPINV_CHASE_FIRE_PLAN_H_
#define MAPINV_CHASE_FIRE_PLAN_H_

#include <unordered_map>
#include <vector>

#include "base/status.h"
#include "data/instance.h"
#include "eval/hom.h"
#include "logic/atom.h"

namespace mapinv {

/// One compiled conclusion term.
struct FireTerm {
  enum class Kind { kConstant, kBound, kExistential } kind;
  Value constant;   // kConstant
  VarId var = 0;    // kBound: key into the trigger assignment
  uint32_t ex = 0;  // kExistential: index into the per-firing fresh nulls
};

/// One compiled conclusion atom.
struct FireAtom {
  RelationId relation;
  std::vector<FireTerm> terms;
};

/// Compiles `atoms` against `schema`. Variables in `existential_vars` become
/// kExistential terms indexed by their position in that list; every other
/// variable is kBound (looked up in the trigger assignment at fire time).
inline Result<std::vector<FireAtom>> CompileFireAtoms(
    const std::vector<Atom>& atoms, const Schema& schema,
    const std::vector<VarId>& existential_vars) {
  std::unordered_map<VarId, uint32_t> ex_index;
  for (uint32_t i = 0; i < existential_vars.size(); ++i) {
    ex_index.emplace(existential_vars[i], i);
  }
  std::vector<FireAtom> out;
  out.reserve(atoms.size());
  for (const Atom& atom : atoms) {
    FireAtom fa;
    MAPINV_ASSIGN_OR_RETURN(fa.relation,
                            schema.Require(RelationText(atom.relation)));
    fa.terms.reserve(atom.terms.size());
    for (const Term& term : atom.terms) {
      FireTerm ft;
      if (term.is_constant()) {
        ft.kind = FireTerm::Kind::kConstant;
        ft.constant = term.value();
      } else {
        auto it = ex_index.find(term.var());
        if (it != ex_index.end()) {
          ft.kind = FireTerm::Kind::kExistential;
          ft.ex = it->second;
        } else {
          ft.kind = FireTerm::Kind::kBound;
          ft.var = term.var();
        }
      }
      fa.terms.push_back(ft);
    }
    out.push_back(std::move(fa));
  }
  return out;
}

/// Assembles one compiled atom's row into `scratch` from the trigger
/// assignment `h` and the per-firing `fresh` nulls.
inline void BuildFireRow(const FireAtom& fa, const Assignment& h,
                         const std::vector<Value>& fresh,
                         std::vector<Value>* scratch) {
  scratch->clear();
  for (const FireTerm& ft : fa.terms) {
    switch (ft.kind) {
      case FireTerm::Kind::kConstant:
        scratch->push_back(ft.constant);
        break;
      case FireTerm::Kind::kBound:
        scratch->push_back(h.at(ft.var));
        break;
      case FireTerm::Kind::kExistential:
        scratch->push_back(fresh[ft.ex]);
        break;
    }
  }
}

}  // namespace mapinv

#endif  // MAPINV_CHASE_FIRE_PLAN_H_
