/// \file maintained.h
/// \brief A chased solution kept incrementally up to date with its source.
///
/// MaintainedSolution owns the full incremental-chase lifecycle for one
/// (mapping, source) pair: the growing source instance, the chased target,
/// the per-fired-tuple provenance table, the watermark separating absorbed
/// from un-absorbed source rows, and — crucially — a persistent
/// SymbolContext scoping the target's labelled nulls. Requests normally run
/// with a *fresh* symbol context each (see request.h's determinism
/// contract); a maintained target lives across requests, so its null labels
/// must come from a context that lives with it, or a later refresh could
/// mint a label the target already uses.
///
/// Refresh protocol (commit-on-complete): ChaseDelta runs on a COW fork of
/// the target plus a copy of the provenance; only a *complete* (non-partial)
/// absorption commits the fork and advances the watermark. A degraded
/// refresh renders its sound prefix but commits nothing, so the next
/// refresh retries the whole outstanding delta instead of silently losing
/// the unfired triggers.
///
/// Thread-safe; the internal mutex is held across a refresh, serialising
/// refreshes per maintained solution (appends and snapshots block only for
/// the duration of the chase — acceptable for the serving layer, which
/// already executes requests one session-instance at a time in practice).

#ifndef MAPINV_CHASE_MAINTAINED_H_
#define MAPINV_CHASE_MAINTAINED_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>

#include "base/status.h"
#include "base/symbol_context.h"
#include "chase/provenance.h"
#include "data/instance.h"
#include "engine/execution_options.h"
#include "engine/parallel_chase.h"
#include "logic/mapping.h"

namespace mapinv {

/// \brief One incrementally maintained (source, target) pair.
class MaintainedSolution {
 public:
  /// Starts empty and unchased: source and target have no rows, the
  /// watermark is all-zero, so the first Refresh runs the full (delta ≡
  /// everything) chase.
  explicit MaintainedSolution(std::shared_ptr<const TgdMapping> mapping)
      : mapping_(std::move(mapping)),
        source_(mapping_->source),
        target_(mapping_->target) {}

  const TgdMapping& mapping() const { return *mapping_; }

  /// Parses `text` against the mapping's source schema and appends its facts
  /// to the maintained source. Returns the number of genuinely new rows
  /// (duplicates of existing facts count zero). Parse errors leave the
  /// source untouched.
  Result<size_t> AppendText(std::string_view text);

  /// Appends every fact of an already-parsed instance (relation names are
  /// resolved against the source schema). Returns the number of new rows.
  Result<size_t> AppendInstance(const Instance& delta);

  /// Absorbs all not-yet-absorbed source rows into the target via ChaseDelta
  /// and returns the rendered target (the same "{ ... }\n" bytes `exchange`
  /// prints). `base_options` supplies limits/threads/stats/cancel; the
  /// symbol context is always this object's own persistent one. On kPartial
  /// degradation the rendered prefix is returned but nothing commits — see
  /// the file comment.
  Result<std::string> RefreshAndRender(const ExecutionOptions& base_options);

  /// COW snapshot of the maintained source (all appended rows, absorbed or
  /// not).
  Instance SourceSnapshot() const;

  /// COW snapshot of the maintained target (as of the last committed
  /// refresh).
  Instance TargetSnapshot() const;

  struct Counters {
    uint64_t refreshes = 0;          ///< committed (complete) refreshes
    uint64_t partial_refreshes = 0;  ///< degraded, uncommitted refreshes
    uint64_t appended_rows = 0;      ///< new source rows accepted
    uint64_t fired_rows = 0;         ///< target rows with recorded provenance
    size_t source_rows = 0;
    size_t target_rows = 0;
  };
  Counters CountersSnapshot() const;

 private:
  const std::shared_ptr<const TgdMapping> mapping_;

  mutable std::mutex mu_;
  Instance source_;
  Instance target_;
  ChaseProvenance provenance_;
  /// Source rows below the watermark are absorbed into target_.
  DeltaWatermark watermark_;
  /// Persistent fresh-null scope for target_ (see file comment).
  SymbolContext symbols_;
  uint64_t refreshes_ = 0;
  uint64_t partial_refreshes_ = 0;
  uint64_t appended_rows_ = 0;
};

}  // namespace mapinv

#endif  // MAPINV_CHASE_MAINTAINED_H_
