#include "parser/parser.h"

#include <map>
#include <memory>
#include <unordered_set>

#include "parser/lexer.h"

namespace mapinv {

namespace {

// Interns a parsed variable name. For '?'-prefixed (machine-generated)
// names, bumps the fresh-variable counter past the numeric suffix so that
// re-parsing printed output can never collide with variables generated
// later in the process.
VarId InternParsedVar(const std::string& name) {
  if (!name.empty() && name[0] == '?') {
    size_t pos = name.size();
    while (pos > 1 && isdigit(static_cast<unsigned char>(name[pos - 1]))) {
      --pos;
    }
    if (pos < name.size()) {
      FreshVarGen::BumpPast(std::stoull(name.substr(pos)));
    }
  }
  return InternVar(name);
}

// Recursive-descent parser over the token stream.
class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  const Token& Peek() const { return tokens_[pos_]; }
  bool At(TokenKind kind) const { return Peek().kind == kind; }

  const Token& Advance() { return tokens_[pos_++]; }

  bool Accept(TokenKind kind) {
    if (At(kind)) {
      ++pos_;
      return true;
    }
    return false;
  }

  Status Expect(TokenKind kind, const char* what) {
    if (Accept(kind)) return Status::OK();
    return Error(std::string("expected ") + what + ", found " +
                 Peek().Describe());
  }

  Status Error(const std::string& message) const {
    return Status::ParseError(message + " at line " +
                              std::to_string(Peek().line));
  }

  void SkipSeparators() {
    while (At(TokenKind::kSeparator)) ++pos_;
  }

  bool AtEnd() const { return At(TokenKind::kEnd); }

  // term := IDENT | IDENT '(' term, ... ')' | NUMBER | STRING
  Result<Term> ParseTerm(bool allow_functions) {
    if (At(TokenKind::kNumber) || At(TokenKind::kString)) {
      return Term::Const(Value::MakeConstant(Advance().text));
    }
    if (!At(TokenKind::kIdent)) {
      return Error("expected a term, found " + Peek().Describe());
    }
    std::string name = Advance().text;
    if (At(TokenKind::kLParen)) {
      if (!allow_functions) {
        return Error("function term '" + name +
                     "(...)' not allowed in this context");
      }
      Advance();  // '('
      std::vector<Term> args;
      if (!At(TokenKind::kRParen)) {
        while (true) {
          MAPINV_ASSIGN_OR_RETURN(Term arg, ParseTerm(allow_functions));
          args.push_back(std::move(arg));
          if (!Accept(TokenKind::kComma)) break;
        }
      }
      MAPINV_RETURN_NOT_OK(Expect(TokenKind::kRParen, "')'"));
      return Term::Fn(name, std::move(args));
    }
    return Term::Var(InternParsedVar(name));
  }

  // atom := IDENT '(' term, ... ')'
  Result<Atom> ParseAtom(bool allow_functions) {
    if (!At(TokenKind::kIdent)) {
      return Error("expected a relation name, found " + Peek().Describe());
    }
    if (Peek().text == "C") {
      return Error(
          "'C' is reserved for the constant predicate and is only allowed "
          "in reverse-dependency premises");
    }
    std::string relation = Advance().text;
    MAPINV_RETURN_NOT_OK(Expect(TokenKind::kLParen, "'('"));
    std::vector<Term> terms;
    if (!At(TokenKind::kRParen)) {
      while (true) {
        MAPINV_ASSIGN_OR_RETURN(Term t, ParseTerm(allow_functions));
        terms.push_back(std::move(t));
        if (!Accept(TokenKind::kComma)) break;
      }
    }
    MAPINV_RETURN_NOT_OK(Expect(TokenKind::kRParen, "')'"));
    return Atom(relation, std::move(terms));
  }

  // "EXISTS x, y ." — returns the declared variables (unused beyond
  // documentation: existentials are recognised structurally).
  Result<std::vector<VarId>> MaybeParseExists() {
    std::vector<VarId> vars;
    if (At(TokenKind::kIdent) && Peek().text == "EXISTS") {
      Advance();
      while (true) {
        if (!At(TokenKind::kIdent)) {
          return Error("expected a variable after EXISTS");
        }
        vars.push_back(InternParsedVar(Advance().text));
        if (!Accept(TokenKind::kComma)) break;
      }
      MAPINV_RETURN_NOT_OK(Expect(TokenKind::kDot, "'.' after EXISTS prefix"));
    }
    return vars;
  }

  struct PremiseItems {
    std::vector<Atom> atoms;
    std::vector<VarId> constant_vars;
    std::vector<VarPair> inequalities;
  };

  // premise := ( atom | C(x) | x != y ) , ...   — C is reserved.
  Result<PremiseItems> ParsePremise(bool allow_constraints) {
    PremiseItems out;
    while (true) {
      if (At(TokenKind::kIdent) && Peek().text == "C" && allow_constraints &&
          tokens_[pos_ + 1].kind == TokenKind::kLParen) {
        Advance();
        Advance();
        if (!At(TokenKind::kIdent)) {
          return Error("expected a variable inside C(...)");
        }
        out.constant_vars.push_back(InternParsedVar(Advance().text));
        MAPINV_RETURN_NOT_OK(Expect(TokenKind::kRParen, "')'"));
      } else if (At(TokenKind::kIdent) &&
                 tokens_[pos_ + 1].kind == TokenKind::kNeq) {
        if (!allow_constraints) {
          return Error("'!=' not allowed in this context");
        }
        VarId lhs = InternParsedVar(Advance().text);
        Advance();  // !=
        if (!At(TokenKind::kIdent)) {
          return Error("expected a variable after '!='");
        }
        out.inequalities.emplace_back(lhs, InternParsedVar(Advance().text));
      } else {
        MAPINV_ASSIGN_OR_RETURN(Atom a, ParseAtom(/*allow_functions=*/false));
        out.atoms.push_back(std::move(a));
      }
      if (!Accept(TokenKind::kComma)) break;
    }
    return out;
  }

  // disjunct := [EXISTS ... .] ( atom | x = y | x != y ) , ...
  // Inequalities are only legal in query disjuncts (UCQ≠), not in
  // reverse-dependency conclusions.
  Result<ReverseDisjunct> ParseDisjunct(bool allow_inequalities) {
    ReverseDisjunct out;
    MAPINV_ASSIGN_OR_RETURN(std::vector<VarId> declared, MaybeParseExists());
    (void)declared;
    while (true) {
      if (At(TokenKind::kIdent) && tokens_[pos_ + 1].kind == TokenKind::kEq) {
        VarId lhs = InternParsedVar(Advance().text);
        Advance();  // =
        if (!At(TokenKind::kIdent)) {
          return Error("expected a variable after '='");
        }
        out.equalities.emplace_back(lhs, InternParsedVar(Advance().text));
      } else if (At(TokenKind::kIdent) &&
                 tokens_[pos_ + 1].kind == TokenKind::kNeq) {
        if (!allow_inequalities) {
          return Error(
              "'!=' is not allowed in reverse-dependency conclusions");
        }
        VarId lhs = InternParsedVar(Advance().text);
        Advance();  // !=
        if (!At(TokenKind::kIdent)) {
          return Error("expected a variable after '!='");
        }
        out.inequalities.emplace_back(lhs, InternParsedVar(Advance().text));
      } else {
        MAPINV_ASSIGN_OR_RETURN(Atom a, ParseAtom(/*allow_functions=*/false));
        out.atoms.push_back(std::move(a));
      }
      if (!Accept(TokenKind::kComma)) break;
    }
    return out;
  }

  Result<Tgd> ParseTgd() {
    MAPINV_ASSIGN_OR_RETURN(PremiseItems premise,
                            ParsePremise(/*allow_constraints=*/false));
    MAPINV_RETURN_NOT_OK(Expect(TokenKind::kArrow, "'->'"));
    MAPINV_ASSIGN_OR_RETURN(std::vector<VarId> declared, MaybeParseExists());
    (void)declared;
    Tgd out;
    out.premise = std::move(premise.atoms);
    while (true) {
      MAPINV_ASSIGN_OR_RETURN(Atom a, ParseAtom(/*allow_functions=*/false));
      out.conclusion.push_back(std::move(a));
      if (!Accept(TokenKind::kComma)) break;
    }
    return out;
  }

  Result<ReverseDependency> ParseReverseDep() {
    MAPINV_ASSIGN_OR_RETURN(PremiseItems premise,
                            ParsePremise(/*allow_constraints=*/true));
    MAPINV_RETURN_NOT_OK(Expect(TokenKind::kArrow, "'->'"));
    ReverseDependency out;
    out.premise = std::move(premise.atoms);
    out.constant_vars = std::move(premise.constant_vars);
    out.inequalities = std::move(premise.inequalities);
    while (true) {
      MAPINV_ASSIGN_OR_RETURN(ReverseDisjunct d, ParseDisjunct(/*allow_inequalities=*/false));
      out.disjuncts.push_back(std::move(d));
      if (!Accept(TokenKind::kPipe)) break;
    }
    return out;
  }

  Result<SORule> ParseSORule() {
    MAPINV_ASSIGN_OR_RETURN(PremiseItems premise,
                            ParsePremise(/*allow_constraints=*/false));
    MAPINV_RETURN_NOT_OK(Expect(TokenKind::kArrow, "'->'"));
    SORule out;
    out.premise = std::move(premise.atoms);
    while (true) {
      MAPINV_ASSIGN_OR_RETURN(Atom a, ParseAtom(/*allow_functions=*/true));
      out.conclusion.push_back(std::move(a));
      if (!Accept(TokenKind::kComma)) break;
    }
    return out;
  }

  Result<UnionCq> ParseUnionCq() {
    if (!At(TokenKind::kIdent)) {
      return Error("expected a query name");
    }
    UnionCq out;
    out.name = Advance().text;
    MAPINV_RETURN_NOT_OK(Expect(TokenKind::kLParen, "'('"));
    if (!At(TokenKind::kRParen)) {
      while (true) {
        if (!At(TokenKind::kIdent)) {
          return Error("expected a head variable");
        }
        out.head.push_back(InternParsedVar(Advance().text));
        if (!Accept(TokenKind::kComma)) break;
      }
    }
    MAPINV_RETURN_NOT_OK(Expect(TokenKind::kRParen, "')'"));
    MAPINV_RETURN_NOT_OK(Expect(TokenKind::kTurnstile, "':-'"));
    while (true) {
      MAPINV_ASSIGN_OR_RETURN(ReverseDisjunct d, ParseDisjunct(/*allow_inequalities=*/true));
      CqDisjunct cd;
      cd.atoms = std::move(d.atoms);
      cd.equalities = std::move(d.equalities);
      cd.inequalities = std::move(d.inequalities);
      out.disjuncts.push_back(std::move(cd));
      if (!Accept(TokenKind::kPipe)) break;
    }
    return out;
  }

  // fact := Rel '(' const, ... ')'; identifiers are constant spellings,
  // except _N<digits> which denotes a labelled null.
  Result<std::pair<std::string, Tuple>> ParseFact() {
    if (!At(TokenKind::kIdent)) {
      return Error("expected a relation name in fact");
    }
    std::string relation = Advance().text;
    MAPINV_RETURN_NOT_OK(Expect(TokenKind::kLParen, "'('"));
    Tuple tuple;
    if (!At(TokenKind::kRParen)) {
      while (true) {
        if (At(TokenKind::kNumber) || At(TokenKind::kString)) {
          tuple.push_back(Value::MakeConstant(Advance().text));
        } else if (At(TokenKind::kIdent)) {
          std::string text = Advance().text;
          if (text.size() > 2 && text[0] == '_' && text[1] == 'N') {
            bool digits = true;
            for (size_t k = 2; k < text.size(); ++k) {
              if (!isdigit(static_cast<unsigned char>(text[k]))) {
                digits = false;
              }
            }
            if (digits) {
              tuple.push_back(Value::NullWithLabel(
                  static_cast<uint32_t>(std::stoul(text.substr(2)))));
              if (!Accept(TokenKind::kComma)) break;
              continue;
            }
          }
          tuple.push_back(Value::MakeConstant(text));
        } else {
          return Error("expected a constant, found " + Peek().Describe());
        }
        if (!Accept(TokenKind::kComma)) break;
      }
    }
    MAPINV_RETURN_NOT_OK(Expect(TokenKind::kRParen, "')'"));
    return std::make_pair(std::move(relation), std::move(tuple));
  }

 private:
  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

// Adds each atom's relation/arity to `schema`, failing on arity clashes.
Status InferInto(Schema* schema, const std::vector<Atom>& atoms) {
  for (const Atom& a : atoms) {
    MAPINV_ASSIGN_OR_RETURN(
        RelationId id,
        schema->AddRelation(RelationText(a.relation),
                            static_cast<uint32_t>(a.terms.size())));
    (void)id;
  }
  return Status::OK();
}

Status CheckDisjointSides(const Schema& source, const Schema& target) {
  if (!source.DisjointFrom(target)) {
    return Status::ParseError(
        "a relation is used on both sides of the mapping; premise and "
        "conclusion schemas must be disjoint");
  }
  return Status::OK();
}

}  // namespace

Result<TgdMapping> ParseTgdMapping(std::string_view text) {
  MAPINV_ASSIGN_OR_RETURN(std::vector<Token> tokens, Lex(text));
  Parser parser(std::move(tokens));
  Schema source, target;
  std::vector<Tgd> tgds;
  parser.SkipSeparators();
  while (!parser.AtEnd()) {
    MAPINV_ASSIGN_OR_RETURN(Tgd tgd, parser.ParseTgd());
    MAPINV_RETURN_NOT_OK(InferInto(&source, tgd.premise));
    MAPINV_RETURN_NOT_OK(InferInto(&target, tgd.conclusion));
    tgds.push_back(std::move(tgd));
    parser.SkipSeparators();
  }
  MAPINV_RETURN_NOT_OK(CheckDisjointSides(source, target));
  TgdMapping out(std::move(source), std::move(target), std::move(tgds));
  MAPINV_RETURN_NOT_OK(out.Validate());
  return out;
}

Result<ReverseMapping> ParseReverseMapping(std::string_view text) {
  MAPINV_ASSIGN_OR_RETURN(std::vector<Token> tokens, Lex(text));
  Parser parser(std::move(tokens));
  Schema source, target;
  std::vector<ReverseDependency> deps;
  parser.SkipSeparators();
  while (!parser.AtEnd()) {
    MAPINV_ASSIGN_OR_RETURN(ReverseDependency dep, parser.ParseReverseDep());
    MAPINV_RETURN_NOT_OK(InferInto(&source, dep.premise));
    for (const ReverseDisjunct& d : dep.disjuncts) {
      MAPINV_RETURN_NOT_OK(InferInto(&target, d.atoms));
    }
    deps.push_back(std::move(dep));
    parser.SkipSeparators();
  }
  MAPINV_RETURN_NOT_OK(CheckDisjointSides(source, target));
  ReverseMapping out(std::make_shared<const Schema>(std::move(source)),
                     std::make_shared<const Schema>(std::move(target)),
                     std::move(deps));
  MAPINV_RETURN_NOT_OK(out.Validate());
  return out;
}

Result<SOTgdMapping> ParseSOTgdMapping(std::string_view text) {
  MAPINV_ASSIGN_OR_RETURN(std::vector<Token> tokens, Lex(text));
  Parser parser(std::move(tokens));
  Schema source, target;
  SOTgd so;
  parser.SkipSeparators();
  while (!parser.AtEnd()) {
    MAPINV_ASSIGN_OR_RETURN(SORule rule, parser.ParseSORule());
    MAPINV_RETURN_NOT_OK(InferInto(&source, rule.premise));
    MAPINV_RETURN_NOT_OK(InferInto(&target, rule.conclusion));
    so.rules.push_back(std::move(rule));
    parser.SkipSeparators();
  }
  MAPINV_RETURN_NOT_OK(CheckDisjointSides(source, target));
  SOTgdMapping out(std::make_shared<const Schema>(std::move(source)),
                   std::make_shared<const Schema>(std::move(target)),
                   std::move(so));
  MAPINV_RETURN_NOT_OK(out.Validate());
  return out;
}

Result<UnionCq> ParseQuery(std::string_view text) {
  MAPINV_ASSIGN_OR_RETURN(std::vector<Token> tokens, Lex(text));
  Parser parser(std::move(tokens));
  parser.SkipSeparators();
  MAPINV_ASSIGN_OR_RETURN(UnionCq out, parser.ParseUnionCq());
  parser.SkipSeparators();
  if (!parser.AtEnd()) {
    return Status::ParseError("trailing input after query");
  }
  return out;
}

Result<ConjunctiveQuery> ParseCq(std::string_view text) {
  MAPINV_ASSIGN_OR_RETURN(UnionCq u, ParseQuery(text));
  // Inequalities must be rejected, not dropped: silently discarding them
  // would accept "Q(x,y) :- R != y" as the unrenderable empty-body query.
  if (u.disjuncts.size() != 1 || !u.disjuncts[0].equalities.empty() ||
      !u.disjuncts[0].inequalities.empty()) {
    return Status::ParseError(
        "expected a single equality- and inequality-free conjunctive query");
  }
  ConjunctiveQuery out;
  out.name = u.name;
  out.head = u.head;
  out.atoms = u.disjuncts[0].atoms;
  return out;
}

namespace {

Result<Instance> ParseInstanceImpl(std::string_view text,
                                   const Schema* fixed_schema) {
  MAPINV_ASSIGN_OR_RETURN(std::vector<Token> tokens, Lex(text));
  Parser parser(std::move(tokens));
  parser.SkipSeparators();
  MAPINV_RETURN_NOT_OK(parser.Expect(TokenKind::kLBrace, "'{'"));
  std::vector<std::pair<std::string, Tuple>> facts;
  parser.SkipSeparators();
  if (!parser.At(TokenKind::kRBrace)) {
    while (true) {
      parser.SkipSeparators();
      MAPINV_ASSIGN_OR_RETURN(auto fact, parser.ParseFact());
      facts.push_back(std::move(fact));
      parser.SkipSeparators();
      if (!parser.Accept(TokenKind::kComma)) break;
    }
  }
  parser.SkipSeparators();
  MAPINV_RETURN_NOT_OK(parser.Expect(TokenKind::kRBrace, "'}'"));

  Schema inferred;
  const Schema* schema = fixed_schema;
  if (schema == nullptr) {
    for (const auto& [relation, tuple] : facts) {
      MAPINV_ASSIGN_OR_RETURN(
          RelationId id,
          inferred.AddRelation(relation,
                               static_cast<uint32_t>(tuple.size())));
      (void)id;
    }
    schema = &inferred;
  }
  Instance out(*schema);
  for (auto& [relation, tuple] : facts) {
    MAPINV_ASSIGN_OR_RETURN(bool added, out.Add(relation, std::move(tuple)));
    (void)added;
  }
  return out;
}

}  // namespace

Result<Instance> ParseInstance(std::string_view text, const Schema& schema) {
  return ParseInstanceImpl(text, &schema);
}

Result<Instance> ParseInstanceInferSchema(std::string_view text) {
  return ParseInstanceImpl(text, nullptr);
}

}  // namespace mapinv
