/// \file parser.h
/// \brief Text syntax for mappings, queries and instances.
///
/// Grammar (statements separated by newlines or ';'; '#' starts a comment):
///
///   tgd          :=  atoms "->" [ "EXISTS" vars "." ] atoms
///   reverse dep  :=  premise "->" disjunct ( "|" disjunct )*
///   premise      :=  ( atom | "C" "(" var ")" | var "!=" var ) , ...
///   disjunct     :=  [ "EXISTS" vars "." ] ( atom | var "=" var ) , ...
///   so rule      :=  atoms "->" atoms          (terms may be f(x,...) )
///   query        :=  Name "(" vars ")" ":-" disjunct ( "|" disjunct )*
///   instance     :=  "{" fact ( "," fact )* "}"
///   fact         :=  Rel "(" const ( "," const )* ")"
///
/// Tokens: identifiers ([A-Za-z_][A-Za-z0-9_]*) are variables inside
/// formulas and relation/function names before '('; numbers (123) and
/// single-quoted strings ('alice') are constants; "_N<k>" denotes a
/// labelled null inside instances.
///
/// Schemas are inferred from usage: every relation gets the arity of its
/// first occurrence (later occurrences must agree).

#ifndef MAPINV_PARSER_PARSER_H_
#define MAPINV_PARSER_PARSER_H_

#include <string_view>

#include "base/status.h"
#include "data/instance.h"
#include "logic/cq.h"
#include "logic/mapping.h"

namespace mapinv {

/// \brief Parses a list of tgds and infers the two schemas from relation
/// usage (premise relations form the source, conclusion relations the
/// target; a relation used on both sides is an error).
Result<TgdMapping> ParseTgdMapping(std::string_view text);

/// \brief Parses a list of reverse dependencies (premises may use C(·) and
/// ≠, conclusions may use disjunction and =). Schemas are inferred; premise
/// relations form the mapping's source, conclusion relations its target.
Result<ReverseMapping> ParseReverseMapping(std::string_view text);

/// \brief Parses a list of plain SO-tgd rules (function terms allowed in
/// conclusions). Schemas are inferred.
Result<SOTgdMapping> ParseSOTgdMapping(std::string_view text);

/// \brief Parses a (union of) conjunctive quer(ies) "Q(x,y) :- ... | ...".
Result<UnionCq> ParseQuery(std::string_view text);

/// \brief Parses a single-disjunct query into a ConjunctiveQuery; fails on
/// disjunction or equalities.
Result<ConjunctiveQuery> ParseCq(std::string_view text);

/// \brief Parses an instance "{ R(1,2), S('a',_N0) }" against `schema`.
Result<Instance> ParseInstance(std::string_view text, const Schema& schema);

/// \brief Parses an instance and infers its schema from the facts.
Result<Instance> ParseInstanceInferSchema(std::string_view text);

}  // namespace mapinv

#endif  // MAPINV_PARSER_PARSER_H_
